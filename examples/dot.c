int vec[512];

int kernel() {
  int sum = 0;
  int i;
  for (i = 0; i < 512; i++) {
    sum += vec[i] * vec[i];
  }
  return sum;
}
