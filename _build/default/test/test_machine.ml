(* Tests for the machine model: the timing bounds, cache behaviour,
   register pressure, and the compile-time model. These pin down the
   qualitative physics the RL agent learns to exploit. *)

let tgt = Machine.Target.skylake_avx2

let compile ?(vf = 1) ?(if_ = 1) src =
  let p = Dataset.Program.make ~family:"test" "t" src in
  let r =
    if vf = 1 && if_ = 1 then Neurovec.Pipeline.run_with_pragma p ~vf:1 ~if_:1
    else Neurovec.Pipeline.run_with_pragma p ~vf ~if_
  in
  r

let cycles ?vf ?if_ src = (compile ?vf ?if_ src).Neurovec.Pipeline.exec_cycles

let dot_src =
  "int vec[512]; int kernel() { int s = 0; int i;\n\
   for (i = 0; i < 512; i++) s += vec[i] * vec[i]; return s; }"

let fdot_src =
  "float vec[512]; int kernel() { float s = 0; int i;\n\
   for (i = 0; i < 512; i++) s += vec[i] * vec[i]; return (int) s; }"

(* ------------------------------------------------------------------ *)
(* Qualitative physics                                                  *)
(* ------------------------------------------------------------------ *)

let test_vectorization_speeds_up () =
  Alcotest.(check bool) "vf8 beats scalar" true
    (cycles ~vf:8 dot_src < cycles dot_src)

let test_over_vectorization_collapses () =
  (* (64, 16) spills registers and must be much slower than the sweet spot *)
  let sweet = cycles ~vf:16 ~if_:2 dot_src in
  let extreme = cycles ~vf:64 ~if_:16 dot_src in
  Alcotest.(check bool) "spill cliff" true (extreme > 2.0 *. sweet)

let test_interleave_hides_float_latency () =
  (* the scalar float reduction is latency-bound: interleaving at the same
     VF must help much more than it does for the int reduction *)
  let gain src = cycles ~vf:4 ~if_:1 src /. cycles ~vf:4 ~if_:4 src in
  Alcotest.(check bool)
    (Printf.sprintf "float gain %.2f > int gain %.2f" (gain fdot_src)
       (gain dot_src))
    true
    (gain fdot_src > gain dot_src)

let test_scalar_float_latency_bound () =
  (* fadd latency 4 makes the scalar float chain slower than the int one *)
  Alcotest.(check bool) "float chain slower" true
    (cycles fdot_src > 1.5 *. cycles dot_src)

let test_gather_cost () =
  let unit_src =
    "int a[256]; int b[256]; int kernel() { int i;\n\
     for (i = 0; i < 256; i++) a[i] = b[i]; return a[0]; }"
  in
  let gather_src =
    "int a[256]; int b[4096]; int kernel() { int i;\n\
     for (i = 0; i < 256; i++) a[i] = b[16*i]; return a[0]; }"
  in
  Alcotest.(check bool) "vectorized gather costs more than unit stride" true
    (cycles ~vf:8 gather_src > cycles ~vf:8 unit_src)

let test_cache_levels_matter () =
  (* same loop shape; footprints resident in L1 vs falling out of L2 *)
  let src n =
    Printf.sprintf
      "int a[%d]; int kernel() { int s = 0; int i;\n\
       for (i = 0; i < %d; i++) s += a[i]; return s; }"
      n n
  in
  (* at VF=8 the sweep is bandwidth-bound, so the memory level shows; the
     scalar loop is overhead-bound at every level (a real effect too) *)
  let per_iter n = cycles ~vf:8 (src n) /. float_of_int n in
  Alcotest.(check bool) "DRAM-resident sweep costs more per element" true
    (per_iter 1_000_000 > per_iter 4096)

let test_branchy_loop_pays_mispredicts () =
  let plain =
    "int a[512]; int b[512]; int kernel() { int i;\n\
     for (i = 0; i < 512; i++) a[i] = b[i]; return a[0]; }"
  in
  let branchy =
    "int a[512]; int b[512]; int kernel() { int i;\n\
     for (i = 0; i < 512; i++) { if (b[i] > 128) a[i] = b[i]; } return a[0]; }"
  in
  Alcotest.(check bool) "branch cost visible" true
    (cycles branchy > cycles plain)

let test_if_conversion_removes_branch_cost () =
  (* vectorizing the branchy loop if-converts it: the relative gain should
     exceed the plain loop's gain at the same VF *)
  let branchy =
    "int a[512]; int b[512]; int kernel() { int i;\n\
     for (i = 0; i < 512; i++) { if (b[i] > 128) a[i] = b[i]; } return a[0]; }"
  in
  let g = cycles branchy /. cycles ~vf:8 branchy in
  Alcotest.(check bool) (Printf.sprintf "if-conversion pays (%.2fx)" g) true
    (g > 1.5)

let test_timing_deterministic () =
  Alcotest.(check (float 0.0)) "same cycles" (cycles ~vf:8 dot_src)
    (cycles ~vf:8 dot_src)

(* ------------------------------------------------------------------ *)
(* Targets                                                              *)
(* ------------------------------------------------------------------ *)

let cycles_on target src ~vf ~if_ =
  let p = Dataset.Program.make ~family:"test" "t" src in
  let options = { Neurovec.Pipeline.default_options with target } in
  (Neurovec.Pipeline.run_with_pragma ~options p ~vf ~if_)
    .Neurovec.Pipeline.exec_cycles

let test_narrow_target_prefers_narrow_vf () =
  (* on the 128-bit SSE target, VF=32 loses more of its AVX2 advantage *)
  let rel target =
    cycles_on target dot_src ~vf:32 ~if_:1 /. cycles_on target dot_src ~vf:4 ~if_:1
  in
  Alcotest.(check bool) "sse pays more for wide vf" true
    (rel Machine.Target.sse4 > rel Machine.Target.skylake_avx2)

let test_avx512_likes_wider () =
  let rel target =
    cycles_on target dot_src ~vf:64 ~if_:2 /. cycles_on target dot_src ~vf:8 ~if_:2
  in
  Alcotest.(check bool) "avx512 pays less for vf 64" true
    (rel Machine.Target.avx512 < rel Machine.Target.skylake_avx2)

(* ------------------------------------------------------------------ *)
(* Compile-time model                                                   *)
(* ------------------------------------------------------------------ *)

let test_compile_time_monotone_in_width () =
  let p = Dataset.Program.make ~family:"test" "t" dot_src in
  let c ~vf ~if_ =
    (Neurovec.Pipeline.run_with_pragma p ~vf ~if_)
      .Neurovec.Pipeline.compile_seconds
  in
  Alcotest.(check bool) "if grows" true (c ~vf:4 ~if_:8 > c ~vf:4 ~if_:1);
  Alcotest.(check bool) "vf grows" true (c ~vf:64 ~if_:1 > c ~vf:4 ~if_:1)

let test_compile_weight_of_vectors () =
  let m = Ir_lower.lower_program (Minic.Parser.parse_string dot_src) in
  let before = Machine.Compile.instr_count m in
  let fn = List.hd m.Ir.m_funcs in
  List.iter
    (fun info ->
      ignore
        (Vectorizer.Transform.vectorize_in_func fn info
           { Vectorizer.Transform.vf = 64; if_ = 8 }))
    (Analysis.Loopinfo.innermost_infos fn);
  let after = Machine.Compile.instr_count m in
  Alcotest.(check bool)
    (Printf.sprintf "weighted count grows a lot (%d -> %d)" before after)
    true
    (after > 10 * before)

(* ------------------------------------------------------------------ *)
(* Structural probes                                                    *)
(* ------------------------------------------------------------------ *)

let test_carried_regs () =
  let m = Ir_lower.lower_program (Minic.Parser.parse_string dot_src) in
  let fn = List.hd m.Ir.m_funcs in
  let l = List.hd (Ir.innermost_loops fn) in
  let carried = Machine.Transform_probe.carried_regs l.Ir.l_body in
  (* exactly the accumulator s is carried *)
  Alcotest.(check int) "one carried scalar" 1
    (Machine.Transform_probe.IntSet.cardinal carried)

let test_chunks () =
  Alcotest.(check int) "8 x i32 = 1 chunk" 1
    (Machine.Timing.chunks tgt (Ir.Vec (8, Ir.I32)));
  Alcotest.(check int) "64 x i32 = 8 chunks" 8
    (Machine.Timing.chunks tgt (Ir.Vec (64, Ir.I32)));
  Alcotest.(check int) "scalar = 1" 1
    (Machine.Timing.chunks tgt (Ir.Scalar Ir.F64))

let suite =
  [
    ( "machine.physics",
      [
        Alcotest.test_case "vectorization speeds up" `Quick
          test_vectorization_speeds_up;
        Alcotest.test_case "over-vectorization collapses" `Quick
          test_over_vectorization_collapses;
        Alcotest.test_case "interleave hides fp latency" `Quick
          test_interleave_hides_float_latency;
        Alcotest.test_case "scalar fp latency-bound" `Quick
          test_scalar_float_latency_bound;
        Alcotest.test_case "gathers cost" `Quick test_gather_cost;
        Alcotest.test_case "cache levels" `Quick test_cache_levels_matter;
        Alcotest.test_case "branch cost" `Quick test_branchy_loop_pays_mispredicts;
        Alcotest.test_case "if-conversion pays" `Quick
          test_if_conversion_removes_branch_cost;
        Alcotest.test_case "deterministic" `Quick test_timing_deterministic;
      ] );
    ( "machine.targets",
      [
        Alcotest.test_case "sse4 narrower" `Quick
          test_narrow_target_prefers_narrow_vf;
        Alcotest.test_case "avx512 wider" `Quick test_avx512_likes_wider;
      ] );
    ( "machine.compile",
      [
        Alcotest.test_case "monotone in width" `Quick
          test_compile_time_monotone_in_width;
        Alcotest.test_case "vector weighting" `Quick
          test_compile_weight_of_vectors;
      ] );
    ( "machine.probes",
      [
        Alcotest.test_case "carried regs" `Quick test_carried_regs;
        Alcotest.test_case "chunks" `Quick test_chunks;
      ] );
  ]
