(* Tests for the analysis layer: scalar evolution, access collection,
   reduction recognition, dependence distances. *)

let lower ?bindings src = Ir_lower.lower_program ?bindings (Minic.Parser.parse_string src)

let first_loop m =
  let fn = List.hd m.Ir.m_funcs in
  match Ir.innermost_loops fn with
  | l :: _ -> (fn, l)
  | [] -> Alcotest.fail "no loop"

(* ------------------------------------------------------------------ *)
(* Scalar evolution                                                     *)
(* ------------------------------------------------------------------ *)

let test_scev_affine_arithmetic () =
  let open Analysis.Scev in
  let a = sym_aff 1 and b = sym_aff 2 in
  (* 3*(r1 + 4) - r2 = 3*r1 - r2 + 12 *)
  let e = sub_sv (mul_sv (const_aff 3) (add_sv a (const_aff 4))) b in
  Alcotest.(check int) "coeff r1" 3 (coeff_of 1 e);
  Alcotest.(check int) "coeff r2" (-1) (coeff_of 2 e);
  (match e with
  | Affine x -> Alcotest.(check int) "const" 12 x.const
  | Unknown -> Alcotest.fail "expected affine")

let test_scev_nonlinear_unknown () =
  let open Analysis.Scev in
  let a = sym_aff 1 and b = sym_aff 2 in
  Alcotest.(check bool) "r1*r2 unknown" true (mul_sv a b = Unknown);
  Alcotest.(check bool) "const*affine known" true
    (mul_sv (const_aff 5) a <> Unknown)

let test_scev_shl_is_mul () =
  let open Analysis.Scev in
  let a = sym_aff 1 in
  Alcotest.(check int) "r1 << 3 has coeff 8" 8 (coeff_of 1 (shl_sv a (const_aff 3)))

let test_scev_const_delta () =
  let open Analysis.Scev in
  let a = add_sv (sym_aff 1) (const_aff 5) in
  let b = add_sv (sym_aff 1) (const_aff 9) in
  Alcotest.(check (option int)) "delta 4" (Some 4) (const_delta a b);
  let c = add_sv (mul_sv (const_aff 2) (sym_aff 1)) (const_aff 9) in
  Alcotest.(check (option int)) "coeff mismatch" None (const_delta a c)

let test_scev_index_of_loop () =
  (* a[2*i + 3]: coefficient 2, constant 3 *)
  let m = lower "int a[512]; void f() { int i; for (i=0;i<200;i++) a[2*i+3] = i; }" in
  let _, l = first_loop m in
  let env =
    Analysis.Scev.make_env ~induction_vars:[ l.Ir.l_var ] l.Ir.l_body
  in
  let idx = ref None in
  List.iter
    (fun i ->
      (match i with
      | Ir.Store (_, mr, _) -> idx := Some (Analysis.Scev.eval_value env mr.Ir.index)
      | _ -> ());
      Analysis.Scev.step env i)
    (Ir.all_instrs l.Ir.l_body);
  match !idx with
  | Some sv ->
      Alcotest.(check int) "coeff of i" 2 (Analysis.Scev.coeff_of l.Ir.l_var sv)
  | None -> Alcotest.fail "no store found"

let test_scev_loop_carried_unknown () =
  (* an index fed by a loop-carried scalar is not affine *)
  let m =
    lower
      "int a[512]; void f() { int idx = 0; int i;\n\
       for (i=0;i<100;i++) { a[idx] = i; idx = idx + a[i]; } }"
  in
  let _, l = first_loop m in
  let acc = Analysis.Access.collect ~induction_vars:[ l.Ir.l_var ] l.Ir.l_body in
  Alcotest.(check bool) "some access unknown" true
    (List.exists
       (fun a -> a.Analysis.Access.acc_index = Analysis.Scev.Unknown)
       acc.Analysis.Access.accesses)

(* ------------------------------------------------------------------ *)
(* Access collection                                                    *)
(* ------------------------------------------------------------------ *)

let test_access_order_and_kind () =
  let m = lower "int a[64]; int b[64]; void f() { int i; for (i=0;i<64;i++) a[i] = b[i]; }" in
  let _, l = first_loop m in
  let acc = Analysis.Access.collect ~induction_vars:[ l.Ir.l_var ] l.Ir.l_body in
  match acc.Analysis.Access.accesses with
  | [ ld; st ] ->
      Alcotest.(check string) "load base" "b" ld.Analysis.Access.acc_base;
      Alcotest.(check bool) "load" false ld.Analysis.Access.acc_is_store;
      Alcotest.(check string) "store base" "a" st.Analysis.Access.acc_base;
      Alcotest.(check bool) "store" true st.Analysis.Access.acc_is_store
  | l -> Alcotest.failf "expected 2 accesses, got %d" (List.length l)

let test_access_predicated_flag () =
  let m =
    lower
      "int a[64]; int b[64]; void f() { int i;\n\
       for (i=0;i<64;i++) { if (b[i] > 3) a[i] = 1; } }"
  in
  let _, l = first_loop m in
  let acc = Analysis.Access.collect ~induction_vars:[ l.Ir.l_var ] l.Ir.l_body in
  let store =
    List.find (fun a -> a.Analysis.Access.acc_is_store) acc.Analysis.Access.accesses
  in
  Alcotest.(check bool) "store predicated" true
    store.Analysis.Access.acc_predicated;
  Alcotest.(check int) "if depth" 1 acc.Analysis.Access.if_depth

let test_access_stride_includes_step () =
  let m = lower "int a[256]; void f() { int i; for (i=0;i<256;i+=4) a[i] = i; }" in
  let _, l = first_loop m in
  let acc = Analysis.Access.collect ~induction_vars:[ l.Ir.l_var ] l.Ir.l_body in
  let st = List.hd acc.Analysis.Access.accesses in
  Alcotest.(check (option int)) "stride 4 per iteration" (Some 4)
    (Analysis.Access.iter_stride l st)

(* ------------------------------------------------------------------ *)
(* Reductions                                                           *)
(* ------------------------------------------------------------------ *)

let reductions_of src =
  let m = lower src in
  let _, l = first_loop m in
  Analysis.Reduction.analyze l

let test_reduction_kinds () =
  let cases =
    [ ("s += a[i];", Analysis.Reduction.RedAdd);
      ("s *= (a[i] & 3) + 1;", Analysis.Reduction.RedMul);
      ("s ^= a[i];", Analysis.Reduction.RedXor);
      ("s |= a[i];", Analysis.Reduction.RedOr);
      ("s &= a[i];", Analysis.Reduction.RedAnd) ]
  in
  List.iter
    (fun (update, kind) ->
      let src =
        Printf.sprintf
          "int a[64]; int f() { int s = 1; int i; for (i=0;i<64;i++) { %s } return s; }"
          update
      in
      match reductions_of src with
      | [ r ], [] ->
          Alcotest.(check bool)
            (Printf.sprintf "%s recognised" update)
            true
            (r.Analysis.Reduction.red_kind = kind)
      | _ -> Alcotest.failf "%s not recognised as sole reduction" update)
    cases

let test_reduction_float () =
  match
    reductions_of
      "float a[64]; float f() { float s = 0; int i; for (i=0;i<64;i++) s += a[i]; return s; }"
  with
  | [ r ], [] -> Alcotest.(check bool) "float" true r.Analysis.Reduction.red_float
  | _ -> Alcotest.fail "float reduction not recognised"

let test_reduction_scan_blocked () =
  (* the accumulator is also stored each iteration: not a plain reduction *)
  match
    reductions_of
      "int a[64]; int b[64]; int f() { int s = 0; int i;\n\
       for (i=0;i<64;i++) { s += a[i]; b[i] = s; } return s; }"
  with
  | [], [ _ ] -> ()
  | reds, blocked ->
      Alcotest.failf "expected blocked scan, got %d reductions %d blocked"
        (List.length reds) (List.length blocked)

let test_reduction_two_updates_blocked () =
  match
    reductions_of
      "int a[64]; int f() { int s = 0; int i;\n\
       for (i=0;i<64;i++) { s += a[i]; s ^= a[i]; } return s; }"
  with
  | [], [ _ ] -> ()
  | _ -> Alcotest.fail "double update must not be a reduction"

let test_reduction_identity_values () =
  let open Analysis.Reduction in
  Alcotest.(check bool) "add int" true (identity_value RedAdd false = Ir.IConst 0L);
  Alcotest.(check bool) "mul int" true (identity_value RedMul false = Ir.IConst 1L);
  Alcotest.(check bool) "and" true (identity_value RedAnd false = Ir.IConst (-1L));
  Alcotest.(check bool) "add float" true (identity_value RedAdd true = Ir.FConst 0.0)

(* ------------------------------------------------------------------ *)
(* Dependences                                                          *)
(* ------------------------------------------------------------------ *)

let verdict_of src =
  let m = lower src in
  let _, l = first_loop m in
  let acc = Analysis.Access.collect ~induction_vars:[ l.Ir.l_var ] l.Ir.l_body in
  Analysis.Depend.analyze l acc.Analysis.Access.accesses

let test_dep_flow_distance () =
  let v =
    verdict_of "int a[64]; void f() { int i; for (i=3;i<64;i++) a[i] = a[i-3]; }"
  in
  Alcotest.(check int) "max safe vf = 3" 3 v.Analysis.Depend.max_safe_vf;
  match v.Analysis.Depend.dependences with
  | [ d ] ->
      Alcotest.(check int) "distance" 3 d.Analysis.Depend.dep_distance;
      Alcotest.(check bool) "flow" true d.Analysis.Depend.dep_store_first
  | _ -> Alcotest.fail "expected one dependence"

let test_dep_anti_unconstrained () =
  let v =
    verdict_of "int a[65]; void f() { int i; for (i=0;i<64;i++) a[i] = a[i+1]; }"
  in
  Alcotest.(check bool) "unbounded" true
    (v.Analysis.Depend.max_safe_vf >= Analysis.Depend.unbounded)

let test_dep_disjoint_parity () =
  (* a[2i] vs a[2i+1]: same coefficients, odd delta -> never collide *)
  let v =
    verdict_of
      "int a[130]; void f() { int i; for (i=0;i<64;i++) a[2*i] = a[2*i+1]; }"
  in
  Alcotest.(check bool) "no constraint" true
    (v.Analysis.Depend.max_safe_vf >= Analysis.Depend.unbounded);
  Alcotest.(check bool) "no unknown" true (v.Analysis.Depend.unknown_pair = None)

let test_dep_different_coeffs_unknown () =
  let v =
    verdict_of
      "int a[256]; void f() { int i; for (i=1;i<64;i++) a[i] = a[2*i]; }"
  in
  Alcotest.(check bool) "unknown pair" true
    (v.Analysis.Depend.unknown_pair <> None);
  Alcotest.(check int) "scalar only" 1 v.Analysis.Depend.max_safe_vf

let test_dep_loads_only_no_constraint () =
  let v =
    verdict_of
      "int a[64]; int b[64]; void f() { int i; for (i=1;i<63;i++) b[i] = a[i-1] + a[i+1]; }"
  in
  Alcotest.(check bool) "loads never conflict" true
    (v.Analysis.Depend.max_safe_vf >= Analysis.Depend.unbounded)

let test_dep_output_dependence () =
  (* two stores, distance 1: constrains like a flow dependence *)
  let v =
    verdict_of
      "int a[130]; void f() { int i; for (i=0;i<64;i++) { a[i] = 1; a[i+1] = 2; } }"
  in
  Alcotest.(check int) "vf limited to 1" 1 v.Analysis.Depend.max_safe_vf

(* ------------------------------------------------------------------ *)
(* Trip counts                                                          *)
(* ------------------------------------------------------------------ *)

let trip src =
  let m = lower src in
  let _, l = first_loop m in
  Analysis.Loopinfo.static_trip_count l

let test_trip_counts () =
  Alcotest.(check (option int)) "lt" (Some 100)
    (trip "int a[100]; void f() { int i; for (i=0;i<100;i++) a[i]=1; }");
  Alcotest.(check (option int)) "le" (Some 101)
    (trip "int a[200]; void f() { int i; for (i=0;i<=100;i++) a[i]=1; }");
  Alcotest.(check (option int)) "step 3" (Some 34)
    (trip "int a[100]; void f() { int i; for (i=0;i<100;i+=3) a[i]=1; }");
  Alcotest.(check (option int)) "downward" (Some 100)
    (trip "int a[100]; void f() { int i; for (i=99;i>=0;i--) a[i]=1; }");
  Alcotest.(check (option int)) "empty" (Some 0)
    (trip "int a[8]; void f() { int i; for (i=5;i<5;i++) a[i]=1; }")

let test_trip_const_folded_bound () =
  Alcotest.(check (option int)) "N*2-1 folds" (Some 127)
    (trip
       "int a[200]; void f() { int i; for (i=0;i<64*2-1;i++) a[i]=1; }")

let suite =
  [
    ( "analysis.scev",
      [
        Alcotest.test_case "affine arithmetic" `Quick test_scev_affine_arithmetic;
        Alcotest.test_case "nonlinear unknown" `Quick test_scev_nonlinear_unknown;
        Alcotest.test_case "shl as mul" `Quick test_scev_shl_is_mul;
        Alcotest.test_case "const delta" `Quick test_scev_const_delta;
        Alcotest.test_case "loop index coefficients" `Quick
          test_scev_index_of_loop;
        Alcotest.test_case "loop-carried unknown" `Quick
          test_scev_loop_carried_unknown;
      ] );
    ( "analysis.access",
      [
        Alcotest.test_case "order and kind" `Quick test_access_order_and_kind;
        Alcotest.test_case "predicated flag" `Quick test_access_predicated_flag;
        Alcotest.test_case "stride includes step" `Quick
          test_access_stride_includes_step;
      ] );
    ( "analysis.reduction",
      [
        Alcotest.test_case "all kinds" `Quick test_reduction_kinds;
        Alcotest.test_case "float flag" `Quick test_reduction_float;
        Alcotest.test_case "scan blocked" `Quick test_reduction_scan_blocked;
        Alcotest.test_case "double update blocked" `Quick
          test_reduction_two_updates_blocked;
        Alcotest.test_case "identity values" `Quick
          test_reduction_identity_values;
      ] );
    ( "analysis.depend",
      [
        Alcotest.test_case "flow distance" `Quick test_dep_flow_distance;
        Alcotest.test_case "anti unconstrained" `Quick
          test_dep_anti_unconstrained;
        Alcotest.test_case "parity disjoint" `Quick test_dep_disjoint_parity;
        Alcotest.test_case "coeff mismatch unknown" `Quick
          test_dep_different_coeffs_unknown;
        Alcotest.test_case "loads only" `Quick test_dep_loads_only_no_constraint;
        Alcotest.test_case "output dependence" `Quick test_dep_output_dependence;
      ] );
    ( "analysis.trip",
      [
        Alcotest.test_case "trip counts" `Quick test_trip_counts;
        Alcotest.test_case "const-folded bound" `Quick
          test_trip_const_folded_bound;
      ] );
  ]
