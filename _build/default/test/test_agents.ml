(* Tests for the alternative predictors: decision tree, NNS, random search. *)

(* ------------------------------------------------------------------ *)
(* Decision tree                                                        *)
(* ------------------------------------------------------------------ *)

let test_dtree_axis_split () =
  (* label = 1 iff x0 > 0.5 *)
  let rng = Nn.Rng.create 1 in
  let xs = Array.init 200 (fun _ -> [| Nn.Rng.float rng; Nn.Rng.float rng |]) in
  let ys = Array.map (fun x -> if x.(0) > 0.5 then 1 else 0) xs in
  let t = Agents.Dtree.fit xs ys in
  let errors = ref 0 in
  Array.iteri
    (fun i x -> if Agents.Dtree.predict t x <> ys.(i) then incr errors)
    xs;
  Alcotest.(check bool) "fits separable data" true (!errors = 0)

let test_dtree_xor () =
  (* xor of two thresholds needs depth >= 2 *)
  let rng = Nn.Rng.create 2 in
  let xs = Array.init 400 (fun _ -> [| Nn.Rng.float rng; Nn.Rng.float rng |]) in
  let ys =
    Array.map (fun x -> if (x.(0) > 0.5) <> (x.(1) > 0.5) then 1 else 0) xs
  in
  let t = Agents.Dtree.fit xs ys in
  let errors = ref 0 in
  Array.iteri
    (fun i x -> if Agents.Dtree.predict t x <> ys.(i) then incr errors)
    xs;
  Alcotest.(check bool)
    (Printf.sprintf "xor mostly learnt (%d errors)" !errors)
    true
    (!errors < 20)

let test_dtree_depth_bounded () =
  let rng = Nn.Rng.create 3 in
  let xs = Array.init 300 (fun _ -> [| Nn.Rng.float rng |]) in
  let ys = Array.init 300 (fun i -> i mod 7) in
  let t =
    Agents.Dtree.fit ~params:{ Agents.Dtree.default_params with max_depth = 4 }
      xs ys
  in
  Alcotest.(check bool) "depth <= 4" true (Agents.Dtree.depth t <= 4)

let test_dtree_empty () =
  let t = Agents.Dtree.fit [||] [||] in
  Alcotest.(check int) "default label" 0 (Agents.Dtree.predict t [| 1.0 |])

let test_dtree_single_class () =
  let xs = Array.init 20 (fun i -> [| float_of_int i |]) in
  let ys = Array.make 20 5 in
  let t = Agents.Dtree.fit xs ys in
  Alcotest.(check int) "leaf only" 1 (Agents.Dtree.size t);
  Alcotest.(check int) "constant prediction" 5 (Agents.Dtree.predict t [| 3.0 |])

(* ------------------------------------------------------------------ *)
(* NNS                                                                  *)
(* ------------------------------------------------------------------ *)

let test_nns_exact_on_training () =
  let xs = [| [| 0.0; 0.0 |]; [| 1.0; 1.0 |]; [| -1.0; 2.0 |] |] in
  let ys = [| 10; 20; 30 |] in
  let t = Agents.Nns.fit xs ys in
  Array.iteri
    (fun i x -> Alcotest.(check int) "training point" ys.(i) (Agents.Nns.predict t x))
    xs

let test_nns_nearest () =
  let t = Agents.Nns.fit [| [| 0.0 |]; [| 10.0 |] |] [| 1; 2 |] in
  Alcotest.(check int) "closer to 0" 1 (Agents.Nns.predict t [| 3.0 |]);
  Alcotest.(check int) "closer to 10" 2 (Agents.Nns.predict t [| 8.0 |])

let test_nns_k_majority () =
  let xs = [| [| 0.0 |]; [| 0.1 |]; [| 0.2 |]; [| 5.0 |] |] in
  let ys = [| 1; 1; 1; 9 |] in
  let t = Agents.Nns.fit xs ys in
  Alcotest.(check int) "3-NN majority" 1 (Agents.Nns.predict_k t ~k:3 [| 0.05 |])

(* ------------------------------------------------------------------ *)
(* Random search                                                        *)
(* ------------------------------------------------------------------ *)

let test_random_budget_improves () =
  let reward (a : Rl.Spaces.action) =
    float_of_int (a.Rl.Spaces.vf_idx + a.Rl.Spaces.if_idx)
  in
  let rng1 = Nn.Rng.create 4 in
  let one = ref 0.0 in
  for _ = 1 to 50 do
    let _, r = Agents.Random_search.search ~budget:1 rng1 ~reward in
    one := !one +. r
  done;
  let rng2 = Nn.Rng.create 4 in
  let twenty = ref 0.0 in
  for _ = 1 to 50 do
    let _, r = Agents.Random_search.search ~budget:20 rng2 ~reward in
    twenty := !twenty +. r
  done;
  Alcotest.(check bool) "bigger budget finds more" true (!twenty > !one)

let test_random_in_grid () =
  let rng = Nn.Rng.create 5 in
  for _ = 1 to 200 do
    let a = Agents.Random_search.pick rng in
    Alcotest.(check bool) "valid indices" true
      (a.Rl.Spaces.vf_idx >= 0
      && a.Rl.Spaces.vf_idx < Rl.Spaces.n_vf
      && a.Rl.Spaces.if_idx >= 0
      && a.Rl.Spaces.if_idx < Rl.Spaces.n_if)
  done

let suite =
  [
    ( "agents.dtree",
      [
        Alcotest.test_case "axis split" `Quick test_dtree_axis_split;
        Alcotest.test_case "xor" `Quick test_dtree_xor;
        Alcotest.test_case "depth bounded" `Quick test_dtree_depth_bounded;
        Alcotest.test_case "empty input" `Quick test_dtree_empty;
        Alcotest.test_case "single class" `Quick test_dtree_single_class;
      ] );
    ( "agents.nns",
      [
        Alcotest.test_case "exact on training set" `Quick
          test_nns_exact_on_training;
        Alcotest.test_case "nearest" `Quick test_nns_nearest;
        Alcotest.test_case "k majority" `Quick test_nns_k_majority;
      ] );
    ( "agents.random",
      [
        Alcotest.test_case "budget improves" `Quick test_random_budget_improves;
        Alcotest.test_case "stays in grid" `Quick test_random_in_grid;
      ] );
  ]
