(* Tests for the benchmark corpora: generators, suites, splits. *)

let test_generate_deterministic () =
  let a = Dataset.Loopgen.generate ~seed:9 50 in
  let b = Dataset.Loopgen.generate ~seed:9 50 in
  Alcotest.(check bool) "same corpus" true (a = b);
  let c = Dataset.Loopgen.generate ~seed:10 50 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_generate_count_and_names () =
  let corpus = Dataset.Loopgen.generate ~seed:1 100 in
  Alcotest.(check int) "count" 100 (Array.length corpus);
  let names = Array.map (fun p -> p.Dataset.Program.p_name) corpus in
  let uniq = List.sort_uniq compare (Array.to_list names) in
  Alcotest.(check int) "unique names" 100 (List.length uniq)

let test_generate_family_coverage () =
  let corpus = Dataset.Loopgen.generate ~seed:2 500 in
  let fams =
    Array.to_list corpus
    |> List.map (fun p -> p.Dataset.Program.p_family)
    |> List.sort_uniq compare
  in
  Alcotest.(check bool)
    (Printf.sprintf "many families (%d)" (List.length fams))
    true
    (List.length fams >= 10)

let test_all_generated_compile_and_run () =
  let corpus = Dataset.Loopgen.generate ~seed:3 150 in
  Array.iter
    (fun p ->
      match Neurovec.Pipeline.run_baseline p with
      | r ->
          if not (r.Neurovec.Pipeline.exec_seconds > 0.0) then
            Alcotest.failf "%s: nonpositive time" p.Dataset.Program.p_name
      | exception e ->
          Alcotest.failf "%s failed: %s" p.Dataset.Program.p_name
            (Printexc.to_string e))
    corpus

let test_generated_semantics_stable_under_vectorization () =
  (* the generated corpus must be safe for any pragma the agent can pick *)
  let corpus = Dataset.Loopgen.generate ~seed:4 40 in
  Array.iter
    (fun p ->
      let run src =
        let m =
          Ir_lower.lower_program ~bindings:p.Dataset.Program.p_bindings
            (Minic.Parser.parse_string src)
        in
        ignore (Vectorizer.Licm.run_modul m);
        ignore (Vectorizer.Cse.run_modul m);
        ignore (Vectorizer.Licm.run_modul m);
        ignore (Vectorizer.Planner.run_modul m);
        let fn =
          List.find
            (fun f -> f.Ir.fn_name = p.Dataset.Program.p_kernel)
            m.Ir.m_funcs
        in
        let st = Ir_interp.init_state m in
        let r = Ir_interp.run_func st fn () in
        (r, Ir_interp.state_fingerprint st r)
      in
      let scalar =
        run (Neurovec.Injector.inject_all p.Dataset.Program.p_source ~vf:1 ~if_:1)
      in
      let vec =
        run (Neurovec.Injector.inject_all p.Dataset.Program.p_source ~vf:8 ~if_:2)
      in
      (* float kernels may reassociate reductions; only integer-exact
         programs are compared strictly *)
      let is_float =
        let s = p.Dataset.Program.p_source in
        let has sub =
          let re = ref false in
          let ls = String.length s and lsub = String.length sub in
          for i = 0 to ls - lsub do
            if String.sub s i lsub = sub then re := true
          done;
          !re
        in
        has "float" || has "double"
      in
      if (not is_float) && scalar <> vec then
        Alcotest.failf "%s: vectorization changed semantics"
          p.Dataset.Program.p_name)
    corpus

let test_split_proportions () =
  let corpus = Dataset.Loopgen.generate ~seed:5 200 in
  let train, test = Dataset.Loopgen.train_test_split corpus in
  Alcotest.(check int) "test 20%" 40 (Array.length test);
  Alcotest.(check int) "train 80%" 160 (Array.length train);
  (* disjoint *)
  let test_names =
    Array.to_list test |> List.map (fun p -> p.Dataset.Program.p_name)
  in
  Array.iter
    (fun p ->
      if List.mem p.Dataset.Program.p_name test_names then
        Alcotest.fail "train/test overlap")
    train

let test_suites_compile () =
  List.iter
    (fun (label, progs) ->
      Array.iter
        (fun p ->
          match Neurovec.Pipeline.run_baseline p with
          | _ -> ()
          | exception e ->
              Alcotest.failf "%s/%s: %s" label p.Dataset.Program.p_name
                (Printexc.to_string e))
        progs)
    [ ("llvm", Dataset.Llvm_suite.programs);
      ("polybench", Dataset.Polybench.programs);
      ("mibench", Dataset.Mibench.programs) ]

let test_suite_sizes () =
  Alcotest.(check bool) "llvm suite >= 15" true
    (Array.length Dataset.Llvm_suite.programs >= 15);
  Alcotest.(check int) "6 polybench" 6 (Array.length Dataset.Polybench.programs);
  Alcotest.(check int) "6 mibench" 6 (Array.length Dataset.Mibench.programs)

let test_ten_thousand_corpus () =
  (* the paper's dataset size: >10,000 generated loop programs; generation
     must be fast and name-unique *)
  let corpus = Dataset.Loopgen.generate ~seed:6 10_000 in
  Alcotest.(check int) "10k programs" 10_000 (Array.length corpus);
  let h = Hashtbl.create 10_000 in
  Array.iter (fun p -> Hashtbl.replace h p.Dataset.Program.p_source ()) corpus;
  Alcotest.(check bool)
    (Printf.sprintf "high source diversity (%d distinct)" (Hashtbl.length h))
    true
    (Hashtbl.length h > 5_000)

let suite =
  [
    ( "dataset",
      [
        Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
        Alcotest.test_case "count and names" `Quick test_generate_count_and_names;
        Alcotest.test_case "family coverage" `Quick test_generate_family_coverage;
        Alcotest.test_case "all compile and run" `Slow
          test_all_generated_compile_and_run;
        Alcotest.test_case "vectorization-safe corpus" `Slow
          test_generated_semantics_stable_under_vectorization;
        Alcotest.test_case "train/test split" `Quick test_split_proportions;
        Alcotest.test_case "suites compile" `Quick test_suites_compile;
        Alcotest.test_case "suite sizes" `Quick test_suite_sizes;
        Alcotest.test_case "10k corpus" `Slow test_ten_thousand_corpus;
      ] );
  ]
