(* Tests for the polyhedral-lite optimizer: SCoP detection, tiling, fusion. *)

let lower ?bindings src = Ir_lower.lower_program ?bindings (Minic.Parser.parse_string src)

let find_fn m name =
  match List.find_opt (fun f -> f.Ir.fn_name = name) m.Ir.m_funcs with
  | Some f -> f
  | None -> Alcotest.failf "function %s not found" name

let run m name =
  let st = Ir_interp.init_state m in
  let r = Ir_interp.run_func st (find_fn m name) () in
  (r, Ir_interp.state_fingerprint st r)

(* gemm in the PolyBench form (C[i][j] += ...), which is permutable *)
let gemm n =
  Printf.sprintf
    "float A[%d][%d]; float B[%d][%d]; float C[%d][%d];\n\
     float f() { int i; int j; int k;\n\
     for (i = 0; i < %d; i++)\n\
       for (j = 0; j < %d; j++)\n\
         for (k = 0; k < %d; k++)\n\
           C[i][j] += A[i][k] * B[k][j];\n\
     return C[%d][%d]; }"
    n n n n n n n n n (n / 2) (n / 3)

let test_scop_detect_gemm () =
  let m = lower (gemm 16) in
  let fn = find_fn m "f" in
  match Polly.Scop.scops_of_func fn with
  | [ s ] ->
      Alcotest.(check int) "3-deep band" 3 (List.length s.Polly.Scop.nest);
      Alcotest.(check (list int)) "trips" [ 16; 16; 16 ] s.Polly.Scop.trips;
      Alcotest.(check bool) "permutable" true (Polly.Scop.is_permutable s)
  | ss -> Alcotest.failf "expected 1 scop, got %d" (List.length ss)

let test_scop_not_permutable () =
  (* b[i] = b[i-1]-style coupling across iterations: same base read+written
     with different index functions *)
  let m =
    lower
      "int b[64]; void f() { int i; int j;\n\
       for (i = 1; i < 64; i++) for (j = 0; j < 4; j++) b[i] = b[i-1] + j; }"
  in
  let fn = find_fn m "f" in
  match Polly.Scop.scops_of_func fn with
  | [ s ] -> Alcotest.(check bool) "not permutable" false (Polly.Scop.is_permutable s)
  | _ -> Alcotest.fail "expected 1 scop"

let test_tiling_preserves_gemm () =
  let src = gemm 40 in
  let r0 = run (lower src) "f" in
  let m = lower src in
  let stats = Polly.Driver.optimize ~tile:16 m in
  Alcotest.(check int) "one scop tiled" 1 stats.Polly.Driver.tiled_scops;
  let r1 = run m "f" in
  Alcotest.(check bool) "tiling preserves semantics" true (r0 = r1)

let test_tiling_helps_timing () =
  let src = gemm 256 in
  let tgt = Machine.Target.skylake_avx2 in
  let m0 = lower src in
  ignore (Vectorizer.Licm.run_modul m0);
  let base = Machine.Timing.cycles tgt m0 (find_fn m0 "f") in
  let m1 = lower src in
  ignore (Polly.Driver.optimize ~tile:16 m1);
  ignore (Vectorizer.Licm.run_modul m1);
  let tiled = Machine.Timing.cycles tgt m1 (find_fn m1 "f") in
  if not (tiled < base) then
    Alcotest.failf "tiling should reduce cycles: %.0f -> %.0f" base tiled

let test_licm_preserves_semantics () =
  let src = gemm 24 in
  let r0 = run (lower src) "f" in
  let m = lower src in
  let moved = Vectorizer.Licm.run_modul m in
  Alcotest.(check bool) "something hoisted" true (moved > 0);
  Alcotest.(check bool) "licm preserves semantics" true (run m "f" = r0)

let test_small_nest_untouched () =
  (* trips below the tile size: nothing to tile *)
  let m = lower (gemm 8) in
  let stats = Polly.Driver.optimize ~tile:16 m in
  Alcotest.(check int) "no tiling" 0 stats.Polly.Driver.tiled_scops

let fusable_src =
  "float a[256]; float b[256]; float c[256];\n\
   float f() { int i; int j;\n\
   for (i = 0; i < 256; i++) a[i] = b[i] * 2.0;\n\
   for (j = 0; j < 256; j++) c[j] = a[j] + 1.0;\n\
   return c[100]; }"

let test_fusion_applies () =
  let m = lower fusable_src in
  let fn = find_fn m "f" in
  let n = Polly.Fusion.apply fn in
  Alcotest.(check int) "one fusion" 1 n;
  Alcotest.(check int) "one loop remains" 1 (List.length (Ir.func_loops fn))

let test_fusion_preserves () =
  let r0 = run (lower fusable_src) "f" in
  let m = lower fusable_src in
  ignore (Polly.Fusion.apply (find_fn m "f"));
  let r1 = run m "f" in
  Alcotest.(check bool) "fusion preserves semantics" true (r0 = r1)

let test_fusion_rejects_shifted_consumer () =
  (* second loop reads a[j-1]: fusing would read a stale element *)
  let src =
    "int a[256]; int b[256]; int c[256];\n\
     int f() { int i; int j;\n\
     for (i = 0; i < 256; i++) a[i] = b[i];\n\
     for (j = 1; j < 256; j++) c[j] = a[j-1];\n\
     return c[100]; }"
  in
  let m = lower src in
  let n = Polly.Fusion.apply (find_fn m "f") in
  Alcotest.(check int) "no fusion" 0 n

let test_fusion_rejects_different_domains () =
  let src =
    "int a[256]; int b[256];\n\
     void f() { int i; int j;\n\
     for (i = 0; i < 256; i++) a[i] = i;\n\
     for (j = 0; j < 128; j++) b[j] = j; }"
  in
  let m = lower src in
  Alcotest.(check int) "no fusion" 0 (Polly.Fusion.apply (find_fn m "f"))

(* qcheck: tiling random permutable 2-d nests preserves semantics *)
let gen_nest : (string * int) QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    let* n = int_range 10 50 in
    let* tile = oneofl [ 4; 8; 16 ] in
    let* body =
      oneofl
        [ "C[i][j] += A[i][j] * 2;";
          "C[i][j] += A[i][j] + B[j][i];";
          "C[i][j] = A[i][j] + B[i][j];";
          "C[i][j] += i + j;" ]
    in
    return
      ( Printf.sprintf
          "int A[64][64]; int B[64][64]; int C[64][64];\n\
           int f() { int i; int j;\n\
           for (i = 0; i < %d; i++) for (j = 0; j < %d; j++) { %s }\n\
           return C[%d][%d]; }"
          n n body (n / 2) (n / 2),
        tile )
  in
  QCheck.make gen ~print:(fun (s, t) -> Printf.sprintf "tile=%d\n%s" t s)

let prop_tiling_preserves =
  QCheck.Test.make ~name:"tiling preserves semantics (random nests)" ~count:100
    gen_nest (fun (src, tile) ->
      let r0 = run (lower src) "f" in
      let m = lower src in
      ignore (Polly.Driver.optimize ~tile m);
      run m "f" = r0)

let suite =
  [
    ( "polly",
      [
        Alcotest.test_case "gemm scop detected" `Quick test_scop_detect_gemm;
        Alcotest.test_case "non-permutable rejected" `Quick
          test_scop_not_permutable;
        Alcotest.test_case "tiling preserves gemm" `Quick
          test_tiling_preserves_gemm;
        Alcotest.test_case "tiling reduces cycles" `Quick
          test_tiling_helps_timing;
        Alcotest.test_case "licm preserves semantics" `Quick
          test_licm_preserves_semantics;
        Alcotest.test_case "small nest untouched" `Quick
          test_small_nest_untouched;
        Alcotest.test_case "fusion applies" `Quick test_fusion_applies;
        Alcotest.test_case "fusion preserves semantics" `Quick
          test_fusion_preserves;
        Alcotest.test_case "fusion rejects shifted consumer" `Quick
          test_fusion_rejects_shifted_consumer;
        Alcotest.test_case "fusion rejects different domains" `Quick
          test_fusion_rejects_different_domains;
      ]
      @ List.map QCheck_alcotest.to_alcotest [ prop_tiling_preserves ] );
  ]
