(* Tests for action spaces, the agent's distributions, and PPO learning on
   synthetic bandits. *)

let mk_agent ?(space = Rl.Spaces.Discrete) seed =
  Rl.Agent.create ~space (Nn.Rng.create seed)

let some_ids agent =
  let prog = Minic.Parser.parse_string
      "int a[64]; int b[64]; int kernel() { int i; for (i=0;i<64;i++) a[i]=b[i]; return a[0]; }"
  in
  let stmt = Neurovec.Extractor.embedding_stmt prog in
  Embedding.Code2vec.encode agent.Rl.Agent.c2v
    (Embedding.Ast_path.contexts_of_stmt stmt)

(* ------------------------------------------------------------------ *)
(* Spaces                                                               *)
(* ------------------------------------------------------------------ *)

let test_spaces_grid () =
  Alcotest.(check int) "35 actions" 35 (List.length Rl.Spaces.all_actions);
  Alcotest.(check int) "n_flat" 35 Rl.Spaces.n_flat

let test_spaces_flat_roundtrip () =
  List.iter
    (fun a ->
      let a' = Rl.Spaces.of_flat (Rl.Spaces.flat_of a) in
      Alcotest.(check bool) "round trip" true (a = a'))
    Rl.Spaces.all_actions

let test_spaces_of_flat_clamps () =
  let a = Rl.Spaces.of_flat 9999 in
  Alcotest.(check int) "max vf idx" (Rl.Spaces.n_vf - 1) a.Rl.Spaces.vf_idx;
  let b = Rl.Spaces.of_flat (-5) in
  Alcotest.(check int) "min" 0 b.Rl.Spaces.vf_idx

let test_spaces_values_powers_of_two () =
  Array.iter
    (fun v -> Alcotest.(check bool) "pow2" true (v land (v - 1) = 0))
    Rl.Spaces.vf_values

(* ------------------------------------------------------------------ *)
(* Agent distributions                                                  *)
(* ------------------------------------------------------------------ *)

let test_sample_logp_consistency () =
  List.iter
    (fun space ->
      let agent = mk_agent ~space 11 in
      let ids = some_ids agent in
      for _ = 1 to 20 do
        let f = Rl.Agent.forward agent ids in
        let taken = Rl.Agent.sample agent f in
        let lp = Rl.Agent.logp agent f taken in
        if abs_float (lp -. taken.Rl.Agent.logp) > 1e-9 then
          Alcotest.failf "%s: logp mismatch %f vs %f"
            (Rl.Spaces.kind_to_string space)
            lp taken.Rl.Agent.logp
      done)
    [ Rl.Spaces.Discrete; Rl.Spaces.Continuous1; Rl.Spaces.Continuous2 ]

let test_predict_deterministic () =
  let agent = mk_agent 12 in
  let ids = some_ids agent in
  let a = Rl.Agent.predict agent ids in
  let b = Rl.Agent.predict agent ids in
  Alcotest.(check bool) "same action" true (a = b)

let test_entropy_positive () =
  let agent = mk_agent 13 in
  let f = Rl.Agent.forward agent (some_ids agent) in
  Alcotest.(check bool) "entropy > 0" true (Rl.Agent.entropy agent f > 0.0)

(* finite-difference check: d(logp)/d(logits) for the discrete head *)
let test_discrete_logp_gradient () =
  let agent = mk_agent 14 in
  let ids = some_ids agent in
  let f = Rl.Agent.forward agent ids in
  let taken = Rl.Agent.sample agent f in
  let dpi = Rl.Agent.dpi_of agent f taken ~dlogp_coef:1.0 ~dent_coef:0.0 in
  (* perturb a logit and recompute logp *)
  List.iter
    (fun k ->
      let pi = Array.copy f.Rl.Agent.pi in
      pi.(k) <- pi.(k) +. 1e-5;
      let lp_p = Rl.Agent.logp agent { f with Rl.Agent.pi } taken in
      pi.(k) <- pi.(k) -. 2e-5;
      let lp_m = Rl.Agent.logp agent { f with Rl.Agent.pi } taken in
      let numeric = (lp_p -. lp_m) /. 2e-5 in
      if abs_float (numeric -. dpi.(k)) > 1e-3 then
        Alcotest.failf "dlogits[%d]: numeric %f vs analytic %f" k numeric
          dpi.(k))
    [ 0; 3; 7; 9 ]

(* ------------------------------------------------------------------ *)
(* PPO on synthetic bandits                                             *)
(* ------------------------------------------------------------------ *)

(* one context, one rewarded action: PPO must find it *)
let test_ppo_learns_fixed_target () =
  let agent = mk_agent 15 in
  let samples = [| { Rl.Ppo.s_id = 0; s_ids = some_ids agent } |] in
  let target = { Rl.Spaces.vf_idx = 3; if_idx = 1 } in
  let reward _ (a : Rl.Spaces.action) =
    if a = target then 1.0 else if a.Rl.Spaces.vf_idx = 3 then 0.3 else 0.0
  in
  ignore
    (Rl.Ppo.train
       ~hyper:{ Rl.Ppo.default_hyper with batch_size = 64; lr = 3e-3 }
       agent ~samples ~reward ~total_steps:1500);
  let predicted = Rl.Agent.predict agent samples.(0).Rl.Ppo.s_ids in
  Alcotest.(check bool) "found the rewarded action" true (predicted = target)

(* two distinguishable contexts with different optimal actions *)
let test_ppo_distinguishes_contexts () =
  let agent = mk_agent 16 in
  let ids_of src =
    let prog = Minic.Parser.parse_string src in
    Embedding.Code2vec.encode agent.Rl.Agent.c2v
      (Embedding.Ast_path.contexts_of_stmt
         (Neurovec.Extractor.embedding_stmt prog))
  in
  let s0 =
    ids_of "int a[64]; int kernel() { int i; for (i=0;i<64;i++) a[i] = i; return a[0]; }"
  in
  let s1 =
    ids_of
      "float x[64]; float y[64]; int kernel() { float s = 0; int i; for (i=0;i<64;i++) s += x[i]*y[i]; return (int) s; }"
  in
  let samples =
    [| { Rl.Ppo.s_id = 0; s_ids = s0 }; { Rl.Ppo.s_id = 1; s_ids = s1 } |]
  in
  let reward id (a : Rl.Spaces.action) =
    match id with
    | 0 -> if a.Rl.Spaces.vf_idx = 1 then 1.0 else 0.0
    | _ -> if a.Rl.Spaces.vf_idx = 5 then 1.0 else 0.0
  in
  ignore
    (Rl.Ppo.train
       ~hyper:{ Rl.Ppo.default_hyper with batch_size = 128; lr = 3e-3 }
       agent ~samples ~reward ~total_steps:4000);
  let p0 = Rl.Agent.predict agent s0 and p1 = Rl.Agent.predict agent s1 in
  Alcotest.(check int) "context 0 -> vf idx 1" 1 p0.Rl.Spaces.vf_idx;
  Alcotest.(check int) "context 1 -> vf idx 5" 5 p1.Rl.Spaces.vf_idx

let test_ppo_reward_improves () =
  let agent = mk_agent 17 in
  let samples = [| { Rl.Ppo.s_id = 0; s_ids = some_ids agent } |] in
  let reward _ (a : Rl.Spaces.action) =
    float_of_int a.Rl.Spaces.vf_idx /. 6.0
  in
  let hist =
    Rl.Ppo.train
      ~hyper:{ Rl.Ppo.default_hyper with batch_size = 64; lr = 3e-3 }
      agent ~samples ~reward ~total_steps:1280
  in
  let first = (List.hd hist).Rl.Ppo.reward_mean in
  let last = (List.hd (List.rev hist)).Rl.Ppo.reward_mean in
  Alcotest.(check bool)
    (Printf.sprintf "improves (%.3f -> %.3f)" first last)
    true (last > first)

let test_ppo_stats_shape () =
  let agent = mk_agent 18 in
  let samples = [| { Rl.Ppo.s_id = 0; s_ids = some_ids agent } |] in
  let hist =
    Rl.Ppo.train
      ~hyper:{ Rl.Ppo.default_hyper with batch_size = 50 }
      agent ~samples
      ~reward:(fun _ _ -> 0.5)
      ~total_steps:150
  in
  Alcotest.(check int) "three updates" 3 (List.length hist);
  List.iteri
    (fun i st ->
      Alcotest.(check int) "update number" (i + 1) st.Rl.Ppo.update;
      Alcotest.(check (float 1e-9)) "constant reward" 0.5 st.Rl.Ppo.reward_mean)
    hist

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                          *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_roundtrip () =
  let agent = mk_agent 19 in
  let ids = some_ids agent in
  let before = Rl.Agent.predict agent ids in
  let path = Filename.temp_file "neurovec" ".agent" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Rl.Checkpoint.save agent path;
      let loaded = Rl.Checkpoint.load path in
      let after = Rl.Agent.predict loaded ids in
      Alcotest.(check bool) "same prediction" true (before = after))

let test_checkpoint_rejects_garbage () =
  let path = Filename.temp_file "neurovec" ".agent" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_value oc ("something-else", 9);
      close_out oc;
      match Rl.Checkpoint.load path with
      | exception Rl.Checkpoint.Bad_checkpoint _ -> ()
      | _ -> Alcotest.fail "expected Bad_checkpoint")

let suite =
  [
    ( "rl.spaces",
      [
        Alcotest.test_case "35-point grid" `Quick test_spaces_grid;
        Alcotest.test_case "flat round trip" `Quick test_spaces_flat_roundtrip;
        Alcotest.test_case "of_flat clamps" `Quick test_spaces_of_flat_clamps;
        Alcotest.test_case "powers of two" `Quick
          test_spaces_values_powers_of_two;
      ] );
    ( "rl.agent",
      [
        Alcotest.test_case "sample/logp consistency" `Quick
          test_sample_logp_consistency;
        Alcotest.test_case "predict deterministic" `Quick
          test_predict_deterministic;
        Alcotest.test_case "entropy positive" `Quick test_entropy_positive;
        Alcotest.test_case "discrete logp gradient" `Quick
          test_discrete_logp_gradient;
      ] );
    ( "rl.checkpoint",
      [
        Alcotest.test_case "round trip" `Quick test_checkpoint_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick
          test_checkpoint_rejects_garbage;
      ] );
    ( "rl.ppo",
      [
        Alcotest.test_case "learns fixed target" `Slow
          test_ppo_learns_fixed_target;
        Alcotest.test_case "distinguishes contexts" `Slow
          test_ppo_distinguishes_contexts;
        Alcotest.test_case "reward improves" `Quick test_ppo_reward_improves;
        Alcotest.test_case "stats bookkeeping" `Quick test_ppo_stats_shape;
      ] );
  ]
