test/test_agents.ml: Agents Alcotest Array Nn Printf Rl
