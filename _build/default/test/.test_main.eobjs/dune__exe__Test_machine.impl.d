test/test_machine.ml: Alcotest Analysis Dataset Ir Ir_lower List Machine Minic Neurovec Printf Vectorizer
