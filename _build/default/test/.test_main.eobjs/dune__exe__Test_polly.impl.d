test/test_polly.ml: Alcotest Ir Ir_interp Ir_lower List Machine Minic Polly Printf QCheck QCheck_alcotest Vectorizer
