test/test_minic.ml: Alcotest Ast Int64 Lexer List Minic Parser Pretty Printf QCheck QCheck_alcotest Sema Token
