test/test_ir.ml: Alcotest Array Float Hashtbl Int64 Ir Ir_interp Ir_lower List Minic Printf QCheck QCheck_alcotest String
