test/test_nn.ml: Alcotest Array Float Fun List Nn
