test/test_analysis.ml: Alcotest Analysis Ir Ir_lower List Minic Printf
