test/test_core.ml: Alcotest Array Dataset List Minic Neurovec Printf Rl String
