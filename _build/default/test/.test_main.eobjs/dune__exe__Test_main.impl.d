test/test_main.ml: Alcotest Test_agents Test_analysis Test_core Test_dataset Test_embedding Test_ir Test_machine Test_minic Test_nn Test_polly Test_rl Test_vectorizer
