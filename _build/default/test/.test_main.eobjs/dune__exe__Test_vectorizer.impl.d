test/test_vectorizer.ml: Alcotest Analysis Ir Ir_interp Ir_lower List Minic Printf QCheck QCheck_alcotest String Vectorizer
