test/test_dataset.ml: Alcotest Array Dataset Hashtbl Ir Ir_interp Ir_lower List Minic Neurovec Printexc Printf String Vectorizer
