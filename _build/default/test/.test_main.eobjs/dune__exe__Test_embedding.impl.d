test/test_embedding.ml: Alcotest Array Embedding Float List Minic Nn Printf String
