test/test_rl.ml: Alcotest Array Embedding Filename Fun List Minic Neurovec Nn Printf Rl Sys
