(** Small structural probes over IR bodies used by the timing model. *)

module IntSet = Set.Make (Int)

let value_regs (v : Ir.value) = match v with Ir.Reg r -> [ r ] | _ -> []

let rvalue_regs (rv : Ir.rvalue) : Ir.reg list =
  match rv with
  | Ir.IBin (_, _, a, b) | Ir.FBin (_, _, a, b) | Ir.ICmp (_, _, a, b)
  | Ir.FCmp (_, _, a, b) ->
      value_regs a @ value_regs b
  | Ir.Select (_, c, a, b) -> value_regs c @ value_regs a @ value_regs b
  | Ir.Cast (_, _, _, v) | Ir.Splat (_, v) | Ir.Extract (_, v, _)
  | Ir.Reduce (_, _, v) | Ir.Mov (_, v) | Ir.Stride (_, v, _) ->
      value_regs v
  | Ir.Load (_, m) ->
      value_regs m.Ir.index
      @ (match m.Ir.mask with Some v -> value_regs v | None -> [])

let instr_regs (i : Ir.instr) : Ir.reg list =
  match i with
  | Ir.Def (_, rv) -> rvalue_regs rv
  | Ir.Store (_, m, v) ->
      value_regs m.Ir.index @ value_regs v
      @ (match m.Ir.mask with Some mv -> value_regs mv | None -> [])
  | Ir.CallI (_, _, args) -> List.concat_map value_regs args

(** Registers that carry a value across iterations of a body: defined
    within it, but read before their first definition (e.g. a reduction
    accumulator). Their update latencies form the serial dependence chain
    that bounds how fast iterations can retire. *)
let carried_regs (body : Ir.node list) : IntSet.t =
  let instrs = Ir.all_instrs body in
  let defined =
    List.fold_left
      (fun s i ->
        match i with
        | Ir.Def (r, _) | Ir.CallI (Some r, _, _) -> IntSet.add r s
        | _ -> s)
      IntSet.empty instrs
  in
  let carried = ref IntSet.empty in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun i ->
      List.iter
        (fun r ->
          if IntSet.mem r defined && not (Hashtbl.mem seen r) then
            carried := IntSet.add r !carried)
        (instr_regs i);
      match i with
      | Ir.Def (r, _) | Ir.CallI (Some r, _, _) -> Hashtbl.replace seen r ()
      | _ -> ())
    instrs;
  !carried
