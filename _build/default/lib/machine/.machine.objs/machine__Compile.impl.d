lib/machine/compile.ml: Ir List
