lib/machine/target.ml:
