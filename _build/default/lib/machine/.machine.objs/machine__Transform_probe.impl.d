lib/machine/transform_probe.ml: Hashtbl Int Ir List Set
