lib/machine/timing.ml: Analysis Array Hashtbl Ir List Target Transform_probe
