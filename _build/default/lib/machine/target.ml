(** Target machine description.

    The default target is modelled on the paper's testbed — a 2.7 GHz Intel
    i7-8559U with AVX2 and 16 GB LPDDR3 — at the level of detail an
    llvm-mca-style bound analysis needs: issue width, per-class port
    counts, operation latencies, a three-level memory hierarchy with
    per-level bandwidth, register-file capacity, and branch costs.

    The timing model in {!Timing} computes loop cycles as the maximum over
    throughput bounds, the loop-carried latency bound, and the memory
    bandwidth bound. Everything the baseline linear cost model cannot see
    (latency hiding through interleave, port saturation, register spills,
    gather costs, cache footprint) lives here — this is the "real
    hardware" the RL agent probes with its rewards. *)

type t = {
  name : string;
  vec_bits : int;  (** SIMD register width (AVX2: 256) *)
  issue_width : float;  (** decoded uops per cycle *)
  int_ports : float;
  fp_ports : float;
  load_ports : float;
  store_ports : float;
  phys_vregs : int;  (** architectural vector registers *)
  (* latencies, cycles *)
  lat_int_alu : float;
  lat_int_mul : float;
  lat_fp : float;  (** fadd/fmul *)
  lat_div : float;
  lat_load_l1 : float;
  lat_load_l2 : float;
  lat_load_mem : float;
  (* memory hierarchy *)
  l1_bytes : int;
  l2_bytes : int;
  bw_l1 : float;  (** bytes per cycle *)
  bw_l2 : float;
  bw_mem : float;
  (* control *)
  branch_miss_penalty : float;
  loop_overhead_uops : float;  (** induction update + compare&branch *)
  spill_uops : float;  (** store+reload per spilled register per iteration *)
  ghz : float;  (** to convert cycles to (simulated) seconds *)
}

(** The default AVX2 target ("skylake-like"), calibrated so the baseline
    cost model's (VF=4, IF=2) choice on the dot-product kernel runs ~2.6x
    faster than scalar code, matching the paper's Figure 1 baseline. *)
let skylake_avx2 =
  {
    name = "skylake-avx2";
    vec_bits = 256;
    issue_width = 4.0;
    int_ports = 3.0;
    fp_ports = 2.0;
    load_ports = 2.0;
    store_ports = 1.0;
    phys_vregs = 16;
    lat_int_alu = 1.0;
    lat_int_mul = 3.0;
    lat_fp = 4.0;
    lat_div = 20.0;
    lat_load_l1 = 4.0;
    lat_load_l2 = 14.0;
    lat_load_mem = 50.0;
    l1_bytes = 32 * 1024;
    l2_bytes = 256 * 1024;
    bw_l1 = 64.0;
    bw_l2 = 32.0;
    bw_mem = 8.0;
    branch_miss_penalty = 14.0;
    loop_overhead_uops = 2.0;
    spill_uops = 2.0;
    ghz = 2.7;
  }

(** A narrower SSE-class machine (128-bit vectors), used by ablation
    benches to show the learned policy is target-specific. *)
let sse4 =
  {
    skylake_avx2 with
    name = "sse4";
    vec_bits = 128;
    issue_width = 3.0;
    int_ports = 2.0;
    fp_ports = 1.0;
    phys_vregs = 8;
  }

(** A wide hypothetical AVX-512 machine with more registers. *)
let avx512 =
  {
    skylake_avx2 with
    name = "avx512";
    vec_bits = 512;
    phys_vregs = 32;
    fp_ports = 2.0;
  }
