(** Aggregated per-loop analysis: everything the vectorizer's legality and
    cost phases need, in one record. *)

type t = {
  li_loop : Ir.loop;
  li_trip_count : int option;  (** exact when init and bound are constants *)
  li_accesses : Access.access list;
  li_reductions : Reduction.reduction list;
  li_blocked_scalars : Ir.reg list;  (** loop-carried, not reductions *)
  li_max_safe_vf : int;
  li_vectorizable : bool;
  li_reasons : string list;  (** why not vectorizable (empty if it is) *)
  li_if_depth : int;
}

(** Constant-fold a code sequence whose instructions operate only on
    constants (e.g. an adjusted loop bound [N - (K-1)]), yielding the value
    it computes. *)
let eval_code_const ((code, v) : Ir.code) : int option =
  let env = Hashtbl.create 8 in
  let value = function
    | Ir.IConst i -> Some (Int64.to_int i)
    | Ir.Reg r -> Hashtbl.find_opt env r
    | Ir.FConst _ -> None
  in
  List.iter
    (fun i ->
      match i with
      | Ir.Def (r, Ir.IBin (op, _, a, b)) -> (
          match (value a, value b) with
          | Some x, Some y ->
              Hashtbl.replace env r
                (Int64.to_int
                   (Ir_interp.ibin_eval op (Int64.of_int x) (Int64.of_int y)))
          | _ -> ())
      | Ir.Def (r, Ir.Mov (_, a))
      | Ir.Def (r, Ir.Cast ((Ir.SExt | Ir.ZExt | Ir.Trunc), _, _, a)) -> (
          match value a with Some x -> Hashtbl.replace env r x | None -> ())
      | _ -> ())
    code;
  value v

(** Static trip count for constant (or constant-foldable) bounds. *)
let static_trip_count (l : Ir.loop) : int option =
  let const_of = eval_code_const in
  match (const_of l.Ir.l_init, const_of l.Ir.l_bound) with
  | Some lo, Some hi ->
      let step = l.Ir.l_step in
      let count =
        match l.Ir.l_cmp with
        | Ir.CLt -> if step > 0 then (hi - lo + step - 1) / step else 0
        | Ir.CLe -> if step > 0 then (hi - lo) / step + 1 else 0
        | Ir.CGt -> if step < 0 then (lo - hi - step - 1) / -step else 0
        | Ir.CGe -> if step < 0 then (lo - hi) / -step + 1 else 0
        | Ir.CEq | Ir.CNe -> 0
      in
      Some (max count 0)
  | _ -> None

(** Analyze one loop in the context of its enclosing induction variables. *)
let analyze ?(outer_vars = []) (l : Ir.loop) : t =
  let induction_vars = l.Ir.l_var :: outer_vars in
  let acc = Access.collect ~induction_vars l.Ir.l_body in
  let reductions, blocked = Reduction.analyze l in
  let verdict = Depend.analyze l acc.Access.accesses in
  let reasons = ref [] in
  let reason fmt = Printf.ksprintf (fun s -> reasons := s :: !reasons) fmt in
  if acc.Access.has_inner_loop then reason "contains an inner loop";
  if acc.Access.has_call then reason "contains a call";
  if acc.Access.has_irregular_cf then
    reason "contains break/continue/return/while";
  if acc.Access.if_depth > 1 then reason "if nesting deeper than 1";
  if blocked <> [] then
    reason "loop-carried scalar is not a recognised reduction";
  if List.exists (fun r -> r.Reduction.red_predicated) reductions then
    reason "predicated reduction";
  if verdict.Depend.unknown_pair <> None then
    reason "memory dependence cannot be analysed";
  if verdict.Depend.max_safe_vf <= 1 then reason "dependence distance < 2";
  (* all accesses must have a computable stride to be widened *)
  List.iter
    (fun a ->
      if Access.iter_stride l a = None then
        reason "non-affine access into %s" a.Access.acc_base)
    acc.Access.accesses;
  {
    li_loop = l;
    li_trip_count = static_trip_count l;
    li_accesses = acc.Access.accesses;
    li_reductions = reductions;
    li_blocked_scalars = blocked;
    li_max_safe_vf = verdict.Depend.max_safe_vf;
    li_vectorizable = !reasons = [];
    li_reasons = List.rev !reasons;
    li_if_depth = acc.Access.if_depth;
  }

(** Analyze every innermost loop of a function, with outer induction
    variables in scope. *)
let innermost_infos (fn : Ir.func) : t list =
  (* collect (loop, enclosing vars) pairs *)
  let acc = ref [] in
  let rec walk outer nodes =
    List.iter
      (fun n ->
        match n with
        | Ir.Loop l ->
            let inner_exists = ref false in
            Ir.iter_loops (fun _ -> inner_exists := true) l.Ir.l_body;
            if !inner_exists then walk (l.Ir.l_var :: outer) l.Ir.l_body
            else acc := (l, outer) :: !acc
        | Ir.If { then_; else_; _ } ->
            walk outer then_;
            walk outer else_
        | Ir.WhileLoop { w_body; _ } -> walk outer w_body
        | _ -> ())
      nodes
  in
  walk [] fn.Ir.fn_body;
  List.rev_map (fun (l, outer) -> analyze ~outer_vars:outer l) !acc
