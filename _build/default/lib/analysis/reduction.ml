(** Reduction recognition.

    Lowering turns [sum += e] into

    {v %t = add ty %sum, %e        (or fadd/mul/...)
       %sum = mov ty %t v}

    A register is a reduction candidate when its only in-loop definition is
    such a [mov] fed by a single associative binop over its own previous
    value, and it has no other in-loop uses. The vectorizer then widens the
    accumulator and adds a horizontal [reduce] epilogue. *)

type kind = RedAdd | RedMul | RedAnd | RedOr | RedXor

type reduction = {
  red_reg : Ir.reg;  (** the accumulator *)
  red_kind : kind;
  red_float : bool;
  red_predicated : bool;  (** update sits under an [If] *)
}

let reduce_op_of_kind = function
  | RedAdd -> Ir.RAdd
  | RedMul -> Ir.RMul
  | RedAnd -> Ir.RAnd
  | RedOr -> Ir.ROr
  | RedXor -> Ir.RXor

(** Identity element of a reduction, used to initialise extra lanes. *)
let identity_value (k : kind) (float : bool) : Ir.value =
  match (k, float) with
  | RedAdd, true -> Ir.FConst 0.0
  | RedAdd, false -> Ir.IConst 0L
  | RedMul, true -> Ir.FConst 1.0
  | RedMul, false -> Ir.IConst 1L
  | RedAnd, _ -> Ir.IConst (-1L)
  | RedOr, _ | RedXor, _ -> Ir.IConst 0L

(* Uses of a register in an rvalue. *)
let value_uses v r = match v with Ir.Reg x when x = r -> 1 | _ -> 0

let rvalue_uses (rv : Ir.rvalue) (r : Ir.reg) : int =
  match rv with
  | Ir.IBin (_, _, a, b) | Ir.FBin (_, _, a, b) | Ir.ICmp (_, _, a, b)
  | Ir.FCmp (_, _, a, b) ->
      value_uses a r + value_uses b r
  | Ir.Select (_, c, a, b) -> value_uses c r + value_uses a r + value_uses b r
  | Ir.Cast (_, _, _, v) | Ir.Splat (_, v) | Ir.Extract (_, v, _)
  | Ir.Reduce (_, _, v) | Ir.Mov (_, v) | Ir.Stride (_, v, _) ->
      value_uses v r
  | Ir.Load (_, m) -> value_uses m.Ir.index r
                      + (match m.Ir.mask with Some v -> value_uses v r | None -> 0)

let instr_uses (i : Ir.instr) (r : Ir.reg) : int =
  match i with
  | Ir.Def (_, rv) -> rvalue_uses rv r
  | Ir.Store (_, m, v) ->
      value_uses m.Ir.index r + value_uses v r
      + (match m.Ir.mask with Some mv -> value_uses mv r | None -> 0)
  | Ir.CallI (_, _, args) ->
      List.fold_left (fun n a -> n + value_uses a r) 0 args

(** Find reductions in a loop body. Returns the recognised reductions;
    [unrecognized_carried] lists loop-carried scalar registers that are
    *not* reductions (their presence blocks vectorization, as in LLVM). *)
let analyze (l : Ir.loop) : reduction list * Ir.reg list =
  let body = l.Ir.l_body in
  let instrs = Ir.all_instrs body in
  let defined = Scev.defined_regs body in
  (* Which defined regs are read before (or at) their first definition?
     Those carry values across iterations. The induction variable is
     excluded — the loop header handles it. *)
  let carried = ref [] in
  let seen_def = Hashtbl.create 16 in
  List.iter
    (fun i ->
      (* reads first *)
      Scev.IntMap.iter
        (fun r () ->
          if
            (not (Hashtbl.mem seen_def r))
            && r <> l.Ir.l_var
            && instr_uses i r > 0
            && not (List.mem r !carried)
          then carried := r :: !carried)
        defined;
      match i with
      | Ir.Def (r, _) | Ir.CallI (Some r, _, _) -> Hashtbl.replace seen_def r ()
      | _ -> ())
    instrs;
  let carried = List.rev !carried in
  (* Try to prove each carried reg is a reduction. *)
  let predicated_of_reg r =
    (* is the defining instruction under an If? *)
    let rec scan ~pred nodes found =
      List.fold_left
        (fun found n ->
          match n with
          | Ir.Block is ->
              List.fold_left
                (fun found i ->
                  match i with
                  | Ir.Def (r', _) when r' = r -> Some pred
                  | _ -> found)
                found is
          | Ir.If { then_; else_; _ } ->
              let found = scan ~pred:true then_ found in
              scan ~pred:true else_ found
          | Ir.Loop il -> scan ~pred il.Ir.l_body found
          | Ir.WhileLoop { w_body; _ } -> scan ~pred w_body found
          | _ -> found)
        found nodes
    in
    match scan ~pred:false body None with Some p -> p | None -> false
  in
  let classify r : reduction option =
    (* collect all defs of r and all uses of r in the body *)
    let defs = List.filter_map (function
        | Ir.Def (r', rv) when r' = r -> Some rv
        | _ -> None) instrs
    in
    let total_uses =
      List.fold_left (fun n i -> n + instr_uses i r) 0 instrs
    in
    match defs with
    | [ Ir.Mov (ty, Ir.Reg t) ] -> (
        (* find t's definition; must be a single binop using r once *)
        let t_defs = List.filter_map (function
            | Ir.Def (t', rv) when t' = t -> Some rv
            | _ -> None) instrs
        in
        let t_uses = List.fold_left (fun n i -> n + instr_uses i t) 0 instrs in
        match t_defs with
        | [ rv ] when t_uses = 1 -> (
            let kind_of_ibin = function
              | Ir.Add -> Some RedAdd
              | Ir.Mul -> Some RedMul
              | Ir.And -> Some RedAnd
              | Ir.Or -> Some RedOr
              | Ir.Xor -> Some RedXor
              | _ -> None
            in
            let kind_of_fbin = function
              | Ir.FAdd -> Some RedAdd
              | Ir.FMul -> Some RedMul
              | _ -> None
            in
            let mk kind float a b =
              (* accumulator must appear exactly once, as an operand *)
              if value_uses a r + value_uses b r = 1 && total_uses = 1 then
                Some { red_reg = r; red_kind = kind; red_float = float;
                       red_predicated = predicated_of_reg r }
              else None
            in
            match rv with
            | Ir.IBin (op, _, a, b) -> (
                match kind_of_ibin op with
                | Some k -> mk k false a b
                | None -> None)
            | Ir.FBin (op, _, a, b) -> (
                match kind_of_fbin op with
                | Some k ->
                    ignore ty;
                    mk k true a b
                | None -> None)
            | _ -> None)
        | _ -> None)
    | _ -> None
  in
  let reds, blocked =
    List.fold_left
      (fun (reds, blocked) r ->
        match classify r with
        | Some red -> (red :: reds, blocked)
        | None -> (reds, r :: blocked))
      ([], []) carried
  in
  (List.rev reds, List.rev blocked)
