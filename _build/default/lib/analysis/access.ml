(** Memory access collection for a loop body.

    Walks the body in execution order, running the {!Scev} abstract
    interpreter, and records every load and store with its affine index
    function, element type, and whether it executes under a predicate
    (inside an [If] that if-conversion would need to mask). *)

type access = {
  acc_base : string;
  acc_index : Scev.sval;  (** affine in the loop nest's induction vars *)
  acc_is_store : bool;
  acc_elem : Ir.scalar_ty;
  acc_predicated : bool;
}

type result = {
  accesses : access list;  (** in execution order *)
  has_call : bool;
  has_inner_loop : bool;
  has_irregular_cf : bool;  (** break / continue / return / while *)
  if_depth : int;  (** maximum nesting depth of If nodes *)
}

let collect ~(induction_vars : Ir.reg list) (body : Ir.node list) : result =
  let env = Scev.make_env ~induction_vars body in
  let accesses = ref [] in
  let has_call = ref false in
  let has_inner_loop = ref false in
  let has_irregular_cf = ref false in
  let max_if_depth = ref 0 in
  let record ~pred ~is_store (ty : Ir.ty) (m : Ir.mem_ref) =
    accesses :=
      { acc_base = m.Ir.base;
        acc_index = Scev.eval_value env m.Ir.index;
        acc_is_store = is_store;
        acc_elem = Ir.elem_ty ty;
        acc_predicated = pred }
      :: !accesses
  in
  let instr ~pred (i : Ir.instr) =
    (match i with
    | Ir.Def (_, Ir.Load (ty, m)) -> record ~pred ~is_store:false ty m
    | Ir.Store (ty, m, _) -> record ~pred ~is_store:true ty m
    | Ir.CallI _ -> has_call := true
    | Ir.Def _ -> ());
    Scev.step env i
  in
  let rec node ~pred ~depth (n : Ir.node) =
    if depth > !max_if_depth then max_if_depth := depth;
    match n with
    | Ir.Block is -> List.iter (instr ~pred) is
    | Ir.If { cond = ci, _; then_; else_ } ->
        List.iter (instr ~pred) ci;
        (* Values defined under the branches merge conservatively: we snapshot
           the env and mark regs defined in either branch as Unknown after. *)
        let snapshot = env.Scev.vals in
        List.iter (node ~pred:true ~depth:(depth + 1)) then_;
        List.iter (node ~pred:true ~depth:(depth + 1)) else_;
        let branch_defs = Scev.defined_regs (then_ @ else_) in
        env.Scev.vals <-
          Scev.IntMap.merge
            (fun r before after ->
              if Scev.IntMap.mem r branch_defs then Some Scev.Unknown
              else (match before with Some _ -> before | None -> after))
            snapshot env.Scev.vals
    | Ir.Loop l ->
        has_inner_loop := true;
        let ii, _ = l.Ir.l_init and bi, _ = l.Ir.l_bound in
        List.iter (instr ~pred) ii;
        List.iter (instr ~pred) bi;
        List.iter (node ~pred ~depth) l.Ir.l_body
    | Ir.WhileLoop { w_cond = ci, _; w_body } ->
        has_irregular_cf := true;
        List.iter (instr ~pred) ci;
        List.iter (node ~pred ~depth) w_body
    | Ir.Return _ | Ir.BreakN | Ir.ContinueN -> has_irregular_cf := true
  in
  List.iter (node ~pred:false ~depth:0) body;
  {
    accesses = List.rev !accesses;
    has_call = !has_call;
    has_inner_loop = !has_inner_loop;
    has_irregular_cf = !has_irregular_cf;
    if_depth = !max_if_depth;
  }

(** Stride (in elements, per loop iteration) of an access with respect to
    loop [l]: coefficient of the induction variable times the loop step.
    [None] if the index is not affine. *)
let iter_stride (l : Ir.loop) (a : access) : int option =
  match a.acc_index with
  | Scev.Unknown -> None
  | Scev.Affine _ -> Some (Scev.coeff_of l.Ir.l_var a.acc_index * l.Ir.l_step)
