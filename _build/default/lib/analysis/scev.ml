(** Scalar evolution: symbolic affine analysis of register values.

    Values inside a loop nest are represented as affine combinations of
    "symbols" — induction-variable registers of the enclosing loops plus
    loop-invariant registers — with an integer constant term. Anything
    nonlinear collapses to [Unknown]. This is the same information LLVM's
    SCEV provides to the loop vectorizer: access strides per loop and
    dependence-testable index functions. *)

module IntMap = Map.Make (Int)

(** An affine value: [sum (coeff_r * r) + const] over symbol registers. *)
type affine = { coeffs : int IntMap.t; const : int }

type sval = Affine of affine | Unknown

let const_aff c = Affine { coeffs = IntMap.empty; const = c }

let sym_aff r = Affine { coeffs = IntMap.singleton r 1; const = 0 }

let is_const = function
  | Affine a when IntMap.is_empty a.coeffs -> Some a.const
  | _ -> None

let add_sv a b =
  match (a, b) with
  | Affine x, Affine y ->
      Affine
        { coeffs =
            IntMap.union (fun _ c1 c2 -> if c1 + c2 = 0 then None else Some (c1 + c2))
              x.coeffs y.coeffs;
          const = x.const + y.const }
  | _ -> Unknown

let neg_sv = function
  | Affine x ->
      Affine { coeffs = IntMap.map (fun c -> -c) x.coeffs; const = -x.const }
  | Unknown -> Unknown

let sub_sv a b = add_sv a (neg_sv b)

let mul_sv a b =
  match (is_const a, is_const b, a, b) with
  | Some ca, _, _, Affine y ->
      if ca = 0 then const_aff 0
      else
        Affine
          { coeffs = IntMap.filter_map (fun _ c -> if c * ca = 0 then None else Some (c * ca)) y.coeffs;
            const = y.const * ca }
  | _, Some cb, Affine x, _ ->
      if cb = 0 then const_aff 0
      else
        Affine
          { coeffs = IntMap.filter_map (fun _ c -> if c * cb = 0 then None else Some (c * cb)) x.coeffs;
            const = x.const * cb }
  | _ -> Unknown

let shl_sv a b =
  match is_const b with
  | Some s when s >= 0 && s < 31 -> mul_sv a (const_aff (1 lsl s))
  | _ -> Unknown

(** Symbol environment for abstract evaluation. *)
type env = {
  mutable vals : sval IntMap.t;  (** current abstract value per register *)
  defined_in_loop : unit IntMap.t;
      (** registers (re)defined anywhere in the analysed region; reading one
          before its definition means a loop-carried scalar — [Unknown] *)
  induction : unit IntMap.t;  (** enclosing induction variables *)
}

(** Registers defined by an instruction list (including nested nodes). *)
let defined_regs (nodes : Ir.node list) : unit IntMap.t =
  let acc = ref IntMap.empty in
  let instr = function
    | Ir.Def (r, _) -> acc := IntMap.add r () !acc
    | Ir.CallI (Some r, _, _) -> acc := IntMap.add r () !acc
    | Ir.Store _ | Ir.CallI (None, _, _) -> ()
  in
  List.iter instr (Ir.all_instrs nodes);
  (* loop induction variables of nested loops are also defined *)
  let rec nested n =
    match n with
    | Ir.Loop l ->
        acc := IntMap.add l.Ir.l_var () !acc;
        List.iter nested l.Ir.l_body
    | Ir.If { then_; else_; _ } ->
        List.iter nested then_;
        List.iter nested else_
    | Ir.WhileLoop { w_body; _ } -> List.iter nested w_body
    | _ -> ()
  in
  List.iter nested nodes;
  !acc

let make_env ~(induction_vars : Ir.reg list) (region : Ir.node list) : env =
  {
    vals =
      List.fold_left
        (fun m r -> IntMap.add r (sym_aff r) m)
        IntMap.empty induction_vars;
    defined_in_loop = defined_regs region;
    induction =
      List.fold_left (fun m r -> IntMap.add r () m) IntMap.empty induction_vars;
  }

let eval_value (env : env) (v : Ir.value) : sval =
  match v with
  | Ir.IConst i ->
      let i = Int64.to_int i in
      const_aff i
  | Ir.FConst _ -> Unknown
  | Ir.Reg r -> (
      match IntMap.find_opt r env.vals with
      | Some sv -> sv
      | None ->
          if IntMap.mem r env.defined_in_loop then
            (* read before its in-region definition: loop-carried scalar *)
            Unknown
          else
            (* defined outside and never modified inside: loop-invariant *)
            sym_aff r)

let eval_rvalue (env : env) (rv : Ir.rvalue) : sval =
  match rv with
  | Ir.IBin (op, _, a, b) -> (
      let va = eval_value env a and vb = eval_value env b in
      match op with
      | Ir.Add -> add_sv va vb
      | Ir.Sub -> sub_sv va vb
      | Ir.Mul -> mul_sv va vb
      | Ir.Shl -> shl_sv va vb
      | Ir.SDiv -> (
          match (is_const va, is_const vb) with
          | Some x, Some y when y <> 0 -> const_aff (x / y)
          | _ -> Unknown)
      | Ir.SRem | Ir.AShr | Ir.And | Ir.Or | Ir.Xor -> (
          match (is_const va, is_const vb) with
          | Some x, Some y ->
              const_aff
                (Int64.to_int
                   (Ir_interp.ibin_eval op (Int64.of_int x) (Int64.of_int y)))
          | _ -> Unknown))
  | Ir.Cast ((Ir.SExt | Ir.ZExt | Ir.Trunc), _, _, v) ->
      (* index math casts are value-preserving in our corpus's ranges *)
      eval_value env v
  | Ir.Mov (_, v) -> eval_value env v
  | Ir.FBin _ | Ir.ICmp _ | Ir.FCmp _ | Ir.Select _ | Ir.Cast _ | Ir.Load _
  | Ir.Splat _ | Ir.Extract _ | Ir.Reduce _ | Ir.Stride _ ->
      Unknown

(** Process one instruction, updating the environment. *)
let step (env : env) (i : Ir.instr) : unit =
  match i with
  | Ir.Def (r, rv) ->
      if not (IntMap.mem r env.induction) then
        env.vals <- IntMap.add r (eval_rvalue env rv) env.vals
  | Ir.CallI (Some r, _, _) -> env.vals <- IntMap.add r Unknown env.vals
  | Ir.Store _ | Ir.CallI (None, _, _) -> ()

(** Coefficient of symbol [r] in an affine value (0 if absent). *)
let coeff_of (r : Ir.reg) = function
  | Affine a -> IntMap.find_opt r a.coeffs |> Option.value ~default:0
  | Unknown -> 0

(** Do two affine values differ only in their constant term? If so return
    [Some (b.const - a.const)]. This is the core dependence test. *)
let const_delta (a : sval) (b : sval) : int option =
  match (a, b) with
  | Affine x, Affine y ->
      if IntMap.equal Int.equal x.coeffs y.coeffs then Some (y.const - x.const)
      else None
  | _ -> None

let sval_to_string = function
  | Unknown -> "?"
  | Affine a ->
      let terms =
        IntMap.fold
          (fun r c acc -> Printf.sprintf "%d*r%d" c r :: acc)
          a.coeffs []
      in
      String.concat " + " (List.rev (string_of_int a.const :: terms))
