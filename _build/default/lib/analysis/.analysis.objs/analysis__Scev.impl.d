lib/analysis/scev.ml: Int Int64 Ir Ir_interp List Map Option Printf String
