lib/analysis/access.ml: Ir List Scev
