lib/analysis/loopinfo.ml: Access Depend Hashtbl Int64 Ir Ir_interp List Printf Reduction
