lib/analysis/depend.ml: Access Array Ir List Scev
