lib/analysis/reduction.ml: Hashtbl Ir List Scev
