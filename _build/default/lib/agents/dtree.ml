(** CART decision-tree classifier (Quinlan-style, Gini impurity).

    The paper trains a decision tree on the embeddings the RL run learned,
    with brute-force-optimal (VF, IF) as labels (Section 3.5). Features
    are the code-vector components; labels are flattened action ids. *)

type tree =
  | Leaf of int
  | Node of { feat : int; thresh : float; left : tree; right : tree }

type params = {
  max_depth : int;
  min_samples : int;
  n_thresholds : int;  (** candidate split quantiles per feature *)
}

let default_params = { max_depth = 12; min_samples = 4; n_thresholds = 8 }

let majority (labels : int array) (idxs : int array) : int =
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun i ->
      let l = labels.(i) in
      Hashtbl.replace counts l (1 + Option.value (Hashtbl.find_opt counts l) ~default:0))
    idxs;
  let best = ref (-1) and best_n = ref (-1) in
  Hashtbl.iter
    (fun l n ->
      if n > !best_n then begin
        best := l;
        best_n := n
      end)
    counts;
  !best

let gini (labels : int array) (idxs : int array) : float =
  let n = Array.length idxs in
  if n = 0 then 0.0
  else begin
    let counts = Hashtbl.create 8 in
    Array.iter
      (fun i ->
        let l = labels.(i) in
        Hashtbl.replace counts l
          (1 + Option.value (Hashtbl.find_opt counts l) ~default:0))
      idxs;
    let acc = ref 1.0 in
    Hashtbl.iter
      (fun _ c ->
        let p = float_of_int c /. float_of_int n in
        acc := !acc -. (p *. p))
      counts;
    !acc
  end

let fit ?(params = default_params) (xs : float array array) (ys : int array) :
    tree =
  let n_feat = if Array.length xs = 0 then 0 else Array.length xs.(0) in
  let rec build (idxs : int array) (depth : int) : tree =
    let n = Array.length idxs in
    let g0 = gini ys idxs in
    if depth >= params.max_depth || n < params.min_samples || g0 = 0.0 then
      Leaf (majority ys idxs)
    else begin
      let best = ref None in
      for feat = 0 to n_feat - 1 do
        (* candidate thresholds: quantiles of this feature over the node *)
        let vals = Array.map (fun i -> xs.(i).(feat)) idxs in
        Array.sort compare vals;
        for q = 1 to params.n_thresholds do
          let thresh = vals.(q * (n - 1) / (params.n_thresholds + 1)) in
          let left = Array.of_seq (Seq.filter (fun i -> xs.(i).(feat) <= thresh)
                                     (Array.to_seq idxs)) in
          let right = Array.of_seq (Seq.filter (fun i -> xs.(i).(feat) > thresh)
                                      (Array.to_seq idxs)) in
          if Array.length left > 0 && Array.length right > 0 then begin
            let score =
              (float_of_int (Array.length left) *. gini ys left
               +. float_of_int (Array.length right) *. gini ys right)
              /. float_of_int n
            in
            match !best with
            | Some (s, _, _, _, _) when s <= score -> ()
            | _ -> best := Some (score, feat, thresh, left, right)
          end
        done
      done;
      match !best with
      | Some (score, feat, thresh, left, right) when score < g0 -.  1e-9 ->
          Node
            { feat; thresh;
              left = build left (depth + 1);
              right = build right (depth + 1) }
      | _ -> Leaf (majority ys idxs)
    end
  in
  if Array.length xs = 0 then Leaf 0
  else build (Array.init (Array.length xs) Fun.id) 0

let rec predict (t : tree) (x : float array) : int =
  match t with
  | Leaf l -> l
  | Node { feat; thresh; left; right } ->
      if x.(feat) <= thresh then predict left x else predict right x

let rec depth = function
  | Leaf _ -> 0
  | Node { left; right; _ } -> 1 + max (depth left) (depth right)

let rec size = function
  | Leaf _ -> 1
  | Node { left; right; _ } -> 1 + size left + size right
