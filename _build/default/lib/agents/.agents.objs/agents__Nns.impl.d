lib/agents/nns.ml: Array Hashtbl Option
