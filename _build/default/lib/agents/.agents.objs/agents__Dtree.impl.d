lib/agents/dtree.ml: Array Fun Hashtbl Option Seq
