lib/agents/random_search.ml: Nn Rl
