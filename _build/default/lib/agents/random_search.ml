(** Random search over the action grid — the sanity baseline of Figure 7
    (it performs much worse than the baseline cost model, showing the
    learned policy exploits real structure). *)

let pick (rng : Nn.Rng.t) : Rl.Spaces.action =
  { Rl.Spaces.vf_idx = Nn.Rng.int rng Rl.Spaces.n_vf;
    if_idx = Nn.Rng.int rng Rl.Spaces.n_if }

(** Best of [budget] uniformly random actions under [reward] — with
    [budget = 1] this is the paper's "random search" column; larger
    budgets give the random-restart ablation. *)
let search ?(budget = 1) (rng : Nn.Rng.t)
    ~(reward : Rl.Spaces.action -> float) : Rl.Spaces.action * float =
  let best = ref (pick rng) in
  let best_r = ref (reward !best) in
  for _ = 2 to budget do
    let a = pick rng in
    let r = reward a in
    if r > !best_r then begin
      best := a;
      best_r := r
    end
  done;
  (!best, !best_r)
