(** Nearest-neighbour search predictor (paper Section 3.5): store the
    learned code vectors of the training set with their brute-force-optimal
    actions; at inference, answer with the label of the closest stored
    vector (Euclidean). *)

type t = { xs : float array array; ys : int array }

let fit (xs : float array array) (ys : int array) : t = { xs; ys }

let sq_dist (a : float array) (b : float array) : float =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let predict (t : t) (x : float array) : int =
  if Array.length t.xs = 0 then 0
  else begin
    let best = ref 0 and best_d = ref infinity in
    Array.iteri
      (fun i v ->
        let d = sq_dist v x in
        if d < !best_d then begin
          best_d := d;
          best := i
        end)
      t.xs;
    t.ys.(!best)
  end

(** k-nearest variant with majority vote, for the ablation bench. *)
let predict_k (t : t) ~(k : int) (x : float array) : int =
  let n = Array.length t.xs in
  if n = 0 then 0
  else begin
    let dists = Array.init n (fun i -> (sq_dist t.xs.(i) x, t.ys.(i))) in
    Array.sort compare dists;
    let counts = Hashtbl.create 8 in
    for i = 0 to min (k - 1) (n - 1) do
      let _, y = dists.(i) in
      Hashtbl.replace counts y
        (1 + Option.value (Hashtbl.find_opt counts y) ~default:0)
    done;
    let best = ref 0 and best_n = ref (-1) in
    Hashtbl.iter
      (fun y c ->
        if c > !best_n then begin
          best := y;
          best_n := c
        end)
      counts;
    !best
  end
