(** Abstract syntax tree for mini-C.

    The node shapes follow Clang's AST closely enough that code2vec-style
    path contexts extracted from this tree resemble those the paper's
    embedding generator consumed. *)

type base_ty =
  | Void
  | Char
  | Short
  | Int
  | Long
  | Float
  | Double

type ty = {
  base : base_ty;
  unsigned : bool;
  dims : expr option list;
      (** array dimensions, outermost first; [None] = unsized ([]) *)
}

and unop = Neg | Not | BitNot | PreInc | PreDec | PostInc | PostDec

and binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Shl
  | Shr
  | Lt
  | Gt
  | Le
  | Ge
  | Eq
  | Ne
  | BitAnd
  | BitOr
  | BitXor
  | LogAnd
  | LogOr

and expr =
  | IntLit of int64
  | FloatLit of float
  | CharLit of char
  | Ident of string
  | Index of expr * expr  (** a[i]; multi-dim arrays nest Index nodes *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr  (** lvalue = rvalue *)
  | OpAssign of binop * expr * expr  (** lvalue op= rvalue *)
  | Ternary of expr * expr * expr
  | Call of string * expr list
  | Cast of ty * expr
  | Comma of expr * expr

(** A [#pragma clang loop ...] directive attached to the loop that follows. *)
type loop_pragma = {
  vectorize_width : int option;
  interleave_count : int option;
  vectorize_enable : bool option;
}

let empty_pragma =
  { vectorize_width = None; interleave_count = None; vectorize_enable = None }

type stmt =
  | Decl of ty * string * expr option
  | Expr of expr
  | Block of stmt list
  | If of expr * stmt * stmt option
  | For of for_loop
  | While of while_loop
  | Return of expr option
  | Break
  | Continue
  | Empty

and for_loop = {
  pragma : loop_pragma option;
  init : stmt option;  (** Decl or Expr *)
  cond : expr option;
  step : expr option;
  body : stmt;
}

and while_loop = { w_pragma : loop_pragma option; w_cond : expr; w_body : stmt }

(** Variable attributes from [__attribute__((...))]. *)
type attr = Aligned of int | Noinline | OtherAttr of string

type global = {
  g_ty : ty;
  g_name : string;
  g_attrs : attr list;
  g_init : expr option;
}

type param = { p_ty : ty; p_name : string }

type func = {
  f_ret : ty;
  f_name : string;
  f_params : param list;
  f_attrs : attr list;
  f_body : stmt list;
}

type decl = Global of global | Func of func

type program = decl list

(* ------------------------------------------------------------------ *)
(* Helpers                                                              *)
(* ------------------------------------------------------------------ *)

let scalar base = { base; unsigned = false; dims = [] }
let int_ty = scalar Int
let float_ty = scalar Float

let is_array t = t.dims <> []
let is_float_base = function Float | Double -> true | _ -> false
let is_float_ty t = is_float_base t.base && t.dims = []

(** Size in bytes of a scalar of the given base type (LP64). *)
let base_size = function
  | Void -> 0
  | Char -> 1
  | Short -> 2
  | Int -> 4
  | Long -> 8
  | Float -> 4
  | Double -> 8

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | BitAnd -> "&"
  | BitOr -> "|"
  | BitXor -> "^"
  | LogAnd -> "&&"
  | LogOr -> "||"

let unop_to_string = function
  | Neg -> "-"
  | Not -> "!"
  | BitNot -> "~"
  | PreInc | PostInc -> "++"
  | PreDec | PostDec -> "--"

let base_ty_to_string = function
  | Void -> "void"
  | Char -> "char"
  | Short -> "short"
  | Int -> "int"
  | Long -> "long"
  | Float -> "float"
  | Double -> "double"

(** Structural fold counting nodes; used for code-size heuristics. *)
let rec expr_size = function
  | IntLit _ | FloatLit _ | CharLit _ | Ident _ -> 1
  | Index (a, b) | Binop (_, a, b) | Assign (a, b) | OpAssign (_, a, b) | Comma (a, b)
    ->
      1 + expr_size a + expr_size b
  | Unop (_, a) | Cast (_, a) -> 1 + expr_size a
  | Ternary (a, b, c) -> 1 + expr_size a + expr_size b + expr_size c
  | Call (_, args) -> 1 + List.fold_left (fun n a -> n + expr_size a) 0 args

let rec stmt_size = function
  | Decl (_, _, e) -> 1 + (match e with Some e -> expr_size e | None -> 0)
  | Expr e -> expr_size e
  | Block ss -> List.fold_left (fun n s -> n + stmt_size s) 1 ss
  | If (c, t, f) ->
      1 + expr_size c + stmt_size t
      + (match f with Some f -> stmt_size f | None -> 0)
  | For { init; cond; step; body; _ } ->
      1
      + (match init with Some s -> stmt_size s | None -> 0)
      + (match cond with Some e -> expr_size e | None -> 0)
      + (match step with Some e -> expr_size e | None -> 0)
      + stmt_size body
  | While { w_cond; w_body; _ } -> 1 + expr_size w_cond + stmt_size w_body
  | Return e -> 1 + (match e with Some e -> expr_size e | None -> 0)
  | Break | Continue | Empty -> 1

(** Visit every statement in a program (pre-order). *)
let rec iter_stmts f (s : stmt) =
  f s;
  match s with
  | Block ss -> List.iter (iter_stmts f) ss
  | If (_, t, fo) -> (
      iter_stmts f t;
      match fo with Some e -> iter_stmts f e | None -> ())
  | For { init; body; _ } -> (
      (match init with Some i -> iter_stmts f i | None -> ());
      iter_stmts f body)
  | While { w_body; _ } -> iter_stmts f w_body
  | _ -> ()

let iter_program_stmts f (p : program) =
  List.iter
    (function Func fn -> List.iter (iter_stmts f) fn.f_body | Global _ -> ())
    p
