(** Semantic analysis for mini-C: symbol resolution, type inference with the
    usual arithmetic conversions, and constant folding of array bounds.

    The dataset generated for the RL agent may reference symbolic bounds
    (e.g. [N], [M]) that in the original benchmarks come from [#define]s;
    [analyze] accepts a binding environment mapping those names to concrete
    values so the rest of the pipeline can allocate arrays and run loops. *)

exception Error of string

type sym = { s_ty : Ast.ty; s_dims : int list (* concrete dims, outermost first *) }

type env = {
  bindings : (string * int) list;  (** symbolic constants, e.g. N -> 512 *)
  mutable scopes : (string, sym) Hashtbl.t list;
  mutable funcs : (string * Ast.func) list;
}

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let make_env ?(bindings = []) () =
  { bindings; scopes = [ Hashtbl.create 16 ]; funcs = [] }

let push_scope env = env.scopes <- Hashtbl.create 16 :: env.scopes
let pop_scope env =
  match env.scopes with
  | _ :: rest when rest <> [] -> env.scopes <- rest
  | _ -> ()

let lookup env name =
  let rec go = function
    | [] -> None
    | tbl :: rest -> (
        match Hashtbl.find_opt tbl name with Some s -> Some s | None -> go rest)
  in
  go env.scopes

let declare env name sym =
  match env.scopes with
  | tbl :: _ -> Hashtbl.replace tbl name sym
  | [] -> assert false

(* ------------------------------------------------------------------ *)
(* Constant expression evaluation                                       *)
(* ------------------------------------------------------------------ *)

(** Evaluate a compile-time constant integer expression. Symbolic names are
    resolved through [env.bindings]. *)
let rec eval_const env (e : Ast.expr) : int =
  match e with
  | Ast.IntLit i -> Int64.to_int i
  | Ast.CharLit c -> Char.code c
  | Ast.Ident name -> (
      match List.assoc_opt name env.bindings with
      | Some v -> v
      | None -> error "unbound symbolic constant %s in array bound" name)
  | Ast.Unop (Ast.Neg, a) -> -eval_const env a
  | Ast.Unop (Ast.BitNot, a) -> lnot (eval_const env a)
  | Ast.Binop (op, a, b) -> (
      let a = eval_const env a and b = eval_const env b in
      match op with
      | Ast.Add -> a + b
      | Ast.Sub -> a - b
      | Ast.Mul -> a * b
      | Ast.Div -> if b = 0 then error "division by zero in constant" else a / b
      | Ast.Rem -> if b = 0 then error "division by zero in constant" else a mod b
      | Ast.Shl -> a lsl b
      | Ast.Shr -> a asr b
      | Ast.BitAnd -> a land b
      | Ast.BitOr -> a lor b
      | Ast.BitXor -> a lxor b
      | Ast.Lt -> if a < b then 1 else 0
      | Ast.Gt -> if a > b then 1 else 0
      | Ast.Le -> if a <= b then 1 else 0
      | Ast.Ge -> if a >= b then 1 else 0
      | Ast.Eq -> if a = b then 1 else 0
      | Ast.Ne -> if a <> b then 1 else 0
      | Ast.LogAnd -> if a <> 0 && b <> 0 then 1 else 0
      | Ast.LogOr -> if a <> 0 || b <> 0 then 1 else 0)
  | Ast.Cast (_, a) -> eval_const env a
  | _ -> error "expression is not a compile-time constant"

let concrete_dims env (ty : Ast.ty) : int list =
  List.map
    (function
      | Some e ->
          let n = eval_const env e in
          if n <= 0 then error "array dimension must be positive (got %d)" n;
          n
      | None -> error "unsized array dimension not supported here")
    ty.dims

(* ------------------------------------------------------------------ *)
(* Type inference                                                       *)
(* ------------------------------------------------------------------ *)

(** Integer promotion + usual arithmetic conversions, collapsed onto our
    small base-type lattice. *)
let promote (a : Ast.base_ty) (b : Ast.base_ty) : Ast.base_ty =
  let rank = function
    | Ast.Void -> 0
    | Ast.Char -> 1
    | Ast.Short -> 2
    | Ast.Int -> 3
    | Ast.Long -> 4
    | Ast.Float -> 5
    | Ast.Double -> 6
  in
  let a = if rank a < rank Ast.Int && not (Ast.is_float_base a) then Ast.Int else a in
  let b = if rank b < rank Ast.Int && not (Ast.is_float_base b) then Ast.Int else b in
  if rank a >= rank b then a else b

(** Infer the (scalar) type of an expression. Array-typed subexpressions
    only appear under [Index]; a fully-indexed array has its element type. *)
let rec infer env (e : Ast.expr) : Ast.ty =
  match e with
  | Ast.IntLit _ -> Ast.int_ty
  | Ast.FloatLit _ -> Ast.scalar Ast.Double
  | Ast.CharLit _ -> Ast.scalar Ast.Char
  | Ast.Ident name -> (
      match lookup env name with
      | Some s -> s.s_ty
      | None ->
          if List.mem_assoc name env.bindings then Ast.int_ty
          else error "undeclared identifier %s" name)
  | Ast.Index (a, i) -> (
      let at = infer env a in
      let it = infer env i in
      if Ast.is_float_ty it then error "array index must be integral";
      match at.Ast.dims with
      | _ :: rest -> { at with Ast.dims = rest }
      | [] -> error "indexing a non-array value")
  | Ast.Unop ((Ast.PreInc | Ast.PreDec | Ast.PostInc | Ast.PostDec), a) ->
      check_lvalue env a;
      infer env a
  | Ast.Unop (Ast.Not, a) ->
      ignore (infer env a);
      Ast.int_ty
  | Ast.Unop (Ast.BitNot, a) ->
      let t = infer env a in
      if Ast.is_float_ty t then error "~ applied to floating value";
      t
  | Ast.Unop (Ast.Neg, a) -> infer env a
  | Ast.Binop (op, a, b) -> (
      let ta = infer env a and tb = infer env b in
      if Ast.is_array ta || Ast.is_array tb then
        error "arithmetic on whole arrays is not supported";
      match op with
      | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge | Ast.Eq | Ast.Ne | Ast.LogAnd
      | Ast.LogOr ->
          Ast.int_ty
      | Ast.Shl | Ast.Shr | Ast.Rem | Ast.BitAnd | Ast.BitOr | Ast.BitXor ->
          if Ast.is_float_ty ta || Ast.is_float_ty tb then
            error "integer operator %s applied to floating value"
              (Ast.binop_to_string op);
          { Ast.base = promote ta.Ast.base tb.Ast.base;
            unsigned = ta.Ast.unsigned || tb.Ast.unsigned;
            dims = [] }
      | _ ->
          { Ast.base = promote ta.Ast.base tb.Ast.base;
            unsigned = ta.Ast.unsigned || tb.Ast.unsigned;
            dims = [] })
  | Ast.Assign (l, r) | Ast.OpAssign (_, l, r) ->
      check_lvalue env l;
      ignore (infer env r);
      infer env l
  | Ast.Ternary (c, t, f) ->
      ignore (infer env c);
      let tt = infer env t and tf = infer env f in
      { Ast.base = promote tt.Ast.base tf.Ast.base;
        unsigned = tt.Ast.unsigned || tf.Ast.unsigned;
        dims = [] }
  | Ast.Call (name, args) -> (
      List.iter (fun a -> ignore (infer env a)) args;
      match List.assoc_opt name env.funcs with
      | Some f -> f.Ast.f_ret
      | None -> (
          (* builtin math functions *)
          match name with
          | "sqrt" | "sqrtf" | "fabs" | "fabsf" | "exp" | "log" | "sin" | "cos"
          | "pow" | "fmax" | "fmin" | "floor" | "ceil" ->
              Ast.scalar Ast.Double
          | "abs" | "max" | "min" -> Ast.int_ty
          | _ -> error "call to undeclared function %s" name))
  | Ast.Cast (ty, a) ->
      ignore (infer env a);
      ty
  | Ast.Comma (a, b) ->
      ignore (infer env a);
      infer env b

and check_lvalue env (e : Ast.expr) =
  match e with
  | Ast.Ident name -> (
      match lookup env name with
      | Some s when Ast.is_array s.s_ty -> error "cannot assign to array %s" name
      | Some _ -> ()
      | None -> error "undeclared identifier %s" name)
  | Ast.Index (a, _) ->
      (* must ultimately index a declared array down to scalar *)
      let t = infer env e in
      if Ast.is_array t then error "partial array indexing is not an lvalue";
      ignore (infer env a)
  | _ -> error "expression is not an lvalue"

(* ------------------------------------------------------------------ *)
(* Statement / program checking                                         *)
(* ------------------------------------------------------------------ *)

let rec check_stmt env (s : Ast.stmt) =
  match s with
  | Ast.Decl (ty, name, init) ->
      let dims = if Ast.is_array ty then concrete_dims env ty else [] in
      declare env name { s_ty = ty; s_dims = dims };
      (match init with Some e -> ignore (infer env e) | None -> ())
  | Ast.Expr e -> ignore (infer env e)
  | Ast.Block ss ->
      push_scope env;
      List.iter (check_stmt env) ss;
      pop_scope env
  | Ast.If (c, t, f) -> (
      ignore (infer env c);
      check_stmt env t;
      match f with Some f -> check_stmt env f | None -> ())
  | Ast.For { init; cond; step; body; pragma } ->
      (match pragma with
      | Some p ->
          let ok = function
            | Some n -> n >= 1 && n land (n - 1) = 0
            | None -> true
          in
          if not (ok p.Ast.vectorize_width) then
            error "vectorize_width must be a positive power of two";
          if not (ok p.Ast.interleave_count) then
            error "interleave_count must be a positive power of two"
      | None -> ());
      push_scope env;
      (match init with Some s -> check_stmt env s | None -> ());
      (match cond with Some e -> ignore (infer env e) | None -> ());
      (match step with Some e -> ignore (infer env e) | None -> ());
      check_stmt env body;
      pop_scope env
  | Ast.While { w_cond = cond; w_body = body; _ } ->
      ignore (infer env cond);
      push_scope env;
      check_stmt env body;
      pop_scope env
  | Ast.Return e -> ( match e with Some e -> ignore (infer env e) | None -> ())
  | Ast.Break | Ast.Continue | Ast.Empty -> ()

(** Check a whole program. Returns the final environment (with globals and
    functions declared) for use by the lowering pass. *)
let analyze ?(bindings = []) (p : Ast.program) : env =
  let env = make_env ~bindings () in
  List.iter
    (fun d ->
      match d with
      | Ast.Global g ->
          let dims =
            if Ast.is_array g.Ast.g_ty then concrete_dims env g.Ast.g_ty else []
          in
          declare env g.Ast.g_name { s_ty = g.Ast.g_ty; s_dims = dims }
      | Ast.Func f ->
          env.funcs <- (f.Ast.f_name, f) :: env.funcs)
    p;
  List.iter
    (fun d ->
      match d with
      | Ast.Global _ -> ()
      | Ast.Func f ->
          push_scope env;
          List.iter
            (fun prm ->
              let dims =
                (* unsized leading dim is fine for params: size comes from caller *)
                List.map
                  (function
                    | Some e -> eval_const env e
                    | None -> 0)
                  prm.Ast.p_ty.Ast.dims
              in
              declare env prm.Ast.p_name { s_ty = prm.Ast.p_ty; s_dims = dims })
            f.Ast.f_params;
          List.iter (check_stmt env) f.Ast.f_body;
          pop_scope env)
    p;
  env
