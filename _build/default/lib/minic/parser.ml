(** Recursive-descent parser for mini-C with C-style operator precedence.

    Pragmas are recognised as statements of their own and attached to the
    [for]/[while] loop that immediately follows, matching Clang's behaviour
    for [#pragma clang loop]. *)

exception Error of string * Token.pos

type state = { toks : Token.spanned array; mutable i : int }

let make toks = { toks = Array.of_list toks; i = 0 }

let cur st = st.toks.(st.i)
let cur_tok st = (cur st).Token.tok
let cur_pos st = (cur st).Token.pos

let error st msg =
  raise
    (Error
       ( Printf.sprintf "%s (found %s)" msg (Token.to_string (cur_tok st)),
         cur_pos st ))

let advance st = if st.i < Array.length st.toks - 1 then st.i <- st.i + 1

let accept st tok =
  if Token.equal (cur_tok st) tok then (
    advance st;
    true)
  else false

let expect st tok =
  if not (accept st tok) then
    error st (Printf.sprintf "expected %s" (Token.to_string tok))

let peek_tok st n =
  let j = st.i + n in
  if j < Array.length st.toks then st.toks.(j).Token.tok else Token.EOF

(* ------------------------------------------------------------------ *)
(* Pragma text parsing                                                  *)
(* ------------------------------------------------------------------ *)

(** Parse the text of a [#pragma clang loop ...] directive. Returns [None]
    for pragmas we do not understand (they are ignored, as Clang ignores
    unknown pragmas). *)
let parse_loop_pragma (text : string) : Ast.loop_pragma option =
  let words =
    String.split_on_char ' ' text
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  match words with
  | "clang" :: "loop" :: rest ->
      let clause_re key s =
        (* matches key(value) *)
        let prefix = key ^ "(" in
        let lp = String.length prefix in
        if
          String.length s > lp + 1
          && String.sub s 0 lp = prefix
          && s.[String.length s - 1] = ')'
        then Some (String.sub s lp (String.length s - lp - 1))
        else None
      in
      let p = ref Ast.empty_pragma in
      List.iter
        (fun w ->
          (match clause_re "vectorize_width" w with
          | Some v -> (
              match int_of_string_opt v with
              | Some n -> p := { !p with vectorize_width = Some n }
              | None -> ())
          | None -> ());
          (match clause_re "interleave_count" w with
          | Some v -> (
              match int_of_string_opt v with
              | Some n -> p := { !p with interleave_count = Some n }
              | None -> ())
          | None -> ());
          match clause_re "vectorize" w with
          | Some "enable" -> p := { !p with vectorize_enable = Some true }
          | Some "disable" -> p := { !p with vectorize_enable = Some false }
          | _ -> ())
        rest;
      Some !p
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Types                                                                *)
(* ------------------------------------------------------------------ *)

let is_type_start = function
  | Token.KW_VOID | Token.KW_CHAR | Token.KW_SHORT | Token.KW_INT
  | Token.KW_LONG | Token.KW_FLOAT | Token.KW_DOUBLE | Token.KW_UNSIGNED
  | Token.KW_SIGNED | Token.KW_CONST | Token.KW_STATIC ->
      true
  | _ -> false

(** Parse a type specifier: optional qualifiers followed by a base type.
    [unsigned]/[signed] may appear alone (meaning int). *)
let parse_base_type st : Ast.base_ty * bool =
  let unsigned = ref false in
  let base = ref None in
  let rec go () =
    match cur_tok st with
    | Token.KW_CONST | Token.KW_STATIC ->
        advance st;
        go ()
    | Token.KW_UNSIGNED ->
        unsigned := true;
        advance st;
        go ()
    | Token.KW_SIGNED ->
        advance st;
        go ()
    | Token.KW_VOID ->
        base := Some Ast.Void;
        advance st;
        go ()
    | Token.KW_CHAR ->
        base := Some Ast.Char;
        advance st;
        go ()
    | Token.KW_SHORT ->
        base := Some Ast.Short;
        advance st;
        (* allow "short int" *)
        if cur_tok st = Token.KW_INT then advance st;
        go ()
    | Token.KW_INT ->
        base := Some Ast.Int;
        advance st;
        go ()
    | Token.KW_LONG ->
        base := Some Ast.Long;
        advance st;
        (* allow "long long" and "long int" *)
        if cur_tok st = Token.KW_LONG then advance st;
        if cur_tok st = Token.KW_INT then advance st;
        go ()
    | Token.KW_FLOAT ->
        base := Some Ast.Float;
        advance st;
        go ()
    | Token.KW_DOUBLE ->
        base := Some Ast.Double;
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  match !base with
  | Some b -> (b, !unsigned)
  | None -> if !unsigned then (Ast.Int, true) else error st "expected type"

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing                                     *)
(* ------------------------------------------------------------------ *)

(* Binding powers follow the C standard. *)
let binop_of_token = function
  | Token.STAR -> Some (Ast.Mul, 13)
  | Token.SLASH -> Some (Ast.Div, 13)
  | Token.PERCENT -> Some (Ast.Rem, 13)
  | Token.PLUS -> Some (Ast.Add, 12)
  | Token.MINUS -> Some (Ast.Sub, 12)
  | Token.LSHIFT -> Some (Ast.Shl, 11)
  | Token.RSHIFT -> Some (Ast.Shr, 11)
  | Token.LT -> Some (Ast.Lt, 10)
  | Token.GT -> Some (Ast.Gt, 10)
  | Token.LE -> Some (Ast.Le, 10)
  | Token.GE -> Some (Ast.Ge, 10)
  | Token.EQEQ -> Some (Ast.Eq, 9)
  | Token.NEQ -> Some (Ast.Ne, 9)
  | Token.AMP -> Some (Ast.BitAnd, 8)
  | Token.CARET -> Some (Ast.BitXor, 7)
  | Token.PIPE -> Some (Ast.BitOr, 6)
  | Token.AMPAMP -> Some (Ast.LogAnd, 5)
  | Token.PIPEPIPE -> Some (Ast.LogOr, 4)
  | _ -> None

let opassign_of_token = function
  | Token.PLUS_ASSIGN -> Some Ast.Add
  | Token.MINUS_ASSIGN -> Some Ast.Sub
  | Token.STAR_ASSIGN -> Some Ast.Mul
  | Token.SLASH_ASSIGN -> Some Ast.Div
  | Token.PERCENT_ASSIGN -> Some Ast.Rem
  | Token.AMP_ASSIGN -> Some Ast.BitAnd
  | Token.PIPE_ASSIGN -> Some Ast.BitOr
  | Token.CARET_ASSIGN -> Some Ast.BitXor
  | Token.LSHIFT_ASSIGN -> Some Ast.Shl
  | Token.RSHIFT_ASSIGN -> Some Ast.Shr
  | _ -> None

let rec parse_expr st : Ast.expr = parse_comma st

and parse_comma st =
  let e = parse_assign st in
  if accept st Token.COMMA then Ast.Comma (e, parse_comma st) else e

and parse_assign st =
  let lhs = parse_ternary st in
  match cur_tok st with
  | Token.ASSIGN ->
      advance st;
      Ast.Assign (lhs, parse_assign st)
  | t -> (
      match opassign_of_token t with
      | Some op ->
          advance st;
          Ast.OpAssign (op, lhs, parse_assign st)
      | None -> lhs)

and parse_ternary st =
  let cond = parse_binary st 0 in
  if accept st Token.QUESTION then begin
    let t = parse_assign st in
    expect st Token.COLON;
    let f = parse_ternary st in
    Ast.Ternary (cond, t, f)
  end
  else cond

and parse_binary st min_bp =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match binop_of_token (cur_tok st) with
    | Some (op, bp) when bp >= min_bp ->
        advance st;
        let rhs = parse_binary st (bp + 1) in
        lhs := Ast.Binop (op, !lhs, rhs)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match cur_tok st with
  | Token.MINUS ->
      advance st;
      Ast.Unop (Ast.Neg, parse_unary st)
  | Token.BANG ->
      advance st;
      Ast.Unop (Ast.Not, parse_unary st)
  | Token.TILDE ->
      advance st;
      Ast.Unop (Ast.BitNot, parse_unary st)
  | Token.PLUS ->
      advance st;
      parse_unary st
  | Token.PLUSPLUS ->
      advance st;
      Ast.Unop (Ast.PreInc, parse_unary st)
  | Token.MINUSMINUS ->
      advance st;
      Ast.Unop (Ast.PreDec, parse_unary st)
  | Token.LPAREN when is_type_start (peek_tok st 1) ->
      (* cast expression *)
      advance st;
      let base, unsigned = parse_base_type st in
      expect st Token.RPAREN;
      let ty = { Ast.base; unsigned; dims = [] } in
      Ast.Cast (ty, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match cur_tok st with
    | Token.LBRACKET ->
        advance st;
        let idx = parse_expr st in
        expect st Token.RBRACKET;
        e := Ast.Index (!e, idx)
    | Token.PLUSPLUS ->
        advance st;
        e := Ast.Unop (Ast.PostInc, !e)
    | Token.MINUSMINUS ->
        advance st;
        e := Ast.Unop (Ast.PostDec, !e)
    | _ -> continue := false
  done;
  !e

and parse_primary st =
  match cur_tok st with
  | Token.INT_LIT i ->
      advance st;
      Ast.IntLit i
  | Token.FLOAT_LIT f ->
      advance st;
      Ast.FloatLit f
  | Token.CHAR_LIT c ->
      advance st;
      Ast.CharLit c
  | Token.IDENT name ->
      advance st;
      if cur_tok st = Token.LPAREN then begin
        advance st;
        let args = ref [] in
        if cur_tok st <> Token.RPAREN then begin
          args := [ parse_assign st ];
          while accept st Token.COMMA do
            args := parse_assign st :: !args
          done
        end;
        expect st Token.RPAREN;
        Ast.Call (name, List.rev !args)
      end
      else Ast.Ident name
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | Token.KW_SIZEOF ->
      advance st;
      expect st Token.LPAREN;
      let size =
        if is_type_start (cur_tok st) then begin
          let base, _ = parse_base_type st in
          Ast.base_size base
        end
        else begin
          ignore (parse_expr st);
          8
        end
      in
      expect st Token.RPAREN;
      Ast.IntLit (Int64.of_int size)
  | _ -> error st "expected expression"

(* ------------------------------------------------------------------ *)
(* Attributes                                                           *)
(* ------------------------------------------------------------------ *)

let parse_attributes st : Ast.attr list =
  let attrs = ref [] in
  while cur_tok st = Token.ATTRIBUTE do
    advance st;
    expect st Token.LPAREN;
    expect st Token.LPAREN;
    let rec attr_list () =
      (match cur_tok st with
      | Token.IDENT "aligned" ->
          advance st;
          if accept st Token.LPAREN then begin
            let n =
              match cur_tok st with
              | Token.INT_LIT i ->
                  advance st;
                  Int64.to_int i
              | _ -> error st "expected alignment"
            in
            expect st Token.RPAREN;
            attrs := Ast.Aligned n :: !attrs
          end
          else attrs := Ast.Aligned 16 :: !attrs
      | Token.IDENT "noinline" ->
          advance st;
          attrs := Ast.Noinline :: !attrs
      | Token.IDENT other ->
          advance st;
          (* skip optional argument list *)
          if accept st Token.LPAREN then begin
            let depth = ref 1 in
            while !depth > 0 do
              (match cur_tok st with
              | Token.LPAREN -> incr depth
              | Token.RPAREN -> decr depth
              | Token.EOF -> error st "unterminated attribute"
              | _ -> ());
              if !depth > 0 then advance st else advance st
            done
          end;
          attrs := Ast.OtherAttr other :: !attrs
      | _ -> error st "expected attribute name");
      if accept st Token.COMMA then attr_list ()
    in
    attr_list ();
    expect st Token.RPAREN;
    expect st Token.RPAREN
  done;
  List.rev !attrs

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

let parse_array_dims st : Ast.expr option list =
  let dims = ref [] in
  while cur_tok st = Token.LBRACKET do
    advance st;
    if accept st Token.RBRACKET then dims := None :: !dims
    else begin
      let e = parse_expr st in
      expect st Token.RBRACKET;
      dims := Some e :: !dims
    end
  done;
  List.rev !dims

let rec parse_stmt st : Ast.stmt =
  match cur_tok st with
  | Token.PRAGMA text -> (
      advance st;
      match parse_loop_pragma text with
      | Some pragma -> (
          (* attach to the next loop statement *)
          match parse_stmt st with
          | Ast.For f -> Ast.For { f with pragma = Some pragma }
          | Ast.While w -> Ast.While { w with Ast.w_pragma = Some pragma }
          | other -> other)
      | None -> parse_stmt st)
  | Token.LBRACE ->
      advance st;
      let stmts = ref [] in
      while cur_tok st <> Token.RBRACE do
        stmts := parse_stmt st :: !stmts
      done;
      expect st Token.RBRACE;
      Ast.Block (List.rev !stmts)
  | Token.SEMI ->
      advance st;
      Ast.Empty
  | Token.KW_IF ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let then_s = parse_stmt st in
      let else_s = if accept st Token.KW_ELSE then Some (parse_stmt st) else None in
      Ast.If (cond, then_s, else_s)
  | Token.KW_FOR ->
      advance st;
      expect st Token.LPAREN;
      let init =
        if cur_tok st = Token.SEMI then (
          advance st;
          None)
        else if is_type_start (cur_tok st) then begin
          let s = parse_decl_stmt st in
          Some s
        end
        else begin
          let e = parse_expr st in
          expect st Token.SEMI;
          Some (Ast.Expr e)
        end
      in
      let cond =
        if cur_tok st = Token.SEMI then None else Some (parse_expr st)
      in
      expect st Token.SEMI;
      let step =
        if cur_tok st = Token.RPAREN then None else Some (parse_expr st)
      in
      expect st Token.RPAREN;
      let body = parse_stmt st in
      Ast.For { pragma = None; init; cond; step; body }
  | Token.KW_WHILE ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let body = parse_stmt st in
      Ast.While { Ast.w_pragma = None; w_cond = cond; w_body = body }
  | Token.KW_RETURN ->
      advance st;
      let e = if cur_tok st = Token.SEMI then None else Some (parse_expr st) in
      expect st Token.SEMI;
      Ast.Return e
  | Token.KW_BREAK ->
      advance st;
      expect st Token.SEMI;
      Ast.Break
  | Token.KW_CONTINUE ->
      advance st;
      expect st Token.SEMI;
      Ast.Continue
  | t when is_type_start t -> parse_decl_stmt st
  | _ ->
      let e = parse_expr st in
      expect st Token.SEMI;
      Ast.Expr e

(** Parse [ty name dims (= init)? ;] — a local declaration. Consumes the
    trailing semicolon. *)
and parse_decl_stmt st : Ast.stmt =
  let base, unsigned = parse_base_type st in
  let name =
    match cur_tok st with
    | Token.IDENT n ->
        advance st;
        n
    | _ -> error st "expected identifier in declaration"
  in
  let dims = parse_array_dims st in
  let ty = { Ast.base; unsigned; dims } in
  let init = if accept st Token.ASSIGN then Some (parse_assign st) else None in
  (* Additional declarators on the same line: lower to a Block. *)
  if cur_tok st = Token.COMMA then begin
    let decls = ref [ Ast.Decl (ty, name, init) ] in
    while accept st Token.COMMA do
      let name' =
        match cur_tok st with
        | Token.IDENT n ->
            advance st;
            n
        | _ -> error st "expected identifier in declaration"
      in
      let dims' = parse_array_dims st in
      let ty' = { Ast.base; unsigned; dims = dims' } in
      let init' =
        if accept st Token.ASSIGN then Some (parse_assign st) else None
      in
      decls := Ast.Decl (ty', name', init') :: !decls
    done;
    expect st Token.SEMI;
    Ast.Block (List.rev !decls)
  end
  else begin
    expect st Token.SEMI;
    Ast.Decl (ty, name, init)
  end

(* ------------------------------------------------------------------ *)
(* Top level                                                            *)
(* ------------------------------------------------------------------ *)

let parse_initializer_list st : Ast.expr =
  (* { e, e, ... } initializers are folded to their first element; the
     simulator initializes global arrays deterministically anyway. *)
  expect st Token.LBRACE;
  let first = if cur_tok st = Token.RBRACE then Ast.IntLit 0L else parse_assign st in
  while accept st Token.COMMA do
    if cur_tok st <> Token.RBRACE then ignore (parse_assign st)
  done;
  expect st Token.RBRACE;
  first

let parse_program (toks : Token.spanned list) : Ast.program =
  let st = make toks in
  let decls = ref [] in
  while cur_tok st <> Token.EOF do
    match cur_tok st with
    | Token.PRAGMA _ ->
        (* file-scope pragmas are ignored *)
        advance st
    | _ ->
        let leading_attrs = parse_attributes st in
        let base, unsigned = parse_base_type st in
        let mid_attrs = parse_attributes st in
        let name =
          match cur_tok st with
          | Token.IDENT n ->
              advance st;
              n
          | _ -> error st "expected top-level identifier"
        in
        if cur_tok st = Token.LPAREN then begin
          (* function definition *)
          advance st;
          let params = ref [] in
          if cur_tok st <> Token.RPAREN then begin
            let parse_param () =
              if cur_tok st = Token.KW_VOID && peek_tok st 1 = Token.RPAREN then
                advance st
              else begin
                let pbase, punsigned = parse_base_type st in
                let pname =
                  match cur_tok st with
                  | Token.IDENT n ->
                      advance st;
                      n
                  | _ -> error st "expected parameter name"
                in
                let pdims = parse_array_dims st in
                params :=
                  { Ast.p_ty = { Ast.base = pbase; unsigned = punsigned; dims = pdims };
                    p_name = pname }
                  :: !params
              end
            in
            parse_param ();
            while accept st Token.COMMA do
              parse_param ()
            done
          end;
          expect st Token.RPAREN;
          let post_attrs = parse_attributes st in
          if accept st Token.SEMI then
            (* prototype: ignored *)
            ()
          else begin
            expect st Token.LBRACE;
            let body = ref [] in
            while cur_tok st <> Token.RBRACE do
              body := parse_stmt st :: !body
            done;
            expect st Token.RBRACE;
            decls :=
              Ast.Func
                {
                  f_ret = { Ast.base; unsigned; dims = [] };
                  f_name = name;
                  f_params = List.rev !params;
                  f_attrs = leading_attrs @ mid_attrs @ post_attrs;
                  f_body = List.rev !body;
                }
              :: !decls
          end
        end
        else begin
          (* global variable *)
          let dims = parse_array_dims st in
          let post_attrs = parse_attributes st in
          let init =
            if accept st Token.ASSIGN then
              if cur_tok st = Token.LBRACE then Some (parse_initializer_list st)
              else Some (parse_assign st)
            else None
          in
          expect st Token.SEMI;
          decls :=
            Ast.Global
              {
                g_ty = { Ast.base; unsigned; dims };
                g_name = name;
                g_attrs = leading_attrs @ mid_attrs @ post_attrs;
                g_init = init;
              }
            :: !decls
        end
  done;
  List.rev !decls

(** Parse a complete source string into a program. *)
let parse_string (src : string) : Ast.program =
  parse_program (Lexer.tokenize src)
