lib/minic/pretty.ml: Ast Buffer Char Int64 List Printf String
