lib/minic/sema.ml: Ast Char Hashtbl Int64 List Printf
