(** Pretty-printer from AST back to C source.

    Printing then re-parsing yields a structurally identical AST (checked by
    a qcheck property); this is what the pragma injector relies on when it
    rewrites programs with new vectorization pragmas. *)

open Ast

let rec prec_of = function
  | Comma _ -> 1
  | Assign _ | OpAssign _ -> 2
  | Ternary _ -> 3
  | Binop (LogOr, _, _) -> 4
  | Binop (LogAnd, _, _) -> 5
  | Binop (BitOr, _, _) -> 6
  | Binop (BitXor, _, _) -> 7
  | Binop (BitAnd, _, _) -> 8
  | Binop ((Eq | Ne), _, _) -> 9
  | Binop ((Lt | Gt | Le | Ge), _, _) -> 10
  | Binop ((Shl | Shr), _, _) -> 11
  | Binop ((Add | Sub), _, _) -> 12
  | Binop ((Mul | Div | Rem), _, _) -> 13
  | Unop ((Neg | Not | BitNot | PreInc | PreDec), _) | Cast _ -> 14
  | Unop ((PostInc | PostDec), _) | Index _ | Call _ -> 15
  | IntLit _ | FloatLit _ | CharLit _ | Ident _ -> 16

and expr_to_buf buf outer e =
  let p = prec_of e in
  let parens = p < outer in
  if parens then Buffer.add_char buf '(';
  (match e with
  | IntLit i -> Buffer.add_string buf (Int64.to_string i)
  | FloatLit f ->
      let s = Printf.sprintf "%.17g" f in
      Buffer.add_string buf s;
      (* ensure it still reads as a float *)
      if
        not
          (String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s)
      then Buffer.add_string buf ".0"
  | CharLit c -> Buffer.add_string buf (Printf.sprintf "%d" (Char.code c))
  | Ident s -> Buffer.add_string buf s
  | Index (a, i) ->
      expr_to_buf buf 15 a;
      Buffer.add_char buf '[';
      expr_to_buf buf 0 i;
      Buffer.add_char buf ']'
  | Unop (PostInc, a) ->
      expr_to_buf buf 15 a;
      Buffer.add_string buf "++"
  | Unop (PostDec, a) ->
      expr_to_buf buf 15 a;
      Buffer.add_string buf "--"
  | Unop (PreInc, a) ->
      Buffer.add_string buf "++";
      expr_to_buf buf 14 a
  | Unop (PreDec, a) ->
      Buffer.add_string buf "--";
      expr_to_buf buf 14 a
  | Unop (op, a) ->
      Buffer.add_string buf (unop_to_string op);
      (* avoid "--x" (lexes as decrement) when negating a negation *)
      let tmp = Buffer.create 16 in
      expr_to_buf tmp 14 a;
      let s = Buffer.contents tmp in
      if String.length s > 0 && s.[0] = '-' && op = Neg then
        Buffer.add_char buf ' ';
      Buffer.add_string buf s
  | Binop (op, a, b) ->
      expr_to_buf buf p a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (binop_to_string op);
      Buffer.add_char buf ' ';
      expr_to_buf buf (p + 1) b
  | Assign (l, r) ->
      expr_to_buf buf 3 l;
      Buffer.add_string buf " = ";
      expr_to_buf buf 2 r
  | OpAssign (op, l, r) ->
      expr_to_buf buf 3 l;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (binop_to_string op);
      Buffer.add_string buf "= ";
      expr_to_buf buf 2 r
  | Ternary (c, t, f) ->
      expr_to_buf buf 4 c;
      Buffer.add_string buf " ? ";
      expr_to_buf buf 2 t;
      Buffer.add_string buf " : ";
      expr_to_buf buf 3 f
  | Call (f, args) ->
      Buffer.add_string buf f;
      Buffer.add_char buf '(';
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_string buf ", ";
          expr_to_buf buf 2 a)
        args;
      Buffer.add_char buf ')'
  | Cast (ty, a) ->
      Buffer.add_char buf '(';
      Buffer.add_string buf (ty_prefix ty);
      Buffer.add_char buf ')';
      Buffer.add_char buf ' ';
      expr_to_buf buf 14 a
  | Comma (a, b) ->
      expr_to_buf buf 2 a;
      Buffer.add_string buf ", ";
      expr_to_buf buf 1 b);
  if parens then Buffer.add_char buf ')'

and ty_prefix ty =
  let u = if ty.unsigned then "unsigned " else "" in
  u ^ base_ty_to_string ty.base

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr_to_buf buf 0 e;
  Buffer.contents buf

let pragma_to_string (p : loop_pragma) =
  let parts = ref [] in
  (match p.interleave_count with
  | Some n -> parts := Printf.sprintf "interleave_count(%d)" n :: !parts
  | None -> ());
  (match p.vectorize_width with
  | Some n -> parts := Printf.sprintf "vectorize_width(%d)" n :: !parts
  | None -> ());
  (match p.vectorize_enable with
  | Some true -> parts := "vectorize(enable)" :: !parts
  | Some false -> parts := "vectorize(disable)" :: !parts
  | None -> ());
  "#pragma clang loop " ^ String.concat " " !parts

let indent buf n = Buffer.add_string buf (String.make (2 * n) ' ')

let dims_to_buf buf dims =
  List.iter
    (fun d ->
      Buffer.add_char buf '[';
      (match d with Some e -> expr_to_buf buf 0 e | None -> ());
      Buffer.add_char buf ']')
    dims

let rec stmt_to_buf buf lvl (s : stmt) =
  match s with
  | Decl (ty, name, init) ->
      indent buf lvl;
      Buffer.add_string buf (ty_prefix ty);
      Buffer.add_char buf ' ';
      Buffer.add_string buf name;
      dims_to_buf buf ty.dims;
      (match init with
      | Some e ->
          Buffer.add_string buf " = ";
          expr_to_buf buf 2 e
      | None -> ());
      Buffer.add_string buf ";\n"
  | Expr e ->
      indent buf lvl;
      expr_to_buf buf 0 e;
      Buffer.add_string buf ";\n"
  | Block ss ->
      indent buf lvl;
      Buffer.add_string buf "{\n";
      List.iter (stmt_to_buf buf (lvl + 1)) ss;
      indent buf lvl;
      Buffer.add_string buf "}\n"
  | If (c, t, f) -> (
      indent buf lvl;
      Buffer.add_string buf "if (";
      expr_to_buf buf 0 c;
      Buffer.add_string buf ")\n";
      stmt_as_block buf lvl t;
      match f with
      | Some f ->
          indent buf lvl;
          Buffer.add_string buf "else\n";
          stmt_as_block buf lvl f
      | None -> ())
  | For { pragma; init; cond; step; body } ->
      (match pragma with
      | Some p ->
          indent buf lvl;
          Buffer.add_string buf (pragma_to_string p);
          Buffer.add_char buf '\n'
      | None -> ());
      indent buf lvl;
      Buffer.add_string buf "for (";
      (match init with
      | Some (Decl (ty, name, ie)) ->
          Buffer.add_string buf (ty_prefix ty);
          Buffer.add_char buf ' ';
          Buffer.add_string buf name;
          (match ie with
          | Some e ->
              Buffer.add_string buf " = ";
              expr_to_buf buf 2 e
          | None -> ())
      | Some (Expr e) -> expr_to_buf buf 0 e
      | Some _ | None -> ());
      Buffer.add_string buf "; ";
      (match cond with Some e -> expr_to_buf buf 0 e | None -> ());
      Buffer.add_string buf "; ";
      (match step with Some e -> expr_to_buf buf 0 e | None -> ());
      Buffer.add_string buf ")\n";
      stmt_as_block buf lvl body
  | While { w_pragma = pragma; w_cond = cond; w_body = body } ->
      (match pragma with
      | Some p ->
          indent buf lvl;
          Buffer.add_string buf (pragma_to_string p);
          Buffer.add_char buf '\n'
      | None -> ());
      indent buf lvl;
      Buffer.add_string buf "while (";
      expr_to_buf buf 0 cond;
      Buffer.add_string buf ")\n";
      stmt_as_block buf lvl body
  | Return e ->
      indent buf lvl;
      Buffer.add_string buf "return";
      (match e with
      | Some e ->
          Buffer.add_char buf ' ';
          expr_to_buf buf 0 e
      | None -> ());
      Buffer.add_string buf ";\n"
  | Break ->
      indent buf lvl;
      Buffer.add_string buf "break;\n"
  | Continue ->
      indent buf lvl;
      Buffer.add_string buf "continue;\n"
  | Empty ->
      indent buf lvl;
      Buffer.add_string buf ";\n"

and stmt_as_block buf lvl s =
  match s with
  | Block _ -> stmt_to_buf buf lvl s
  | _ -> stmt_to_buf buf (lvl + 1) s

let stmt_to_string ?(level = 0) s =
  let buf = Buffer.create 256 in
  stmt_to_buf buf level s;
  Buffer.contents buf

let attr_to_string = function
  | Aligned n -> Printf.sprintf "aligned(%d)" n
  | Noinline -> "noinline"
  | OtherAttr s -> s

let attrs_to_string attrs =
  if attrs = [] then ""
  else
    Printf.sprintf "__attribute__((%s)) "
      (String.concat ", " (List.map attr_to_string attrs))

let decl_to_buf buf (d : decl) =
  match d with
  | Global g ->
      Buffer.add_string buf (ty_prefix g.g_ty);
      Buffer.add_char buf ' ';
      Buffer.add_string buf g.g_name;
      dims_to_buf buf g.g_ty.dims;
      if g.g_attrs <> [] then begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf (String.trim (attrs_to_string g.g_attrs))
      end;
      (match g.g_init with
      | Some e ->
          Buffer.add_string buf " = ";
          expr_to_buf buf 2 e
      | None -> ());
      Buffer.add_string buf ";\n"
  | Func f ->
      Buffer.add_string buf (attrs_to_string f.f_attrs);
      Buffer.add_string buf (ty_prefix f.f_ret);
      Buffer.add_char buf ' ';
      Buffer.add_string buf f.f_name;
      Buffer.add_char buf '(';
      List.iteri
        (fun i p ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (ty_prefix p.p_ty);
          Buffer.add_char buf ' ';
          Buffer.add_string buf p.p_name;
          dims_to_buf buf p.p_ty.dims)
        f.f_params;
      Buffer.add_string buf ") {\n";
      List.iter (stmt_to_buf buf 1) f.f_body;
      Buffer.add_string buf "}\n"

let program_to_string (p : program) =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf '\n';
      decl_to_buf buf d)
    p;
  Buffer.contents buf
