(** Lexical tokens for the mini-C language accepted by the frontend.

    The subset covers everything that appears in the NeuroVectorizer loop
    dataset: scalar and array declarations, [for]/[while]/[if] statements,
    the usual C expression grammar, GCC-style [__attribute__] annotations and
    [#pragma clang loop ...] directives. *)

type t =
  (* Literals and identifiers *)
  | INT_LIT of int64
  | FLOAT_LIT of float
  | CHAR_LIT of char
  | STRING_LIT of string
  | IDENT of string
  (* Type keywords *)
  | KW_VOID
  | KW_CHAR
  | KW_SHORT
  | KW_INT
  | KW_LONG
  | KW_FLOAT
  | KW_DOUBLE
  | KW_UNSIGNED
  | KW_SIGNED
  | KW_CONST
  | KW_STATIC
  | KW_STRUCT
  (* Statement keywords *)
  | KW_FOR
  | KW_WHILE
  | KW_DO
  | KW_IF
  | KW_ELSE
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | KW_SIZEOF
  (* Punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | QUESTION
  | COLON
  (* Operators *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | LSHIFT
  | RSHIFT
  | LT
  | GT
  | LE
  | GE
  | EQEQ
  | NEQ
  | AMPAMP
  | PIPEPIPE
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PERCENT_ASSIGN
  | AMP_ASSIGN
  | PIPE_ASSIGN
  | CARET_ASSIGN
  | LSHIFT_ASSIGN
  | RSHIFT_ASSIGN
  | PLUSPLUS
  | MINUSMINUS
  | DOT
  | ARROW
  (* Extensions *)
  | ATTRIBUTE  (** [__attribute__] *)
  | PRAGMA of string  (** raw text after [#pragma], up to end of line *)
  | EOF

(** Source position: line and column, both 1-based. *)
type pos = { line : int; col : int }

type spanned = { tok : t; pos : pos }

let keyword_table : (string * t) list =
  [
    ("void", KW_VOID);
    ("char", KW_CHAR);
    ("short", KW_SHORT);
    ("int", KW_INT);
    ("long", KW_LONG);
    ("float", KW_FLOAT);
    ("double", KW_DOUBLE);
    ("unsigned", KW_UNSIGNED);
    ("signed", KW_SIGNED);
    ("const", KW_CONST);
    ("static", KW_STATIC);
    ("struct", KW_STRUCT);
    ("for", KW_FOR);
    ("while", KW_WHILE);
    ("do", KW_DO);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("return", KW_RETURN);
    ("break", KW_BREAK);
    ("continue", KW_CONTINUE);
    ("sizeof", KW_SIZEOF);
    ("__attribute__", ATTRIBUTE);
  ]

let lookup_keyword s =
  match List.assoc_opt s keyword_table with Some t -> t | None -> IDENT s

let to_string = function
  | INT_LIT i -> Int64.to_string i
  | FLOAT_LIT f -> string_of_float f
  | CHAR_LIT c -> Printf.sprintf "'%c'" c
  | STRING_LIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_VOID -> "void"
  | KW_CHAR -> "char"
  | KW_SHORT -> "short"
  | KW_INT -> "int"
  | KW_LONG -> "long"
  | KW_FLOAT -> "float"
  | KW_DOUBLE -> "double"
  | KW_UNSIGNED -> "unsigned"
  | KW_SIGNED -> "signed"
  | KW_CONST -> "const"
  | KW_STATIC -> "static"
  | KW_STRUCT -> "struct"
  | KW_FOR -> "for"
  | KW_WHILE -> "while"
  | KW_DO -> "do"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_SIZEOF -> "sizeof"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | QUESTION -> "?"
  | COLON -> ":"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | LSHIFT -> "<<"
  | RSHIFT -> ">>"
  | LT -> "<"
  | GT -> ">"
  | LE -> "<="
  | GE -> ">="
  | EQEQ -> "=="
  | NEQ -> "!="
  | AMPAMP -> "&&"
  | PIPEPIPE -> "||"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/="
  | PERCENT_ASSIGN -> "%="
  | AMP_ASSIGN -> "&="
  | PIPE_ASSIGN -> "|="
  | CARET_ASSIGN -> "^="
  | LSHIFT_ASSIGN -> "<<="
  | RSHIFT_ASSIGN -> ">>="
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | DOT -> "."
  | ARROW -> "->"
  | ATTRIBUTE -> "__attribute__"
  | PRAGMA s -> "#pragma " ^ s
  | EOF -> "<eof>"

let equal (a : t) (b : t) = a = b
