(** The loop vectorization transform: widening + interleaving.

    Given a legal innermost counted loop and a plan [(VF, IF)], produces

    {v setup        (reduction accumulators, live-out pre-seeds)
       main loop     (step = VF*IF*step, widened + unrolled body)
       epilogue      (horizontal reductions, live-out extraction)
       remainder     (the original scalar loop, continuing from where the
                      main loop stopped) v}

    Design notes:
    - Registers that feed memory indices stay scalar (one clone per unroll
      copy, evaluated at the copy's lane-0 iteration); registers that carry
      data are widened to [VF] lanes. A register may need both.
    - [If] nodes are if-converted: the condition becomes a lane mask,
      branch loads/stores are masked, and values defined under the branch
      merge through [Select]. Scalar ([VF = 1]) interleaving reuses the
      same path — the interpreter honours masks on scalar accesses.
    - Reductions get one accumulator per unroll copy, seeded with the
      operation's identity, combined horizontally in the epilogue.
    - Every register the original body defines is restored in the epilogue
      to its "last processed iteration" value (lane [VF-1] of the last
      copy), so code after the loop — and the remainder loop itself —
      observes exactly the state scalar execution would have produced. *)

module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

type plan = { vf : int; if_ : int }

let no_vectorize = { vf = 1; if_ = 1 }

(* ------------------------------------------------------------------ *)
(* Flattening the (legal) body                                          *)
(* ------------------------------------------------------------------ *)

type flat =
  | FInstr of Ir.instr
  | FIf of Ir.code * Ir.instr list * Ir.instr list

let rec flatten (nodes : Ir.node list) : flat list =
  List.concat_map
    (fun n ->
      match n with
      | Ir.Block is -> List.map (fun i -> FInstr i) is
      | Ir.If { cond; then_; else_ } ->
          [ FIf (cond, block_instrs then_, block_instrs else_) ]
      | Ir.Loop _ | Ir.WhileLoop _ | Ir.Return _ | Ir.BreakN | Ir.ContinueN ->
          invalid_arg "flatten: body not legal for vectorization")
    nodes

and block_instrs nodes =
  List.concat_map
    (function
      | Ir.Block is -> is
      | _ -> invalid_arg "flatten: nested control under If")
    nodes

(** Original instructions in processing order (cond, then, else for Ifs). *)
let flat_instrs (fl : flat list) : Ir.instr list =
  List.concat_map
    (function
      | FInstr i -> [ i ]
      | FIf ((ci, _), t, e) -> ci @ t @ e)
    fl

(* ------------------------------------------------------------------ *)
(* Index / data classification                                          *)
(* ------------------------------------------------------------------ *)

let value_regs (v : Ir.value) = match v with Ir.Reg r -> [ r ] | _ -> []

(** Operand registers of an rvalue, split by context:
    (index-context, data-context). *)
let rvalue_operand_regs (rv : Ir.rvalue) : Ir.reg list * Ir.reg list =
  match rv with
  | Ir.IBin (_, _, a, b) | Ir.FBin (_, _, a, b) | Ir.ICmp (_, _, a, b)
  | Ir.FCmp (_, _, a, b) ->
      ([], value_regs a @ value_regs b)
  | Ir.Select (_, c, a, b) -> ([], value_regs c @ value_regs a @ value_regs b)
  | Ir.Cast (_, _, _, v) | Ir.Splat (_, v) | Ir.Extract (_, v, _)
  | Ir.Reduce (_, _, v) | Ir.Mov (_, v) | Ir.Stride (_, v, _) ->
      ([], value_regs v)
  | Ir.Load (_, m) ->
      ( value_regs m.Ir.index,
        match m.Ir.mask with Some v -> value_regs v | None -> [] )

let instr_operand_regs (i : Ir.instr) : Ir.reg list * Ir.reg list =
  match i with
  | Ir.Def (_, rv) -> rvalue_operand_regs rv
  | Ir.Store (_, m, v) ->
      ( value_regs m.Ir.index,
        value_regs v
        @ (match m.Ir.mask with Some mv -> value_regs mv | None -> []) )
  | Ir.CallI (_, _, args) -> ([], List.concat_map value_regs args)

(** Which loop-defined registers are needed in scalar (index) form and which
    in vector (data) form. If-condition values count as data. *)
let classify (fl : flat list) ~(defined : IntSet.t) ~(reductions : IntSet.t) :
    IntSet.t * IntSet.t =
  let instrs = flat_instrs fl in
  let index_set = ref IntSet.empty and data_set = ref reductions in
  let add_def set r = if IntSet.mem r defined then set := IntSet.add r !set in
  (* Seeds: only *root* uses classify a register. Memory indices are the
     index roots; stored values, masks and call arguments are data roots.
     Operands of ordinary defs inherit the classification of their user
     during propagation below — seeding them directly would mark every
     register touching arithmetic as data. *)
  List.iter
    (fun i ->
      match i with
      | Ir.Def (_, Ir.Load (_, m)) -> (
          List.iter (add_def index_set) (value_regs m.Ir.index);
          match m.Ir.mask with
          | Some mv -> List.iter (add_def data_set) (value_regs mv)
          | None -> ())
      | Ir.Def _ -> ()
      | Ir.Store (_, m, v) -> (
          List.iter (add_def index_set) (value_regs m.Ir.index);
          List.iter (add_def data_set) (value_regs v);
          match m.Ir.mask with
          | Some mv -> List.iter (add_def data_set) (value_regs mv)
          | None -> ())
      | Ir.CallI (_, _, args) ->
          List.iter (fun a -> List.iter (add_def data_set) (value_regs a)) args)
    instrs;
  (* If conditions feed masks: data *)
  List.iter
    (function
      | FIf ((_, cv), _, _) -> List.iter (add_def data_set) (value_regs cv)
      | FInstr _ -> ())
    fl;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun i ->
        match i with
        | Ir.Def (r, rv) ->
            let idx_ops, data_ops = rvalue_operand_regs rv in
            let ops = idx_ops @ data_ops in
            let propagate set =
              List.iter
                (fun o ->
                  if IntSet.mem o defined && not (IntSet.mem o !set) then begin
                    set := IntSet.add o !set;
                    changed := true
                  end)
                ops
            in
            if IntSet.mem r !index_set then propagate index_set;
            if IntSet.mem r !data_set then propagate data_set
        | _ -> ())
      instrs
  done;
  (!index_set, !data_set)

(* ------------------------------------------------------------------ *)
(* Access strides, precomputed per load/store occurrence                *)
(* ------------------------------------------------------------------ *)

(** Per-iteration element stride of each memory access, in processing
    order. Raises if any access is non-affine (legality prevents that). *)
let access_strides (l : Ir.loop) (fl : flat list) : int array =
  let body_nodes = [ Ir.Block (flat_instrs fl) ] in
  let env = Analysis.Scev.make_env ~induction_vars:[ l.Ir.l_var ] body_nodes in
  let strides = ref [] in
  let record (m : Ir.mem_ref) =
    let sv = Analysis.Scev.eval_value env m.Ir.index in
    match sv with
    | Analysis.Scev.Unknown -> invalid_arg "access_strides: non-affine access"
    | Analysis.Scev.Affine _ ->
        strides := (Analysis.Scev.coeff_of l.Ir.l_var sv * l.Ir.l_step) :: !strides
  in
  List.iter
    (fun i ->
      (match i with
      | Ir.Def (_, Ir.Load (_, m)) -> record m
      | Ir.Store (_, m, _) -> record m
      | _ -> ());
      Analysis.Scev.step env i)
    (flat_instrs fl);
  Array.of_list (List.rev !strides)

(* ------------------------------------------------------------------ *)
(* Widening context                                                     *)
(* ------------------------------------------------------------------ *)

type wctx = {
  fn : Ir.func;
  cvf : int;
  loop : Ir.loop;
  index_set : IntSet.t;
  data_set : IntSet.t;
  defined : IntSet.t;
  red_map : Ir.reg IntMap.t;  (** reduction reg -> this copy's accumulator *)
  strides : int array;
  mutable acc_cursor : int;  (** next access occurrence index *)
  mutable s_map : Ir.value IntMap.t;
  mutable v_map : Ir.value IntMap.t;
  mutable out : Ir.instr list;  (** reversed *)
}

let emit ctx i = ctx.out <- i :: ctx.out

let map_scalar ctx (v : Ir.value) : Ir.value =
  match v with
  | Ir.Reg r -> (
      match IntMap.find_opt r ctx.s_map with Some v -> v | None -> Ir.Reg r)
  | _ -> v

let map_vector ctx (v : Ir.value) : Ir.value =
  match v with
  | Ir.Reg r -> (
      match IntMap.find_opt r ctx.v_map with Some v -> v | None -> Ir.Reg r)
  | _ -> v

let wty ctx (ty : Ir.ty) : Ir.ty = Ir.widen ctx.cvf ty

let next_stride ctx =
  let s = ctx.strides.(ctx.acc_cursor) in
  ctx.acc_cursor <- ctx.acc_cursor + 1;
  s

let scalar_rvalue ctx (rv : Ir.rvalue) : Ir.rvalue =
  let mv = map_scalar ctx in
  match rv with
  | Ir.IBin (op, ty, a, b) -> Ir.IBin (op, ty, mv a, mv b)
  | Ir.FBin (op, ty, a, b) -> Ir.FBin (op, ty, mv a, mv b)
  | Ir.ICmp (op, ty, a, b) -> Ir.ICmp (op, ty, mv a, mv b)
  | Ir.FCmp (op, ty, a, b) -> Ir.FCmp (op, ty, mv a, mv b)
  | Ir.Select (ty, c, a, b) -> Ir.Select (ty, mv c, mv a, mv b)
  | Ir.Cast (k, f, t, v) -> Ir.Cast (k, f, t, mv v)
  | Ir.Load (ty, m) -> Ir.Load (ty, { m with Ir.index = mv m.Ir.index })
  | Ir.Mov (ty, v) -> Ir.Mov (ty, mv v)
  | Ir.Splat (ty, v) -> Ir.Splat (ty, mv v)
  | Ir.Extract (s, v, l) -> Ir.Extract (s, mv v, l)
  | Ir.Reduce (o, s, v) -> Ir.Reduce (o, s, mv v)
  | Ir.Stride (ty, v, s) -> Ir.Stride (ty, mv v, s)

let vector_rvalue ctx ~stride ~mask (rv : Ir.rvalue) : Ir.rvalue =
  let mv = map_vector ctx in
  match rv with
  | Ir.IBin (op, ty, a, b) -> Ir.IBin (op, wty ctx ty, mv a, mv b)
  | Ir.FBin (op, ty, a, b) -> Ir.FBin (op, wty ctx ty, mv a, mv b)
  | Ir.ICmp (op, ty, a, b) -> Ir.ICmp (op, wty ctx ty, mv a, mv b)
  | Ir.FCmp (op, ty, a, b) -> Ir.FCmp (op, wty ctx ty, mv a, mv b)
  | Ir.Select (ty, c, a, b) -> Ir.Select (wty ctx ty, mv c, mv a, mv b)
  | Ir.Cast (k, f, t, v) -> Ir.Cast (k, wty ctx f, wty ctx t, mv v)
  | Ir.Load (ty, m) ->
      Ir.Load
        ( wty ctx ty,
          { Ir.base = m.Ir.base; index = map_scalar ctx m.Ir.index; stride;
            mask } )
  | Ir.Mov (ty, v) -> Ir.Mov (wty ctx ty, mv v)
  | Ir.Splat (ty, v) -> Ir.Splat (wty ctx ty, mv v)
  | Ir.Extract (s, v, l) -> Ir.Extract (s, mv v, l)
  | Ir.Reduce (o, s, v) -> Ir.Reduce (o, s, mv v)
  | Ir.Stride (ty, v, s) -> Ir.Stride (wty ctx ty, mv v, s)

(** Element scalar type of a register in the original body. *)
let orig_elem ctx r = Ir.elem_ty (Ir.reg_ty ctx.fn r)

(** Process one original instruction in this unroll copy. *)
let widen_instr ctx ~(mask : Ir.value option) (i : Ir.instr) : unit =
  match i with
  | Ir.Def (r, rv) ->
      (* scalar clone for index uses *)
      if IntSet.mem r ctx.index_set then begin
        let r_s = Ir.fresh_reg ctx.fn (Ir.reg_ty ctx.fn r) in
        emit ctx (Ir.Def (r_s, scalar_rvalue ctx rv));
        ctx.s_map <- IntMap.add r (Ir.Reg r_s) ctx.s_map
      end;
      (* vector clone for data uses (also the default for dead defs) *)
      if IntSet.mem r ctx.data_set || not (IntSet.mem r ctx.index_set) then begin
        let is_load = match rv with Ir.Load _ -> true | _ -> false in
        let stride = if is_load then next_stride ctx else 0 in
        let target =
          match IntMap.find_opt r ctx.red_map with
          | Some acc -> acc
          | None -> Ir.fresh_reg ctx.fn (wty ctx (Ir.reg_ty ctx.fn r))
        in
        emit ctx (Ir.Def (target, vector_rvalue ctx ~stride ~mask rv));
        ctx.v_map <- IntMap.add r (Ir.Reg target) ctx.v_map
      end
      else begin
        (* index-only def still consumes its access slot if it's a load *)
        match rv with Ir.Load _ -> ignore (next_stride ctx) | _ -> ()
      end
  | Ir.Store (ty, m, v) ->
      let stride = next_stride ctx in
      emit ctx
        (Ir.Store
           ( wty ctx ty,
             { Ir.base = m.Ir.base; index = map_scalar ctx m.Ir.index; stride;
               mask },
             map_vector ctx v ))
  | Ir.CallI _ -> invalid_arg "widen_instr: calls are not vectorizable"

(** If-convert one [FIf]: cond → mask; both branches masked; defs merged. *)
let widen_if ctx ((ci, cv) : Ir.code) (then_ : Ir.instr list)
    (else_ : Ir.instr list) : unit =
  List.iter (widen_instr ctx ~mask:None) ci;
  let m = map_vector ctx cv in
  let mask_ty = wty ctx (Ir.Scalar Ir.I1) in
  let v_before = ctx.v_map in
  List.iter (widen_instr ctx ~mask:(Some m)) then_;
  let v_then = ctx.v_map in
  ctx.v_map <- v_before;
  let not_m =
    if else_ = [] then Ir.IConst 0L (* unused *)
    else begin
      let r = Ir.fresh_reg ctx.fn mask_ty in
      emit ctx (Ir.Def (r, Ir.IBin (Ir.Xor, mask_ty, m, Ir.IConst 1L)));
      Ir.Reg r
    end
  in
  List.iter (widen_instr ctx ~mask:(Some not_m)) else_;
  let v_else = ctx.v_map in
  (* merge every data reg defined in either branch *)
  let branch_defs =
    List.filter_map
      (function Ir.Def (r, _) -> Some r | _ -> None)
      (then_ @ else_)
    |> List.filter (fun r ->
           IntSet.mem r ctx.data_set || not (IntSet.mem r ctx.index_set))
    |> List.sort_uniq compare
  in
  ctx.v_map <- v_before;
  List.iter
    (fun r ->
      if IntMap.mem r ctx.red_map then
        (* predicated reductions were rejected by legality *)
        invalid_arg "widen_if: predicated reduction";
      let prev = IntMap.find_opt r v_before in
      let tv_o = IntMap.find_opt r v_then and ev_o = IntMap.find_opt r v_else in
      let tv =
        match (tv_o, prev, ev_o) with
        | Some v, _, _ -> v
        | None, Some p, _ -> p
        | None, None, Some e -> e
        | None, None, None -> assert false
      in
      let ev =
        match (ev_o, prev) with
        | Some v, _ -> v
        | None, Some p -> p
        | None, None -> tv
      in
      if tv = ev then ctx.v_map <- IntMap.add r tv ctx.v_map
      else begin
        let vty = wty ctx (Ir.Scalar (orig_elem ctx r)) in
        let sel = Ir.fresh_reg ctx.fn vty in
        emit ctx (Ir.Def (sel, Ir.Select (vty, m, tv, ev)));
        ctx.v_map <- IntMap.add r (Ir.Reg sel) ctx.v_map
      end)
    branch_defs

(* ------------------------------------------------------------------ *)
(* The full transform                                                   *)
(* ------------------------------------------------------------------ *)

let fbin_of_red : Analysis.Reduction.kind -> Ir.fbin = function
  | Analysis.Reduction.RedAdd -> Ir.FAdd
  | Analysis.Reduction.RedMul -> Ir.FMul
  | _ -> invalid_arg "float reduction kind"

let ibin_of_red : Analysis.Reduction.kind -> Ir.ibin = function
  | Analysis.Reduction.RedAdd -> Ir.Add
  | Analysis.Reduction.RedMul -> Ir.Mul
  | Analysis.Reduction.RedAnd -> Ir.And
  | Analysis.Reduction.RedOr -> Ir.Or
  | Analysis.Reduction.RedXor -> Ir.Xor

let reduce_op_of_red : Analysis.Reduction.kind -> Ir.reduce_op = function
  | Analysis.Reduction.RedAdd -> Ir.RAdd
  | Analysis.Reduction.RedMul -> Ir.RMul
  | Analysis.Reduction.RedAnd -> Ir.RAnd
  | Analysis.Reduction.RedOr -> Ir.ROr
  | Analysis.Reduction.RedXor -> Ir.RXor

(** Apply the transform. The caller guarantees legality ([Legality.clamp]
    was used on the plan). Returns the replacement nodes. *)
let vectorize (fn : Ir.func) (info : Analysis.Loopinfo.t) (p : plan) :
    Ir.node list =
  let l = info.Analysis.Loopinfo.li_loop in
  if p.vf = 1 && p.if_ = 1 then
    [ Ir.Loop { l with Ir.l_pragma = None } ]
  else begin
    let vf = p.vf and if_ = p.if_ in
    let k = vf * if_ in
    let fl = flatten l.Ir.l_body in
    let instrs = flat_instrs fl in
    let defined =
      List.fold_left
        (fun s i ->
          match i with
          | Ir.Def (r, _) -> IntSet.add r s
          | _ -> s)
        IntSet.empty instrs
    in
    let reductions = info.Analysis.Loopinfo.li_reductions in
    let red_set =
      List.fold_left
        (fun s r -> IntSet.add r.Analysis.Reduction.red_reg s)
        IntSet.empty reductions
    in
    let index_set, data_set = classify fl ~defined ~reductions:red_set in
    let strides = access_strides l fl in
    let var_sty =
      match Ir.reg_ty fn l.Ir.l_var with Ir.Scalar s -> s | Ir.Vec (_, s) -> s
    in
    let setup = ref [] and epilogue = ref [] in
    let push_setup i = setup := i :: !setup in
    let push_epi i = epilogue := i :: !epilogue in
    (* reduction accumulators: one per unroll copy *)
    let accs_of_red = Hashtbl.create 4 in
    List.iter
      (fun red ->
        let r = red.Analysis.Reduction.red_reg in
        let sty = Ir.elem_ty (Ir.reg_ty fn r) in
        let vty = Ir.widen vf (Ir.Scalar sty) in
        let accs =
          Array.init if_ (fun _ ->
              let a = Ir.fresh_reg fn vty in
              let ident =
                Analysis.Reduction.identity_value red.Analysis.Reduction.red_kind
                  red.Analysis.Reduction.red_float
              in
              push_setup (Ir.Def (a, Ir.Splat (vty, ident)));
              a)
        in
        Hashtbl.replace accs_of_red r (red, accs))
      reductions;
    (* per-copy widening *)
    let last_copy_vmap = ref IntMap.empty in
    let last_copy_smap = ref IntMap.empty in
    let body_out = ref [] in
    for u = 0 to if_ - 1 do
      let var_u =
        if u = 0 then Ir.Reg l.Ir.l_var
        else begin
          let r = Ir.fresh_reg fn (Ir.Scalar var_sty) in
          body_out :=
            Ir.Def
              ( r,
                Ir.IBin
                  ( Ir.Add, Ir.Scalar var_sty, Ir.Reg l.Ir.l_var,
                    Ir.IConst (Int64.of_int (u * vf * l.Ir.l_step)) ) )
            :: !body_out;
          Ir.Reg r
        end
      in
      (* vector induction value for data uses of the loop variable *)
      let iv_u = Ir.fresh_reg fn (Ir.widen vf (Ir.Scalar var_sty)) in
      body_out :=
        Ir.Def (iv_u, Ir.Stride (Ir.widen vf (Ir.Scalar var_sty), var_u, l.Ir.l_step))
        :: !body_out;
      let red_map =
        Hashtbl.fold
          (fun r (_, accs) m -> IntMap.add r accs.(u) m)
          accs_of_red IntMap.empty
      in
      let ctx =
        {
          fn; cvf = vf; loop = l; index_set; data_set; defined;
          red_map; strides; acc_cursor = 0;
          s_map = IntMap.singleton l.Ir.l_var var_u;
          v_map =
            IntMap.add l.Ir.l_var (Ir.Reg iv_u)
              (IntMap.map (fun a -> Ir.Reg a) red_map);
          out = [];
        }
      in
      List.iter
        (function
          | FInstr i -> widen_instr ctx ~mask:None i
          | FIf (c, t, e) -> widen_if ctx c t e)
        fl;
      body_out := List.rev_append (List.rev ctx.out) !body_out;
      if u = if_ - 1 then begin
        last_copy_vmap := ctx.v_map;
        last_copy_smap := ctx.s_map
      end
    done;
    let body_instrs = List.rev !body_out in
    (* epilogue: combine reductions into the original scalar register *)
    Hashtbl.iter
      (fun r (red, accs) ->
        let sty = Ir.elem_ty (Ir.reg_ty fn r) in
        let partials =
          Array.to_list accs
          |> List.map (fun a ->
                 if vf = 1 then Ir.Reg a
                 else begin
                   let s = Ir.fresh_reg fn (Ir.Scalar sty) in
                   push_epi
                     (Ir.Def
                        ( s,
                          Ir.Reduce
                            ( reduce_op_of_red red.Analysis.Reduction.red_kind,
                              sty, Ir.Reg a ) ));
                   Ir.Reg s
                 end)
        in
        (* r := r op p0 op p1 ... *)
        let combine acc v =
          let t = Ir.fresh_reg fn (Ir.Scalar sty) in
          let rv =
            if red.Analysis.Reduction.red_float then
              Ir.FBin (fbin_of_red red.Analysis.Reduction.red_kind,
                       Ir.Scalar sty, acc, v)
            else
              Ir.IBin (ibin_of_red red.Analysis.Reduction.red_kind,
                       Ir.Scalar sty, acc, v)
          in
          push_epi (Ir.Def (t, rv));
          Ir.Reg t
        in
        let final = List.fold_left combine (Ir.Reg r) partials in
        push_epi (Ir.Def (r, Ir.Mov (Ir.Scalar sty, final))))
      accs_of_red;
    (* epilogue: restore every non-reduction defined register to its
       last-processed-iteration value; pre-seed so the extract is defined
       even when the main loop runs zero times *)
    IntSet.iter
      (fun r ->
        if not (IntSet.mem r red_set) then begin
          let sty = Ir.elem_ty (Ir.reg_ty fn r) in
          match IntMap.find_opt r !last_copy_vmap with
          | Some (Ir.Reg vr) ->
              push_setup
                (Ir.Def (vr, Ir.Splat (Ir.widen vf (Ir.Scalar sty), Ir.Reg r)));
              if vf = 1 then
                push_epi (Ir.Def (r, Ir.Mov (Ir.Scalar sty, Ir.Reg vr)))
              else
                push_epi (Ir.Def (r, Ir.Extract (sty, Ir.Reg vr, vf - 1)))
          | _ -> (
              (* index-only register: restore from its scalar clone *)
              match IntMap.find_opt r !last_copy_smap with
              | Some (Ir.Reg sr) ->
                  push_setup (Ir.Def (sr, Ir.Mov (Ir.Scalar sty, Ir.Reg r)));
                  push_epi (Ir.Def (r, Ir.Mov (Ir.Scalar sty, Ir.Reg sr)))
              | _ -> ())
        end)
      defined;
    (* adjusted main-loop bound: all K lanes must satisfy the exit test *)
    let bi, bv = l.Ir.l_bound in
    let ab = Ir.fresh_reg fn (Ir.Scalar var_sty) in
    let bound_adjust =
      Ir.Def
        ( ab,
          Ir.IBin
            ( Ir.Sub, Ir.Scalar var_sty, bv,
              Ir.IConst (Int64.of_int ((k - 1) * l.Ir.l_step)) ) )
    in
    (* trip hints: exact when the original bounds are static, an expected
       value otherwise — the timing model has no way to see through the
       register-carried remainder start *)
    let orig_trip =
      match Analysis.Loopinfo.static_trip_count l with
      | Some t -> Some t
      | None -> l.Ir.l_trip_hint
    in
    let main_hint, rem_hint =
      match orig_trip with
      | Some t -> (Some (t / k), Some (t mod k))
      | None -> (None, Some (k / 2))
    in
    let main_loop =
      Ir.Loop
        {
          l with
          Ir.l_bound = (bi @ [ bound_adjust ], Ir.Reg ab);
          l_step = k * l.Ir.l_step;
          l_pragma = None;
          l_body = [ Ir.Block body_instrs ];
          l_trip_hint = main_hint;
        }
    in
    let remainder =
      Ir.Loop
        {
          l with
          Ir.l_id = l.Ir.l_id + 100000;
          l_init = ([], Ir.Reg l.Ir.l_var);
          l_pragma = None;
          l_trip_hint = rem_hint;
        }
    in
    [ Ir.Block (List.rev !setup); main_loop; Ir.Block (List.rev !epilogue);
      remainder ]
  end

(** Vectorize one loop of a function in place (by loop id). Returns [true]
    if the loop was found. *)
let vectorize_in_func (fn : Ir.func) (info : Analysis.Loopinfo.t) (p : plan) :
    bool =
  let target = info.Analysis.Loopinfo.li_loop.Ir.l_id in
  let found = ref false in
  let rec rewrite (nodes : Ir.node list) : Ir.node list =
    List.concat_map
      (fun n ->
        match n with
        | Ir.Loop l when l.Ir.l_id = target ->
            found := true;
            vectorize fn { info with Analysis.Loopinfo.li_loop = l } p
        | Ir.Loop l -> [ Ir.Loop { l with Ir.l_body = rewrite l.Ir.l_body } ]
        | Ir.If { cond; then_; else_ } ->
            [ Ir.If { cond; then_ = rewrite then_; else_ = rewrite else_ } ]
        | Ir.WhileLoop { w_cond; w_body } ->
            [ Ir.WhileLoop { w_cond; w_body = rewrite w_body } ]
        | other -> [ other ])
      nodes
  in
  fn.Ir.fn_body <- rewrite fn.Ir.fn_body;
  !found
