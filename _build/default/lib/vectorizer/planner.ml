(** The vectorization planner: runs over a module, decides each innermost
    loop's (VF, IF) — pragma first, baseline cost model otherwise — clamps
    the decision to what legality allows, and applies the transform.

    This is the "compiler" the rest of the framework drives: the RL agent
    injects pragmas into the source, lowering carries them onto loops, and
    this pass honours them the way Clang/LLVM honour
    [#pragma clang loop vectorize_width(..) interleave_count(..)]. *)

type decision = {
  d_loop_id : int;
  d_requested : Transform.plan option;  (** from pragma, if any *)
  d_applied : Transform.plan;
  d_legal : bool;
  d_reasons : string list;
}

type report = decision list

(** Decide and transform every innermost loop of a function. *)
let run_func ?(table = Costmodel.default_table) (fn : Ir.func) : report =
  let infos = Analysis.Loopinfo.innermost_infos fn in
  List.map
    (fun info ->
      let leg = Legality.of_info info in
      let l = info.Analysis.Loopinfo.li_loop in
      let requested =
        match l.Ir.l_pragma with
        | Some { Minic.Ast.vectorize_width = vw; interleave_count = ic;
                 vectorize_enable } -> (
            match vectorize_enable with
            | Some false -> Some Transform.no_vectorize
            | _ -> (
                match (vw, ic) with
                | None, None -> None
                | _ ->
                    Some
                      { Transform.vf = Option.value vw ~default:1;
                        if_ = Option.value ic ~default:1 }))
        | None -> None
      in
      let plan =
        match requested with
        | Some p ->
            let vf, if_ = Legality.clamp leg ~vf:p.Transform.vf ~if_:p.Transform.if_ in
            { Transform.vf; if_ }
        | None ->
            let p = Costmodel.choose ~table leg in
            let vf, if_ = Legality.clamp leg ~vf:p.Transform.vf ~if_:p.Transform.if_ in
            { Transform.vf; if_ }
      in
      ignore (Transform.vectorize_in_func fn info plan);
      {
        d_loop_id = l.Ir.l_id;
        d_requested = requested;
        d_applied = plan;
        d_legal = leg.Legality.can_vectorize;
        d_reasons = info.Analysis.Loopinfo.li_reasons;
      })
    infos

(** Run the planner over a whole module. *)
let run_modul ?table (m : Ir.modul) : report =
  List.concat_map (fun fn -> run_func ?table fn) m.Ir.m_funcs

(** Count of instructions in a module after planning — the compile-time
    model's input. *)
let modul_size (m : Ir.modul) : int =
  List.fold_left
    (fun acc fn -> acc + List.length (Ir.all_instrs fn.Ir.fn_body))
    0 m.Ir.m_funcs
