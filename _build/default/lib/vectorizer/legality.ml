(** Vectorization legality.

    Thin wrapper over {!Analysis.Loopinfo} clamping the requested
    vectorization factor to what the dependences allow, mirroring how
    LLVM's LoopVectorizationLegality treats a user pragma: the pragma is a
    hint, and an infeasible width is reduced (or vectorization refused)
    rather than miscompiling — "our framework cannot introduce new errors
    in the compiled code" (paper, Section 3). *)

type t = {
  info : Analysis.Loopinfo.t;
  can_vectorize : bool;
  max_vf : int;  (** largest legal VF (1 = scalar only) *)
}

let of_info (info : Analysis.Loopinfo.t) : t =
  let can = info.Analysis.Loopinfo.li_vectorizable in
  {
    info;
    can_vectorize = can;
    max_vf = (if can then info.Analysis.Loopinfo.li_max_safe_vf else 1);
  }

let analyze ?outer_vars (l : Ir.loop) : t =
  of_info (Analysis.Loopinfo.analyze ?outer_vars l)

(** Clamp a requested (vf, if) pair to legal values. Returns the pair
    actually used — the compiler "ignoring" an over-optimistic pragma. *)
let clamp (t : t) ~vf ~if_ : int * int =
  let clamp_pow2 x lo hi =
    let x = max lo (min hi x) in
    (* round down to a power of two *)
    let rec p2 acc = if acc * 2 <= x then p2 (acc * 2) else acc in
    p2 1
  in
  (* interleaving clones the body into parallel copies, so it needs the
     same legality as widening: an illegal loop stays fully scalar *)
  if not t.can_vectorize then (1, 1)
  else
    let vf = clamp_pow2 vf 1 t.max_vf in
    let if_ = clamp_pow2 if_ 1 64 in
    (vf, if_)
