(** The baseline vectorization cost model — a faithful reconstruction of the
    *kind* of model LLVM's LoopVectorizationCostModel uses, and the thing
    the paper's RL agent learns to beat.

    It is a linear, per-instruction model: each IR operation has a fixed
    table cost; the vector cost at width [VF] is the scalar cost scaled by
    the number of 128-bit chunks the operation legalizes into (LLVM's
    default pessimistic assumption when it cannot prove the wider ISA
    profitable — this is where the "cost model is too conservative"
    headroom in the paper comes from). It knows nothing about port
    pressure, latency hiding, cache behaviour, or the computation graph:
    exactly the blind spots Figure 1 of the paper demonstrates. *)

type cost_table = {
  c_int_alu : int;
  c_int_mul : int;
  c_div : int;
  c_fp_alu : int;
  c_cmp : int;
  c_select : int;
  c_cast : int;
  c_load : int;
  c_store : int;
  c_gather_per_lane : int;  (** scalarized non-unit-stride access, per lane *)
  c_mask_overhead : int;
  baseline_vector_bits : int;  (** width assumed free of penalty (SSE) *)
  max_interleave : int;
}

let default_table =
  {
    c_int_alu = 1;
    c_int_mul = 2;
    c_div = 15;
    c_fp_alu = 2;
    c_cmp = 1;
    c_select = 1;
    c_cast = 1;
    c_load = 2;
    c_store = 2;
    c_gather_per_lane = 6;
    c_mask_overhead = 2;
    baseline_vector_bits = 128;
    max_interleave = 2;
  }

(** Scalar cost of one instruction. *)
let scalar_instr_cost (t : cost_table) (i : Ir.instr) : int =
  match i with
  | Ir.Def (_, rv) -> (
      match rv with
      | Ir.IBin ((Ir.Add | Ir.Sub | Ir.And | Ir.Or | Ir.Xor | Ir.Shl | Ir.AShr), _, _, _)
        ->
          t.c_int_alu
      | Ir.IBin (Ir.Mul, _, _, _) -> t.c_int_mul
      | Ir.IBin ((Ir.SDiv | Ir.SRem), _, _, _) -> t.c_div
      | Ir.FBin (Ir.FDiv, _, _, _) -> t.c_div
      | Ir.FBin (_, _, _, _) -> t.c_fp_alu
      | Ir.ICmp _ | Ir.FCmp _ -> t.c_cmp
      | Ir.Select _ -> t.c_select
      | Ir.Cast _ -> t.c_cast
      | Ir.Load _ -> t.c_load
      | Ir.Splat _ | Ir.Extract _ | Ir.Mov _ | Ir.Stride _ -> 0
      | Ir.Reduce _ -> t.c_fp_alu * 3)
  | Ir.Store _ -> t.c_store
  | Ir.CallI _ -> 10

(** Scalar cost of one loop iteration (instructions of the body). *)
let scalar_body_cost (t : cost_table) (body : Ir.node list) : int =
  List.fold_left (fun acc i -> acc + scalar_instr_cost t i) 0 (Ir.all_instrs body)

(** Legalization factor: how many [baseline_vector_bits]-wide operations a
    [VF]-wide op on [elem] lanes splits into. *)
let split_factor (t : cost_table) ~vf (elem : Ir.scalar_ty) : int =
  let bits = vf * Ir.scalar_size elem * 8 in
  max 1 ((bits + t.baseline_vector_bits - 1) / t.baseline_vector_bits)

(** Predicted cost of one *vector* iteration (covering [vf] scalar
    iterations) for the loop described by [info]. *)
let vector_iteration_cost (t : cost_table) (info : Analysis.Loopinfo.t) ~vf :
    int =
  let l = info.Analysis.Loopinfo.li_loop in
  let predicated = info.Analysis.Loopinfo.li_if_depth > 0 in
  (* pair each load/store instruction with its analysed access, in order *)
  let accesses = ref info.Analysis.Loopinfo.li_accesses in
  let next_access () =
    match !accesses with
    | a :: rest ->
        accesses := rest;
        Some a
    | [] -> None
  in
  let cost_of (i : Ir.instr) : int =
    let mem_cost (base_cost : int) (elem : Ir.scalar_ty) =
      match next_access () with
      | Some a -> (
          match Analysis.Access.iter_stride l a with
          | Some s when abs s = 1 ->
              let c = base_cost * split_factor t ~vf elem in
              if predicated && a.Analysis.Access.acc_predicated then
                c + (t.c_mask_overhead * split_factor t ~vf elem)
              else c
          | _ ->
              (* non-unit stride: scalarized gather/scatter *)
              vf * t.c_gather_per_lane)
      | None -> base_cost * split_factor t ~vf elem
    in
    match i with
    | Ir.Def (_, Ir.Load (ty, _)) -> mem_cost t.c_load (Ir.elem_ty ty)
    | Ir.Store (ty, _, _) -> mem_cost t.c_store (Ir.elem_ty ty)
    | Ir.Def (_, rv) ->
        let elem =
          match rv with
          | Ir.IBin (_, ty, _, _) | Ir.FBin (_, ty, _, _) | Ir.ICmp (_, ty, _, _)
          | Ir.FCmp (_, ty, _, _) | Ir.Select (ty, _, _, _)
          | Ir.Cast (_, _, ty, _) | Ir.Mov (ty, _) | Ir.Splat (ty, _)
          | Ir.Load (ty, _) | Ir.Stride (ty, _, _) ->
              Ir.elem_ty ty
          | Ir.Extract (s, _, _) | Ir.Reduce (_, s, _) -> s
        in
        scalar_instr_cost t i * split_factor t ~vf elem
    | Ir.CallI _ -> 10 * vf
  in
  List.fold_left (fun acc i -> acc + cost_of i) 0 (Ir.all_instrs l.Ir.l_body)

(** Largest element type accessed in memory by the loop body, which bounds
    the baseline's maximum VF (LLVM: widest register / widest *memory*
    type — index arithmetic does not count, it stays scalar). *)
let widest_elem_bits (body : Ir.node list) : int =
  List.fold_left
    (fun acc i ->
      let of_ty ty = 8 * Ir.scalar_size (Ir.elem_ty ty) in
      match i with
      | Ir.Def (_, Ir.Load (ty, _)) -> max acc (of_ty ty)
      | Ir.Store (ty, _, _) -> max acc (of_ty ty)
      | Ir.Def _ -> acc
      | Ir.CallI _ -> max acc 64)
    8
    (Ir.all_instrs body)

(** The baseline decision: pick the VF minimizing predicted cost per scalar
    iteration, then a small interleave factor by LLVM-style heuristics. *)
let choose ?(table = default_table) (leg : Legality.t) : Transform.plan =
  let info = leg.Legality.info in
  let l = info.Analysis.Loopinfo.li_loop in
  if not leg.Legality.can_vectorize then Transform.no_vectorize
  else begin
    let max_vf_type = table.baseline_vector_bits / widest_elem_bits l.Ir.l_body in
    let max_vf = max 1 (min max_vf_type leg.Legality.max_vf) in
    let scalar_cost = scalar_body_cost table l.Ir.l_body in
    let best = ref (1, float_of_int scalar_cost) in
    let vf = ref 2 in
    while !vf <= max_vf do
      let c =
        float_of_int (vector_iteration_cost table info ~vf:!vf)
        /. float_of_int !vf
      in
      let _, best_c = !best in
      if c < best_c then best := (!vf, c);
      vf := !vf * 2
    done;
    let vf, _ = !best in
    if vf = 1 then Transform.no_vectorize
    else begin
      (* Interleave when the body is small and the trip count allows it —
         LLVM's "interleave small loops to hide latency" rule. *)
      let tc = info.Analysis.Loopinfo.li_trip_count in
      let small = scalar_cost <= 24 in
      let enough_iters =
        match tc with Some n -> n >= vf * 8 | None -> true
      in
      let if_ =
        if small && enough_iters then table.max_interleave else 1
      in
      { Transform.vf; if_ }
    end
  end
