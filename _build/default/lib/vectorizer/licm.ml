(** Loop-invariant code motion.

    Hoists pure computations whose operands are loop-invariant out of the
    loop, innermost first, iterating to a fixpoint so chains of invariant
    arithmetic (address computations like [i*N + j] under a [k] loop) all
    move. Loads are also hoisted when their address is invariant and no
    store in the loop touches the same array.

    Safety rules:
    - the hoisted definition's target must be defined exactly once in the
      loop and must not be the induction variable;
    - all operands must be defined outside the loop (or by already-hoisted
      definitions);
    - hoisting runs only on loops with a statically positive trip count,
      so a zero-trip loop cannot observe a speculated definition.

    Without this pass every iteration recomputes full linearized addresses
    and the machine model sees loop bodies as compute-bound — hiding the
    memory effects that make tiling and wide vectors matter. This is the
    moral equivalent of running -licm before the vectorizer in LLVM. *)

module IntSet = Set.Make (Int)

let value_regs (v : Ir.value) = match v with Ir.Reg r -> [ r ] | _ -> []

let rvalue_regs = Transform.rvalue_operand_regs

let pure_rvalue (rv : Ir.rvalue) : bool =
  match rv with
  | Ir.IBin _ | Ir.FBin _ | Ir.ICmp _ | Ir.FCmp _ | Ir.Select _ | Ir.Cast _
  | Ir.Splat _ | Ir.Extract _ | Ir.Mov _ | Ir.Stride _ | Ir.Reduce _ ->
      true
  | Ir.Load _ -> false

(** Defs per register and stored bases in a body. *)
let body_facts (body : Ir.node list) =
  let instrs = Ir.all_instrs body in
  let def_count = Hashtbl.create 16 in
  let stored = Hashtbl.create 8 in
  List.iter
    (fun i ->
      match i with
      | Ir.Def (r, _) | Ir.CallI (Some r, _, _) ->
          Hashtbl.replace def_count r
            (1 + Option.value (Hashtbl.find_opt def_count r) ~default:0)
      | Ir.Store (_, m, _) -> Hashtbl.replace stored m.Ir.base ()
      | Ir.CallI (None, _, _) -> ())
    instrs;
  (def_count, stored)

(** Hoist invariants out of one loop (body already LICM'd recursively).
    Returns (hoisted instrs, new body). Only instructions at Block level
    are moved (not under Ifs — conditional work stays conditional). *)
let hoist_loop (l : Ir.loop) : Ir.instr list * Ir.node list =
  let trip_known_positive =
    match Analysis.Loopinfo.static_trip_count l with
    | Some t -> t >= 1
    | None -> (
        (* tiled point loops carry a positive hint and provably run *)
        match l.Ir.l_trip_hint with Some t -> t >= 1 | None -> false)
  in
  match trip_known_positive with
  | true ->
      let def_count, stored = body_facts l.Ir.l_body in
      (* registers considered variant: defined in the loop and not (yet)
         hoisted, plus the induction variable *)
      let variant = ref (IntSet.singleton l.Ir.l_var) in
      Hashtbl.iter (fun r _ -> variant := IntSet.add r !variant) def_count;
      (* nested loop induction variables are variant too *)
      Ir.iter_loops (fun il -> variant := IntSet.add il.Ir.l_var !variant)
        l.Ir.l_body;
      let hoisted = ref [] in
      let changed = ref true in
      let invariant_value v =
        List.for_all (fun r -> not (IntSet.mem r !variant)) (value_regs v)
      in
      let hoistable (i : Ir.instr) : bool =
        match i with
        | Ir.Def (r, rv) ->
            Hashtbl.find_opt def_count r = Some 1
            && (let idx_ops, data_ops = rvalue_regs rv in
                List.for_all (fun o -> not (IntSet.mem o !variant)) (idx_ops @ data_ops))
            && (pure_rvalue rv
               ||
               match rv with
               | Ir.Load (_, m) ->
                   (not (Hashtbl.mem stored m.Ir.base))
                   && invariant_value m.Ir.index
                   && (match m.Ir.mask with
                      | None -> true
                      | Some mv -> invariant_value mv)
               | _ -> false)
        | _ -> false
      in
      let scan_nodes nodes =
        List.map
          (fun n ->
            match n with
            | Ir.Block is ->
                let keep =
                  List.filter
                    (fun i ->
                      if hoistable i then begin
                        (match i with
                        | Ir.Def (r, _) -> variant := IntSet.remove r !variant
                        | _ -> ());
                        hoisted := i :: !hoisted;
                        changed := true;
                        false
                      end
                      else true)
                    is
                in
                Ir.Block keep
            | other -> other)
          nodes
      in
      let body = ref l.Ir.l_body in
      while !changed do
        changed := false;
        body := scan_nodes !body
      done;
      (List.rev !hoisted, !body)
  | false -> ([], l.Ir.l_body)



(* ------------------------------------------------------------------ *)
(* Scalar promotion (register promotion of invariant-address accesses)  *)
(* ------------------------------------------------------------------ *)

(** Substitute register [from_] with [to_] in all values of a node list. *)
let subst_uses ~(from_ : Ir.reg) ~(to_ : Ir.reg) (nodes : Ir.node list) :
    Ir.node list =
  let v = function Ir.Reg r when r = from_ -> Ir.Reg to_ | x -> x in
  let mref m =
    { m with Ir.index = v m.Ir.index; mask = Option.map v m.Ir.mask }
  in
  let rvalue rv =
    match rv with
    | Ir.IBin (op, ty, a, b) -> Ir.IBin (op, ty, v a, v b)
    | Ir.FBin (op, ty, a, b) -> Ir.FBin (op, ty, v a, v b)
    | Ir.ICmp (op, ty, a, b) -> Ir.ICmp (op, ty, v a, v b)
    | Ir.FCmp (op, ty, a, b) -> Ir.FCmp (op, ty, v a, v b)
    | Ir.Select (ty, c, a, b) -> Ir.Select (ty, v c, v a, v b)
    | Ir.Cast (k, f, t, x) -> Ir.Cast (k, f, t, v x)
    | Ir.Load (ty, m) -> Ir.Load (ty, mref m)
    | Ir.Splat (ty, x) -> Ir.Splat (ty, v x)
    | Ir.Extract (st, x, l) -> Ir.Extract (st, v x, l)
    | Ir.Reduce (o, st, x) -> Ir.Reduce (o, st, v x)
    | Ir.Mov (ty, x) -> Ir.Mov (ty, v x)
    | Ir.Stride (ty, x, st) -> Ir.Stride (ty, v x, st)
  in
  let instr i =
    match i with
    | Ir.Def (r, rv) -> Ir.Def (r, rvalue rv)
    | Ir.Store (ty, m, x) -> Ir.Store (ty, mref m, v x)
    | Ir.CallI (r, f, args) -> Ir.CallI (r, f, List.map v args)
  in
  let code (is, x) = (List.map instr is, v x) in
  let rec node n =
    match n with
    | Ir.Block is -> Ir.Block (List.map instr is)
    | Ir.If { cond; then_; else_ } ->
        Ir.If { cond = code cond; then_ = List.map node then_;
                else_ = List.map node else_ }
    | Ir.Loop l ->
        Ir.Loop { l with Ir.l_init = code l.Ir.l_init;
                  l_bound = code l.Ir.l_bound;
                  l_body = List.map node l.Ir.l_body }
    | Ir.WhileLoop { w_cond; w_body } ->
        Ir.WhileLoop { w_cond = code w_cond; w_body = List.map node w_body }
    | Ir.Return (Some c) -> Ir.Return (Some (code c))
    | other -> other
  in
  List.map node nodes

(** Promote loads/stores of a loop-invariant address to a register:
    [C[i][j] += ...] in a [k]-innermost nest becomes a register reduction
    the vectorizer can handle — LLVM's LICM store promotion. Conditions:
    the address value is syntactically invariant, every access to the base
    inside the loop uses that same address, none of them is masked or
    inside an [If], and the loop provably runs (the store-back is
    unconditional). *)
let promote_loop (fn : Ir.func) (l : Ir.loop) :
    (Ir.instr list * Ir.loop * Ir.instr list) option =
  let trip_positive =
    match Analysis.Loopinfo.static_trip_count l with
    | Some t -> t >= 1
    | None -> (
        match l.Ir.l_trip_hint with Some t -> t >= 1 | None -> false)
  in
  if not trip_positive then None
  else begin
    let defined = Analysis.Scev.defined_regs l.Ir.l_body in
    let invariant_value = function
      | Ir.IConst _ -> true
      | Ir.Reg r -> not (Analysis.Scev.IntMap.mem r defined) && r <> l.Ir.l_var
      | Ir.FConst _ -> false
    in
    (* collect (base -> accesses) at Block level and whether any access to
       the base is predicated / inside an If / non-scalar *)
    let top_accesses = Hashtbl.create 4 in
    let disqualified = Hashtbl.create 4 in
    let rec scan ~under_if nodes =
      List.iter
        (fun n ->
          match n with
          | Ir.Block is ->
              List.iter
                (fun i ->
                  match i with
                  | Ir.Def (_, Ir.Load (ty, m)) | Ir.Store (ty, m, _) ->
                      if under_if || m.Ir.mask <> None
                         || (match ty with Ir.Vec _ -> true | _ -> false)
                      then Hashtbl.replace disqualified m.Ir.base ()
                      else
                        Hashtbl.replace top_accesses m.Ir.base
                          ((ty, m)
                           :: Option.value
                                (Hashtbl.find_opt top_accesses m.Ir.base)
                                ~default:[])
                  | _ -> ())
                is
          | Ir.If { then_; else_; _ } ->
              scan ~under_if:true then_;
              scan ~under_if:true else_
          | Ir.Loop il -> scan ~under_if il.Ir.l_body
          | Ir.WhileLoop { w_body; _ } -> scan ~under_if:true w_body
          | _ -> ())
        nodes
    in
    scan ~under_if:false l.Ir.l_body;
    (* candidates: all accesses to the base share one invariant address,
       and at least one is a store (otherwise plain load hoisting covers it) *)
    let candidate =
      Hashtbl.fold
        (fun base accs acc ->
          match acc with
          | Some _ -> acc
          | None ->
              if Hashtbl.mem disqualified base then None
              else begin
                let idx0 = (snd (List.hd accs)).Ir.index in
                let same_addr =
                  List.for_all (fun (_, m) -> m.Ir.index = idx0) accs
                in
                let has_store =
                  (* stores were recorded indistinguishably; re-scan *)
                  List.exists
                    (fun i ->
                      match i with
                      | Ir.Store (_, m, _) -> m.Ir.base = base
                      | _ -> false)
                    (Ir.all_instrs l.Ir.l_body)
                in
                if same_addr && invariant_value idx0 && has_store then
                  Some (base, fst (List.hd accs), idx0)
                else None
              end)
        top_accesses None
    in
    match candidate with
    | None -> None
    | Some (base, ty, idx) ->
        let sty = Ir.elem_ty ty in
        let p = Ir.fresh_reg fn (Ir.Scalar sty) in
        let mref = { Ir.base; index = idx; stride = 1; mask = None } in
        (* phase 1: targets of loads from the promoted address *)
        let load_targets =
          List.filter_map
            (fun i ->
              match i with
              | Ir.Def (r, Ir.Load (_, m)) when m.Ir.base = base -> Some r
              | _ -> None)
            (Ir.all_instrs l.Ir.l_body)
        in
        (* phase 2: drop the loads, turn stores into register updates *)
        let rewrite_block is =
          List.filter_map
            (fun i ->
              match i with
              | Ir.Def (_, Ir.Load (_, m)) when m.Ir.base = base -> None
              | Ir.Store (_, m, v) when m.Ir.base = base ->
                  Some (Ir.Def (p, Ir.Mov (Ir.Scalar sty, v)))
              | other -> Some other)
            is
        in
        let body =
          List.map
            (fun n ->
              match n with
              | Ir.Block is -> Ir.Block (rewrite_block is)
              | other -> other)
            l.Ir.l_body
        in
        (* phase 3: every former load result now reads the register *)
        let body =
          List.fold_left
            (fun b r -> subst_uses ~from_:r ~to_:p b)
            body load_targets
        in
        let pre = [ Ir.Def (p, Ir.Load (Ir.Scalar sty, mref)) ] in
        let post = [ Ir.Store (Ir.Scalar sty, mref, Ir.Reg p) ] in
        Some (pre, { l with Ir.l_body = body }, post)
  end

(** Run LICM (hoisting + repeated scalar promotion) over a function,
    innermost loops first. Returns the number of moved instructions. *)
let run_func (fn : Ir.func) : int =
  let moved = ref 0 in
  let rec rewrite nodes =
    List.concat_map
      (fun n ->
        match n with
        | Ir.Loop l ->
            let l = { l with Ir.l_body = rewrite l.Ir.l_body } in
            let hoisted, body = hoist_loop l in
            moved := !moved + List.length hoisted;
            let l = { l with Ir.l_body = body } in
            (* promote as many invariant-address bases as qualify *)
            let pre_acc = ref [] and post_acc = ref [] in
            let l = ref l in
            let continue = ref true in
            while !continue do
              match promote_loop fn !l with
              | Some (pre, l', post) ->
                  moved := !moved + 2;
                  pre_acc := !pre_acc @ pre;
                  post_acc := post @ !post_acc;
                  l := l'
              | None -> continue := false
            done;
            let nodes = [ Ir.Loop !l ] in
            let nodes =
              if !pre_acc = [] then nodes else Ir.Block !pre_acc :: nodes
            in
            let nodes =
              if !post_acc = [] then nodes else nodes @ [ Ir.Block !post_acc ]
            in
            if hoisted = [] then nodes else Ir.Block hoisted :: nodes
        | Ir.If { cond; then_; else_ } ->
            [ Ir.If { cond; then_ = rewrite then_; else_ = rewrite else_ } ]
        | Ir.WhileLoop { w_cond; w_body } ->
            [ Ir.WhileLoop { w_cond; w_body = rewrite w_body } ]
        | other -> [ other ])
      nodes
  in
  fn.Ir.fn_body <- rewrite fn.Ir.fn_body;
  !moved

let run_modul (m : Ir.modul) : int =
  List.fold_left (fun acc fn -> acc + run_func fn) 0 m.Ir.m_funcs
