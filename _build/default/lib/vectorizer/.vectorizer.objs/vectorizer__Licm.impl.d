lib/vectorizer/licm.ml: Analysis Hashtbl Int Ir List Option Set Transform
