lib/vectorizer/cse.ml: Hashtbl Ir List Option
