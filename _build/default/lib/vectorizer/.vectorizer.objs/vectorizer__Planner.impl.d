lib/vectorizer/planner.ml: Analysis Costmodel Ir Legality List Minic Option Transform
