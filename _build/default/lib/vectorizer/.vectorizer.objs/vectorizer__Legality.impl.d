lib/vectorizer/legality.ml: Analysis Ir
