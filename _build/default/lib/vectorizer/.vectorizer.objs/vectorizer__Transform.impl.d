lib/vectorizer/transform.ml: Analysis Array Hashtbl Int Int64 Ir List Map Set
