lib/vectorizer/costmodel.ml: Analysis Ir Legality List Transform
