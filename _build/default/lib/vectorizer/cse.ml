(** Common-subexpression elimination for pure definitions.

    Within each basic block, identical pure rvalues computed into
    single-assignment registers are deduplicated, and uses of the duplicate
    register are rewritten to the representative function-wide. Lowering
    emits a fresh address computation for every syntactic array access, so
    the load and store of [C[i][j] += ...] address through different
    registers; after LICM hoists both computations into the same preheader
    block, this pass makes them literally identical — which is what lets
    {!Licm.promote_loop}'s syntactic address check fire, exactly like
    EarlyCSE enabling LICM store promotion in LLVM. *)

let pure (rv : Ir.rvalue) : bool =
  match rv with
  | Ir.IBin _ | Ir.FBin _ | Ir.ICmp _ | Ir.FCmp _ | Ir.Select _ | Ir.Cast _
  | Ir.Splat _ | Ir.Extract _ | Ir.Stride _ ->
      true
  | Ir.Load _ | Ir.Mov _ | Ir.Reduce _ -> false

let def_counts (fn : Ir.func) : (Ir.reg, int) Hashtbl.t =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun i ->
      match i with
      | Ir.Def (r, _) | Ir.CallI (Some r, _, _) ->
          Hashtbl.replace counts r
            (1 + Option.value (Hashtbl.find_opt counts r) ~default:0)
      | _ -> ())
    (Ir.all_instrs fn.Ir.fn_body);
  counts

let run_func (fn : Ir.func) : int =
  let counts = def_counts fn in
  let single r = Hashtbl.find_opt counts r = Some 1 in
  let subst : (Ir.reg, Ir.value) Hashtbl.t = Hashtbl.create 32 in
  let removed = ref 0 in
  let sv (v : Ir.value) : Ir.value =
    match v with
    | Ir.Reg r -> (
        match Hashtbl.find_opt subst r with Some v' -> v' | None -> v)
    | _ -> v
  in
  let smref m =
    { m with Ir.index = sv m.Ir.index; mask = Option.map sv m.Ir.mask }
  in
  let srv rv =
    match rv with
    | Ir.IBin (op, ty, a, b) -> Ir.IBin (op, ty, sv a, sv b)
    | Ir.FBin (op, ty, a, b) -> Ir.FBin (op, ty, sv a, sv b)
    | Ir.ICmp (op, ty, a, b) -> Ir.ICmp (op, ty, sv a, sv b)
    | Ir.FCmp (op, ty, a, b) -> Ir.FCmp (op, ty, sv a, sv b)
    | Ir.Select (ty, c, a, b) -> Ir.Select (ty, sv c, sv a, sv b)
    | Ir.Cast (k, f, t, x) -> Ir.Cast (k, f, t, sv x)
    | Ir.Load (ty, m) -> Ir.Load (ty, smref m)
    | Ir.Splat (ty, x) -> Ir.Splat (ty, sv x)
    | Ir.Extract (st, x, l) -> Ir.Extract (st, sv x, l)
    | Ir.Reduce (o, st, x) -> Ir.Reduce (o, st, sv x)
    | Ir.Mov (ty, x) -> Ir.Mov (ty, sv x)
    | Ir.Stride (ty, x, st) -> Ir.Stride (ty, sv x, st)
  in
  let sinstr i =
    match i with
    | Ir.Def (r, rv) -> Ir.Def (r, srv rv)
    | Ir.Store (ty, m, x) -> Ir.Store (ty, smref m, sv x)
    | Ir.CallI (r, f, args) -> Ir.CallI (r, f, List.map sv args)
  in
  let block (is : Ir.instr list) : Ir.instr list =
    let available : (Ir.rvalue, Ir.reg) Hashtbl.t = Hashtbl.create 16 in
    List.filter_map
      (fun i ->
        let i = sinstr i in
        match i with
        | Ir.Def (r, rv) when pure rv && single r -> (
            match Hashtbl.find_opt available rv with
            | Some rep when single rep ->
                Hashtbl.replace subst r (Ir.Reg rep);
                incr removed;
                None
            | _ ->
                Hashtbl.replace available rv r;
                Some i)
        | _ -> Some i)
      is
  in
  let scode (is, v) = (block is, sv v) in
  let rec node n =
    match n with
    | Ir.Block is -> Ir.Block (block is)
    | Ir.If { cond; then_; else_ } ->
        let cond = scode cond in
        Ir.If { cond; then_ = List.map node then_; else_ = List.map node else_ }
    | Ir.Loop l ->
        let l_init = scode l.Ir.l_init in
        let l_bound = scode l.Ir.l_bound in
        Ir.Loop
          { l with Ir.l_init; l_bound; l_body = List.map node l.Ir.l_body }
    | Ir.WhileLoop { w_cond; w_body } ->
        Ir.WhileLoop { w_cond = scode w_cond; w_body = List.map node w_body }
    | Ir.Return (Some c) -> Ir.Return (Some (scode c))
    | other -> other
  in
  fn.Ir.fn_body <- List.map node fn.Ir.fn_body;
  !removed

let run_modul (m : Ir.modul) : int =
  List.fold_left (fun acc fn -> acc + run_func fn) 0 m.Ir.m_funcs
