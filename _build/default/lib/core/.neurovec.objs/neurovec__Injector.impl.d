lib/core/injector.ml: Extractor List Minic Option
