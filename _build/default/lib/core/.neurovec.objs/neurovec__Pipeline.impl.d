lib/core/pipeline.ml: Dataset Injector Ir Ir_lower List Machine Minic Polly Printf Vectorizer
