lib/core/framework.ml: Array Dataset Embedding Extractor Injector List Minic Nn Pipeline Reward Rl
