lib/core/reward.ml: Array Dataset Hashtbl List Pipeline Rl
