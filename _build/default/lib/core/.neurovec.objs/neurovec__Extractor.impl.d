lib/core/extractor.ml: List Minic
