(** The compile-and-measure pipeline ("clang/LLVM + the testbed" of
    Figure 3): parse, check, lower, optionally run Polly, run the loop
    vectorizer (pragmas first, baseline cost model otherwise), clean up
    with LICM, then price compile time and simulate execution time on the
    target machine. *)

type options = {
  target : Machine.Target.t;
  polly : bool;
  compile_model : Machine.Compile.t;
}

let default_options =
  { target = Machine.Target.skylake_avx2; polly = false;
    compile_model = Machine.Compile.default }

type result = {
  modul : Ir.modul;
  decisions : Vectorizer.Planner.report;
  compile_seconds : float;
  exec_seconds : float;
  exec_cycles : float;
}

exception Compile_error of string

let find_kernel (m : Ir.modul) (name : string) : Ir.func =
  match List.find_opt (fun f -> f.Ir.fn_name = name) m.Ir.m_funcs with
  | Some f -> f
  | None -> raise (Compile_error (Printf.sprintf "kernel %s not found" name))

(** Compile and simulate one program. *)
let run ?(options = default_options) (p : Dataset.Program.t) : result =
  let prog =
    try Minic.Parser.parse_string p.Dataset.Program.p_source
    with Minic.Parser.Error (msg, pos) ->
      raise
        (Compile_error
           (Printf.sprintf "%s: parse error at %d:%d: %s"
              p.Dataset.Program.p_name pos.Minic.Token.line pos.Minic.Token.col
              msg))
  in
  (try ignore (Minic.Sema.analyze ~bindings:p.Dataset.Program.p_bindings prog)
   with Minic.Sema.Error msg ->
     raise
       (Compile_error (Printf.sprintf "%s: %s" p.Dataset.Program.p_name msg)));
  let m =
    try
      Ir_lower.lower_program ~bindings:p.Dataset.Program.p_bindings prog
    with Ir_lower.Error msg ->
      raise
        (Compile_error (Printf.sprintf "%s: %s" p.Dataset.Program.p_name msg))
  in
  if options.polly then ignore (Polly.Driver.optimize m);
  (* LICM + scalar promotion first (as -licm before the vectorizer in
     LLVM): promotes memory reductions to register reductions the
     vectorizer can widen, and exposes invariant address arithmetic *)
  ignore (Vectorizer.Licm.run_modul m);
  ignore (Vectorizer.Cse.run_modul m);
  ignore (Vectorizer.Licm.run_modul m);
  let decisions = Vectorizer.Planner.run_modul m in
  ignore (Vectorizer.Licm.run_modul m);
  let compile_seconds =
    Machine.Compile.seconds ~model:options.compile_model m
  in
  let kernel = find_kernel m p.Dataset.Program.p_kernel in
  let exec_cycles = Machine.Timing.cycles options.target m kernel in
  let exec_seconds =
    exec_cycles /. (options.target.Machine.Target.ghz *. 1e9)
  in
  { modul = m; decisions; compile_seconds; exec_seconds; exec_cycles }

(** Compile with a specific (vf, if) pragma on every innermost loop. *)
let run_with_pragma ?(options = default_options) (p : Dataset.Program.t) ~vf
    ~if_ : result =
  let source = Injector.inject_all p.Dataset.Program.p_source ~vf ~if_ in
  run ~options { p with Dataset.Program.p_source = source }

(** Compile with the baseline cost model only (existing pragmas removed). *)
let run_baseline ?(options = default_options) (p : Dataset.Program.t) : result =
  let prog = Minic.Parser.parse_string p.Dataset.Program.p_source in
  let stripped =
    Minic.Pretty.program_to_string
      (Injector.inject_ast ~clear_others:true prog ~decisions:[])
  in
  run ~options { p with Dataset.Program.p_source = stripped }

(** Compile with per-loop pragma decisions. *)
let run_with_decisions ?(options = default_options) (p : Dataset.Program.t)
    ~(decisions : (int * Minic.Ast.loop_pragma) list) : result =
  let source =
    Injector.inject_source ~clear_others:true p.Dataset.Program.p_source
      ~decisions
  in
  run ~options { p with Dataset.Program.p_source = source }
