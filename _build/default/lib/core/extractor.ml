(** The automatic loop extractor (Figure 3, first stage).

    Reads program text, finds every innermost [for] loop, and pairs it with
    the statement fed to the code-embedding generator. Per the paper's
    Section 3.3 ablation, for nested loops the embedding input is the body
    of the *outermost* enclosing loop (which contains the inner bodies),
    not the innermost loop alone. *)

type loop_site = {
  ordinal : int;  (** index among innermost for-loops, in source order *)
  innermost : Minic.Ast.for_loop;
  context : Minic.Ast.stmt;  (** outermost enclosing loop (embedding input) *)
}

let rec has_inner_for (s : Minic.Ast.stmt) : bool =
  match s with
  | Minic.Ast.For _ -> true
  | Minic.Ast.Block ss -> List.exists has_inner_for ss
  | Minic.Ast.If (_, t, f) ->
      has_inner_for t
      || (match f with Some f -> has_inner_for f | None -> false)
  | Minic.Ast.While { Minic.Ast.w_body; _ } -> has_inner_for w_body
  | _ -> false

(** Innermost for-loops of a statement, each with the outermost for that
    contains it. *)
let rec sites_of_stmt ?(outer : Minic.Ast.stmt option) (s : Minic.Ast.stmt) :
    (Minic.Ast.for_loop * Minic.Ast.stmt) list =
  match s with
  | Minic.Ast.For f ->
      let this_outer = match outer with Some o -> o | None -> s in
      if has_inner_for f.Minic.Ast.body then
        sites_of_stmt ~outer:this_outer f.Minic.Ast.body
      else [ (f, this_outer) ]
  | Minic.Ast.Block ss -> List.concat_map (sites_of_stmt ?outer) ss
  | Minic.Ast.If (_, t, fo) ->
      sites_of_stmt ?outer t
      @ (match fo with Some f -> sites_of_stmt ?outer f | None -> [])
  | Minic.Ast.While { Minic.Ast.w_body; _ } ->
      (* loops under a while keep the while out of the context: the
         vectorizer cannot touch the while anyway *)
      sites_of_stmt ?outer w_body
  | _ -> []

(** Extract all loop sites of a program, in source order. *)
let extract (prog : Minic.Ast.program) : loop_site list =
  let sites =
    List.concat_map
      (function
        | Minic.Ast.Func f ->
            List.concat_map (fun s -> sites_of_stmt s) f.Minic.Ast.f_body
        | Minic.Ast.Global _ -> [])
      prog
  in
  List.mapi
    (fun i (innermost, context) -> { ordinal = i; innermost; context })
    sites

let extract_source (source : string) : loop_site list =
  extract (Minic.Parser.parse_string source)

(** The embedding input for a whole program: the first loop's context, or
    the first function body when the program has no loops. *)
let embedding_stmt (prog : Minic.Ast.program) : Minic.Ast.stmt =
  match extract prog with
  | { context; _ } :: _ -> context
  | [] -> (
      match
        List.find_map
          (function Minic.Ast.Func f -> Some f | _ -> None)
          prog
      with
      | Some f -> Minic.Ast.Block f.Minic.Ast.f_body
      | None -> Minic.Ast.Empty)
