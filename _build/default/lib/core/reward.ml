(** The reward oracle (paper Section 3.3-3.4).

    reward = (t_baseline - t_action) / t_baseline, so positive means
    "faster than the LLVM baseline cost model's choice"; an action whose
    compile time exceeds 10x the baseline compile time short-circuits to
    the penalty reward -9 (equivalent to 10x the baseline execution time),
    teaching the agent not to over-vectorize.

    All (program, action) evaluations are memoized: the environment is
    deterministic, and both RL training and the brute-force/NNS/decision
    tree baselines draw from the same table — mirroring how the paper
    reuses its brute-force measurements as supervised labels. *)

type t = {
  programs : Dataset.Program.t array;
  options : Pipeline.options;
  timeout_factor : float;
  penalty : float;
  baselines : (int, float * float) Hashtbl.t;
      (** program -> (exec seconds, compile seconds) *)
  cache : (int * int * int, float) Hashtbl.t;
      (** (program, vf_idx, if_idx) -> reward *)
  mutable evaluations : int;  (** non-memoized compile+run count *)
}

let create ?(options = Pipeline.default_options) ?(timeout_factor = 10.0)
    ?(penalty = -9.0) (programs : Dataset.Program.t array) : t =
  { programs; options; timeout_factor; penalty;
    baselines = Hashtbl.create (Array.length programs);
    cache = Hashtbl.create (4 * Array.length programs);
    evaluations = 0 }

let baseline (t : t) (idx : int) : float * float =
  match Hashtbl.find_opt t.baselines idx with
  | Some b -> b
  | None ->
      let r = Pipeline.run_baseline ~options:t.options t.programs.(idx) in
      t.evaluations <- t.evaluations + 1;
      let b = (r.Pipeline.exec_seconds, r.Pipeline.compile_seconds) in
      Hashtbl.replace t.baselines idx b;
      b

(** Reward of applying [action] to every innermost loop of program [idx]. *)
let reward (t : t) (idx : int) (action : Rl.Spaces.action) : float =
  let key = (idx, action.Rl.Spaces.vf_idx, action.Rl.Spaces.if_idx) in
  match Hashtbl.find_opt t.cache key with
  | Some r -> r
  | None ->
      let t_base, c_base = baseline t idx in
      let res =
        Pipeline.run_with_pragma ~options:t.options t.programs.(idx)
          ~vf:(Rl.Spaces.vf_of action) ~if_:(Rl.Spaces.if_of action)
      in
      t.evaluations <- t.evaluations + 1;
      let r =
        if res.Pipeline.compile_seconds > t.timeout_factor *. c_base then
          t.penalty
        else (t_base -. res.Pipeline.exec_seconds) /. t_base
      in
      Hashtbl.replace t.cache key r;
      r

(** Execution time under [action] (seconds); penalized actions return the
    baseline time scaled by the timeout factor. *)
let exec_seconds (t : t) (idx : int) (action : Rl.Spaces.action) : float =
  let t_base, _ = baseline t idx in
  let r = reward t idx action in
  if r <= t.penalty then t.timeout_factor *. t_base
  else t_base *. (1.0 -. r)

(** Best action and reward by exhaustive search (35 compilations, memoized). *)
let brute_force (t : t) (idx : int) : Rl.Spaces.action * float =
  List.fold_left
    (fun (best_a, best_r) a ->
      let r = reward t idx a in
      if r > best_r then (a, r) else (best_a, best_r))
    ({ Rl.Spaces.vf_idx = 0; if_idx = 0 },
     reward t idx { Rl.Spaces.vf_idx = 0; if_idx = 0 })
    Rl.Spaces.all_actions
