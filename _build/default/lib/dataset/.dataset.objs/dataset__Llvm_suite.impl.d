lib/dataset/llvm_suite.ml: Program
