lib/dataset/loopgen.ml: Array List Nn Printf Program String
