lib/dataset/mibench.ml: Program
