lib/dataset/polybench.ml: Printf Program
