lib/dataset/program.ml:
