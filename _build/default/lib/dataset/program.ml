(** A benchmark program: C source plus the metadata the framework needs to
    compile and time it. *)

type t = {
  p_name : string;
  p_source : string;
  p_kernel : string;  (** function whose execution time is measured *)
  p_bindings : (string * int) list;  (** values for symbolic constants *)
  p_family : string;  (** generator family / suite name *)
}

let make ?(kernel = "kernel") ?(bindings = []) ~family name source =
  { p_name = name; p_source = source; p_kernel = kernel;
    p_bindings = bindings; p_family = family }
