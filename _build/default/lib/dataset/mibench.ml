(** MiBench-like embedded benchmarks (Figure 9's transfer suite): programs
    where loops are a *minor* fraction of the runtime — control-heavy
    scalar code, recurrences, while loops and data-dependent branches
    dominate, so vectorization gains are bounded (~1.1x in the paper).

    Each program mixes non-vectorizable work (CRC-style feedback, sorting
    passes, state machines) with one or two modest vectorizable loops. *)

let k name src = Program.make ~family:"mibench" name src

let programs : Program.t array =
  [|
    (* telecomm/CRC32-like: bit-serial feedback, inherently sequential *)
    k "crc_like"
      "int data[4096]; int table[256]; int out[256];\n\
       int kernel() {\n\
      \  int crc = -1;\n\
      \  int i;\n\
      \  int b;\n\
      \  for (i = 0; i < 4096; i++) {\n\
      \    int x = data[i];\n\
      \    for (b = 0; b < 8; b++) {\n\
      \      int bit = (crc ^ x) & 1;\n\
      \      crc = (crc >> 1) ^ (bit ? 79764919 : 0);\n\
      \      x = x >> 1;\n\
      \    }\n\
      \  }\n\
      \  int j;\n\
      \  for (j = 0; j < 256; j++) out[j] = table[j] ^ crc;\n\
      \  return out[128] + crc;\n\
       }\n";
    (* automotive/susan-like: thresholding image pass + serial smoothing *)
    k "susan_like"
      "int img[64][64]; int edge[64][64]; int hist[256];\n\
       int kernel() {\n\
      \  int i;\n\
      \  int j;\n\
      \  int acc = 0;\n\
      \  for (i = 1; i < 63; i++) {\n\
      \    int carry = 0;\n\
      \    for (j = 1; j < 63; j++) {\n\
      \      int v = img[i][j];\n\
      \      carry = (carry + v) / 2;\n\
      \      if (carry > 100) { acc += 1; }\n\
      \      hist[v & 255] = hist[v & 255] + 1;\n\
      \    }\n\
      \  }\n\
      \  for (i = 0; i < 63; i++) {\n\
      \    for (j = 0; j < 64; j++) edge[i][j] = img[i][j] - img[i+1][j];\n\
      \  }\n\
      \  return acc + edge[10][10] + hist[40];\n\
       }\n";
    (* office/stringsearch-like: byte scanning with early exits *)
    k "search_like"
      "char text[8192]; char pat[16]; int hits[64];\n\
       int kernel() {\n\
      \  int count = 0;\n\
      \  int i = 0;\n\
      \  while (i < 8000) {\n\
      \    int j = 0;\n\
      \    while (j < 8 && text[i + j] == pat[j]) j++;\n\
      \    if (j == 8) count++;\n\
      \    i++;\n\
      \  }\n\
      \  int t;\n\
      \  for (t = 0; t < 64; t++) hits[t] = count + t;\n\
      \  return hits[32];\n\
       }\n";
    (* network/dijkstra-like: pointer-chasing relaxation, data dependent *)
    k "dijkstra_like"
      "int dist[512]; int adj[512]; int visited[512]; int order[512];\n\
       int kernel() {\n\
      \  int round;\n\
      \  int i;\n\
      \  for (round = 0; round < 64; round++) {\n\
      \    int best = 2147483647;\n\
      \    int besti = 0;\n\
      \    for (i = 0; i < 512; i++) {\n\
      \      if (!visited[i] && dist[i] < best) { best = dist[i]; besti = i; }\n\
      \    }\n\
      \    visited[besti] = 1;\n\
      \    order[round] = besti;\n\
      \    for (i = 0; i < 512; i++) {\n\
      \      int cand = best + adj[i];\n\
      \      if (cand < dist[i]) dist[i] = cand;\n\
      \    }\n\
      \  }\n\
      \  return order[63] + dist[100];\n\
       }\n";
    (* security/sha-like: serial chaining with a small message-expansion loop *)
    k "sha_like"
      "int w[80]; int msg[64]; int digest[5];\n\
       int kernel() {\n\
      \  int t;\n\
      \  int round;\n\
      \  int a = 1732584193;\n\
      \  int b = -271733879;\n\
      \  int c = -1732584194;\n\
      \  for (round = 0; round < 32; round++) {\n\
      \    for (t = 0; t < 64; t++) w[t] = msg[t] ^ (t * 40503);\n\
      \    for (t = 64; t < 80; t++) w[t] = w[t-3] ^ w[t-8] ^ w[t-14] ^ w[t-16];\n\
      \    for (t = 0; t < 80; t++) {\n\
      \      int f = (b & c) | (~b & a);\n\
      \      int tmp = (a << 5) + f + w[t];\n\
      \      c = b; b = a; a = tmp;\n\
      \    }\n\
      \  }\n\
      \  digest[0] = a; digest[1] = b; digest[2] = c;\n\
      \  return digest[0] + digest[1];\n\
       }\n";
    (* consumer/jpeg-like: zigzag + quantization (vectorizable) around a
       serial DC-predictor *)
    k "jpeg_like"
      "int block[4096]; int quant[4096]; int zig[4096]; int dc[64];\n\
       int kernel() {\n\
      \  int i;\n\
      \  int blk;\n\
      \  int pred = 0;\n\
      \  for (blk = 0; blk < 64; blk++) {\n\
      \    pred = (pred * 3 + block[blk * 64]) / 4;\n\
      \    dc[blk] = pred;\n\
      \  }\n\
      \  for (i = 0; i < 4096; i++) zig[i] = block[i] / (quant[i] | 1);\n\
      \  return zig[2048] + dc[63];\n\
       }\n";
  |]
