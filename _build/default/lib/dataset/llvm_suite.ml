(** Kernels modelled on the LLVM vectorizer test suite
    (SingleSource/UnitTests/Vectorizer) — the programs Figure 2 runs
    brute-force search on to show the baseline cost model's headroom.

    Each kernel stresses one aspect of the cost model: conversions,
    predicates, strides, reductions, unknown bounds, misalignment,
    multidimensional arrays, mixed types. *)

let k name ?(bindings = []) src =
  Program.make ~bindings ~family:"llvm-suite" name src

let programs : Program.t array =
  [|
    k "sum_i32"
      "int a[512];\n\
       int kernel() {\n\
      \  int s = 0;\n\
      \  int i;\n\
      \  for (i = 0; i < 512; i++) s += a[i];\n\
      \  return s;\n\
       }\n";
    k "dot_i32"
      "int x[512]; int y[512];\n\
       int kernel() {\n\
      \  int s = 0;\n\
      \  int i;\n\
      \  for (i = 0; i < 512; i++) s += x[i] * y[i];\n\
      \  return s;\n\
       }\n";
    k "dot_f32"
      "float x[512]; float y[512];\n\
       int kernel() {\n\
      \  float s = 0;\n\
      \  int i;\n\
      \  for (i = 0; i < 512; i++) s += x[i] * y[i];\n\
      \  return (int) s;\n\
       }\n";
    k "copy_widen_short"
      "short src1[1024]; int dst1[1024];\n\
       int kernel() {\n\
      \  int i;\n\
      \  for (i = 0; i < 1024; i++) dst1[i] = (int) src1[i];\n\
      \  return dst1[100];\n\
       }\n";
    k "saxpy_f32"
      "float x[1024]; float y[1024];\n\
       int kernel() {\n\
      \  int i;\n\
      \  for (i = 0; i < 1024; i++) y[i] = 2.5 * x[i] + y[i];\n\
      \  return (int) y[512];\n\
       }\n";
    k "predicated_store"
      "int a[1000]; int b[1000];\n\
       int kernel() {\n\
      \  int i;\n\
      \  for (i = 0; i < 1000; i++) {\n\
      \    if (b[i] > 128) a[i] = b[i];\n\
      \  }\n\
      \  return a[500];\n\
       }\n";
    k "select_minmax"
      "int a[1000]; int b[1000];\n\
       int kernel() {\n\
      \  int i;\n\
      \  for (i = 0; i < 1000; i++) a[i] = b[i] > 200 ? 200 : b[i];\n\
      \  return a[77];\n\
       }\n";
    k "stride2_pack"
      "float re[512]; float im[512]; float inter[1024];\n\
       int kernel() {\n\
      \  int i;\n\
      \  for (i = 0; i < 512; i++) {\n\
      \    re[i] = inter[2*i];\n\
      \    im[i] = inter[2*i+1];\n\
      \  }\n\
      \  return (int) (re[10] + im[10]);\n\
       }\n";
    k "gather_stride4"
      "int a[256]; int b[1024];\n\
       int kernel() {\n\
      \  int i;\n\
      \  for (i = 0; i < 256; i++) a[i] = b[4*i];\n\
      \  return a[128];\n\
       }\n";
    k "reverse_copy"
      "int a[512]; int b[512];\n\
       int kernel() {\n\
      \  int i;\n\
      \  for (i = 511; i >= 0; i--) a[i] = b[i] + 1;\n\
      \  return a[0];\n\
       }\n";
    k "unknown_bound" ~bindings:[ ("N", 600) ]
      "int a[N]; int b[N];\n\
       int kernel() {\n\
      \  int i;\n\
      \  for (i = 0; i < N; i++) a[i] = b[i] * 3;\n\
      \  return a[N/2];\n\
       }\n";
    k "misaligned_offset"
      "int a[1032]; int b[1032];\n\
       int kernel() {\n\
      \  int i;\n\
      \  for (i = 0; i < 1024; i++) a[i] = b[i + 3];\n\
      \  return a[17];\n\
       }\n";
    k "multidim_rowsum"
      "int g[64][64]; int rows[64];\n\
       int kernel() {\n\
      \  int i;\n\
      \  int j;\n\
      \  for (i = 0; i < 64; i++) {\n\
      \    int s = 0;\n\
      \    for (j = 0; j < 64; j++) s += g[i][j];\n\
      \    rows[i] = s;\n\
      \  }\n\
      \  return rows[32];\n\
       }\n";
    k "mixed_types"
      "char c8[800]; short s16[800]; int i32[800];\n\
       int kernel() {\n\
      \  int i;\n\
      \  for (i = 0; i < 800; i++) i32[i] = (int) c8[i] + (int) s16[i];\n\
      \  return i32[400];\n\
       }\n";
    k "xor_reduction"
      "int a[2048];\n\
       int kernel() {\n\
      \  int h = 0;\n\
      \  int i;\n\
      \  for (i = 0; i < 2048; i++) h ^= a[i];\n\
      \  return h;\n\
       }\n";
    k "shift_mask"
      "int a[1024]; int b[1024];\n\
       int kernel() {\n\
      \  int i;\n\
      \  for (i = 0; i < 1024; i++) a[i] = (b[i] >> 3) & 255;\n\
      \  return a[99];\n\
       }\n";
    k "step2_pairs"
      "int a[1024]; short sa[1024];\n\
       int kernel() {\n\
      \  int i;\n\
      \  for (i = 0; i < 1023; i += 2) {\n\
      \    a[i] = (int) sa[i];\n\
      \    a[i+1] = (int) sa[i+1];\n\
      \  }\n\
      \  return a[100];\n\
       }\n";
  |]
