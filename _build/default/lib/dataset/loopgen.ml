(** Synthetic loop generators.

    The paper (Section 3.2) built a >10,000-example dataset from the LLVM
    vectorizer test suite by varying parameter names, strides, iteration
    counts, functionality, instructions, and nesting depth. These
    generators follow that recipe: each template family corresponds to a
    suite category, and every sampled program randomizes names, bounds,
    element types, constants, and strides. Generation is deterministic in
    the seed. *)

type spec = {
  names : string array;  (** array-name pool *)
  elem_tys : string array;
  bounds : int array;
  strides : int array;
}

let default_spec =
  {
    names =
      [| "a"; "b"; "c"; "d"; "src"; "dst"; "in0"; "out0"; "buf"; "acc";
         "data"; "vals"; "xs"; "ys"; "zs"; "tmp_arr" |];
    elem_tys = [| "int"; "int"; "int"; "float"; "short"; "char"; "double"; "long" |];
    bounds = [| 64; 100; 128; 200; 256; 300; 512; 777; 1000; 1024 |];
    strides = [| 2; 3; 4; 8 |];
  }

type gctx = {
  rng : Nn.Rng.t;
  spec : spec;
  mutable used : string list;  (** array names already taken in this program *)
}

let fresh_name (g : gctx) : string =
  let rec pick tries =
    let n = Nn.Rng.choose g.rng g.spec.names in
    if List.mem n g.used && tries < 20 then pick (tries + 1)
    else if List.mem n g.used then n ^ string_of_int (List.length g.used)
    else n
  in
  let n = pick 0 in
  g.used <- n :: g.used;
  n

let pick_bound g = Nn.Rng.choose g.rng g.spec.bounds
let pick_ty g = Nn.Rng.choose g.rng g.spec.elem_tys
let pick_stride g = Nn.Rng.choose g.rng g.spec.strides

let is_float_ty ty = ty = "float" || ty = "double"

(** One template: name and a generator from a fresh context. Each returns
    (globals, kernel body, return expression). *)
type pieces = { globals : string list; body : string; ret : string }

(* --- family: elementwise map (add/sub/mul, mixed operands) ----------- *)
let gen_elementwise g =
  let ty = pick_ty g in
  let n = pick_bound g in
  let dst = fresh_name g and s1 = fresh_name g and s2 = fresh_name g in
  let op = Nn.Rng.choose g.rng [| "+"; "-"; "*" |] in
  let cst = 1 + Nn.Rng.int g.rng 9 in
  let form = Nn.Rng.int g.rng 3 in
  let rhs =
    match form with
    | 0 -> Printf.sprintf "%s[i] %s %s[i]" s1 op s2
    | 1 -> Printf.sprintf "%s[i] %s %d" s1 op cst
    | _ -> Printf.sprintf "(%s[i] %s %s[i]) %s %d" s1 op s2 op cst
  in
  { globals =
      [ Printf.sprintf "%s %s[%d];" ty dst n;
        Printf.sprintf "%s %s[%d];" ty s1 n;
        Printf.sprintf "%s %s[%d];" ty s2 n ];
    body =
      Printf.sprintf "  int i;\n  for (i = 0; i < %d; i++) {\n    %s[i] = %s;\n  }" n
        dst rhs;
    ret = Printf.sprintf "(int) %s[%d]" dst (n / 2) }

(* --- family: reduction (sum / product / xor / dot) -------------------- *)
let gen_reduction g =
  let ty = pick_ty g in
  let n = pick_bound g in
  let s1 = fresh_name g and s2 = fresh_name g in
  let kind = Nn.Rng.int g.rng 4 in
  let acc_ty = if is_float_ty ty then ty else "int" in
  let update =
    match kind with
    | 0 -> Printf.sprintf "s += %s[i];" s1
    | 1 -> Printf.sprintf "s += %s[i] * %s[i];" s1 s2
    | 2 when not (is_float_ty ty) -> Printf.sprintf "s ^= %s[i];" s1
    | _ -> Printf.sprintf "s += %s[i] * %s[i];" s1 s1
  in
  { globals =
      [ Printf.sprintf "%s %s[%d];" ty s1 n; Printf.sprintf "%s %s[%d];" ty s2 n ];
    body =
      Printf.sprintf
        "  %s s = 0;\n  int i;\n  for (i = 0; i < %d; i++) {\n    %s\n  }" acc_ty
        n update;
    ret = "(int) s" }

(* --- family: type widening copy (paper example #1) -------------------- *)
let gen_widening g =
  let n = pick_bound g in
  let narrow = Nn.Rng.choose g.rng [| "short"; "char" |] in
  let pairs = 1 + Nn.Rng.int g.rng 3 in
  let stmts = ref [] and globals = ref [] in
  for _ = 1 to pairs do
    let dst = fresh_name g and src = fresh_name g in
    globals :=
      Printf.sprintf "int %s[%d];" dst (n + 2)
      :: Printf.sprintf "%s %s[%d];" narrow src (n + 2)
      :: !globals;
    stmts :=
      Printf.sprintf "    %s[i] = (int) %s[i];\n    %s[i+1] = (int) %s[i+1];" dst
        src dst src
      :: !stmts
  done;
  { globals = List.rev !globals;
    body =
      Printf.sprintf "  int i;\n  for (i = 0; i < %d; i += 2) {\n%s\n  }" n
        (String.concat "\n" (List.rev !stmts));
    ret = "0" }

(* --- family: nested fill (paper example #2) ---------------------------- *)
let gen_nested_fill g =
  let n = 16 + Nn.Rng.int g.rng 48 in
  let m = 16 + Nn.Rng.int g.rng 48 in
  let arr = fresh_name g in
  let ty = pick_ty g in
  let value =
    Nn.Rng.choose g.rng [| "7"; "i + j"; "i * j"; "i - j" |]
  in
  { globals = [ Printf.sprintf "%s %s[%d][%d];" ty arr n m ];
    body =
      Printf.sprintf
        "  int i;\n  int j;\n  for (i = 0; i < %d; i++) {\n    for (j = 0; j < %d; j++) {\n      %s[i][j] = %s;\n    }\n  }"
        n m arr value;
    ret = Printf.sprintf "(int) %s[%d][%d]" arr (n / 2) (m / 2) }

(* --- family: predicate / threshold (paper example #3) ------------------ *)
let gen_predicate g =
  let n = pick_bound g in
  let dst = fresh_name g and src = fresh_name g in
  let thr = 32 + Nn.Rng.int g.rng 192 in
  let style = Nn.Rng.int g.rng 3 in
  let body_core =
    match style with
    | 0 ->
        Printf.sprintf
          "    int j = %s[i];\n    %s[i] = (j > %d ? %d : 0);" src dst thr thr
    | 1 -> Printf.sprintf "    if (%s[i] > %d) %s[i] = %s[i];" src thr dst src
    | _ ->
        Printf.sprintf
          "    if (%s[i] > %d) %s[i] = 1; else %s[i] = 0;" src thr dst dst
  in
  { globals =
      [ Printf.sprintf "int %s[%d];" dst n; Printf.sprintf "int %s[%d];" src n ];
    body =
      Printf.sprintf "  int i;\n  for (i = 0; i < %d; i++) {\n%s\n  }" n body_core;
    ret = Printf.sprintf "%s[%d]" dst (n / 3) }

(* --- family: gemm-style nest (paper example #4) ------------------------ *)
let gen_gemm g =
  let n = 12 + Nn.Rng.int g.rng 28 in
  let a = fresh_name g and b = fresh_name g and c = fresh_name g in
  let ty = if Nn.Rng.int g.rng 2 = 0 then "float" else "double" in
  { globals =
      [ Printf.sprintf "%s %s[%d][%d];" ty a n n;
        Printf.sprintf "%s %s[%d][%d];" ty b n n;
        Printf.sprintf "%s %s[%d][%d];" ty c n n ];
    body =
      Printf.sprintf
        "  int i;\n  int j;\n  int k;\n  for (i = 0; i < %d; i++) {\n    for (j = 0; j < %d; j++) {\n      %s sum = 0;\n      for (k = 0; k < %d; k++) {\n        sum += %s[i][k] * %s[k][j];\n      }\n      %s[i][j] = sum;\n    }\n  }"
        n n ty n a b c;
    ret = Printf.sprintf "(int) %s[%d][%d]" c (n / 2) (n / 3) }

(* --- family: strided arithmetic (paper example #5) --------------------- *)
let gen_strided g =
  let n = pick_bound g in
  let a = fresh_name g and b = fresh_name g
  and c = fresh_name g and d = fresh_name g in
  let ty = if Nn.Rng.int g.rng 2 = 0 then "float" else "int" in
  { globals =
      [ Printf.sprintf "%s %s[%d];" ty a (n / 2);
        Printf.sprintf "%s %s[%d];" ty b (n + 2);
        Printf.sprintf "%s %s[%d];" ty c (n + 2);
        Printf.sprintf "%s %s[%d];" ty d (n / 2) ];
    body =
      Printf.sprintf
        "  int i;\n  for (i = 0; i < %d/2-1; i++) {\n    %s[i] = %s[2*i+1] * %s[2*i+1] - %s[2*i] * %s[2*i];\n    %s[i] = %s[2*i] * %s[2*i+1] + %s[2*i+1] * %s[2*i];\n  }"
        n a b c b c d b c b c;
    ret = Printf.sprintf "(int) %s[1] + (int) %s[1]" a d }

(* --- family: non-unit-stride access ------------------------------------ *)
let gen_gather g =
  let n = pick_bound g in
  let stride = pick_stride g in
  let dst = fresh_name g and src = fresh_name g in
  { globals =
      [ Printf.sprintf "int %s[%d];" dst n;
        Printf.sprintf "int %s[%d];" src (n * stride) ];
    body =
      Printf.sprintf
        "  int i;\n  for (i = 0; i < %d; i++) {\n    %s[i] = %s[%d*i];\n  }" n dst
        src stride;
    ret = Printf.sprintf "%s[%d]" dst (n / 2) }

(* --- family: reversed iteration ---------------------------------------- *)
let gen_reversed g =
  let n = pick_bound g in
  let dst = fresh_name g and src = fresh_name g in
  { globals =
      [ Printf.sprintf "int %s[%d];" dst n; Printf.sprintf "int %s[%d];" src n ];
    body =
      Printf.sprintf
        "  int i;\n  for (i = %d; i >= 0; i--) {\n    %s[i] = %s[i] + i;\n  }"
        (n - 1) dst src;
    ret = Printf.sprintf "%s[0]" dst }

(* --- family: bitwise mix ------------------------------------------------ *)
let gen_bitwise g =
  let n = pick_bound g in
  let dst = fresh_name g and src = fresh_name g in
  let sh = 1 + Nn.Rng.int g.rng 5 in
  let op = Nn.Rng.choose g.rng [| "&"; "|"; "^" |] in
  { globals =
      [ Printf.sprintf "int %s[%d];" dst n; Printf.sprintf "int %s[%d];" src n ];
    body =
      Printf.sprintf
        "  int i;\n  for (i = 0; i < %d; i++) {\n    %s[i] = (%s[i] << %d) %s %s[i];\n  }"
        n dst src sh op src;
    ret = Printf.sprintf "%s[%d]" dst (n / 4) }

(* --- family: symbolic (unknown at generation) bounds -------------------- *)
let gen_unknown_bound g =
  let dst = fresh_name g and src = fresh_name g in
  let n = pick_bound g in
  { globals =
      [ Printf.sprintf "int %s[N];" dst; Printf.sprintf "int %s[N];" src ];
    body =
      Printf.sprintf
        "  int i;\n  for (i = 0; i < N; i++) {\n    %s[i] = %s[i] * 2 + 1;\n  }"
        dst src;
    ret = Printf.sprintf "%s[N/2]" dst }
  |> fun p -> (p, [ ("N", n) ])

(* --- family: offset (misaligned) accesses ------------------------------- *)
let gen_offset g =
  let n = pick_bound g in
  let off = 1 + Nn.Rng.int g.rng 3 in
  let dst = fresh_name g and src = fresh_name g in
  { globals =
      [ Printf.sprintf "int %s[%d];" dst (n + 8);
        Printf.sprintf "int %s[%d];" src (n + 8) ];
    body =
      Printf.sprintf
        "  int i;\n  for (i = 0; i < %d; i++) {\n    %s[i] = %s[i + %d];\n  }" n
        dst src off;
    ret = Printf.sprintf "%s[%d]" dst (n / 2) }

(* --- family: multiple statements / wider bodies -------------------------- *)
let gen_multi_stmt g =
  let n = pick_bound g in
  let a = fresh_name g and b = fresh_name g and c = fresh_name g in
  let k = 1 + Nn.Rng.int g.rng 6 in
  { globals =
      [ Printf.sprintf "int %s[%d];" a n;
        Printf.sprintf "int %s[%d];" b n;
        Printf.sprintf "int %s[%d];" c n ];
    body =
      Printf.sprintf
        "  int i;\n  for (i = 0; i < %d; i++) {\n    %s[i] = %s[i] + %d;\n    %s[i] = %s[i] * %s[i];\n  }"
        n a b k c a b;
    ret = Printf.sprintf "%s[%d] + %s[%d]" a (n / 2) c (n / 2) }

(* --- family: float saxpy-ish ------------------------------------------- *)
let gen_saxpy g =
  let n = pick_bound g in
  let x = fresh_name g and y = fresh_name g in
  let ty = if Nn.Rng.int g.rng 2 = 0 then "float" else "double" in
  let alpha = Printf.sprintf "%d.5" (1 + Nn.Rng.int g.rng 4) in
  { globals =
      [ Printf.sprintf "%s %s[%d];" ty x n; Printf.sprintf "%s %s[%d];" ty y n ];
    body =
      Printf.sprintf
        "  int i;\n  for (i = 0; i < %d; i++) {\n    %s[i] = %s * %s[i] + %s[i];\n  }"
        n y alpha x y;
    ret = Printf.sprintf "(int) %s[%d]" y (n / 2) }

(* --- family: flow dependence (NOT vectorizable; teaches the agent to
       leave such loops alone) ------------------------------------------- *)
let gen_recurrence g =
  let n = pick_bound g in
  let dist = 1 + Nn.Rng.int g.rng 4 in
  let a = fresh_name g in
  { globals = [ Printf.sprintf "int %s[%d];" a (n + dist) ];
    body =
      Printf.sprintf
        "  int i;\n  for (i = %d; i < %d; i++) {\n    %s[i] = %s[i - %d] + 1;\n  }"
        dist n a a dist;
    ret = Printf.sprintf "%s[%d]" a (n - 1) }

(* ------------------------------------------------------------------ *)

let families =
  [| ("elementwise", fun g -> (gen_elementwise g, []));
     ("reduction", fun g -> (gen_reduction g, []));
     ("widening", fun g -> (gen_widening g, []));
     ("nested_fill", fun g -> (gen_nested_fill g, []));
     ("predicate", fun g -> (gen_predicate g, []));
     ("gemm", fun g -> (gen_gemm g, []));
     ("strided", fun g -> (gen_strided g, []));
     ("gather", fun g -> (gen_gather g, []));
     ("reversed", fun g -> (gen_reversed g, []));
     ("bitwise", fun g -> (gen_bitwise g, []));
     ("unknown_bound", gen_unknown_bound);
     ("offset", fun g -> (gen_offset g, []));
     ("multi_stmt", fun g -> (gen_multi_stmt g, []));
     ("saxpy", fun g -> (gen_saxpy g, []));
     ("recurrence", fun g -> (gen_recurrence g, [])) |]

let assemble name family (p : pieces) bindings : Program.t =
  let source =
    Printf.sprintf "%s\n\nint kernel() {\n%s\n  return %s;\n}\n"
      (String.concat "\n" p.globals)
      p.body p.ret
  in
  Program.make ~bindings ~family name source

(** Generate one random program. *)
let generate_one ?(spec = default_spec) (rng : Nn.Rng.t) (idx : int) : Program.t
    =
  let g = { rng; spec; used = [] } in
  let family, gen = Nn.Rng.choose rng families in
  let pieces, bindings = gen g in
  assemble (Printf.sprintf "%s_%05d" family idx) family pieces bindings

(** Generate a corpus of [n] programs, deterministic in [seed]. *)
let generate ?(seed = 42) ?(spec = default_spec) (n : int) : Program.t array =
  let rng = Nn.Rng.create seed in
  Array.init n (fun i -> generate_one ~spec rng i)

(** Split a corpus into train / test (the paper holds out 20%). *)
let train_test_split ?(test_fraction = 0.2) ?(seed = 7)
    (corpus : Program.t array) : Program.t array * Program.t array =
  let rng = Nn.Rng.create seed in
  let arr = Array.copy corpus in
  Nn.Rng.shuffle rng arr;
  let n_test =
    int_of_float (test_fraction *. float_of_int (Array.length arr))
  in
  ( Array.sub arr n_test (Array.length arr - n_test),
    Array.sub arr 0 n_test )
