(** PolyBench-like kernels (Figure 8's transfer-learning suite): dense
    linear algebra where loops are essentially all of the runtime and
    Polly's tiling/fusion shine. Kernels use the accumulate-into-memory
    form PolyBench itself uses ([C[i][j] += ...]), which is what makes the
    nests permutable. Sizes are chosen so working sets exceed the simulated
    L2, giving locality transforms room to matter. *)

let k name src = Program.make ~family:"polybench" name src

let n = 256

let programs : Program.t array =
  [|
    k "gemm"
      (Printf.sprintf
         "float A[%d][%d]; float B[%d][%d]; float C[%d][%d];\n\
          int kernel() {\n\
         \  int i;\n\
         \  int j;\n\
         \  int k;\n\
         \  for (i = 0; i < %d; i++)\n\
         \    for (j = 0; j < %d; j++)\n\
         \      for (k = 0; k < %d; k++)\n\
         \        C[i][j] += A[i][k] * B[k][j];\n\
         \  return (int) C[7][9];\n\
          }\n"
         n n n n n n n n n);
    k "gesummv"
      (Printf.sprintf
         "float A[%d][%d]; float B[%d][%d]; float x[%d]; float y[%d]; float tmp[%d];\n\
          int kernel() {\n\
         \  int i;\n\
         \  int j;\n\
         \  for (i = 0; i < %d; i++) {\n\
         \    for (j = 0; j < %d; j++) {\n\
         \      tmp[i] += A[i][j] * x[j];\n\
         \      y[i] += B[i][j] * x[j];\n\
         \    }\n\
         \  }\n\
         \  for (i = 0; i < %d; i++) y[i] = 1.5 * tmp[i] + 1.2 * y[i];\n\
         \  return (int) y[11];\n\
          }\n"
         n n n n n n n n n n);
    k "atax"
      (Printf.sprintf
         "float A[%d][%d]; float x[%d]; float y[%d]; float tmp[%d];\n\
          int kernel() {\n\
         \  int i;\n\
         \  int j;\n\
         \  for (i = 0; i < %d; i++)\n\
         \    for (j = 0; j < %d; j++)\n\
         \      tmp[i] += A[i][j] * x[j];\n\
         \  for (j = 0; j < %d; j++)\n\
         \    for (i = 0; i < %d; i++)\n\
         \      y[j] += A[i][j] * tmp[i];\n\
         \  return (int) y[5];\n\
          }\n"
         n n n n n n n n n);
    k "bicg"
      (Printf.sprintf
         "float A[%d][%d]; float p[%d]; float r[%d]; float q[%d]; float s[%d];\n\
          int kernel() {\n\
         \  int i;\n\
         \  int j;\n\
         \  for (i = 0; i < %d; i++) {\n\
         \    for (j = 0; j < %d; j++) {\n\
         \      s[j] += r[i] * A[i][j];\n\
         \      q[i] += A[i][j] * p[j];\n\
         \    }\n\
         \  }\n\
         \  return (int) (s[3] + q[4]);\n\
          }\n"
         n n n n n n n n);
    k "mvt"
      (Printf.sprintf
         "float A[%d][%d]; float x1[%d]; float x2[%d]; float y1[%d]; float y2[%d];\n\
          int kernel() {\n\
         \  int i;\n\
         \  int j;\n\
         \  for (i = 0; i < %d; i++)\n\
         \    for (j = 0; j < %d; j++)\n\
         \      x1[i] += A[i][j] * y1[j];\n\
         \  for (i = 0; i < %d; i++)\n\
         \    for (j = 0; j < %d; j++)\n\
         \      x2[i] += A[j][i] * y2[j];\n\
         \  return (int) (x1[6] + x2[8]);\n\
          }\n"
         n n n n n n n n n n);
    k "syrk"
      (Printf.sprintf
         "float A[%d][%d]; float C[%d][%d];\n\
          int kernel() {\n\
         \  int i;\n\
         \  int j;\n\
         \  int k;\n\
         \  for (i = 0; i < %d; i++)\n\
         \    for (j = 0; j < %d; j++)\n\
         \      for (k = 0; k < %d; k++)\n\
         \        C[i][j] += A[i][k] * A[j][k];\n\
         \  return (int) C[9][9];\n\
          }\n"
         n n n n n n n);
  |]
