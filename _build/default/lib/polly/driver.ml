(** The Polly pass pipeline: fuse, then tile every permutable SCoP.

    Matches the paper's description of Polly's role: "Polly performs
    classical loop transformations, especially tiling and loop fusion to
    improve data locality" (Section 2.2). Vectorization afterwards is left
    to the regular vectorizer (baseline cost model, or RL-injected pragmas
    when combining Polly with the agent, as in Section 4.1). *)

type stats = { fusions : int; tiled_scops : int }

let default_tile = 32

(** Tiling is profitable when the innermost loop sweeps memory with a
    stride large enough that every iteration touches a new cache line
    (e.g. the [B[k][j]] column walk in gemm); stride-1 kernels are already
    cache-friendly and tiling them only adds loop overhead. *)
let has_strided_inner (s : Scop.t) : bool =
  match List.rev s.Scop.nest with
  | [] -> false
  | inner :: _ ->
      let v = inner.Ir.l_var in
      List.exists
        (fun a ->
          match List.assoc_opt v a.Scop.af_coeffs with
          | Some c -> abs (c * inner.Ir.l_step) >= 16
          | None -> false)
        s.Scop.accesses

(** Run Polly over a module, in place. *)
let optimize ?(tile = default_tile) (m : Ir.modul) : stats =
  let fusions = ref 0 and tiled = ref 0 in
  List.iter
    (fun fn ->
      fusions := !fusions + Fusion.apply fn;
      let scops = Scop.scops_of_func fn in
      List.iter
        (fun s ->
          if
            Tile.tileable s
            && List.exists (fun t -> t > tile) s.Scop.trips
            && has_strided_inner s
          then if Tile.apply fn s ~tile then incr tiled)
        scops)
    m.Ir.m_funcs;
  { fusions = !fusions; tiled_scops = !tiled }
