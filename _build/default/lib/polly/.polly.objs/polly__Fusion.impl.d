lib/polly/fusion.ml: Analysis Int Ir List Map Option
