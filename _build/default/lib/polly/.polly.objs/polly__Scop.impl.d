lib/polly/scop.ml: Analysis Hashtbl Ir List Option
