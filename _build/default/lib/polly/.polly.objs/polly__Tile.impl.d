lib/polly/tile.ml: Analysis Int64 Ir List Scop
