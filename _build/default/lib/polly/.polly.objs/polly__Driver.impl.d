lib/polly/driver.ml: Fusion Ir List Scop Tile
