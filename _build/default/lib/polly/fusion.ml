(** Loop fusion: merge adjacent sibling loops with identical iteration
    domains into one loop, improving temporal locality (values produced by
    the first body are consumed by the second while still in cache).

    Legality is conservative: for every array *written* by either loop and
    *accessed* by the other, all accesses to it (in both loops, after
    renaming the second loop's induction variable to the first's) must
    share one affine index function — i.e. producer and consumer touch the
    same element in the same iteration. *)

module IntMap = Map.Make (Int)

(** Substitute register [from_] with [to_] in every value of a node list. *)
let subst_reg ~(from_ : Ir.reg) ~(to_ : Ir.reg) (nodes : Ir.node list) :
    Ir.node list =
  let v = function Ir.Reg r when r = from_ -> Ir.Reg to_ | x -> x in
  let mref m = { m with Ir.index = v m.Ir.index;
                        mask = Option.map v m.Ir.mask } in
  let rvalue rv =
    match rv with
    | Ir.IBin (op, ty, a, b) -> Ir.IBin (op, ty, v a, v b)
    | Ir.FBin (op, ty, a, b) -> Ir.FBin (op, ty, v a, v b)
    | Ir.ICmp (op, ty, a, b) -> Ir.ICmp (op, ty, v a, v b)
    | Ir.FCmp (op, ty, a, b) -> Ir.FCmp (op, ty, v a, v b)
    | Ir.Select (ty, c, a, b) -> Ir.Select (ty, v c, v a, v b)
    | Ir.Cast (k, f, t, x) -> Ir.Cast (k, f, t, v x)
    | Ir.Load (ty, m) -> Ir.Load (ty, mref m)
    | Ir.Splat (ty, x) -> Ir.Splat (ty, v x)
    | Ir.Extract (s, x, l) -> Ir.Extract (s, v x, l)
    | Ir.Reduce (o, s, x) -> Ir.Reduce (o, s, v x)
    | Ir.Mov (ty, x) -> Ir.Mov (ty, v x)
    | Ir.Stride (ty, x, s) -> Ir.Stride (ty, v x, s)
  in
  let instr i =
    match i with
    | Ir.Def (r, rv) -> Ir.Def (r, rvalue rv)
    | Ir.Store (ty, m, x) -> Ir.Store (ty, mref m, v x)
    | Ir.CallI (r, f, args) -> Ir.CallI (r, f, List.map v args)
  in
  let code (is, x) = (List.map instr is, v x) in
  let rec node n =
    match n with
    | Ir.Block is -> Ir.Block (List.map instr is)
    | Ir.If { cond; then_; else_ } ->
        Ir.If { cond = code cond; then_ = List.map node then_;
                else_ = List.map node else_ }
    | Ir.Loop l ->
        Ir.Loop { l with Ir.l_init = code l.Ir.l_init;
                  l_bound = code l.Ir.l_bound;
                  l_body = List.map node l.Ir.l_body }
    | Ir.WhileLoop { w_cond; w_body } ->
        Ir.WhileLoop { w_cond = code w_cond; w_body = List.map node w_body }
    | Ir.Return (Some c) -> Ir.Return (Some (code c))
    | other -> other
  in
  List.map node nodes

(** Accesses of a loop body as (base, is_store, index function) with the
    induction variable canonicalized to register [canon]. *)
let accesses_of (l : Ir.loop) ~(canon : Ir.reg) :
    (string * bool * Analysis.Scev.sval) list option =
  let body =
    if l.Ir.l_var = canon then l.Ir.l_body
    else subst_reg ~from_:l.Ir.l_var ~to_:canon l.Ir.l_body
  in
  let env = Analysis.Scev.make_env ~induction_vars:[ canon ] body in
  let out = ref [] and ok = ref true in
  List.iter
    (fun i ->
      (match i with
      | Ir.Def (_, Ir.Load (_, m)) | Ir.Store (_, m, _) -> (
          match Analysis.Scev.eval_value env m.Ir.index with
          | Analysis.Scev.Unknown -> ok := false
          | sv ->
              out :=
                (m.Ir.base, (match i with Ir.Store _ -> true | _ -> false), sv)
                :: !out)
      | _ -> ());
      Analysis.Scev.step env i)
    (Ir.all_instrs body);
  if !ok then Some (List.rev !out) else None

let domains_equal (a : Ir.loop) (b : Ir.loop) : bool =
  a.Ir.l_step = b.Ir.l_step && a.Ir.l_cmp = b.Ir.l_cmp
  && (match
        ( Analysis.Loopinfo.eval_code_const a.Ir.l_init,
          Analysis.Loopinfo.eval_code_const b.Ir.l_init )
      with
     | Some x, Some y -> x = y
     | _ -> false)
  && (match
        ( Analysis.Loopinfo.eval_code_const a.Ir.l_bound,
          Analysis.Loopinfo.eval_code_const b.Ir.l_bound )
      with
     | Some x, Some y -> x = y
     | _ -> false)

(** Can [a] and [b] be fused? *)
let can_fuse (a : Ir.loop) (b : Ir.loop) : bool =
  domains_equal a b
  &&
  match (accesses_of a ~canon:a.Ir.l_var, accesses_of b ~canon:a.Ir.l_var) with
  | Some accs_a, Some accs_b ->
      let bases_written accs =
        List.filter_map (fun (base, st, _) -> if st then Some base else None) accs
      in
      let written = bases_written accs_a @ bases_written accs_b in
      let all = accs_a @ accs_b in
      List.for_all
        (fun base ->
          let fns =
            List.filter_map
              (fun (b', _, sv) -> if b' = base then Some sv else None)
              all
          in
          match fns with
          | [] | [ _ ] -> true
          | f0 :: rest ->
              List.for_all
                (fun f -> Analysis.Scev.const_delta f0 f = Some 0)
                rest)
        written
  | _ -> false

let fused (a : Ir.loop) (b : Ir.loop) : Ir.loop =
  let b_body = subst_reg ~from_:b.Ir.l_var ~to_:a.Ir.l_var b.Ir.l_body in
  { a with Ir.l_body = a.Ir.l_body @ b_body }

(** One fusion pass over sibling lists; fuses greedily left to right. *)
let rec fuse_siblings (nodes : Ir.node list) : Ir.node list * int =
  match nodes with
  | Ir.Loop a :: Ir.Loop b :: rest when can_fuse a b ->
      let merged, n = fuse_siblings (Ir.Loop (fused a b) :: rest) in
      (merged, n + 1)
  | n :: rest ->
      let n' =
        match n with
        | Ir.Loop l ->
            let body, _ = fuse_siblings l.Ir.l_body in
            Ir.Loop { l with Ir.l_body = body }
        | Ir.If { cond; then_; else_ } ->
            let t, _ = fuse_siblings then_ and e, _ = fuse_siblings else_ in
            Ir.If { cond; then_ = t; else_ = e }
        | Ir.WhileLoop { w_cond; w_body } ->
            let b, _ = fuse_siblings w_body in
            Ir.WhileLoop { w_cond; w_body = b }
        | other -> other
      in
      let rest', n2 = fuse_siblings rest in
      (n' :: rest', n2)
  | [] -> ([], 0)

(** Fuse fusable sibling loops throughout a function. Returns the number of
    fusions performed. *)
let apply (fn : Ir.func) : int =
  let body, n = fuse_siblings fn.Ir.fn_body in
  fn.Ir.fn_body <- body;
  n
