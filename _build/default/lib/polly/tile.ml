(** Rectangular loop tiling on a permutable SCoP band.

    {v for (i = lo; i < hi; i++) ...            becomes

       for (it = lo; it < hi; it += T)
         for (i = it; i < min(hi, it + T); i++) ... v}

    applied to every level of the band. Tiling shrinks the address span
    each inner loop sweeps, which the machine model rewards with L1-level
    bandwidth — the same locality effect Polly's tiling has on real
    hardware. *)

(** Only simple upward bands are tiled: step +1, [<] comparison, constant
    bounds. (The SCoP detector already guarantees static trip counts.) *)
let tileable_loop (l : Ir.loop) : (int * int) option =
  if l.Ir.l_step <> 1 || l.Ir.l_cmp <> Ir.CLt then None
  else
    match
      ( Analysis.Loopinfo.eval_code_const l.Ir.l_init,
        Analysis.Loopinfo.eval_code_const l.Ir.l_bound )
    with
    | Some lo, Some hi -> Some (lo, hi)
    | _ -> None

let tileable (s : Scop.t) : bool =
  List.length s.Scop.nest >= 2
  && List.for_all (fun l -> tileable_loop l <> None) s.Scop.nest
  && Scop.is_permutable s

(** Build the tiled replacement for the band. [tile] is the tile size used
    at every level (levels with trip count <= tile are left untiled). *)
let tile_band (fn : Ir.func) (s : Scop.t) ~(tile : int) : Ir.node =
  let nest = s.Scop.nest in
  let innermost = List.nth nest (List.length nest - 1) in
  let levels =
    List.map
      (fun l ->
        match tileable_loop l with
        | Some (lo, hi) -> (l, lo, hi, hi - lo > tile)
        | None -> assert false)
      nest
  in
  (* point loops, innermost body preserved *)
  let rec build_points (lvls : (Ir.loop * int * int * bool) list)
      (tile_vars : (Ir.reg * Ir.reg) list) : Ir.node =
    match lvls with
    | [] -> assert false
    | (l, _, hi, tiled) :: rest ->
        let var_sty =
          match Ir.reg_ty fn l.Ir.l_var with Ir.Scalar st -> st | Ir.Vec _ -> Ir.I64
        in
        let init, bound, hint =
          if tiled then begin
            let tv = List.assoc l.Ir.l_var tile_vars in
            (* i from tv while i < min(hi, tv + tile) *)
            let a = Ir.fresh_reg fn (Ir.Scalar var_sty) in
            let c = Ir.fresh_reg fn (Ir.Scalar Ir.I1) in
            let mn = Ir.fresh_reg fn (Ir.Scalar var_sty) in
            ( ([], Ir.Reg tv),
              ( [ Ir.Def (a, Ir.IBin (Ir.Add, Ir.Scalar var_sty, Ir.Reg tv,
                                      Ir.IConst (Int64.of_int tile)));
                  Ir.Def (c, Ir.ICmp (Ir.CLt, Ir.Scalar var_sty, Ir.Reg a,
                                      Ir.IConst (Int64.of_int hi)));
                  Ir.Def (mn, Ir.Select (Ir.Scalar var_sty, Ir.Reg c, Ir.Reg a,
                                         Ir.IConst (Int64.of_int hi))) ],
                Ir.Reg mn ),
              Some tile )
          end
          else (l.Ir.l_init, l.Ir.l_bound, None)
        in
        let body =
          match rest with
          | [] -> innermost.Ir.l_body
          | _ -> [ build_points rest tile_vars ]
        in
        Ir.Loop
          { l with Ir.l_init = init; l_bound = bound; l_body = body;
            l_pragma = l.Ir.l_pragma; l_trip_hint = hint }
  in
  (* tile loops outside *)
  let rec build_tiles (lvls : (Ir.loop * int * int * bool) list)
      (tile_vars : (Ir.reg * Ir.reg) list) : Ir.node =
    match lvls with
    | [] -> build_points levels (List.rev tile_vars)
    | (l, lo, hi, tiled) :: rest ->
        if not tiled then build_tiles rest tile_vars
        else begin
          let var_sty =
            match Ir.reg_ty fn l.Ir.l_var with
            | Ir.Scalar st -> st
            | Ir.Vec _ -> Ir.I64
          in
          let tv = Ir.fresh_reg fn (Ir.Scalar var_sty) in
          let inner = build_tiles rest ((l.Ir.l_var, tv) :: tile_vars) in
          Ir.Loop
            {
              Ir.l_id = l.Ir.l_id + 200000;
              l_var = tv;
              l_init = ([], Ir.IConst (Int64.of_int lo));
              l_bound = ([], Ir.IConst (Int64.of_int hi));
              l_cmp = Ir.CLt;
              l_step = tile;
              l_pragma = None;
              l_body = [ inner ];
              l_trip_hint = None;
            }
        end
  in
  build_tiles levels []

(** Tile the SCoP in place within the function body. Returns true if the
    band was found and rewritten. *)
let apply (fn : Ir.func) (s : Scop.t) ~(tile : int) : bool =
  let target_id = (List.hd s.Scop.nest).Ir.l_id in
  let found = ref false in
  let rec rewrite nodes =
    List.map
      (fun n ->
        match n with
        | Ir.Loop l when l.Ir.l_id = target_id ->
            found := true;
            tile_band fn s ~tile
        | Ir.Loop l -> Ir.Loop { l with Ir.l_body = rewrite l.Ir.l_body }
        | Ir.If { cond; then_; else_ } ->
            Ir.If { cond; then_ = rewrite then_; else_ = rewrite else_ }
        | Ir.WhileLoop { w_cond; w_body } ->
            Ir.WhileLoop { w_cond; w_body = rewrite w_body }
        | other -> other)
      nodes
  in
  fn.Ir.fn_body <- rewrite fn.Ir.fn_body;
  !found
