(** Static Control Part (SCoP) detection — the polyhedral front door.

    A SCoP here is a perfectly-nested band of counted loops whose bounds
    are constants and whose memory accesses are affine in the nest's
    induction variables; the innermost body is straight-line (after
    if-conversion candidates are excluded — this Polly reproduction only
    tiles/fuses, it does not handle predicated statements).

    The polytope view: the iteration domain is the box
    [prod_k [0, trip_k)]; each access is an affine map from the domain to
    array indices. Tiling and fusion reason directly on this
    representation. *)

type access_fn = {
  af_base : string;
  af_coeffs : (Ir.reg * int) list;  (** per nest variable, outer first *)
  af_const_affine : Analysis.Scev.sval;  (** full index function *)
  af_is_store : bool;
}

type t = {
  nest : Ir.loop list;  (** outermost first; each perfectly nests the next *)
  body : Ir.instr list;  (** innermost straight-line body *)
  trips : int list;  (** static trip count per level *)
  accesses : access_fn list;
}

(** Extract the perfectly-nested band starting at [l]: follow single-child
    Loop nodes. Interstitial instructions before/after the inner loop stop
    the band (we keep the band found so far). *)
let rec band_of (l : Ir.loop) : Ir.loop list =
  match l.Ir.l_body with
  | [ Ir.Loop inner ] -> l :: band_of inner
  | [ Ir.Block _ ] | [ Ir.Block _; Ir.Block _ ] -> [ l ]
  | _ -> [ l ]

let straightline_body (l : Ir.loop) : Ir.instr list option =
  let ok = ref true in
  let instrs =
    List.concat_map
      (fun n ->
        match n with
        | Ir.Block is -> is
        | _ ->
            ok := false;
            [])
      l.Ir.l_body
  in
  if !ok then Some instrs else None

(** Try to view the nest rooted at [l] as a SCoP. *)
let detect (l : Ir.loop) : t option =
  let nest = band_of l in
  let innermost = List.nth nest (List.length nest - 1) in
  match straightline_body innermost with
  | None -> None
  | Some body ->
      let trips =
        List.map
          (fun lp -> Analysis.Loopinfo.static_trip_count lp)
          nest
      in
      if List.exists (fun t -> t = None) trips then None
      else begin
        let trips = List.map Option.get trips in
        let vars = List.map (fun lp -> lp.Ir.l_var) nest in
        let env =
          Analysis.Scev.make_env ~induction_vars:vars [ Ir.Block body ]
        in
        let accesses = ref [] and affine = ref true in
        List.iter
          (fun i ->
            (match i with
            | Ir.Def (_, Ir.Load (_, mr)) | Ir.Store (_, mr, _) -> (
                let sv = Analysis.Scev.eval_value env mr.Ir.index in
                match sv with
                | Analysis.Scev.Unknown -> affine := false
                | Analysis.Scev.Affine _ ->
                    accesses :=
                      { af_base = mr.Ir.base;
                        af_coeffs =
                          List.map (fun v -> (v, Analysis.Scev.coeff_of v sv)) vars;
                        af_const_affine = sv;
                        af_is_store =
                          (match i with Ir.Store _ -> true | _ -> false) }
                      :: !accesses)
            | _ -> ());
            Analysis.Scev.step env i)
          body;
        if not !affine then None
        else if
          (* no calls / irregular nodes hidden in the body *)
          List.exists (function Ir.CallI _ -> true | _ -> false) body
        then None
        else
          Some { nest; body; trips; accesses = List.rev !accesses }
      end

(** Permutability check (what makes rectangular tiling legal here): every
    array that is both read and written inside the SCoP must have all its
    accesses share one affine index function (the [C[i][j] += ...] pattern
    — dependences stay within a single iteration point, so any loop
    permutation/tiling preserves them). Arrays that are only read or only
    written impose no ordering. This is a conservative subset of the
    polyhedral dependence test, sufficient for the linear-algebra kernels
    Polly targets. *)
let is_permutable (s : t) : bool =
  let by_base = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let read, written, fns =
        match Hashtbl.find_opt by_base a.af_base with
        | Some (r, w, fns) -> (r, w, fns)
        | None -> (false, false, [])
      in
      Hashtbl.replace by_base a.af_base
        ( read || not a.af_is_store,
          written || a.af_is_store,
          a.af_const_affine :: fns ))
    s.accesses;
  Hashtbl.fold
    (fun _ (read, written, fns) acc ->
      acc
      && ((not (read && written))
         || List.for_all
              (fun f -> Analysis.Scev.const_delta (List.hd fns) f = Some 0)
              fns))
    by_base true

(** All SCoPs of a function (rooted at outermost loops). *)
let scops_of_func (fn : Ir.func) : t list =
  let roots = ref [] in
  let rec walk nodes =
    List.iter
      (fun n ->
        match n with
        | Ir.Loop l -> roots := l :: !roots
        (* do not descend: band_of handles inner levels *)
        | Ir.If { then_; else_; _ } ->
            walk then_;
            walk else_
        | Ir.WhileLoop { w_body; _ } -> walk w_body
        | _ -> ())
      nodes
  in
  walk fn.Ir.fn_body;
  List.filter_map detect (List.rev !roots)
