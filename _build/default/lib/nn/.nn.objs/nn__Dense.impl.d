lib/nn/dense.ml: Rng Tensor
