lib/nn/tensor.ml: Array Rng
