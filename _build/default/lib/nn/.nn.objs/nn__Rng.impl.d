lib/nn/rng.ml: Array Float Int64
