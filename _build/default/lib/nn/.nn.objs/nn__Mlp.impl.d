lib/nn/mlp.ml: Array Dense List Optim Rng Tensor
