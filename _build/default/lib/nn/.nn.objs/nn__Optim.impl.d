lib/nn/optim.ml: Array List Tensor
