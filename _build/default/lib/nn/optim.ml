(** Optimizers over flat (param, grad) pairs: SGD and Adam. *)

type params = (Tensor.vec * Tensor.vec) list

type t =
  | Sgd of { lr : float }
  | Adam of {
      lr : float;
      beta1 : float;
      beta2 : float;
      eps : float;
      mutable step : int;
      mutable state : (Tensor.vec * Tensor.vec) list option;
          (** (m, v) per param, lazily matched to the param list *)
    }

let sgd ~lr = Sgd { lr }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr () =
  Adam { lr; beta1; beta2; eps; step = 0; state = None }

(** One update step. [scale] divides gradients (e.g. by batch size). *)
let step ?(scale = 1.0) (t : t) (ps : params) : unit =
  match t with
  | Sgd { lr } ->
      List.iter
        (fun (p, g) ->
          for i = 0 to Array.length p - 1 do
            p.(i) <- p.(i) -. (lr *. g.(i) /. scale)
          done)
        ps
  | Adam a ->
      let state =
        match a.state with
        | Some s -> s
        | None ->
            let s =
              List.map
                (fun (p, _) ->
                  (Tensor.vec_create (Array.length p),
                   Tensor.vec_create (Array.length p)))
                ps
            in
            a.state <- Some s;
            s
      in
      a.step <- a.step + 1;
      let t_ = float_of_int a.step in
      let bc1 = 1.0 -. (a.beta1 ** t_) and bc2 = 1.0 -. (a.beta2 ** t_) in
      List.iter2
        (fun (p, g) (m, v) ->
          for i = 0 to Array.length p - 1 do
            let gi = g.(i) /. scale in
            m.(i) <- (a.beta1 *. m.(i)) +. ((1.0 -. a.beta1) *. gi);
            v.(i) <- (a.beta2 *. v.(i)) +. ((1.0 -. a.beta2) *. gi *. gi);
            let mhat = m.(i) /. bc1 and vhat = v.(i) /. bc2 in
            p.(i) <- p.(i) -. (a.lr *. mhat /. (sqrt vhat +. a.eps))
          done)
        ps state

let zero_grads (ps : params) : unit =
  List.iter (fun (_, g) -> Tensor.fill_zero g) ps
