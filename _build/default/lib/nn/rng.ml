(** Deterministic splitmix64 RNG.

    Every stochastic component (weight init, sampling, dataset generation,
    exploration) draws from an explicit [Rng.t] so that experiments are
    reproducible run-to-run — figures in EXPERIMENTS.md regenerate
    bit-identically. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int (seed * 2654435761 + 1) }

let next_int64 (t : t) : int64 =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** Uniform float in [0, 1). *)
let float (t : t) : float =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

(** Uniform int in [0, n). *)
let int (t : t) (n : int) : int =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1)
                  (Int64.of_int n))

(** Uniform float in [lo, hi). *)
let range (t : t) ~lo ~hi : float = lo +. ((hi -. lo) *. float t)

(** Standard normal via Box-Muller. *)
let normal (t : t) : float =
  let u1 = max (float t) 1e-12 and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(** Pick one element of a non-empty array. *)
let choose (t : t) (a : 'a array) : 'a = a.(int t (Array.length a))

(** Shuffle an array in place (Fisher-Yates). *)
let shuffle (t : t) (a : 'a array) : unit =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(** Split off an independent stream (for parallel components). *)
let split (t : t) : t = { state = next_int64 t }
