lib/ir/ir.ml: Array Buffer Int64 List Minic Printf String
