lib/ir/ir_lower.ml: Char Hashtbl Int64 Ir List Minic Option Printf
