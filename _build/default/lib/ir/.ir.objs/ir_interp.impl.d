lib/ir/ir_interp.ml: Array Char Hashtbl Int32 Int64 Ir List Option Printf String
