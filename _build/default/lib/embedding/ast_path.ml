(** AST path-context extraction, following code2vec (Alon et al., 2019).

    A code snippet is decomposed into (left terminal, syntactic path,
    right terminal) triples: for every pair of AST leaves, the path is the
    sequence of node kinds walked from one leaf up to their lowest common
    ancestor and down to the other. The paper feeds loop bodies (the most
    *outer* loop's body for nests — its ablation found that beats
    inner-only) through this extraction. *)

type tree = { label : string; children : tree list }

let leaf label = { label; children = [] }

(* ------------------------------------------------------------------ *)
(* Mini-C AST -> generic tree                                           *)
(* ------------------------------------------------------------------ *)

let rec tree_of_expr (e : Minic.Ast.expr) : tree =
  match e with
  | Minic.Ast.IntLit i ->
      { label = "IntLit"; children = [ leaf (Int64.to_string i) ] }
  | Minic.Ast.FloatLit f ->
      { label = "FloatLit"; children = [ leaf (Printf.sprintf "%g" f) ] }
  | Minic.Ast.CharLit c ->
      { label = "CharLit"; children = [ leaf (String.make 1 c) ] }
  | Minic.Ast.Ident name -> { label = "Ident"; children = [ leaf name ] }
  | Minic.Ast.Index (a, i) ->
      { label = "Index"; children = [ tree_of_expr a; tree_of_expr i ] }
  | Minic.Ast.Unop (op, a) ->
      { label = "Unop_" ^ Minic.Ast.unop_to_string op;
        children = [ tree_of_expr a ] }
  | Minic.Ast.Binop (op, a, b) ->
      { label = "Binop_" ^ Minic.Ast.binop_to_string op;
        children = [ tree_of_expr a; tree_of_expr b ] }
  | Minic.Ast.Assign (l, r) ->
      { label = "Assign"; children = [ tree_of_expr l; tree_of_expr r ] }
  | Minic.Ast.OpAssign (op, l, r) ->
      { label = "OpAssign_" ^ Minic.Ast.binop_to_string op;
        children = [ tree_of_expr l; tree_of_expr r ] }
  | Minic.Ast.Ternary (c, t, f) ->
      { label = "Ternary";
        children = [ tree_of_expr c; tree_of_expr t; tree_of_expr f ] }
  | Minic.Ast.Call (f, args) ->
      { label = "Call"; children = leaf f :: List.map tree_of_expr args }
  | Minic.Ast.Cast (ty, a) ->
      { label = "Cast_" ^ Minic.Ast.base_ty_to_string ty.Minic.Ast.base;
        children = [ tree_of_expr a ] }
  | Minic.Ast.Comma (a, b) ->
      { label = "Comma"; children = [ tree_of_expr a; tree_of_expr b ] }

let rec tree_of_stmt (s : Minic.Ast.stmt) : tree =
  match s with
  | Minic.Ast.Decl (ty, name, init) ->
      { label = "Decl_" ^ Minic.Ast.base_ty_to_string ty.Minic.Ast.base;
        children =
          (leaf name
           :: (match init with Some e -> [ tree_of_expr e ] | None -> [])) }
  | Minic.Ast.Expr e -> { label = "ExprStmt"; children = [ tree_of_expr e ] }
  | Minic.Ast.Block ss -> { label = "Block"; children = List.map tree_of_stmt ss }
  | Minic.Ast.If (c, t, f) ->
      { label = "If";
        children =
          (tree_of_expr c :: tree_of_stmt t
           :: (match f with Some f -> [ tree_of_stmt f ] | None -> [])) }
  | Minic.Ast.For { init; cond; step; body; _ } ->
      { label = "For";
        children =
          List.filter_map Fun.id
            [ Option.map tree_of_stmt init;
              Option.map tree_of_expr cond;
              Option.map tree_of_expr step;
              Some (tree_of_stmt body) ] }
  | Minic.Ast.While { Minic.Ast.w_cond; w_body; _ } ->
      { label = "While"; children = [ tree_of_expr w_cond; tree_of_stmt w_body ] }
  | Minic.Ast.Return e ->
      { label = "Return";
        children = (match e with Some e -> [ tree_of_expr e ] | None -> []) }
  | Minic.Ast.Break -> leaf "Break"
  | Minic.Ast.Continue -> leaf "Continue"
  | Minic.Ast.Empty -> leaf "Empty"

(* ------------------------------------------------------------------ *)
(* Path contexts                                                        *)
(* ------------------------------------------------------------------ *)

type context = { left : string; path : string; right : string }

(** All leaves with their root paths (list of interior labels, root last). *)
let leaves_with_paths (t : tree) : (string * string list) list =
  let acc = ref [] in
  let rec go path node =
    match node.children with
    | [] -> acc := (node.label, path) :: !acc
    | cs -> List.iter (go (node.label :: path)) cs
  in
  go [] t;
  List.rev !acc

(** Path between two leaves through their LCA, as an arrow-separated kind
    string ("Ident^Index^Assign_Index!Ident" style). *)
let path_between (pa : string list) (pb : string list) : string =
  (* root-last lists; strip the common suffix *)
  let ra = List.rev pa and rb = List.rev pb in
  let rec strip a b =
    match (a, b) with
    | x :: a', y :: b' when x = y -> (
        match (a', b') with
        | [], _ | _, [] -> (x :: a', x :: b')  (* keep the LCA itself *)
        | x' :: _, y' :: _ when x' = y' -> strip a' b'
        | _ -> (a', b'))
    | _ -> (a, b)
  in
  let up_rev, down = strip ra rb in
  let up = List.rev up_rev in
  String.concat "^" up ^ "!" ^ String.concat "_" down

(** Extract up to [max_contexts] path contexts with path length at most
    [max_path]. Selection is deterministic: pairs are enumerated in leaf
    order and sampled evenly. *)
let extract ?(max_contexts = 24) ?(max_path = 9) (t : tree) : context list =
  let leaves = Array.of_list (leaves_with_paths t) in
  let n = Array.length leaves in
  let all = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let la, pa = leaves.(i) and lb, pb = leaves.(j) in
      if List.length pa + List.length pb <= 2 * max_path then
        all := { left = la; path = path_between pa pb; right = lb } :: !all
    done
  done;
  let all = Array.of_list (List.rev !all) in
  let total = Array.length all in
  if total <= max_contexts then Array.to_list all
  else begin
    (* even deterministic subsample *)
    let out = ref [] in
    for k = max_contexts - 1 downto 0 do
      out := all.(k * total / max_contexts) :: !out
    done;
    !out
  end

(** Contexts of a loop statement (the paper's unit of embedding). *)
let contexts_of_stmt ?max_contexts ?max_path (s : Minic.Ast.stmt) : context list
    =
  extract ?max_contexts ?max_path (tree_of_stmt s)
