lib/embedding/code2vec.ml: Array Ast_path List Nn Vocab
