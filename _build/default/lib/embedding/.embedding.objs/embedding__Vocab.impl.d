lib/embedding/vocab.ml: Char String
