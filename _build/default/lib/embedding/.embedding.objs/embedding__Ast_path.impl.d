lib/embedding/ast_path.ml: Array Fun Int64 List Minic Option Printf String
