(** Hashing vocabularies for terminals and paths.

    Instead of building explicit vocabularies over the 10,000-loop corpus
    (and dealing with out-of-vocabulary tokens at inference), tokens and
    paths hash into fixed-size embedding tables — the standard
    feature-hashing trick. The paper notes that variable *names* biased the
    embedding, which its dataset mitigated by renaming; we additionally
    normalize single-letter identifier classes so [a[i] = b[i]] and
    [x[j] = y[j]] collide, which is the desired behaviour. *)

type t = { n_tokens : int; n_paths : int }

let default = { n_tokens = 512; n_paths = 2048 }

let fnv (s : string) : int =
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c ->
      h := (!h lxor Char.code c) * 0x01000193;
      h := !h land 0x3FFFFFFF)
    s;
  !h

(** Normalize a terminal before hashing: numerals by magnitude bucket,
    identifiers case-folded. *)
let normalize_token (s : string) : string =
  match int_of_string_opt s with
  | Some n ->
      let mag =
        if n = 0 then "zero"
        else if abs n < 8 then "small"
        else if abs n < 128 then "medium"
        else if abs n < 4096 then "large"
        else "huge"
      in
      "num:" ^ mag
  | None -> String.lowercase_ascii s

let token_id (v : t) (s : string) : int = fnv (normalize_token s) mod v.n_tokens

let path_id (v : t) (s : string) : int = fnv s mod v.n_paths
