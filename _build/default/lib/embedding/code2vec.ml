(** The code2vec model: learned embeddings for path contexts, combined by a
    fully-connected layer and aggregated with soft attention into a single
    fixed-length code vector (Alon et al., POPL 2019 — the embedding
    generator the paper plugs in front of its RL agent).

    For a snippet with contexts {(l, p, r)}:

    {v x_c   = [E_tok[l]; E_path[p]; E_tok[r]]
       h_c   = tanh(W x_c + b)
       alpha = softmax_c (h_c . a)
       code  = sum_c alpha_c h_c v}

    The model trains end-to-end: the RL objective's gradient flows through
    the policy network into [code], and {!backward} pushes it through the
    attention, the combiner, and the embedding tables. *)

type config = {
  d_token : int;
  d_path : int;
  d_code : int;  (** the paper's "340 features" — configurable *)
  vocab : Vocab.t;
  max_contexts : int;
  use_attention : bool;  (** false = mean pooling (ablation) *)
}

let default_config =
  { d_token = 32; d_path = 48; d_code = 128; vocab = Vocab.default;
    max_contexts = 24; use_attention = true }

(** The paper-faithful configuration (340-dimensional code vectors);
    ~3x slower to train than [default_config]. *)
let paper_config = { default_config with d_code = 340 }

type t = {
  cfg : config;
  tok : Nn.Tensor.mat;  (** n_tokens x d_token *)
  g_tok : Nn.Tensor.mat;
  path : Nn.Tensor.mat;  (** n_paths x d_path *)
  g_path : Nn.Tensor.mat;
  combine : Nn.Dense.t;  (** (2 d_token + d_path) -> d_code *)
  attn : Nn.Tensor.vec;  (** d_code *)
  g_attn : Nn.Tensor.vec;
}

let create ?(cfg = default_config) (rng : Nn.Rng.t) : t =
  {
    cfg;
    tok = Nn.Tensor.mat_xavier rng cfg.vocab.Vocab.n_tokens cfg.d_token;
    g_tok = Nn.Tensor.mat_create cfg.vocab.Vocab.n_tokens cfg.d_token;
    path = Nn.Tensor.mat_xavier rng cfg.vocab.Vocab.n_paths cfg.d_path;
    g_path = Nn.Tensor.mat_create cfg.vocab.Vocab.n_paths cfg.d_path;
    combine =
      Nn.Dense.create rng ~in_dim:((2 * cfg.d_token) + cfg.d_path)
        ~out_dim:cfg.d_code;
    attn = Array.init cfg.d_code (fun _ -> Nn.Rng.range rng ~lo:(-0.1) ~hi:0.1);
    g_attn = Nn.Tensor.vec_create cfg.d_code;
  }

(* table row views *)
let row (m : Nn.Tensor.mat) (i : int) : Nn.Tensor.vec =
  Array.sub m.Nn.Tensor.data (i * m.Nn.Tensor.cols) m.Nn.Tensor.cols

let row_add (m : Nn.Tensor.mat) (i : int) (v : Nn.Tensor.vec) : unit =
  let base = i * m.Nn.Tensor.cols in
  for j = 0 to m.Nn.Tensor.cols - 1 do
    m.Nn.Tensor.data.(base + j) <- m.Nn.Tensor.data.(base + j) +. v.(j)
  done

type ids = { li : int; pi : int; ri : int }

type cache = {
  ids : ids array;
  xs : Nn.Tensor.vec array;  (** concatenated inputs *)
  hs : Nn.Tensor.vec array;  (** tanh outputs *)
  alphas : Nn.Tensor.vec;
  code : Nn.Tensor.vec;
}

(** Map contexts to vocabulary ids. *)
let encode (t : t) (ctxs : Ast_path.context list) : ids array =
  let v = t.cfg.vocab in
  ctxs
  |> List.map (fun c ->
         { li = Vocab.token_id v c.Ast_path.left;
           pi = Vocab.path_id v c.Ast_path.path;
           ri = Vocab.token_id v c.Ast_path.right })
  |> Array.of_list

let forward_ids (t : t) (ids : ids array) : cache =
  let n = max 1 (Array.length ids) in
  let ids = if Array.length ids = 0 then [| { li = 0; pi = 0; ri = 0 } |] else ids in
  let xs =
    Array.map
      (fun { li; pi; ri } ->
        Array.concat [ row t.tok li; row t.path pi; row t.tok ri ])
      ids
  in
  let hs =
    Array.map (fun x -> Nn.Tensor.tanh_fwd (Nn.Dense.forward t.combine x)) xs
  in
  let alphas =
    if t.cfg.use_attention then
      Nn.Tensor.softmax (Array.map (fun h -> Nn.Tensor.dot h t.attn) hs)
    else Array.make n (1.0 /. float_of_int n)
  in
  let code = Nn.Tensor.vec_create t.cfg.d_code in
  for c = 0 to n - 1 do
    Nn.Tensor.axpy ~alpha:alphas.(c) hs.(c) code
  done;
  { ids; xs; hs; alphas; code }

let forward (t : t) (ctxs : Ast_path.context list) : cache =
  forward_ids t (encode t ctxs)

(** Push dL/dcode back through attention, combiner, and tables. *)
let backward (t : t) (c : cache) ~(dcode : Nn.Tensor.vec) : unit =
  let n = Array.length c.ids in
  let d_tok = t.cfg.d_token and d_path = t.cfg.d_path in
  (* attention backward *)
  let dalpha = Array.map (fun h -> Nn.Tensor.dot dcode h) c.hs in
  let mean = ref 0.0 in
  for k = 0 to n - 1 do
    mean := !mean +. (c.alphas.(k) *. dalpha.(k))
  done;
  for ci = 0 to n - 1 do
    let ds =
      if t.cfg.use_attention then c.alphas.(ci) *. (dalpha.(ci) -. !mean)
      else 0.0
    in
    (* dL/dh_c = alpha_c * dcode + ds * attn;  da += ds * h_c *)
    let dh = Nn.Tensor.vec_create t.cfg.d_code in
    Nn.Tensor.axpy ~alpha:c.alphas.(ci) dcode dh;
    Nn.Tensor.axpy ~alpha:ds t.attn dh;
    Nn.Tensor.axpy ~alpha:ds c.hs.(ci) t.g_attn;
    (* tanh + dense backward *)
    let dz = Nn.Tensor.tanh_bwd c.hs.(ci) dh in
    let dx = Nn.Dense.backward t.combine ~x:c.xs.(ci) ~dy:dz in
    (* split dx into the three table rows *)
    let { li; pi; ri } = c.ids.(ci) in
    row_add t.g_tok li (Array.sub dx 0 d_tok);
    row_add t.g_path pi (Array.sub dx d_tok d_path);
    row_add t.g_tok ri (Array.sub dx (d_tok + d_path) d_tok)
  done

let params (t : t) : Nn.Optim.params =
  [ (t.tok.Nn.Tensor.data, t.g_tok.Nn.Tensor.data);
    (t.path.Nn.Tensor.data, t.g_path.Nn.Tensor.data);
    (t.attn, t.g_attn) ]
  @ Nn.Dense.params t.combine

let zero_grad (t : t) : unit =
  Nn.Tensor.mat_fill_zero t.g_tok;
  Nn.Tensor.mat_fill_zero t.g_path;
  Nn.Tensor.fill_zero t.g_attn;
  Nn.Dense.zero_grad t.combine
