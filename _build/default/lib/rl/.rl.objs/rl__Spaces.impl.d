lib/rl/spaces.ml: Array Float Fun List
