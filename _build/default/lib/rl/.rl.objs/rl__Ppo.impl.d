lib/rl/ppo.ml: Agent Array Embedding List Nn Spaces
