lib/rl/checkpoint.ml: Agent Fun Printf
