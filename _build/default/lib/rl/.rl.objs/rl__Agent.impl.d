lib/rl/agent.ml: Array Embedding Float List Nn Spaces
