(** Agent checkpoints.

    The paper's deployment story (Section 4.2) is train-once /
    infer-forever: the trained policy ships with the compiler and makes a
    single forward pass per loop. These helpers persist a trained agent —
    embedding tables, trunk, heads, and action-space configuration — so the
    CLI can train in one invocation and predict in another.

    Format: a magic string + version, then the agent record marshalled
    (the model is plain data — float arrays and configuration records — so
    OCaml's Marshal is safe here; the file is tied to the OCaml version
    like any Marshal artifact). *)

let magic = "neurovec-agent"

let version = 1

exception Bad_checkpoint of string

let save (agent : Agent.t) (path : string) : unit =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_value oc (magic, version);
      output_value oc agent)

let load (path : string) : Agent.t =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (match (input_value ic : string * int) with
      | m, v when m = magic && v = version -> ()
      | m, v ->
          raise
            (Bad_checkpoint
               (Printf.sprintf "expected %s v%d, found %s v%d" magic version m v))
      | exception _ -> raise (Bad_checkpoint "not an agent checkpoint"));
      (input_value ic : Agent.t))
