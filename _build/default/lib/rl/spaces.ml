(** Action spaces for the vectorization agent.

    The action picks VF and IF from powers of two up to the architectural
    maxima (paper eq. 3): VF in 2^0..2^6, IF in 2^0..2^4 — the same 35-point
    grid as the paper's i7/AVX2 target. Three encodings are evaluated
    (Figure 6):

    - [Discrete]: two categorical heads indexing the VF and IF arrays;
    - [Continuous1]: one gaussian scalar encoding both factors (decoded by
      rounding into the flattened 35-point grid);
    - [Continuous2]: two gaussian scalars, one per factor. *)

let vf_values = [| 1; 2; 4; 8; 16; 32; 64 |]

let if_values = [| 1; 2; 4; 8; 16 |]

let n_vf = Array.length vf_values

let n_if = Array.length if_values

let n_flat = n_vf * n_if

type kind = Discrete | Continuous1 | Continuous2

(** A concrete action: indices into the factor arrays. *)
type action = { vf_idx : int; if_idx : int }

let vf_of (a : action) = vf_values.(a.vf_idx)

let if_of (a : action) = if_values.(a.if_idx)

let flat_of (a : action) = (a.vf_idx * n_if) + a.if_idx

let of_flat (k : int) : action =
  let k = max 0 (min (n_flat - 1) k) in
  { vf_idx = k / n_if; if_idx = k mod n_if }

let clamp_idx ~n (x : float) : int =
  let i = int_of_float (Float.round x) in
  max 0 (min (n - 1) i)

let all_actions : action list =
  List.concat_map
    (fun v -> List.map (fun i -> { vf_idx = v; if_idx = i })
        (List.init n_if Fun.id))
    (List.init n_vf Fun.id)

let kind_to_string = function
  | Discrete -> "discrete"
  | Continuous1 -> "continuous-1"
  | Continuous2 -> "continuous-2"
