(** Figure 1: performance of the dot-product kernel for every (VF, IF),
    normalized to the baseline cost model's choice.

    Paper facts to reproduce in shape: the baseline picks (VF=4, IF=2) and
    is ~2.6x faster than scalar; a large majority of the 35 grid points
    beat the baseline; the optimum sits at a much wider factor than the
    baseline chose; extreme over-vectorization collapses. *)

let dot_kernel =
  Dataset.Program.make ~family:"fig1" "dot_product"
    "int vec[512];\n\
     int kernel() {\n\
    \  int sum = 0;\n\
    \  int i;\n\
    \  for (i = 0; i < 512; i++) {\n\
    \    sum += vec[i] * vec[i];\n\
    \  }\n\
    \  return sum;\n\
     }\n"

type result = {
  baseline_plan : int * int;
  scalar_over_baseline : float;
  grid : (int * int * float) list;  (** (vf, if, speedup over baseline) *)
  best : int * int * float;
  improving : int;  (** grid points beating the baseline *)
  total : int;
}

let run () : result =
  let base = Neurovec.Pipeline.run_baseline dot_kernel in
  let baseline_plan =
    match base.Neurovec.Pipeline.decisions with
    | d :: _ ->
        ( d.Vectorizer.Planner.d_applied.Vectorizer.Transform.vf,
          d.Vectorizer.Planner.d_applied.Vectorizer.Transform.if_ )
    | [] -> (1, 1)
  in
  let t_base = base.Neurovec.Pipeline.exec_seconds in
  let scalar =
    (Neurovec.Pipeline.run_with_pragma dot_kernel ~vf:1 ~if_:1)
      .Neurovec.Pipeline.exec_seconds
  in
  let grid =
    List.concat_map
      (fun vf ->
        List.map
          (fun if_ ->
            let r = Neurovec.Pipeline.run_with_pragma dot_kernel ~vf ~if_ in
            (vf, if_, t_base /. r.Neurovec.Pipeline.exec_seconds))
          (Array.to_list Rl.Spaces.if_values))
      (Array.to_list Rl.Spaces.vf_values)
  in
  let best =
    List.fold_left
      (fun (bv, bi, bs) (v, i, s) -> if s > bs then (v, i, s) else (bv, bi, bs))
      (1, 1, 0.0) grid
  in
  {
    baseline_plan;
    scalar_over_baseline = scalar /. t_base;
    grid;
    best;
    improving = List.length (List.filter (fun (_, _, s) -> s > 1.0) grid);
    total = List.length grid;
  }

let print () =
  Common.header "Figure 1: dot product, all (VF, IF), normalized to baseline";
  let r = run () in
  let bvf, bif = r.baseline_plan in
  Printf.printf "baseline cost model picked (VF=%d, IF=%d)\n" bvf bif;
  Printf.printf "baseline over scalar: %.2fx   (paper: 2.6x)\n"
    r.scalar_over_baseline;
  Printf.printf "%6s" "VF\\IF";
  Array.iter (fun i -> Printf.printf "%8d" i) Rl.Spaces.if_values;
  print_newline ();
  Array.iter
    (fun vf ->
      Printf.printf "%6d" vf;
      List.iter
        (fun (v, _, s) -> if v = vf then Printf.printf "%8.2f" s)
        r.grid;
      print_newline ())
    Rl.Spaces.vf_values;
  let bv, bi, bs = r.best in
  Printf.printf
    "best (VF=%d, IF=%d) at %.2fx over baseline (paper: (64,8), 1.2x)\n" bv bi
    bs;
  Printf.printf "%d / %d grid points beat the baseline (paper: 26 / 35)\n"
    r.improving r.total
