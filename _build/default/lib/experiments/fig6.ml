(** Figure 6: reward mean and training loss for the three action-space
    definitions.

    Paper fact to reproduce in shape: the discrete two-index action space
    converges to the best reward; the continuous encodings (one or two
    rounded gaussians) lag behind. *)

let steps () = Common.scaled 5000

let run () =
  List.map
    (fun space ->
      Sweep.run_one ~space
        ~label:(Rl.Spaces.kind_to_string space)
        ~hyper:{ Rl.Ppo.default_hyper with batch_size = 500 }
        ~steps:(steps ()) ~seed:31 ())
    [ Rl.Spaces.Discrete; Rl.Spaces.Continuous1; Rl.Spaces.Continuous2 ]

let print () =
  Common.header "Figure 6: action-space definitions (reward mean / loss)";
  let curves = run () in
  Sweep.print_curves curves;
  Printf.printf "\nfinal reward means:\n";
  List.iter
    (fun c -> Printf.printf "  %-16s %+0.3f\n" c.Sweep.label c.Sweep.final_reward)
    curves
