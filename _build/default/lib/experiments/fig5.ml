(** Figure 5: reward mean and training loss for different learning rates,
    FCNN architectures, and batch sizes.

    Paper facts to reproduce in shape: lr 5e-5 reaches the highest reward
    (5e-3 never gets there and has the highest loss); architectures of
    32x32 / 64x64 / 128x128 barely differ; smaller batches converge with
    fewer samples, but the policy still reaches a clearly positive reward
    mean well before the full step budget.

    Note on scale: we run at reduced step budgets (the paper itself
    observes convergence "with much less steps" than its 500k cap);
    NEUROVEC_SCALE raises the budget toward paper scale. *)

let steps () = Common.scaled 5000

let base_hyper = { Rl.Ppo.default_hyper with batch_size = 500 }

let lr_sweep () =
  List.map
    (fun lr ->
      Sweep.run_one
        ~label:(Printf.sprintf "lr=%g" lr)
        ~hyper:{ base_hyper with Rl.Ppo.lr }
        ~steps:(steps ()) ~seed:21 ())
    [ 5e-3; 5e-4; 5e-5 ]

let arch_sweep () =
  List.map
    (fun hidden ->
      Sweep.run_one
        ~label:
          (Printf.sprintf "fcnn=%s"
             (String.concat "x" (List.map string_of_int hidden)))
        ~hidden ~hyper:base_hyper ~steps:(steps ()) ~seed:22 ())
    [ [ 32; 32 ]; [ 64; 64 ]; [ 128; 128 ] ]

let batch_sweep () =
  List.map
    (fun batch_size ->
      Sweep.run_one
        ~label:(Printf.sprintf "batch=%d" batch_size)
        ~hyper:{ base_hyper with Rl.Ppo.batch_size }
        ~steps:(steps ()) ~seed:23 ())
    [ 500; 1000; 4000 ]

let print () =
  Common.header "Figure 5a: learning-rate sweep (reward mean / loss)";
  let lrs = lr_sweep () in
  Sweep.print_curves lrs;
  Common.header "Figure 5b: FCNN architecture sweep";
  let archs = arch_sweep () in
  Sweep.print_curves archs;
  Common.header "Figure 5c: batch-size sweep";
  let batches = batch_sweep () in
  Sweep.print_curves batches;
  Printf.printf "\nfinal reward means:\n";
  List.iter
    (fun c -> Printf.printf "  %-16s %+0.3f\n" c.Sweep.label c.Sweep.final_reward)
    (lrs @ archs @ batches)
