lib/experiments/sweep.ml: Array Common Dataset Embedding Lazy List Neurovec Nn Printf Rl
