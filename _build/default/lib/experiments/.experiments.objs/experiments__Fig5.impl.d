lib/experiments/fig5.ml: Common List Printf Rl String Sweep
