lib/experiments/fig8.ml: Array Common Dataset List Printf Trained
