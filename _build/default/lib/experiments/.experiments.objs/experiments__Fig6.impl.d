lib/experiments/fig6.ml: Common List Printf Rl Sweep
