lib/experiments/fig9.ml: Array Common Dataset List Printf Trained
