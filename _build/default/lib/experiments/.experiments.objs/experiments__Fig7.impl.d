lib/experiments/fig7.ml: Array Common Dataset Hashtbl List Printf Trained
