lib/experiments/ablations.ml: Array Common Dataset Embedding Fig1 List Machine Minic Neurovec Nn Printf Rl String
