lib/experiments/fig2.ml: Array Common Dataset List Neurovec Printf Rl
