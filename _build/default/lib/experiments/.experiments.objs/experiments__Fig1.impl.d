lib/experiments/fig1.ml: Array Common Dataset List Neurovec Printf Rl Vectorizer
