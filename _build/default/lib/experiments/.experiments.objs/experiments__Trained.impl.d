lib/experiments/trained.ml: Agents Array Common Dataset Embedding Hashtbl Lazy List Minic Neurovec Nn Rl
