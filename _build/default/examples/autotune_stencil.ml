(* Scenario: auto-tuning the vectorization factors of an image-processing
   pipeline (the paper's intro motivation: engineers hand-writing per-loop
   pragmas).

     dune exec examples/autotune_stencil.exe

   The program has three loops with very different characters — a blur
   stencil, a strided channel split, and a threshold pass — so one global
   (VF, IF) cannot be right. We brute-force each loop independently and
   compare: baseline cost model, one-global-pragma, and per-loop tuning. *)

let image_pipeline =
  Dataset.Program.make ~family:"example" "image_pipeline"
    "int img[66][512]; int blur[64][512];\n\
     int r_chan[8192]; int g_chan[8192]; int rgb[16384];\n\
     int mask_out[8192];\n\
     int kernel() {\n\
    \  int i;\n\
    \  int j;\n\
    \  for (i = 0; i < 64; i++) {\n\
    \    for (j = 0; j < 512; j++) {\n\
    \      blur[i][j] = (img[i][j] + img[i+1][j] + img[i+2][j]) / 3;\n\
    \    }\n\
    \  }\n\
    \  for (i = 0; i < 8192; i++) {\n\
    \    r_chan[i] = rgb[2*i];\n\
    \    g_chan[i] = rgb[2*i+1];\n\
    \  }\n\
    \  for (i = 0; i < 8192; i++) {\n\
    \    mask_out[i] = r_chan[i] > 128 ? g_chan[i] : 0;\n\
    \  }\n\
    \  return blur[10][10] + mask_out[100];\n\
     }\n"

let () =
  let p = image_pipeline in
  let base = (Neurovec.Pipeline.run_baseline p).Neurovec.Pipeline.exec_seconds in
  Printf.printf "baseline cost model: %.3e s\n" base;

  (* one global pragma — what -force-vector-width would do; the paper
     rejects this because one size cannot fit all loops *)
  let global = Neurovec.Pipeline.run_with_pragma p ~vf:8 ~if_:2 in
  Printf.printf "global (VF=8, IF=2): %.3e s (%.2fx)\n"
    global.Neurovec.Pipeline.exec_seconds
    (base /. global.Neurovec.Pipeline.exec_seconds);

  (* per-loop brute force *)
  let prog = Minic.Parser.parse_string p.Dataset.Program.p_source in
  let sites = Neurovec.Extractor.extract prog in
  let best_for (site : Neurovec.Extractor.loop_site) =
    let best = ref (1, 1, base) in
    List.iter
      (fun (a : Rl.Spaces.action) ->
        let vf = Rl.Spaces.vf_of a and if_ = Rl.Spaces.if_of a in
        let decisions =
          [ (site.Neurovec.Extractor.ordinal, Neurovec.Injector.pragma_of ~vf ~if_) ]
        in
        let t =
          (Neurovec.Pipeline.run_with_decisions p ~decisions)
            .Neurovec.Pipeline.exec_seconds
        in
        let _, _, bt = !best in
        if t < bt then best := (vf, if_, t))
      Rl.Spaces.all_actions;
    !best
  in
  let per_loop =
    List.map
      (fun site ->
        let vf, if_, t = best_for site in
        Printf.printf "  loop %d: best (VF=%d, IF=%d), alone gives %.3e s\n"
          site.Neurovec.Extractor.ordinal vf if_ t;
        (site.Neurovec.Extractor.ordinal, Neurovec.Injector.pragma_of ~vf ~if_))
      sites
  in
  let tuned =
    (Neurovec.Pipeline.run_with_decisions p ~decisions:per_loop)
      .Neurovec.Pipeline.exec_seconds
  in
  Printf.printf "per-loop tuned pragmas: %.3e s (%.2fx over baseline)\n" tuned
    (base /. tuned);
  Printf.printf
    "\n(the RL agent learns to make these per-loop calls in one inference\n\
    \ step instead of %d compilations per loop)\n"
    (List.length Rl.Spaces.all_actions)
