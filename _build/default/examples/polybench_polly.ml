(* Scenario: combining the polyhedral pipeline with vectorization pragmas
   on dense linear algebra (the paper's Section 4.1 / future-work
   discussion: "combining Polly and deep RL ... reaches 2.92x").

     dune exec examples/polybench_polly.exe

   Runs gemm through four configurations: baseline, pragma-tuned,
   Polly, and Polly + pragma, and shows where each transformation's win
   comes from (the tiled loop's working set vs the vector width). *)

let () =
  let gemm = Dataset.Polybench.programs.(0) in
  let polly_opts =
    { Neurovec.Pipeline.default_options with Neurovec.Pipeline.polly = true }
  in
  let base = Neurovec.Pipeline.run_baseline gemm in
  let t_base = base.Neurovec.Pipeline.exec_seconds in
  Printf.printf "%-28s %.3e s  (1.00x)\n" "baseline cost model" t_base;

  (* the best pragma alone, by brute force *)
  let oracle = Neurovec.Reward.create [| gemm |] in
  let act, _ = Neurovec.Reward.brute_force oracle 0 in
  let t_pragma = Neurovec.Reward.exec_seconds oracle 0 act in
  Printf.printf "%-28s %.3e s  (%.2fx)  [VF=%d IF=%d]\n" "best pragma (brute force)"
    t_pragma (t_base /. t_pragma) (Rl.Spaces.vf_of act) (Rl.Spaces.if_of act);

  (* polly alone *)
  let t_polly =
    (Neurovec.Pipeline.run_baseline ~options:polly_opts gemm)
      .Neurovec.Pipeline.exec_seconds
  in
  Printf.printf "%-28s %.3e s  (%.2fx)\n" "Polly (tiling + fusion)" t_polly
    (t_base /. t_polly);

  (* polly + the same brute-forced pragma *)
  let t_both =
    (Neurovec.Pipeline.run_with_pragma ~options:polly_opts gemm
       ~vf:(Rl.Spaces.vf_of act) ~if_:(Rl.Spaces.if_of act))
      .Neurovec.Pipeline.exec_seconds
  in
  Printf.printf "%-28s %.3e s  (%.2fx)\n" "Polly + pragma" t_both
    (t_base /. t_both);

  (* why: look at the tiled loop structure *)
  print_endline "\nwhat Polly did to the loop nest:";
  let m =
    Ir_lower.lower_program
      (Minic.Parser.parse_string gemm.Dataset.Program.p_source)
  in
  let stats = Polly.Driver.optimize m in
  Printf.printf "  fusions: %d, tiled SCoPs: %d\n" stats.Polly.Driver.fusions
    stats.Polly.Driver.tiled_scops;
  let fn = List.hd m.Ir.m_funcs in
  Printf.printf "  loop nest depth after tiling: %d (was 3)\n"
    (List.length (Ir.func_loops fn))
