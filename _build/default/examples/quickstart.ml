(* Quickstart: the public API in five minutes.

     dune exec examples/quickstart.exe

   1. Define a C program (the paper's dot-product motivating kernel).
   2. Compile it with the baseline cost model and look at the decision.
   3. Inject a vectorization pragma and compare simulated execution time.
   4. Ask the dependence analysis why a loop is (or is not) vectorizable. *)

let dot =
  Dataset.Program.make ~family:"example" "dot"
    "int vec[512];\n\
     int kernel() {\n\
    \  int sum = 0;\n\
    \  int i;\n\
    \  for (i = 0; i < 512; i++) sum += vec[i] * vec[i];\n\
    \  return sum;\n\
     }\n"

let illegal =
  Dataset.Program.make ~family:"example" "recurrence"
    "int a[512];\n\
     int kernel() {\n\
    \  int i;\n\
    \  for (i = 1; i < 512; i++) a[i] = a[i-1] + 1;\n\
    \  return a[511];\n\
     }\n"

let () =
  (* -- 2: baseline compile --------------------------------------- *)
  let base = Neurovec.Pipeline.run_baseline dot in
  print_endline "baseline cost model (what clang -O3 would do):";
  List.iter
    (fun d ->
      Printf.printf "  loop %d -> VF=%d IF=%d\n" d.Vectorizer.Planner.d_loop_id
        d.Vectorizer.Planner.d_applied.Vectorizer.Transform.vf
        d.Vectorizer.Planner.d_applied.Vectorizer.Transform.if_)
    base.Neurovec.Pipeline.decisions;
  Printf.printf "  simulated execution: %.3e s\n\n"
    base.Neurovec.Pipeline.exec_seconds;

  (* -- 3: pragma injection ----------------------------------------- *)
  print_endline "injecting #pragma clang loop vectorize_width(16) interleave_count(2):";
  let tuned = Neurovec.Pipeline.run_with_pragma dot ~vf:16 ~if_:2 in
  Printf.printf "  simulated execution: %.3e s (%.2fx over baseline)\n\n"
    tuned.Neurovec.Pipeline.exec_seconds
    (base.Neurovec.Pipeline.exec_seconds
    /. tuned.Neurovec.Pipeline.exec_seconds);

  (* -- 4: legality ------------------------------------------------- *)
  print_endline "asking legality about a loop-carried recurrence:";
  let m =
    Ir_lower.lower_program
      (Minic.Parser.parse_string illegal.Dataset.Program.p_source)
  in
  let fn = List.hd m.Ir.m_funcs in
  List.iter
    (fun info ->
      Printf.printf "  vectorizable: %b\n"
        info.Analysis.Loopinfo.li_vectorizable;
      List.iter (Printf.printf "  reason: %s\n") info.Analysis.Loopinfo.li_reasons)
    (Analysis.Loopinfo.innermost_infos fn);

  (* the reward the RL agent would see for the tuned pragma *)
  let oracle = Neurovec.Reward.create [| dot |] in
  let r =
    Neurovec.Reward.reward oracle 0 { Rl.Spaces.vf_idx = 4; if_idx = 1 }
  in
  Printf.printf "\nRL reward for (VF=16, IF=2): %+0.3f (positive = beats baseline)\n" r
