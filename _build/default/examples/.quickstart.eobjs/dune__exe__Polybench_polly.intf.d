examples/polybench_polly.mli:
