examples/quickstart.ml: Analysis Dataset Ir Ir_lower List Minic Neurovec Printf Rl Vectorizer
