examples/autotune_stencil.ml: Dataset List Minic Neurovec Printf Rl
