examples/polybench_polly.ml: Array Dataset Ir Ir_lower List Minic Neurovec Polly Printf Rl
