examples/quickstart.mli:
