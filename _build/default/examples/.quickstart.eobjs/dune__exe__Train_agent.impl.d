examples/train_agent.ml: Array Dataset List Neurovec Printf Rl
