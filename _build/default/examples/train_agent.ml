(* Scenario: the paper's workflow in miniature — train the PPO agent on a
   synthetic loop corpus, then deploy it on code it has never seen.

     dune exec examples/train_agent.exe

   Generates 150 loop programs, trains for 4,000 environment steps
   (compilations), and then predicts pragmas for two held-out programs,
   comparing against the baseline cost model and brute force. *)

let () =
  let corpus = Dataset.Loopgen.generate ~seed:101 170 in
  let train_set = Array.sub corpus 0 150 in
  let held_out = Array.sub corpus 150 20 in
  let fw = Neurovec.Framework.create ~seed:7 train_set in
  Printf.printf "training on %d programs...\n%!" (Array.length train_set);
  ignore
    (Neurovec.Framework.train fw
       ~hyper:{ Rl.Ppo.default_hyper with batch_size = 400 }
       ~total_steps:4000
       ~progress:(fun st ->
         Printf.printf "  update %2d  steps %5d  reward_mean %+0.3f\n%!"
           st.Rl.Ppo.update st.Rl.Ppo.steps st.Rl.Ppo.reward_mean));
  Printf.printf "\nreward oracle ran %d real compilations (rest memoized)\n"
    fw.Neurovec.Framework.oracle.Neurovec.Reward.evaluations;

  (* deploy on held-out programs: inference is one forward pass per loop *)
  Printf.printf "\nheld-out programs (speedup over baseline):\n";
  let speedups =
    Array.to_list held_out
    |> List.map (fun p ->
           let base =
             (Neurovec.Pipeline.run_baseline p).Neurovec.Pipeline.exec_seconds
           in
           let decisions =
             Neurovec.Framework.predict_decisions fw.Neurovec.Framework.agent p
           in
           let rl =
             (Neurovec.Pipeline.run_with_decisions p ~decisions)
               .Neurovec.Pipeline.exec_seconds
           in
           let oracle = Neurovec.Reward.create [| p |] in
           let act, _ = Neurovec.Reward.brute_force oracle 0 in
           let bf = Neurovec.Reward.exec_seconds oracle 0 act in
           Printf.printf "  %-22s RL %.2fx   brute force %.2fx\n"
             p.Dataset.Program.p_name (base /. rl) (base /. bf);
           (base /. rl, base /. bf))
  in
  let geo l = exp (List.fold_left (fun a x -> a +. log x) 0.0 l
                   /. float_of_int (List.length l)) in
  Printf.printf "\ngeomean: RL %.2fx, brute force %.2fx\n"
    (geo (List.map fst speedups))
    (geo (List.map snd speedups))
