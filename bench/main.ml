(* The benchmark harness: regenerates every figure of the paper's
   evaluation (there are no numbered tables; Figures 1, 2, 5, 6, 7, 8, 9
   are the artifacts), plus the ablation benches DESIGN.md calls out and a
   Bechamel microbenchmark suite for the toolchain itself.

     dune exec bench/main.exe               # everything
     dune exec bench/main.exe -- fig1 fig7  # selected experiments
     dune exec bench/main.exe -- --jobs 4 par  # parallel-engine check
     NEUROVEC_SCALE=0.2 dune exec ...       # faster smoke run

   Results and paper-vs-measured commentary are recorded in
   EXPERIMENTS.md. *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ("fig1", "dot-product (VF, IF) grid vs baseline", Experiments.Fig1.print);
    ("fig2", "brute force vs baseline on the LLVM suite", Experiments.Fig2.print);
    ("fig5", "hyperparameter sweeps (lr / arch / batch)", Experiments.Fig5.print);
    ("fig6", "action-space definitions", Experiments.Fig6.print);
    ("fig7", "12 held-out benchmarks, all methods", Experiments.Fig7.print);
    ("fig8", "PolyBench transfer", Experiments.Fig8.print);
    ("fig9", "MiBench transfer", Experiments.Fig9.print);
    ("ablations", "design-choice ablations", Experiments.Ablations.print);
    ("par", "parallel engine: serial vs pool bit-identity + speedup",
     Experiments.Parbench.print);
    ("sweepbench",
     "shared-artifact sweep: legacy vs fast bit-identity + BENCH_sweep.json",
     Experiments.Sweepbench.print);
    ("inferbench",
     "batched NN inference: serial vs batched bit-identity + BENCH_infer.json",
     Experiments.Inferbench.print);
    ("servebench",
     "serve daemon: cold vs warm throughput, crash recovery + BENCH_serve.json",
     Experiments.Servebench.print);
    ("verifybench",
     "bytecode VM vs tree walker: steps/sec, verified-sweep overhead + \
      BENCH_verify.json",
     Experiments.Verifybench.print);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the toolchain itself                     *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let dot = Experiments.Fig1.dot_kernel in
  let parse_test =
    Test.make ~name:"parse+lower dot kernel"
      (Staged.stage (fun () ->
           ignore
             (Ir_lower.lower_program
                (Minic.Parser.parse_string dot.Dataset.Program.p_source))))
  in
  let compile_test =
    Test.make ~name:"full pipeline (baseline)"
      (Staged.stage (fun () -> ignore (Neurovec.Pipeline.run_baseline dot)))
  in
  let vectorize_test =
    Test.make ~name:"full pipeline (VF=8, IF=4 pragma)"
      (Staged.stage (fun () ->
           ignore (Neurovec.Pipeline.run_with_pragma dot ~vf:8 ~if_:4)))
  in
  let embed_test =
    let rng = Nn.Rng.create 1 in
    let c2v = Embedding.Code2vec.create rng in
    let prog = Minic.Parser.parse_string dot.Dataset.Program.p_source in
    let ctxs =
      Embedding.Ast_path.contexts_of_stmt
        (Neurovec.Extractor.embedding_stmt prog)
    in
    let ids = Embedding.Code2vec.encode c2v ctxs in
    Test.make ~name:"code2vec forward"
      (Staged.stage (fun () -> ignore (Embedding.Code2vec.forward_ids c2v ids)))
  in
  let frontend_cold_test =
    Test.make ~name:"front end: cold (parse+sema)"
      (Staged.stage (fun () ->
           Neurovec.Frontend.clear ();
           ignore (Neurovec.Frontend.checked dot)))
  in
  let frontend_warm_test =
    Test.make ~name:"front end: cached artifact"
      (Staged.stage (fun () -> ignore (Neurovec.Frontend.checked dot)))
  in
  let interp_test =
    let m =
      Ir_lower.lower_program
        (Minic.Parser.parse_string dot.Dataset.Program.p_source)
    in
    let fn = List.hd m.Ir.m_funcs in
    Test.make ~name:"interpreter: dot kernel"
      (Staged.stage (fun () ->
           let st = Ir_interp.init_state m in
           ignore (Ir_interp.run_func st fn ())))
  in
  let tests =
    Test.make_grouped ~name:"neurovectorizer"
      [ parse_test; compile_test; vectorize_test; frontend_cold_test;
        frontend_warm_test; embed_test; interp_test ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "\n=== Microbenchmarks (ns per run) ===\n";
  let rows = ref [] in
  Hashtbl.iter
    (fun name v ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, est) -> Printf.printf "%-48s %14.0f ns\n" name est)
    (List.sort compare !rows)

(* consume [--jobs N] / [--jobs=N] / [--deadline S] and return the
   remaining arguments *)
let rec parse_jobs = function
  | [] -> []
  | "--jobs" :: n :: rest | "-j" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n -> Neurovec.Parpool.set_jobs n
      | None -> Printf.eprintf "bench: ignoring --jobs %s (not a number)\n%!" n);
      parse_jobs rest
  | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
      (match
         int_of_string_opt (String.sub arg 7 (String.length arg - 7))
       with
      | Some n -> Neurovec.Parpool.set_jobs n
      | None -> Printf.eprintf "bench: ignoring %s (not a number)\n%!" arg);
      parse_jobs rest
  | "--deadline" :: s :: rest ->
      (match float_of_string_opt s with
      | Some s -> Neurovec.Supervisor.set_deadline s
      | None ->
          Printf.eprintf "bench: ignoring --deadline %s (not a number)\n%!" s);
      parse_jobs rest
  | arg :: rest -> arg :: parse_jobs rest

let () =
  let args = parse_jobs (Array.to_list Sys.argv |> List.tl) in
  let selected =
    match args with
    | [] -> List.map (fun (id, _, _) -> id) experiments @ [ "micro" ]
    | _ -> args
  in
  Printf.printf "NeuroVectorizer benchmark harness (scale %.2f, jobs %d)\n"
    Experiments.Common.scale
    (Neurovec.Parpool.jobs ());
  List.iter
    (fun id ->
      if id = "micro" then micro ()
      else
        match List.find_opt (fun (i, _, _) -> i = id) experiments with
        | Some (_, _, f) ->
            (* scope the pipeline scoreboard (per-phase wall time, cache hit
               rates) to this experiment *)
            Neurovec.Stats.reset ();
            let t0 = Sys.time () in
            f ();
            Printf.printf "[%s done in %.1fs cpu]\n%!" id (Sys.time () -. t0);
            Experiments.Common.pipeline_stats ()
        | None ->
            Printf.printf "unknown experiment %s; available: %s micro\n" id
              (String.concat " " (List.map (fun (i, _, _) -> i) experiments)))
    selected
