(* Differential testing of the vectorizer against a scalar reference.

   The oracle: for any generated program and ANY (VF, IF) pragma — legal
   requests get applied, illegal ones clamped — the full pipeline
   (LICM/CSE, planner, vectorizer, LICM again) must compute exactly what a
   plain scalar lowering computes: same return value, same final memory.
   Integer memory must match bit for bit; floating-point memory within a
   relative tolerance, because vectorizing a float reduction reassociates
   the sum.

   This is the safety net under the parallel evaluation engine: every
   measurement the pool hands out is a pipeline run, so "the pipeline
   never changes program semantics" is what makes racing evaluations
   harmless. *)

let tol = 1e-3

let find_fn (m : Ir.modul) (name : string) : Ir.func =
  match List.find_opt (fun f -> f.Ir.fn_name = name) m.Ir.m_funcs with
  | Some f -> f
  | None -> Alcotest.failf "function %s not found" name

(* bit-exact equality for engine cross-checks: NaN bits included *)
let rv_bits_equal (a : Ir_interp.rvalue_v option)
    (b : Ir_interp.rvalue_v option) : bool =
  match (a, b) with
  | Some (Ir_interp.VF x), Some (Ir_interp.VF y) ->
      Int64.bits_of_float x = Int64.bits_of_float y
  | Some (Ir_interp.VVF x), Some (Ir_interp.VVF y) ->
      Array.length x = Array.length y
      && Array.for_all2
           (fun p q -> Int64.bits_of_float p = Int64.bits_of_float q)
           x y
  | _ -> a = b

let mem_bits_equal (a : Ir_interp.mem) (b : Ir_interp.mem) : bool =
  match (a, b) with
  | Ir_interp.MI x, Ir_interp.MI y -> x = y
  | Ir_interp.MF x, Ir_interp.MF y ->
      Array.length x = Array.length y
      && Array.for_all2
           (fun p q -> Int64.bits_of_float p = Int64.bits_of_float q)
           x y
  | _ -> false

(* interpret [m]'s kernel; returns the result and the final state.  When
   the bytecode compiler accepts the module, an identically-initialized
   memory image also runs through the VM and the outcome must be
   bit-identical — result, every memory cell, and the fuel count — so
   every differential run doubles as a VM-vs-interpreter gate. *)
let interp (m : Ir.modul) (kernel : string) :
    Ir_interp.rvalue_v option * Ir_interp.state =
  let st = Ir_interp.init_state m in
  let r = Ir_interp.run_func st (find_fn m kernel) () in
  (match Ir_vm.compile m ~kernel with
  | None -> ()
  | Some prog ->
      let st2 = Ir_interp.init_state m in
      let mem =
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) st2.Ir_interp.mem [])
      in
      (match Ir_vm.run prog ~mem () with
      | exception Ir_vm.Deopt ->
          (* the VM detected a value outside its native-int invariant and
             declined at runtime; the tree-walker result stands alone *)
          ()
      | out ->
      if not (rv_bits_equal out.Ir_vm.o_result r) then
        Alcotest.failf "VM result diverged from the tree walker on %s" kernel;
      if out.Ir_vm.o_steps <> st.Ir_interp.steps then
        Alcotest.failf "VM fuel %d <> tree fuel %d on %s" out.Ir_vm.o_steps
          st.Ir_interp.steps kernel;
      List.iter
        (fun (name, mv) ->
          if not (mem_bits_equal (Hashtbl.find st.Ir_interp.mem name) mv)
          then
            Alcotest.failf "VM memory for %s diverged from the tree walker"
              name)
        mem));
  (r, st)

(* plain scalar reference: parse + lower, no optimization, no vectorizer *)
let scalar_ref (p : Dataset.Program.t) :
    Ir_interp.rvalue_v option * Ir_interp.state =
  let prog = Minic.Parser.parse_string p.Dataset.Program.p_source in
  let m = Ir_lower.lower_program ~bindings:p.Dataset.Program.p_bindings prog in
  interp m p.Dataset.Program.p_kernel

let close (a : float) (b : float) : bool =
  abs_float (a -. b) <= tol *. (abs_float a +. abs_float b +. 1.0)
  || (Float.is_nan a && Float.is_nan b)

let value_equiv (a : Ir_interp.rvalue_v option)
    (b : Ir_interp.rvalue_v option) : bool =
  match (a, b) with
  | Some (Ir_interp.VF x), Some (Ir_interp.VF y) -> close x y
  | _ -> a = b

(* exact on integer arrays, tolerant on float arrays *)
let mem_equiv (s : Ir_interp.state) (v : Ir_interp.state) : string option =
  let names (st : Ir_interp.state) =
    Hashtbl.fold (fun k _ acc -> k :: acc) st.Ir_interp.mem []
    |> List.sort compare
  in
  if names s <> names v then Some "different array sets"
  else
    List.fold_left
      (fun acc name ->
        match acc with
        | Some _ -> acc
        | None -> (
            match
              ( Hashtbl.find s.Ir_interp.mem name,
                Hashtbl.find v.Ir_interp.mem name )
            with
            | Ir_interp.MI a, Ir_interp.MI b ->
                if a = b then None
                else Some (Printf.sprintf "int array %s diverged" name)
            | Ir_interp.MF a, Ir_interp.MF b ->
                if
                  Array.length a = Array.length b
                  && Array.for_all2 close a b
                then None
                else Some (Printf.sprintf "float array %s diverged" name)
            | _ -> Some (Printf.sprintf "array %s changed type" name)))
      None (names s)

let show_value = function
  | None -> "none"
  | Some (Ir_interp.VI i) -> Int64.to_string i
  | Some (Ir_interp.VF f) -> Printf.sprintf "%h" f
  | Some (Ir_interp.VVI _ | Ir_interp.VVF _) -> "<vector>"

(* the pipeline run under [decide], checked against the scalar reference *)
let check_against_ref ~(what : string) (p : Dataset.Program.t)
    (result : Neurovec.Pipeline.result) : unit =
  let r_ref, st_ref = scalar_ref p in
  let r_vec, st_vec =
    interp result.Neurovec.Pipeline.modul p.Dataset.Program.p_kernel
  in
  if not (value_equiv r_ref r_vec) then
    Alcotest.failf "%s of %s changed the result: scalar %s vs pipeline %s"
      what p.Dataset.Program.p_name (show_value r_ref) (show_value r_vec);
  match mem_equiv st_ref st_vec with
  | None -> ()
  | Some why ->
      Alcotest.failf "%s of %s changed memory: %s" what
        p.Dataset.Program.p_name why

let corpus = lazy (Dataset.Loopgen.generate ~seed:101 12)

(* every program x every one of the 35 actions, plus the baseline cost
   model's own choice: ~450 pipeline+interpreter runs *)
let test_all_actions_preserve_semantics () =
  Array.iter
    (fun p ->
      List.iter
        (fun act ->
          let vf = Rl.Spaces.vf_of act and if_ = Rl.Spaces.if_of act in
          check_against_ref
            ~what:(Printf.sprintf "(VF=%d, IF=%d)" vf if_)
            p
            (Neurovec.Pipeline.run_with_pragma p ~vf ~if_))
        Rl.Spaces.all_actions)
    (Lazy.force corpus)

let test_baseline_preserves_semantics () =
  Array.iter
    (fun p ->
      check_against_ref ~what:"baseline cost model" p
        (Neurovec.Pipeline.run_baseline p))
    (Lazy.force corpus)

(* qcheck: a fresh random program under a random action — different seeds
   than the deterministic corpus, so shrinkage in the generators shows up *)
let gen_case : (int * int) QCheck.arbitrary =
  QCheck.make
    ~print:(fun (seed, flat) -> Printf.sprintf "seed=%d action=%d" seed flat)
    QCheck.Gen.(
      pair (int_range 1000 1999) (int_range 0 (Rl.Spaces.n_flat - 1)))

let prop_random_program_random_action =
  QCheck.Test.make ~name:"random loopgen program x random action" ~count:80
    gen_case (fun (seed, flat) ->
      let p = (Dataset.Loopgen.generate ~seed 1).(0) in
      let act = Rl.Spaces.of_flat flat in
      let vf = Rl.Spaces.vf_of act and if_ = Rl.Spaces.if_of act in
      let r_ref, st_ref = scalar_ref p in
      let r_vec, st_vec =
        interp
          (Neurovec.Pipeline.run_with_pragma p ~vf ~if_).Neurovec.Pipeline
            .modul p.Dataset.Program.p_kernel
      in
      value_equiv r_ref r_vec && mem_equiv st_ref st_vec = None)

let suite =
  [
    ( "differential.vectorizer",
      [
        Alcotest.test_case "all 35 actions, 12 programs" `Slow
          test_all_actions_preserve_semantics;
        Alcotest.test_case "baseline cost model" `Quick
          test_baseline_preserves_semantics;
        QCheck_alcotest.to_alcotest prop_random_program_random_action;
      ] );
  ]
