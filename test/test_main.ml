(* Run ALCOTEST_QUICK_ONLY=1 to skip the slow end-to-end suites. *)
let () =
  Alcotest.run "neurovectorizer"
    (Test_minic.suite @ Test_ir.suite @ Test_analysis.suite
   @ Test_vectorizer.suite @ Test_polly.suite @ Test_machine.suite
   @ Test_nn.suite @ Test_embedding.suite @ Test_rl.suite @ Test_agents.suite
   @ Test_dataset.suite @ Test_core.suite @ Test_faults.suite
   @ Test_differential.suite @ Test_parallel.suite @ Test_golden.suite
   @ Test_supervisor.suite @ Test_serve.suite @ Test_verify.suite
   @ Test_selfheal.suite)
