(* Translation validation: the Tv differential oracle, the [Miscompiled]
   failure taxonomy, the verdict cache and its journal records, and the
   legality fuzzer.

   The contract under test: with --verify on, every evaluated plan is
   checked against the scalar reference over a content-derived input set;
   a refutation quarantines the program as miscompiled with a minimized
   counterexample, is never retried as transient, and every verdict is
   bit-identical between --jobs 1 and --jobs 4 — including under active
   fault injection. *)

let bits = Int64.bits_of_float

let verify_options =
  { Neurovec.Pipeline.default_options with Neurovec.Pipeline.verify = true }

let miscompile_options ?(seed = 31) ?(transient = 0.0) p =
  { Neurovec.Pipeline.default_options with
    Neurovec.Pipeline.verify = true;
    Neurovec.Pipeline.faults =
      Neurovec.Faults.create ~seed ~transient ~miscompile:p () }

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let lower src = Ir_lower.lower_program (Minic.Parser.parse_string src)

let find_fn m name =
  match List.find_opt (fun f -> f.Ir.fn_name = name) m.Ir.m_funcs with
  | Some f -> f
  | None -> Alcotest.failf "function %s not found" name

(* lower [src] and vectorize every innermost loop of [name] with the
   legality-clamped plan — the module a --verify evaluation would check *)
let transformed ?(vf = 4) ?(if_ = 1) src name =
  let m = lower src in
  let fn = find_fn m name in
  List.iter
    (fun info ->
      let leg = Vectorizer.Legality.of_info info in
      let vf, if_ = Vectorizer.Legality.clamp leg ~vf ~if_ in
      ignore (Vectorizer.Transform.vectorize_in_func fn info { Vectorizer.Transform.vf; if_ }))
    (Analysis.Loopinfo.innermost_infos fn);
  m

(* ------------------------------------------------------------------ *)
(* The Tv oracle                                                        *)
(* ------------------------------------------------------------------ *)

let test_tv_inputs_deterministic () =
  let k = "prog-hash|polly=false|kernel|4,1" in
  let inputs = Verify.Tv.inputs_of_key k in
  Alcotest.(check (list string))
    "same key, same ladder"
    (List.map Verify.Tv.input_name inputs)
    (List.map Verify.Tv.input_name (Verify.Tv.inputs_of_key k));
  (match inputs with
  | [ Verify.Tv.Zeros; Verify.Tv.Ramp; Verify.Tv.Hashed s1;
      Verify.Tv.Hashed s2 ] ->
      Alcotest.(check bool) "seeds positive" true (s1 > 0 && s2 > 0);
      Alcotest.(check bool) "seeds independent" true (s1 <> s2)
  | _ -> Alcotest.fail "ladder is zeros, ramp, two seeded fills");
  Alcotest.(check bool) "different keys, different seeds" true
    (Verify.Tv.inputs_of_key k <> Verify.Tv.inputs_of_key (k ^ "x"))

let copy_src =
  "int a[64]; int b[64];\n\
   int kernel() { int i; for (i=0;i<64;i++) a[i] = b[i] + 1; return a[7]; }"

let test_tv_equivalent_on_clean_transform () =
  Verify.Tv.clear_cache ();
  let scalar = lower copy_src in
  let vec = transformed ~vf:8 copy_src "kernel" in
  match
    Verify.Tv.verify ~key:"tv-clean" ~scalar ~scalar_key:"tv-clean-s"
      ~kernel:"kernel" vec
  with
  | Verify.Tv.Equivalent -> ()
  | Verify.Tv.Refuted cx ->
      Alcotest.failf "clean transform refuted: %s" (Verify.Tv.render cx)

let test_tv_refutes_wrong_code () =
  (* the "transform" computes +2 where the reference computes +1: the
     refutation must land on the simplest input (zeros) and name the
     lexicographically first diverging cell *)
  Verify.Tv.clear_cache ();
  let scalar = lower copy_src in
  let wrong =
    lower
      "int a[64]; int b[64];\n\
       int kernel() { int i; for (i=0;i<64;i++) a[i] = b[i] + 2; return a[7]; }"
  in
  match
    Verify.Tv.verify ~key:"tv-wrong" ~scalar ~scalar_key:"tv-wrong-s"
      ~kernel:"kernel" wrong
  with
  | Verify.Tv.Equivalent -> Alcotest.fail "wrong code accepted"
  | Verify.Tv.Refuted cx ->
      Alcotest.(check string) "minimized to zeros" "zeros"
        cx.Verify.Tv.cx_input;
      Alcotest.(check string) "result diverges first" "result"
        cx.Verify.Tv.cx_cell;
      Alcotest.(check string) "scalar value" "1" cx.Verify.Tv.cx_scalar;
      Alcotest.(check string) "vector value" "2" cx.Verify.Tv.cx_vector

let test_tv_refutes_divergent_cell () =
  (* same return value, one memory cell off: the counterexample names the
     cell, not the result *)
  Verify.Tv.clear_cache ();
  let scalar = lower copy_src in
  let wrong =
    lower
      "int a[64]; int b[64];\n\
       int kernel() { int i; for (i=0;i<64;i++) a[i] = b[i] + 1;\n\
       a[9] = a[9] + 5; return a[7]; }"
  in
  match
    Verify.Tv.verify ~key:"tv-cell" ~scalar ~scalar_key:"tv-cell-s"
      ~kernel:"kernel" wrong
  with
  | Verify.Tv.Equivalent -> Alcotest.fail "diverging cell accepted"
  | Verify.Tv.Refuted cx ->
      Alcotest.(check string) "first diverging cell" "a[9]"
        cx.Verify.Tv.cx_cell;
      Alcotest.(check bool) "rendered counterexample carries the input" true
        (contains (Verify.Tv.render cx) "input=zeros")

let test_tv_sabotage_refutes () =
  (* the miscompile fault knob corrupts the transformed run: identical
     modules must then be refuted, deterministically in the key *)
  Verify.Tv.clear_cache ();
  let scalar = lower copy_src in
  let vec = transformed copy_src "kernel" in
  let verdict () =
    Verify.Tv.verify ~sabotage:true ~key:"tv-sab" ~scalar
      ~scalar_key:"tv-sab-s" ~kernel:"kernel" vec
  in
  match (verdict (), verdict ()) with
  | Verify.Tv.Refuted a, Verify.Tv.Refuted b ->
      Alcotest.(check string) "sabotage is pure in the key"
        (Verify.Tv.render a) (Verify.Tv.render b)
  | _ -> Alcotest.fail "sabotaged run must be refuted, twice identically"

let test_tv_trap_asymmetry () =
  (* a trap only on the transformed side refutes; the message carries the
     interpreter's faulting address *)
  Verify.Tv.clear_cache ();
  let scalar = lower copy_src in
  let oob =
    lower
      "int a[64]; int b[64];\n\
       int kernel() { int i; for (i=0;i<65;i++) a[i] = b[i] + 1; return 0; }"
  in
  match
    Verify.Tv.verify ~key:"tv-trap" ~scalar ~scalar_key:"tv-trap-s"
      ~kernel:"kernel" oob
  with
  | Verify.Tv.Equivalent -> Alcotest.fail "trapping transform accepted"
  | Verify.Tv.Refuted cx ->
      Alcotest.(check string) "refuted as a trap" "trap" cx.Verify.Tv.cx_cell;
      Alcotest.(check bool)
        (Printf.sprintf "trap message has the address (%s)"
           cx.Verify.Tv.cx_vector)
        true
        (contains cx.Verify.Tv.cx_vector "out-of-bounds"
        && contains cx.Verify.Tv.cx_vector "[64]")

let test_tv_float_reduction_tolerated () =
  (* vectorizing a float reduction reassociates the sum — a legal rounding
     change inside the documented tolerance, not a miscompile *)
  Verify.Tv.clear_cache ();
  let src =
    "double x[128]; double y[128]; double s[1];\n\
     int kernel() { int i; s[0] = 0.0;\n\
     for (i=0;i<128;i++) s[0] = s[0] + x[i] * y[i]; return 0; }"
  in
  let scalar = lower src in
  let vec = transformed ~vf:8 src "kernel" in
  match
    Verify.Tv.verify ~key:"tv-red" ~scalar ~scalar_key:"tv-red-s"
      ~kernel:"kernel" vec
  with
  | Verify.Tv.Equivalent -> ()
  | Verify.Tv.Refuted cx ->
      Alcotest.failf "reassociated reduction refuted: %s"
        (Verify.Tv.render cx)

(* ------------------------------------------------------------------ *)
(* Failure taxonomy: Miscompiled is terminal, never transient           *)
(* ------------------------------------------------------------------ *)

let test_classify_miscompile () =
  (match Neurovec.Reward.classify_exn (Verify.Tv.Miscompile "cx") with
  | Some (Neurovec.Reward.Miscompiled, "cx") -> ()
  | _ -> Alcotest.fail "Tv.Miscompile must classify as Miscompiled");
  Alcotest.(check string) "taxonomy name" "miscompile"
    (Neurovec.Reward.failure_name Neurovec.Reward.Miscompiled);
  Alcotest.(check bool) "name round-trips" true
    (Neurovec.Reward.failure_of_name "miscompile"
    = Some Neurovec.Reward.Miscompiled)

let test_miscompile_never_retried () =
  (* a refutation is a pure function of (program, plan): the supervised
     retry loop must let it through on the first attempt, unlike a
     transient fault *)
  Test_supervisor.with_supervision ~retries:3 (fun () ->
      let attempts = ref 0 in
      (match
         Neurovec.Supervisor.with_retries (fun ~attempt:_ ->
             incr attempts;
             raise (Verify.Tv.Miscompile "cx"))
       with
      | _ -> Alcotest.fail "refutation swallowed by the retry loop"
      | exception Verify.Tv.Miscompile "cx" -> ()
      | exception e ->
          Alcotest.failf "refutation re-raised as %s" (Printexc.to_string e));
      Alcotest.(check int) "exactly one attempt" 1 !attempts)

(* ------------------------------------------------------------------ *)
(* --verify sweeps through the reward oracle                            *)
(* ------------------------------------------------------------------ *)

let test_verified_sweep_clean_corpus () =
  (* the acceptance gate: a --verify sweep over the seed corpus must
     quarantine nothing as miscompiled, and must actually verify *)
  let programs = Dataset.Loopgen.generate ~seed:101 8 in
  Neurovec.Stats.reset ();
  let results, quarantined =
    Test_parallel.sweep ~options:verify_options ~jobs:1 programs
  in
  Alcotest.(check (list (pair string string))) "no quarantine" [] quarantined;
  Array.iter
    (fun r -> Alcotest.(check bool) "swept" true (r <> None))
    results;
  let snap = Neurovec.Stats.snapshot () in
  Alcotest.(check bool) "verdicts were computed" true
    (snap.Neurovec.Stats.verify_misses > 0);
  Alcotest.(check int) "zero refutations" 0
    snap.Neurovec.Stats.verify_refutes;
  Alcotest.(check int) "zero counterexamples" 0 snap.Neurovec.Stats.verify_cx;
  Alcotest.(check bool) "stats report shows the verdict cache" true
    (contains (Neurovec.Stats.report ()) "verify cache");
  (* verify off on the same corpus: rewards must be untouched by the
     validator (goldens unchanged when --verify is off is covered by the
     golden suite; here we pin on = off for the rewards themselves) *)
  let plain, _ =
    Test_parallel.sweep ~options:Neurovec.Pipeline.default_options ~jobs:1
      programs
  in
  Array.iteri
    (fun i r ->
      match (r, plain.(i)) with
      | Some (a, rv), Some (a', rv') ->
          Alcotest.(check bool) "same best action" true (a = a');
          Alcotest.(check int64) "same reward bits" (bits rv') (bits rv)
      | _ -> Alcotest.fail "quarantine state diverged with --verify")
    results

let test_verified_sweep_jobs_identity () =
  let programs = Dataset.Loopgen.generate ~seed:101 8 in
  Test_parallel.check_sweeps_equal
    (Test_parallel.sweep ~options:verify_options ~jobs:1 programs)
    (Test_parallel.sweep ~options:verify_options ~jobs:4 programs)

let test_miscompile_knob_caught () =
  (* every program whose evaluation the knob corrupts must be quarantined
     as miscompiled, with the minimized counterexample in the report, and
     the whole outcome must be bit-identical across pool sizes *)
  let programs = Dataset.Loopgen.generate ~seed:101 8 in
  let options = miscompile_options 1.0 in
  Neurovec.Stats.reset ();
  let ((results, quarantined) as sw1) =
    Test_parallel.sweep ~options ~jobs:1 programs
  in
  let snap = Neurovec.Stats.snapshot () in
  Alcotest.(check bool) "refutations recorded" true
    (snap.Neurovec.Stats.verify_refutes > 0);
  Alcotest.(check bool) "counterexamples minted" true
    (snap.Neurovec.Stats.verify_cx > 0);
  Alcotest.(check bool) "miscompiles in the failure taxonomy" true
    (match List.assoc_opt "miscompile" snap.Neurovec.Stats.failures with
    | Some n -> n > 0
    | None -> false);
  Array.iter
    (fun r ->
      Alcotest.(check bool) "everything quarantined" true (r = None))
    results;
  Alcotest.(check int) "all programs reported" (Array.length programs)
    (List.length quarantined);
  List.iter
    (fun (name, why) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: quarantined as miscompiled (%s)" name why)
        true
        (contains why "miscompile" && contains why "input="
        && contains why "cell="))
    quarantined;
  Test_parallel.check_sweeps_equal sw1
    (Test_parallel.sweep ~options ~jobs:4 programs)

let test_partial_miscompile_jobs_identity_under_faults () =
  (* miscompiles mixed with genuine transient faults and retries: the
     counterexamples, quarantine report and surviving rewards must not
     depend on the pool size.  The rate is low because one refuted plan
     poisons its whole program — 0.3 over 36 plans would quarantine
     everything and prove nothing about survivors. *)
  Test_supervisor.with_supervision ~retries:2 (fun () ->
      let programs = Dataset.Loopgen.generate ~seed:101 10 in
      let options = miscompile_options ~transient:0.2 0.015 in
      let run jobs =
        Neurovec.Stats.reset ();
        let sw = Test_parallel.sweep ~options ~jobs programs in
        let snap = Neurovec.Stats.snapshot () in
        ( sw,
          snap.Neurovec.Stats.verify_refutes,
          snap.Neurovec.Stats.verify_cx )
      in
      let sw1, refutes1, cx1 = run 1 in
      let sw4, refutes4, cx4 = run 4 in
      Test_parallel.check_sweeps_equal sw1 sw4;
      Alcotest.(check int) "refutation count identical" refutes1 refutes4;
      Alcotest.(check int) "counterexample count identical" cx1 cx4;
      Alcotest.(check bool) "some refutations happened" true (refutes1 > 0);
      (* some program must survive, or the partial knob proves nothing *)
      let survivors, _ = sw1 in
      Alcotest.(check bool) "some programs survive" true
        (Array.exists (fun r -> r <> None) survivors))

let test_miscompiled_entry_and_refutation_accessor () =
  (* find a program whose baseline survives but whose sweep hits the
     knob: its entry must be the penalized Miscompiled kind and the
     accessor must return the recorded counterexample *)
  let programs = Dataset.Loopgen.generate ~seed:101 10 in
  let options = miscompile_options 0.3 in
  Neurovec.Frontend.clear ();
  let oracle = Neurovec.Reward.create ~options programs in
  let found = ref 0 in
  Array.iteri
    (fun idx _ ->
      match Neurovec.Reward.baseline oracle idx with
      | exception Neurovec.Reward.Quarantined _ -> ()
      | _ ->
          List.iter
            (fun a ->
              let e = Neurovec.Reward.entry oracle idx a in
              if e.Neurovec.Reward.e_failure = Some Neurovec.Reward.Miscompiled
              then begin
                incr found;
                Alcotest.(check bool) "penalized" true
                  e.Neurovec.Reward.e_penalized;
                match Neurovec.Reward.refutation oracle idx a with
                | Some cx ->
                    Alcotest.(check bool) "counterexample recorded" true
                      (contains cx "input=" && contains cx "cell=")
                | None -> Alcotest.fail "Miscompiled entry lost its evidence"
              end)
            Rl.Spaces.all_actions)
    programs;
  Alcotest.(check bool)
    (Printf.sprintf "knob hit some surviving programs (%d points)" !found)
    true (!found > 0)

(* ------------------------------------------------------------------ *)
(* Verdict journal: V records, replay, corruption matrix                *)
(* ------------------------------------------------------------------ *)

let with_temp_file suffix f =
  let path = Filename.temp_file "neurovec_verify" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let journal_corpus () = Dataset.Loopgen.generate ~seed:106 6

let journal_reference path =
  let programs = journal_corpus () in
  let options = miscompile_options ~seed:31 0.4 in
  Neurovec.Frontend.clear ();
  let oracle = Neurovec.Reward.create ~options programs in
  Neurovec.Reward.set_journal oracle path;
  let sw = Neurovec.Reward.sweep_all oracle in
  let quar = Neurovec.Reward.quarantine_report oracle in
  Neurovec.Reward.close_journal oracle;
  (programs, options, (sw, quar))

let replay_and_sweep programs options path =
  Neurovec.Frontend.clear ();
  let oracle = Neurovec.Reward.create ~options programs in
  let n = Neurovec.Reward.replay_journal oracle path in
  let sw = Neurovec.Reward.sweep_all oracle in
  (n, (sw, Neurovec.Reward.quarantine_report oracle), oracle)

let test_journal_v_records_replay () =
  with_temp_file ".journal" (fun path ->
      Sys.remove path;
      let programs, options, reference = journal_reference path in
      Alcotest.(check bool) "journal has V records" true
        (contains (read_file path) "\nV\t");
      Neurovec.Stats.reset ();
      let n, again, restored = replay_and_sweep programs options path in
      Alcotest.(check bool) "records replayed" true (n > 0);
      let snap = Neurovec.Stats.snapshot () in
      Alcotest.(check int) "no re-evaluation: pipeline runs" 0
        snap.Neurovec.Stats.pipeline_runs;
      Alcotest.(check int) "no re-verification" 0
        snap.Neurovec.Stats.verify_misses;
      Test_parallel.check_sweeps_equal reference again;
      (* replayed refutations serve the accessor *)
      let fresh = Neurovec.Reward.create ~options programs in
      ignore (Neurovec.Reward.replay_journal fresh path);
      Array.iteri
        (fun idx _ ->
          List.iter
            (fun a ->
              Alcotest.(check (option string))
                "refutation survives replay"
                (Neurovec.Reward.refutation restored idx a)
                (Neurovec.Reward.refutation fresh idx a))
            Rl.Spaces.all_actions)
        programs)

let test_journal_corruption_matrix () =
  with_temp_file ".journal" (fun path ->
      Sys.remove path;
      let programs, options, reference = journal_reference path in
      let full = read_file path in
      let lines = String.split_on_char '\n' full in
      let check_case name mutated =
        write_file path mutated;
        let _, again, _ = replay_and_sweep programs options path in
        Test_parallel.check_sweeps_equal reference again;
        ignore name
      in
      (* flipped byte inside a V record's key: the record lands under a
         key nothing looks up; the sweep re-derives bit-identically *)
      let flip_v line =
        match String.split_on_char '\t' line with
        | "V" :: key :: rest when String.length key > 0 ->
            String.concat "\t"
              ("V" :: ("Z" ^ String.sub key 1 (String.length key - 1)) :: rest)
        | _ -> line
      in
      Alcotest.(check bool) "a V record exists to corrupt" true
        (List.exists (fun l -> flip_v l <> l) lines);
      check_case "flipped V key"
        (String.concat "\n" (List.map flip_v lines));
      (* torn tail: a crash mid-append loses the terminator; the partial
         record is skipped *)
      check_case "torn tail" (String.sub full 0 (String.length full - 3));
      (* a garbage line between records is skipped, not fatal *)
      check_case "garbage line"
        (String.concat "\n"
           (match lines with
           | hdr :: rest -> hdr :: "X\tnot a record" :: rest
           | [] -> [ "X\tnot a record" ]));
      (* V record dropped entirely: the quarantine report still carries
         the counterexample (it rides in the Q record), and rewards
         re-derive *)
      check_case "dropped V records"
        (String.concat "\n"
           (List.filter
              (fun l -> String.length l < 2 || String.sub l 0 2 <> "V\t")
              lines)))

(* ------------------------------------------------------------------ *)
(* The legality fuzzer                                                  *)
(* ------------------------------------------------------------------ *)

let test_fuzz_generator_deterministic () =
  let a = Verify.Loopfuzz.generate ~seed:9 24 in
  let b = Verify.Loopfuzz.generate ~seed:9 24 in
  Alcotest.(check int) "count" 24 (Array.length a);
  Array.iteri
    (fun i c ->
      Alcotest.(check string) "same source"
        c.Verify.Loopfuzz.c_program.Dataset.Program.p_source
        b.(i).Verify.Loopfuzz.c_program.Dataset.Program.p_source;
      Alcotest.(check bool) "same plan" true
        (c.Verify.Loopfuzz.c_vf = b.(i).Verify.Loopfuzz.c_vf
        && c.Verify.Loopfuzz.c_if = b.(i).Verify.Loopfuzz.c_if))
    a;
  Alcotest.(check bool) "different seeds differ" true
    (a.(0).Verify.Loopfuzz.c_program.Dataset.Program.p_source
    <> (Verify.Loopfuzz.generate ~seed:10 1).(0)
         .Verify.Loopfuzz.c_program.Dataset.Program.p_source)

let test_fuzz_hunt_finds_nothing () =
  (* the CI gate in miniature: dependence-boundary loops, clamped plans,
     zero refutations.  A failure here is a real legality bug. *)
  let refutations, st = Verify.Loopfuzz.hunt ~seed:9 ~iterations:48 () in
  Alcotest.(check int) "all cases ran" 48 st.Verify.Loopfuzz.hs_ran;
  Alcotest.(check bool) "no deadline hit" false
    st.Verify.Loopfuzz.hs_deadline_hit;
  Alcotest.(check int) "family coverage sums to the run count" 48
    (List.fold_left
       (fun acc (_, n) -> acc + n)
       0 st.Verify.Loopfuzz.hs_families);
  match refutations with
  | [] -> ()
  | r :: _ ->
      Alcotest.failf "legality bug: %s (VF=%d IF=%d applied %s): %s\n%s"
        r.Verify.Loopfuzz.r_name r.Verify.Loopfuzz.r_vf
        r.Verify.Loopfuzz.r_if r.Verify.Loopfuzz.r_applied
        r.Verify.Loopfuzz.r_cx r.Verify.Loopfuzz.r_source

let test_fuzz_deadline_truncates () =
  let refutations, st =
    Verify.Loopfuzz.hunt ~deadline_s:0.0 ~seed:9 ~iterations:1000 ()
  in
  let ran = st.Verify.Loopfuzz.hs_ran in
  Alcotest.(check (list string)) "no refutations" []
    (List.map (fun r -> r.Verify.Loopfuzz.r_name) refutations);
  Alcotest.(check bool)
    (Printf.sprintf "deadline truncated the hunt (%d ran)" ran)
    true (ran < 1000);
  Alcotest.(check bool) "deadline reported" true
    st.Verify.Loopfuzz.hs_deadline_hit

(* ------------------------------------------------------------------ *)
(* The bytecode VM: engine bit-identity and the compiled-code cache     *)
(* ------------------------------------------------------------------ *)

(* build (scalar, transformed) through the exact passes Loopfuzz.check
   and the pipeline's shared-artifact path use *)
let fuzz_modules (p : Dataset.Program.t) ~vf ~if_ =
  let bindings = p.Dataset.Program.p_bindings in
  let prog = Minic.Parser.parse_string p.Dataset.Program.p_source in
  ignore (Minic.Sema.analyze ~bindings prog);
  let scalar = Ir_lower.lower_program ~bindings prog in
  let m = Ir_lower.lower_program ~bindings prog in
  ignore (Vectorizer.Licm.run_modul m);
  ignore (Vectorizer.Cse.run_modul m);
  ignore (Vectorizer.Licm.run_modul m);
  let preps = Vectorizer.Planner.prepare_modul m in
  ignore
    (Vectorizer.Planner.run_prepared
       ~plan:(Some { Vectorizer.Transform.vf; if_ })
       m preps);
  ignore (Vectorizer.Licm.run_modul m);
  (scalar, m)

(* one engine run, raw: outcome or trap, final memory, fuel spent *)
type raw = {
  raw_result : (Ir_interp.rvalue_v option, string) result;
  raw_mem : (string * Ir_interp.mem) list;
  raw_steps : int option;  (* None when the engine trapped *)
}

let sorted_mem (st : Ir_interp.state) =
  List.sort compare
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.Ir_interp.mem [])

let tree_raw ?max_steps (m : Ir.modul) ~kernel ~seed : raw =
  let st = Ir_interp.init_state ~seed ?max_steps m in
  match Ir_interp.run_func st (find_fn m kernel) () with
  | r ->
      { raw_result = Ok r; raw_mem = sorted_mem st;
        raw_steps = Some st.Ir_interp.steps }
  | exception Ir_interp.Trap msg ->
      { raw_result = Error msg; raw_mem = sorted_mem st; raw_steps = None }

let vm_raw ?max_steps (m : Ir.modul) ~kernel ~seed : raw option =
  match Ir_vm.compile m ~kernel with
  | None -> None
  | Some prog -> (
      let st = Ir_interp.init_state ~seed m in
      let mem = sorted_mem st in
      match Ir_vm.run prog ~mem ?max_steps () with
      | out ->
          Some
            { raw_result = Ok out.Ir_vm.o_result; raw_mem = mem;
              raw_steps = Some out.Ir_vm.o_steps }
      | exception Ir_interp.Trap msg ->
          Some { raw_result = Error msg; raw_mem = mem; raw_steps = None })

let rv_bits_equal (a : Ir_interp.rvalue_v option)
    (b : Ir_interp.rvalue_v option) : bool =
  match (a, b) with
  | Some (Ir_interp.VF x), Some (Ir_interp.VF y) -> bits x = bits y
  | Some (Ir_interp.VVF x), Some (Ir_interp.VVF y) ->
      Array.length x = Array.length y
      && Array.for_all2 (fun p q -> bits p = bits q) x y
  | _ -> a = b

let mem_bits_equal (a : Ir_interp.mem) (b : Ir_interp.mem) : bool =
  match (a, b) with
  | Ir_interp.MI x, Ir_interp.MI y -> x = y
  | Ir_interp.MF x, Ir_interp.MF y ->
      Array.length x = Array.length y
      && Array.for_all2 (fun p q -> bits p = bits q) x y
  | _ -> false

(* why two raw runs differ, or None when bit-identical — including the
   partial memory left behind by a trap (both engines execute the same
   ops in the same order, so a mid-loop trap leaves identical writes) *)
let raw_diff (t : raw) (v : raw) : string option =
  match (t.raw_result, v.raw_result) with
  | Ok _, Error e -> Some ("vm trapped, tree did not: " ^ e)
  | Error e, Ok _ -> Some ("tree trapped, vm did not: " ^ e)
  | Error x, Error y when x <> y ->
      Some (Printf.sprintf "trap message %S vs %S" x y)
  | Ok x, Ok y when not (rv_bits_equal x y) -> Some "result bits differ"
  | _ ->
      if t.raw_steps <> v.raw_steps then
        Some
          (Printf.sprintf "fuel %s vs %s"
             (match t.raw_steps with Some n -> string_of_int n | None -> "-")
             (match v.raw_steps with Some n -> string_of_int n | None -> "-"))
      else if List.map fst t.raw_mem <> List.map fst v.raw_mem then
        Some "array sets differ"
      else
        List.fold_left2
          (fun acc (name, a) (_, b) ->
            match acc with
            | Some _ -> acc
            | None ->
                if mem_bits_equal a b then None
                else Some (Printf.sprintf "memory %s diverged" name))
          None t.raw_mem v.raw_mem

let check_engines_identical ~(what : string) (m : Ir.modul)
    ~(kernel : string) ~(seed : int) : bool =
  match vm_raw m ~kernel ~seed with
  | None -> false (* compiler declined; the tree walker is the engine *)
  | Some v -> (
      match raw_diff (tree_raw m ~kernel ~seed) v with
      | None -> true
      | Some why -> Alcotest.failf "%s (seed %d): %s" what seed why)

(* qcheck: the six dependence-boundary families through both engines —
   bit-identical memory, results, traps, and fuel on every case *)
let prop_vm_fuzz_families_bit_identical =
  QCheck.Test.make ~name:"vm vs interpreter on loopfuzz families" ~count:40
    QCheck.(
      make
        ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
        Gen.(int_range 3000 3999))
    (fun seed ->
      let cases = Verify.Loopfuzz.generate ~seed 6 in
      Array.for_all
        (fun c ->
          let p = c.Verify.Loopfuzz.c_program in
          let scalar, vec =
            fuzz_modules p ~vf:c.Verify.Loopfuzz.c_vf
              ~if_:c.Verify.Loopfuzz.c_if
          in
          let kernel = p.Dataset.Program.p_kernel in
          let both m what =
            List.for_all
              (fun s -> check_engines_identical ~what m ~kernel ~seed:s)
              [ 1; 77 ]
          in
          (* require the VM to actually cover these shapes: a silent
             fallback would turn this property into a no-op *)
          both scalar (p.Dataset.Program.p_name ^ " scalar")
          && both vec (p.Dataset.Program.p_name ^ " transformed"))
        cases)

let test_vm_trap_parity () =
  (* an out-of-bounds store: same trap message, same faulting address,
     same partial memory at the point of the trap *)
  let src =
    "int a[8];\nint kernel() { int i; for (i=0;i<16;i++) a[i] = i + 1; \
     return 0; }"
  in
  let m = lower src in
  let t = tree_raw m ~kernel:"kernel" ~seed:0 in
  (match t.raw_result with
  | Error msg ->
      Alcotest.(check string) "tree traps out of bounds"
        "out-of-bounds store a[8] (size 8)" msg
  | Ok _ -> Alcotest.fail "expected the tree walker to trap");
  match vm_raw m ~kernel:"kernel" ~seed:0 with
  | None -> Alcotest.fail "vm declined a plain counted loop"
  | Some v -> (
      match raw_diff t v with
      | None -> ()
      | Some why -> Alcotest.failf "engines diverged: %s" why)

let test_vm_fuel_parity () =
  let m = lower copy_src in
  (* both engines must exhaust the same budget on the same instruction *)
  let t = tree_raw ~max_steps:50 m ~kernel:"kernel" ~seed:0 in
  (match t.raw_result with
  | Error "step budget exceeded" -> ()
  | _ -> Alcotest.fail "tree should exhaust a 50-step budget");
  (match vm_raw ~max_steps:50 m ~kernel:"kernel" ~seed:0 with
  | None -> Alcotest.fail "vm declined the copy loop"
  | Some v -> (
      match raw_diff t v with
      | None -> ()
      | Some why -> Alcotest.failf "fuel-trap divergence: %s" why));
  (* and with room to finish, spend identical fuel *)
  let t = tree_raw m ~kernel:"kernel" ~seed:0 in
  match vm_raw m ~kernel:"kernel" ~seed:0 with
  | None -> Alcotest.fail "vm declined the copy loop"
  | Some v -> (
      match raw_diff t v with
      | None -> ()
      | Some why -> Alcotest.failf "engines diverged: %s" why)

let test_vm_cache_fifo_and_none_caching () =
  Verify.Tv.clear_cache ();
  let m = lower copy_src in
  let s0 = Ir_vm.stats () in
  Ir_vm.set_shard_capacity 2;
  (* same-first-byte keys land in one shard, so the FIFO cap is exact *)
  let p1 = Ir_vm.load ~key:"a-key-1" m ~kernel:"kernel" in
  Alcotest.(check bool) "compiles" true (p1 <> None);
  (match (Ir_vm.load ~key:"a-key-1" m ~kernel:"kernel", p1) with
  | Some a, Some b ->
      Alcotest.(check bool) "second load is the same program" true (a == b)
  | _ -> Alcotest.fail "cached program lost");
  let s1 = Ir_vm.stats () in
  Alcotest.(check int) "one cache hit" 1
    (s1.Ir_vm.vs_cache_hits - s0.Ir_vm.vs_cache_hits);
  ignore (Ir_vm.load ~key:"a-key-2" m ~kernel:"kernel");
  ignore (Ir_vm.load ~key:"a-key-3" m ~kernel:"kernel");
  ignore (Ir_vm.load ~key:"a-key-4" m ~kernel:"kernel");
  let s2 = Ir_vm.stats () in
  Alcotest.(check int) "FIFO evicted past the cap" 2
    (s2.Ir_vm.vs_evictions - s0.Ir_vm.vs_evictions);
  (* fallback decisions are cached too: a missing kernel is one failed
     compile, then hits *)
  Alcotest.(check bool) "missing kernel falls back" true
    (Ir_vm.load ~key:"a-none" m ~kernel:"nope" = None);
  let s3 = Ir_vm.stats () in
  Alcotest.(check bool) "fallback counted" true
    (s3.Ir_vm.vs_fallbacks > s2.Ir_vm.vs_fallbacks);
  Alcotest.(check bool) "cached fallback" true
    (Ir_vm.load ~key:"a-none" m ~kernel:"nope" = None);
  let s4 = Ir_vm.stats () in
  Alcotest.(check int) "fallback served from cache" 1
    (s4.Ir_vm.vs_cache_hits - s3.Ir_vm.vs_cache_hits);
  Ir_vm.set_shard_capacity 256;
  Verify.Tv.clear_cache ()

let test_vm_cache_thrash_jobs_identity () =
  (* corruption-style: a 1-entry-per-shard code cache thrashes on every
     lookup while 4 domains race compiles — verdicts, rewards, and
     quarantine must still be bit-identical to --jobs 1 *)
  Ir_vm.set_shard_capacity 1;
  Fun.protect
    ~finally:(fun () ->
      Ir_vm.set_shard_capacity 256;
      Verify.Tv.clear_cache ())
    (fun () ->
      let programs = Dataset.Loopgen.generate ~seed:113 6 in
      Neurovec.Stats.reset ();
      Test_parallel.check_sweeps_equal
        (Test_parallel.sweep ~options:verify_options ~jobs:1 programs)
        (Test_parallel.sweep ~options:verify_options ~jobs:4 programs);
      let snap = Neurovec.Stats.snapshot () in
      Alcotest.(check bool) "vm executed the verification load" true
        (snap.Neurovec.Stats.vm_steps > 0);
      Alcotest.(check bool) "thrashing cache evicted" true
        (snap.Neurovec.Stats.vm_evictions > 0);
      Alcotest.(check bool) "stats report shows the vm code cache" true
        (contains (Neurovec.Stats.report ()) "vm code cache"))

let test_vm_engine_verdicts_identical () =
  (* the sabotage knob through both engines: identical verdicts and
     byte-identical rendered counterexamples *)
  let scalar = lower copy_src in
  let vec = transformed ~vf:8 copy_src "kernel" in
  let run engine =
    Verify.Tv.clear_cache ();
    Verify.Tv.set_engine engine;
    ( Verify.Tv.verify ~key:"eng-cmp" ~scalar ~scalar_key:"eng-cmp-s"
        ~kernel:"kernel" vec,
      Verify.Tv.verify ~sabotage:true ~key:"eng-cmp" ~scalar
        ~scalar_key:"eng-cmp-s" ~kernel:"kernel" vec )
  in
  Fun.protect
    ~finally:(fun () ->
      Verify.Tv.set_engine Verify.Tv.Vm;
      Verify.Tv.clear_cache ())
    (fun () ->
      let clean_vm, sab_vm = run Verify.Tv.Vm in
      let clean_tree, sab_tree = run Verify.Tv.Interp in
      (match (clean_vm, clean_tree) with
      | Verify.Tv.Equivalent, Verify.Tv.Equivalent -> ()
      | _ -> Alcotest.fail "clean transform must verify on both engines");
      match (sab_vm, sab_tree) with
      | Verify.Tv.Refuted a, Verify.Tv.Refuted b ->
          Alcotest.(check string) "byte-identical counterexamples"
            (Verify.Tv.render b) (Verify.Tv.render a)
      | _ -> Alcotest.fail "sabotage must refute on both engines")

let suite =
  [
    ( "verify.tv",
      [
        Alcotest.test_case "input ladder deterministic" `Quick
          test_tv_inputs_deterministic;
        Alcotest.test_case "clean transform equivalent" `Quick
          test_tv_equivalent_on_clean_transform;
        Alcotest.test_case "wrong code refuted on zeros" `Quick
          test_tv_refutes_wrong_code;
        Alcotest.test_case "first diverging cell named" `Quick
          test_tv_refutes_divergent_cell;
        Alcotest.test_case "sabotage refutes deterministically" `Quick
          test_tv_sabotage_refutes;
        Alcotest.test_case "transformed-only trap refutes" `Quick
          test_tv_trap_asymmetry;
        Alcotest.test_case "float reduction within tolerance" `Quick
          test_tv_float_reduction_tolerated;
      ] );
    ( "verify.taxonomy",
      [
        Alcotest.test_case "classify maps to Miscompiled" `Quick
          test_classify_miscompile;
        Alcotest.test_case "never retried as transient" `Quick
          test_miscompile_never_retried;
      ] );
    ( "verify.sweep",
      [
        Alcotest.test_case "clean corpus: zero refutations" `Slow
          test_verified_sweep_clean_corpus;
        Alcotest.test_case "verified sweep bit-identical across jobs" `Slow
          test_verified_sweep_jobs_identity;
        Alcotest.test_case "miscompile knob caught with counterexample" `Slow
          test_miscompile_knob_caught;
        Alcotest.test_case "partial knob + transients, jobs identity" `Slow
          test_partial_miscompile_jobs_identity_under_faults;
        Alcotest.test_case "Miscompiled entry keeps its evidence" `Slow
          test_miscompiled_entry_and_refutation_accessor;
      ] );
    ( "verify.journal",
      [
        Alcotest.test_case "V records replay" `Slow
          test_journal_v_records_replay;
        Alcotest.test_case "corruption matrix" `Slow
          test_journal_corruption_matrix;
      ] );
    ( "verify.fuzz",
      [
        Alcotest.test_case "generator deterministic" `Quick
          test_fuzz_generator_deterministic;
        Alcotest.test_case "legality hunt finds nothing" `Slow
          test_fuzz_hunt_finds_nothing;
        Alcotest.test_case "deadline only truncates" `Quick
          test_fuzz_deadline_truncates;
        QCheck_alcotest.to_alcotest
          (Verify.Loopfuzz.prop_legality_accepted_plans_verify ~count:25 ());
      ] );
    ( "verify.vm",
      [
        QCheck_alcotest.to_alcotest prop_vm_fuzz_families_bit_identical;
        Alcotest.test_case "trap parity (message + partial memory)" `Quick
          test_vm_trap_parity;
        Alcotest.test_case "fuel parity (budget exhaustion)" `Quick
          test_vm_fuel_parity;
        Alcotest.test_case "code cache: FIFO eviction + cached fallback"
          `Quick test_vm_cache_fifo_and_none_caching;
        Alcotest.test_case "code cache thrash: jobs 1 = jobs 4" `Slow
          test_vm_cache_thrash_jobs_identity;
        Alcotest.test_case "engine verdicts byte-identical" `Quick
          test_vm_engine_verdicts_identical;
      ] );
  ]
