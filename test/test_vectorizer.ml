(* Tests for legality, the transform, and the baseline cost model.

   The central property: for any legal loop and any (VF, IF), the
   vectorized program computes exactly what the scalar program computes —
   same return value, same final memory. *)

let lower ?bindings src =
  let prog = Minic.Parser.parse_string src in
  Ir_lower.lower_program ?bindings prog

let find_fn m name =
  match List.find_opt (fun f -> f.Ir.fn_name = name) m.Ir.m_funcs with
  | Some f -> f
  | None -> Alcotest.failf "function %s not found" name

let first_innermost fn =
  match Analysis.Loopinfo.innermost_infos fn with
  | info :: _ -> info
  | [] -> Alcotest.fail "no innermost loop"

(* Run function f of a freshly lowered module, optionally vectorizing its
   innermost loops with the given plan. Returns (result, fingerprint). *)
let run ?bindings ?plan src name =
  let m = lower ?bindings src in
  let fn = find_fn m name in
  (match plan with
  | Some p ->
      List.iter
        (fun info ->
          let leg = Vectorizer.Legality.of_info info in
          let vf, if_ =
            Vectorizer.Legality.clamp leg ~vf:p.Vectorizer.Transform.vf
              ~if_:p.Vectorizer.Transform.if_
          in
          ignore
            (Vectorizer.Transform.vectorize_in_func fn info
               { Vectorizer.Transform.vf; if_ }))
        (Analysis.Loopinfo.innermost_infos fn)
  | None -> ());
  let st = Ir_interp.init_state m in
  let result = Ir_interp.run_func st fn () in
  (result, Ir_interp.state_fingerprint st result)

let check_equiv ?bindings ~vf ~if_ src name =
  let r_scalar, f_scalar = run ?bindings src name in
  let r_vec, f_vec =
    run ?bindings ~plan:{ Vectorizer.Transform.vf; if_ } src name
  in
  if r_scalar <> r_vec || f_scalar <> f_vec then
    Alcotest.failf "vf=%d if=%d changed semantics for:\n%s" vf if_ src

(* ------------------------------------------------------------------ *)
(* Legality                                                             *)
(* ------------------------------------------------------------------ *)

let analyze_first ?bindings src =
  let m = lower ?bindings src in
  let fn = List.hd m.Ir.m_funcs in
  first_innermost fn

let test_legal_simple_copy () =
  let info =
    analyze_first
      "int a[64]; int b[64]; void f() { int i; for (i=0;i<64;i++) a[i] = b[i]; }"
  in
  Alcotest.(check bool) "vectorizable" true info.Analysis.Loopinfo.li_vectorizable;
  Alcotest.(check bool) "unbounded vf" true
    (info.Analysis.Loopinfo.li_max_safe_vf >= 64)

let test_legal_trip_count () =
  let info =
    analyze_first
      "int a[100]; void f() { int i; for (i=0;i<100;i+=3) a[i] = i; }"
  in
  Alcotest.(check (option int)) "trip count" (Some 34)
    info.Analysis.Loopinfo.li_trip_count

let test_legal_flow_dependence_blocks () =
  (* a[i] = a[i-1]: flow dependence, distance 1 -> cannot vectorize *)
  let info =
    analyze_first
      "int a[64]; void f() { int i; for (i=1;i<64;i++) a[i] = a[i-1] + 1; }"
  in
  Alcotest.(check bool) "not vectorizable" false
    info.Analysis.Loopinfo.li_vectorizable

let test_legal_distance_limits_vf () =
  (* a[i] = a[i-4]: distance 4 allows VF up to 4 *)
  let info =
    analyze_first
      "int a[64]; void f() { int i; for (i=4;i<64;i++) a[i] = a[i-4] + 1; }"
  in
  Alcotest.(check int) "max safe vf" 4 info.Analysis.Loopinfo.li_max_safe_vf;
  Alcotest.(check bool) "vectorizable" true info.Analysis.Loopinfo.li_vectorizable

let test_legal_anti_dependence_ok () =
  (* a[i] = a[i+1]: anti dependence, safe at any VF *)
  let info =
    analyze_first
      "int a[65]; void f() { int i; for (i=0;i<64;i++) a[i] = a[i+1]; }"
  in
  Alcotest.(check bool) "vectorizable" true info.Analysis.Loopinfo.li_vectorizable;
  Alcotest.(check bool) "unbounded" true
    (info.Analysis.Loopinfo.li_max_safe_vf >= 64)

let test_legal_reduction_recognised () =
  let info =
    analyze_first
      "int a[64]; int f() { int s = 0; int i; for (i=0;i<64;i++) s += a[i]; return s; }"
  in
  Alcotest.(check int) "one reduction" 1
    (List.length info.Analysis.Loopinfo.li_reductions);
  Alcotest.(check bool) "vectorizable" true info.Analysis.Loopinfo.li_vectorizable

let test_legal_carried_scalar_blocks () =
  (* prev carries a value across iterations and is not a reduction *)
  let info =
    analyze_first
      "int a[64]; int b[64]; void f() { int prev = 0; int i;\n\
       for (i=0;i<64;i++) { b[i] = prev; prev = a[i]; } }"
  in
  Alcotest.(check bool) "not vectorizable" false
    info.Analysis.Loopinfo.li_vectorizable

let test_legal_while_blocks () =
  let info =
    analyze_first
      "int a[64]; void f() { int i; for (i=0;i<64;i++) { int j = 0; while (j < i) j++; a[i] = j; } }"
  in
  Alcotest.(check bool) "not vectorizable" false
    info.Analysis.Loopinfo.li_vectorizable

let test_legal_predicate_ok () =
  let info =
    analyze_first
      "int a[64]; int b[64]; void f() { int i;\n\
       for (i=0;i<64;i++) { if (b[i] > 100) a[i] = 0; } }"
  in
  Alcotest.(check bool) "if-convertible" true
    info.Analysis.Loopinfo.li_vectorizable

let test_legal_unknown_index_blocks () =
  (* indirect store: a[b[i]] cannot be analysed *)
  let info =
    analyze_first
      "int a[256]; int b[64]; void f() { int i; for (i=0;i<64;i++) a[b[i]] = i; }"
  in
  Alcotest.(check bool) "not vectorizable" false
    info.Analysis.Loopinfo.li_vectorizable

let test_clamp_pragma () =
  let info =
    analyze_first
      "int a[64]; void f() { int i; for (i=4;i<64;i++) a[i] = a[i-4] + 1; }"
  in
  let leg = Vectorizer.Legality.of_info info in
  let vf, if_ = Vectorizer.Legality.clamp leg ~vf:16 ~if_:2 in
  Alcotest.(check int) "vf clamped to 4" 4 vf;
  Alcotest.(check int) "if kept" 2 if_

(* clamp edge cases at the dependence boundary, pinned deterministically:
   each pins the exact clamped plan AND checks the clamped transform
   computes what the scalar loop computes *)

let clamp_of ~vf ~if_ src =
  let leg = Vectorizer.Legality.of_info (analyze_first src) in
  Vectorizer.Legality.clamp leg ~vf ~if_

let clamp_grid = [ (2, 1); (4, 1); (4, 2); (8, 1); (1, 4); (8, 4); (16, 2) ]

let test_clamp_distance1_recurrence () =
  (* a[i] = a[i-1]: the tightest loop-carried flow dependence; any
     widening reorders it, so the clamp must refuse outright *)
  let src =
    "int a[64]; int f() { int i; for (i=1;i<64;i++) a[i] = a[i-1] + 1;\n\
     return a[63]; }"
  in
  Alcotest.(check (pair int int)) "clamped to scalar" (1, 1)
    (clamp_of ~vf:8 ~if_:4 src);
  check_equiv ~vf:8 ~if_:4 src "f"

let test_clamp_store_load_ahead_pair () =
  (* S1 stores a[i], S2 loads a[i+2]: statement-wise widening makes S1
     store a whole vector before S2 loads, so the scalar loop's "read the
     original a[i+2]" only survives at VF <= 2 — the clamp must bound the
     plan by the distance even though the *store* is the earlier access *)
  let src =
    "int a[68]; int b[64]; int c[64];\n\
     int f() { int i; for (i=0;i<64;i++) { a[i] = b[i] * 2;\n\
     c[i] = a[i+2] + 1; } return c[5]; }"
  in
  Alcotest.(check (pair int int)) "vf bounded by the distance" (2, 2)
    (clamp_of ~vf:16 ~if_:2 src);
  List.iter (fun (vf, if_) -> check_equiv ~vf ~if_ src "f") clamp_grid

let test_clamp_aliasing_store_pair () =
  (* two stores to the same array at distance 2: the output dependence
     a[i+2] (iteration i) vs a[i] (iteration i+2) must bound VF, or the
     later scalar store loses *)
  let src =
    "int a[68]; int b[64]; int c[64];\n\
     int f() { int i; for (i=0;i<64;i++) { a[i] = b[i] + 1;\n\
     a[i+2] = c[i] * 2; } return a[9]; }"
  in
  Alcotest.(check (pair int int)) "vf bounded by the distance" (2, 4)
    (clamp_of ~vf:8 ~if_:4 src);
  List.iter (fun (vf, if_) -> check_equiv ~vf ~if_ src "f") clamp_grid

let test_clamp_float_reduction_order () =
  (* a float reduction is accepted at full width — vectorizing it
     reassociates the sum, which is a rounding change, not a legality
     violation, so equivalence is within relative tolerance, not exact *)
  let src =
    "double x[128]; double y[128];\n\
     double f() { double s = 0.0; int i;\n\
     for (i=0;i<128;i++) s += x[i] * y[i]; return s; }"
  in
  Alcotest.(check (pair int int)) "full width accepted" (8, 2)
    (clamp_of ~vf:8 ~if_:2 src);
  let close a b =
    a = b || abs_float (a -. b) <= 1e-3 *. (abs_float a +. abs_float b +. 1.0)
  in
  let scalar, _ = run src "f" in
  List.iter
    (fun (vf, if_) ->
      let vec, _ = run ~plan:{ Vectorizer.Transform.vf; if_ } src "f" in
      match (scalar, vec) with
      | Some (Ir_interp.VF s), Some (Ir_interp.VF v) ->
          Alcotest.(check bool)
            (Printf.sprintf "vf=%d if=%d within tolerance (%h vs %h)" vf if_
               s v)
            true (close s v)
      | _ -> Alcotest.fail "reduction did not return a float")
    clamp_grid

(* ------------------------------------------------------------------ *)
(* Transform correctness on targeted shapes                             *)
(* ------------------------------------------------------------------ *)

let vf_if_grid = [ (2, 1); (4, 1); (4, 2); (8, 1); (1, 4); (8, 4); (16, 2) ]

let check_grid ?bindings src name =
  List.iter (fun (vf, if_) -> check_equiv ?bindings ~vf ~if_ src name) vf_if_grid

let test_tr_copy () =
  check_grid
    "int a[100]; int b[100]; int f() { int i; for (i=0;i<100;i++) a[i] = b[i] * 3; return a[99]; }"
    "f"

let test_tr_trip_not_multiple () =
  (* 37 iterations: remainder loop must run *)
  check_grid
    "int a[64]; int f() { int i; for (i=0;i<37;i++) a[i] = i * i; return a[36]; }"
    "f"

let test_tr_reduction_int () =
  check_grid
    "int a[128]; int f() { int s = 0; int i; for (i=0;i<128;i++) s += a[i] * a[i]; return s; }"
    "f"

let test_tr_reduction_xor () =
  check_grid
    "int a[100]; int f() { int s = 0; int i; for (i=0;i<100;i++) s ^= a[i]; return s; }"
    "f"

let test_tr_reduction_mul () =
  (* small bound to avoid overflow noise; wrapping is deterministic anyway *)
  check_grid
    "int a[10]; int f() { int p = 1; int i; for (i=0;i<10;i++) p *= (a[i] & 7) + 1; return p; }"
    "f"

let test_tr_strided_access () =
  check_grid
    "int a[128]; int b[256]; int f() { int i; for (i=0;i<128;i++) a[i] = b[2*i]; return a[100]; }"
    "f"

let test_tr_step2_loop () =
  check_grid
    "int a[128]; int f() { int i; for (i=0;i<128;i+=2) { a[i] = i; a[i+1] = -i; } return a[99]; }"
    "f"

let test_tr_downward_loop () =
  check_grid
    "int a[64]; int f() { int i; for (i=63;i>=0;i--) a[i] = i * 2; return a[0]; }"
    "f"

let test_tr_predicate_store () =
  check_grid
    "int a[100]; int b[100]; int f() { int i;\n\
     for (i=0;i<100;i++) { if (b[i] > 128) a[i] = b[i]; } return a[50]; }"
    "f"

let test_tr_predicate_else () =
  check_grid
    "int a[100]; int b[100]; int f() { int i;\n\
     for (i=0;i<100;i++) { if (b[i] > 128) a[i] = 1; else a[i] = 0; } return a[50]; }"
    "f"

let test_tr_predicate_merge_value () =
  check_grid
    "int a[100]; int b[100]; int f() { int i;\n\
     for (i=0;i<100;i++) { int t = 0; if (b[i] > 100) t = b[i] * 2; a[i] = t; } return a[7]; }"
    "f"

let test_tr_ternary () =
  check_grid
    "int a[100]; int b[100]; int f() { int i;\n\
     for (i=0;i<100;i++) { int j = b[i]; a[i] = (j > 200 ? 200 : 0); } return a[31]; }"
    "f"

let test_tr_type_conversions () =
  check_grid
    "short sa[100]; int a[100]; int f() { int i;\n\
     for (i=0;i<100;i++) a[i] = (int) sa[i] + 1; return a[42]; }"
    "f"

let test_tr_float_elementwise () =
  (* element-wise float ops vectorize exactly (no reassociation) *)
  check_grid
    "float a[100]; float b[100]; float c[100]; float f() { int i;\n\
     for (i=0;i<100;i++) c[i] = a[i] * b[i] + 0.5; return c[13]; }"
    "f"

let test_tr_live_out_scalar () =
  (* "last" must hold the final iteration's value after the loop *)
  check_grid
    "int a[100]; int f() { int last = -1; int i;\n\
     for (i=0;i<100;i++) { last = a[i] + i; } return last; }"
    "f"

let test_tr_induction_used_as_data () =
  check_grid
    "int a[100]; int f() { int i; for (i=0;i<100;i++) a[i] = i * 3 + 1; return a[77]; }"
    "f"

let test_tr_nested_inner () =
  check_grid ~bindings:[ ("N", 20) ]
    "int g[20][20]; int f(int x) { int i; int j;\n\
     for (i=0;i<N;i++) { for (j=0;j<N;j++) { g[i][j] = x + i * j; } }\n\
     return g[11][17]; }"
    "f"

let test_tr_paper_example5 () =
  check_grid
    "float a[512]; float b[1024]; float c[1024]; float d[512];\n\
     float f() { int i;\n\
     for (i = 0; i < 512/2-1; i++){\n\
       a[i] = b[2*i+1] * c[2*i+1] - b[2*i] * c[2*i];\n\
       d[i] = b[2*i] * c[2*i+1] + b[2*i+1] * c[2*i];\n\
     } return a[100] + d[100]; }"
    "f"

let test_tr_zero_trip () =
  check_grid
    "int a[8]; int f() { int i; for (i=0;i<0;i++) a[i] = 1; return a[0]; }"
    "f"

let test_tr_one_trip () =
  check_grid
    "int a[8]; int f() { int i; for (i=0;i<1;i++) a[i] = 42; return a[0]; }"
    "f"

let test_tr_float_reduction_tolerance () =
  (* float reductions reassociate; compare within tolerance *)
  let src =
    "float a[256]; float f() { float s = 0; int i; for (i=0;i<256;i++) s += a[i]; return s; }"
  in
  let to_f = function
    | Some (Ir_interp.VF f) -> f
    | _ -> Alcotest.fail "expected float result"
  in
  let r_scalar, _ = run src "f" in
  List.iter
    (fun (vf, if_) ->
      let r_vec, _ = run ~plan:{ Vectorizer.Transform.vf; if_ } src "f" in
      let s = to_f r_scalar and v = to_f r_vec in
      if abs_float (s -. v) > 1e-3 *. (abs_float s +. 1.) then
        Alcotest.failf "float reduction diverged: %f vs %f (vf=%d if=%d)" s v vf
          if_)
    vf_if_grid

(* ------------------------------------------------------------------ *)
(* Baseline cost model behaviour                                        *)
(* ------------------------------------------------------------------ *)

let choose_for ?bindings src =
  let info = analyze_first ?bindings src in
  Vectorizer.Costmodel.choose (Vectorizer.Legality.of_info info)

let test_cm_dot_product_picks_4_2 () =
  (* the paper's running example: baseline picks (VF=4, IF=2) *)
  let p =
    choose_for
      "int vec[512]; int f() { int sum = 0; int i;\n\
       for (i = 0; i < 512; i++) sum += vec[i] * vec[i]; return sum; }"
  in
  Alcotest.(check int) "VF" 4 p.Vectorizer.Transform.vf;
  Alcotest.(check int) "IF" 2 p.Vectorizer.Transform.if_

let test_cm_short_picks_wider () =
  (* 16-bit elements fit 8 lanes in the baseline's 128-bit budget *)
  let p =
    choose_for
      "short a[512]; short b[512]; void f() { int i;\n\
       for (i = 0; i < 512; i++) a[i] = b[i]; }"
  in
  Alcotest.(check bool) "VF >= 8" true (p.Vectorizer.Transform.vf >= 8)

let test_cm_gather_stays_scalar () =
  (* non-unit stride: the gather cost should keep the baseline at VF=1 *)
  let p =
    choose_for
      "int a[64]; int b[1024]; void f() { int i;\n\
       for (i = 0; i < 64; i++) a[i] = b[16*i]; }"
  in
  Alcotest.(check int) "VF" 1 p.Vectorizer.Transform.vf

let test_cm_illegal_loop_no_vectorize () =
  let p =
    choose_for
      "int a[64]; void f() { int i; for (i=1;i<64;i++) a[i] = a[i-1]; }"
  in
  Alcotest.(check int) "VF" 1 p.Vectorizer.Transform.vf

let test_planner_pragma_wins () =
  let src =
    "int a[256]; int b[256]; int f() { int i;\n\
     #pragma clang loop vectorize_width(16) interleave_count(4)\n\
     for (i=0;i<256;i++) a[i] = b[i] + 1; return a[0]; }"
  in
  let m = lower src in
  let report = Vectorizer.Planner.run_modul m in
  match report with
  | [ d ] ->
      Alcotest.(check int) "vf honoured" 16
        d.Vectorizer.Planner.d_applied.Vectorizer.Transform.vf;
      Alcotest.(check int) "if honoured" 4
        d.Vectorizer.Planner.d_applied.Vectorizer.Transform.if_
  | _ -> Alcotest.fail "expected one decision"

let test_planner_pragma_clamped () =
  let src =
    "int a[256]; int f() { int i;\n\
     #pragma clang loop vectorize_width(64) interleave_count(2)\n\
     for (i=4;i<256;i++) a[i] = a[i-4] + 1; return a[0]; }"
  in
  let m = lower src in
  let report = Vectorizer.Planner.run_modul m in
  (match report with
  | [ d ] ->
      Alcotest.(check int) "vf clamped to dependence distance" 4
        d.Vectorizer.Planner.d_applied.Vectorizer.Transform.vf
  | _ -> Alcotest.fail "expected one decision");
  (* and the clamped program still computes the right thing *)
  let st = Ir_interp.init_state m in
  let r = Ir_interp.run_func st (find_fn m "f") () in
  let m2 = lower src in
  let st2 = Ir_interp.init_state m2 in
  let r2 = Ir_interp.run_func st2 (find_fn m2 "f") () in
  Alcotest.(check bool) "clamped result matches scalar" true (r = r2)

let test_planner_disable_pragma () =
  let src =
    "int a[256]; int b[256]; void f() { int i;\n\
     #pragma clang loop vectorize(disable)\n\
     for (i=0;i<256;i++) a[i] = b[i]; }"
  in
  let m = lower src in
  let report = Vectorizer.Planner.run_modul m in
  match report with
  | [ d ] ->
      Alcotest.(check int) "vf 1" 1
        d.Vectorizer.Planner.d_applied.Vectorizer.Transform.vf
  | _ -> Alcotest.fail "expected one decision"

(* ------------------------------------------------------------------ *)
(* QCheck: random loops, random plans — semantics preserved             *)
(* ------------------------------------------------------------------ *)

let gen_loop_program : (string * int * int) QCheck.arbitrary =
  let open QCheck.Gen in
  let body_stmt =
    oneofl
      [ "a[i] = b[i] + 3;";
        "a[i] = b[i] * c[i];";
        "s += b[i];";
        "s += a[i] * 2;";
        "a[i] = i * 5;";
        "if (b[i] > 128) a[i] = b[i];";
        "a[i] = b[i] > 100 ? 1 : 0;";
        "a[i] = (int) sh[i];";
        "a[i] = b[2*i];";
        "s ^= b[i];";
        "a[i] = b[i] << 2;";
        "a[i] = c[i] - b[i];" ]
  in
  let gen =
    let* n_stmts = int_range 1 4 in
    let* stmts = list_repeat n_stmts body_stmt in
    let* bound = int_range 1 130 in
    let* step = oneofl [ 1; 1; 1; 2 ] in
    let* vf = oneofl [ 1; 2; 4; 8; 16 ] in
    let* if_ = oneofl [ 1; 2; 4 ] in
    let src =
      Printf.sprintf
        "int a[512]; int b[512]; int c[512]; short sh[512];\n\
         int f() { int s = 0; int i;\n\
         for (i = 0; i < %d; i += %d) { %s }\n\
         return s + a[0] + a[%d]; }"
        bound step (String.concat " " stmts) (max 0 (bound - 1))
    in
    return (src, vf, if_)
  in
  QCheck.make gen ~print:(fun (s, vf, if_) ->
      Printf.sprintf "vf=%d if=%d\n%s" vf if_ s)

let prop_vectorization_preserves_semantics =
  QCheck.Test.make ~name:"vectorization preserves semantics (random loops)"
    ~count:300 gen_loop_program (fun (src, vf, if_) ->
      let r1, f1 = run src "f" in
      let r2, f2 = run ~plan:{ Vectorizer.Transform.vf; if_ } src "f" in
      r1 = r2 && f1 = f2)

let prop_baseline_plan_is_legal =
  QCheck.Test.make ~name:"baseline cost model always yields a legal plan"
    ~count:200 gen_loop_program (fun (src, _, _) ->
      let m = lower src in
      let fn = find_fn m "f" in
      List.for_all
        (fun info ->
          let leg = Vectorizer.Legality.of_info info in
          let p = Vectorizer.Costmodel.choose leg in
          let vf, if_ =
            Vectorizer.Legality.clamp leg ~vf:p.Vectorizer.Transform.vf
              ~if_:p.Vectorizer.Transform.if_
          in
          vf = p.Vectorizer.Transform.vf && if_ = p.Vectorizer.Transform.if_)
        (Analysis.Loopinfo.innermost_infos fn))

(* the full optimization pipeline — LICM (hoist + store promotion), CSE,
   planner — must preserve semantics on random programs, including memory
   reductions like a[0] += ... *)
let gen_opt_program : string QCheck.arbitrary =
  let open QCheck.Gen in
  let stmt =
    oneofl
      [ "a[i] = b[i] + c[0];";
        "c[0] += b[i];";
        "a[i] = b[i] * k;";
        "c[1] = c[1] + a[i] * b[i];";
        "s += b[i];";
        "a[i] = b[i] + i * k;";
        "if (b[i] > 100) c[2] += 1;" ]
  in
  let gen =
    let* n_stmts = int_range 1 4 in
    let* stmts = list_repeat n_stmts stmt in
    let* bound = int_range 1 80 in
    return
      (Printf.sprintf
         "int a[256]; int b[256]; int c[8];\n\
          int f() { int s = 0; int k = 3; int i;\n\
          for (i = 0; i < %d; i++) { %s }\n\
          return s + a[0] + c[0] + c[1] + c[2]; }"
         bound (String.concat " " stmts))
  in
  QCheck.make gen ~print:(fun s -> s)

let prop_opt_pipeline_preserves_semantics =
  QCheck.Test.make ~name:"LICM/CSE/promotion preserve semantics" ~count:200
    gen_opt_program (fun src ->
      let plain = run src "f" in
      let m = lower src in
      let fn = find_fn m "f" in
      ignore (Vectorizer.Licm.run_func fn);
      ignore (Vectorizer.Cse.run_func fn);
      ignore (Vectorizer.Licm.run_func fn);
      let st = Ir_interp.init_state m in
      let r = Ir_interp.run_func st fn () in
      (r, Ir_interp.state_fingerprint st r) = plain)

let prop_opt_then_vectorize_preserves =
  QCheck.Test.make ~name:"optimize + vectorize preserves semantics" ~count:150
    gen_opt_program (fun src ->
      let plain = run src "f" in
      let m = lower src in
      let fn = find_fn m "f" in
      ignore (Vectorizer.Licm.run_func fn);
      ignore (Vectorizer.Cse.run_func fn);
      ignore (Vectorizer.Licm.run_func fn);
      List.iter
        (fun info ->
          let leg = Vectorizer.Legality.of_info info in
          let vf, if_ = Vectorizer.Legality.clamp leg ~vf:8 ~if_:2 in
          ignore
            (Vectorizer.Transform.vectorize_in_func fn info
               { Vectorizer.Transform.vf; if_ }))
        (Analysis.Loopinfo.innermost_infos fn);
      let st = Ir_interp.init_state m in
      let r = Ir_interp.run_func st fn () in
      (r, Ir_interp.state_fingerprint st r) = plain)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_vectorization_preserves_semantics; prop_baseline_plan_is_legal;
      prop_opt_pipeline_preserves_semantics; prop_opt_then_vectorize_preserves ]

let suite =
  [
    ( "vectorizer.legality",
      [
        Alcotest.test_case "simple copy legal" `Quick test_legal_simple_copy;
        Alcotest.test_case "trip count" `Quick test_legal_trip_count;
        Alcotest.test_case "flow dependence blocks" `Quick
          test_legal_flow_dependence_blocks;
        Alcotest.test_case "distance limits VF" `Quick
          test_legal_distance_limits_vf;
        Alcotest.test_case "anti dependence ok" `Quick
          test_legal_anti_dependence_ok;
        Alcotest.test_case "reduction recognised" `Quick
          test_legal_reduction_recognised;
        Alcotest.test_case "carried scalar blocks" `Quick
          test_legal_carried_scalar_blocks;
        Alcotest.test_case "inner while blocks" `Quick test_legal_while_blocks;
        Alcotest.test_case "predicate if-convertible" `Quick
          test_legal_predicate_ok;
        Alcotest.test_case "indirect index blocks" `Quick
          test_legal_unknown_index_blocks;
        Alcotest.test_case "pragma clamp" `Quick test_clamp_pragma;
        Alcotest.test_case "clamp: distance-1 recurrence" `Quick
          test_clamp_distance1_recurrence;
        Alcotest.test_case "clamp: store/load-ahead pair" `Quick
          test_clamp_store_load_ahead_pair;
        Alcotest.test_case "clamp: aliasing store pair" `Quick
          test_clamp_aliasing_store_pair;
        Alcotest.test_case "clamp: float reduction order" `Quick
          test_clamp_float_reduction_order;
      ] );
    ( "vectorizer.transform",
      [
        Alcotest.test_case "copy loop" `Quick test_tr_copy;
        Alcotest.test_case "non-multiple trip count" `Quick
          test_tr_trip_not_multiple;
        Alcotest.test_case "int add reduction" `Quick test_tr_reduction_int;
        Alcotest.test_case "xor reduction" `Quick test_tr_reduction_xor;
        Alcotest.test_case "mul reduction" `Quick test_tr_reduction_mul;
        Alcotest.test_case "strided load" `Quick test_tr_strided_access;
        Alcotest.test_case "step-2 loop" `Quick test_tr_step2_loop;
        Alcotest.test_case "downward loop" `Quick test_tr_downward_loop;
        Alcotest.test_case "predicated store" `Quick test_tr_predicate_store;
        Alcotest.test_case "if/else store" `Quick test_tr_predicate_else;
        Alcotest.test_case "predicated value merge" `Quick
          test_tr_predicate_merge_value;
        Alcotest.test_case "ternary select" `Quick test_tr_ternary;
        Alcotest.test_case "type conversions" `Quick test_tr_type_conversions;
        Alcotest.test_case "float elementwise" `Quick test_tr_float_elementwise;
        Alcotest.test_case "live-out scalar" `Quick test_tr_live_out_scalar;
        Alcotest.test_case "induction as data" `Quick
          test_tr_induction_used_as_data;
        Alcotest.test_case "nested loop inner" `Quick test_tr_nested_inner;
        Alcotest.test_case "paper example 5" `Quick test_tr_paper_example5;
        Alcotest.test_case "zero-trip loop" `Quick test_tr_zero_trip;
        Alcotest.test_case "one-trip loop" `Quick test_tr_one_trip;
        Alcotest.test_case "float reduction tolerance" `Quick
          test_tr_float_reduction_tolerance;
      ]
      @ qcheck_tests );
    ( "vectorizer.costmodel",
      [
        Alcotest.test_case "dot product -> (4,2)" `Quick
          test_cm_dot_product_picks_4_2;
        Alcotest.test_case "short elements widen" `Quick
          test_cm_short_picks_wider;
        Alcotest.test_case "gather stays scalar" `Quick
          test_cm_gather_stays_scalar;
        Alcotest.test_case "illegal loop untouched" `Quick
          test_cm_illegal_loop_no_vectorize;
        Alcotest.test_case "pragma honoured" `Quick test_planner_pragma_wins;
        Alcotest.test_case "pragma clamped" `Quick test_planner_pragma_clamped;
        Alcotest.test_case "vectorize(disable)" `Quick
          test_planner_disable_pragma;
      ] );
  ]
