(* Tests for the mini-C frontend: lexer, parser, pretty-printer, sema. *)

open Minic

let parse = Parser.parse_string

(* The paper's five dataset examples (Section 3.2), verbatim modulo the
   declarations they elide. *)
let example1 =
  {|
int assign1[1024]; int assign2[1024]; int assign3[1024];
short short_a[1024]; short short_b[1024]; short short_c[1024];
int f() {
  int i;
  #pragma clang loop vectorize_width(4) interleave_count(2)
  for (i = 0; i < 1023; i+=2) {
    assign1[i] = (int) short_a[i];
    assign1[i+1] = (int) short_a[i+1];
    assign2[i] = (int) short_b[i];
    assign2[i+1] = (int) short_b[i+1];
    assign3[i] = (int) short_c[i];
    assign3[i+1] = (int) short_c[i+1];
  }
  return assign1[0];
}
|}

let example2 =
  {|
int G[64][64];
void f(int x) {
  int i; int j;
  for (i=0; i<64; i++) {
    #pragma clang loop vectorize_width(8) interleave_count(1)
    for (j=0; j<64; j++) {
      G[i][j] = x;
    }
  }
}
|}

let example3 =
  {|
int a[2048]; int b[2048];
void f() {
  int i;
  #pragma clang loop vectorize_width(2) interleave_count(4)
  for (i=0; i<1024*2; i++){
    int j = a[i];
    b[i] = (j > 255 ? 255 : 0);
  }
}
|}

let example4 =
  {|
float A[64][64]; float B[64][64]; float C[64][64];
void f(float alpha) {
  int i; int j; int k;
  for (i = 0; i < 64; i++){
    for (j = 0; j < 64; j++){
      float sum = 0;
      #pragma clang loop vectorize_width(4) interleave_count(2)
      for (k = 0; k < 64; k++) {
        sum += alpha*A[i][k] * B[k][j];
      }
      C[i][j] = sum;
    }
  }
}
|}

let example5 =
  {|
float a[512]; float b[1024]; float c[1024]; float d[512];
void f() {
  int i;
  #pragma clang loop vectorize_width(4) interleave_count(2)
  for (i = 0; i < 512/2-1; i++){
    a[i] = b[2*i+1] * c[2*i+1] - b[2*i] * c[2*i];
    d[i] = b[2*i] * c[2*i+1] + b[2*i+1] * c[2*i];
  }
}
|}

let paper_examples =
  [ ("example1", example1); ("example2", example2); ("example3", example3);
    ("example4", example4); ("example5", example5) ]

(* ------------------------------------------------------------------ *)
(* Lexer tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_lex_simple () =
  let toks = Lexer.tokenize "int x = 42;" in
  let kinds = List.map (fun t -> t.Token.tok) toks in
  Alcotest.(check int) "token count" 6 (List.length kinds);
  match kinds with
  | [ Token.KW_INT; Token.IDENT "x"; Token.ASSIGN; Token.INT_LIT 42L;
      Token.SEMI; Token.EOF ] ->
      ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lex_operators () =
  let src = "a += b << 2; c >>= 1; d != e && f <= g;" in
  let toks = Lexer.tokenize src in
  let has tok = List.exists (fun t -> t.Token.tok = tok) toks in
  Alcotest.(check bool) "+=" true (has Token.PLUS_ASSIGN);
  Alcotest.(check bool) "<<" true (has Token.LSHIFT);
  Alcotest.(check bool) ">>=" true (has Token.RSHIFT_ASSIGN);
  Alcotest.(check bool) "!=" true (has Token.NEQ);
  Alcotest.(check bool) "&&" true (has Token.AMPAMP);
  Alcotest.(check bool) "<=" true (has Token.LE)

let test_lex_floats () =
  let toks = Lexer.tokenize "1.5 2e3 0.25f 3." in
  let floats =
    List.filter_map
      (fun t -> match t.Token.tok with Token.FLOAT_LIT f -> Some f | _ -> None)
      toks
  in
  Alcotest.(check (list (float 1e-9))) "floats" [ 1.5; 2000.0; 0.25; 3.0 ] floats

let test_lex_hex () =
  let toks = Lexer.tokenize "0xff 0x10" in
  let ints =
    List.filter_map
      (fun t -> match t.Token.tok with Token.INT_LIT i -> Some i | _ -> None)
      toks
  in
  Alcotest.(check (list int64)) "hex ints" [ 255L; 16L ] ints

let test_lex_comments () =
  let src = "int /* block \n comment */ x; // line comment\nint y;" in
  let toks = Lexer.tokenize src in
  let idents =
    List.filter_map
      (fun t -> match t.Token.tok with Token.IDENT s -> Some s | _ -> None)
      toks
  in
  Alcotest.(check (list string)) "idents" [ "x"; "y" ] idents

let test_lex_pragma () =
  let src = "#pragma clang loop vectorize_width(4) interleave_count(2)\nint x;" in
  let toks = Lexer.tokenize src in
  match (List.hd toks).Token.tok with
  | Token.PRAGMA p ->
      Alcotest.(check string) "pragma text"
        "clang loop vectorize_width(4) interleave_count(2)" p
  | _ -> Alcotest.fail "expected pragma token first"

let test_lex_positions () =
  let toks = Lexer.tokenize "int\n  x;" in
  let x = List.nth toks 1 in
  Alcotest.(check int) "line" 2 x.Token.pos.Token.line;
  Alcotest.(check int) "col" 3 x.Token.pos.Token.col

let test_lex_error () =
  Alcotest.check_raises "bad char"
    (Lexer.Error ("unexpected character '@'", { Token.line = 1; col = 1 }))
    (fun () -> ignore (Lexer.tokenize "@"))

(* regression: malformed numeric literals must raise Lexer.Error, not leak
   Failure from Int64.of_string / float_of_string *)
let test_lex_bad_literals () =
  List.iter
    (fun src ->
      match Lexer.tokenize src with
      | exception Lexer.Error _ -> ()
      | _ -> Alcotest.failf "expected Lexer.Error on %S" src)
    [ "0x"; "0X"; "99999999999999999999"; "0xFFFFFFFFFFFFFFFFF" ];
  (* well-formed neighbours still lex *)
  List.iter
    (fun (src, expect) ->
      match (List.hd (Lexer.tokenize src)).Token.tok with
      | Token.INT_LIT n -> Alcotest.(check int64) src expect n
      | _ -> Alcotest.failf "expected int literal for %S" src)
    [ ("0x10", 16L); ("0", 0L) ]

(* ------------------------------------------------------------------ *)
(* Parser tests                                                         *)
(* ------------------------------------------------------------------ *)

let find_func prog name =
  List.find_map
    (function Ast.Func f when f.Ast.f_name = name -> Some f | _ -> None)
    prog
  |> function
  | Some f -> f
  | None -> Alcotest.failf "function %s not found" name

let collect_loops prog =
  let acc = ref [] in
  Ast.iter_program_stmts
    (fun s -> match s with Ast.For f -> acc := f :: !acc | _ -> ())
    prog;
  List.rev !acc

let test_parse_paper_examples () =
  List.iter
    (fun (name, src) ->
      let prog = parse src in
      Alcotest.(check bool)
        (name ^ " parses to nonempty program")
        true (prog <> []))
    paper_examples

let test_parse_pragma_attach () =
  let prog = parse example1 in
  match collect_loops prog with
  | [ f ] -> (
      match f.Ast.pragma with
      | Some p ->
          Alcotest.(check (option int)) "VF" (Some 4) p.Ast.vectorize_width;
          Alcotest.(check (option int)) "IF" (Some 2) p.Ast.interleave_count
      | None -> Alcotest.fail "pragma not attached")
  | ls -> Alcotest.failf "expected 1 loop, got %d" (List.length ls)

let test_parse_nested_pragma () =
  let prog = parse example2 in
  match collect_loops prog with
  | [ outer; inner ] ->
      Alcotest.(check bool) "outer has no pragma" true (outer.Ast.pragma = None);
      Alcotest.(check bool) "inner has pragma" true (inner.Ast.pragma <> None)
  | ls -> Alcotest.failf "expected 2 loops, got %d" (List.length ls)

let test_parse_ternary () =
  let prog = parse example3 in
  let f = find_func prog "f" in
  Alcotest.(check bool) "body nonempty" true (f.Ast.f_body <> [])

let test_parse_precedence () =
  let prog = parse "int f() { return 1 + 2 * 3; }" in
  let f = find_func prog "f" in
  match f.Ast.f_body with
  | [ Ast.Return (Some (Ast.Binop (Ast.Add, Ast.IntLit 1L,
        Ast.Binop (Ast.Mul, Ast.IntLit 2L, Ast.IntLit 3L)))) ] ->
      ()
  | _ -> Alcotest.fail "precedence wrong: expected 1 + (2 * 3)"

let test_parse_assoc () =
  let prog = parse "int f() { return 10 - 3 - 2; }" in
  let f = find_func prog "f" in
  match f.Ast.f_body with
  | [ Ast.Return (Some (Ast.Binop (Ast.Sub,
        Ast.Binop (Ast.Sub, Ast.IntLit 10L, Ast.IntLit 3L), Ast.IntLit 2L))) ] ->
      ()
  | _ -> Alcotest.fail "associativity wrong: expected (10 - 3) - 2"

let test_parse_assign_right_assoc () =
  let prog = parse "int f() { int a; int b; a = b = 1; return a; }" in
  let f = find_func prog "f" in
  match List.nth f.Ast.f_body 2 with
  | Ast.Expr (Ast.Assign (Ast.Ident "a", Ast.Assign (Ast.Ident "b", _))) -> ()
  | _ -> Alcotest.fail "assignment should be right-associative"

let test_parse_multidim () =
  let prog = parse "int A[4][8]; int f() { return A[1][2]; }" in
  match List.hd prog with
  | Ast.Global g ->
      Alcotest.(check int) "dims" 2 (List.length g.Ast.g_ty.Ast.dims)
  | _ -> Alcotest.fail "expected global"

let test_parse_attributes () =
  let prog =
    parse
      "int vec[512] __attribute__((aligned(16)));\n\
       __attribute__((noinline)) int g() { return vec[0]; }"
  in
  (match List.hd prog with
  | Ast.Global g ->
      Alcotest.(check bool) "aligned attr" true
        (List.mem (Ast.Aligned 16) g.Ast.g_attrs)
  | _ -> Alcotest.fail "expected global");
  let g = find_func prog "g" in
  Alcotest.(check bool) "noinline attr" true (List.mem Ast.Noinline g.Ast.f_attrs)

let test_parse_for_decl_init () =
  let prog = parse "int f() { int s = 0; for (int i = 0; i < 8; i++) s += i; return s; }" in
  match collect_loops prog with
  | [ { Ast.init = Some (Ast.Decl (_, "i", Some (Ast.IntLit 0L))); _ } ] -> ()
  | _ -> Alcotest.fail "for-init declaration not parsed"

let test_parse_cast () =
  let prog = parse "short s[8]; int f() { return (int) s[0]; }" in
  let f = find_func prog "f" in
  match f.Ast.f_body with
  | [ Ast.Return (Some (Ast.Cast ({ Ast.base = Ast.Int; _ }, _))) ] -> ()
  | _ -> Alcotest.fail "cast not parsed"

let test_parse_unknown_pragma_ignored () =
  let prog = parse "#pragma once\nint f() { return 0; }" in
  Alcotest.(check int) "one decl" 1 (List.length prog)

let test_parse_error_reports_position () =
  match parse "int f() { return 1 + ; }" with
  | exception Parser.Error (_, _) -> ()
  | _ -> Alcotest.fail "expected parse error"

let test_parse_comma_decls () =
  let prog = parse "int f() { int i, j, k; i = 1; j = 2; k = 3; return i+j+k; }" in
  let f = find_func prog "f" in
  match List.hd f.Ast.f_body with
  | Ast.Block decls -> Alcotest.(check int) "3 decls" 3 (List.length decls)
  | _ -> Alcotest.fail "comma declarations should become a block"

let test_parse_while () =
  let prog = parse "int f() { int i = 0; while (i < 10) i++; return i; }" in
  let found = ref false in
  Ast.iter_program_stmts
    (fun s -> match s with Ast.While _ -> found := true | _ -> ())
    prog;
  Alcotest.(check bool) "while parsed" true !found

let test_parse_pragma_clause_order () =
  (* interleave_count before vectorize_width must also work *)
  let src =
    "int a[8]; int f() { int i;\n\
     #pragma clang loop interleave_count(8) vectorize_width(64)\n\
     for (i = 0; i < 8; i++) a[i] = i; return a[0]; }"
  in
  match collect_loops (parse src) with
  | [ { Ast.pragma = Some p; _ } ] ->
      Alcotest.(check (option int)) "VF" (Some 64) p.Ast.vectorize_width;
      Alcotest.(check (option int)) "IF" (Some 8) p.Ast.interleave_count
  | _ -> Alcotest.fail "pragma not parsed"

(* ------------------------------------------------------------------ *)
(* Pretty-printer round trip                                            *)
(* ------------------------------------------------------------------ *)

let strip_pragmas_prog prog =
  (* structural equality after round trip, including pragmas *)
  prog

let test_roundtrip_examples () =
  List.iter
    (fun (name, src) ->
      let p1 = parse src in
      let printed = Pretty.program_to_string p1 in
      let p2 = parse printed in
      if strip_pragmas_prog p1 <> strip_pragmas_prog p2 then
        Alcotest.failf "%s: round trip changed the AST;\n%s" name printed)
    paper_examples

let test_roundtrip_precedence_parens () =
  let src = "int f() { return (1 + 2) * 3; }" in
  let p1 = parse src in
  let p2 = parse (Pretty.program_to_string p1) in
  Alcotest.(check bool) "parens preserved structurally" true (p1 = p2)

let test_pragma_printing () =
  let p = { Ast.vectorize_width = Some 4; interleave_count = Some 2;
            vectorize_enable = None } in
  Alcotest.(check string) "pragma text"
    "#pragma clang loop vectorize_width(4) interleave_count(2)"
    (Pretty.pragma_to_string p)

(* ------------------------------------------------------------------ *)
(* Sema tests                                                           *)
(* ------------------------------------------------------------------ *)

let test_sema_examples_ok () =
  List.iter
    (fun (name, src) ->
      match Sema.analyze (parse src) with
      | _ -> ()
      | exception Sema.Error msg -> Alcotest.failf "%s: sema error %s" name msg)
    paper_examples

let test_sema_undeclared () =
  Alcotest.(check bool) "undeclared rejected" true
    (match Sema.analyze (parse "int f() { return zz; }") with
    | exception Sema.Error _ -> true
    | _ -> false)

let test_sema_bindings () =
  let src = "int a[N]; int f() { int i; for (i=0;i<N;i++) a[i]=i; return a[0]; }" in
  (* without a binding for N this must fail... *)
  (match Sema.analyze (parse src) with
  | exception Sema.Error _ -> ()
  | _ -> Alcotest.fail "expected failure without binding");
  (* ...and succeed with one *)
  ignore (Sema.analyze ~bindings:[ ("N", 128) ] (parse src))

let test_sema_type_inference () =
  let prog = parse "float x[4]; int f() { return 0; }" in
  let env = Sema.analyze prog in
  let t = Sema.infer env (Ast.Index (Ast.Ident "x", Ast.IntLit 0L)) in
  Alcotest.(check bool) "x[0] is float" true (t.Ast.base = Ast.Float && t.Ast.dims = [])

let test_sema_promote () =
  Alcotest.(check bool) "short+short -> int" true
    (Sema.promote Ast.Short Ast.Short = Ast.Int);
  Alcotest.(check bool) "int+float -> float" true
    (Sema.promote Ast.Int Ast.Float = Ast.Float);
  Alcotest.(check bool) "float+double -> double" true
    (Sema.promote Ast.Float Ast.Double = Ast.Double)

let test_sema_bad_pragma () =
  let src =
    "int a[8]; int f() { int i;\n\
     #pragma clang loop vectorize_width(3)\n\
     for (i = 0; i < 8; i++) a[i] = i; return a[0]; }"
  in
  Alcotest.(check bool) "non-power-of-two VF rejected" true
    (match Sema.analyze (parse src) with
    | exception Sema.Error _ -> true
    | _ -> false)

let test_sema_array_assign_rejected () =
  let src = "int a[8]; int b[8]; int f() { a = b; return 0; }" in
  Alcotest.(check bool) "array assignment rejected" true
    (match Sema.analyze (parse src) with
    | exception Sema.Error _ -> true
    | _ -> false)

let test_sema_const_eval () =
  let env = Sema.make_env ~bindings:[ ("N", 100) ] () in
  let e = Ast.Binop (Ast.Sub, Ast.Binop (Ast.Div, Ast.Ident "N", Ast.IntLit 2L),
                     Ast.IntLit 1L) in
  Alcotest.(check int) "N/2-1" 49 (Sema.eval_const env e)

(* ------------------------------------------------------------------ *)
(* QCheck: random expressions round-trip through the pretty printer     *)
(* ------------------------------------------------------------------ *)

let gen_expr : Ast.expr QCheck.arbitrary =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun i -> Ast.IntLit (Int64.of_int i)) (int_range 0 1000);
        map (fun v -> Ast.Ident v) (oneofl [ "a"; "b"; "i"; "n" ]) ]
  in
  let rec expr n =
    if n <= 0 then leaf
    else
      frequency
        [ (2, leaf);
          ( 3,
            map3
              (fun op l r -> Ast.Binop (op, l, r))
              (oneofl
                 [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Shl; Ast.BitAnd;
                   Ast.Lt; Ast.Eq; Ast.LogAnd ])
              (expr (n / 2)) (expr (n / 2)) );
          (1, map (fun e -> Ast.Unop (Ast.Neg, e)) (expr (n - 1)));
          ( 1,
            map3
              (fun c t f -> Ast.Ternary (c, t, f))
              (expr (n / 3)) (expr (n / 3)) (expr (n / 3)) );
          ( 1,
            map2 (fun a i -> Ast.Index (a, i))
              (oneofl [ Ast.Ident "arr" ])
              (expr (n / 2)) ) ]
  in
  QCheck.make (expr 6) ~print:Pretty.expr_to_string

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"pretty-printed expression reparses identically"
    ~count:500 gen_expr (fun e ->
      let src = Printf.sprintf "int f() { return %s; }" (Pretty.expr_to_string e) in
      match Parser.parse_string src with
      | [ Ast.Func { Ast.f_body = [ Ast.Return (Some e') ]; _ } ] -> e = e'
      | _ -> false)

let prop_lexer_never_crashes_on_printable =
  QCheck.Test.make ~name:"lexer raises only Lexer.Error on junk" ~count:200
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 50) QCheck.Gen.printable)
    (fun s ->
      match Lexer.tokenize s with
      | _ -> true
      | exception Lexer.Error _ -> true)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_expr_roundtrip; prop_lexer_never_crashes_on_printable ]

let suite =
  [
    ( "minic.lexer",
      [
        Alcotest.test_case "simple declaration" `Quick test_lex_simple;
        Alcotest.test_case "multi-char operators" `Quick test_lex_operators;
        Alcotest.test_case "float literals" `Quick test_lex_floats;
        Alcotest.test_case "hex literals" `Quick test_lex_hex;
        Alcotest.test_case "comments" `Quick test_lex_comments;
        Alcotest.test_case "pragma token" `Quick test_lex_pragma;
        Alcotest.test_case "source positions" `Quick test_lex_positions;
        Alcotest.test_case "lex error" `Quick test_lex_error;
        Alcotest.test_case "malformed literals (regression)" `Quick
          test_lex_bad_literals;
      ] );
    ( "minic.parser",
      [
        Alcotest.test_case "paper examples parse" `Quick test_parse_paper_examples;
        Alcotest.test_case "pragma attaches to loop" `Quick test_parse_pragma_attach;
        Alcotest.test_case "pragma attaches to inner loop" `Quick
          test_parse_nested_pragma;
        Alcotest.test_case "ternary" `Quick test_parse_ternary;
        Alcotest.test_case "operator precedence" `Quick test_parse_precedence;
        Alcotest.test_case "left associativity" `Quick test_parse_assoc;
        Alcotest.test_case "assignment right-assoc" `Quick
          test_parse_assign_right_assoc;
        Alcotest.test_case "multidimensional arrays" `Quick test_parse_multidim;
        Alcotest.test_case "attributes" `Quick test_parse_attributes;
        Alcotest.test_case "for-init declaration" `Quick test_parse_for_decl_init;
        Alcotest.test_case "casts" `Quick test_parse_cast;
        Alcotest.test_case "unknown pragma ignored" `Quick
          test_parse_unknown_pragma_ignored;
        Alcotest.test_case "parse error raised" `Quick
          test_parse_error_reports_position;
        Alcotest.test_case "comma declarations" `Quick test_parse_comma_decls;
        Alcotest.test_case "while loop" `Quick test_parse_while;
        Alcotest.test_case "pragma clause order" `Quick
          test_parse_pragma_clause_order;
      ] );
    ( "minic.pretty",
      [
        Alcotest.test_case "paper examples round-trip" `Quick
          test_roundtrip_examples;
        Alcotest.test_case "parens preserved" `Quick
          test_roundtrip_precedence_parens;
        Alcotest.test_case "pragma printing" `Quick test_pragma_printing;
      ]
      @ qcheck_tests );
    ( "minic.sema",
      [
        Alcotest.test_case "paper examples analyze" `Quick test_sema_examples_ok;
        Alcotest.test_case "undeclared identifier" `Quick test_sema_undeclared;
        Alcotest.test_case "symbolic bindings" `Quick test_sema_bindings;
        Alcotest.test_case "type inference" `Quick test_sema_type_inference;
        Alcotest.test_case "arithmetic promotion" `Quick test_sema_promote;
        Alcotest.test_case "bad pragma rejected" `Quick test_sema_bad_pragma;
        Alcotest.test_case "array assignment rejected" `Quick
          test_sema_array_assign_rejected;
        Alcotest.test_case "constant evaluation" `Quick test_sema_const_eval;
      ] );
  ]
