(* The parallel evaluation engine and its determinism contract.

   Four layers:
   - Parpool itself: ordering, exception choice, nesting, jobs=1 serial
     path, with_jobs restoration.
   - Equivalence: a --jobs 4 run must be bit-identical to --jobs 1 —
     reward tables, quarantine reports, probe results, and the bytes of a
     checkpoint written after training — including under an active fault
     spec (compile failures, traps, fuel, timeout spikes, timing noise).
   - Engines: the shared-artifact fast path (lower once, vectorize per
     action, memoized timing) must be bit-identical to the legacy
     per-action pipeline — serially, on the pool, with and without
     faults, down to trained checkpoint bytes.
   - Stress: four domains hammering one oracle's caches keep the merged
     statistics coherent and the cached values equal to a serial rerun. *)

let faults =
  Neurovec.Faults.create ~seed:7 ~compile:0.06 ~trap:0.05 ~fuel:0.04
    ~timeout:0.04 ~noise:0.08 ~tail:0.03 ()

let fault_options =
  { Neurovec.Pipeline.default_options with Neurovec.Pipeline.faults }

let bits = Int64.bits_of_float

(* ------------------------------------------------------------------ *)
(* Parpool                                                              *)
(* ------------------------------------------------------------------ *)

let test_map_order () =
  let xs = Array.init 100 Fun.id in
  let squares = Neurovec.Parpool.map ~jobs:4 (fun i -> i * i) xs in
  Alcotest.(check (array int))
    "input order" (Array.map (fun i -> i * i) xs) squares

let test_map_serial_path () =
  let xs = Array.init 10 Fun.id in
  Alcotest.(check (array int))
    "jobs=1 = Array.map"
    (Array.map succ xs)
    (Neurovec.Parpool.map ~jobs:1 succ xs)

let test_map_lowest_exception () =
  (* indices 10 and 30 raise; a serial left-to-right run surfaces 10 *)
  match
    Neurovec.Parpool.map ~jobs:4
      (fun i -> if i = 10 || i = 30 then failwith (string_of_int i) else i)
      (Array.init 50 Fun.id)
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg -> Alcotest.(check string) "lowest index" "10" msg

let test_map_nested_runs_serial () =
  (* nested maps must degrade to the serial path inside workers (and still
     compute the right thing) *)
  let outer =
    Neurovec.Parpool.map ~jobs:4
      (fun i ->
        Array.fold_left ( + ) 0
          (Neurovec.Parpool.map ~jobs:4 (fun j -> (i * 100) + j)
             (Array.init 10 Fun.id)))
      (Array.init 4 Fun.id)
  in
  Alcotest.(check (array int))
    "nested results"
    (Array.init 4 (fun i -> (i * 1000) + 45))
    outer

let test_with_jobs_restores () =
  let before = Neurovec.Parpool.jobs () in
  Neurovec.Parpool.with_jobs 3 (fun () ->
      Alcotest.(check int) "inside" 3 (Neurovec.Parpool.jobs ()));
  Alcotest.(check int) "restored" before (Neurovec.Parpool.jobs ());
  (match
     Neurovec.Parpool.with_jobs 5 (fun () -> failwith "boom")
   with
  | () -> Alcotest.fail "expected failure"
  | exception Failure _ -> ());
  Alcotest.(check int) "restored after raise" before (Neurovec.Parpool.jobs ())

(* ------------------------------------------------------------------ *)
(* Serial vs parallel equivalence                                       *)
(* ------------------------------------------------------------------ *)

(* a fresh sweep of the same corpus at a given pool size and through a
   chosen engine (legacy per-action pipeline vs shared-artifact fast
   path); fresh caches so the second run cannot coast on the first run's
   memoization *)
let sweep ?(legacy = false) ?(options = fault_options) ~jobs
    (programs : Dataset.Program.t array) =
  Neurovec.Frontend.clear ();
  let oracle =
    Neurovec.Reward.create ~legacy_pipeline:legacy ~options programs
  in
  let results =
    Neurovec.Parpool.with_jobs jobs (fun () ->
        Neurovec.Reward.sweep_all oracle)
  in
  (results, Neurovec.Reward.quarantine_report oracle)

let check_sweeps_equal (a_results, a_quar) (b_results, b_quar) =
  Alcotest.(check int) "lengths" (Array.length a_results)
    (Array.length b_results);
  Array.iteri
    (fun i s ->
      match (s, b_results.(i)) with
      | None, None -> ()
      | Some (sa, sr), Some (pa, pr) ->
          Alcotest.(check bool)
            (Printf.sprintf "program %d best action" i)
            true (sa = pa);
          Alcotest.(check int64)
            (Printf.sprintf "program %d reward bits" i)
            (bits sr) (bits pr)
      | _ -> Alcotest.failf "program %d: quarantine state diverged" i)
    a_results;
  Alcotest.(check (list (pair string string))) "quarantine report" a_quar
    b_quar

let test_sweep_bit_identical () =
  let programs = Dataset.Loopgen.generate ~seed:33 10 in
  check_sweeps_equal (sweep ~jobs:1 programs) (sweep ~jobs:4 programs)

let test_probe_samples_identical () =
  let programs = Dataset.Loopgen.generate ~seed:44 12 in
  let probe ~jobs =
    Neurovec.Frontend.clear ();
    let agent =
      Rl.Agent.create ~hidden:[ 8 ] ~space:Rl.Spaces.Discrete
        (Nn.Rng.create 5)
    in
    let oracle = Neurovec.Reward.create ~options:fault_options programs in
    Neurovec.Parpool.with_jobs jobs (fun () ->
        Neurovec.Framework.probe_samples agent oracle programs)
  in
  let s_samples, s_skipped = probe ~jobs:1 in
  let p_samples, p_skipped = probe ~jobs:4 in
  Alcotest.(check (list (pair string string))) "skipped" s_skipped p_skipped;
  Alcotest.(check int) "sample count" (Array.length s_samples)
    (Array.length p_samples);
  Array.iteri
    (fun i s ->
      Alcotest.(check int) "s_id" s.Rl.Ppo.s_id p_samples.(i).Rl.Ppo.s_id;
      Alcotest.(check bool)
        "embedding ids" true
        (s.Rl.Ppo.s_ids = p_samples.(i).Rl.Ppo.s_ids))
    s_samples

(* training end to end: same corpus, same seed, same faults -> the bytes
   of the saved checkpoint must not depend on the pool size or on which
   evaluation engine measured the rewards *)
let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let train_checkpoint ?(legacy = false) ?(batched = true)
    ?(options = fault_options) ~jobs path =
  Neurovec.Frontend.clear ();
  Neurovec.Parpool.with_jobs jobs (fun () ->
      let corpus = Dataset.Loopgen.generate ~seed:55 16 in
      let fw =
        Neurovec.Framework.create ~options ~legacy_pipeline:legacy ~seed:3
          corpus
      in
      ignore
        (Neurovec.Framework.train fw ~batched
           ~hyper:{ Rl.Ppo.default_hyper with batch_size = 64 }
           ~total_steps:192);
      Rl.Checkpoint.save fw.Neurovec.Framework.agent path)

let with_two_checkpoints f =
  let p1 = Filename.temp_file "neurovec_ckpt_a" ".agent" in
  let p2 = Filename.temp_file "neurovec_ckpt_b" ".agent" in
  Fun.protect
    ~finally:(fun () -> Sys.remove p1; Sys.remove p2)
    (fun () -> f p1 p2)

let test_training_checkpoint_bytes_identical () =
  with_two_checkpoints (fun p1 p4 ->
      train_checkpoint ~jobs:1 p1;
      train_checkpoint ~jobs:4 p4;
      Alcotest.(check bool)
        "checkpoint bytes identical" true
        (read_file p1 = read_file p4))

(* ------------------------------------------------------------------ *)
(* Legacy per-action pipeline vs shared-artifact fast path              *)
(* ------------------------------------------------------------------ *)

(* the shared-artifact engine (lower once, vectorize per action, memoized
   timing) must be indistinguishable from the legacy pipeline it
   replaced: same rewards to the bit, same quarantine reports, same
   checkpoint bytes — serially, on the pool, with and without an active
   fault spec *)

let engine_corpus () =
  Array.append
    (Array.sub Dataset.Llvm_suite.programs 0 4)
    (Dataset.Loopgen.generate ~seed:77 8)

let test_engines_identical_plain () =
  let programs = engine_corpus () in
  let options = Neurovec.Pipeline.default_options in
  check_sweeps_equal
    (sweep ~legacy:true ~options ~jobs:1 programs)
    (sweep ~legacy:false ~options ~jobs:1 programs)

let test_engines_identical_faults () =
  let programs = engine_corpus () in
  check_sweeps_equal
    (sweep ~legacy:true ~jobs:1 programs)
    (sweep ~legacy:false ~jobs:1 programs)

let test_engines_identical_pool () =
  (* legacy serial vs fast path fanned across 4 domains, faults active *)
  let programs = engine_corpus () in
  check_sweeps_equal
    (sweep ~legacy:true ~jobs:1 programs)
    (sweep ~legacy:false ~jobs:4 programs)

let test_engines_checkpoint_bytes_identical () =
  with_two_checkpoints (fun pl pf ->
      train_checkpoint ~legacy:true ~jobs:1 pl;
      train_checkpoint ~legacy:false ~jobs:1 pf;
      Alcotest.(check bool)
        "legacy and fast-path training produce identical checkpoints" true
        (read_file pl = read_file pf))

(* ------------------------------------------------------------------ *)
(* Batched vs scalar rollouts: trained-checkpoint bytes                 *)
(* ------------------------------------------------------------------ *)

(* the batched rollout path (forward_batch + pre-drawn randomness) must
   be invisible end to end: training the same corpus with the same seed
   writes byte-identical checkpoints whether rollouts run scalar or
   batched, serial or across the pool, with or without injected faults *)

let test_batched_checkpoint_bytes_identical () =
  with_two_checkpoints (fun ps pb ->
      train_checkpoint ~batched:false ~jobs:1 ps;
      train_checkpoint ~batched:true ~jobs:1 pb;
      Alcotest.(check bool)
        "scalar and batched rollouts write identical checkpoints" true
        (read_file ps = read_file pb))

let test_batched_checkpoint_pool () =
  with_two_checkpoints (fun ps pb ->
      train_checkpoint ~batched:false ~jobs:1 ps;
      train_checkpoint ~batched:true ~jobs:4 pb;
      Alcotest.(check bool)
        "scalar serial vs batched 4-domain pool, faults active" true
        (read_file ps = read_file pb))

let test_batched_checkpoint_no_faults () =
  let options = Neurovec.Pipeline.default_options in
  with_two_checkpoints (fun ps pb ->
      train_checkpoint ~options ~batched:false ~jobs:1 ps;
      train_checkpoint ~options ~batched:true ~jobs:4 pb;
      Alcotest.(check bool)
        "scalar vs batched pool on a clean pipeline" true
        (read_file ps = read_file pb))

(* ------------------------------------------------------------------ *)
(* Cache stress                                                         *)
(* ------------------------------------------------------------------ *)

let test_reward_cache_stress () =
  let programs = Dataset.Loopgen.generate ~seed:66 3 in
  Neurovec.Frontend.clear ();
  Neurovec.Stats.reset ();
  let oracle = Neurovec.Reward.create programs in
  let work = Array.init 300 Fun.id in
  let hammer =
    Neurovec.Parpool.map ~jobs:4
      (fun i ->
        Neurovec.Reward.reward oracle (i mod 3)
          (Rl.Spaces.of_flat (i mod Rl.Spaces.n_flat)))
      work
  in
  (* merged counters stay coherent: every lookup recorded exactly one hit
     or one miss, whatever the interleaving *)
  let snap = Neurovec.Stats.snapshot () in
  Alcotest.(check int) "hits + misses = lookups" 300
    (snap.Neurovec.Stats.reward_hits + snap.Neurovec.Stats.reward_misses);
  Alcotest.(check bool)
    "every distinct point missed at least once" true
    (snap.Neurovec.Stats.reward_misses >= 105);
  (* only 3 distinct programs ever hit the front end *)
  Alcotest.(check int) "front-end cache size" 3 (Neurovec.Frontend.size ());
  (* and the cached values equal a serial recomputation *)
  Array.iteri
    (fun i r ->
      let expect =
        Neurovec.Reward.reward oracle (i mod 3)
          (Rl.Spaces.of_flat (i mod Rl.Spaces.n_flat))
      in
      Alcotest.(check int64)
        (Printf.sprintf "work item %d" i)
        (bits expect) (bits r))
    hammer

let suite =
  [
    ( "parallel.pool",
      [
        Alcotest.test_case "map preserves order" `Quick test_map_order;
        Alcotest.test_case "jobs=1 serial path" `Quick test_map_serial_path;
        Alcotest.test_case "lowest-index exception" `Quick
          test_map_lowest_exception;
        Alcotest.test_case "nested maps run serial" `Quick
          test_map_nested_runs_serial;
        Alcotest.test_case "with_jobs restores" `Quick test_with_jobs_restores;
      ] );
    ( "parallel.equivalence",
      [
        Alcotest.test_case "sweep bit-identical under faults" `Slow
          test_sweep_bit_identical;
        Alcotest.test_case "probe_samples identical" `Slow
          test_probe_samples_identical;
        Alcotest.test_case "training checkpoints byte-identical" `Slow
          test_training_checkpoint_bytes_identical;
      ] );
    ( "parallel.engines",
      [
        Alcotest.test_case "legacy vs shared-artifact, no faults" `Slow
          test_engines_identical_plain;
        Alcotest.test_case "legacy vs shared-artifact under faults" `Slow
          test_engines_identical_faults;
        Alcotest.test_case "legacy serial vs shared-artifact pool" `Slow
          test_engines_identical_pool;
        Alcotest.test_case "legacy vs shared-artifact checkpoints" `Slow
          test_engines_checkpoint_bytes_identical;
      ] );
    ( "batched.checkpoint",
      [
        Alcotest.test_case "scalar vs batched rollouts" `Slow
          test_batched_checkpoint_bytes_identical;
        Alcotest.test_case "scalar vs batched pool under faults" `Slow
          test_batched_checkpoint_pool;
        Alcotest.test_case "scalar vs batched pool, no faults" `Slow
          test_batched_checkpoint_no_faults;
      ] );
    ( "parallel.stress",
      [
        Alcotest.test_case "4 domains on one reward cache" `Quick
          test_reward_cache_stress;
      ] );
  ]
