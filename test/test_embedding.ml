(* Tests for AST path-context extraction and the code2vec model. *)

let parse_stmt src =
  match Minic.Parser.parse_string (Printf.sprintf "int a[64]; int b[64]; void f() { %s }" src) with
  | [ _; _; Minic.Ast.Func f ] -> Minic.Ast.Block f.Minic.Ast.f_body
  | _ -> Alcotest.fail "parse failed"

(* ------------------------------------------------------------------ *)
(* Path contexts                                                        *)
(* ------------------------------------------------------------------ *)

let test_leaves_of_expr () =
  let t = Embedding.Ast_path.tree_of_expr
      (Minic.Ast.Binop (Minic.Ast.Add, Minic.Ast.Ident "x", Minic.Ast.IntLit 3L))
  in
  let leaves = Embedding.Ast_path.leaves_with_paths t in
  Alcotest.(check int) "two leaves" 2 (List.length leaves);
  Alcotest.(check (list string)) "leaf labels" [ "x"; "3" ]
    (List.map fst leaves)

let test_path_through_lca () =
  let t = Embedding.Ast_path.tree_of_expr
      (Minic.Ast.Binop (Minic.Ast.Add, Minic.Ast.Ident "x", Minic.Ast.IntLit 3L))
  in
  match Embedding.Ast_path.extract t with
  | [ c ] ->
      Alcotest.(check string) "left" "x" c.Embedding.Ast_path.left;
      Alcotest.(check string) "right" "3" c.Embedding.Ast_path.right;
      Alcotest.(check bool) "path nonempty" true
        (String.length c.Embedding.Ast_path.path > 0)
  | cs -> Alcotest.failf "expected 1 context, got %d" (List.length cs)

let test_contexts_capped () =
  let s = parse_stmt "int i; for (i = 0; i < 64; i++) { a[i] = b[i] * b[i] + i - 3; }" in
  let ctxs = Embedding.Ast_path.contexts_of_stmt ~max_contexts:10 s in
  Alcotest.(check bool) "at most 10" true (List.length ctxs <= 10);
  Alcotest.(check bool) "nonempty" true (ctxs <> [])

let test_contexts_deterministic () =
  let s = parse_stmt "int i; for (i = 0; i < 64; i++) a[i] = b[i];" in
  let a = Embedding.Ast_path.contexts_of_stmt s in
  let b = Embedding.Ast_path.contexts_of_stmt s in
  Alcotest.(check bool) "same contexts" true (a = b)

let test_similar_loops_share_paths () =
  (* same structure, different names: paths identical *)
  let s1 = parse_stmt "int i; for (i = 0; i < 64; i++) a[i] = b[i];" in
  let s2 = parse_stmt "int j; for (j = 0; j < 64; j++) b[j] = a[j];" in
  let paths s =
    Embedding.Ast_path.contexts_of_stmt s
    |> List.map (fun c -> c.Embedding.Ast_path.path)
  in
  Alcotest.(check bool) "structural paths equal" true (paths s1 = paths s2)

(* ------------------------------------------------------------------ *)
(* Vocab                                                                *)
(* ------------------------------------------------------------------ *)

let test_vocab_ranges () =
  let v = Embedding.Vocab.default in
  List.iter
    (fun s ->
      let id = Embedding.Vocab.token_id v s in
      Alcotest.(check bool) "token id in range" true
        (id >= 0 && id < v.Embedding.Vocab.n_tokens))
    [ "x"; "sum"; "42"; "10000"; "" ]

let test_vocab_numeral_buckets () =
  let v = Embedding.Vocab.default in
  Alcotest.(check int) "3 and 5 collide (both small)"
    (Embedding.Vocab.token_id v "3") (Embedding.Vocab.token_id v "5");
  Alcotest.(check bool) "3 and 3000 differ" true
    (Embedding.Vocab.token_id v "3" <> Embedding.Vocab.token_id v "3000")

let test_vocab_case_fold () =
  let v = Embedding.Vocab.default in
  Alcotest.(check int) "case-insensitive"
    (Embedding.Vocab.token_id v "Sum") (Embedding.Vocab.token_id v "sum")

(* ------------------------------------------------------------------ *)
(* Code2vec                                                             *)
(* ------------------------------------------------------------------ *)

let mk_model ?cfg () =
  Embedding.Code2vec.create ?cfg (Nn.Rng.create 17)

let some_ids model =
  let s = parse_stmt "int i; for (i = 0; i < 64; i++) { a[i] = b[i] * 2; }" in
  Embedding.Code2vec.encode model (Embedding.Ast_path.contexts_of_stmt s)

let test_c2v_forward_shape () =
  let m = mk_model () in
  let c = Embedding.Code2vec.forward_ids m (some_ids m) in
  Alcotest.(check int) "code dim" 128 (Array.length c.Embedding.Code2vec.code);
  let asum = Array.fold_left ( +. ) 0.0 c.Embedding.Code2vec.alphas in
  Alcotest.(check (float 1e-6)) "attention sums to 1" 1.0 asum

let test_c2v_empty_contexts () =
  let m = mk_model () in
  let c = Embedding.Code2vec.forward_ids m [||] in
  Alcotest.(check bool) "finite output" true
    (Array.for_all Float.is_finite c.Embedding.Code2vec.code)

let test_c2v_similar_code_similar_vec () =
  let m = mk_model () in
  let vec src =
    let s = parse_stmt src in
    (Embedding.Code2vec.forward m (Embedding.Ast_path.contexts_of_stmt s))
      .Embedding.Code2vec.code
  in
  let d a b =
    let acc = ref 0.0 in
    Array.iteri (fun i x -> acc := !acc +. ((x -. b.(i)) ** 2.0)) a;
    sqrt !acc
  in
  (* v2 differs from v1 only in a constant within the same magnitude
     bucket, so its vocabulary ids — and with them the embedding — agree
     exactly; v3 is structurally different *)
  let v1 = vec "int i; for (i = 0; i < 64; i++) a[i] = b[i];" in
  let v2 = vec "int i; for (i = 0; i < 100; i++) a[i] = b[i];" in
  let v3 = vec "int i; for (i = 0; i < 64; i++) { if (b[i] > 3) { int s = 0; s += b[i]; a[i] = s * s; } }" in
  Alcotest.(check bool) "bucketed constants embed identically" true
    (d v1 v2 < 1e-9);
  Alcotest.(check bool) "different structure embeds differently" true
    (d v1 v3 > 1e-6)

(* finite-difference gradient check through the whole model *)
let test_c2v_gradients () =
  let m = mk_model () in
  let ids = some_ids m in
  let w = Array.init 128 (fun i -> sin (float_of_int i)) in
  let loss () =
    Nn.Tensor.dot (Embedding.Code2vec.forward_ids m ids).Embedding.Code2vec.code w
  in
  Embedding.Code2vec.zero_grad m;
  let c = Embedding.Code2vec.forward_ids m ids in
  Embedding.Code2vec.backward m c ~dcode:w;
  let check name get set analytic =
    let saved = get () in
    set (saved +. 1e-5);
    let lp = loss () in
    set (saved -. 1e-5);
    let lm = loss () in
    set saved;
    let numeric = (lp -. lm) /. 2e-5 in
    if abs_float (numeric -. analytic) > 1e-2 *. (1.0 +. abs_float numeric) then
      Alcotest.failf "%s: numeric %f vs analytic %f" name numeric analytic
  in
  (* attention vector component *)
  check "attn[3]"
    (fun () -> m.Embedding.Code2vec.attn.(3))
    (fun v -> m.Embedding.Code2vec.attn.(3) <- v)
    m.Embedding.Code2vec.g_attn.(3);
  (* a token-embedding entry actually used by the first context *)
  let id0 = (Embedding.Code2vec.forward_ids m ids).Embedding.Code2vec.ids.(0) in
  let tok_idx = (id0.Embedding.Code2vec.li * 32) + 1 in
  check "tok emb"
    (fun () -> m.Embedding.Code2vec.tok.Nn.Tensor.data.(tok_idx))
    (fun v -> m.Embedding.Code2vec.tok.Nn.Tensor.data.(tok_idx) <- v)
    m.Embedding.Code2vec.g_tok.Nn.Tensor.data.(tok_idx);
  (* a combiner weight *)
  check "W[5,7]"
    (fun () -> Nn.Tensor.get m.Embedding.Code2vec.combine.Nn.Dense.w 5 7)
    (fun v -> Nn.Tensor.set m.Embedding.Code2vec.combine.Nn.Dense.w 5 7 v)
    (Nn.Tensor.get m.Embedding.Code2vec.combine.Nn.Dense.gw 5 7)

let test_c2v_mean_pooling () =
  let cfg = { Embedding.Code2vec.default_config with use_attention = false } in
  let m = mk_model ~cfg () in
  let c = Embedding.Code2vec.forward_ids m (some_ids m) in
  let n = Array.length c.Embedding.Code2vec.alphas in
  Array.iter
    (fun a ->
      Alcotest.(check (float 1e-9)) "uniform" (1.0 /. float_of_int n) a)
    c.Embedding.Code2vec.alphas

(* regression: [encode] capped contexts but [forward_ids] trusted its
   input, so ids handed in directly (a pre-encoded corpus, a batched
   caller) blew past cfg.max_contexts — both entry points must clamp *)
let test_c2v_clamps_max_contexts () =
  let cfg = { Embedding.Code2vec.default_config with max_contexts = 3 } in
  let m = mk_model ~cfg () in
  let s =
    parse_stmt
      "int i; for (i = 0; i < 64; i++) { a[i] = b[i] * b[i] + i - 3; }"
  in
  let ctxs = Embedding.Ast_path.contexts_of_stmt s in
  Alcotest.(check bool) "loop yields more contexts than the cap" true
    (List.length ctxs > 3);
  Alcotest.(check int) "encode clamps" 3
    (Array.length (Embedding.Code2vec.encode m ctxs));
  let over =
    Array.init 10 (fun i ->
        { Embedding.Code2vec.li = i mod 4; pi = i; ri = i mod 3 })
  in
  let c = Embedding.Code2vec.forward_ids m over in
  Alcotest.(check int) "forward_ids clamps" 3
    (Array.length c.Embedding.Code2vec.ids);
  Alcotest.(check int) "attention follows the clamp" 3
    (Array.length c.Embedding.Code2vec.alphas)

(* regression: the empty-context pad {li=0; pi=0; ri=0} used to train the
   real vocabulary rows behind id 0 — its embedding gradients must stay
   frozen while the rest of the model still learns *)
let test_c2v_pad_gradient_frozen () =
  let m = mk_model () in
  let w = Array.init 128 (fun i -> cos (float_of_int i)) in
  let all_zero (t : Nn.Tensor.mat) =
    Array.for_all (fun v -> v = 0.0) t.Nn.Tensor.data
  in
  Embedding.Code2vec.zero_grad m;
  let c = Embedding.Code2vec.forward_ids m [||] in
  Embedding.Code2vec.backward m c ~dcode:w;
  Alcotest.(check bool) "pad leaves the token table untouched" true
    (all_zero m.Embedding.Code2vec.g_tok);
  Alcotest.(check bool) "pad leaves the path table untouched" true
    (all_zero m.Embedding.Code2vec.g_path);
  (* a real snippet does reach the tables through the same code path *)
  Embedding.Code2vec.zero_grad m;
  let c2 = Embedding.Code2vec.forward_ids m (some_ids m) in
  Embedding.Code2vec.backward m c2 ~dcode:w;
  Alcotest.(check bool) "real contexts update the token table" true
    (not (all_zero m.Embedding.Code2vec.g_tok))

(* ------------------------------------------------------------------ *)
(* Batched embedding: bit-identical to per-snippet forward_ids          *)
(* ------------------------------------------------------------------ *)

let bits = Int64.bits_of_float

let check_batch_matches_scalar (m : Embedding.Code2vec.t)
    (snippets : Embedding.Code2vec.ids array array) : unit =
  let arena = Nn.Batch.create_arena () in
  let d_code = m.Embedding.Code2vec.cfg.Embedding.Code2vec.d_code in
  (* twice through the same arena: the second pass reuses warm slots *)
  for pass = 1 to 2 do
    let codes = Embedding.Code2vec.forward_batch m arena snippets in
    Array.iteri
      (fun i ids ->
        let expect =
          (Embedding.Code2vec.forward_ids m ids).Embedding.Code2vec.code
        in
        for j = 0 to d_code - 1 do
          let got = Nn.Batch.get codes ((i * d_code) + j) in
          if bits expect.(j) <> bits got then
            Alcotest.failf "pass %d snippet %d dim %d: %h vs %h" pass i j
              expect.(j) got
        done)
      snippets
  done

let test_c2v_forward_batch_bitwise () =
  let m = mk_model () in
  let ids_of src =
    let s = parse_stmt src in
    Embedding.Code2vec.encode m (Embedding.Ast_path.contexts_of_stmt s)
  in
  let over =
    Array.init 40 (fun i ->
        { Embedding.Code2vec.li = i mod 5; pi = i mod 7; ri = i mod 3 })
  in
  check_batch_matches_scalar m
    [|
      some_ids m;
      [||] (* empty snippet: the padded row *);
      ids_of "int i; for (i = 0; i < 64; i++) { if (b[i] > 3) a[i] = b[i]; }";
      over (* clamps inside the batch *);
      some_ids m (* duplicate snippet: exercises the context dedup *);
    |];
  (* and a batch that is nothing but pads *)
  check_batch_matches_scalar m [| [||]; [||] |]

let test_c2v_forward_batch_mean_pooling () =
  let cfg = { Embedding.Code2vec.default_config with use_attention = false } in
  let m = mk_model ~cfg () in
  check_batch_matches_scalar m [| some_ids m; [||]; some_ids m |]

let suite =
  [
    ( "embedding.paths",
      [
        Alcotest.test_case "expr leaves" `Quick test_leaves_of_expr;
        Alcotest.test_case "path through LCA" `Quick test_path_through_lca;
        Alcotest.test_case "context cap" `Quick test_contexts_capped;
        Alcotest.test_case "deterministic" `Quick test_contexts_deterministic;
        Alcotest.test_case "structure-invariant paths" `Quick
          test_similar_loops_share_paths;
      ] );
    ( "embedding.vocab",
      [
        Alcotest.test_case "ids in range" `Quick test_vocab_ranges;
        Alcotest.test_case "numeral buckets" `Quick test_vocab_numeral_buckets;
        Alcotest.test_case "case folding" `Quick test_vocab_case_fold;
      ] );
    ( "embedding.code2vec",
      [
        Alcotest.test_case "forward shape" `Quick test_c2v_forward_shape;
        Alcotest.test_case "empty contexts" `Quick test_c2v_empty_contexts;
        Alcotest.test_case "similarity structure" `Quick
          test_c2v_similar_code_similar_vec;
        Alcotest.test_case "gradient check" `Quick test_c2v_gradients;
        Alcotest.test_case "mean pooling ablation" `Quick test_c2v_mean_pooling;
        Alcotest.test_case "max_contexts clamp" `Quick
          test_c2v_clamps_max_contexts;
        Alcotest.test_case "pad gradient frozen" `Quick
          test_c2v_pad_gradient_frozen;
      ] );
    ( "batched.embedding",
      [
        Alcotest.test_case "forward_batch bitwise" `Quick
          test_c2v_forward_batch_bitwise;
        Alcotest.test_case "forward_batch mean pooling" `Quick
          test_c2v_forward_batch_mean_pooling;
      ] );
  ]
