(* Tests for action spaces, the agent's distributions, and PPO learning on
   synthetic bandits. *)

let mk_agent ?(space = Rl.Spaces.Discrete) seed =
  Rl.Agent.create ~space (Nn.Rng.create seed)

let some_ids agent =
  let prog = Minic.Parser.parse_string
      "int a[64]; int b[64]; int kernel() { int i; for (i=0;i<64;i++) a[i]=b[i]; return a[0]; }"
  in
  let stmt = Neurovec.Extractor.embedding_stmt prog in
  Embedding.Code2vec.encode agent.Rl.Agent.c2v
    (Embedding.Ast_path.contexts_of_stmt stmt)

(* ------------------------------------------------------------------ *)
(* Spaces                                                               *)
(* ------------------------------------------------------------------ *)

let test_spaces_grid () =
  Alcotest.(check int) "35 actions" 35 (List.length Rl.Spaces.all_actions);
  Alcotest.(check int) "n_flat" 35 Rl.Spaces.n_flat

let test_spaces_flat_roundtrip () =
  List.iter
    (fun a ->
      let a' = Rl.Spaces.of_flat (Rl.Spaces.flat_of a) in
      Alcotest.(check bool) "round trip" true (a = a'))
    Rl.Spaces.all_actions

let test_spaces_of_flat_clamps () =
  let a = Rl.Spaces.of_flat 9999 in
  Alcotest.(check int) "max vf idx" (Rl.Spaces.n_vf - 1) a.Rl.Spaces.vf_idx;
  let b = Rl.Spaces.of_flat (-5) in
  Alcotest.(check int) "min" 0 b.Rl.Spaces.vf_idx

let test_spaces_values_powers_of_two () =
  Array.iter
    (fun v -> Alcotest.(check bool) "pow2" true (v land (v - 1) = 0))
    Rl.Spaces.vf_values

(* ------------------------------------------------------------------ *)
(* Agent distributions                                                  *)
(* ------------------------------------------------------------------ *)

let test_sample_logp_consistency () =
  List.iter
    (fun space ->
      let agent = mk_agent ~space 11 in
      let ids = some_ids agent in
      for _ = 1 to 20 do
        let f = Rl.Agent.forward agent ids in
        let taken = Rl.Agent.sample agent f in
        let lp = Rl.Agent.logp agent f taken in
        if abs_float (lp -. taken.Rl.Agent.logp) > 1e-9 then
          Alcotest.failf "%s: logp mismatch %f vs %f"
            (Rl.Spaces.kind_to_string space)
            lp taken.Rl.Agent.logp
      done)
    [ Rl.Spaces.Discrete; Rl.Spaces.Continuous1; Rl.Spaces.Continuous2 ]

let test_predict_deterministic () =
  let agent = mk_agent 12 in
  let ids = some_ids agent in
  let a = Rl.Agent.predict agent ids in
  let b = Rl.Agent.predict agent ids in
  Alcotest.(check bool) "same action" true (a = b)

let test_entropy_positive () =
  let agent = mk_agent 13 in
  let f = Rl.Agent.forward agent (some_ids agent) in
  Alcotest.(check bool) "entropy > 0" true (Rl.Agent.entropy agent f > 0.0)

(* finite-difference check: d(logp)/d(logits) for the discrete head *)
let test_discrete_logp_gradient () =
  let agent = mk_agent 14 in
  let ids = some_ids agent in
  let f = Rl.Agent.forward agent ids in
  let taken = Rl.Agent.sample agent f in
  let dpi = Rl.Agent.dpi_of agent f taken ~dlogp_coef:1.0 ~dent_coef:0.0 in
  (* perturb a logit and recompute logp *)
  List.iter
    (fun k ->
      let pi = Array.copy f.Rl.Agent.pi in
      pi.(k) <- pi.(k) +. 1e-5;
      let lp_p = Rl.Agent.logp agent { f with Rl.Agent.pi } taken in
      pi.(k) <- pi.(k) -. 2e-5;
      let lp_m = Rl.Agent.logp agent { f with Rl.Agent.pi } taken in
      let numeric = (lp_p -. lp_m) /. 2e-5 in
      if abs_float (numeric -. dpi.(k)) > 1e-3 then
        Alcotest.failf "dlogits[%d]: numeric %f vs analytic %f" k numeric
          dpi.(k))
    [ 0; 3; 7; 9 ]

(* ------------------------------------------------------------------ *)
(* Batched inference: bit-identical to the scalar agent                 *)
(* ------------------------------------------------------------------ *)

let bits = Int64.bits_of_float

let all_spaces =
  [ Rl.Spaces.Discrete; Rl.Spaces.Continuous1; Rl.Spaces.Continuous2 ]

(* a small mixed corpus: distinct snippets, a duplicate, and an empty one *)
let corpus_ids agent =
  let ids_of src =
    let prog = Minic.Parser.parse_string src in
    Embedding.Code2vec.encode agent.Rl.Agent.c2v
      (Embedding.Ast_path.contexts_of_stmt
         (Neurovec.Extractor.embedding_stmt prog))
  in
  let s0 = some_ids agent in
  let s1 =
    ids_of
      "float x[64]; float y[64]; int kernel() { float s = 0; int i; for (i=0;i<64;i++) s += x[i]*y[i]; return (int) s; }"
  in
  let s2 =
    ids_of
      "int a[64]; int kernel() { int i; for (i=0;i<64;i++) if (a[i] > 3) a[i] = i; return a[0]; }"
  in
  [| s0; s1; [||]; s0; s2 |]

let check_forward_batch ~what agent idss batched =
  Alcotest.(check int) (what ^ ": result count") (Array.length idss)
    (Array.length batched);
  Array.iteri
    (fun i ids ->
      let f = Rl.Agent.forward agent ids in
      let bpi, bv = batched.(i) in
      if bits f.Rl.Agent.v <> bits bv then
        Alcotest.failf "%s: snippet %d value %h vs %h" what i f.Rl.Agent.v bv;
      Array.iteri
        (fun k s ->
          if bits s <> bits bpi.(k) then
            Alcotest.failf "%s: snippet %d logit %d: %h vs %h" what i k s
              bpi.(k))
        f.Rl.Agent.pi)
    idss

let pool_map f xs = Neurovec.Parpool.map ~jobs:4 f xs

let test_forward_batch_bitwise () =
  List.iter
    (fun space ->
      let agent = mk_agent ~space 41 in
      let idss = corpus_ids agent in
      let what s =
        Printf.sprintf "%s %s" (Rl.Spaces.kind_to_string space) s
      in
      check_forward_batch ~what:(what "jobs 1") agent idss
        (Rl.Agent.forward_batch agent idss);
      check_forward_batch ~what:(what "jobs 4 serial map") agent idss
        (Rl.Agent.forward_batch ~jobs:4 agent idss);
      check_forward_batch ~what:(what "jobs 4 pool") agent idss
        (Rl.Agent.forward_batch ~jobs:4 ~map:pool_map agent idss))
    all_spaces

let test_predict_batch_matches () =
  List.iter
    (fun space ->
      let agent = mk_agent ~space 42 in
      let idss = corpus_ids agent in
      let expect = Array.map (Rl.Agent.predict agent) idss in
      List.iter
        (fun (what, got) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s" (Rl.Spaces.kind_to_string space) what)
            true (expect = got))
        [
          ("jobs 1", Rl.Agent.predict_batch agent idss);
          ("jobs 3 serial map", Rl.Agent.predict_batch ~jobs:3 agent idss);
          ( "jobs 4 pool",
            Rl.Agent.predict_batch ~jobs:4 ~map:pool_map agent idss );
        ])
    all_spaces

(* the batched rollout order — draw the randomness first, forward the
   whole batch, then apply each draw — must reproduce the scalar
   [sample] exactly: same action, raw sample, logp, and RNG state *)
let test_draw_sample_with_equiv () =
  List.iter
    (fun space ->
      let a = mk_agent ~space 43 and b = mk_agent ~space 43 in
      let ids = some_ids a in
      for step = 1 to 10 do
        let fa = Rl.Agent.forward a ids in
        let ta = Rl.Agent.sample a fa in
        let d = Rl.Agent.draw b in
        let bpi, _ = (Rl.Agent.forward_batch b [| ids |]).(0) in
        let tb = Rl.Agent.sample_with b ~pi:bpi d in
        let what s =
          Printf.sprintf "%s step %d %s" (Rl.Spaces.kind_to_string space)
            step s
        in
        Alcotest.(check bool) (what "action") true
          (ta.Rl.Agent.act = tb.Rl.Agent.act);
        Alcotest.(check int64) (what "logp") (bits ta.Rl.Agent.logp)
          (bits tb.Rl.Agent.logp);
        Alcotest.(check bool) (what "raw") true
          (Array.map bits ta.Rl.Agent.raw = Array.map bits tb.Rl.Agent.raw)
      done;
      (* both streams consumed the same number of draws *)
      Alcotest.(check (float 0.0)) "rng in lockstep"
        (Nn.Rng.float a.Rl.Agent.rng)
        (Nn.Rng.float b.Rl.Agent.rng))
    all_spaces

(* ------------------------------------------------------------------ *)
(* PPO on synthetic bandits                                             *)
(* ------------------------------------------------------------------ *)

(* one context, one rewarded action: PPO must find it *)
let test_ppo_learns_fixed_target () =
  let agent = mk_agent 15 in
  let samples = [| { Rl.Ppo.s_id = 0; s_ids = some_ids agent } |] in
  let target = { Rl.Spaces.vf_idx = 3; if_idx = 1 } in
  let reward _ (a : Rl.Spaces.action) =
    if a = target then 1.0 else if a.Rl.Spaces.vf_idx = 3 then 0.3 else 0.0
  in
  ignore
    (Rl.Ppo.train
       ~hyper:{ Rl.Ppo.default_hyper with batch_size = 64; lr = 3e-3 }
       agent ~samples ~reward ~total_steps:1500);
  let predicted = Rl.Agent.predict agent samples.(0).Rl.Ppo.s_ids in
  Alcotest.(check bool) "found the rewarded action" true (predicted = target)

(* two distinguishable contexts with different optimal actions *)
let test_ppo_distinguishes_contexts () =
  let agent = mk_agent 16 in
  let ids_of src =
    let prog = Minic.Parser.parse_string src in
    Embedding.Code2vec.encode agent.Rl.Agent.c2v
      (Embedding.Ast_path.contexts_of_stmt
         (Neurovec.Extractor.embedding_stmt prog))
  in
  let s0 =
    ids_of "int a[64]; int kernel() { int i; for (i=0;i<64;i++) a[i] = i; return a[0]; }"
  in
  let s1 =
    ids_of
      "float x[64]; float y[64]; int kernel() { float s = 0; int i; for (i=0;i<64;i++) s += x[i]*y[i]; return (int) s; }"
  in
  let samples =
    [| { Rl.Ppo.s_id = 0; s_ids = s0 }; { Rl.Ppo.s_id = 1; s_ids = s1 } |]
  in
  let reward id (a : Rl.Spaces.action) =
    match id with
    | 0 -> if a.Rl.Spaces.vf_idx = 1 then 1.0 else 0.0
    | _ -> if a.Rl.Spaces.vf_idx = 5 then 1.0 else 0.0
  in
  ignore
    (Rl.Ppo.train
       ~hyper:{ Rl.Ppo.default_hyper with batch_size = 128; lr = 3e-3 }
       agent ~samples ~reward ~total_steps:4000);
  let p0 = Rl.Agent.predict agent s0 and p1 = Rl.Agent.predict agent s1 in
  Alcotest.(check int) "context 0 -> vf idx 1" 1 p0.Rl.Spaces.vf_idx;
  Alcotest.(check int) "context 1 -> vf idx 5" 5 p1.Rl.Spaces.vf_idx

let test_ppo_reward_improves () =
  let agent = mk_agent 17 in
  let samples = [| { Rl.Ppo.s_id = 0; s_ids = some_ids agent } |] in
  let reward _ (a : Rl.Spaces.action) =
    float_of_int a.Rl.Spaces.vf_idx /. 6.0
  in
  let hist =
    Rl.Ppo.train
      ~hyper:{ Rl.Ppo.default_hyper with batch_size = 64; lr = 3e-3 }
      agent ~samples ~reward ~total_steps:1280
  in
  let first = (List.hd hist).Rl.Ppo.reward_mean in
  let last = (List.hd (List.rev hist)).Rl.Ppo.reward_mean in
  Alcotest.(check bool)
    (Printf.sprintf "improves (%.3f -> %.3f)" first last)
    true (last > first)

let test_ppo_stats_shape () =
  let agent = mk_agent 18 in
  let samples = [| { Rl.Ppo.s_id = 0; s_ids = some_ids agent } |] in
  let hist =
    Rl.Ppo.train
      ~hyper:{ Rl.Ppo.default_hyper with batch_size = 50 }
      agent ~samples
      ~reward:(fun _ _ -> 0.5)
      ~total_steps:150
  in
  Alcotest.(check int) "three updates" 3 (List.length hist);
  List.iteri
    (fun i st ->
      Alcotest.(check int) "update number" (i + 1) st.Rl.Ppo.update;
      Alcotest.(check (float 1e-9)) "constant reward" 0.5 st.Rl.Ppo.reward_mean)
    hist

(* batched rollout collection must be invisible: same statistics to the
   bit, same final policy, whether the batch forward runs serially or
   sharded across the pool *)
let test_ppo_batched_rollouts_identical () =
  List.iter
    (fun space ->
      let reward id (a : Rl.Spaces.action) =
        (* deterministic, content-addressed: call order cannot matter *)
        float_of_int ((a.Rl.Spaces.vf_idx * 3) + a.Rl.Spaces.if_idx + id)
        /. 25.0
      in
      let run ~batched ~rollout_jobs ~rollout_map =
        let agent = mk_agent ~space 45 in
        let samples =
          [|
            { Rl.Ppo.s_id = 0; s_ids = some_ids agent };
            { Rl.Ppo.s_id = 1; s_ids = [||] };
          |]
        in
        let hist =
          Rl.Ppo.train
            ~hyper:{ Rl.Ppo.default_hyper with batch_size = 50; lr = 3e-3 }
            ~batched ~rollout_jobs ~rollout_map agent ~samples ~reward
            ~total_steps:200
        in
        (hist, Array.map (fun s -> Rl.Agent.predict agent s.Rl.Ppo.s_ids) samples)
      in
      let serial_map f xs = Array.map f xs in
      let hist_s, pred_s =
        run ~batched:false ~rollout_jobs:1 ~rollout_map:serial_map
      in
      List.iter
        (fun (what, rollout_jobs, rollout_map) ->
          let hist_b, pred_b = run ~batched:true ~rollout_jobs ~rollout_map in
          let what s =
            Printf.sprintf "%s %s %s" (Rl.Spaces.kind_to_string space) what s
          in
          Alcotest.(check int) (what "updates") (List.length hist_s)
            (List.length hist_b);
          List.iter2
            (fun (a : Rl.Ppo.stats) (b : Rl.Ppo.stats) ->
              Alcotest.(check int64) (what "reward mean")
                (Int64.bits_of_float a.Rl.Ppo.reward_mean)
                (Int64.bits_of_float b.Rl.Ppo.reward_mean);
              Alcotest.(check int64) (what "loss")
                (Int64.bits_of_float a.Rl.Ppo.loss)
                (Int64.bits_of_float b.Rl.Ppo.loss);
              Alcotest.(check int64) (what "entropy")
                (Int64.bits_of_float a.Rl.Ppo.entropy_mean)
                (Int64.bits_of_float b.Rl.Ppo.entropy_mean))
            hist_s hist_b;
          Alcotest.(check bool) (what "final policy") true (pred_s = pred_b))
        [
          ("batched jobs 1", 1, serial_map);
          ("batched jobs 4 pool", 4, pool_map);
        ])
    all_spaces

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                          *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_roundtrip () =
  let agent = mk_agent 19 in
  let ids = some_ids agent in
  let before = Rl.Agent.predict agent ids in
  let path = Filename.temp_file "neurovec" ".agent" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Rl.Checkpoint.save agent path;
      let loaded = Rl.Checkpoint.load path in
      let after = Rl.Agent.predict loaded ids in
      Alcotest.(check bool) "same prediction" true (before = after))

let test_checkpoint_rejects_garbage () =
  let path = Filename.temp_file "neurovec" ".agent" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_value oc ("something-else", 9);
      close_out oc;
      match Rl.Checkpoint.load path with
      | exception Rl.Checkpoint.Bad_checkpoint _ -> ()
      | _ -> Alcotest.fail "expected Bad_checkpoint")

(* ---- corruption matrix ---- *)

let with_temp f =
  let path = Filename.temp_file "neurovec" ".agent" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let expect_bad ~msg path =
  match Rl.Checkpoint.load path with
  | exception Rl.Checkpoint.Bad_checkpoint m ->
      Alcotest.(check bool)
        (Printf.sprintf "message %S mentions %S" m msg)
        true (contains ~sub:msg m)
  | _ -> Alcotest.fail "expected Bad_checkpoint"

let test_checkpoint_state_roundtrip () =
  let agent = mk_agent 20 in
  let st =
    { Rl.Train_state.ts_steps = 250; ts_update = 5;
      ts_history =
        [ { Rl.Train_state.update = 5; steps = 250; reward_mean = 0.25;
            loss = 0.5; entropy_mean = 1.2 } ];
      ts_optim = Nn.Optim.adam ~lr:1e-3 (); ts_rollbacks = 0 }
  in
  with_temp (fun path ->
      Rl.Checkpoint.save ~state:st agent path;
      Alcotest.(check bool) "no temp file left" false
        (Sys.file_exists (path ^ ".tmp"));
      match Rl.Checkpoint.load_full path with
      | _, None -> Alcotest.fail "state lost"
      | _, Some st' ->
          Alcotest.(check int) "steps" 250 st'.Rl.Train_state.ts_steps;
          Alcotest.(check int) "update" 5 st'.Rl.Train_state.ts_update;
          Alcotest.(check int) "history" 1
            (List.length st'.Rl.Train_state.ts_history))

let test_checkpoint_v1_compat () =
  let agent = mk_agent 21 in
  let ids = some_ids agent in
  let before = Rl.Agent.predict agent ids in
  with_temp (fun path ->
      (* a v1 file: header + bare agent, no CRC footer *)
      let oc = open_out_bin path in
      output_value oc ("neurovec-agent", 1);
      output_value oc agent;
      close_out oc;
      let loaded, state = Rl.Checkpoint.load_full path in
      Alcotest.(check bool) "no state in v1" true (state = None);
      Alcotest.(check bool) "same prediction" true
        (Rl.Agent.predict loaded ids = before))

let test_checkpoint_truncated_header () =
  with_temp (fun path ->
      write_file path "neu";
      expect_bad ~msg:"not an agent checkpoint" path)

let test_checkpoint_truncated_body () =
  with_temp (fun path ->
      (* valid header, then nothing *)
      let oc = open_out_bin path in
      output_value oc ("neurovec-agent", 2);
      close_out oc;
      expect_bad ~msg:"truncated or corrupt body" path;
      (* v1 header with no agent behind it *)
      let oc = open_out_bin path in
      output_value oc ("neurovec-agent", 1);
      close_out oc;
      expect_bad ~msg:"truncated or corrupt v1 body" path;
      (* a real checkpoint chopped mid-body *)
      Rl.Checkpoint.save (mk_agent 22) path;
      let bytes = read_file path in
      write_file path (String.sub bytes 0 (String.length bytes / 2));
      match Rl.Checkpoint.load path with
      | exception Rl.Checkpoint.Bad_checkpoint _ -> ()
      | _ -> Alcotest.fail "expected Bad_checkpoint")

let test_checkpoint_flipped_byte () =
  with_temp (fun path ->
      Rl.Checkpoint.save (mk_agent 23) path;
      let bytes = Bytes.of_string (read_file path) in
      (* flip one bit deep inside the payload: the marshal framing stays
         intact, so only the CRC can catch it *)
      let i = Bytes.length bytes / 2 in
      Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x40));
      write_file path (Bytes.to_string bytes);
      expect_bad ~msg:"CRC32" path)

let test_checkpoint_unsupported_version () =
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_value oc ("neurovec-agent", 99);
      close_out oc;
      expect_bad ~msg:"unsupported" path)

(* ---- kill-and-resume ---- *)

(* training 300 steps straight and training 100 steps, checkpointing,
   then resuming to 300 in a fresh process state must produce the same
   policy and the same statistics history *)
let test_ppo_resume_equivalence () =
  let hyper = { Rl.Ppo.default_hyper with batch_size = 50; lr = 3e-3 } in
  let reward _ (a : Rl.Spaces.action) =
    if a.Rl.Spaces.vf_idx = 3 then 1.0 else 0.1 *. float_of_int a.Rl.Spaces.if_idx
  in
  (* straight run *)
  let agent_a = mk_agent 24 in
  let ids_a = some_ids agent_a in
  let samples_a = [| { Rl.Ppo.s_id = 0; s_ids = ids_a } |] in
  let hist_a =
    Rl.Ppo.train ~hyper agent_a ~samples:samples_a ~reward ~total_steps:300
  in
  (* interrupted run: stop at 100, checkpoint, reload, continue to 300 *)
  with_temp (fun path ->
      let agent_b = mk_agent 24 in
      let samples_b = [| { Rl.Ppo.s_id = 0; s_ids = some_ids agent_b } |] in
      ignore
        (Rl.Ppo.train ~hyper ~checkpoint_path:path agent_b ~samples:samples_b
           ~reward ~total_steps:100);
      let agent_c, state = Rl.Checkpoint.load_full path in
      let st =
        match state with
        | Some st -> st
        | None -> Alcotest.fail "checkpoint carries no training state"
      in
      Alcotest.(check int) "checkpointed at 100 steps" 100
        st.Rl.Train_state.ts_steps;
      let samples_c = [| { Rl.Ppo.s_id = 0; s_ids = some_ids agent_c } |] in
      let hist_c =
        Rl.Ppo.train ~hyper ~resume:st agent_c ~samples:samples_c ~reward
          ~total_steps:300
      in
      Alcotest.(check int) "same number of updates" (List.length hist_a)
        (List.length hist_c);
      List.iter2
        (fun (a : Rl.Ppo.stats) (c : Rl.Ppo.stats) ->
          Alcotest.(check int) "update" a.Rl.Ppo.update c.Rl.Ppo.update;
          Alcotest.(check int) "steps" a.Rl.Ppo.steps c.Rl.Ppo.steps;
          Alcotest.(check (float 0.0)) "reward mean" a.Rl.Ppo.reward_mean
            c.Rl.Ppo.reward_mean;
          Alcotest.(check (float 0.0)) "loss" a.Rl.Ppo.loss c.Rl.Ppo.loss)
        hist_a hist_c;
      Alcotest.(check bool) "same final greedy policy" true
        (Rl.Agent.predict agent_a ids_a
        = Rl.Agent.predict agent_c samples_c.(0).Rl.Ppo.s_ids))

(* periodic checkpoints actually appear during training, not only at the
   end *)
let test_ppo_periodic_checkpoints () =
  with_temp (fun path ->
      let agent = mk_agent 25 in
      let samples = [| { Rl.Ppo.s_id = 0; s_ids = some_ids agent } |] in
      let seen = ref 0 in
      ignore
        (Rl.Ppo.train
           ~hyper:{ Rl.Ppo.default_hyper with batch_size = 50 }
           ~progress:(fun st ->
             if st.Rl.Ppo.steps < 300 && Sys.file_exists path then incr seen)
           ~checkpoint_path:path ~checkpoint_every:50 agent ~samples
           ~reward:(fun _ _ -> 0.5)
           ~total_steps:300);
      Alcotest.(check bool)
        (Printf.sprintf "mid-run checkpoints observed (%d)" !seen)
        true (!seen >= 1);
      Alcotest.(check bool) "final checkpoint loads" true
        (match Rl.Checkpoint.load_full path with
        | _, Some st -> st.Rl.Train_state.ts_steps = 300
        | _ -> false))

let suite =
  [
    ( "rl.spaces",
      [
        Alcotest.test_case "35-point grid" `Quick test_spaces_grid;
        Alcotest.test_case "flat round trip" `Quick test_spaces_flat_roundtrip;
        Alcotest.test_case "of_flat clamps" `Quick test_spaces_of_flat_clamps;
        Alcotest.test_case "powers of two" `Quick
          test_spaces_values_powers_of_two;
      ] );
    ( "rl.agent",
      [
        Alcotest.test_case "sample/logp consistency" `Quick
          test_sample_logp_consistency;
        Alcotest.test_case "predict deterministic" `Quick
          test_predict_deterministic;
        Alcotest.test_case "entropy positive" `Quick test_entropy_positive;
        Alcotest.test_case "discrete logp gradient" `Quick
          test_discrete_logp_gradient;
      ] );
    ( "rl.checkpoint",
      [
        Alcotest.test_case "round trip" `Quick test_checkpoint_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick
          test_checkpoint_rejects_garbage;
        Alcotest.test_case "state round trip" `Quick
          test_checkpoint_state_roundtrip;
        Alcotest.test_case "loads v1 files" `Quick test_checkpoint_v1_compat;
        Alcotest.test_case "truncated header" `Quick
          test_checkpoint_truncated_header;
        Alcotest.test_case "truncated body" `Quick
          test_checkpoint_truncated_body;
        Alcotest.test_case "flipped byte fails CRC" `Quick
          test_checkpoint_flipped_byte;
        Alcotest.test_case "unsupported version" `Quick
          test_checkpoint_unsupported_version;
      ] );
    ( "rl.ppo",
      [
        Alcotest.test_case "learns fixed target" `Slow
          test_ppo_learns_fixed_target;
        Alcotest.test_case "distinguishes contexts" `Slow
          test_ppo_distinguishes_contexts;
        Alcotest.test_case "reward improves" `Quick test_ppo_reward_improves;
        Alcotest.test_case "stats bookkeeping" `Quick test_ppo_stats_shape;
        Alcotest.test_case "kill-and-resume equivalence" `Quick
          test_ppo_resume_equivalence;
        Alcotest.test_case "periodic checkpoints" `Quick
          test_ppo_periodic_checkpoints;
      ] );
    ( "batched.agent",
      [
        Alcotest.test_case "forward_batch bitwise" `Quick
          test_forward_batch_bitwise;
        Alcotest.test_case "predict_batch matches" `Quick
          test_predict_batch_matches;
        Alcotest.test_case "draw + sample_with = sample" `Quick
          test_draw_sample_with_equiv;
      ] );
    ( "batched.ppo",
      [
        Alcotest.test_case "batched rollouts identical" `Slow
          test_ppo_batched_rollouts_identical;
      ] );
  ]
