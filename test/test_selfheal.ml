(* Self-healing training: the durable-write fault layer (Fsio), the
   numeric-health sentinels and their deterministic backoff, the
   known-good checkpoint lineage with automatic rollback, and the
   fail-closed recovery of every durable writer (checkpoint, reward
   journal, serve store) under injected ENOSPC / EIO / short writes.

   The load-bearing claims, in test form:
   - an injected disk fault never damages the previous good state, and
     the same logical write succeeds on retry;
   - a NaN gradient trips the sentinel, rolls back to the newest
     known-good checkpoint, and the whole recovery — trip update,
     restored bytes, backoff schedule — is bit-identical at --jobs 1
     and --jobs 4;
   - torn tails are dropped, never replayed, and stale .tmp files are
     swept, never resurrected. *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* scoped Fsio injector: always uninstalled afterwards, so no fault
   leaks into later suites *)
let with_injector (inj : Fsio.injector) (f : unit -> 'a) : 'a =
  Fsio.set_injector (Some inj);
  Fun.protect ~finally:(fun () -> Fsio.set_injector None) f

let temp_dir_seq = ref 0

let with_temp_dir (f : string -> 'a) : 'a =
  incr temp_dir_seq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "neurovec_selfheal_%d_%d" (Unix.getpid ())
         !temp_dir_seq)
  in
  let rec rm_rf p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
        try Sys.rmdir p with Sys_error _ -> ()
      end
      else try Sys.remove p with Sys_error _ -> ()
  in
  rm_rf dir;
  Neurovec.Supervisor.mkdir_p dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let small_agent seed =
  Rl.Agent.create ~hidden:[ 8 ]
    ~c2v_cfg:Embedding.Code2vec.default_config ~space:Rl.Spaces.Discrete
    (Nn.Rng.create seed)

let state ~steps ~update ?(rollbacks = 0) () =
  { Rl.Train_state.ts_steps = steps; ts_update = update; ts_history = [];
    ts_optim = Nn.Optim.adam ~lr:1e-3 (); ts_rollbacks = rollbacks }

(* ------------------------------------------------------------------ *)
(* Fsio: the guarded primitives                                         *)
(* ------------------------------------------------------------------ *)

let test_atomic_replace_fails_closed () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "data" in
      write_file path "generation-1";
      (* every kind of injected fault must leave the previous bytes and
         no temp litter; the next attempt (fresh index) must succeed *)
      List.iter
        (fun kind ->
          with_injector
            (fun ~op:_ ~path:_ ~index -> if index = 0 then Some kind else None)
            (fun () ->
              (match Fsio.atomic_replace ~op:"test" path "generation-2" with
              | () -> Alcotest.fail "expected Disk_fault"
              | exception Fsio.Disk_fault { kind = k; _ } ->
                  Alcotest.(check string)
                    "typed fault names the kind"
                    (Fsio.fault_kind_name kind)
                    (Fsio.fault_kind_name k));
              Alcotest.(check string) "previous bytes intact" "generation-1"
                (read_file path);
              Alcotest.(check bool) "no temp litter" false
                (Sys.file_exists (path ^ ".tmp"));
              Fsio.atomic_replace ~op:"test" path "generation-2";
              Alcotest.(check string) "retry lands" "generation-2"
                (read_file path);
              write_file path "generation-1"))
        [ Fsio.Disk_full; Fsio.Disk_err; Fsio.Short_write ])

let test_short_write_tears_then_truncate_recovers () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "log" in
      write_file path "complete-record\n";
      let before = (Unix.stat path).Unix.st_size in
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
      in
      with_injector
        (fun ~op:_ ~path:_ ~index:_ -> Some Fsio.Short_write)
        (fun () ->
          match Fsio.output ~op:"test" ~path oc "torn-record-here\n" with
          | () -> Alcotest.fail "expected Disk_fault"
          | exception Fsio.Disk_fault _ -> ());
      close_out_noerr oc;
      (* the tear is real: a strict prefix landed *)
      Alcotest.(check bool) "prefix landed" true
        ((Unix.stat path).Unix.st_size > before);
      (* and the writer-side undo removes exactly the torn bytes *)
      Alcotest.(check bool) "truncate_back succeeds" true
        (Fsio.truncate_back path before);
      Alcotest.(check string) "only whole records remain" "complete-record\n"
        (read_file path))

let test_sweep_tmp_counts () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "agent.ckpt" in
      write_file (path ^ ".tmp") "dead bytes";
      let n0 = Fsio.tmp_swept () in
      Alcotest.(check bool) "swept" true (Fsio.sweep_tmp path);
      Alcotest.(check bool) "gone" false (Sys.file_exists (path ^ ".tmp"));
      Alcotest.(check int) "counted" (n0 + 1) (Fsio.tmp_swept ());
      Alcotest.(check bool) "idempotent" false (Fsio.sweep_tmp path))

(* ------------------------------------------------------------------ *)
(* Sentinel checks and backoff                                          *)
(* ------------------------------------------------------------------ *)

let test_sentinel_checks () =
  let agent = small_agent 1 in
  let params = Rl.Agent.params agent in
  let optim = Nn.Optim.adam ~lr:1e-3 () in
  let check ?(cfg = Rl.Sentinel.default) ?(loss = 0.1) ?(entropy = 1.0)
      ?(reward_mean = 0.2) ?(approx_kl = 0.01) () =
    Rl.Sentinel.check cfg ~params ~optim ~loss ~entropy ~reward_mean
      ~approx_kl
  in
  let describe = function
    | Some t -> Rl.Sentinel.describe t
    | None -> "healthy"
  in
  Alcotest.(check string) "healthy state passes" "healthy" (describe (check ()));
  Alcotest.(check string) "NaN loss trips" "non-finite loss"
    (describe (check ~loss:Float.nan ()));
  Alcotest.(check string) "infinite KL trips" "non-finite approx-KL"
    (describe (check ~approx_kl:Float.infinity ()));
  (* a single NaN weight trips the always-on parameter scan *)
  (match params with
  | (p, _) :: _ ->
      let saved = p.(0) in
      p.(0) <- Float.nan;
      Alcotest.(check string) "NaN weight trips"
        "non-finite weights or gradients"
        (describe (check ()));
      p.(0) <- saved
  | [] -> Alcotest.fail "agent has no parameters");
  (* thresholds are opt-in: disabled at 0, enforced when set *)
  Alcotest.(check string) "entropy floor off by default" "healthy"
    (describe (check ~entropy:1e-9 ()));
  let cfg = { Rl.Sentinel.default with ent_floor = 0.1; kl_max = 0.5; drift_max = 50.0 } in
  Alcotest.(check string) "entropy collapse trips" "entropy collapse (1e-09)"
    (describe (check ~cfg ~entropy:1e-9 ()));
  Alcotest.(check string) "KL blow-up trips" "approx-KL blow-up (2)"
    (describe (check ~cfg ~approx_kl:2.0 ()));
  Alcotest.(check string) "reward drift trips" "reward-scale drift (-900)"
    (describe (check ~cfg ~reward_mean:(-900.0) ()))

let test_backoff_deterministic_and_bounded () =
  let b0 = Rl.Sentinel.backoff ~seed:5 ~rollbacks:0 in
  Alcotest.(check (float 0.0)) "no rollback: unit lr scale" 1.0
    b0.Rl.Sentinel.lr_scale;
  Alcotest.(check (float 0.0)) "no rollback: unit clip scale" 1.0
    b0.Rl.Sentinel.clip_scale;
  for r = 1 to 6 do
    let b = Rl.Sentinel.backoff ~seed:5 ~rollbacks:r in
    let b' = Rl.Sentinel.backoff ~seed:5 ~rollbacks:r in
    Alcotest.(check bool) "pure in (seed, rollbacks)" true (b = b');
    let lo = (0.5 ** float_of_int r) *. 0.75 in
    let hi = (0.5 ** float_of_int r) *. 1.25 in
    Alcotest.(check bool) "lr halves (with a seeded nudge)" true
      (b.Rl.Sentinel.lr_scale >= lo && b.Rl.Sentinel.lr_scale <= hi);
    Alcotest.(check bool) "clip tightens to a floor" true
      (b.Rl.Sentinel.clip_scale >= 0.25
      && b.Rl.Sentinel.clip_scale <= 0.8 ** 1.0)
  done

(* ------------------------------------------------------------------ *)
(* Checkpoint lineage                                                   *)
(* ------------------------------------------------------------------ *)

let test_lineage_ring_and_rollback_walk () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "agent.ckpt" in
      let agent = small_agent 2 in
      Rl.Checkpoint.Lineage.save ~keep:2 ~state:(state ~steps:1 ~update:1 ())
        agent path;
      Rl.Checkpoint.Lineage.save ~keep:2 ~state:(state ~steps:2 ~update:2 ())
        agent path;
      Rl.Checkpoint.Lineage.save ~keep:2 ~state:(state ~steps:3 ~update:3 ())
        agent path;
      Alcotest.(check bool) "head exists" true (Sys.file_exists path);
      Alcotest.(check bool) "one retired generation" true
        (Sys.file_exists (path ^ ".1"));
      Alcotest.(check bool) "ring depth respected" false
        (Sys.file_exists (path ^ ".2"));
      (match Rl.Checkpoint.Lineage.newest_good ~keep:2 path with
      | Some (file, _, Some st) ->
          Alcotest.(check string) "newest good is the head" path file;
          Alcotest.(check int) "head generation" 3 st.Rl.Train_state.ts_steps
      | _ -> Alcotest.fail "expected a good head");
      (* corrupt the head: the walk must quarantine it and fall back to
         the previous generation *)
      write_file path "junk that is not a checkpoint";
      (match Rl.Checkpoint.Lineage.newest_good ~keep:2 path with
      | Some (file, _, Some st) ->
          Alcotest.(check string) "fell back one generation" (path ^ ".1")
            file;
          Alcotest.(check int) "previous generation" 2
            st.Rl.Train_state.ts_steps
      | _ -> Alcotest.fail "expected the retired generation");
      Alcotest.(check bool) "sick head quarantined as .bad" true
        (Sys.file_exists (path ^ ".bad"));
      Alcotest.(check bool) "lineage audit log written" true
        (Sys.file_exists (path ^ ".lineage")))

let test_post_save_health_check_quarantines () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "agent.ckpt" in
      let agent = small_agent 3 in
      Rl.Checkpoint.Lineage.save ~state:(state ~steps:1 ~update:1 ()) agent
        path;
      let good = read_file path in
      (* poison a weight: the save lands but the post-save health check
         must refuse to admit it as the new head *)
      (match Rl.Agent.params agent with
      | (p, _) :: _ -> p.(0) <- Float.nan
      | [] -> Alcotest.fail "agent has no parameters");
      (match
         Rl.Checkpoint.Lineage.save ~state:(state ~steps:2 ~update:2 ())
           agent path
       with
      | () -> Alcotest.fail "expected Bad_checkpoint"
      | exception Rl.Checkpoint.Bad_checkpoint _ -> ());
      Alcotest.(check bool) "sick head quarantined" true
        (Sys.file_exists (path ^ ".bad"));
      (* the previous generation survived the failed save, bit for bit *)
      (match Rl.Checkpoint.Lineage.newest_good path with
      | Some (file, _, _) ->
          Alcotest.(check string) "known good bytes intact" good
            (read_file file)
      | None -> Alcotest.fail "lost the known-good generation"))

let test_checkpoint_v2_still_loads () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "v2.ckpt" in
      let agent = small_agent 4 in
      (* compose a v2 file exactly as the previous release wrote it:
         same framing, pre-[ts_rollbacks] state record *)
      let body =
        Marshal.to_string
          { Rl.Checkpoint.v2_agent = agent;
            v2_state =
              Some
                { Rl.Checkpoint.v2_steps = 7; v2_update = 2; v2_history = [];
                  v2_optim = Nn.Optim.adam ~lr:1e-3 () } }
          []
      in
      let oc = open_out_bin path in
      output_value oc ("neurovec-agent", 2);
      output_value oc body;
      output_value oc (Rl.Checkpoint.crc32 body);
      close_out oc;
      match Rl.Checkpoint.load_full path with
      | _, Some st ->
          Alcotest.(check int) "steps preserved" 7 st.Rl.Train_state.ts_steps;
          Alcotest.(check int) "rollbacks default to zero" 0
            st.Rl.Train_state.ts_rollbacks
      | _, None -> Alcotest.fail "v2 state lost")

(* ------------------------------------------------------------------ *)
(* ENOSPC under the training loop and the journal                       *)
(* ------------------------------------------------------------------ *)

let selfheal_hyper = { Rl.Ppo.default_hyper with batch_size = 48 }

let train_once ?sentinel ?injector ~dir ~seed () : string =
  let path = Filename.concat dir "agent.ckpt" in
  Neurovec.Frontend.clear ();
  let corpus = Dataset.Loopgen.generate ~seed:88 6 in
  let fw = Neurovec.Framework.create ~seed corpus in
  let body () =
    ignore
      (Neurovec.Framework.train fw ~hyper:selfheal_hyper ~total_steps:240
         ~checkpoint_path:path ~checkpoint_every:96 ?sentinel)
  in
  (match injector with
  | Some inj -> with_injector inj body
  | None -> body ());
  path

let test_enospc_mid_checkpoint_keeps_last_good () =
  with_temp_dir (fun ref_dir ->
      with_temp_dir (fun dir ->
          let ref_path = train_once ~dir:ref_dir ~seed:3 () in
          Neurovec.Stats.reset ();
          (* the first checkpoint write attempt hits ENOSPC; training
             must absorb it (previous state intact) and the retry at the
             next boundary must land, converging on the exact bytes of
             the fault-free run *)
          let path =
            train_once
              ~injector:(fun ~op ~path:_ ~index ->
                if op = "checkpoint" && index = 0 then Some Fsio.Disk_full
                else None)
              ~dir ~seed:3 ()
          in
          let snap = Neurovec.Stats.snapshot () in
          Alcotest.(check bool) "fault injected" true
            (snap.Neurovec.Stats.disk_faults_injected >= 1);
          Alcotest.(check bool) "write error absorbed" true
            (snap.Neurovec.Stats.disk_write_errors >= 1);
          Alcotest.(check bool) "final checkpoint loads" true
            (Rl.Checkpoint.Lineage.newest_good path <> None);
          Alcotest.(check bool)
            "bytes identical to the fault-free run" true
            (read_file ref_path = read_file path)))

let journal_lines_whole path =
  List.for_all
    (fun line ->
      line = ""
      || (String.length line > 0 && line.[0] = '#')
      || (String.length line >= 2
         && String.sub line (String.length line - 2) 2 = "\t."))
    (String.split_on_char '\n' (read_file path))

let test_enospc_mid_journal_drops_only_torn_tail () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "rewards.journal" in
      let programs = Dataset.Loopgen.generate ~seed:106 5 in
      Neurovec.Frontend.clear ();
      let oracle = Neurovec.Reward.create programs in
      Neurovec.Reward.set_journal oracle path;
      (* appends 1 and 4 die of ENOSPC, append 2 tears mid-record: the
         journal must contain only whole lines afterwards *)
      let first =
        with_injector
          (fun ~op ~path:_ ~index ->
            if op <> "journal" then None
            else if index = 1 || index = 4 then Some Fsio.Disk_full
            else if index = 2 then Some Fsio.Short_write
            else None)
          (fun () -> Neurovec.Reward.sweep_all oracle)
      in
      Neurovec.Reward.close_journal oracle;
      Alcotest.(check bool) "every surviving line is whole" true
        (journal_lines_whole path);
      (* replay serves what survived; re-measurement fills the holes and
         the sweep is bit-identical *)
      Neurovec.Frontend.clear ();
      let restored = Neurovec.Reward.create programs in
      let replayed = Neurovec.Reward.replay_journal restored path in
      Alcotest.(check bool) "some records replayed" true (replayed > 0);
      Test_parallel.check_sweeps_equal
        (first, Neurovec.Reward.quarantine_report oracle)
        ( Neurovec.Reward.sweep_all restored,
          Neurovec.Reward.quarantine_report restored );
      (* a SIGKILL-torn tail (no trailing newline) is trimmed when the
         journal is reattached, never glued onto the next append *)
      let whole = read_file path in
      write_file path (whole ^ "E\ttorn-key\t3f");
      let again = Neurovec.Reward.create programs in
      Neurovec.Reward.set_journal again path;
      Neurovec.Reward.close_journal again;
      Alcotest.(check string) "torn tail trimmed on reattach" whole
        (read_file path))

(* ------------------------------------------------------------------ *)
(* Store: compaction fails closed, recovery on retry                    *)
(* ------------------------------------------------------------------ *)

let test_store_compaction_fails_closed () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "store.log" in
      let s = Serve.Store.open_store path in
      for k = 0 to 9 do
        Serve.Store.put s (Printf.sprintf "k%d" k) (Printf.sprintf "v%d" k)
      done;
      Serve.Store.close s;
      (* tear the tail, then make the compaction rewrite itself fail:
         open_store must fail closed with the typed error, leaving the
         damaged-but-loadable log in place for the retry *)
      let len = (Unix.stat path).Unix.st_size in
      ignore (Fsio.truncate_back path (len - 3));
      with_injector
        (fun ~op ~path:_ ~index:_ ->
          if op = "store" then Some Fsio.Disk_err else None)
        (fun () ->
          match Serve.Store.open_store path with
          | _ -> Alcotest.fail "expected Disk_fault"
          | exception Fsio.Disk_fault _ -> ());
      Alcotest.(check bool) "damaged log still present" true
        (Sys.file_exists path);
      (* the retry (fault cleared) quarantines and compacts *)
      let s2 = Serve.Store.open_store path in
      let loaded, rejected, torn = Serve.Store.recovery s2 in
      Alcotest.(check bool) "torn tail detected" true torn;
      Alcotest.(check int) "nothing CRC-rejected" 0 rejected;
      Alcotest.(check int) "all whole records kept" 9 loaded;
      Alcotest.(check bool) "evidence quarantined" true
        (Sys.file_exists (path ^ ".quarantined"));
      Serve.Store.close s2;
      let s3 = Serve.Store.open_store path in
      let _, rejected, torn = Serve.Store.recovery s3 in
      Alcotest.(check bool) "compacted log is clean" false torn;
      Alcotest.(check int) "compacted log has no rejects" 0 rejected;
      Serve.Store.close s3)

(* ------------------------------------------------------------------ *)
(* Sentinel rollback: deterministic across pool sizes                   *)
(* ------------------------------------------------------------------ *)

let lineage_events path =
  if not (Sys.file_exists path) then []
  else
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l ->
           String.length l > 2 && (l.[0] = 'R' || l.[0] = 'G'))

let test_nan_rollback_identical_at_any_jobs () =
  let j0 = Neurovec.Parpool.jobs () in
  Fun.protect
    ~finally:(fun () -> Neurovec.Parpool.set_jobs j0)
    (fun () ->
      (* poison update 3's gradient on its first attempt only: the trip,
         the rollback to the update-2 checkpoint, and the backed-off
         replay must be identical at any pool size *)
      let sentinel =
        { Rl.Sentinel.default with
          backoff_seed = 5;
          inject_nan =
            (fun ~update ~rollbacks -> update = 3 && rollbacks = 0) }
      in
      let run jobs dir =
        Neurovec.Parpool.set_jobs jobs;
        Rl.Sentinel.reset_counters ();
        let path = train_once ~sentinel ~dir ~seed:3 () in
        Alcotest.(check int) "one trip" 1 (Rl.Sentinel.trip_count ());
        Alcotest.(check int) "one rollback" 1 (Rl.Sentinel.rollback_count ());
        Alcotest.(check bool) "sick state dumped for autopsy" true
          (Sys.file_exists (path ^ ".bad"));
        Alcotest.(check int) "rollback journaled" 1
          (Rl.Checkpoint.Lineage.logged_rollbacks path);
        let _, st = Rl.Checkpoint.load_full path in
        let st = Option.get st in
        Alcotest.(check int) "rollback count persisted" 1
          st.Rl.Train_state.ts_rollbacks;
        (* the backoff schedule is recoverable from the persisted state:
           final lr = base lr x lr_scale(seed, 1), exactly *)
        Alcotest.(check bool) "backed-off learning rate" true
          (Int64.bits_of_float (Nn.Optim.lr st.Rl.Train_state.ts_optim)
          = Int64.bits_of_float
              (selfheal_hyper.Rl.Ppo.lr
              *. (Rl.Sentinel.backoff ~seed:5 ~rollbacks:1)
                   .Rl.Sentinel.lr_scale));
        (read_file path, lineage_events (path ^ ".lineage"))
      in
      with_temp_dir (fun dir1 ->
          with_temp_dir (fun dir4 ->
              let bytes1, events1 = run 1 dir1 in
              let bytes4, events4 = run 4 dir4 in
              Alcotest.(check bool)
                "final checkpoint bytes: jobs 1 = jobs 4" true
                (bytes1 = bytes4);
              Alcotest.(check (list string))
                "rollback/restore events: jobs 1 = jobs 4" events1 events4)))

let test_memory_rollback_without_checkpoint_path () =
  (* no checkpoint path: recovery restores the in-memory snapshot of the
     last healthy update and still converges *)
  Neurovec.Frontend.clear ();
  Rl.Sentinel.reset_counters ();
  let corpus = Dataset.Loopgen.generate ~seed:88 6 in
  let fw = Neurovec.Framework.create ~seed:3 corpus in
  let sentinel =
    { Rl.Sentinel.default with
      inject_nan = (fun ~update ~rollbacks -> update = 2 && rollbacks = 0) }
  in
  let history =
    Neurovec.Framework.train fw ~hyper:selfheal_hyper ~total_steps:144
      ~sentinel
  in
  Alcotest.(check int) "one rollback" 1 (Rl.Sentinel.rollback_count ());
  Alcotest.(check int) "full update history despite the trip" 3
    (List.length history);
  Alcotest.(check bool) "agent finite after recovery" true
    (Rl.Sentinel.params_finite (Rl.Agent.params fw.Neurovec.Framework.agent))

let test_unrecoverable_after_budget () =
  Neurovec.Frontend.clear ();
  let corpus = Dataset.Loopgen.generate ~seed:88 4 in
  let fw = Neurovec.Framework.create ~seed:3 corpus in
  (* poison every attempt of update 1: the run can never make progress
     and must surface the typed give-up instead of looping forever *)
  let sentinel =
    { Rl.Sentinel.default with
      max_rollbacks = 3;
      inject_nan = (fun ~update ~rollbacks:_ -> update = 1) }
  in
  match
    Neurovec.Framework.train fw ~hyper:selfheal_hyper ~total_steps:96
      ~sentinel
  with
  | _ -> Alcotest.fail "expected Unrecoverable"
  | exception Rl.Sentinel.Unrecoverable msg ->
      Alcotest.(check bool) "message names the trip" true
        (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* Stale temp files: swept on startup, never replayed                   *)
(* ------------------------------------------------------------------ *)

let test_stale_tmp_swept_on_startup () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "agent.ckpt" in
      write_file (path ^ ".tmp") "interrupted atomic write";
      write_file (path ^ ".1.tmp") "older interrupted write";
      Neurovec.Stats.reset ();
      let _ = train_once ~dir ~seed:3 () in
      Alcotest.(check bool) "head tmp swept" false
        (Sys.file_exists (path ^ ".tmp"));
      Alcotest.(check bool) "ring tmp swept" false
        (Sys.file_exists (path ^ ".1.tmp"));
      Alcotest.(check bool) "sweep counted in stats" true
        ((Neurovec.Stats.snapshot ()).Neurovec.Stats.tmp_swept >= 2);
      (* the dead bytes were never replayed: the checkpoint is valid *)
      match Rl.Checkpoint.load_full path with
      | _, Some st ->
          Alcotest.(check int) "trained to completion" 240
            st.Rl.Train_state.ts_steps
      | _ -> Alcotest.fail "expected a resumable checkpoint")

let suite =
  [
    ( "selfheal",
      [
        Alcotest.test_case "atomic replace fails closed under every fault"
          `Quick test_atomic_replace_fails_closed;
        Alcotest.test_case "short write tears; truncate-back recovers" `Quick
          test_short_write_tears_then_truncate_recovers;
        Alcotest.test_case "stale tmp sweep counts and is idempotent" `Quick
          test_sweep_tmp_counts;
        Alcotest.test_case "sentinel catches NaN and opt-in thresholds"
          `Quick test_sentinel_checks;
        Alcotest.test_case "backoff is pure, halving and floored" `Quick
          test_backoff_deterministic_and_bounded;
        Alcotest.test_case "lineage ring rotates; rollback walk quarantines"
          `Quick test_lineage_ring_and_rollback_walk;
        Alcotest.test_case "post-save health check refuses a sick head"
          `Quick test_post_save_health_check_quarantines;
        Alcotest.test_case "v2 checkpoints still load" `Quick
          test_checkpoint_v2_still_loads;
        Alcotest.test_case "ENOSPC mid-checkpoint keeps the last good"
          `Slow test_enospc_mid_checkpoint_keeps_last_good;
        Alcotest.test_case "ENOSPC mid-journal drops only the torn tail"
          `Quick test_enospc_mid_journal_drops_only_torn_tail;
        Alcotest.test_case "store compaction fails closed, recovers on retry"
          `Quick test_store_compaction_fails_closed;
        Alcotest.test_case "NaN rollback identical at jobs 1 and jobs 4"
          `Slow test_nan_rollback_identical_at_any_jobs;
        Alcotest.test_case "memory rollback without a checkpoint path"
          `Slow test_memory_rollback_without_checkpoint_path;
        Alcotest.test_case "unrecoverable after the rollback budget" `Slow
          test_unrecoverable_after_budget;
        Alcotest.test_case "stale tmp files swept on startup, never replayed"
          `Slow test_stale_tmp_swept_on_startup;
      ] );
  ]
