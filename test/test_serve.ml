(* The serving tier: protocol codec (round-trip + hostile input), the
   on-disk store's corruption matrix, and the daemon's robustness layers
   (shedding, breaker, drain, warm restart, batching, signal chaining).

   Everything leans on the determinism contract: replies — answers and
   typed errors alike — are pure functions of (program content, options,
   model), so a warm restart must reproduce the cold run byte-for-byte
   and every corruption must be detected, quarantined and recomputed,
   never trusted. *)

let with_supervision ?deadline ?retries ?(backoff = 0.0) (f : unit -> 'a) :
    'a =
  let d0 = Neurovec.Supervisor.deadline () in
  let r0 = Neurovec.Supervisor.max_retries () in
  Option.iter Neurovec.Supervisor.set_deadline deadline;
  Option.iter Neurovec.Supervisor.set_max_retries retries;
  Neurovec.Supervisor.set_retry_backoff backoff;
  Fun.protect
    ~finally:(fun () ->
      Neurovec.Supervisor.set_deadline d0;
      Neurovec.Supervisor.set_max_retries r0;
      Neurovec.Supervisor.set_retry_backoff 0.002;
      Neurovec.Supervisor.reset_shutdown ())
    f

let tmp_path (stem : string) : string =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "neurovec_test_%s_%d" stem (Unix.getpid ()))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Protocol: round-trip and hostile input                               *)
(* ------------------------------------------------------------------ *)

let gen_str = QCheck.Gen.(string_size (int_bound 40))

let gen_request : Serve.Protocol.request QCheck.arbitrary =
  QCheck.make
    ~print:(fun r ->
      match r with
      | Serve.Protocol.Vectorize { v_client; v_name; v_kernel; v_source } ->
          Printf.sprintf "Vectorize(%S,%S,%S,%d bytes)" v_client v_name
            v_kernel (String.length v_source)
      | Serve.Protocol.Ping -> "Ping"
      | Serve.Protocol.Stats_req -> "Stats_req")
    QCheck.Gen.(
      frequency
        [
          ( 4,
            map2
              (fun (c, n) (k, s) ->
                Serve.Protocol.Vectorize
                  { v_client = c; v_name = n; v_kernel = k; v_source = s })
              (pair gen_str gen_str) (pair gen_str gen_str) );
          (1, return Serve.Protocol.Ping);
          (1, return Serve.Protocol.Stats_req);
        ])

let gen_reply : Serve.Protocol.reply QCheck.arbitrary =
  let kinds =
    [ `Malformed; `Too_big; `Compile_error; `Overloaded; `Breaker_open;
      `Hung; `Transient; `Miscompiled; `Shutting_down; `Internal ]
  in
  QCheck.make
    ~print:(fun r ->
      match r with
      | Serve.Protocol.Answer s -> Printf.sprintf "Answer(%d bytes)" (String.length s)
      | Serve.Protocol.Error (k, m) ->
          Printf.sprintf "Error(%s,%S)" (Serve.Protocol.error_name k) m
      | Serve.Protocol.Pong -> "Pong"
      | Serve.Protocol.Stats_reply s ->
          Printf.sprintf "Stats_reply(%d bytes)" (String.length s))
    QCheck.Gen.(
      frequency
        [
          (3, map (fun s -> Serve.Protocol.Answer s) gen_str);
          ( 3,
            map2
              (fun i m -> Serve.Protocol.Error (List.nth kinds i, m))
              (int_range 0 (List.length kinds - 1))
              gen_str );
          (1, return Serve.Protocol.Pong);
          (1, map (fun s -> Serve.Protocol.Stats_reply s) gen_str);
        ])

let prop_request_roundtrip =
  QCheck.Test.make ~name:"protocol: request encode/decode round-trip"
    ~count:200 gen_request (fun r ->
      Serve.Protocol.decode_request (Serve.Protocol.encode_request r) = r)

let prop_reply_roundtrip =
  QCheck.Test.make ~name:"protocol: reply encode/decode round-trip"
    ~count:200 gen_reply (fun r ->
      Serve.Protocol.decode_reply (Serve.Protocol.encode_reply r) = r)

(* hostile payloads must either decode or raise Malformed — any other
   exception (or a silent success on a strict truncation) is a bug *)
let malformed_only (decode : string -> 'a) (payload : string)
    (original : string) : bool =
  match decode payload with
  | _ -> payload = original  (* a strict prefix must not decode *)
  | exception Serve.Protocol.Malformed _ -> true

let no_crash (decode : string -> 'a) (payload : string) : bool =
  match decode payload with
  | _ -> true
  | exception Serve.Protocol.Malformed _ -> true
(* anything else propagates and fails the property *)

let prop_request_garbage =
  QCheck.Test.make
    ~name:"protocol: truncated/mutated requests never crash the decoder"
    ~count:200
    (QCheck.pair gen_request (QCheck.pair QCheck.small_nat QCheck.small_nat))
    (fun (r, (cut, flip)) ->
      let enc = Serve.Protocol.encode_request r in
      let truncated = String.sub enc 0 (min cut (String.length enc)) in
      let mutated =
        if String.length enc = 0 then enc
        else begin
          let b = Bytes.of_string enc in
          let i = flip mod Bytes.length b in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
          Bytes.to_string b
        end
      in
      malformed_only Serve.Protocol.decode_request truncated enc
      && no_crash Serve.Protocol.decode_request mutated
      && malformed_only Serve.Protocol.decode_request (enc ^ "x") enc)

let test_protocol_garbage_fixed () =
  let m what payload =
    match Serve.Protocol.decode_request payload with
    | _ -> Alcotest.failf "%s: decoded garbage" what
    | exception Serve.Protocol.Malformed _ -> ()
  in
  m "empty" "";
  m "unknown tag" "Zhello";
  m "absurd length" "V\xff\xff\xff\xffrest";
  match Serve.Protocol.decode_reply "E?\x00\x00\x00\x00" with
  | _ -> Alcotest.fail "unknown error kind decoded"
  | exception Serve.Protocol.Malformed _ -> ()

(* frames: oversized declared length is drained, the stream stays framed *)
let test_frame_oversize_drained () =
  let path = tmp_path "frames" in
  let oc = open_out_bin path in
  let big = Serve.Protocol.max_frame + 5 in
  output_char oc (Char.chr ((big lsr 24) land 0xff));
  output_char oc (Char.chr ((big lsr 16) land 0xff));
  output_char oc (Char.chr ((big lsr 8) land 0xff));
  output_char oc (Char.chr (big land 0xff));
  output_string oc (String.make big 'x');
  Serve.Protocol.write_frame oc "after";
  close_out oc;
  let ic = open_in_bin path in
  (match Serve.Protocol.read_frame ic with
  | Serve.Protocol.Too_big n -> Alcotest.(check int) "declared" big n
  | _ -> Alcotest.fail "oversized frame not reported");
  (match Serve.Protocol.read_frame ic with
  | Serve.Protocol.Frame p -> Alcotest.(check string) "next frame" "after" p
  | _ -> Alcotest.fail "stream lost framing after the oversized frame");
  (match Serve.Protocol.read_frame ic with
  | Serve.Protocol.Eof -> ()
  | _ -> Alcotest.fail "expected EOF");
  close_in ic;
  Sys.remove path

let test_frame_truncated_is_eof () =
  let path = tmp_path "torn_frame" in
  write_file path "\x00\x00\x00\x10only-8-bytes";
  let ic = open_in_bin path in
  (match Serve.Protocol.read_frame ic with
  | Serve.Protocol.Eof -> ()
  | _ -> Alcotest.fail "torn frame should read as EOF");
  close_in ic;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Store: the corruption matrix                                         *)
(* ------------------------------------------------------------------ *)

let fresh_store (stem : string) : string * (string * string) list =
  let path = tmp_path stem in
  (try Sys.remove path with Sys_error _ -> ());
  (try Sys.remove (path ^ ".quarantined") with Sys_error _ -> ());
  let entries =
    List.init 5 (fun i ->
        (Printf.sprintf "key-%d" i, Printf.sprintf "value-%d-%s" i
           (String.make (10 * (i + 1)) 'v')))
  in
  let s = Serve.Store.open_store path in
  List.iter (fun (k, v) -> Serve.Store.put s k v) entries;
  Serve.Store.close s;
  (path, entries)

let check_survivors ?(expect_lost = []) (path : string)
    (entries : (string * string) list) : unit =
  let s = Serve.Store.open_store path in
  List.iter
    (fun (k, v) ->
      if List.mem k expect_lost then (
        match Serve.Store.get s k with
        | None -> ()
        | Some _ -> Alcotest.failf "corrupt entry %s trusted" k)
      else
        match Serve.Store.get s k with
        | Some v' -> Alcotest.(check string) k v v'
        | None -> Alcotest.failf "intact entry %s lost" k)
    entries;
  (* recomputed values are accepted again after the quarantine *)
  List.iter
    (fun k ->
      Serve.Store.put s k "recomputed";
      match Serve.Store.get s k with
      | Some "recomputed" -> ()
      | _ -> Alcotest.failf "entry %s not recomputable" k)
    expect_lost;
  Serve.Store.close s

let test_store_clean_roundtrip () =
  let path, entries = fresh_store "store_clean" in
  check_survivors path entries;
  let s = Serve.Store.open_store path in
  let _, rejected, torn = Serve.Store.recovery s in
  Alcotest.(check int) "no rejects" 0 rejected;
  Alcotest.(check bool) "no tear" false torn;
  Serve.Store.close s;
  Sys.remove path

let test_store_truncated_entry () =
  let path, entries = fresh_store "store_trunc" in
  let body = read_file path in
  (* cut into the last record's value: a crash mid-append *)
  write_file path (String.sub body 0 (String.length body - 9));
  let s = Serve.Store.open_store path in
  let _, _, torn = Serve.Store.recovery s in
  Alcotest.(check bool) "tear detected" true torn;
  Serve.Store.close s;
  Alcotest.(check bool) "quarantined" true
    (Sys.file_exists (path ^ ".quarantined"));
  check_survivors ~expect_lost:[ "key-4" ] path entries;
  Sys.remove path;
  Sys.remove (path ^ ".quarantined")

let test_store_flipped_payload_byte () =
  let path, entries = fresh_store "store_flip" in
  let body = Bytes.of_string (read_file path) in
  (* flip one byte inside the *first* record's value region so later
     records must survive on framing alone *)
  let off = String.length Serve.Store.header + 1 + 4 + 4 + 5 + 3 in
  Bytes.set body off (Char.chr (Char.code (Bytes.get body off) lxor 0x01));
  write_file path (Bytes.to_string body);
  let before = (Neurovec.Stats.snapshot ()).Neurovec.Stats.store_crc_rejects in
  let s = Serve.Store.open_store path in
  let _, rejected, torn = Serve.Store.recovery s in
  Alcotest.(check int) "one CRC reject" 1 rejected;
  Alcotest.(check bool) "no tear" false torn;
  Serve.Store.close s;
  let after = (Neurovec.Stats.snapshot ()).Neurovec.Stats.store_crc_rejects in
  Alcotest.(check int) "reject counted in Stats" (before + 1) after;
  Alcotest.(check bool) "quarantined" true
    (Sys.file_exists (path ^ ".quarantined"));
  check_survivors ~expect_lost:[ "key-0" ] path entries;
  Sys.remove path;
  Sys.remove (path ^ ".quarantined")

let test_store_bad_crc_footer () =
  let path, entries = fresh_store "store_crc" in
  let body = Bytes.of_string (read_file path) in
  (* last 4 bytes of the file are the last record's CRC *)
  let off = Bytes.length body - 2 in
  Bytes.set body off (Char.chr (Char.code (Bytes.get body off) lxor 0x80));
  write_file path (Bytes.to_string body);
  let s = Serve.Store.open_store path in
  let _, rejected, _ = Serve.Store.recovery s in
  Alcotest.(check int) "one CRC reject" 1 rejected;
  Serve.Store.close s;
  check_survivors ~expect_lost:[ "key-4" ] path entries;
  Sys.remove path;
  Sys.remove (path ^ ".quarantined")

let test_store_torn_concurrent_write () =
  let path, entries = fresh_store "store_torn" in
  (* a record whose tag landed but whose lengths are garbage: the write
     that was racing the kill *)
  let body = read_file path in
  write_file path (body ^ "R\xff\xfe\xfd\xfc\x00");
  let s = Serve.Store.open_store path in
  let _, _, torn = Serve.Store.recovery s in
  Alcotest.(check bool) "tear detected" true torn;
  Serve.Store.close s;
  check_survivors path entries;
  (* everything intact: only the torn tail was dropped *)
  Sys.remove path;
  Sys.remove (path ^ ".quarantined")

(* ------------------------------------------------------------------ *)
(* Server                                                               *)
(* ------------------------------------------------------------------ *)

let corpus = lazy (Dataset.Loopgen.generate ~seed:17 6)

let agent = lazy (Rl.Agent.create ~space:Rl.Spaces.Discrete (Nn.Rng.create 9))

let call_p server (p : Dataset.Program.t) : Serve.Protocol.reply =
  Serve.Server.call server ~client:"test" ~name:p.Dataset.Program.p_name
    ~kernel:p.Dataset.Program.p_kernel ~source:p.Dataset.Program.p_source

let answer_of (reply : Serve.Protocol.reply) : string =
  match reply with
  | Serve.Protocol.Answer text -> text
  | Serve.Protocol.Error (k, m) ->
      Alcotest.failf "expected an answer, got %s: %s"
        (Serve.Protocol.error_name k) m
  | _ -> Alcotest.fail "expected an answer"

(* the reply a fault-free serial [predict] would give, built from the
   same public pieces the CLI uses *)
let expected_answer (p : Dataset.Program.t) : string =
  let agent = Lazy.force agent in
  let decisions = Neurovec.Framework.predict_decisions agent p in
  let b = Buffer.create 256 in
  List.iter
    (fun (ord, pr) ->
      Buffer.add_string b
        (Printf.sprintf "loop %d: VF=%d IF=%d\n" ord
           (Option.value pr.Minic.Ast.vectorize_width ~default:1)
           (Option.value pr.Minic.Ast.interleave_count ~default:1)))
    decisions;
  let base = Neurovec.Pipeline.run_baseline p in
  let rl = Neurovec.Pipeline.run_with_decisions p ~decisions in
  Buffer.add_string b
    (Printf.sprintf "baseline: %.3e s   RL: %.3e s   speedup %.2fx\n"
       base.Neurovec.Pipeline.exec_seconds rl.Neurovec.Pipeline.exec_seconds
       (base.Neurovec.Pipeline.exec_seconds
       /. rl.Neurovec.Pipeline.exec_seconds));
  Buffer.add_string b "rewritten source:\n";
  Buffer.add_string b
    (Neurovec.Injector.inject_source ~clear_others:true
       p.Dataset.Program.p_source ~decisions);
  Buffer.contents b

let test_answers_match_serial_predict () =
  with_supervision @@ fun () ->
  let server = Serve.Server.create (Lazy.force agent) in
  Array.iter
    (fun p ->
      Alcotest.(check string)
        p.Dataset.Program.p_name (expected_answer p)
        (answer_of (call_p server p)))
    (Lazy.force corpus);
  Serve.Server.stop server

let test_typed_error_replies () =
  with_supervision @@ fun () ->
  let server = Serve.Server.create (Lazy.force agent) in
  (match
     Serve.Server.call server ~client:"test" ~name:"bad.c" ~kernel:"kernel"
       ~source:"void kernel( { not C at all"
   with
  | Serve.Protocol.Error (`Compile_error, _) -> ()
  | _ -> Alcotest.fail "malformed program must yield a compile-error reply");
  (match Serve.Server.answer server Serve.Protocol.Ping with
  | Serve.Protocol.Pong -> ()
  | _ -> Alcotest.fail "ping");
  (match Serve.Server.answer server Serve.Protocol.Stats_req with
  | Serve.Protocol.Stats_reply _ -> ()
  | _ -> Alcotest.fail "stats");
  Serve.Server.stop server

let test_overload_sheds_explicitly () =
  with_supervision @@ fun () ->
  let p = (Lazy.force corpus).(0) in
  let server =
    Serve.Server.create ~max_queue:2 ~autostart:false (Lazy.force agent)
  in
  let submit () =
    Serve.Server.submit server ~client:"test"
      ~name:p.Dataset.Program.p_name ~kernel:p.Dataset.Program.p_kernel
      ~source:p.Dataset.Program.p_source
  in
  let accepted = [ submit (); submit () ] in
  (* queue full: the third is shed immediately, with a structured reply *)
  let shed = (Neurovec.Stats.snapshot ()).Neurovec.Stats.serve_shed in
  (match Serve.Server.await (submit ()) with
  | Serve.Protocol.Error (`Overloaded, _) -> ()
  | _ -> Alcotest.fail "expected an overloaded reply");
  Alcotest.(check int)
    "shed counted" (shed + 1)
    (Neurovec.Stats.snapshot ()).Neurovec.Stats.serve_shed;
  (* the accepted ones still get real replies when the batcher drains *)
  Serve.Server.start server;
  List.iter
    (fun mb -> ignore (answer_of (Serve.Server.await mb)))
    accepted;
  Serve.Server.stop server

let test_drain_answers_everything () =
  with_supervision @@ fun () ->
  let corpus = Lazy.force corpus in
  let server = Serve.Server.create ~autostart:false (Lazy.force agent) in
  let boxes =
    Array.to_list
      (Array.map
         (fun p ->
           Serve.Server.submit server ~client:"test"
             ~name:p.Dataset.Program.p_name
             ~kernel:p.Dataset.Program.p_kernel
             ~source:p.Dataset.Program.p_source)
         corpus)
  in
  (* stop with work queued and no batcher running: the drain must still
     answer every accepted request, then refuse new ones *)
  Serve.Server.stop server;
  List.iter (fun mb -> ignore (answer_of (Serve.Server.await mb))) boxes;
  match call_p server corpus.(0) with
  | Serve.Protocol.Error (`Shutting_down, _) -> ()
  | _ -> Alcotest.fail "post-drain requests must be refused, typed"

let test_batching_shares_forward_passes () =
  with_supervision @@ fun () ->
  let corpus = Lazy.force corpus in
  Neurovec.Frontend.clear ();
  let server = Serve.Server.create ~autostart:false (Lazy.force agent) in
  let boxes =
    Array.to_list
      (Array.map
         (fun p ->
           Serve.Server.submit server ~client:"test"
             ~name:p.Dataset.Program.p_name
             ~kernel:p.Dataset.Program.p_kernel
             ~source:p.Dataset.Program.p_source)
         corpus)
  in
  let max0 = (Neurovec.Stats.snapshot ()).Neurovec.Stats.serve_batch_max in
  Serve.Server.start server;
  List.iter (fun mb -> ignore (Serve.Server.await mb)) boxes;
  Serve.Server.stop server;
  let max1 = (Neurovec.Stats.snapshot ()).Neurovec.Stats.serve_batch_max in
  if max1 < max0 || max1 < Array.length corpus then
    Alcotest.failf
      "queued requests were not batched (batch max %d, %d queued)" max1
      (Array.length corpus)

let test_breaker_opens_and_recovers () =
  with_supervision @@ fun () ->
  let server =
    Serve.Server.create ~breaker_threshold:2 ~breaker_cooldown:2
      (Lazy.force agent)
  in
  let bad () =
    Serve.Server.call server ~client:"evil" ~name:"bad.c" ~kernel:"kernel"
      ~source:"not a program"
  in
  let good =
    let p = (Lazy.force corpus).(0) in
    fun () ->
      Serve.Server.call server ~client:"evil"
        ~name:p.Dataset.Program.p_name ~kernel:p.Dataset.Program.p_kernel
        ~source:p.Dataset.Program.p_source
  in
  let expect what want reply =
    match (want, reply) with
    | `Compile, Serve.Protocol.Error (`Compile_error, _) -> ()
    | `Open, Serve.Protocol.Error (`Breaker_open, _) -> ()
    | `Answer, Serve.Protocol.Answer _ -> ()
    | _ -> Alcotest.failf "%s: unexpected reply" what
  in
  expect "failure 1" `Compile (bad ());
  expect "failure 2 (trips)" `Compile (bad ());
  expect "shed 1" `Open (bad ());
  expect "shed 2" `Open (bad ());
  (* cooldown spent: the next request is the half-open probe; it fails,
     so the breaker reopens *)
  expect "probe fails" `Compile (bad ());
  expect "reopened" `Open (bad ());
  expect "reopened 2" `Open (bad ());
  (* this probe succeeds: breaker closes, traffic flows again *)
  expect "probe succeeds" `Answer (good ());
  expect "closed" `Answer (good ());
  (* other clients were never affected *)
  (match call_p server (Lazy.force corpus).(1) with
  | Serve.Protocol.Answer _ -> ()
  | _ -> Alcotest.fail "another client caught the breaker");
  Serve.Server.stop server

let test_warm_restart_bit_identical () =
  with_supervision ~deadline:0.2 @@ fun () ->
  let corpus = Lazy.force corpus in
  let path = tmp_path "warm_store" in
  (try Sys.remove path with Sys_error _ -> ());
  let options =
    { Neurovec.Pipeline.default_options with
      faults = Neurovec.Faults.create ~seed:7 ~stall:0.02 ~transient:0.1 () }
  in
  let run () =
    Neurovec.Frontend.clear ();
    let server =
      Serve.Server.create ~options ~store_path:path (Lazy.force agent)
    in
    let replies =
      Array.map
        (fun p -> Serve.Protocol.encode_reply (call_p server p))
        corpus
    in
    Serve.Server.stop server;
    replies
  in
  let cold = run () in
  let hits0 = (Neurovec.Stats.snapshot ()).Neurovec.Stats.store_hits in
  let warm = run () in
  Array.iteri
    (fun i c ->
      if c <> warm.(i) then
        Alcotest.failf "warm reply %d diverged from the cold run" i)
    cold;
  let hits1 = (Neurovec.Stats.snapshot ()).Neurovec.Stats.store_hits in
  Alcotest.(check int)
    "warm run served from the store"
    (hits0 + Array.length corpus)
    hits1;
  Sys.remove path

let test_faulty_answers_equal_fault_free () =
  with_supervision ~deadline:0.2 ~retries:6 @@ fun () ->
  (* transient faults retry deterministically and never change values:
     a request that succeeds under faults matches the fault-free text *)
  let p = (Lazy.force corpus).(2) in
  let options =
    { Neurovec.Pipeline.default_options with
      faults = Neurovec.Faults.create ~seed:7 ~transient:0.1 () }
  in
  let server = Serve.Server.create ~options (Lazy.force agent) in
  let text = answer_of (call_p server p) in
  Serve.Server.stop server;
  Alcotest.(check string) "values unchanged" (expected_answer p) text

(* ------------------------------------------------------------------ *)
(* Signal-handler layering (Supervisor satellite)                       *)
(* ------------------------------------------------------------------ *)

let wait_for (pred : unit -> bool) : unit =
  (* signal handlers run at a safepoint; poll for one instead of hoping a
     single fixed delay is enough on a loaded machine *)
  let deadline = Unix.gettimeofday () +. 2.0 in
  while (not (pred ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done

let test_signal_install_composes () =
  with_supervision @@ fun () ->
  let host_hits = ref 0 in
  let host_handler _ = incr host_hits in
  let prev = Sys.signal Sys.sigterm (Sys.Signal_handle host_handler) in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigterm prev)
  @@ fun () ->
  (* double install (serve session + train-under-serve) must not clobber *)
  Neurovec.Supervisor.install_signal_handlers ();
  Neurovec.Supervisor.install_signal_handlers ();
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  wait_for (fun () ->
      Neurovec.Supervisor.shutdown_requested () && !host_hits = 1);
  Alcotest.(check bool)
    "first signal requests shutdown" true
    (Neurovec.Supervisor.shutdown_requested ());
  Alcotest.(check int) "host handler chained" 1 !host_hits;
  Neurovec.Supervisor.reset_shutdown ();
  (* one uninstall leaves the outer install active *)
  Neurovec.Supervisor.uninstall_signal_handlers ();
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  wait_for (fun () ->
      Neurovec.Supervisor.shutdown_requested () && !host_hits = 2);
  Alcotest.(check bool)
    "still supervised after one uninstall" true
    (Neurovec.Supervisor.shutdown_requested ());
  Alcotest.(check int) "host handler chained again" 2 !host_hits;
  Neurovec.Supervisor.reset_shutdown ();
  (* last uninstall restores the displaced host handler *)
  Neurovec.Supervisor.uninstall_signal_handlers ();
  (match Sys.signal Sys.sigterm Sys.Signal_default with
  | Sys.Signal_handle f when f == host_handler ->
      ignore (Sys.signal Sys.sigterm (Sys.Signal_handle host_handler))
  | b ->
      ignore (Sys.signal Sys.sigterm b);
      Alcotest.fail "displaced handler was not restored");
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  wait_for (fun () -> !host_hits = 3);
  Alcotest.(check bool)
    "uninstalled: no shutdown semantics" false
    (Neurovec.Supervisor.shutdown_requested ());
  Alcotest.(check int) "host handler alone" 3 !host_hits

let suite =
  [
    ( "serve.protocol",
      [
        QCheck_alcotest.to_alcotest prop_request_roundtrip;
        QCheck_alcotest.to_alcotest prop_reply_roundtrip;
        QCheck_alcotest.to_alcotest prop_request_garbage;
        Alcotest.test_case "fixed hostile payloads" `Quick
          test_protocol_garbage_fixed;
        Alcotest.test_case "oversized frame drained" `Quick
          test_frame_oversize_drained;
        Alcotest.test_case "torn frame is EOF" `Quick
          test_frame_truncated_is_eof;
      ] );
    ( "serve.store",
      [
        Alcotest.test_case "clean round-trip" `Quick
          test_store_clean_roundtrip;
        Alcotest.test_case "truncated entry" `Quick
          test_store_truncated_entry;
        Alcotest.test_case "flipped payload byte" `Quick
          test_store_flipped_payload_byte;
        Alcotest.test_case "bad CRC footer" `Quick test_store_bad_crc_footer;
        Alcotest.test_case "torn concurrent write" `Quick
          test_store_torn_concurrent_write;
      ] );
    ( "serve.server",
      [
        Alcotest.test_case "answers match serial predict" `Quick
          test_answers_match_serial_predict;
        Alcotest.test_case "typed error replies" `Quick
          test_typed_error_replies;
        Alcotest.test_case "overload sheds explicitly" `Quick
          test_overload_sheds_explicitly;
        Alcotest.test_case "drain answers everything" `Quick
          test_drain_answers_everything;
        Alcotest.test_case "batching shares forward passes" `Quick
          test_batching_shares_forward_passes;
        Alcotest.test_case "breaker opens and recovers" `Quick
          test_breaker_opens_and_recovers;
        Alcotest.test_case "warm restart bit-identical" `Quick
          test_warm_restart_bit_identical;
        Alcotest.test_case "faulty answers equal fault-free" `Quick
          test_faulty_answers_equal_fault_free;
      ] );
    ( "serve.signals",
      [
        Alcotest.test_case "install composes and chains" `Quick
          test_signal_install_composes;
      ] );
  ]
