(* The supervised evaluation engine: watchdogs, deterministic retries,
   circuit breakers, the write-ahead reward journal, and graceful
   shutdown.

   Everything here leans on one invariant: supervision must never change
   *what* a run computes, only how failures are contained.  Fault
   outcomes (stalls, transients, breaker trips) are pure functions of the
   fault spec, so every scenario is checked bit-identical between
   --jobs 1 and --jobs 4, and a killed-and-resumed training run must
   produce the same checkpoint bytes as an uninterrupted one. *)

let bits = Int64.bits_of_float

(* run [f] under a scoped supervision configuration, restoring the
   process-wide knobs (and any shutdown request) afterwards *)
let with_supervision ?deadline ?retries ?breaker ?(backoff = 0.0)
    (f : unit -> 'a) : 'a =
  let d0 = Neurovec.Supervisor.deadline () in
  let r0 = Neurovec.Supervisor.max_retries () in
  let b0 = Neurovec.Supervisor.breaker_window () in
  Option.iter Neurovec.Supervisor.set_deadline deadline;
  Option.iter Neurovec.Supervisor.set_max_retries retries;
  Option.iter Neurovec.Supervisor.set_breaker_window breaker;
  Neurovec.Supervisor.set_retry_backoff backoff;
  Fun.protect
    ~finally:(fun () ->
      Neurovec.Supervisor.set_deadline d0;
      Neurovec.Supervisor.set_max_retries r0;
      Neurovec.Supervisor.set_breaker_window b0;
      Neurovec.Supervisor.set_retry_backoff 0.002;
      Neurovec.Supervisor.reset_shutdown ())
    f

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Parpool cooperative cancellation                                     *)
(* ------------------------------------------------------------------ *)

let test_pool_cancel_skips_queued () =
  (* item 0 fails immediately; every other item sleeps.  The cancel flag
     must stop the pool from claiming the long tail of queued items, and
     the failure surfaced must be item 0's. *)
  let executed = Atomic.make 0 in
  (match
     Neurovec.Parpool.map ~jobs:4
       (fun i ->
         Atomic.incr executed;
         if i = 0 then failwith "poison" else Thread.delay 0.02;
         i)
       (Array.init 64 Fun.id)
   with
  | _ -> Alcotest.fail "expected the poisoned item to raise"
  | exception Failure msg ->
      Alcotest.(check string) "lowest-indexed failure" "poison" msg);
  let n = Atomic.get executed in
  Alcotest.(check bool)
    (Printf.sprintf "queued items were skipped (%d of 64 ran)" n)
    true
    (n < 32 && n >= 1)

(* ------------------------------------------------------------------ *)
(* Fault-spec extensions                                                *)
(* ------------------------------------------------------------------ *)

let test_faults_stall_transient_spec () =
  let spec, warnings =
    Neurovec.Faults.of_string "seed=5,stall=0.25,transient=0.5"
  in
  Alcotest.(check (list string)) "no warnings" [] warnings;
  Alcotest.(check bool) "active" true (Neurovec.Faults.active spec);
  let descr = Neurovec.Faults.descriptor spec in
  let contains hay needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length hay
      && (String.sub hay i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "descriptor carries stall rate" true
    (contains descr "st=0.25");
  Alcotest.(check bool) "descriptor carries transient rate" true
    (contains descr "tr=0.5");
  (* specs that predate the knobs keep their cache keys *)
  let old_spec = Neurovec.Faults.create ~seed:5 ~compile:0.1 () in
  Alcotest.(check bool) "pre-existing descriptors unchanged" false
    (contains (Neurovec.Faults.descriptor old_spec) "st=");
  (* pure in (seed, key, attempt): repeated queries agree, and with a
     rate this high some point must both fail at one attempt and succeed
     at another *)
  let hits =
    List.init 20 (fun a ->
        Neurovec.Faults.transient_hit spec ~key:"k" ~attempt:a)
  in
  Alcotest.(check (list bool))
    "transient_hit is deterministic" hits
    (List.init 20 (fun a ->
         Neurovec.Faults.transient_hit spec ~key:"k" ~attempt:a));
  Alcotest.(check bool) "some attempt fails" true (List.mem true hits);
  Alcotest.(check bool) "some attempt succeeds" true (List.mem false hits);
  Alcotest.(check bool) "zero rate never stalls" false
    (Neurovec.Faults.stall_hit (Neurovec.Faults.create ()) ~key:"k");
  (* unknown keys are reported, valid fields still land *)
  let spec2, warnings2 = Neurovec.Faults.of_string "stall=0.1,wibble=3" in
  Alcotest.(check bool) "unknown key reported" true
    (List.exists (fun w -> contains w "wibble") warnings2);
  Alcotest.(check bool) "valid fields still parsed" true
    (Neurovec.Faults.active spec2)

(* ------------------------------------------------------------------ *)
(* Watchdog: stalled evaluations die as Hung, identically at any jobs   *)
(* ------------------------------------------------------------------ *)

let stall_faults =
  Neurovec.Faults.create ~seed:21 ~compile:0.05 ~stall:0.15 ~transient:0.2 ()

let stall_options =
  { Neurovec.Pipeline.default_options with
    Neurovec.Pipeline.faults = stall_faults }

let test_watchdog_deterministic () =
  with_supervision ~deadline:0.03 ~retries:2 (fun () ->
      let programs = Dataset.Loopgen.generate ~seed:101 6 in
      let run jobs =
        Neurovec.Stats.reset ();
        let sw =
          Test_parallel.sweep ~options:stall_options ~jobs programs
        in
        (sw, Neurovec.Stats.snapshot ())
      in
      let sw1, snap1 = run 1 in
      let sw4, snap4 = run 4 in
      Test_parallel.check_sweeps_equal sw1 sw4;
      Alcotest.(check bool) "watchdog fired" true
        (snap1.Neurovec.Stats.watchdog_cancels > 0);
      Alcotest.(check int) "cancellations identical across jobs"
        snap1.Neurovec.Stats.watchdog_cancels
        snap4.Neurovec.Stats.watchdog_cancels;
      Alcotest.(check int) "transient retries identical across jobs"
        snap1.Neurovec.Stats.transient_retries
        snap4.Neurovec.Stats.transient_retries;
      Alcotest.(check bool) "hung failures in the taxonomy" true
        (match List.assoc_opt "hung" snap1.Neurovec.Stats.failures with
        | Some n -> n > 0
        | None -> false))

(* ------------------------------------------------------------------ *)
(* Retries: transient points recover to the fault-free rewards          *)
(* ------------------------------------------------------------------ *)

let test_transient_retry_recovers () =
  with_supervision ~retries:3 (fun () ->
      let programs = Dataset.Loopgen.generate ~seed:102 4 in
      let options =
        { Neurovec.Pipeline.default_options with
          Neurovec.Pipeline.faults =
            Neurovec.Faults.create ~seed:22 ~transient:0.3 () }
      in
      Neurovec.Frontend.clear ();
      Neurovec.Stats.reset ();
      let faulty = Neurovec.Reward.create ~options programs in
      let plain = Neurovec.Reward.create programs in
      let compared = ref 0 in
      Array.iteri
        (fun idx _ ->
          match
            List.iter
              (fun a ->
                let ef = Neurovec.Reward.entry faulty idx a in
                (* a retried-and-recovered point must land on the exact
                   fault-free reward; exhausted points show up as
                   penalized Transient failures instead *)
                if ef.Neurovec.Reward.e_failure = None then begin
                  incr compared;
                  Alcotest.(check int64)
                    (Printf.sprintf "program %d reward bits" idx)
                    (bits (Neurovec.Reward.reward plain idx a))
                    (bits ef.Neurovec.Reward.e_reward)
                end)
              Rl.Spaces.all_actions
          with
          | () -> ()
          | exception Neurovec.Reward.Quarantined _ -> ())
        programs;
      Alcotest.(check bool) "some points compared" true (!compared > 50);
      let snap = Neurovec.Stats.snapshot () in
      Alcotest.(check bool) "retries happened" true
        (snap.Neurovec.Stats.transient_retries > 0))

let transient_failures () =
  Option.value ~default:0
    (List.assoc_opt "transient"
       (Neurovec.Stats.snapshot ()).Neurovec.Stats.failures)

let test_retry_exhaustion_deterministic () =
  let programs = Dataset.Loopgen.generate ~seed:103 5 in
  let options =
    { Neurovec.Pipeline.default_options with
      Neurovec.Pipeline.faults =
        Neurovec.Faults.create ~seed:23 ~transient:0.6 () }
  in
  let run retries jobs =
    with_supervision ~retries (fun () ->
        Neurovec.Stats.reset ();
        let sw = Test_parallel.sweep ~options ~jobs programs in
        (sw, transient_failures ()))
  in
  let sw_a, exhausted_a = run 0 1 in
  let sw_b, exhausted_b = run 0 4 in
  Test_parallel.check_sweeps_equal sw_a sw_b;
  Alcotest.(check int) "exhaustion count identical across jobs" exhausted_a
    exhausted_b;
  Alcotest.(check bool) "no retries means exhausted points" true
    (exhausted_a > 0);
  (* pointwise: a point exhausted under a budget of 3 retries failed on
     attempts 0..3, so it is also exhausted under a budget of 0 — count
     over the programs measurable at both budgets and the budgeted count
     must come out strictly smaller *)
  let exhausted_over retries survivors =
    with_supervision ~retries (fun () ->
        Neurovec.Frontend.clear ();
        let oracle = Neurovec.Reward.create ~options programs in
        let n = ref 0 in
        List.iter
          (fun idx ->
            List.iter
              (fun a ->
                if
                  (Neurovec.Reward.entry oracle idx a)
                    .Neurovec.Reward.e_failure
                  = Some Neurovec.Reward.Transient
                then incr n)
              Rl.Spaces.all_actions)
          survivors;
        !n)
  in
  (* programs whose baseline succeeds with no retries succeed at attempt
     0, hence survive under any budget: a common, comparable set *)
  let survivors =
    with_supervision ~retries:0 (fun () ->
        Neurovec.Frontend.clear ();
        let oracle = Neurovec.Reward.create ~options programs in
        List.filter
          (fun idx ->
            match Neurovec.Reward.baseline oracle idx with
            | _ -> true
            | exception Neurovec.Reward.Quarantined _ -> false)
          (List.init (Array.length programs) Fun.id))
  in
  Alcotest.(check bool) "some programs measurable without retries" true
    (survivors <> []);
  let count0 = exhausted_over 0 survivors in
  let count3 = exhausted_over 3 survivors in
  Alcotest.(check bool)
    (Printf.sprintf "a retry budget rescues points (%d -> %d)" count0 count3)
    true
    (count0 > 0 && count3 < count0)

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                      *)
(* ------------------------------------------------------------------ *)

let test_breaker_trips_deterministic () =
  with_supervision ~retries:0 ~breaker:2 (fun () ->
      let programs = Dataset.Loopgen.generate ~seed:104 30 in
      let options =
        { Neurovec.Pipeline.default_options with
          Neurovec.Pipeline.faults =
            Neurovec.Faults.create ~seed:13 ~compile:0.7 () }
      in
      let run jobs =
        Neurovec.Stats.reset ();
        let sw = Test_parallel.sweep ~options ~jobs programs in
        (sw, (Neurovec.Stats.snapshot ()).Neurovec.Stats.breaker_trips)
      in
      let (r1, q1), trips1 = run 1 in
      let (r4, q4), trips4 = run 4 in
      Test_parallel.check_sweeps_equal (r1, q1) (r4, q4);
      Alcotest.(check bool)
        (Printf.sprintf "breaker tripped (%d trips)" trips1)
        true (trips1 > 0);
      Alcotest.(check int) "trips identical across jobs" trips1 trips4;
      let contains hay needle =
        let n = String.length needle in
        let rec go i =
          i + n <= String.length hay
          && (String.sub hay i n = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "structured breaker report" true
        (List.exists
           (fun (_, why) ->
             contains why "circuit breaker" && contains why "compile=")
           q1))

let test_breaker_disabled_without_faults () =
  (* fault-free sweeps must never see the breaker: golden rewards and
     quarantine behaviour are unchanged *)
  with_supervision ~breaker:5 (fun () ->
      let programs = Dataset.Loopgen.generate ~seed:105 4 in
      Neurovec.Stats.reset ();
      let results, quarantined =
        Test_parallel.sweep ~options:Neurovec.Pipeline.default_options
          ~jobs:1 programs
      in
      Alcotest.(check int) "no trips"
        0 (Neurovec.Stats.snapshot ()).Neurovec.Stats.breaker_trips;
      Alcotest.(check (list (pair string string))) "no quarantine" []
        quarantined;
      Array.iter
        (fun r -> Alcotest.(check bool) "swept" true (r <> None))
        results)

(* ------------------------------------------------------------------ *)
(* Write-ahead journal                                                  *)
(* ------------------------------------------------------------------ *)

let journal_options =
  { Neurovec.Pipeline.default_options with
    Neurovec.Pipeline.faults =
      Neurovec.Faults.create ~seed:11 ~compile:0.15 () }

let with_temp_file suffix f =
  let path = Filename.temp_file "neurovec_test" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_journal_replay_serves_cache () =
  with_supervision ~retries:1 (fun () ->
      with_temp_file ".journal" (fun path ->
          Sys.remove path;
          let programs = Dataset.Loopgen.generate ~seed:106 5 in
          Neurovec.Frontend.clear ();
          let oracle = Neurovec.Reward.create ~options:journal_options programs in
          Neurovec.Reward.set_journal oracle path;
          let first = Neurovec.Reward.sweep_all oracle in
          let first_q = Neurovec.Reward.quarantine_report oracle in
          Neurovec.Reward.close_journal oracle;
          (* a fresh oracle fed the journal must answer the whole sweep
             without a single pipeline run *)
          let restored =
            Neurovec.Reward.create ~options:journal_options programs
          in
          let n = Neurovec.Reward.replay_journal restored path in
          Alcotest.(check bool) "records replayed" true (n > 0);
          Neurovec.Stats.reset ();
          let again = Neurovec.Reward.sweep_all restored in
          let snap = Neurovec.Stats.snapshot () in
          Alcotest.(check int) "no re-evaluation: reward misses" 0
            snap.Neurovec.Stats.reward_misses;
          Alcotest.(check int) "no re-evaluation: pipeline runs" 0
            snap.Neurovec.Stats.pipeline_runs;
          Test_parallel.check_sweeps_equal (first, first_q)
            (again, Neurovec.Reward.quarantine_report restored);
          (* a torn final record (crash mid-append) is skipped, not fatal,
             and the re-measured sweep still agrees *)
          let full = read_file path in
          let oc = open_out_bin path in
          output_string oc (String.sub full 0 (String.length full - 3));
          close_out oc;
          let torn = Neurovec.Reward.create ~options:journal_options programs in
          let n' = Neurovec.Reward.replay_journal torn path in
          Alcotest.(check bool) "torn tail dropped" true (n' < n);
          Test_parallel.check_sweeps_equal (first, first_q)
            ( Neurovec.Reward.sweep_all torn,
              Neurovec.Reward.quarantine_report torn );
          Alcotest.(check int) "replay of a missing file is a no-op" 0
            (Neurovec.Reward.replay_journal
               (Neurovec.Reward.create ~options:journal_options programs)
               (path ^ ".does-not-exist"))))

(* ------------------------------------------------------------------ *)
(* Kill-and-resume under stall + transient faults                       *)
(* ------------------------------------------------------------------ *)

let resume_hyper = { Rl.Ppo.default_hyper with batch_size = 64 }

let test_kill_and_resume_bit_exact () =
  with_supervision ~deadline:0.02 ~retries:2 (fun () ->
      with_temp_file ".agent" (fun ref_path ->
          with_temp_file ".agent" (fun kill_path ->
              with_temp_file ".journal" (fun journal ->
                  Sys.remove journal;
                  let corpus () = Dataset.Loopgen.generate ~seed:88 8 in
                  (* uninterrupted reference *)
                  Neurovec.Frontend.clear ();
                  let fw =
                    Neurovec.Framework.create ~options:stall_options ~seed:3
                      (corpus ())
                  in
                  ignore
                    (Neurovec.Framework.train fw ~hyper:resume_hyper
                       ~total_steps:256 ~checkpoint_path:ref_path);
                  (* same run, stopped after two updates (the graceful
                     shutdown path: stop lands on an update boundary and
                     the checkpoint + journal are flushed) *)
                  Neurovec.Frontend.clear ();
                  let updates = ref 0 in
                  let fw1 =
                    Neurovec.Framework.create ~options:stall_options
                      ~journal ~seed:3 (corpus ())
                  in
                  ignore
                    (Neurovec.Framework.train fw1 ~hyper:resume_hyper
                       ~total_steps:256 ~checkpoint_path:kill_path
                       ~stop:(fun () -> !updates >= 2)
                       ~progress:(fun _ -> incr updates));
                  Neurovec.Reward.close_journal
                    fw1.Neurovec.Framework.oracle;
                  Alcotest.(check int) "stopped early" 2 !updates;
                  (* resume: restore the agent and training state, replay
                     the journal, finish the step budget *)
                  Neurovec.Frontend.clear ();
                  let agent, state = Rl.Checkpoint.load_full kill_path in
                  Alcotest.(check bool) "resumable state present" true
                    (state <> None);
                  Neurovec.Stats.reset ();
                  let fw2 =
                    Neurovec.Framework.create ~agent ~options:stall_options
                      ~journal ~seed:3 (corpus ())
                  in
                  Alcotest.(check bool) "journal replayed on resume" true
                    ((Neurovec.Stats.snapshot ())
                       .Neurovec.Stats.journal_replayed
                    > 0);
                  ignore
                    (Neurovec.Framework.train fw2 ~hyper:resume_hyper
                       ~total_steps:256 ~checkpoint_path:kill_path
                       ?resume:state);
                  Alcotest.(check bool)
                    "resumed checkpoint bytes = uninterrupted bytes" true
                    (read_file ref_path = read_file kill_path)))))

(* ------------------------------------------------------------------ *)
(* Graceful shutdown plumbing                                           *)
(* ------------------------------------------------------------------ *)

let test_shutdown_stops_at_update_boundary () =
  with_supervision (fun () ->
      with_temp_file ".agent" (fun path ->
          Neurovec.Frontend.clear ();
          Neurovec.Supervisor.reset_shutdown ();
          let corpus = Dataset.Loopgen.generate ~seed:107 3 in
          let fw = Neurovec.Framework.create ~seed:3 corpus in
          let history =
            Neurovec.Framework.train fw ~hyper:resume_hyper
              ~total_steps:192 ~checkpoint_path:path
              ~stop:Neurovec.Supervisor.shutdown_requested
              ~progress:(fun _ -> Neurovec.Supervisor.request_shutdown ())
          in
          (* the request lands after update 1; the loop must finish that
             update, write the checkpoint, and not start another batch *)
          Alcotest.(check int) "one update" 1 (List.length history);
          Alcotest.(check bool) "checkpoint flushed" true
            (Sys.file_exists path);
          let _, state = Rl.Checkpoint.load_full path in
          match state with
          | Some st ->
              Alcotest.(check int) "boundary state" 1
                st.Rl.Train_state.ts_update
          | None -> Alcotest.fail "expected resumable state"))

let test_signal_sets_shutdown_flag () =
  with_supervision (fun () ->
      Neurovec.Supervisor.reset_shutdown ();
      Neurovec.Supervisor.install_signal_handlers ();
      (* uninstall even on failure: a leaked install would leave the
         graceful handler active for every later suite *)
      Fun.protect
        ~finally:Neurovec.Supervisor.uninstall_signal_handlers
        (fun () ->
          Alcotest.(check bool) "clear before" false
            (Neurovec.Supervisor.shutdown_requested ());
          Unix.kill (Unix.getpid ()) Sys.sigterm;
          (* signal delivery runs at a safepoint; give it one *)
          let deadline = Unix.gettimeofday () +. 2.0 in
          while
            (not (Neurovec.Supervisor.shutdown_requested ()))
            && Unix.gettimeofday () < deadline
          do
            Thread.delay 0.005
          done;
          Alcotest.(check bool) "first SIGTERM requests graceful shutdown"
            true
            (Neurovec.Supervisor.shutdown_requested ())))

(* ------------------------------------------------------------------ *)
(* mkdir_p                                                              *)
(* ------------------------------------------------------------------ *)

let test_mkdir_p () =
  let base =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "neurovec_mkdir_%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists base then rm base)
    (fun () ->
      let nested = Filename.concat (Filename.concat base "a") "b" in
      Neurovec.Supervisor.mkdir_p nested;
      Alcotest.(check bool) "nested path created" true
        (Sys.is_directory nested);
      (* idempotent *)
      Neurovec.Supervisor.mkdir_p nested;
      let file = Filename.concat base "plain" in
      let oc = open_out file in
      close_out oc;
      match Neurovec.Supervisor.mkdir_p (Filename.concat file "x") with
      | () -> Alcotest.fail "expected Sys_error on a file component"
      | exception Sys_error msg ->
          Alcotest.(check bool) "clear error message" true
            (String.length msg > String.length file))

let suite =
  [
    ( "supervisor.pool",
      [
        Alcotest.test_case "cancel skips queued items" `Quick
          test_pool_cancel_skips_queued;
      ] );
    ( "supervisor.faults",
      [
        Alcotest.test_case "stall/transient spec" `Quick
          test_faults_stall_transient_spec;
      ] );
    ( "supervisor.watchdog",
      [
        Alcotest.test_case "stalls die as Hung, jobs-invariant" `Slow
          test_watchdog_deterministic;
      ] );
    ( "supervisor.retries",
      [
        Alcotest.test_case "transient points recover exactly" `Slow
          test_transient_retry_recovers;
        Alcotest.test_case "exhaustion is deterministic" `Slow
          test_retry_exhaustion_deterministic;
      ] );
    ( "supervisor.breaker",
      [
        Alcotest.test_case "trips are jobs-invariant" `Slow
          test_breaker_trips_deterministic;
        Alcotest.test_case "inactive without faults" `Quick
          test_breaker_disabled_without_faults;
      ] );
    ( "supervisor.journal",
      [
        Alcotest.test_case "replay serves the whole sweep" `Slow
          test_journal_replay_serves_cache;
      ] );
    ( "supervisor.shutdown",
      [
        Alcotest.test_case "kill-and-resume is bit-exact" `Slow
          test_kill_and_resume_bit_exact;
        Alcotest.test_case "stop lands on an update boundary" `Quick
          test_shutdown_stops_at_update_boundary;
        Alcotest.test_case "SIGTERM sets the shutdown flag" `Quick
          test_signal_sets_shutdown_flag;
      ] );
    ( "supervisor.fs",
      [ Alcotest.test_case "mkdir_p" `Quick test_mkdir_p ] );
  ]
