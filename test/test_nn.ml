(* Tests for the neural-network substrate: RNG, tensors, layers, optimizers.
   Gradient checks against finite differences are the load-bearing tests. *)

let feps = 1e-4

(* ------------------------------------------------------------------ *)
(* RNG                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Nn.Rng.create 7 and b = Nn.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.0)) "same stream" (Nn.Rng.float a) (Nn.Rng.float b)
  done

let test_rng_range () =
  let r = Nn.Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Nn.Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0);
    let i = Nn.Rng.int r 10 in
    Alcotest.(check bool) "in [0,10)" true (i >= 0 && i < 10)
  done

let test_rng_normal_moments () =
  let r = Nn.Rng.create 2 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Nn.Rng.normal r) in
  let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let var =
    Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs
    /. float_of_int n
  in
  Alcotest.(check bool) "mean ~ 0" true (abs_float mean < 0.05);
  Alcotest.(check bool) "var ~ 1" true (abs_float (var -. 1.0) < 0.1)

let test_rng_shuffle_permutes () =
  let r = Nn.Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Nn.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 50 Fun.id);
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 50 Fun.id)

(* ------------------------------------------------------------------ *)
(* Tensor ops                                                           *)
(* ------------------------------------------------------------------ *)

let test_gemv () =
  let m = Nn.Tensor.mat_create 2 3 in
  (* [[1 2 3]; [4 5 6]] *)
  List.iteri (fun i v -> m.Nn.Tensor.data.(i) <- v) [ 1.; 2.; 3.; 4.; 5.; 6. ];
  let y = Nn.Tensor.vec_create 2 in
  Nn.Tensor.gemv m [| 1.0; 0.5; -1.0 |] y;
  Alcotest.(check (float feps)) "y0" (-1.0) y.(0);
  Alcotest.(check (float feps)) "y1" 0.5 y.(1)

let test_gemv_t () =
  let m = Nn.Tensor.mat_create 2 3 in
  List.iteri (fun i v -> m.Nn.Tensor.data.(i) <- v) [ 1.; 2.; 3.; 4.; 5.; 6. ];
  let y = Nn.Tensor.vec_create 3 in
  Nn.Tensor.gemv_t m [| 1.0; -1.0 |] y;
  Alcotest.(check (float feps)) "y0" (-3.0) y.(0);
  Alcotest.(check (float feps)) "y1" (-3.0) y.(1);
  Alcotest.(check (float feps)) "y2" (-3.0) y.(2)

let test_ger () =
  let m = Nn.Tensor.mat_create 2 2 in
  Nn.Tensor.ger m ~alpha:2.0 [| 1.0; 3.0 |] [| 4.0; 5.0 |];
  Alcotest.(check (float feps)) "m00" 8.0 (Nn.Tensor.get m 0 0);
  Alcotest.(check (float feps)) "m11" 30.0 (Nn.Tensor.get m 1 1)

let test_softmax () =
  let p = Nn.Tensor.softmax [| 1.0; 2.0; 3.0 |] in
  let sum = Array.fold_left ( +. ) 0.0 p in
  Alcotest.(check (float feps)) "sums to 1" 1.0 sum;
  Alcotest.(check bool) "monotone" true (p.(0) < p.(1) && p.(1) < p.(2));
  (* stability with large inputs *)
  let p2 = Nn.Tensor.softmax [| 1000.0; 1001.0 |] in
  Alcotest.(check bool) "no nan" true (Float.is_finite p2.(0))

let test_log_softmax_consistent () =
  let z = [| 0.3; -1.2; 2.0; 0.0 |] in
  let p = Nn.Tensor.softmax z and lp = Nn.Tensor.log_softmax z in
  Array.iteri
    (fun i pi -> Alcotest.(check (float 1e-9)) "log p" (log pi) lp.(i))
    p

let test_sample_respects_distribution () =
  let rng = Nn.Rng.create 4 in
  let counts = [| 0; 0; 0 |] in
  for _ = 1 to 3000 do
    let i = Nn.Tensor.sample rng [| 0.1; 0.2; 0.7 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "heavy index dominates" true
    (counts.(2) > counts.(1) && counts.(1) > counts.(0))

let test_argmax () =
  Alcotest.(check int) "argmax" 2 (Nn.Tensor.argmax [| 0.1; -3.0; 5.0; 4.9 |])

(* ---- sample validation (regression: the old loop silently returned the
   last index whenever u overshot the accumulated mass, so a NaN or
   deficient probability vector produced an arbitrary action instead of
   an error) ---- *)

let expect_bad_probability what f =
  match f () with
  | exception Nn.Tensor.Bad_probability _ -> ()
  | i -> Alcotest.failf "%s: expected Bad_probability, got index %d" what i

let test_sample_rejects_nan () =
  expect_bad_probability "nan entry" (fun () ->
      Nn.Tensor.sample_u ~u:0.5 [| 0.3; Float.nan; 0.4 |])

let test_sample_rejects_negative () =
  expect_bad_probability "negative entry" (fun () ->
      Nn.Tensor.sample_u ~u:0.5 [| 0.6; -0.2; 0.6 |])

let test_sample_rejects_deficient_mass () =
  (* u beyond the total mass used to fall through to the last index *)
  expect_bad_probability "mass 0.3" (fun () ->
      Nn.Tensor.sample_u ~u:0.9 [| 0.1; 0.2 |]);
  expect_bad_probability "empty vector" (fun () ->
      Nn.Tensor.sample_u ~u:0.5 [||])

let test_sample_u_valid_vectors () =
  Alcotest.(check int) "picks by cdf" 1
    (Nn.Tensor.sample_u ~u:0.35 [| 0.25; 0.25; 0.25; 0.25 |]);
  (* a softmax whose sum rounds to 1 - epsilon must still serve u ~ 1
     via the last index, not raise *)
  Alcotest.(check int) "rounding tolerance" 1
    (Nn.Tensor.sample_u ~u:0.99999999 [| 0.5; 0.4999999 |])

(* ------------------------------------------------------------------ *)
(* Gradient checks                                                      *)
(* ------------------------------------------------------------------ *)

(* numerically check dL/dp for a few parameters, L = sum(output .* w) *)
let test_dense_gradients () =
  let rng = Nn.Rng.create 5 in
  let l = Nn.Dense.create rng ~in_dim:4 ~out_dim:3 in
  let x = [| 0.5; -1.0; 0.25; 2.0 |] in
  let wsum = [| 1.0; -2.0; 0.5 |] in
  let loss () = Nn.Tensor.dot (Nn.Dense.forward l x) wsum in
  Nn.Dense.zero_grad l;
  ignore (Nn.Dense.backward l ~x ~dy:wsum);
  (* check a handful of weight gradients *)
  List.iter
    (fun (i, j) ->
      let saved = Nn.Tensor.get l.Nn.Dense.w i j in
      Nn.Tensor.set l.Nn.Dense.w i j (saved +. 1e-5);
      let lp = loss () in
      Nn.Tensor.set l.Nn.Dense.w i j (saved -. 1e-5);
      let lm = loss () in
      Nn.Tensor.set l.Nn.Dense.w i j saved;
      let numeric = (lp -. lm) /. 2e-5 in
      let analytic = Nn.Tensor.get l.Nn.Dense.gw i j in
      if abs_float (numeric -. analytic) > 1e-3 then
        Alcotest.failf "dW[%d,%d]: numeric %f vs analytic %f" i j numeric
          analytic)
    [ (0, 0); (1, 2); (2, 3); (0, 1) ]

let test_dense_input_gradient () =
  let rng = Nn.Rng.create 6 in
  let l = Nn.Dense.create rng ~in_dim:3 ~out_dim:2 in
  let x = [| 0.1; 0.7; -0.3 |] in
  let wsum = [| 0.5; -1.5 |] in
  Nn.Dense.zero_grad l;
  let dx = Nn.Dense.backward l ~x ~dy:wsum in
  for j = 0 to 2 do
    let x2 = Array.copy x in
    x2.(j) <- x2.(j) +. 1e-5;
    let lp = Nn.Tensor.dot (Nn.Dense.forward l x2) wsum in
    x2.(j) <- x2.(j) -. 2e-5;
    let lm = Nn.Tensor.dot (Nn.Dense.forward l x2) wsum in
    let numeric = (lp -. lm) /. 2e-5 in
    if abs_float (numeric -. dx.(j)) > 1e-3 then
      Alcotest.failf "dx[%d]: numeric %f vs analytic %f" j numeric dx.(j)
  done

let test_mlp_gradients () =
  let rng = Nn.Rng.create 7 in
  let mlp = Nn.Mlp.create rng ~dims:[ 4; 8; 3 ] ~act:Nn.Mlp.Tanh in
  let x = [| 0.2; -0.6; 1.1; 0.05 |] in
  let wsum = [| 1.0; 0.3; -0.8 |] in
  let loss () = Nn.Tensor.dot (Nn.Mlp.forward mlp x) wsum in
  Nn.Mlp.zero_grad mlp;
  let cache = Nn.Mlp.forward_cached mlp x in
  let dx = Nn.Mlp.backward mlp cache ~dout:wsum in
  (* input gradient via finite differences *)
  for j = 0 to 3 do
    let saved = x.(j) in
    x.(j) <- saved +. 1e-5;
    let lp = loss () in
    x.(j) <- saved -. 1e-5;
    let lm = loss () in
    x.(j) <- saved;
    let numeric = (lp -. lm) /. 2e-5 in
    if abs_float (numeric -. dx.(j)) > 1e-3 then
      Alcotest.failf "mlp dx[%d]: numeric %f vs analytic %f" j numeric dx.(j)
  done;
  (* and one weight of the first layer *)
  let l0 = List.hd mlp.Nn.Mlp.layers in
  let saved = Nn.Tensor.get l0.Nn.Dense.w 2 1 in
  Nn.Tensor.set l0.Nn.Dense.w 2 1 (saved +. 1e-5);
  let lp = loss () in
  Nn.Tensor.set l0.Nn.Dense.w 2 1 (saved -. 1e-5);
  let lm = loss () in
  Nn.Tensor.set l0.Nn.Dense.w 2 1 saved;
  let numeric = (lp -. lm) /. 2e-5 in
  let analytic = Nn.Tensor.get l0.Nn.Dense.gw 2 1 in
  if abs_float (numeric -. analytic) > 1e-3 then
    Alcotest.failf "mlp dW: numeric %f vs analytic %f" numeric analytic

(* ------------------------------------------------------------------ *)
(* Optimizers                                                           *)
(* ------------------------------------------------------------------ *)

(* minimize (p - 3)^2 *)
let quad_converges opt_of =
  let p = [| 0.0 |] and g = [| 0.0 |] in
  let opt = opt_of () in
  for _ = 1 to 500 do
    g.(0) <- 2.0 *. (p.(0) -. 3.0);
    Nn.Optim.step opt [ (p, g) ]
  done;
  abs_float (p.(0) -. 3.0) < 0.05

let test_sgd_converges () =
  Alcotest.(check bool) "sgd" true (quad_converges (fun () -> Nn.Optim.sgd ~lr:0.05))

let test_adam_converges () =
  Alcotest.(check bool) "adam" true
    (quad_converges (fun () -> Nn.Optim.adam ~lr:0.05 ()))

let test_adam_beats_noise () =
  (* adam with tiny lr still moves in the right direction *)
  let p = [| 10.0 |] and g = [| 0.0 |] in
  let opt = Nn.Optim.adam ~lr:0.01 () in
  for _ = 1 to 100 do
    g.(0) <- p.(0);
    Nn.Optim.step opt [ (p, g) ]
  done;
  Alcotest.(check bool) "moved toward 0" true (p.(0) < 10.0)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* regression: Adam pairs its moment vectors with the params purely by
   position, so a model whose shape changed under a live optimizer used
   to corrupt the moments silently — now it must raise Bad_state *)
let test_adam_rejects_shape_change () =
  let opt = Nn.Optim.adam ~lr:0.01 () in
  let p = [| 1.0; 2.0 |] and g = [| 0.1; 0.1 |] in
  Nn.Optim.step opt [ (p, g) ];
  (* more parameter tensors than moment slots *)
  (match Nn.Optim.step opt [ (p, g); (p, g) ] with
  | () -> Alcotest.fail "expected Bad_state on a changed param count"
  | exception Nn.Optim.Bad_state m ->
      Alcotest.(check bool) "count message" true
        (contains ~sub:"moment slots" m));
  (* same count, resized tensor *)
  let p3 = [| 1.0; 2.0; 3.0 |] and g3 = [| 0.1; 0.1; 0.1 |] in
  (match Nn.Optim.step opt [ (p3, g3) ] with
  | () -> Alcotest.fail "expected Bad_state on a resized tensor"
  | exception Nn.Optim.Bad_state m ->
      Alcotest.(check bool) "length message" true (contains ~sub:"elements" m));
  (* the matching list still steps fine afterwards *)
  Nn.Optim.step opt [ (p, g) ]

(* ------------------------------------------------------------------ *)
(* Batched kernels: bit-identical to the scalar path                    *)
(* ------------------------------------------------------------------ *)

let bits = Int64.bits_of_float

let fill_rows (rows : float array array) : Nn.Batch.buf =
  let w = Array.length rows.(0) in
  let b = Nn.Batch.create (Array.length rows * w) in
  Array.iteri
    (fun r xr -> Array.iteri (fun j v -> Bigarray.Array1.set b ((r * w) + j) v) xr)
    rows;
  b

(* random layers over random shapes: dense_rows must reproduce
   Dense.forward bit for bit, row by row (covers the unrolled main loop,
   the tail loop, and the fused bias add) *)
let test_dense_rows_bitwise () =
  let rng = Nn.Rng.create 31 in
  for trial = 1 to 25 do
    let in_dim = 1 + Nn.Rng.int rng 17 in
    let out_dim = 1 + Nn.Rng.int rng 13 in
    let rows = 1 + Nn.Rng.int rng 9 in
    let l = Nn.Dense.create rng ~in_dim ~out_dim in
    let xs =
      Array.init rows (fun _ -> Array.init in_dim (fun _ -> Nn.Rng.normal rng))
    in
    let y = Nn.Batch.create (rows * out_dim) in
    Nn.Dense.forward_rows l ~x:(fill_rows xs) ~y ~rows;
    Array.iteri
      (fun r xr ->
        let expect = Nn.Dense.forward l xr in
        for o = 0 to out_dim - 1 do
          let got = Nn.Batch.get y ((r * out_dim) + o) in
          if bits expect.(o) <> bits got then
            Alcotest.failf "trial %d (%dx%d) row %d out %d: %h vs %h" trial
              in_dim out_dim r o expect.(o) got
        done)
      xs
  done

(* full trunk stacks under every activation, including the empty stack
   (forward_rows returns the input buffer, as forward returns x) *)
let test_mlp_rows_bitwise () =
  let rng = Nn.Rng.create 32 in
  let arena = Nn.Batch.create_arena () in
  List.iter
    (fun (act, dims) ->
      let mlp = Nn.Mlp.create rng ~dims ~act in
      let in_dim = List.hd dims in
      let out_dim = List.hd (List.rev dims) in
      let rows = 7 in
      let xs =
        Array.init rows (fun _ ->
            Array.init in_dim (fun _ -> Nn.Rng.normal rng))
      in
      let y = Nn.Mlp.forward_rows mlp arena ~x:(fill_rows xs) ~rows in
      Array.iteri
        (fun r xr ->
          let expect = Nn.Mlp.forward mlp xr in
          for o = 0 to out_dim - 1 do
            let got = Nn.Batch.get y ((r * out_dim) + o) in
            if bits expect.(o) <> bits got then
              Alcotest.failf "dims %s row %d out %d: %h vs %h"
                (String.concat "x" (List.map string_of_int dims))
                r o expect.(o) got
          done)
        xs)
    [ (Nn.Mlp.Tanh, [ 4; 8; 3 ]); (Nn.Mlp.Relu, [ 5; 6; 6; 2 ]);
      (Nn.Mlp.Linear, [ 3; 4 ]); (Nn.Mlp.Tanh, [ 4 ]) ]

let test_softmax_inplace_bitwise () =
  let rng = Nn.Rng.create 33 in
  for _ = 1 to 20 do
    let n = 1 + Nn.Rng.int rng 12 in
    let z = Array.init n (fun _ -> 4.0 *. Nn.Rng.normal rng) in
    let expect = Nn.Tensor.softmax z in
    let s = Array.copy z in
    Nn.Batch.softmax_inplace s ~n;
    for i = 0 to n - 1 do
      if bits expect.(i) <> bits s.(i) then
        Alcotest.failf "softmax[%d]: %h vs %h" i expect.(i) s.(i)
    done
  done

(* arena slots keep their identity (and grow, never shrink) so the warm
   steady state is allocation-free *)
let test_arena_slot_reuse () =
  let a = Nn.Batch.create_arena () in
  let b1 = Nn.Batch.slot a "x" 10 in
  let b2 = Nn.Batch.slot a "x" 8 in
  Alcotest.(check bool) "smaller request reuses the buffer" true (b1 == b2);
  let b3 = Nn.Batch.slot a "x" 1000 in
  Alcotest.(check bool) "larger request grows" true
    (Bigarray.Array1.dim b3 >= 1000);
  let b4 = Nn.Batch.slot a "y" 10 in
  Alcotest.(check bool) "names are distinct slots" true (b3 != b4);
  Nn.Batch.reset a;
  let b5 = Nn.Batch.slot a "x" 10 in
  Alcotest.(check bool) "reset drops the store" true (b3 != b5)

let suite =
  [
    ( "nn.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "ranges" `Quick test_rng_range;
        Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
      ] );
    ( "nn.tensor",
      [
        Alcotest.test_case "gemv" `Quick test_gemv;
        Alcotest.test_case "gemv transpose" `Quick test_gemv_t;
        Alcotest.test_case "outer product" `Quick test_ger;
        Alcotest.test_case "softmax" `Quick test_softmax;
        Alcotest.test_case "log_softmax consistent" `Quick
          test_log_softmax_consistent;
        Alcotest.test_case "sampling" `Quick test_sample_respects_distribution;
        Alcotest.test_case "sample rejects nan" `Quick test_sample_rejects_nan;
        Alcotest.test_case "sample rejects negative" `Quick
          test_sample_rejects_negative;
        Alcotest.test_case "sample rejects deficient mass" `Quick
          test_sample_rejects_deficient_mass;
        Alcotest.test_case "sample_u valid vectors" `Quick
          test_sample_u_valid_vectors;
        Alcotest.test_case "argmax" `Quick test_argmax;
      ] );
    ( "nn.grad",
      [
        Alcotest.test_case "dense weight gradients" `Quick test_dense_gradients;
        Alcotest.test_case "dense input gradient" `Quick
          test_dense_input_gradient;
        Alcotest.test_case "mlp gradients" `Quick test_mlp_gradients;
      ] );
    ( "nn.optim",
      [
        Alcotest.test_case "sgd converges" `Quick test_sgd_converges;
        Alcotest.test_case "adam converges" `Quick test_adam_converges;
        Alcotest.test_case "adam direction" `Quick test_adam_beats_noise;
        Alcotest.test_case "adam rejects shape change" `Quick
          test_adam_rejects_shape_change;
      ] );
    ( "batched.kernels",
      [
        Alcotest.test_case "dense_rows bitwise" `Quick test_dense_rows_bitwise;
        Alcotest.test_case "mlp forward_rows bitwise" `Quick
          test_mlp_rows_bitwise;
        Alcotest.test_case "softmax_inplace bitwise" `Quick
          test_softmax_inplace_bitwise;
        Alcotest.test_case "arena slot reuse" `Quick test_arena_slot_reuse;
      ] );
  ]
