(* Golden snapshots of the figure summaries on small, seeded corpora.

   Each test renders a canonical summary string — names, chosen (VF, IF)
   pairs, and speedups printed as %h hex floats so equality is bit-exact —
   and compares it against a committed golden.  Because every value in the
   pipeline is a pure function of program content (caches are
   content-addressed, fault injection is off for these corpora, timing is
   a deterministic cost model), these snapshots hold at any --jobs /
   NEUROVEC_JOBS setting: CI runs them with a 4-domain pool, so a
   schedule-dependent result anywhere in the reward path shows up as a
   golden mismatch.

   On an intentional change to the cost model, RNG streams, or planner,
   regenerate by running the suite: the failure message prints the new
   canonical string ready to paste. *)

let check_golden ~what (expected : string) (actual : string) : unit =
  if actual <> expected then
    Alcotest.failf
      "%s summary changed.\nExpected:\n%s\nActual (paste into test_golden.ml \
       if intended):\n%s"
      what expected actual

(* ---- Figure 2: brute force on the LLVM suite ---------------------- *)

let fig2_golden =
  "sum_i32 vf=32 if=1 speedup=0x1.00487ede0487fp+1\n\
   dot_i32 vf=32 if=1 speedup=0x1.f97dd49c34115p+0\n\
   dot_f32 vf=32 if=1 speedup=0x1.f911c27d9e1afp+0\n\
   copy_widen_short vf=32 if=16 speedup=0x1.2c54ba66e2586p+1\n\
   saxpy_f32 vf=32 if=16 speedup=0x1.8853606f2b3eep+0\n\
   predicated_store vf=32 if=1 speedup=0x1.ef06b172f6337p+0\n\
   select_minmax vf=32 if=1 speedup=0x1.e376e5eca5f73p+0\n\
   stride2_pack vf=16 if=1 speedup=0x1.81331aa1b59fap+0\n\
   gather_stride4 vf=16 if=1 speedup=0x1.96df733e75e21p+1\n\
   reverse_copy vf=32 if=8 speedup=0x1.0884210842108p+1\n\
   unknown_bound vf=16 if=1 speedup=0x1.a0590b21642c9p+0\n\
   misaligned_offset vf=32 if=2 speedup=0x1.42d82d82d82d7p+1\n\
   multidim_rowsum vf=16 if=1 speedup=0x1.5a8667bcbfc97p+0\n\
   mixed_types vf=32 if=1 speedup=0x1.28418045de286p+1\n\
   xor_reduction vf=32 if=1 speedup=0x1.17c61660150f3p+1\n\
   shift_mask vf=32 if=4 speedup=0x1.112c1668bd042p+1\n\
   step2_pairs vf=4 if=1 speedup=0x1.5d65df359b6afp+0\n\
   geomean=0x1.f25ce41258ed8p+0"

let canon_fig2 () : string =
  let rows = Experiments.Fig2.run () in
  String.concat "\n"
    (List.map
       (fun r ->
         Printf.sprintf "%s vf=%d if=%d speedup=%h" r.Experiments.Fig2.name
           r.Experiments.Fig2.best_vf r.Experiments.Fig2.best_if
           r.Experiments.Fig2.best_speedup)
       rows
    @ [ Printf.sprintf "geomean=%h"
          (Experiments.Common.geomean
             (List.map (fun r -> r.Experiments.Fig2.best_speedup) rows)) ])

let test_fig2_golden () =
  check_golden ~what:"fig2" fig2_golden (canon_fig2 ())

(* ---- Figures 7 and 8: a tiny shared trained instance --------------- *)

(* explicit sizes: independent of NEUROVEC_SCALE, small enough for CI *)
let tiny =
  lazy
    (Experiments.Trained.build ~seed:5 ~corpus_size:24 ~train_steps:192
       ~n_labeled:6 ())

let fig7_golden =
  "gather_00023 random=0x1.f57c954a1e7d1p-1 polly=0x1p+0 \
   NNS=0x1.f57c954a1e7d1p-1 decision-tree=0x1.f9a3c6c1fcd1ep-1 \
   RL=0x1.58f2fba938682p+1 brute-force=0x1.58f2fba938681p+1\n\
   offset_00016 random=0x1.8da6dae529c5ap-2 polly=0x1p+0 \
   NNS=0x1.470126c3bdfc3p+0 decision-tree=0x1.3ba59a7d38aedp+0 \
   RL=0x1.87955f2363bbfp+0 brute-force=0x1.c75940ab05e11p+0\n\
   widening_00005 random=0x1.f207657ef903bp-1 polly=0x1p+0 \
   NNS=0x1.00d901b20364p+0 decision-tree=0x1.230fd99373c0ap+0 \
   RL=0x1.21f94d0a0c70fp+0 brute-force=0x1.230fd99373c0ap+0\n\
   gather_00001 random=0x1.ddfe1c56e8624p-1 polly=0x1p+0 \
   NNS=0x1.3a68636adfb08p+1 decision-tree=0x1.da7da7da7da7ep+0 \
   RL=0x1.346b46b46b46bp+1 brute-force=0x1.471c71c71c71dp+1\n\
   avg random=0x1.8882db71176d6p-1\n\
   avg polly=0x1p+0\n\
   avg NNS=0x1.533b216d90547p+0\n\
   avg decision-tree=0x1.4402310f3a71dp+0\n\
   avg RL=0x1.d4d9dc0ab06d1p+0\n\
   avg brute-force=0x1.ee8cb99fc9c5cp+0"

let canon_fig7 () : string =
  let rows, averages = Experiments.Fig7.run ~t:(Lazy.force tiny) () in
  String.concat "\n"
    (List.map
       (fun r ->
         Printf.sprintf "%s %s" r.Experiments.Fig7.bench
           (String.concat " "
              (List.map
                 (fun (m, s) ->
                   Printf.sprintf "%s=%h" (Experiments.Trained.method_name m) s)
                 r.Experiments.Fig7.speedups)))
       rows
    @ List.map
        (fun (m, s) ->
          Printf.sprintf "avg %s=%h" (Experiments.Trained.method_name m) s)
        averages)

let test_fig7_golden () =
  check_golden ~what:"fig7" fig7_golden (canon_fig7 ())

let fig8_golden =
  "gemm polly=0x1.7a222bb4d2c22p+1 RL=0x1p+0 polly+RL=0x1.7a222bb4d2c22p+1\n\
   gesummv polly=0x1p+0 RL=0x1.89d15e817a263p+0 polly+RL=0x1.89d15e817a263p+0\n\
   atax polly=0x1.4a33cc4dc95d8p+1 RL=0x1.046606d4e93d1p+0 \
   polly+RL=0x1.5a28b05efa2d1p+1\n\
   bicg polly=0x1p+0 RL=0x1.8acf89cb44a8fp+0 polly+RL=0x1.8acf89cb44a8fp+0\n\
   mvt polly=0x1.4a33b05776288p+1 RL=0x1.0466069783092p+0 \
   polly+RL=0x1.5a2890be8bc99p+1\n\
   syrk polly=0x1p+0 RL=0x1.7b24777da57a7p+0 polly+RL=0x1.7b24777da57a7p+0\n\
   avg polly=0x1.a4914cc8b59b1p+0\n\
   avg RL=0x1.3d71b23ac6b94p+0\n\
   avg polly+RL=0x1.0763c0f731528p+1"

let canon_fig8 () : string =
  let rows, averages = Experiments.Fig8.run ~t:(Lazy.force tiny) () in
  String.concat "\n"
    (List.map
       (fun (name, ss) ->
         Printf.sprintf "%s %s" name
           (String.concat " "
              (List.map
                 (fun (m, s) ->
                   Printf.sprintf "%s=%h" (Experiments.Trained.method_name m) s)
                 ss)))
       rows
    @ List.map
        (fun (m, s) ->
          Printf.sprintf "avg %s=%h" (Experiments.Trained.method_name m) s)
        averages)

let test_fig8_golden () =
  check_golden ~what:"fig8" fig8_golden (canon_fig8 ())

let suite =
  [
    ( "golden.summaries",
      [
        Alcotest.test_case "fig2 (LLVM suite brute force)" `Quick
          test_fig2_golden;
        Alcotest.test_case "fig7 (tiny trained instance)" `Slow
          test_fig7_golden;
        Alcotest.test_case "fig8 (tiny trained instance)" `Slow
          test_fig8_golden;
      ] );
  ]
