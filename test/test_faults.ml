(* Tests for the fault-injection layer and the hardened reward oracle:
   deterministic injection, the failure taxonomy, quarantine behaviour,
   median-of-k noisy-timing stability, and a full PPO training run under
   injected faults. *)

let prog name src = Dataset.Program.make ~family:"faults" name src

let simple_src =
  "int a[256]; int b[256];\n\
   int kernel() {\n\
  \  int i;\n\
  \  for (i = 0; i < 256; i++) a[i] = b[i] + 1;\n\
  \  return a[0];\n\
   }\n"

let spec ?(seed = 7) ?(compile = 0.0) ?(trap = 0.0) ?(fuel = 0.0)
    ?(timeout = 0.0) ?(noise = 0.0) ?(tail = 0.0) () =
  Neurovec.Faults.create ~seed ~compile ~trap ~fuel ~timeout ~noise ~tail ()

let options_with s =
  { Neurovec.Pipeline.default_options with Neurovec.Pipeline.faults = s }

let corpus n seed = Dataset.Loopgen.generate ~seed n

(* every (program, action) entry of an oracle, as (reward, failure) *)
let entries oracle programs =
  List.concat_map
    (fun i ->
      List.filter_map
        (fun a ->
          match Neurovec.Reward.entry oracle i a with
          | e -> Some (e.Neurovec.Reward.e_reward, e.Neurovec.Reward.e_failure)
          | exception Neurovec.Reward.Quarantined _ -> None)
        Rl.Spaces.all_actions)
    (List.init (Array.length programs) Fun.id)

(* ------------------------------------------------------------------ *)
(* Determinism                                                          *)
(* ------------------------------------------------------------------ *)

(* same seed => same faults, across independently constructed specs *)
let test_pick_deterministic () =
  let a = spec ~compile:0.3 ~trap:0.2 ~fuel:0.2 () in
  let b = spec ~compile:0.3 ~trap:0.2 ~fuel:0.2 () in
  for i = 0 to 199 do
    let key = Printf.sprintf "key-%d" i in
    Alcotest.(check bool)
      "same outcome" true
      (Neurovec.Faults.pick a ~key = Neurovec.Faults.pick b ~key)
  done;
  (* and a different seed changes at least one outcome *)
  let c = spec ~seed:8 ~compile:0.3 ~trap:0.2 ~fuel:0.2 () in
  Alcotest.(check bool) "seed matters" true
    (List.exists
       (fun i ->
         let key = Printf.sprintf "key-%d" i in
         Neurovec.Faults.pick a ~key <> Neurovec.Faults.pick c ~key)
       (List.init 200 Fun.id))

let test_pick_rate_sane () =
  let s = spec ~compile:0.3 () in
  let hits = ref 0 in
  for i = 0 to 999 do
    match Neurovec.Faults.pick s ~key:(Printf.sprintf "k%d" i) with
    | Some Neurovec.Faults.Compile_fault -> incr hits
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "rate %d/1000 near 0.3" !hits)
    true
    (!hits > 200 && !hits < 400)

(* same seed => bit-identical rewards through the whole oracle *)
let test_oracle_deterministic () =
  let programs = corpus 10 51 in
  let mk () =
    Neurovec.Reward.create
      ~options:
        (options_with
           (spec ~compile:0.2 ~trap:0.1 ~fuel:0.1 ~timeout:0.1 ~noise:0.1 ()))
      programs
  in
  let a = entries (mk ()) programs and b = entries (mk ()) programs in
  Alcotest.(check bool) "identical rewards" true (a = b);
  Alcotest.(check bool) "nonempty" true (a <> [])

(* ------------------------------------------------------------------ *)
(* Failure taxonomy                                                     *)
(* ------------------------------------------------------------------ *)

let count_failures kind es =
  List.length (List.filter (fun (_, f) -> f = Some kind) es)

let taxonomy_case ~kind s () =
  Neurovec.Stats.reset ();
  let programs = corpus 12 52 in
  let oracle = Neurovec.Reward.create ~options:(options_with s) programs in
  let es = entries oracle programs in
  let n = count_failures kind es in
  Alcotest.(check bool) "some actions fail" true (n > 0);
  (* every failed action carries the penalty reward, never NaN *)
  List.iter
    (fun (r, f) ->
      Alcotest.(check bool) "finite reward" true (Float.is_finite r);
      if f <> None then Alcotest.(check (float 1e-9)) "penalty" (-9.0) r)
    es;
  (* and the scoreboard saw them *)
  Alcotest.(check bool) "stats recorded" true
    (Neurovec.Stats.failure_count (Neurovec.Reward.failure_name kind) > 0)

let test_taxonomy_compile =
  taxonomy_case ~kind:Neurovec.Reward.Compile_failed (spec ~compile:0.4 ())

let test_taxonomy_trap =
  taxonomy_case ~kind:Neurovec.Reward.Trap (spec ~trap:0.4 ())

let test_taxonomy_fuel =
  taxonomy_case ~kind:Neurovec.Reward.Fuel_exhausted (spec ~fuel:0.4 ())

let test_taxonomy_timeout =
  taxonomy_case ~kind:Neurovec.Reward.Timed_out (spec ~timeout:0.5 ())

(* ------------------------------------------------------------------ *)
(* Quarantine                                                           *)
(* ------------------------------------------------------------------ *)

(* a baseline failure quarantines the program; later lookups re-raise
   without re-measuring *)
let test_baseline_failure_quarantines () =
  let programs = corpus 20 53 in
  let oracle =
    Neurovec.Reward.create ~options:(options_with (spec ~compile:0.5 ()))
      programs
  in
  let quarantined = ref 0 and ok = ref 0 in
  Array.iteri
    (fun i _ ->
      match Neurovec.Reward.baseline oracle i with
      | _ -> incr ok
      | exception Neurovec.Reward.Quarantined _ -> incr quarantined)
    programs;
  Alcotest.(check bool) "some quarantined" true (!quarantined > 0);
  Alcotest.(check bool) "some survive" true (!ok > 0);
  Alcotest.(check int) "report matches" !quarantined
    (List.length (Neurovec.Reward.quarantine_report oracle));
  (* the memoized re-raise costs no new evaluation *)
  let evals = oracle.Neurovec.Reward.evaluations in
  Array.iteri
    (fun i _ ->
      try ignore (Neurovec.Reward.baseline oracle i)
      with Neurovec.Reward.Quarantined _ -> ())
    programs;
  Alcotest.(check int) "no re-measurement" evals
    oracle.Neurovec.Reward.evaluations

(* regression: a zero-cost baseline must quarantine, not divide by zero
   and send NaN rewards into the PPO advantages *)
let test_zero_baseline_quarantined () =
  let p = prog "empty" "int kernel() { return 0; }" in
  let oracle = Neurovec.Reward.create [| p |] in
  (match Neurovec.Reward.reward oracle 0 { Rl.Spaces.vf_idx = 2; if_idx = 1 } with
  | r -> Alcotest.failf "expected quarantine, got reward %f" r
  | exception Neurovec.Reward.Quarantined (name, why) ->
      Alcotest.(check string) "program name" "empty" name;
      Alcotest.(check bool) "reason mentions the baseline" true
        (String.length why > 0));
  (* and the framework drops it instead of training on NaN *)
  let fw =
    Neurovec.Framework.create ~seed:1 [| p; prog "ok" simple_src |]
  in
  Alcotest.(check int) "one healthy sample" 1
    (Array.length fw.Neurovec.Framework.samples);
  Alcotest.(check int) "one skip recorded" 1
    (List.length fw.Neurovec.Framework.skipped)

(* ------------------------------------------------------------------ *)
(* Noisy timing: median-of-k with MAD rejection                         *)
(* ------------------------------------------------------------------ *)

let test_robust_estimate () =
  Alcotest.(check (float 1e-9)) "median" 2.0
    (Neurovec.Reward.robust_estimate [ 1.0; 2.0; 3.0 ]);
  (* a heavy-tailed spike is rejected *)
  Alcotest.(check (float 0.11)) "spike rejected" 2.0
    (Neurovec.Reward.robust_estimate [ 1.9; 2.0; 2.1; 2.05; 80.0 ])

let test_noisy_reward_stability () =
  Neurovec.Stats.reset ();
  let p = prog "noisy" simple_src in
  let clean = Neurovec.Reward.create [| p |] in
  let noisy =
    Neurovec.Reward.create
      ~options:(options_with (spec ~noise:0.1 ~tail:0.05 ()))
      ~noise_samples:7 [| p |]
  in
  let a = { Rl.Spaces.vf_idx = 3; if_idx = 1 } in
  let r_clean = Neurovec.Reward.reward clean 0 a in
  let r_noisy = Neurovec.Reward.reward noisy 0 a in
  Alcotest.(check bool)
    (Printf.sprintf "close to clean (%.3f vs %.3f)" r_noisy r_clean)
    true
    (abs_float (r_noisy -. r_clean) < 0.3);
  (* extra samples were actually taken... *)
  let s = Neurovec.Stats.snapshot () in
  Alcotest.(check bool) "timing retries recorded" true
    (s.Neurovec.Stats.timing_retries >= 12);
  (* ...and the cached reward is stable across lookups *)
  Alcotest.(check (float 0.0)) "cached" r_noisy
    (Neurovec.Reward.reward noisy 0 a)

(* ------------------------------------------------------------------ *)
(* Spec parsing                                                         *)
(* ------------------------------------------------------------------ *)

let test_of_string () =
  let s, warnings =
    Neurovec.Faults.of_string "seed=3,compile=0.1,noise=0.05,tail=0.01"
  in
  Alcotest.(check int) "seed" 3 s.Neurovec.Faults.f_seed;
  Alcotest.(check (float 1e-12)) "compile" 0.1 s.Neurovec.Faults.p_compile;
  Alcotest.(check (float 1e-12)) "noise" 0.05 s.Neurovec.Faults.noise;
  Alcotest.(check (list string)) "no warnings" [] warnings;
  Alcotest.(check bool) "active" true (Neurovec.Faults.active s)

let test_of_string_warns () =
  let s, warnings =
    Neurovec.Faults.of_string "compile=lots,bogus=1,trap=0.2"
  in
  Alcotest.(check int) "two warnings" 2 (List.length warnings);
  Alcotest.(check (float 1e-12)) "bad value ignored" 0.0
    s.Neurovec.Faults.p_compile;
  Alcotest.(check (float 1e-12)) "good field kept" 0.2
    s.Neurovec.Faults.p_trap

let test_descriptor_in_options_key () =
  let plain = Neurovec.Pipeline.options_key Neurovec.Pipeline.default_options in
  let faulty =
    Neurovec.Pipeline.options_key (options_with (spec ~compile:0.1 ()))
  in
  Alcotest.(check bool) "inactive spec adds nothing" true
    (Neurovec.Faults.descriptor Neurovec.Faults.none = "");
  Alcotest.(check bool) "fault spec changes the cache key" true
    (plain <> faulty)

(* ------------------------------------------------------------------ *)
(* Training under faults (the acceptance scenario)                      *)
(* ------------------------------------------------------------------ *)

(* PPO training over a corpus with injected compile failures, traps, fuel
   exhaustion, compile-time spikes and 10% timing noise completes without
   an uncaught exception and reports what it dropped.  When the CI smoke
   job sets NEUROVEC_FAULTS, that spec is used instead. *)
let test_training_survives_faults () =
  Neurovec.Stats.reset ();
  let s =
    match Sys.getenv_opt "NEUROVEC_FAULTS" with
    | Some text when text <> "" -> fst (Neurovec.Faults.of_string text)
    | _ ->
        spec ~seed:5 ~compile:0.06 ~trap:0.05 ~fuel:0.04 ~timeout:0.04
          ~noise:0.1 ~tail:0.02 ()
  in
  let programs = corpus 30 21 in
  let fw =
    Neurovec.Framework.create ~options:(options_with s) ~seed:2 programs
  in
  Alcotest.(check int) "every program accounted for" 30
    (Array.length fw.Neurovec.Framework.samples
    + List.length fw.Neurovec.Framework.skipped);
  Alcotest.(check bool) "fault rates leave something to train on" true
    (Array.length fw.Neurovec.Framework.samples > 0);
  let hist =
    Neurovec.Framework.train fw
      ~hyper:{ Rl.Ppo.default_hyper with batch_size = 100 }
      ~total_steps:300
  in
  Alcotest.(check int) "three updates" 3 (List.length hist);
  List.iter
    (fun st ->
      Alcotest.(check bool) "finite reward mean" true
        (Float.is_finite st.Rl.Ppo.reward_mean);
      Alcotest.(check bool) "finite loss" true (Float.is_finite st.Rl.Ppo.loss))
    hist;
  (* the scoreboard surfaces what happened *)
  let snap = Neurovec.Stats.snapshot () in
  Alcotest.(check bool) "failures recorded" true
    (snap.Neurovec.Stats.failures <> []);
  Alcotest.(check int) "quarantines recorded"
    (List.length fw.Neurovec.Framework.skipped)
    snap.Neurovec.Stats.quarantines

let suite =
  [
    ( "faults.inject",
      [
        Alcotest.test_case "pick is deterministic" `Quick
          test_pick_deterministic;
        Alcotest.test_case "rate near nominal" `Quick test_pick_rate_sane;
        Alcotest.test_case "oracle deterministic under faults" `Slow
          test_oracle_deterministic;
      ] );
    ( "faults.taxonomy",
      [
        Alcotest.test_case "compile failures -> penalty" `Quick
          test_taxonomy_compile;
        Alcotest.test_case "traps -> penalty" `Quick test_taxonomy_trap;
        Alcotest.test_case "fuel exhaustion -> penalty" `Quick
          test_taxonomy_fuel;
        Alcotest.test_case "timeout spikes -> penalty" `Quick
          test_taxonomy_timeout;
      ] );
    ( "faults.quarantine",
      [
        Alcotest.test_case "baseline failure quarantines" `Quick
          test_baseline_failure_quarantines;
        Alcotest.test_case "zero baseline quarantined (regression)" `Quick
          test_zero_baseline_quarantined;
      ] );
    ( "faults.noise",
      [
        Alcotest.test_case "robust estimate (MAD)" `Quick test_robust_estimate;
        Alcotest.test_case "median-of-k reward stability" `Quick
          test_noisy_reward_stability;
      ] );
    ( "faults.spec",
      [
        Alcotest.test_case "of_string" `Quick test_of_string;
        Alcotest.test_case "of_string warns" `Quick test_of_string_warns;
        Alcotest.test_case "descriptor keys the cache" `Quick
          test_descriptor_in_options_key;
      ] );
    ( "faults.training",
      [
        Alcotest.test_case "PPO survives injected faults" `Slow
          test_training_survives_faults;
      ] );
  ]
