(* Tests for IR lowering and the reference interpreter. *)

let lower ?bindings src =
  let prog = Minic.Parser.parse_string src in
  ignore (Minic.Sema.analyze ?bindings prog);
  Ir_lower.lower_program ?bindings prog

let find_fn m name =
  match List.find_opt (fun f -> f.Ir.fn_name = name) m.Ir.m_funcs with
  | Some f -> f
  | None -> Alcotest.failf "function %s not lowered" name

(* Run a function and return the integer result. *)
let run_int ?(seed = 0) m name =
  let st = Ir_interp.init_state ~seed m in
  match Ir_interp.run_func st (find_fn m name) () with
  | Some (Ir_interp.VI i) -> Int64.to_int i
  | Some (Ir_interp.VF f) -> int_of_float f
  | _ -> Alcotest.failf "%s did not return an int" name

let run_float ?(seed = 0) m name =
  let st = Ir_interp.init_state ~seed m in
  match Ir_interp.run_func st (find_fn m name) () with
  | Some (Ir_interp.VF f) -> f
  | Some (Ir_interp.VI i) -> Int64.to_float i
  | _ -> Alcotest.failf "%s did not return a float" name

(* ------------------------------------------------------------------ *)
(* Basic expression lowering                                            *)
(* ------------------------------------------------------------------ *)

let test_return_constant () =
  let m = lower "int f() { return 42; }" in
  Alcotest.(check int) "42" 42 (run_int m "f")

let test_arith () =
  let m = lower "int f() { return (3 + 4) * 5 - 6 / 2; }" in
  Alcotest.(check int) "arith" 32 (run_int m "f")

let test_precedence_semantics () =
  let m = lower "int f() { return 2 + 3 * 4; }" in
  Alcotest.(check int) "2+3*4" 14 (run_int m "f")

let test_locals_and_assign () =
  let m = lower "int f() { int a = 5; int b; b = a * 2; a = b + 1; return a; }" in
  Alcotest.(check int) "locals" 11 (run_int m "f")

let test_ternary () =
  let m = lower "int f() { int x = 7; return x > 5 ? 100 : 200; }" in
  Alcotest.(check int) "ternary" 100 (run_int m "f")

let test_comparison_produces_01 () =
  let m = lower "int f() { return (3 < 5) + (5 < 3); }" in
  Alcotest.(check int) "bool arith" 1 (run_int m "f")

let test_logical_ops () =
  let m = lower "int f() { return (1 && 2) + (0 || 0) + (3 || 0); }" in
  Alcotest.(check int) "logical" 2 (run_int m "f")

let test_bitwise () =
  let m = lower "int f() { return (12 & 10) | (1 << 4) ^ 3; }" in
  (* (12&10)=8; (1<<4)=16; 16^3=19; 8|19=27 *)
  Alcotest.(check int) "bitwise" 27 (run_int m "f")

let test_shifts_and_rem () =
  let m = lower "int f() { return (100 >> 2) + (100 % 7); }" in
  Alcotest.(check int) "shift/rem" 27 (run_int m "f")

let test_postinc_value () =
  let m = lower "int f() { int i = 5; int j = i++; return j * 10 + i; }" in
  Alcotest.(check int) "post-inc" 56 (run_int m "f")

let test_preinc_value () =
  let m = lower "int f() { int i = 5; int j = ++i; return j * 10 + i; }" in
  Alcotest.(check int) "pre-inc" 66 (run_int m "f")

let test_char_wrapping () =
  let m = lower "int f() { char c = 200; return (int) c; }" in
  Alcotest.(check int) "char wraps to signed" (200 - 256) (run_int m "f")

let test_short_wrapping () =
  let m = lower "int f() { short s = 40000; return (int) s; }" in
  Alcotest.(check int) "short wraps" (40000 - 65536) (run_int m "f")

let test_float_arith () =
  let m = lower "double f() { double x = 1.5; return x * 4.0 + 0.25; }" in
  Alcotest.(check (float 1e-9)) "float arith" 6.25 (run_float m "f")

let test_int_float_conversion () =
  let m = lower "int f() { float x = 7.9; return (int) x; }" in
  Alcotest.(check int) "f->i truncates" 7 (run_int m "f")

let test_f32_rounding () =
  (* 0.1 is not representable; float (F32) arithmetic must round *)
  let m = lower "double f() { float x = 0.1; return (double) x; }" in
  let f = run_float m "f" in
  Alcotest.(check bool) "rounded through f32" true
    (abs_float (f -. 0.1) > 0.0 && abs_float (f -. 0.1) < 1e-7)

let test_division_by_zero_is_zero () =
  let m = lower "int f() { int z = 0; return 5 / z; }" in
  Alcotest.(check int) "x/0 = 0 (documented)" 0 (run_int m "f")

let test_call_builtin () =
  let m = lower "double f() { return sqrt(16.0); }" in
  Alcotest.(check (float 1e-9)) "sqrt" 4.0 (run_float m "f")

(* ------------------------------------------------------------------ *)
(* Arrays and memory                                                    *)
(* ------------------------------------------------------------------ *)

let test_array_store_load () =
  let m = lower "int a[16]; int f() { a[3] = 77; return a[3]; }" in
  Alcotest.(check int) "store/load" 77 (run_int m "f")

let test_multidim_linearize () =
  let m =
    lower
      "int g[4][8]; int f() { g[2][5] = 9; g[0][0] = 1; return g[2][5] * 10 + g[0][0]; }"
  in
  Alcotest.(check int) "2d indexing" 91 (run_int m "f")

let test_multidim_rowmajor () =
  (* g[1][0] and g[0][8] must NOT alias differently: row-major layout means
     g[i][j] = base + i*8 + j, so g[1][0] == element 8 *)
  let m =
    lower "int g[2][8]; int f() { g[1][0] = 5; return g[0][0]; }"
  in
  let st = Ir_interp.init_state m in
  ignore (Ir_interp.run_func st (find_fn m "f") ());
  (match Hashtbl.find st.Ir_interp.mem "g" with
  | Ir_interp.MI a -> Alcotest.(check int64) "element 8" 5L a.(8)
  | _ -> Alcotest.fail "expected int memory")

let test_local_array () =
  let m = lower "int f() { int t[4]; t[0] = 3; t[1] = t[0] * 2; return t[1]; }" in
  Alcotest.(check int) "local array" 6 (run_int m "f")

let test_global_scalar () =
  let m = lower "int gcount; int f() { gcount = 5; gcount = gcount + 2; return gcount; }" in
  Alcotest.(check int) "global scalar" 7 (run_int m "f")

let test_deterministic_init () =
  let m = lower "int a[64]; int f() { return a[10]; }" in
  let v1 = run_int ~seed:3 m "f" and v2 = run_int ~seed:3 m "f" in
  let v3 = run_int ~seed:4 m "f" in
  Alcotest.(check int) "same seed same data" v1 v2;
  Alcotest.(check bool) "init values are small" true (v1 >= 0 && v1 < 256);
  ignore v3

let test_oob_traps () =
  let m = lower "int a[4]; int f() { return a[9]; }" in
  match run_int m "f" with
  | exception Ir_interp.Trap _ -> ()
  | _ -> Alcotest.fail "expected out-of-bounds trap"

(* ------------------------------------------------------------------ *)
(* Control flow                                                         *)
(* ------------------------------------------------------------------ *)

let test_if_else () =
  let m =
    lower "int f() { int x = 3; if (x > 10) return 1; else return 2; }"
  in
  Alcotest.(check int) "else branch" 2 (run_int m "f")

let test_counted_loop () =
  let m = lower "int f() { int s = 0; int i; for (i = 0; i < 10; i++) s += i; return s; }" in
  Alcotest.(check int) "sum 0..9" 45 (run_int m "f")

let test_counted_loop_canonical () =
  let m = lower "int f() { int s = 0; int i; for (i = 0; i < 10; i++) s += i; return s; }" in
  let fn = find_fn m "f" in
  Alcotest.(check int) "one counted loop" 1 (List.length (Ir.func_loops fn))

let test_loop_step2 () =
  let m = lower "int f() { int s = 0; int i; for (i = 0; i < 10; i += 2) s += i; return s; }" in
  Alcotest.(check int) "sum evens" 20 (run_int m "f")

let test_loop_downward () =
  let m = lower "int f() { int s = 0; int i; for (i = 9; i >= 0; i--) s += i; return s; }" in
  Alcotest.(check int) "downward" 45 (run_int m "f")

let test_loop_decl_induction () =
  let m = lower "int f() { int s = 0; for (int i = 1; i <= 5; i++) s += i; return s; }" in
  Alcotest.(check int) "decl induction" 15 (run_int m "f")

let test_nested_loops () =
  let m =
    lower
      "int f() { int s = 0; int i; int j;\n\
       for (i = 0; i < 4; i++) for (j = 0; j < 4; j++) s += i * j;\n\
       return s; }"
  in
  Alcotest.(check int) "nested" 36 (run_int m "f")

let test_while_loop () =
  let m = lower "int f() { int i = 0; int s = 0; while (i < 5) { s += i; i++; } return s; }" in
  Alcotest.(check int) "while" 10 (run_int m "f")

let test_break () =
  let m =
    lower
      "int f() { int s = 0; int i; for (i = 0; i < 100; i++) { if (i == 5) break; s += i; } return s; }"
  in
  Alcotest.(check int) "break at 5" 10 (run_int m "f")

let test_continue () =
  let m =
    lower
      "int f() { int s = 0; int i; for (i = 0; i < 6; i++) { if (i % 2) continue; s += i; } return s; }"
  in
  Alcotest.(check int) "skip odds" 6 (run_int m "f")

let test_noncanonical_becomes_while () =
  (* bound mutated inside the body -> must not be canonicalized *)
  let m =
    lower
      "int f() { int n = 10; int s = 0; int i;\n\
       for (i = 0; i < n; i++) { s += 1; if (s == 3) n = 5; }\n\
       return s; }"
  in
  let fn = find_fn m "f" in
  Alcotest.(check int) "no counted loops" 0 (List.length (Ir.func_loops fn));
  Alcotest.(check int) "semantics preserved" 5 (run_int m "f")

let test_symbolic_bound () =
  let m =
    lower ~bindings:[ ("N", 8) ]
      "int a[N]; int f() { int s = 0; int i; for (i = 0; i < N; i++) { a[i] = i; s += a[i]; } return s; }"
  in
  Alcotest.(check int) "sum with binding" 28 (run_int m "f")

(* ------------------------------------------------------------------ *)
(* Paper examples execute end to end                                    *)
(* ------------------------------------------------------------------ *)

let test_paper_example1_runs () =
  let src =
    "int assign1[1024]; short short_a[1024];\n\
     int f() { int i;\n\
     for (i = 0; i < 1023; i+=2) { assign1[i] = (int) short_a[i]; assign1[i+1] = (int) short_a[i+1]; }\n\
     return assign1[100]; }"
  in
  let m = lower src in
  let v = run_int m "f" in
  Alcotest.(check bool) "copied value in range" true (v >= -32768 && v < 32768)

let test_paper_example4_gemm () =
  let src =
    "float A[8][8]; float B[8][8]; float C[8][8];\n\
     float f(float alpha) { int i; int j; int k;\n\
     for (i = 0; i < 8; i++){ for (j = 0; j < 8; j++){ float sum = 0;\n\
     for (k = 0; k < 8; k++) { sum += alpha*A[i][k] * B[k][j]; } C[i][j] = sum; } }\n\
     return C[3][4]; }"
  in
  let m = lower src in
  let fn = find_fn m "f" in
  Alcotest.(check int) "three loops" 3 (List.length (Ir.func_loops fn));
  Alcotest.(check int) "one innermost" 1 (List.length (Ir.innermost_loops fn));
  let v = run_float m "f" in
  Alcotest.(check bool) "gemm produced a finite value" true (Float.is_finite v)

(* ------------------------------------------------------------------ *)
(* Vector instruction semantics (hand-built IR)                         *)
(* ------------------------------------------------------------------ *)

let test_vector_ops_semantics () =
  (* build: load <4 x i32> a[0], add splat(10), store to b *)
  let m = lower "int a[8]; int b[8]; int f() { return 0; }" in
  let fn = find_fn m "f" in
  let vty = Ir.Vec (4, Ir.I32) in
  let rv = Ir.fresh_reg fn vty in
  let rs = Ir.fresh_reg fn vty in
  let radd = Ir.fresh_reg fn vty in
  let body =
    [ Ir.Block
        [ Ir.Def (rv, Ir.Load (vty, { Ir.base = "a"; index = Ir.IConst 0L;
                                      stride = 1; mask = None }));
          Ir.Def (rs, Ir.Splat (vty, Ir.IConst 10L));
          Ir.Def (radd, Ir.IBin (Ir.Add, vty, Ir.Reg rv, Ir.Reg rs));
          Ir.Store (vty, { Ir.base = "b"; index = Ir.IConst 0L; stride = 1;
                           mask = None }, Ir.Reg radd) ];
      Ir.Return None ]
  in
  fn.Ir.fn_body <- body;
  let st = Ir_interp.init_state m in
  ignore (Ir_interp.run_func st fn ());
  match (Hashtbl.find st.Ir_interp.mem "a", Hashtbl.find st.Ir_interp.mem "b") with
  | Ir_interp.MI a, Ir_interp.MI b ->
      for k = 0 to 3 do
        Alcotest.(check int64) (Printf.sprintf "lane %d" k)
          (Int64.add a.(k) 10L) b.(k)
      done
  | _ -> Alcotest.fail "expected int arrays"

let test_masked_store () =
  let m = lower "int a[8]; int f() { return 0; }" in
  let fn = find_fn m "f" in
  let vty = Ir.Vec (4, Ir.I32) in
  let mask = Ir.fresh_reg fn (Ir.Vec (4, Ir.I1)) in
  let idx = Ir.fresh_reg fn (Ir.Vec (4, Ir.I32)) in
  let body =
    [ Ir.Block
        [ (* mask = lanes < 2, i.e. [1;1;0;0] *)
          Ir.Def (idx, Ir.Stride (Ir.Vec (4, Ir.I32), Ir.IConst 0L, 1));
          Ir.Def (mask, Ir.ICmp (Ir.CLt, Ir.Vec (4, Ir.I32), Ir.Reg idx, Ir.IConst 2L));
          Ir.Store (vty, { Ir.base = "a"; index = Ir.IConst 0L; stride = 1;
                           mask = Some (Ir.Reg mask) }, Ir.IConst 999L) ];
      Ir.Return None ]
  in
  fn.Ir.fn_body <- body;
  let st = Ir_interp.init_state m in
  let before =
    match Hashtbl.find st.Ir_interp.mem "a" with
    | Ir_interp.MI a -> Array.copy a
    | _ -> Alcotest.fail "int array"
  in
  ignore (Ir_interp.run_func st fn ());
  (match Hashtbl.find st.Ir_interp.mem "a" with
  | Ir_interp.MI a ->
      Alcotest.(check int64) "lane0 written" 999L a.(0);
      Alcotest.(check int64) "lane1 written" 999L a.(1);
      Alcotest.(check int64) "lane2 preserved" before.(2) a.(2);
      Alcotest.(check int64) "lane3 preserved" before.(3) a.(3)
  | _ -> Alcotest.fail "int array")

let test_strided_load () =
  let m = lower "int a[16]; int f() { return 0; }" in
  let fn = find_fn m "f" in
  let vty = Ir.Vec (4, Ir.I32) in
  let rv = Ir.fresh_reg fn vty in
  fn.Ir.fn_body <-
    [ Ir.Block
        [ Ir.Def (rv, Ir.Load (vty, { Ir.base = "a"; index = Ir.IConst 1L;
                                      stride = 3; mask = None })) ];
      Ir.Return (Some ([], Ir.Reg rv)) ];
  let st = Ir_interp.init_state m in
  (match (Ir_interp.run_func st fn (), Hashtbl.find st.Ir_interp.mem "a") with
  | Some (Ir_interp.VVI v), Ir_interp.MI a ->
      Alcotest.(check int64) "lane0=a[1]" a.(1) v.(0);
      Alcotest.(check int64) "lane1=a[4]" a.(4) v.(1);
      Alcotest.(check int64) "lane2=a[7]" a.(7) v.(2);
      Alcotest.(check int64) "lane3=a[10]" a.(10) v.(3)
  | _ -> Alcotest.fail "expected vector result")

let test_reduce () =
  let m = lower "int f() { return 0; }" in
  let fn = find_fn m "f" in
  let v = Ir.fresh_reg fn (Ir.Vec (4, Ir.I32)) in
  let r = Ir.fresh_reg fn (Ir.Scalar Ir.I32) in
  fn.Ir.fn_body <-
    [ Ir.Block
        [ Ir.Def (v, Ir.Stride (Ir.Vec (4, Ir.I32), Ir.IConst 5L, 2));
          (* lanes 5,7,9,11 *)
          Ir.Def (r, Ir.Reduce (Ir.RAdd, Ir.I32, Ir.Reg v)) ];
      Ir.Return (Some ([], Ir.Reg r)) ];
  Alcotest.(check int) "5+7+9+11" 32 (run_int m "f")

(* ------------------------------------------------------------------ *)
(* Observer / step accounting                                           *)
(* ------------------------------------------------------------------ *)

let test_observer_counts () =
  let m = lower "int f() { int s = 0; int i; for (i = 0; i < 4; i++) s += 1; return s; }" in
  let count = ref 0 in
  let st = Ir_interp.init_state ~observer:(fun _ -> incr count) m in
  ignore (Ir_interp.run_func st (find_fn m "f") ());
  Alcotest.(check bool) "instructions observed" true (!count > 8)

let test_step_budget () =
  let m = lower "int f() { int i = 0; while (1) { i++; } return i; }" in
  let st = Ir_interp.init_state ~max_steps:1000 m in
  match Ir_interp.run_func st (find_fn m "f") () with
  | exception Ir_interp.Trap _ -> ()
  | _ -> Alcotest.fail "expected step budget trap"

(* ------------------------------------------------------------------ *)
(* QCheck: random scalar programs round-trip deterministically          *)
(* ------------------------------------------------------------------ *)

(* A tiny generator of straight-line integer programs; the property is that
   the interpreter is deterministic and pure across runs. *)
let gen_prog : string QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    let* n = int_range 1 6 in
    let* ops =
      list_repeat n
        (oneofl
           [ "s += i;"; "s -= 2*i;"; "s += i * i;"; "s ^= i;"; "s += i << 1;";
             "a[i % 16] += i;"; "s += a[i % 16];"; "s = s > 100 ? s - 50 : s + 3;" ])
    in
    let* bound = int_range 1 40 in
    return
      (Printf.sprintf
         "int a[16]; int f() { int s = 0; int i; for (i = 0; i < %d; i++) { %s } return s; }"
         bound (String.concat " " ops))
  in
  QCheck.make gen ~print:(fun s -> s)

let prop_interp_deterministic =
  QCheck.Test.make ~name:"interpreter is deterministic" ~count:100 gen_prog
    (fun src ->
      let m1 = lower src and m2 = lower src in
      run_int m1 "f" = run_int m2 "f")

let prop_lowered_loops_execute =
  QCheck.Test.make ~name:"generated loops lower to counted loops" ~count:100
    gen_prog (fun src ->
      let m = lower src in
      let fn = find_fn m "f" in
      List.length (Ir.func_loops fn) = 1)

(* ------------------------------------------------------------------ *)
(* QCheck: copy_modul is a deep copy w.r.t. every transform             *)
(* ------------------------------------------------------------------ *)

(* Vectorizable loop bodies (unit-stride array traffic), so the planner
   really rewrites the copy: widened loads/stores, interleaving, epilogue
   loops, fresh registers — everything that would corrupt the original if
   any mutable state were shared. *)
let gen_vec_prog : string QCheck.arbitrary =
  let open QCheck.Gen in
  let gen =
    let* n = int_range 1 4 in
    let* ops =
      list_repeat n
        (oneofl
           [ "a[i] = b[i] + c[i];"; "a[i] = 2 * b[i] - c[i];";
             "s += a[i] * b[i];"; "b[i] = a[i] + 3;"; "c[i] = a[i] ^ b[i];" ])
    in
    let* bound = int_range 3 64 in
    return
      (Printf.sprintf
         "int a[64]; int b[64]; int c[64]; int f() { int s = 0; int i; for \
          (i = 0; i < %d; i++) { %s } return s; }"
         bound (String.concat " " ops))
  in
  QCheck.make gen ~print:(fun s -> s)

(* the full set of passes a shared-artifact sweep runs on each copy *)
let transform_copy ?(vf = 4) ?(if_ = 2) (c : Ir.modul) : unit =
  ignore (Vectorizer.Licm.run_modul c);
  ignore (Vectorizer.Cse.run_modul c);
  ignore (Vectorizer.Licm.run_modul c);
  let preps = Vectorizer.Planner.prepare_modul c in
  ignore
    (Vectorizer.Planner.run_prepared
       ~plan:(Some { Vectorizer.Transform.vf; if_ }) c preps);
  ignore (Vectorizer.Licm.run_modul c)

let prop_copy_isolates_transforms =
  QCheck.Test.make ~name:"copy_modul isolates transforms from the original"
    ~count:60 gen_vec_prog (fun src ->
      let m = lower src in
      let before = Ir.modul_to_string m in
      let c = Ir.copy_modul m in
      transform_copy c;
      (* the copy really changed (otherwise this property is vacuous) and
         the original prints identically, register types included *)
      Ir.modul_to_string c <> before && Ir.modul_to_string m = before)

let prop_copy_differential_interp =
  QCheck.Test.make
    ~name:"transformed copy and untouched original agree under Ir_interp"
    ~count:60 gen_vec_prog (fun src ->
      let m = lower src in
      let r0 = run_int m "f" in
      let c = Ir.copy_modul m in
      transform_copy c;
      (* vectorized copy computes the same value; the original still runs
         and still computes it (its semantics were not corrupted) *)
      run_int c "f" = r0 && run_int m "f" = r0)

let prop_copy_independent_plans =
  QCheck.Test.make
    ~name:"two copies transformed with different plans do not interfere"
    ~count:40 gen_vec_prog (fun src ->
      let m = lower src in
      let r0 = run_int m "f" in
      let c1 = Ir.copy_modul m and c2 = Ir.copy_modul m in
      transform_copy ~vf:8 ~if_:1 c1;
      transform_copy ~vf:2 ~if_:4 c2;
      run_int c1 "f" = r0 && run_int c2 "f" = r0
      && run_int m "f" = r0)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_interp_deterministic; prop_lowered_loops_execute;
      prop_copy_isolates_transforms; prop_copy_differential_interp;
      prop_copy_independent_plans ]

let suite =
  [
    ( "ir.expr",
      [
        Alcotest.test_case "return constant" `Quick test_return_constant;
        Alcotest.test_case "arithmetic" `Quick test_arith;
        Alcotest.test_case "precedence semantics" `Quick test_precedence_semantics;
        Alcotest.test_case "locals and assignment" `Quick test_locals_and_assign;
        Alcotest.test_case "ternary select" `Quick test_ternary;
        Alcotest.test_case "comparisons yield 0/1" `Quick
          test_comparison_produces_01;
        Alcotest.test_case "logical ops" `Quick test_logical_ops;
        Alcotest.test_case "bitwise ops" `Quick test_bitwise;
        Alcotest.test_case "shift and rem" `Quick test_shifts_and_rem;
        Alcotest.test_case "post-increment value" `Quick test_postinc_value;
        Alcotest.test_case "pre-increment value" `Quick test_preinc_value;
        Alcotest.test_case "char wraps" `Quick test_char_wrapping;
        Alcotest.test_case "short wraps" `Quick test_short_wrapping;
        Alcotest.test_case "float arithmetic" `Quick test_float_arith;
        Alcotest.test_case "float to int" `Quick test_int_float_conversion;
        Alcotest.test_case "f32 rounding" `Quick test_f32_rounding;
        Alcotest.test_case "div by zero" `Quick test_division_by_zero_is_zero;
        Alcotest.test_case "builtin call" `Quick test_call_builtin;
      ] );
    ( "ir.memory",
      [
        Alcotest.test_case "array store/load" `Quick test_array_store_load;
        Alcotest.test_case "multidim linearization" `Quick test_multidim_linearize;
        Alcotest.test_case "row-major layout" `Quick test_multidim_rowmajor;
        Alcotest.test_case "local array" `Quick test_local_array;
        Alcotest.test_case "global scalar" `Quick test_global_scalar;
        Alcotest.test_case "deterministic init" `Quick test_deterministic_init;
        Alcotest.test_case "out-of-bounds traps" `Quick test_oob_traps;
      ] );
    ( "ir.control",
      [
        Alcotest.test_case "if/else" `Quick test_if_else;
        Alcotest.test_case "counted loop" `Quick test_counted_loop;
        Alcotest.test_case "loop canonicalized" `Quick test_counted_loop_canonical;
        Alcotest.test_case "step 2" `Quick test_loop_step2;
        Alcotest.test_case "downward loop" `Quick test_loop_downward;
        Alcotest.test_case "decl induction" `Quick test_loop_decl_induction;
        Alcotest.test_case "nested loops" `Quick test_nested_loops;
        Alcotest.test_case "while loop" `Quick test_while_loop;
        Alcotest.test_case "break" `Quick test_break;
        Alcotest.test_case "continue" `Quick test_continue;
        Alcotest.test_case "non-canonical falls back" `Quick
          test_noncanonical_becomes_while;
        Alcotest.test_case "symbolic bound" `Quick test_symbolic_bound;
      ] );
    ( "ir.paper",
      [
        Alcotest.test_case "example1 runs" `Quick test_paper_example1_runs;
        Alcotest.test_case "example4 gemm" `Quick test_paper_example4_gemm;
      ] );
    ( "ir.vector",
      [
        Alcotest.test_case "vector add" `Quick test_vector_ops_semantics;
        Alcotest.test_case "masked store" `Quick test_masked_store;
        Alcotest.test_case "strided load" `Quick test_strided_load;
        Alcotest.test_case "horizontal reduce" `Quick test_reduce;
      ] );
    ( "ir.interp",
      [
        Alcotest.test_case "observer counts" `Quick test_observer_counts;
        Alcotest.test_case "step budget" `Quick test_step_budget;
      ]
      @ qcheck_tests );
  ]
