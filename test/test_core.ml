(* Tests for the end-to-end framework: extractor, injector, pipeline,
   reward oracle. *)

let simple_src =
  "int a[256]; int b[256];\n\
   int kernel() {\n\
  \  int i;\n\
  \  for (i = 0; i < 256; i++) a[i] = b[i] + 1;\n\
  \  return a[0];\n\
   }\n"

let nested_src =
  "int g[32][32];\n\
   int kernel() {\n\
  \  int i;\n\
  \  int j;\n\
  \  for (i = 0; i < 32; i++) {\n\
  \    for (j = 0; j < 32; j++) g[i][j] = i + j;\n\
  \  }\n\
  \  return g[1][2];\n\
   }\n"

let two_loops_src =
  "int a[128]; int b[128]; int c[128];\n\
   int kernel() {\n\
  \  int i;\n\
  \  int j;\n\
  \  for (i = 0; i < 128; i++) a[i] = b[i];\n\
  \  for (j = 0; j < 128; j++) c[j] = a[j] * 2;\n\
  \  return c[64];\n\
   }\n"

let prog name src = Dataset.Program.make ~family:"test" name src

(* ------------------------------------------------------------------ *)
(* Extractor                                                            *)
(* ------------------------------------------------------------------ *)

let test_extract_simple () =
  let sites = Neurovec.Extractor.extract_source simple_src in
  Alcotest.(check int) "one loop" 1 (List.length sites)

let test_extract_two () =
  let sites = Neurovec.Extractor.extract_source two_loops_src in
  Alcotest.(check (list int)) "ordinals" [ 0; 1 ]
    (List.map (fun s -> s.Neurovec.Extractor.ordinal) sites)

let test_extract_nested_context_is_outer () =
  match Neurovec.Extractor.extract_source nested_src with
  | [ site ] -> (
      (* the context must be the *outer* For statement *)
      match site.Neurovec.Extractor.context with
      | Minic.Ast.For f ->
          Alcotest.(check bool) "outer loop contains a for" true
            (Neurovec.Extractor.has_inner_for f.Minic.Ast.body)
      | _ -> Alcotest.fail "context is not a for loop")
  | _ -> Alcotest.fail "expected exactly one innermost site"

let test_extract_no_loops () =
  let sites = Neurovec.Extractor.extract_source "int f() { return 1; }" in
  Alcotest.(check int) "none" 0 (List.length sites);
  let stmt =
    Neurovec.Extractor.embedding_stmt
      (Minic.Parser.parse_string "int f() { return 1; }")
  in
  Alcotest.(check bool) "fallback stmt" true (stmt <> Minic.Ast.Empty)

(* ------------------------------------------------------------------ *)
(* Injector                                                             *)
(* ------------------------------------------------------------------ *)

let test_inject_visible_to_parser () =
  let out = Neurovec.Injector.inject_all simple_src ~vf:8 ~if_:4 in
  Alcotest.(check bool) "pragma text present" true
    (let needle = "vectorize_width(8) interleave_count(4)" in
     let n = String.length needle and l = String.length out in
     let found = ref false in
     for i = 0 to l - n do
       if String.sub out i n = needle then found := true
     done;
     !found);
  (* and it round-trips through the parser onto the loop *)
  match Neurovec.Extractor.extract_source out with
  | [ site ] -> (
      match site.Neurovec.Extractor.innermost.Minic.Ast.pragma with
      | Some p ->
          Alcotest.(check (option int)) "vf" (Some 8) p.Minic.Ast.vectorize_width
      | None -> Alcotest.fail "pragma lost")
  | _ -> Alcotest.fail "loop lost"

let test_inject_innermost_of_nest () =
  let out = Neurovec.Injector.inject_all nested_src ~vf:4 ~if_:2 in
  let prog = Minic.Parser.parse_string out in
  let with_pragma = ref 0 and total = ref 0 in
  Minic.Ast.iter_program_stmts
    (fun s ->
      match s with
      | Minic.Ast.For f ->
          incr total;
          if f.Minic.Ast.pragma <> None then incr with_pragma
      | _ -> ())
    prog;
  Alcotest.(check int) "two loops" 2 !total;
  Alcotest.(check int) "only the innermost got the pragma" 1 !with_pragma

let test_inject_per_loop_decisions () =
  let decisions =
    [ (0, Neurovec.Injector.pragma_of ~vf:2 ~if_:1);
      (1, Neurovec.Injector.pragma_of ~vf:16 ~if_:4) ]
  in
  let out =
    Neurovec.Injector.inject_source ~clear_others:true two_loops_src ~decisions
  in
  match Neurovec.Extractor.extract_source out with
  | [ s0; s1 ] ->
      let vf s =
        match s.Neurovec.Extractor.innermost.Minic.Ast.pragma with
        | Some p -> p.Minic.Ast.vectorize_width
        | None -> None
      in
      Alcotest.(check (option int)) "loop 0" (Some 2) (vf s0);
      Alcotest.(check (option int)) "loop 1" (Some 16) (vf s1)
  | _ -> Alcotest.fail "loops lost"

let test_inject_clear_others () =
  let with_pragma = Neurovec.Injector.inject_all simple_src ~vf:8 ~if_:4 in
  let cleared =
    Neurovec.Injector.inject_source ~clear_others:true with_pragma ~decisions:[]
  in
  match Neurovec.Extractor.extract_source cleared with
  | [ site ] ->
      Alcotest.(check bool) "pragma removed" true
        (site.Neurovec.Extractor.innermost.Minic.Ast.pragma = None)
  | _ -> Alcotest.fail "loop lost"

(* A program mixing sibling loops, a triple nest with a trailing sibling
   inside the outer body, and a loop under an [if] — the shapes where an
   injector/extractor ordinal mismatch would silently re-target pragmas. *)
let mixed_loops_src =
  "int a[64]; int b[64]; int c[64]; int g[8][8][8];\n\
   int kernel() {\n\
  \  int i;\n\
  \  int j;\n\
  \  int k;\n\
  \  for (i = 0; i < 64; i++) a[i] = b[i];\n\
  \  for (i = 0; i < 8; i++) {\n\
  \    for (j = 0; j < 8; j++) {\n\
  \      for (k = 0; k < 8; k++) g[i][j][k] = i + j + k;\n\
  \    }\n\
  \    for (k = 0; k < 8; k++) c[k] = c[k] + 1;\n\
  \  }\n\
  \  if (a[0] < 100) {\n\
  \    for (j = 0; j < 64; j++) b[j] = a[j] * 2;\n\
  \  }\n\
  \  return a[0] + c[0] + g[1][2][3] + b[5];\n\
   }\n"

let test_inject_ast_ordinals_agree_with_extractor () =
  let ast = Minic.Parser.parse_string mixed_loops_src in
  let n = List.length (Neurovec.Extractor.extract ast) in
  Alcotest.(check int) "four innermost loops" 4 n;
  (* inject a unique pragma at each ordinal and check it lands exactly on
     the extractor's site of the same ordinal *)
  for target = 0 to n - 1 do
    let vf = 1 lsl (1 + (target mod 6)) in
    let inj =
      Neurovec.Injector.inject_ast ~clear_others:true ast
        ~decisions:[ (target, Neurovec.Injector.pragma_of ~vf ~if_:2) ]
    in
    List.iteri
      (fun i site ->
        let got =
          match site.Neurovec.Extractor.innermost.Minic.Ast.pragma with
          | Some p -> p.Minic.Ast.vectorize_width
          | None -> None
        in
        let expected = if i = target then Some vf else None in
        Alcotest.(check (option int))
          (Printf.sprintf "site %d when targeting %d" i target)
          expected got)
      (Neurovec.Extractor.extract inj)
  done

(* ------------------------------------------------------------------ *)
(* Pipeline                                                             *)
(* ------------------------------------------------------------------ *)

let test_pipeline_baseline_vs_pragma () =
  let p = prog "t" simple_src in
  let base = Neurovec.Pipeline.run_baseline p in
  let wide = Neurovec.Pipeline.run_with_pragma p ~vf:16 ~if_:1 in
  Alcotest.(check bool) "times positive" true
    (base.Neurovec.Pipeline.exec_seconds > 0.0
    && wide.Neurovec.Pipeline.exec_seconds > 0.0);
  Alcotest.(check bool) "pragma changes the plan" true
    (base.Neurovec.Pipeline.exec_seconds
    <> wide.Neurovec.Pipeline.exec_seconds)

let test_pipeline_compile_time_grows () =
  let p = prog "t" simple_src in
  let small = Neurovec.Pipeline.run_with_pragma p ~vf:2 ~if_:1 in
  let huge = Neurovec.Pipeline.run_with_pragma p ~vf:64 ~if_:16 in
  Alcotest.(check bool) "compile time grows with VF*IF" true
    (huge.Neurovec.Pipeline.compile_seconds
     > 2.0 *. small.Neurovec.Pipeline.compile_seconds)

let test_pipeline_deterministic () =
  let p = prog "t" simple_src in
  let a = Neurovec.Pipeline.run_baseline p in
  let b = Neurovec.Pipeline.run_baseline p in
  Alcotest.(check (float 0.0)) "deterministic seconds"
    a.Neurovec.Pipeline.exec_seconds b.Neurovec.Pipeline.exec_seconds

let test_pipeline_missing_kernel () =
  let p = { (prog "t" simple_src) with Dataset.Program.p_kernel = "nope" } in
  match Neurovec.Pipeline.run_baseline p with
  | exception Neurovec.Pipeline.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected Compile_error"

(* Regression: malformed programs used to escape run_baseline /
   run_with_pragma / run_with_decisions as raw Minic.Parser.Error because
   those entry points parsed outside run's try/with. *)
let test_pipeline_wraps_parse_errors () =
  let p = prog "bad" "int kernel( { return 0; }" in
  let expect_compile_error label f =
    match f () with
    | exception Neurovec.Pipeline.Compile_error _ -> ()
    | exception e ->
        Alcotest.failf "%s: expected Compile_error, got %s" label
          (Printexc.to_string e)
    | _ -> Alcotest.failf "%s: expected Compile_error" label
  in
  expect_compile_error "run" (fun () -> Neurovec.Pipeline.run p);
  expect_compile_error "run_baseline" (fun () ->
      Neurovec.Pipeline.run_baseline p);
  expect_compile_error "run_with_pragma" (fun () ->
      Neurovec.Pipeline.run_with_pragma p ~vf:4 ~if_:2);
  expect_compile_error "run_with_decisions" (fun () ->
      Neurovec.Pipeline.run_with_decisions p ~decisions:[])

let test_pipeline_wraps_sema_errors () =
  (* unbound symbolic array bound: a semantic, not syntactic, failure *)
  let p =
    prog "unbound" "int a[N]; int kernel() { return a[0]; }"
  in
  let check label f =
    match f () with
    | exception Neurovec.Pipeline.Compile_error _ -> ()
    | exception e ->
        Alcotest.failf "%s: expected Compile_error, got %s" label
          (Printexc.to_string e)
    | _ -> Alcotest.failf "%s: expected Compile_error" label
  in
  check "run_baseline" (fun () -> Neurovec.Pipeline.run_baseline p);
  check "run_with_pragma" (fun () ->
      Neurovec.Pipeline.run_with_pragma p ~vf:4 ~if_:2)

(* The front-end artifact cache must not change results: a cold and a warm
   evaluation of the same (program, pragma) point are identical. *)
let test_frontend_cache_identical_results () =
  let p = prog "t" simple_src in
  Neurovec.Frontend.clear ();
  let cold = Neurovec.Pipeline.run_with_pragma p ~vf:8 ~if_:2 in
  let warm = Neurovec.Pipeline.run_with_pragma p ~vf:8 ~if_:2 in
  Alcotest.(check (float 0.0)) "exec" cold.Neurovec.Pipeline.exec_seconds
    warm.Neurovec.Pipeline.exec_seconds;
  Alcotest.(check (float 0.0)) "compile" cold.Neurovec.Pipeline.compile_seconds
    warm.Neurovec.Pipeline.compile_seconds;
  Alcotest.(check (float 0.0)) "cycles" cold.Neurovec.Pipeline.exec_cycles
    warm.Neurovec.Pipeline.exec_cycles

(* ------------------------------------------------------------------ *)
(* Reward oracle                                                        *)
(* ------------------------------------------------------------------ *)

let test_reward_sign_convention () =
  let oracle = Neurovec.Reward.create [| prog "t" simple_src |] in
  (* scalar pragma (VF=1, IF=1) should not beat the baseline *)
  let r_scalar = Neurovec.Reward.reward oracle 0 { Rl.Spaces.vf_idx = 0; if_idx = 0 } in
  Alcotest.(check bool) "scalar <= baseline" true (r_scalar <= 0.0);
  (* some action must be >= scalar *)
  let _, r_best = Neurovec.Reward.brute_force oracle 0 in
  Alcotest.(check bool) "best >= scalar" true (r_best >= r_scalar)

let test_reward_cached () =
  let oracle = Neurovec.Reward.create [| prog "t" simple_src |] in
  let a = { Rl.Spaces.vf_idx = 2; if_idx = 1 } in
  ignore (Neurovec.Reward.reward oracle 0 a);
  let evals = oracle.Neurovec.Reward.evaluations in
  ignore (Neurovec.Reward.reward oracle 0 a);
  Alcotest.(check int) "memoized" evals oracle.Neurovec.Reward.evaluations

let big_body_src =
  (* a large loop body: extreme VF x IF blows up the compile-time model *)
  let stmts =
    List.init 24 (fun k ->
        Printf.sprintf "    a[i] = a[i] + b[i] * %d; c[i] = a[i] ^ c[i];" (k + 1))
  in
  Printf.sprintf
    "int a[512]; int b[512]; int c[512];\n\
     int kernel() {\n\
    \  int i;\n\
    \  for (i = 0; i < 512; i++) {\n%s\n  }\n\
    \  return a[0] + c[0];\n\
     }\n"
    (String.concat "\n" stmts)

let test_reward_timeout_penalty () =
  let oracle = Neurovec.Reward.create [| prog "big" big_body_src |] in
  let extreme =
    { Rl.Spaces.vf_idx = Rl.Spaces.n_vf - 1; if_idx = Rl.Spaces.n_if - 1 }
  in
  let r = Neurovec.Reward.reward oracle 0 extreme in
  Alcotest.(check (float 1e-9)) "penalty -9" (-9.0) r

(* Regression: exec_seconds used to detect the compile-timeout penalty by
   comparing the reward against the penalty value, so a genuinely terrible
   action (real reward <= penalty) was misreported as a timeout.  With a
   tiny |penalty| and a timeout factor no action can hit, every action's
   time must still satisfy t = t_base * (1 - r). *)
let test_exec_seconds_not_penalty_sentinel () =
  let oracle =
    Neurovec.Reward.create ~timeout_factor:1e9 ~penalty:(-0.0001)
      [| prog "t" simple_src |]
  in
  let t_base, _ = Neurovec.Reward.baseline oracle 0 in
  List.iter
    (fun a ->
      let r = Neurovec.Reward.reward oracle 0 a in
      let s = Neurovec.Reward.exec_seconds oracle 0 a in
      Alcotest.(check (float 1e-9)) "t = tb*(1-r)" (t_base *. (1.0 -. r)) s)
    Rl.Spaces.all_actions;
  (* the regression only bites if some real reward is at or below the
     penalty value — make sure the corpus actually exercises that *)
  Alcotest.(check bool) "some real reward <= penalty" true
    (List.exists
       (fun a -> Neurovec.Reward.reward oracle 0 a <= -0.0001)
       Rl.Spaces.all_actions)

let test_exec_seconds_penalized_action () =
  let oracle = Neurovec.Reward.create [| prog "big" big_body_src |] in
  let extreme =
    { Rl.Spaces.vf_idx = Rl.Spaces.n_vf - 1; if_idx = Rl.Spaces.n_if - 1 }
  in
  Alcotest.(check (float 1e-9)) "penalty reward" (-9.0)
    (Neurovec.Reward.reward oracle 0 extreme);
  let t_base, _ = Neurovec.Reward.baseline oracle 0 in
  Alcotest.(check (float 1e-9)) "timeout time = 10x baseline"
    (10.0 *. t_base)
    (Neurovec.Reward.exec_seconds oracle 0 extreme)

(* One parse + one sema per distinct program, no matter how many actions
   the oracle evaluates: the acceptance criterion of the front-end cache. *)
let test_brute_force_one_parse_per_program () =
  Neurovec.Frontend.clear ();
  Neurovec.Stats.reset ();
  let programs =
    [| prog "a" simple_src; prog "b" two_loops_src; prog "c" nested_src |]
  in
  let oracle = Neurovec.Reward.create programs in
  Array.iteri (fun i _ -> ignore (Neurovec.Reward.brute_force oracle i)) programs;
  Alcotest.(check int) "3 parses" 3
    (Neurovec.Stats.phase_calls Neurovec.Stats.Parse);
  Alcotest.(check int) "3 sema runs" 3
    (Neurovec.Stats.phase_calls Neurovec.Stats.Sema);
  let s = Neurovec.Stats.snapshot () in
  Alcotest.(check int) "3 front-end misses" 3 s.Neurovec.Stats.frontend_misses;
  (* 36 front-end lookups per program (35 actions + 1 baseline) *)
  Alcotest.(check int) "remaining lookups hit" ((3 * 36) - 3)
    s.Neurovec.Stats.frontend_hits;
  (* every (program, action) point compiled exactly once *)
  Alcotest.(check int) "108 evaluations" (3 * 36)
    oracle.Neurovec.Reward.evaluations

(* The reward cache is content-addressed: two programs with identical
   source (different names) share every entry. *)
let test_reward_cache_content_addressed () =
  let programs = [| prog "x" simple_src; prog "same-as-x" simple_src |] in
  let oracle = Neurovec.Reward.create programs in
  let a = { Rl.Spaces.vf_idx = 2; if_idx = 1 } in
  let r0 = Neurovec.Reward.reward oracle 0 a in
  let evals = oracle.Neurovec.Reward.evaluations in
  let r1 = Neurovec.Reward.reward oracle 1 a in
  Alcotest.(check (float 0.0)) "identical reward" r0 r1;
  Alcotest.(check int) "duplicate program costs no evaluation" evals
    oracle.Neurovec.Reward.evaluations;
  Alcotest.(check bool) "cache hit recorded" true
    (oracle.Neurovec.Reward.hits >= 1)

let test_reward_exec_seconds_consistent () =
  let oracle = Neurovec.Reward.create [| prog "t" simple_src |] in
  let a = { Rl.Spaces.vf_idx = 3; if_idx = 1 } in
  let r = Neurovec.Reward.reward oracle 0 a in
  let t_base, _ = Neurovec.Reward.baseline oracle 0 in
  let t = Neurovec.Reward.exec_seconds oracle 0 a in
  Alcotest.(check (float 1e-9)) "r = (tb - t)/tb" r ((t_base -. t) /. t_base)

(* ------------------------------------------------------------------ *)
(* Framework smoke                                                      *)
(* ------------------------------------------------------------------ *)

let test_framework_smoke () =
  let programs = Dataset.Loopgen.generate ~seed:33 30 in
  let fw = Neurovec.Framework.create ~seed:1 programs in
  Alcotest.(check int) "samples" 30 (Array.length fw.Neurovec.Framework.samples);
  let hist =
    Neurovec.Framework.train fw
      ~hyper:{ Rl.Ppo.default_hyper with batch_size = 100 }
      ~total_steps:300
  in
  Alcotest.(check int) "three updates" 3 (List.length hist);
  (* prediction produces decisions for every loop *)
  let decisions =
    Neurovec.Framework.predict_decisions fw.Neurovec.Framework.agent
      programs.(0)
  in
  Alcotest.(check bool) "decisions nonempty" true (decisions <> [])

let suite =
  [
    ( "core.extractor",
      [
        Alcotest.test_case "simple" `Quick test_extract_simple;
        Alcotest.test_case "two loops" `Quick test_extract_two;
        Alcotest.test_case "nested context is outer" `Quick
          test_extract_nested_context_is_outer;
        Alcotest.test_case "no loops" `Quick test_extract_no_loops;
      ] );
    ( "core.injector",
      [
        Alcotest.test_case "visible to parser" `Quick
          test_inject_visible_to_parser;
        Alcotest.test_case "innermost of nest" `Quick
          test_inject_innermost_of_nest;
        Alcotest.test_case "per-loop decisions" `Quick
          test_inject_per_loop_decisions;
        Alcotest.test_case "clear others" `Quick test_inject_clear_others;
        Alcotest.test_case "ordinals agree with extractor" `Quick
          test_inject_ast_ordinals_agree_with_extractor;
      ] );
    ( "core.pipeline",
      [
        Alcotest.test_case "baseline vs pragma" `Quick
          test_pipeline_baseline_vs_pragma;
        Alcotest.test_case "compile time grows" `Quick
          test_pipeline_compile_time_grows;
        Alcotest.test_case "deterministic" `Quick test_pipeline_deterministic;
        Alcotest.test_case "missing kernel" `Quick test_pipeline_missing_kernel;
        Alcotest.test_case "wraps parse errors" `Quick
          test_pipeline_wraps_parse_errors;
        Alcotest.test_case "wraps sema errors" `Quick
          test_pipeline_wraps_sema_errors;
        Alcotest.test_case "cache preserves results" `Quick
          test_frontend_cache_identical_results;
      ] );
    ( "core.reward",
      [
        Alcotest.test_case "sign convention" `Quick test_reward_sign_convention;
        Alcotest.test_case "memoized" `Quick test_reward_cached;
        Alcotest.test_case "timeout penalty" `Quick test_reward_timeout_penalty;
        Alcotest.test_case "exec seconds consistent" `Quick
          test_reward_exec_seconds_consistent;
        Alcotest.test_case "exec seconds without penalty sentinel" `Quick
          test_exec_seconds_not_penalty_sentinel;
        Alcotest.test_case "exec seconds of penalized action" `Quick
          test_exec_seconds_penalized_action;
        Alcotest.test_case "brute force: one parse per program" `Quick
          test_brute_force_one_parse_per_program;
        Alcotest.test_case "content-addressed cache" `Quick
          test_reward_cache_content_addressed;
      ] );
    ( "core.framework",
      [ Alcotest.test_case "end-to-end smoke" `Slow test_framework_smoke ] );
  ]
