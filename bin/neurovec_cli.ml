(* The neurovec command-line driver.

   Subcommands:
     compile  — compile a C file through the pipeline and report times
     sweep    — exhaustive (VF, IF) grid for a C file
     dataset  — generate the synthetic loop corpus to a directory
     train    — train the RL agent and report greedy performance

   Examples:
     dune exec bin/neurovec.exe -- compile examples/dot.c --vf 8 --if 2
     dune exec bin/neurovec.exe -- sweep examples/dot.c
     dune exec bin/neurovec.exe -- dataset --count 100 --out /tmp/loops
     dune exec bin/neurovec.exe -- train --programs 200 --steps 4000 *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let program_of_file ?(kernel = "kernel") path =
  Dataset.Program.make ~kernel ~family:"cli" (Filename.basename path)
    (read_file path)

(** [--jobs N]: evaluation-pool size for the parallel measurement fan-out;
    overrides [NEUROVEC_JOBS].  1 forces the exact serial path. *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ]
        ~doc:
          "Parallel evaluation domains (overrides NEUROVEC_JOBS; 1 = \
           serial). Results are bit-identical at any value.")

let apply_jobs = Option.iter Neurovec.Parpool.set_jobs

(** [--deadline S]: per-evaluation watchdog budget (overrides
    NEUROVEC_DEADLINE). *)
let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ]
        ~doc:
          "Watchdog deadline in seconds per evaluation (overrides \
           NEUROVEC_DEADLINE). Stalled evaluations past the deadline are \
           cancelled and penalized as hung.")

(** [--max-retries N]: retry budget for transient faults (overrides
    NEUROVEC_MAX_RETRIES). *)
let max_retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-retries" ]
        ~doc:
          "Retry budget for transient evaluation faults (overrides \
           NEUROVEC_MAX_RETRIES). Retries are deterministic: attempt k of \
           a given measurement fails or succeeds identically at any --jobs.")

let apply_supervision deadline max_retries =
  Option.iter Neurovec.Supervisor.set_deadline deadline;
  Option.iter Neurovec.Supervisor.set_max_retries max_retries

(** [--verify]: run the translation validator on every evaluated plan
    (overrides [NEUROVEC_VERIFY]). *)
let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "Validate every evaluated plan against the scalar reference by \
           differential interpretation (also enabled by NEUROVEC_VERIFY=1). \
           A refuted plan quarantines the program as miscompiled, with a \
           minimized counterexample.")

let verify_on flag = flag || Neurovec.Pipeline.verify_of_env ()

(** Report malformed input, corrupt checkpoints and quarantined programs
    as a one-line error (exit 1) instead of cmdliner's uncaught-exception
    banner. *)
let or_compile_error (f : unit -> unit) : unit =
  try f () with
  | Neurovec.Pipeline.Compile_error msg ->
      Printf.eprintf "neurovec: compile error: %s\n" msg;
      exit 1
  | Rl.Checkpoint.Bad_checkpoint msg ->
      Printf.eprintf "neurovec: bad checkpoint: %s\n" msg;
      exit 1
  | Neurovec.Reward.Quarantined (name, why) ->
      Printf.eprintf "neurovec: %s quarantined: %s\n" name why;
      exit 1
  | Neurovec.Supervisor.Hung msg ->
      Printf.eprintf "neurovec: evaluation hung: %s\n" msg;
      exit 1
  | Neurovec.Faults.Transient msg ->
      Printf.eprintf "neurovec: transient failure persisted: %s\n" msg;
      exit 1
  | Verify.Tv.Miscompile msg ->
      Printf.eprintf "neurovec: translation validation refuted the plan: %s\n"
        msg;
      exit 1
  | Rl.Sentinel.Unrecoverable msg ->
      Printf.eprintf
        "neurovec: training unrecoverable: %s (rollback budget exhausted)\n"
        msg;
      exit 1
  | Fsio.Disk_fault { op; path; kind } ->
      Printf.eprintf "neurovec: disk fault: %s writing %s (%s)\n"
        (Fsio.fault_kind_name kind) path op;
      exit 1
  | Sys_error msg ->
      Printf.eprintf "neurovec: %s\n" msg;
      exit 1

(* ---- compile ----------------------------------------------------- *)

let compile_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let vf = Arg.(value & opt (some int) None & info [ "vf" ] ~doc:"Force vectorize_width.") in
  let if_ = Arg.(value & opt (some int) None & info [ "if" ] ~doc:"Force interleave_count.") in
  let polly = Arg.(value & flag & info [ "polly" ] ~doc:"Run the polyhedral pipeline first.") in
  let kernel = Arg.(value & opt string "kernel" & info [ "kernel" ] ~doc:"Function to time.") in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print pipeline phase timings and cache stats.") in
  let run file vf if_ polly kernel stats =
    or_compile_error @@ fun () ->
    let p = program_of_file ~kernel file in
    let options = { Neurovec.Pipeline.default_options with polly } in
    let result =
      match (vf, if_) with
      | Some v, Some i -> Neurovec.Pipeline.run_with_pragma ~options p ~vf:v ~if_:i
      | _ -> Neurovec.Pipeline.run ~options p
    in
    List.iter
      (fun d ->
        Printf.printf "loop %d: VF=%d IF=%d%s%s\n" d.Vectorizer.Planner.d_loop_id
          d.Vectorizer.Planner.d_applied.Vectorizer.Transform.vf
          d.Vectorizer.Planner.d_applied.Vectorizer.Transform.if_
          (match d.Vectorizer.Planner.d_requested with
          | Some p ->
              Printf.sprintf " (pragma requested VF=%d IF=%d)"
                p.Vectorizer.Transform.vf p.Vectorizer.Transform.if_
          | None -> " (baseline cost model)")
          (if d.Vectorizer.Planner.d_legal then ""
           else
             Printf.sprintf " [not vectorizable: %s]"
               (String.concat "; " d.Vectorizer.Planner.d_reasons)))
      result.Neurovec.Pipeline.decisions;
    Printf.printf "compile time: %.3f s (simulated)\n"
      result.Neurovec.Pipeline.compile_seconds;
    Printf.printf "execution:    %.3e s  (%.0f cycles on %s)\n"
      result.Neurovec.Pipeline.exec_seconds result.Neurovec.Pipeline.exec_cycles
      options.Neurovec.Pipeline.target.Machine.Target.name;
    if stats then print_string (Neurovec.Stats.report ())
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a mini-C file and simulate it.")
    Term.(const run $ file $ vf $ if_ $ polly $ kernel $ stats)

(* ---- sweep -------------------------------------------------------- *)

let sweep_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let kernel = Arg.(value & opt string "kernel" & info [ "kernel" ]) in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print pipeline phase timings and cache stats.") in
  let run file kernel stats verify jobs deadline max_retries =
    or_compile_error @@ fun () ->
    apply_jobs jobs;
    apply_supervision deadline max_retries;
    let p = program_of_file ~kernel file in
    let options =
      { Neurovec.Pipeline.default_options with
        faults = Neurovec.Faults.of_env ();
        verify = verify_on verify }
    in
    let base = Neurovec.Pipeline.run_baseline ~options p in
    let t_base = base.Neurovec.Pipeline.exec_seconds in
    (* evaluate the whole grid on the pool, then print in row order *)
    let grid =
      Array.concat
        (Array.to_list
           (Array.map
              (fun vf -> Array.map (fun if_ -> (vf, if_)) Rl.Spaces.if_values)
              Rl.Spaces.vf_values))
    in
    let cells =
      Neurovec.Parpool.map
        (fun (vf, if_) ->
          let r = Neurovec.Pipeline.run_with_pragma ~options p ~vf ~if_ in
          t_base /. r.Neurovec.Pipeline.exec_seconds)
        grid
    in
    Printf.printf "speedup over the baseline cost model:\n%6s" "VF\\IF";
    Array.iter (fun i -> Printf.printf "%8d" i) Rl.Spaces.if_values;
    print_newline ();
    let n_if = Array.length Rl.Spaces.if_values in
    Array.iteri
      (fun row vf ->
        Printf.printf "%6d" vf;
        Array.iteri
          (fun col _ -> Printf.printf "%8.2f" cells.((row * n_if) + col))
          Rl.Spaces.if_values;
        print_newline ())
      Rl.Spaces.vf_values;
    if stats then print_string (Neurovec.Stats.report ())
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Brute-force the (VF, IF) grid for a file.")
    Term.(const run $ file $ kernel $ stats $ verify_arg $ jobs_arg
          $ deadline_arg $ max_retries_arg)

(* ---- dataset ------------------------------------------------------ *)

let dataset_cmd =
  let count = Arg.(value & opt int 100 & info [ "count"; "n" ] ~doc:"Programs to generate.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  let out = Arg.(value & opt (some string) None & info [ "out" ] ~doc:"Directory to write .c files into.") in
  let run count seed out =
    or_compile_error @@ fun () ->
    let corpus = Dataset.Loopgen.generate ~seed count in
    match out with
    | None ->
        Array.iter
          (fun p ->
            Printf.printf "// --- %s (%s)\n%s\n" p.Dataset.Program.p_name
              p.Dataset.Program.p_family p.Dataset.Program.p_source)
          corpus
    | Some dir ->
        Neurovec.Supervisor.mkdir_p dir;
        Array.iter
          (fun p ->
            let path = Filename.concat dir (p.Dataset.Program.p_name ^ ".c") in
            let oc = open_out path in
            output_string oc p.Dataset.Program.p_source;
            close_out oc)
          corpus;
        Printf.printf "wrote %d programs to %s\n" count dir
  in
  Cmd.v (Cmd.info "dataset" ~doc:"Generate the synthetic loop corpus.")
    Term.(const run $ count $ seed $ out)

(* ---- train -------------------------------------------------------- *)

let train_cmd =
  let programs = Arg.(value & opt int 200 & info [ "programs" ] ~doc:"Corpus size.") in
  let steps = Arg.(value & opt int 5000 & info [ "steps" ] ~doc:"Environment steps (cumulative when resuming).") in
  let seed = Arg.(value & opt int 3 & info [ "seed" ]) in
  let batch = Arg.(value & opt int 500 & info [ "batch" ]) in
  let lr = Arg.(value & opt float 5e-4 & info [ "lr" ]) in
  let save = Arg.(value & opt (some string) None & info [ "save" ] ~doc:"Write the trained agent (resumable checkpoint) to FILE.") in
  let ckpt_every = Arg.(value & opt int 0 & info [ "checkpoint-every" ] ~doc:"Also checkpoint to the --save path every N environment steps (crash-safe atomic writes; 0 disables periodic checkpoints).") in
  let keep = Arg.(value & opt int 3 & info [ "keep-checkpoints" ] ~doc:"Known-good checkpoint generations retained next to the --save path — the lineage ring the sentinel rollback restores from.") in
  let resume = Arg.(value & opt (some string) None & info [ "resume" ] ~doc:"Resume training from a checkpoint written by --save, restoring step count, statistics history, optimizer state and rollback count.") in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print pipeline phase timings, cache and fault statistics.") in
  let run programs steps seed batch lr save ckpt_every keep resume stats
      verify jobs deadline max_retries =
    or_compile_error @@ fun () ->
    apply_jobs jobs;
    apply_supervision deadline max_retries;
    Neurovec.Supervisor.install_signal_handlers ();
    let corpus = Dataset.Loopgen.generate ~seed programs in
    (* fault injection / timing noise, if requested via NEUROVEC_FAULTS;
       the disk knobs additionally arm the durable-write fault layer *)
    let faults = Neurovec.Faults.of_env () in
    Neurovec.Faults.install_disk faults;
    let options =
      { Neurovec.Pipeline.default_options with
        faults; verify = verify_on verify }
    in
    (* fail fast, with a one-line typed error, on the two setup mistakes
       that would otherwise surface hundreds of steps in: a --resume file
       that does not exist, and a --save destination we cannot write *)
    (match resume with
    | Some path when not (Sys.file_exists path) ->
        raise
          (Rl.Checkpoint.Bad_checkpoint
             (Printf.sprintf "%s: no such file" path))
    | _ -> ());
    (match save with
    | None -> ()
    | Some path -> (
        Rl.Checkpoint.ensure_dir (Filename.dirname path);
        let probe = path ^ ".probe" in
        match open_out_bin probe with
        | oc ->
            close_out_noerr oc;
            (try Sys.remove probe with Sys_error _ -> ())
        | exception Sys_error msg ->
            raise
              (Sys_error
                 (Printf.sprintf "checkpoint destination not writable: %s"
                    msg))));
    let resumed = Option.map Rl.Checkpoint.load_full resume in
    (* the write-ahead reward journal rides next to the checkpoint: a
       killed run's journal is replayed before the probes, so already
       measured episodes are never re-evaluated on resume *)
    let journal = Option.map (fun p -> p ^ ".journal") save in
    let fw =
      Neurovec.Framework.create
        ?agent:(Option.map fst resumed)
        ?journal ~options ~seed corpus
    in
    let replayed =
      (Neurovec.Stats.snapshot ()).Neurovec.Stats.journal_replayed
    in
    if replayed > 0 then
      Printf.printf "replayed %d journal records from %s\n%!" replayed
        (Option.get journal);
    List.iter
      (fun (name, why) ->
        Printf.eprintf "neurovec: quarantined %s: %s\n%!" name why)
      fw.Neurovec.Framework.skipped;
    (match Option.bind resumed snd with
    | Some st ->
        Printf.printf "resuming at step %d (update %d)\n%!"
          st.Rl.Train_state.ts_steps st.Rl.Train_state.ts_update
    | None ->
        if resume <> None then
          Printf.printf "checkpoint has no training state; starting fresh from its weights\n%!");
    let hyper = { Rl.Ppo.default_hyper with batch_size = batch; lr } in
    ignore
      (Neurovec.Framework.train fw ~hyper ~total_steps:steps
         ?checkpoint_path:save ~checkpoint_every:ckpt_every
         ~keep_checkpoints:keep
         ~sentinel:(Neurovec.Framework.sentinel_of_faults faults)
         ~stop:Neurovec.Supervisor.shutdown_requested
         ?resume:(Option.bind resumed snd)
         ~progress:(fun st ->
           Printf.printf "update %3d  steps %6d  reward_mean %+0.3f  loss %8.3f\n%!"
             st.Rl.Ppo.update st.Rl.Ppo.steps st.Rl.Ppo.reward_mean
             st.Rl.Ppo.loss));
    let rolled =
      (Neurovec.Stats.snapshot ()).Neurovec.Stats.sentinel_rollbacks
    in
    if rolled > 0 then
      Printf.printf
        "self-healed: %d sentinel rollback%s (audit trail: %s)\n%!" rolled
        (if rolled = 1 then "" else "s")
        (match save with
        | Some p -> p ^ ".lineage"
        | None -> "in-memory only, no --save path");
    if Neurovec.Supervisor.shutdown_requested () then begin
      (match save with
      | Some path ->
          Printf.printf
            "interrupted: checkpoint flushed to %s; rerun with --resume %s \
             to continue\n"
            path path
      | None ->
          Printf.printf
            "interrupted: no --save path, training state discarded\n");
      if stats then print_string (Neurovec.Stats.report ())
    end
    else begin
      let greedy =
        Rl.Ppo.evaluate fw.Neurovec.Framework.agent
          ~samples:fw.Neurovec.Framework.samples
          ~reward:(fun i a ->
            Neurovec.Reward.reward fw.Neurovec.Framework.oracle i a)
      in
      Printf.printf "greedy mean reward over the corpus: %+0.3f\n" greedy;
      (match fw.Neurovec.Framework.skipped with
      | [] -> ()
      | skipped ->
          Printf.printf "quarantined programs: %d (excluded from training)\n"
            (List.length skipped));
      (match save with
      | Some path -> Printf.printf "agent saved to %s\n" path
      | None -> ());
      if stats then print_string (Neurovec.Stats.report ())
    end
  in
  Cmd.v (Cmd.info "train" ~doc:"Train the PPO vectorization agent.")
    Term.(const run $ programs $ steps $ seed $ batch $ lr $ save $ ckpt_every
          $ keep $ resume $ stats $ verify_arg $ jobs_arg $ deadline_arg
          $ max_retries_arg)

(* ---- predict ------------------------------------------------------ *)

let predict_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let model = Arg.(required & opt (some file) None & info [ "model" ] ~doc:"Trained agent checkpoint.") in
  let kernel = Arg.(value & opt string "kernel" & info [ "kernel" ]) in
  let run file model kernel =
    or_compile_error @@ fun () ->
    let agent = Rl.Checkpoint.load model in
    let p = program_of_file ~kernel file in
    let decisions = Neurovec.Framework.predict_decisions agent p in
    List.iter
      (fun (ord, pr) ->
        Printf.printf "loop %d: VF=%d IF=%d\n" ord
          (Option.value pr.Minic.Ast.vectorize_width ~default:1)
          (Option.value pr.Minic.Ast.interleave_count ~default:1))
      decisions;
    let base = Neurovec.Pipeline.run_baseline p in
    let rl = Neurovec.Pipeline.run_with_decisions p ~decisions in
    Printf.printf "baseline: %.3e s   RL: %.3e s   speedup %.2fx\n"
      base.Neurovec.Pipeline.exec_seconds rl.Neurovec.Pipeline.exec_seconds
      (base.Neurovec.Pipeline.exec_seconds
      /. rl.Neurovec.Pipeline.exec_seconds);
    print_endline "rewritten source:";
    print_string
      (Neurovec.Injector.inject_source ~clear_others:true
         p.Dataset.Program.p_source ~decisions)
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:"Inject pragmas predicted by a trained agent into a file.")
    Term.(const run $ file $ model $ kernel)

(* ---- serve -------------------------------------------------------- *)

let serve_cmd =
  let model = Arg.(required & opt (some file) None & info [ "model" ] ~doc:"Trained agent checkpoint to serve.") in
  let socket = Arg.(value & opt (some string) None & info [ "socket" ] ~doc:"Unix-domain socket path to listen on; omitted = frames over stdin/stdout.") in
  let store = Arg.(value & opt (some string) None & info [ "store" ] ~doc:"On-disk reply store: a restarted daemon answers warm, bit-identically.") in
  let max_queue = Arg.(value & opt int 128 & info [ "max-queue" ] ~doc:"Bounded request queue; beyond it requests are shed with a structured overloaded reply.") in
  let max_batch = Arg.(value & opt int 32 & info [ "max-batch" ] ~doc:"Most requests folded into one batched forward pass.") in
  let report_every = Arg.(value & opt float 0.0 & info [ "report-every" ] ~doc:"Seconds between one-line self-reports on stderr (0 = off).") in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print the full statistics report after the drain.") in
  let run model socket store max_queue max_batch report_every stats verify
      jobs deadline max_retries =
    or_compile_error @@ fun () ->
    apply_jobs jobs;
    apply_supervision deadline max_retries;
    Neurovec.Supervisor.install_signal_handlers ();
    let agent = Rl.Checkpoint.load model in
    let faults = Neurovec.Faults.of_env () in
    (* the on-disk reply store writes through the durable-write fault
       layer; arm it so the spec's disk knobs reach it *)
    Neurovec.Faults.install_disk faults;
    let options =
      { Neurovec.Pipeline.default_options with
        faults; verify = verify_on verify }
    in
    let server =
      Serve.Server.create ~options ?store_path:store ~max_queue ~max_batch
        ~report_every agent
    in
    (match socket with
    | Some path ->
        Printf.eprintf "neurovec serve: listening on %s\n%!" path;
        Serve.Server.run_socket server ~path
    | None -> Serve.Server.run_stdio server);
    Printf.eprintf "neurovec serve: drained, store flushed\n%!";
    if stats then print_string (Neurovec.Stats.report ());
    Neurovec.Supervisor.uninstall_signal_handlers ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the vectorization daemon: load a checkpoint once, answer \
          length-prefixed requests, batch concurrent forward passes, shed \
          overload explicitly, and drain gracefully on SIGTERM.")
    Term.(const run $ model $ socket $ store $ max_queue $ max_batch
          $ report_every $ stats $ verify_arg $ jobs_arg $ deadline_arg
          $ max_retries_arg)

(* ---- fuzz --------------------------------------------------------- *)

let fuzz_cmd =
  let legality =
    Arg.(
      value & flag
      & info [ "legality" ]
          ~doc:
            "Hunt for plans the legality analysis accepts but translation \
             validation refutes, over dependence-boundary loops.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Generator seed; a refutation reproduces from its seed alone.") in
  let iterations = Arg.(value & opt int 500 & info [ "iterations"; "n" ] ~doc:"Fuzz cases to generate.") in
  let deadline_s = Arg.(value & opt (some float) None & info [ "deadline-s" ] ~doc:"Wall-clock budget in seconds; truncates the case count but never changes a verdict, so a bounded CI hunt reproduces by seed.") in
  let run legality seed iterations deadline_s =
    or_compile_error @@ fun () ->
    if not legality then begin
      Printf.eprintf "neurovec: fuzz requires --legality (the only mode)\n";
      exit 2
    end;
    let refutations, st =
      Verify.Loopfuzz.hunt ?deadline_s ~seed ~iterations ()
    in
    let ran = st.Verify.Loopfuzz.hs_ran in
    let elapsed = st.Verify.Loopfuzz.hs_elapsed_s in
    Printf.printf "fuzz --legality: %d/%d cases ran, %d refutation%s\n" ran
      iterations
      (List.length refutations)
      (if List.length refutations = 1 then "" else "s");
    Printf.printf "coverage: %.1f iterations/sec over %.1fs%s; families: %s\n"
      (if elapsed > 0.0 then float_of_int ran /. elapsed else 0.0)
      elapsed
      (if st.Verify.Loopfuzz.hs_deadline_hit then " (deadline expired)"
       else "")
      (String.concat " "
         (List.map
            (fun (f, n) -> Printf.sprintf "%s=%d" f n)
            st.Verify.Loopfuzz.hs_families));
    List.iter
      (fun r ->
        Printf.printf
          "\nREFUTED %s (requested VF=%d IF=%d; applied %s)\n  %s\n%s\n"
          r.Verify.Loopfuzz.r_name r.Verify.Loopfuzz.r_vf
          r.Verify.Loopfuzz.r_if r.Verify.Loopfuzz.r_applied
          r.Verify.Loopfuzz.r_cx r.Verify.Loopfuzz.r_source)
      refutations;
    if refutations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz the legality analysis: generate dependence-boundary loops, \
          apply plans the clamp accepts, and refute them by differential \
          interpretation. Exits 1 on any refutation.")
    Term.(const run $ legality $ seed $ iterations $ deadline_s)

(* ---- soak --------------------------------------------------------- *)

let soak_cmd =
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Chaos seed: kill times, signals and every injected fault derive from it, so a failing soak reproduces from the seed alone.") in
  let out = Arg.(value & opt (some string) None & info [ "out" ] ~doc:"Scratch directory to run in (kept for autopsy; default: a temp directory, removed on success).") in
  let budget = Arg.(value & opt float 75.0 & info [ "time-budget" ] ~doc:"Wall-clock bound in seconds; phases that cannot finish in budget fail their invariants instead of hanging.") in
  let run seed out budget =
    or_compile_error @@ fun () ->
    if not (Experiments.Soak.run ?out ~time_budget:budget ~seed ()) then
      exit 1
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Chaos-soak the self-healing training layer: train under random \
          SIGKILL/SIGTERM, injected disk faults and NaN-gradient \
          poisoning, then verify the recovery invariants (rollback \
          exercised and journaled, bit-identical resume, monotonic \
          progress, no torn files, store recovery). Exits 1 if any \
          invariant fails.")
    Term.(const run $ seed $ out $ budget)

(* ---- request ------------------------------------------------------- *)

let request_cmd =
  let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE") in
  let socket = Arg.(required & opt (some string) None & info [ "socket" ] ~doc:"Unix-domain socket of a running daemon.") in
  let kernel = Arg.(value & opt string "kernel" & info [ "kernel" ]) in
  let client = Arg.(value & opt string "cli" & info [ "client" ] ~doc:"Client identity for the daemon's per-client circuit breaker.") in
  let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Health check only.") in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Fetch the daemon's statistics report.") in
  let run file socket kernel client ping stats =
    or_compile_error @@ fun () ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX socket)
     with Unix.Unix_error (e, _, _) ->
       Printf.eprintf "neurovec: cannot connect to %s: %s\n" socket
         (Unix.error_message e);
       exit 1);
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let req =
      if ping then Serve.Protocol.Ping
      else if stats then Serve.Protocol.Stats_req
      else
        match file with
        | None ->
            Printf.eprintf "neurovec: request needs FILE (or --ping/--stats)\n";
            exit 2
        | Some path ->
            Serve.Protocol.Vectorize
              { v_client = client; v_name = Filename.basename path;
                v_kernel = kernel; v_source = read_file path }
    in
    Serve.Protocol.write_frame oc (Serve.Protocol.encode_request req);
    (match Serve.Protocol.read_frame ic with
    | Serve.Protocol.Frame payload -> (
        match Serve.Protocol.decode_reply payload with
        | Serve.Protocol.Answer text -> print_string text
        | Serve.Protocol.Pong -> print_endline "pong"
        | Serve.Protocol.Stats_reply text -> print_string text
        | Serve.Protocol.Error (kind, msg) ->
            Printf.eprintf "neurovec: %s: %s\n"
              (Serve.Protocol.error_name kind)
              msg;
            (* temp-fail exit for conditions a client should retry later *)
            exit
              (match kind with
              | `Overloaded | `Shutting_down | `Breaker_open -> 75
              | _ -> 1))
    | Serve.Protocol.Eof ->
        Printf.eprintf "neurovec: daemon closed the connection\n";
        exit 1
    | Serve.Protocol.Too_big n ->
        Printf.eprintf "neurovec: daemon sent an oversized frame (%d)\n" n;
        exit 1);
    Unix.close fd
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one request to a running daemon; a successful answer prints \
          exactly what 'neurovec predict' would.")
    Term.(const run $ file $ socket $ kernel $ client $ ping $ stats)

let () =
  let info =
    Cmd.info "neurovec" ~version:"1.0.0"
      ~doc:"End-to-end loop vectorization with deep reinforcement learning."
  in
  exit (Cmd.eval (Cmd.group info [ compile_cmd; sweep_cmd; dataset_cmd; train_cmd; predict_cmd; serve_cmd; request_cmd; fuzz_cmd; soak_cmd ]))
