(** Figure 7: the proposed vectorizer (NNS, random, decision tree, RL)
    against brute force, Polly, and the baseline cost model on 12 held-out
    benchmarks with varied functionality and access patterns.

    Paper facts to reproduce in shape: RL ~2.67x over baseline on average
    and within ~3% of brute force; NNS ~2.65x and decision tree ~2.47x
    (slightly behind RL); Polly ~1.17x; random search well below 1x. *)

let methods =
  [ Trained.Random; Trained.PollyM; Trained.NnsM; Trained.DtreeM; Trained.RlM;
    Trained.BruteForce ]

(** The 12 evaluation benchmarks: held-out generated programs, chosen to
    span distinct families (predicates, strides, reductions, conversions,
    multidimensional arrays, unknown bounds, ...). *)
let pick_benchmarks (t : Trained.t) : Dataset.Program.t array =
  let seen = Hashtbl.create 8 in
  let picks = ref [] in
  Array.iter
    (fun p ->
      if not (Hashtbl.mem seen p.Dataset.Program.p_family) then begin
        Hashtbl.replace seen p.Dataset.Program.p_family ();
        picks := p :: !picks
      end)
    t.Trained.test_set;
  (* top up to 12 with further held-out programs *)
  Array.iter
    (fun p -> if List.length !picks < 12 && not (List.memq p !picks) then picks := p :: !picks)
    t.Trained.test_set;
  Array.of_list (List.rev !picks) |> fun a -> Array.sub a 0 (min 12 (Array.length a))

type row = { bench : string; speedups : (Trained.method_ * float) list }

(** [?t] defaults to the shared full-scale instance; the golden snapshot
    tests pass a tiny one. *)
let run ?t () : row list * (Trained.method_ * float) list =
  let t = match t with Some t -> t | None -> Trained.get () in
  let benches = pick_benchmarks t in
  let rows =
    (* benchmarks fan across the evaluation pool; each worker runs its
       program under all methods (inference is pure, measurements are
       content-keyed) *)
    Common.guarded_map
      ~name:(fun p -> p.Dataset.Program.p_name)
      (fun p ->
        let base = Trained.seconds t Trained.Baseline p in
        { bench = p.Dataset.Program.p_name;
          speedups =
            List.map (fun m -> (m, base /. Trained.seconds t m p)) methods })
      benches
  in
  let averages =
    List.map
      (fun m ->
        ( m,
          Common.geomean
            (List.map (fun r -> List.assoc m r.speedups) rows) ))
      methods
  in
  (rows, averages)

let print () =
  Common.header
    "Figure 7: NNS / random / decision tree / RL vs brute force, Polly, baseline \
     (12 held-out benchmarks, normalized to baseline)";
  let rows, averages = run () in
  Common.table
    ~cols:(List.map Trained.method_name methods)
    ~rows:
      (List.map
         (fun r -> (r.bench, List.map (fun (_, s) -> s) r.speedups))
         rows);
  Printf.printf "\naverages (geomean):\n";
  List.iter
    (fun (m, s) -> Printf.printf "  %-14s %6.2fx\n" (Trained.method_name m) s)
    averages;
  let rl = List.assoc Trained.RlM averages in
  let bf = List.assoc Trained.BruteForce averages in
  Printf.printf
    "RL vs brute force: %.1f%% below optimal (paper: ~3%%)\n"
    (100.0 *. (1.0 -. (rl /. bf)))
