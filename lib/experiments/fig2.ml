(** Figure 2: brute-force search over the LLVM-vectorizer-suite kernels,
    normalized to the baseline cost model.

    Paper facts to reproduce in shape: the optimum beats the baseline on
    every test, with a growing gap on the more complicated ones (up to
    ~1.5x). *)

type row = { name : string; best_speedup : float; best_vf : int; best_if : int }

let run () : row list =
  let programs = Dataset.Llvm_suite.programs in
  let oracle = Neurovec.Reward.create programs in
  (* programs fan across the evaluation pool (each worker sweeps its 35
     actions serially); a program whose baseline cannot be measured is
     skipped and reported, not allowed to abort the sweep *)
  Common.guarded_map
    ~name:(fun i -> programs.(i).Dataset.Program.p_name)
    (fun i ->
      let act, _ = Neurovec.Reward.brute_force oracle i in
      let t_base, _ = Neurovec.Reward.baseline oracle i in
      let t_best = Neurovec.Reward.exec_seconds oracle i act in
      { name = programs.(i).Dataset.Program.p_name;
        best_speedup = t_base /. t_best;
        best_vf = Rl.Spaces.vf_of act;
        best_if = Rl.Spaces.if_of act })
    (Array.init (Array.length programs) Fun.id)

let print () =
  Common.header
    "Figure 2: brute-force vs baseline on the LLVM vectorizer test suite";
  let rows = run () in
  List.iter
    (fun r ->
      Printf.printf "%-20s best=(VF=%2d, IF=%2d)  " r.name r.best_vf r.best_if;
      Common.bar "" r.best_speedup)
    rows;
  Printf.printf "geomean best-over-baseline: %.2fx (paper: up to 1.5x per test)\n"
    (Common.geomean (List.map (fun r -> r.best_speedup) rows));
  Printf.printf "tests where optimum >= baseline: %d / %d (paper: all)\n"
    (List.length (List.filter (fun r -> r.best_speedup >= 0.999) rows))
    (List.length rows)
