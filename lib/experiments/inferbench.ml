(** Inference throughput benchmark (and equivalence gate): embed + policy
    forward for every loop site of the fig7-style synthetic corpus through

    - the {b serial} per-site path ([Rl.Agent.predict], one boxed matvec
      chain per site),
    - the {b batched} path ([Rl.Agent.predict_batch]: contiguous Bigarray
      buffers, per-batch context dedup, matrix-matrix kernels over the
      preallocated scratch arena) — measured {b cold} (arena dropped
      before every round) and {b warm} (steady state, allocation-free),
    - and the batched path {b sharded across the Parpool domains}.

    The gate verifies all paths first: policy logits and values
    bit-identical between [Agent.forward] and [Agent.forward_batch]
    (jobs 1 and pooled), and identical greedy actions on every site.
    Throughput (loops/sec) lands in [BENCH_infer.json]; a warm batched
    speedup below the regression floor fails the run. *)

let wall () = Unix.gettimeofday ()

(* fig7's corpus recipe: the synthetic Loopgen corpus of the shared
   trained instance (Trained.build's seed), agent seed 9 as
   Framework.create uses *)
let corpus_seed = 5

let agent_seed = 9

type leg = { l_name : string; l_seconds : float }

let bits = Int64.bits_of_float

let pool_map f xs = Neurovec.Parpool.map f xs

let check_forward ~(what : string)
    (scalar : (Nn.Tensor.vec * float) array)
    (batched : (Nn.Tensor.vec * float) array) : unit =
  if Array.length scalar <> Array.length batched then
    failwith (Printf.sprintf "%s: %d vs %d results" what
                (Array.length scalar) (Array.length batched));
  Array.iteri
    (fun i (spi, sv) ->
      let bpi, bv = batched.(i) in
      if bits sv <> bits bv then
        failwith
          (Printf.sprintf "%s: site %d value %h vs %h" what i sv bv);
      if Array.length spi <> Array.length bpi then
        failwith (Printf.sprintf "%s: site %d logit arity" what i);
      Array.iteri
        (fun k s ->
          if bits s <> bits bpi.(k) then
            failwith
              (Printf.sprintf "%s: site %d logit %d: %h vs %h" what i k s
                 bpi.(k)))
        spi)
    scalar

(* ------------------------------------------------------------------ *)
(* BENCH_infer.json                                                     *)
(* ------------------------------------------------------------------ *)

let num (f : float) : string =
  if Float.is_finite f then Printf.sprintf "%.6f" f else "0.0"

let json_of ~(programs : int) ~(sites : int) ~(rounds : int)
    ~(jobs_pool : int) ~(unique_ratio : float) ~(serial : leg) ~(cold : leg)
    ~(warm : leg) ~(pooled : leg) : string =
  let lps (l : leg) =
    float_of_int (sites * rounds) /. Float.max l.l_seconds 1e-9
  in
  let speedup (l : leg) = serial.l_seconds /. Float.max l.l_seconds 1e-9 in
  String.concat "\n"
    [
      "{";
      "  \"benchmark\": \"inferbench\",";
      Printf.sprintf "  \"corpus\": \"loopgen seed %d (fig7 recipe)\","
        corpus_seed;
      Printf.sprintf "  \"programs\": %d," programs;
      Printf.sprintf "  \"sites\": %d," sites;
      Printf.sprintf "  \"rounds\": %d," rounds;
      Printf.sprintf "  \"jobs_pool\": %d," jobs_pool;
      Printf.sprintf "  \"unique_context_ratio\": %s," (num unique_ratio);
      Printf.sprintf "  \"serial_seconds\": %s," (num serial.l_seconds);
      Printf.sprintf "  \"batched_cold_seconds\": %s," (num cold.l_seconds);
      Printf.sprintf "  \"batched_warm_seconds\": %s," (num warm.l_seconds);
      Printf.sprintf "  \"pooled_seconds\": %s," (num pooled.l_seconds);
      Printf.sprintf "  \"serial_loops_per_second\": %s," (num (lps serial));
      Printf.sprintf "  \"batched_cold_loops_per_second\": %s,"
        (num (lps cold));
      Printf.sprintf "  \"batched_loops_per_second\": %s," (num (lps warm));
      Printf.sprintf "  \"pooled_loops_per_second\": %s," (num (lps pooled));
      Printf.sprintf "  \"speedup_batched_cold\": %s," (num (speedup cold));
      Printf.sprintf "  \"speedup_batched\": %s," (num (speedup warm));
      Printf.sprintf "  \"speedup_pooled\": %s," (num (speedup pooled));
      "  \"bit_identical\": true";
      "}";
    ]

let required_keys =
  [ "benchmark"; "programs"; "sites"; "rounds"; "serial_seconds";
    "batched_warm_seconds"; "pooled_seconds"; "serial_loops_per_second";
    "batched_loops_per_second"; "pooled_loops_per_second";
    "speedup_batched"; "speedup_pooled"; "unique_context_ratio";
    "bit_identical" ]

let contains (hay : string) (needle : string) : bool =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(** Minimal structural validation of the emitted JSON, as the sweepbench
    gate does: brace balance, required keys, no non-finite float. *)
let validate (path : string) : unit =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let depth = ref 0 and min_depth = ref 0 in
  String.iter
    (fun c ->
      if c = '{' then incr depth
      else if c = '}' then begin
        decr depth;
        if !depth < !min_depth then min_depth := !depth
      end)
    text;
  if !depth <> 0 || !min_depth < 0 then
    failwith (path ^ ": malformed JSON (unbalanced braces)");
  if not (String.length text > 0 && text.[0] = '{') then
    failwith (path ^ ": malformed JSON (does not start with an object)");
  List.iter
    (fun k ->
      if not (contains text (Printf.sprintf "\"%s\":" k)) then
        failwith (Printf.sprintf "%s: missing key %S" path k))
    required_keys;
  List.iter
    (fun bad ->
      (* as a value token — "inf" alone would flag the benchmark's name *)
      if contains text bad then
        failwith (Printf.sprintf "%s: non-finite number %S" path bad))
    [ ": nan"; ": inf"; ": -nan"; ": -inf" ]

(* ------------------------------------------------------------------ *)
(* The benchmark                                                        *)
(* ------------------------------------------------------------------ *)

let print () =
  Common.header
    "Batched inference: serial vs batched vs pooled, same bits, loops/sec";
  let programs = Dataset.Loopgen.generate ~seed:corpus_seed (Common.scaled 200) in
  let agent =
    Rl.Agent.create ~space:Rl.Spaces.Discrete (Nn.Rng.create agent_seed)
  in
  Neurovec.Frontend.clear ();
  let sites =
    Array.concat
      (Array.to_list
         (Array.map
            (fun p ->
              let prog =
                (Neurovec.Frontend.checked p).Neurovec.Frontend.a_ast
              in
              Array.of_list
                (List.map
                   (fun site -> Neurovec.Framework.encode_site agent site)
                   (Neurovec.Extractor.extract prog)))
            programs))
  in
  let n = Array.length sites in
  let jobs = max 2 (Neurovec.Parpool.jobs ()) in
  (* how much the batch dedups: distinct (l, p, r) triples / occurrences *)
  let unique_ratio =
    let seen = Hashtbl.create 1024 and total = ref 0 in
    Array.iter
      (fun ids ->
        Array.iter
          (fun (c : Embedding.Code2vec.ids) ->
            incr total;
            Hashtbl.replace seen
              (c.Embedding.Code2vec.li, c.Embedding.Code2vec.pi,
               c.Embedding.Code2vec.ri)
              ())
          ids)
      sites;
    float_of_int (Hashtbl.length seen) /. float_of_int (max 1 !total)
  in
  Printf.printf
    "corpus: %d programs, %d loop sites, %.1f%% unique contexts, pool size \
     %d\n%!"
    (Array.length programs) n (100.0 *. unique_ratio) jobs;
  (* ---- the gate first: speedups are meaningless if the bits moved ---- *)
  let scalar_fwd =
    Array.map
      (fun ids ->
        let f = Rl.Agent.forward agent ids in
        (f.Rl.Agent.pi, f.Rl.Agent.v))
      sites
  in
  check_forward ~what:"forward_batch (jobs 1)" scalar_fwd
    (Rl.Agent.forward_batch agent sites);
  check_forward
    ~what:(Printf.sprintf "forward_batch (jobs %d pool)" jobs)
    scalar_fwd
    (Rl.Agent.forward_batch ~jobs ~map:pool_map agent sites);
  let acts_serial = Array.map (Rl.Agent.predict agent) sites in
  if acts_serial <> Rl.Agent.predict_batch agent sites then
    failwith "predict_batch (jobs 1) diverged from serial predict";
  if acts_serial <> Rl.Agent.predict_batch ~jobs ~map:pool_map agent sites
  then failwith "predict_batch (pool) diverged from serial predict";
  Printf.printf "bit-identical: yes (logits, values and actions; jobs 1 and \
                 jobs-%d pool)\n%!"
    jobs;
  (* ---- throughput: calibrate rounds so each leg is measurable ---- *)
  let rounds =
    let t0 = wall () in
    Array.iter (fun ids -> ignore (Rl.Agent.predict agent ids)) sites;
    let dt = wall () -. t0 in
    max 3 (int_of_float (0.5 /. Float.max dt 1e-6))
  in
  let time l_name f =
    let t0 = wall () in
    for _ = 1 to rounds do
      f ()
    done;
    { l_name; l_seconds = wall () -. t0 }
  in
  let lps (l : leg) =
    float_of_int (n * rounds) /. Float.max l.l_seconds 1e-9
  in
  let serial =
    time "serial per-site" (fun () ->
        Array.iter (fun ids -> ignore (Rl.Agent.predict agent ids)) sites)
  in
  let cold =
    time "batched, cold arena" (fun () ->
        Nn.Batch.reset_domain_arena ();
        ignore (Rl.Agent.predict_batch agent sites))
  in
  (* warm the arena once, then measure the allocation-free steady state *)
  ignore (Rl.Agent.predict_batch agent sites);
  let warm =
    time "batched, warm arena" (fun () ->
        ignore (Rl.Agent.predict_batch agent sites))
  in
  let pooled =
    time "batched + pool" (fun () ->
        ignore (Rl.Agent.predict_batch ~jobs ~map:pool_map agent sites))
  in
  List.iter
    (fun l ->
      Printf.printf "  %-22s %8.3f s  (%10.0f loops/s)\n" l.l_name
        l.l_seconds (lps l))
    [ serial; cold; warm; pooled ];
  let speedup (l : leg) = serial.l_seconds /. Float.max l.l_seconds 1e-9 in
  Common.bar "batched vs serial" (speedup warm);
  Common.bar "cold    vs serial" (speedup cold);
  Common.bar "pooled  vs serial" (speedup pooled);
  let path = "BENCH_infer.json" in
  let oc = open_out path in
  output_string oc
    (json_of ~programs:(Array.length programs) ~sites:n ~rounds
       ~jobs_pool:jobs ~unique_ratio ~serial ~cold ~warm ~pooled);
  output_char oc '\n';
  close_out oc;
  validate path;
  Printf.printf "wrote %s\n" path;
  if speedup warm < 1.5 then
    failwith
      (Printf.sprintf
         "batched inference is only %.2fx the serial path (floor 1.5x): \
          the batched kernels regressed"
         (speedup warm));
  Printf.printf "%!"
