(** Shared-artifact sweep benchmark (and equivalence gate): run the same
    whole-corpus brute-force sweep through the legacy per-action pipeline
    ([Reward.create ~legacy_pipeline:true]) and through the shared-artifact
    fast path, serially and on the pool, verify all three produce
    bit-identical results — best actions, reward bits, quarantine report —
    and record the measured throughput in [BENCH_sweep.json].

    Two workloads are measured:

    - {b deterministic}: one pipeline run per (program, action) point,
      fault spec from [NEUROVEC_FAULTS] (none by default).  This prices
      the artifact sharing alone: lowering and scalar pre-optimization
      once per program instead of once per action.
    - {b training}: the configuration the RL loop actually runs — fault
      injection plus lognormal timing noise, so every reward is the
      median of [noise_samples] measurements.  The legacy pipeline
      re-lowers, re-optimizes, re-vectorizes and re-prices the program
      for {e every sample}, even though only the final noise multiplier
      differs; the fast path computes each point once and serves the
      resamples from the per-point memo.  This is the headline speedup.

    The legacy column is what every sweep cost before the shared
    pre-vectorization artifact and the timing memos, the fast column is
    what it costs now, and the gate makes the speedup unshippable unless
    the bits are unchanged — including under fault injection. *)

let wall () = Unix.gettimeofday ()

let corpus_seed = 42

(** The fixed training-workload fault spec (seed, discrete fault rates,
    timing noise): noise > 0 turns on median-of-k resampling in
    {!Neurovec.Reward.measure}, which is the point of the workload.
    Fixed rather than env-derived so BENCH_sweep.json is comparable
    across machines and runs. *)
let training_faults =
  Neurovec.Faults.create ~seed:7 ~compile:0.02 ~trap:0.02 ~fuel:0.01
    ~timeout:0.02 ~noise:0.08 ~tail:0.03 ()

type run = {
  results : (Rl.Spaces.action * float) option array;
  quarantine : (string * string) list;
  seconds : float;
  stats : Neurovec.Stats.snapshot;
}

(* fresh caches and counters per run, so no configuration can coast on
   another's memoized artifacts and the hit rates are scoped to the run *)
let sweep ~(legacy : bool) ~(jobs : int) ~(faults : Neurovec.Faults.spec)
    (programs : Dataset.Program.t array) : run =
  Neurovec.Frontend.clear ();
  Neurovec.Stats.reset ();
  let oracle =
    Neurovec.Reward.create ~legacy_pipeline:legacy
      ~options:{ Neurovec.Pipeline.default_options with faults }
      programs
  in
  let t0 = wall () in
  let results =
    Neurovec.Parpool.with_jobs jobs (fun () ->
        Neurovec.Reward.sweep_all oracle)
  in
  let seconds = wall () -. t0 in
  { results; quarantine = Neurovec.Reward.quarantine_report oracle; seconds;
    stats = Neurovec.Stats.snapshot () }

(** Like {!sweep} but timed as the best of [n] back-to-back runs — the
    deterministic workload finishes in a few hundred milliseconds, where
    scheduler noise on a shared machine is comparable to the effect being
    measured.  Results come from the last run (each run is bit-identical
    by construction, which the caller's gate verifies anyway). *)
let sweep_best_of ~(n : int) ~legacy ~jobs ~faults programs : run =
  let rec go best k =
    if k = 0 then best
    else
      let r = sweep ~legacy ~jobs ~faults programs in
      let best =
        if r.seconds < best.seconds then r else { r with seconds = best.seconds }
      in
      go best (k - 1)
  in
  let first = sweep ~legacy ~jobs ~faults programs in
  go first (n - 1)

let check_identical ~(what : string) (a : run) (b : run) : unit =
  if a.quarantine <> b.quarantine then
    failwith
      (Printf.sprintf "%s changed the quarantine report (%d vs %d entries)"
         what
         (List.length a.quarantine)
         (List.length b.quarantine));
  let bad = ref [] in
  Array.iteri
    (fun i ra ->
      match (ra, b.results.(i)) with
      | None, None -> ()
      | Some (aa, ar), Some (ba, br)
        when aa = ba && Int64.bits_of_float ar = Int64.bits_of_float br ->
          ()
      | ra, rb ->
          let show = function
            | None -> "quarantined"
            | Some (a, r) ->
                Printf.sprintf "(VF=%d,IF=%d) r=%h" (Rl.Spaces.vf_of a)
                  (Rl.Spaces.if_of a) r
          in
          bad :=
            Printf.sprintf "program %d: %s vs %s" i (show ra) (show rb)
            :: !bad)
    a.results;
  match List.rev !bad with
  | [] -> ()
  | ms ->
      List.iter prerr_endline ms;
      failwith
        (Printf.sprintf "%s diverged on %d/%d programs" what (List.length ms)
           (Array.length a.results))

(* ------------------------------------------------------------------ *)
(* BENCH_sweep.json                                                     *)
(* ------------------------------------------------------------------ *)

let hit_rate ~hits ~misses = Neurovec.Stats.hit_rate ~hits ~misses

(* a float JSON cannot choke on: finite, plain decimal *)
let num (f : float) : string =
  if Float.is_finite f then Printf.sprintf "%.6f" f else "0.0"

let speedup_of ~(legacy : run) ~(fast : run) : float =
  legacy.seconds /. Float.max fast.seconds 1e-9

let json_of ~(programs : int) ~(actions : int) ~(jobs_pool : int)
    ~(det_faults : string) ~(legacy : run) ~(fast : run)
    ~(tr_legacy : run) ~(tr_fast : run) ~(tr_pool : run) : string =
  let per_sec n dt = float_of_int n /. Float.max dt 1e-9 in
  let s = tr_fast.stats in
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"benchmark\": \"sweepbench\",";
      Printf.sprintf "  \"programs\": %d," programs;
      Printf.sprintf "  \"actions\": %d," actions;
      Printf.sprintf "  \"jobs_pool\": %d," jobs_pool;
      Printf.sprintf "  \"workload\": \"training (faults + median-of-k noise)\",";
      Printf.sprintf "  \"training_faults\": %S,"
        (Neurovec.Faults.descriptor training_faults);
      Printf.sprintf "  \"deterministic_faults\": %S," det_faults;
      Printf.sprintf "  \"legacy_seconds\": %s," (num tr_legacy.seconds);
      Printf.sprintf "  \"fast_seconds\": %s," (num tr_fast.seconds);
      Printf.sprintf "  \"fast_pool_seconds\": %s," (num tr_pool.seconds);
      Printf.sprintf "  \"speedup\": %s,"
        (num (speedup_of ~legacy:tr_legacy ~fast:tr_fast));
      Printf.sprintf "  \"pool_speedup\": %s,"
        (num (speedup_of ~legacy:tr_legacy ~fast:tr_pool));
      Printf.sprintf "  \"deterministic_legacy_seconds\": %s,"
        (num legacy.seconds);
      Printf.sprintf "  \"deterministic_fast_seconds\": %s,"
        (num fast.seconds);
      Printf.sprintf "  \"deterministic_speedup\": %s,"
        (num (speedup_of ~legacy ~fast));
      Printf.sprintf "  \"legacy_programs_per_second\": %s,"
        (num (per_sec programs tr_legacy.seconds));
      Printf.sprintf "  \"fast_programs_per_second\": %s,"
        (num (per_sec programs tr_fast.seconds));
      Printf.sprintf "  \"fast_actions_per_second\": %s,"
        (num (per_sec (programs * actions) tr_fast.seconds));
      Printf.sprintf "  \"prevec_hit_rate\": %s,"
        (num
           (hit_rate ~hits:s.Neurovec.Stats.prevec_hits
              ~misses:s.Neurovec.Stats.prevec_misses));
      Printf.sprintf "  \"point_memo_hit_rate\": %s,"
        (num
           (hit_rate ~hits:s.Neurovec.Stats.point_hits
              ~misses:s.Neurovec.Stats.point_misses));
      Printf.sprintf "  \"timing_memo_hit_rate\": %s,"
        (num
           (hit_rate ~hits:s.Neurovec.Stats.timing_memo_hits
              ~misses:s.Neurovec.Stats.timing_memo_misses));
      Printf.sprintf "  \"frontend_hit_rate\": %s,"
        (num
           (hit_rate ~hits:s.Neurovec.Stats.frontend_hits
              ~misses:s.Neurovec.Stats.frontend_misses));
      Printf.sprintf "  \"quarantined\": %d,"
        (List.length tr_fast.quarantine);
      "  \"bit_identical\": true";
      "}";
    ]

let required_keys =
  [ "benchmark"; "programs"; "actions"; "legacy_seconds"; "fast_seconds";
    "speedup"; "pool_speedup"; "deterministic_speedup";
    "fast_actions_per_second"; "prevec_hit_rate"; "point_memo_hit_rate";
    "timing_memo_hit_rate"; "bit_identical" ]

let contains (hay : string) (needle : string) : bool =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(** Minimal structural validation of the emitted JSON — the CI smoke run
    fails on a malformed file.  Checks brace balance, every required key,
    and that no non-finite float leaked through. *)
let validate (path : string) : unit =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let depth = ref 0 and min_depth = ref 0 in
  String.iter
    (fun c ->
      if c = '{' then incr depth
      else if c = '}' then begin
        decr depth;
        if !depth < !min_depth then min_depth := !depth
      end)
    text;
  if !depth <> 0 || !min_depth < 0 then
    failwith (path ^ ": malformed JSON (unbalanced braces)");
  if not (String.length text > 0 && text.[0] = '{') then
    failwith (path ^ ": malformed JSON (does not start with an object)");
  List.iter
    (fun k ->
      if not (contains text (Printf.sprintf "\"%s\":" k)) then
        failwith (Printf.sprintf "%s: missing key %S" path k))
    required_keys;
  List.iter
    (fun bad ->
      if contains text bad then
        failwith (Printf.sprintf "%s: non-finite number %S" path bad))
    [ "nan"; "inf" ]

let print () =
  Common.header
    "Shared-artifact sweep: legacy vs fast path, same bits, measured speedup";
  let jobs = max 2 (Neurovec.Parpool.jobs ()) in
  let programs =
    Array.concat
      [ Dataset.Llvm_suite.programs; Dataset.Polybench.programs;
        Dataset.Mibench.programs;
        Dataset.Loopgen.generate ~seed:corpus_seed (Common.scaled 16) ]
  in
  let n = Array.length programs in
  let actions = List.length Rl.Spaces.all_actions in
  let det_faults = Neurovec.Faults.of_env () in
  let det_desc = Neurovec.Faults.descriptor det_faults in
  Printf.printf "corpus: %d programs x %d actions, pool size %d%s\n%!" n
    actions jobs
    (if det_desc = "" then "" else ", faults " ^ det_desc);
  let aps (r : run) = float_of_int (n * actions) /. Float.max r.seconds 1e-9 in
  let phase_line (r : run) =
    String.concat ", "
      (List.filter_map
         (fun (name, secs, calls) ->
           if calls = 0 then None
           else Some (Printf.sprintf "%s %.0fms/%d" name (secs *. 1e3) calls))
         r.stats.Neurovec.Stats.phases)
  in
  (* deterministic workload: one pipeline run per point; best-of-2 because
     the whole sweep is sub-second and scheduler noise is not *)
  let legacy =
    sweep_best_of ~n:2 ~legacy:true ~jobs:1 ~faults:det_faults programs
  in
  let fast =
    sweep_best_of ~n:2 ~legacy:false ~jobs:1 ~faults:det_faults programs
  in
  let pooled = sweep ~legacy:false ~jobs ~faults:det_faults programs in
  Printf.printf "deterministic workload (one run per point):\n";
  Printf.printf "  legacy per-action (--jobs 1): %6.2f s (%.1f actions/s)\n"
    legacy.seconds (aps legacy);
  Printf.printf "      %s\n" (phase_line legacy);
  Printf.printf "  shared artifact   (--jobs 1): %6.2f s (%.1f actions/s)\n"
    fast.seconds (aps fast);
  Printf.printf "      %s\n" (phase_line fast);
  (* training workload: fault injection + timing noise, median-of-k
     resampling per point, exactly as the RL reward oracle measures *)
  let tr_legacy =
    sweep ~legacy:true ~jobs:1 ~faults:training_faults programs
  in
  let tr_fast =
    sweep ~legacy:false ~jobs:1 ~faults:training_faults programs
  in
  let tr_pool = sweep ~legacy:false ~jobs ~faults:training_faults programs in
  Printf.printf "training workload (faults%s, median-of-k resampling):\n"
    (Neurovec.Faults.descriptor training_faults);
  Printf.printf "  legacy per-action (--jobs 1): %6.2f s (%.1f actions/s)\n"
    tr_legacy.seconds (aps tr_legacy);
  Printf.printf "      %s\n" (phase_line tr_legacy);
  Printf.printf "  shared artifact   (--jobs 1): %6.2f s (%.1f actions/s)\n"
    tr_fast.seconds (aps tr_fast);
  Printf.printf "      %s\n" (phase_line tr_fast);
  let det_speedup = speedup_of ~legacy ~fast in
  let train_speedup = speedup_of ~legacy:tr_legacy ~fast:tr_fast in
  Common.bar "training sweep   fast vs legacy" train_speedup;
  Common.bar "deterministic    fast vs legacy" det_speedup;
  let s = tr_fast.stats in
  Printf.printf
    "fast-path caches (training run): prevec %.1f%%, point memo %.1f%%, \
     timing memo %.1f%% hit rate\n"
    (100.0
    *. hit_rate ~hits:s.Neurovec.Stats.prevec_hits
         ~misses:s.Neurovec.Stats.prevec_misses)
    (100.0
    *. hit_rate ~hits:s.Neurovec.Stats.point_hits
         ~misses:s.Neurovec.Stats.point_misses)
    (100.0
    *. hit_rate ~hits:s.Neurovec.Stats.timing_memo_hits
         ~misses:s.Neurovec.Stats.timing_memo_misses);
  (* the gate: the speedups are meaningless if the bits moved *)
  check_identical ~what:"shared-artifact sweep (jobs 1)" legacy fast;
  check_identical ~what:"shared-artifact sweep (pool)" legacy pooled;
  check_identical ~what:"training sweep (jobs 1)" tr_legacy tr_fast;
  check_identical ~what:"training sweep (pool)" tr_legacy tr_pool;
  Printf.printf
    "bit-identical: yes (legacy = fast = jobs-%d pool, both workloads, %d \
     quarantined under faults)\n"
    jobs
    (List.length tr_legacy.quarantine);
  let path = "BENCH_sweep.json" in
  let oc = open_out path in
  output_string oc
    (json_of ~programs:n ~actions ~jobs_pool:jobs ~det_faults:det_desc
       ~legacy ~fast ~tr_legacy ~tr_fast ~tr_pool);
  output_char oc '\n';
  close_out oc;
  validate path;
  Printf.printf "wrote %s\n" path;
  if train_speedup < 1.0 then
    failwith
      (Printf.sprintf
         "fast path is slower than legacy on the training workload (%.2fx): \
          shared-artifact sweep regressed"
         train_speedup);
  if det_speedup < 0.9 then
    failwith
      (Printf.sprintf
         "fast path regressed the deterministic workload (%.2fx)" det_speedup);
  Printf.printf "%!"
