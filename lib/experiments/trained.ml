(** The shared trained model used by Figures 7, 8 and 9: one agent trained
    once on the synthetic corpus (80/20 split), plus brute-force labels and
    the NNS / decision-tree predictors fitted on the learned embeddings —
    mirroring Section 3.5's recipe of reusing the end-to-end-trained
    embedding for the supervised methods. *)

type t = {
  agent : Rl.Agent.t;
  oracle : Neurovec.Reward.t;  (** over the training split *)
  train_set : Dataset.Program.t array;
  test_set : Dataset.Program.t array;
  nns : Agents.Nns.t;
  dtree : Agents.Dtree.tree;
}

let code_vector (agent : Rl.Agent.t) (p : Dataset.Program.t) : float array =
  (Embedding.Code2vec.forward_ids agent.Rl.Agent.c2v
     (Neurovec.Framework.encode agent p))
    .Embedding.Code2vec.code

(** Train the shared model.  The size knobs default to the full-scale run
    of the figures (still scaled by [NEUROVEC_SCALE]); the golden snapshot
    tests pass tiny values to build a fast deterministic instance. *)
let build ?(seed = 5) ?(corpus_size = Common.scaled 800)
    ?(train_steps = Common.scaled 8000) ?(n_labeled = Common.scaled 250) () :
    t =
  let corpus = Dataset.Loopgen.generate ~seed corpus_size in
  let train_set, test_set = Dataset.Loopgen.train_test_split corpus in
  let fw = Neurovec.Framework.create ~seed:9 train_set in
  ignore
    (Neurovec.Framework.train fw
       ~hyper:{ Rl.Ppo.default_hyper with batch_size = 500 }
       ~total_steps:train_steps);
  (* brute-force labels on a labeled portion of the training split, fanned
     across the evaluation pool; a program the oracle quarantined
     contributes no label instead of aborting the build *)
  let n_labeled = min (Array.length train_set) n_labeled in
  let labeled =
    Common.guarded_map
      ~name:(fun i -> train_set.(i).Dataset.Program.p_name)
      (fun i ->
        let act, _ =
          Neurovec.Reward.brute_force fw.Neurovec.Framework.oracle i
        in
        ( code_vector fw.Neurovec.Framework.agent train_set.(i),
          Rl.Spaces.flat_of act ))
      (Array.init n_labeled Fun.id)
  in
  let xs = Array.of_list (List.map fst labeled) in
  let ys = Array.of_list (List.map snd labeled) in
  {
    agent = fw.Neurovec.Framework.agent;
    oracle = fw.Neurovec.Framework.oracle;
    train_set;
    test_set;
    nns = Agents.Nns.fit xs ys;
    dtree = Agents.Dtree.fit xs ys;
  }

let instance : t lazy_t = lazy (build ())

let get () = Lazy.force instance

(* ------------------------------------------------------------------ *)
(* Method evaluation on arbitrary programs                              *)
(* ------------------------------------------------------------------ *)

type method_ =
  | Baseline
  | Random
  | PollyM
  | NnsM
  | DtreeM
  | RlM
  | BruteForce
  | PollyRl

let method_name = function
  | Baseline -> "baseline"
  | Random -> "random"
  | PollyM -> "polly"
  | NnsM -> "NNS"
  | DtreeM -> "decision-tree"
  | RlM -> "RL"
  | BruteForce -> "brute-force"
  | PollyRl -> "polly+RL"

(** Execution seconds of [p] under a method. Methods that inject pragmas
    decide per innermost loop. *)
let seconds (t : t) (m : method_) (p : Dataset.Program.t) : float =
  let polly_opts =
    { Neurovec.Pipeline.default_options with Neurovec.Pipeline.polly = true }
  in
  let flat_decisions (predict : Dataset.Program.t -> int) =
    (* one model decision reused for every loop of the program, driven by
       per-loop contexts *)
    let prog = (Neurovec.Frontend.checked p).Neurovec.Frontend.a_ast in
    List.map
      (fun site ->
        ignore site;
        let a = Rl.Spaces.of_flat (predict p) in
        ( site.Neurovec.Extractor.ordinal,
          Neurovec.Injector.pragma_of ~vf:(Rl.Spaces.vf_of a)
            ~if_:(Rl.Spaces.if_of a) ))
      (Neurovec.Extractor.extract prog)
  in
  match m with
  | Baseline -> (Neurovec.Pipeline.run_baseline p).Neurovec.Pipeline.exec_seconds
  | PollyM ->
      (Neurovec.Pipeline.run_baseline ~options:polly_opts p)
        .Neurovec.Pipeline.exec_seconds
  | Random ->
      let rng = Nn.Rng.create (Hashtbl.hash p.Dataset.Program.p_name) in
      let a = Agents.Random_search.pick rng in
      (Neurovec.Pipeline.run_with_pragma p ~vf:(Rl.Spaces.vf_of a)
         ~if_:(Rl.Spaces.if_of a))
        .Neurovec.Pipeline.exec_seconds
  | NnsM ->
      let decisions =
        flat_decisions (fun p ->
            Agents.Nns.predict t.nns (code_vector t.agent p))
      in
      (Neurovec.Pipeline.run_with_decisions p ~decisions)
        .Neurovec.Pipeline.exec_seconds
  | DtreeM ->
      let decisions =
        flat_decisions (fun p ->
            Agents.Dtree.predict t.dtree (code_vector t.agent p))
      in
      (Neurovec.Pipeline.run_with_decisions p ~decisions)
        .Neurovec.Pipeline.exec_seconds
  | RlM ->
      let decisions = Neurovec.Framework.predict_decisions t.agent p in
      (Neurovec.Pipeline.run_with_decisions p ~decisions)
        .Neurovec.Pipeline.exec_seconds
  | BruteForce ->
      let oracle = Neurovec.Reward.create [| p |] in
      let act, _ = Neurovec.Reward.brute_force oracle 0 in
      Neurovec.Reward.exec_seconds oracle 0 act
  | PollyRl ->
      let decisions = Neurovec.Framework.predict_decisions t.agent p in
      (Neurovec.Pipeline.run_with_decisions ~options:polly_opts p ~decisions)
        .Neurovec.Pipeline.exec_seconds
