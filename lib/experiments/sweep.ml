(** Shared training-run machinery for the hyperparameter sweeps
    (Figures 5 and 6). *)

type curve = {
  label : string;
  points : Rl.Ppo.stats list;
  final_reward : float;
}

let corpus = lazy (Dataset.Loopgen.generate ~seed:11 (Common.scaled 400))

(** One training run; reward oracles are shared across runs through a
    global cache so sweeps don't recompute simulations. *)
let shared_oracle =
  lazy (Neurovec.Reward.create (Lazy.force corpus))

let run_one ?(space = Rl.Spaces.Discrete) ?(hidden = [ 64; 64 ])
    ?(use_attention = true) ~label ~(hyper : Rl.Ppo.hyper) ~(steps : int)
    ~(seed : int) () : curve =
  let programs = Lazy.force corpus in
  let oracle = Lazy.force shared_oracle in
  let rng = Nn.Rng.create seed in
  let c2v_cfg = { Embedding.Code2vec.default_config with use_attention } in
  let agent = Rl.Agent.create ~hidden ~c2v_cfg ~space rng in
  let samples, skipped = Neurovec.Framework.probe_samples agent oracle programs in
  List.iter (fun (n, why) -> Common.note_skip n why) skipped;
  let points =
    Rl.Ppo.train ~hyper agent ~samples
      ~reward:(fun i a -> Neurovec.Reward.reward oracle i a)
      ~total_steps:steps
  in
  let final_reward =
    match List.rev points with s :: _ -> s.Rl.Ppo.reward_mean | [] -> 0.0
  in
  { label; points; final_reward }

let print_curves (curves : curve list) =
  (* one line per update round; curves with larger batches have fewer
     updates, so every cell carries its own cumulative step count *)
  let max_len =
    List.fold_left (fun m c -> max m (List.length c.points)) 0 curves
  in
  Printf.printf "%-6s" "round";
  List.iter (fun c -> Printf.printf " | %-29s" c.label) curves;
  print_newline ();
  Printf.printf "%-6s" "";
  List.iter
    (fun _ -> Printf.printf " | %7s %9s %11s" "steps" "reward" "loss")
    curves;
  print_newline ();
  for row = 0 to max_len - 1 do
    Printf.printf "%-6d" (row + 1);
    List.iter
      (fun c ->
        match List.nth_opt c.points row with
        | Some s ->
            Printf.printf " | %7d %+9.3f %11.3f" s.Rl.Ppo.steps
              s.Rl.Ppo.reward_mean s.Rl.Ppo.loss
        | None -> Printf.printf " | %7s %9s %11s" "" "" "")
      curves;
    print_newline ()
  done;
  Printf.printf "%!"
