(** Figure 8: transfer learning to PolyBench — deep RL vs Polly vs the
    baseline cost model (plus the Polly+RL combination the text reports).

    Paper facts to reproduce in shape: RL ~2.08x over baseline on average
    and ~1.16x over Polly overall, but Polly wins on the kernels with the
    largest iteration counts (it transforms beyond vectorization);
    combining Polly and RL reaches ~2.92x. *)

let methods = [ Trained.PollyM; Trained.RlM; Trained.PollyRl ]

(** [?t] defaults to the shared full-scale instance; the golden snapshot
    tests pass a tiny one. *)
let run ?t () =
  let t = match t with Some t -> t | None -> Trained.get () in
  let rows =
    (* kernels fan across the evaluation pool *)
    Common.guarded_map
      ~name:(fun p -> p.Dataset.Program.p_name)
      (fun p ->
        let base = Trained.seconds t Trained.Baseline p in
        ( p.Dataset.Program.p_name,
          List.map (fun m -> (m, base /. Trained.seconds t m p)) methods ))
      Dataset.Polybench.programs
  in
  let avg m =
    Common.geomean (List.map (fun (_, ss) -> List.assoc m ss) rows)
  in
  (rows, List.map (fun m -> (m, avg m)) methods)

let print () =
  Common.header
    "Figure 8: PolyBench transfer — RL vs Polly vs baseline (normalized to baseline)";
  let rows, averages = run () in
  Common.table
    ~cols:(List.map Trained.method_name methods)
    ~rows:(List.map (fun (n, ss) -> (n, List.map snd ss)) rows);
  Printf.printf "\naverages (geomean):\n";
  List.iter
    (fun (m, s) -> Printf.printf "  %-10s %6.2fx\n" (Trained.method_name m) s)
    averages;
  Printf.printf
    "(paper: RL 2.08x, RL/Polly 1.16x, Polly+RL 2.92x; Polly wins on the \
     largest-iteration kernels)\n"
