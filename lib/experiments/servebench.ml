(** Serving benchmark (and recovery gate) for the [neurovec serve]
    daemon, exercised {e with faults active} (stall + transient):

    - {b cold}: a fresh daemon and an empty on-disk store absorb the
      whole corpus from several concurrent clients — sustained
      requests/sec and p50/p99 latency come from this leg;
    - {b crash}: the store is torn mid-append (the tail of the last
      record is cut, simulating a SIGKILL between [write] and [flush]);
    - {b warm}: a restarted daemon recovers the store — torn tail
      dropped, intact records trusted — and replays the same load.

    The gate is the recovery contract: {e every} warm reply (answers and
    typed error replies alike — both are deterministic) must be
    byte-identical to its cold counterpart, and the warm leg must beat
    the cold leg by the regression floor (store hits skip the forward
    pass and the compile entirely).  Results land in [BENCH_serve.json]. *)

let wall () = Unix.gettimeofday ()

let corpus_seed = 13

let agent_seed = 9

let clients = 4

(* the CI recipe: stalls cancelled by the watchdog, transients retried
   deterministically — successful replies keep fault-free values *)
let fault_spec = Neurovec.Faults.create ~seed:7 ~stall:0.02 ~transient:0.1 ()

(* ------------------------------------------------------------------ *)
(* BENCH_serve.json                                                     *)
(* ------------------------------------------------------------------ *)

let num (f : float) : string =
  if Float.is_finite f then Printf.sprintf "%.6f" f else "0.0"

let json_of ~(programs : int) ~(requests : int) ~(jobs_pool : int)
    ~(cold_seconds : float) ~(warm_seconds : float) ~(p50_ms : float)
    ~(p99_ms : float) ~(store_entries : int) ~(error_replies : int) :
    string =
  let rps (s : float) = float_of_int requests /. Float.max s 1e-9 in
  String.concat "\n"
    [
      "{";
      "  \"benchmark\": \"servebench\",";
      Printf.sprintf "  \"corpus\": \"loopgen seed %d\"," corpus_seed;
      Printf.sprintf "  \"programs\": %d," programs;
      Printf.sprintf "  \"requests\": %d," requests;
      Printf.sprintf "  \"clients\": %d," clients;
      Printf.sprintf "  \"jobs_pool\": %d," jobs_pool;
      "  \"faults\": \"seed=7,stall=0.02,transient=0.1\",";
      Printf.sprintf "  \"cold_seconds\": %s," (num cold_seconds);
      Printf.sprintf "  \"warm_seconds\": %s," (num warm_seconds);
      Printf.sprintf "  \"cold_requests_per_second\": %s,"
        (num (rps cold_seconds));
      Printf.sprintf "  \"warm_requests_per_second\": %s,"
        (num (rps warm_seconds));
      Printf.sprintf "  \"p50_latency_ms\": %s," (num p50_ms);
      Printf.sprintf "  \"p99_latency_ms\": %s," (num p99_ms);
      Printf.sprintf "  \"warm_speedup\": %s,"
        (num (cold_seconds /. Float.max warm_seconds 1e-9));
      Printf.sprintf "  \"store_entries\": %d," store_entries;
      Printf.sprintf "  \"error_replies\": %d," error_replies;
      "  \"recovery_bit_identical\": true";
      "}";
    ]

let required_keys =
  [ "benchmark"; "programs"; "requests"; "clients"; "jobs_pool";
    "cold_seconds"; "warm_seconds"; "cold_requests_per_second";
    "warm_requests_per_second"; "p50_latency_ms"; "p99_latency_ms";
    "warm_speedup"; "store_entries"; "recovery_bit_identical" ]

let contains (hay : string) (needle : string) : bool =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let validate (path : string) : unit =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let depth = ref 0 and min_depth = ref 0 in
  String.iter
    (fun c ->
      if c = '{' then incr depth
      else if c = '}' then begin
        decr depth;
        if !depth < !min_depth then min_depth := !depth
      end)
    text;
  if !depth <> 0 || !min_depth < 0 then
    failwith (path ^ ": malformed JSON (unbalanced braces)");
  List.iter
    (fun k ->
      if not (contains text (Printf.sprintf "\"%s\":" k)) then
        failwith (Printf.sprintf "%s: missing key %S" path k))
    required_keys;
  List.iter
    (fun bad ->
      if contains text bad then
        failwith (Printf.sprintf "%s: non-finite number %S" path bad))
    [ ": nan"; ": inf"; ": -nan"; ": -inf" ]

(* ------------------------------------------------------------------ *)
(* Load generation                                                      *)
(* ------------------------------------------------------------------ *)

(* a reply's identity for the bit-identity gate: the full wire payload,
   so answer text AND typed errors both count *)
let reply_bytes (r : Serve.Protocol.reply) : string =
  Serve.Protocol.encode_reply r

(* drive the whole corpus through [server] from [clients] concurrent
   threads; returns (wall seconds, per-request latencies, replies in
   corpus order) *)
let drive (server : Serve.Server.t) (corpus : Dataset.Program.t array) :
    float * float array * string array =
  let n = Array.length corpus in
  let latencies = Array.make n 0.0 in
  let replies = Array.make n "" in
  let t0 = wall () in
  let worker c () =
    let i = ref c in
    while !i < n do
      let p = corpus.(!i) in
      let r0 = wall () in
      let reply =
        Serve.Server.call server
          ~client:(Printf.sprintf "bench-%d" c)
          ~name:p.Dataset.Program.p_name
          ~kernel:p.Dataset.Program.p_kernel
          ~source:p.Dataset.Program.p_source
      in
      latencies.(!i) <- wall () -. r0;
      replies.(!i) <- reply_bytes reply;
      i := !i + clients
    done
  in
  let threads = List.init clients (fun c -> Thread.create (worker c) ()) in
  List.iter Thread.join threads;
  (wall () -. t0, latencies, replies)

let percentile (xs : float array) (p : float) : float =
  let ys = Array.copy xs in
  Array.sort compare ys;
  let n = Array.length ys in
  if n = 0 then 0.0
  else ys.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

(* cut the tail of the store's last record: the crash window between
   append and flush *)
let tear_store (path : string) : unit =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  close_in ic;
  if len > 8 then begin
    let keep = len - 7 in
    let ic = open_in_bin path in
    let body = really_input_string ic keep in
    close_in ic;
    let oc = open_out_bin path in
    output_string oc body;
    close_out oc
  end

(* ------------------------------------------------------------------ *)
(* The benchmark                                                        *)
(* ------------------------------------------------------------------ *)

let print () =
  Common.header
    "Vectorizer-as-a-service: cold vs warm throughput, faults active, \
     crash recovery bit-identity";
  let corpus =
    Dataset.Loopgen.generate ~seed:corpus_seed (Common.scaled 40)
  in
  let n = Array.length corpus in
  let agent =
    Rl.Agent.create ~space:Rl.Spaces.Discrete (Nn.Rng.create agent_seed)
  in
  (* serve a real checkpoint, as the daemon would *)
  let ckpt =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "neurovec_servebench_%d.ckpt" (Unix.getpid ()))
  in
  Rl.Checkpoint.save agent ckpt;
  let agent = Rl.Checkpoint.load ckpt in
  let store_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "neurovec_servebench_%d.store" (Unix.getpid ()))
  in
  (try Sys.remove store_path with Sys_error _ -> ());
  let options =
    { Neurovec.Pipeline.default_options with faults = fault_spec }
  in
  (* stalled evaluations should die fast, not bill 2 s each *)
  Neurovec.Supervisor.set_deadline 0.2;
  let jobs = Neurovec.Parpool.jobs () in
  Printf.printf "corpus: %d programs, %d clients, pool size %d\n%!" n
    clients jobs;
  (* ---- cold: empty store ---- *)
  Neurovec.Frontend.clear ();
  let server =
    Serve.Server.create ~options ~store_path ~max_queue:256 agent
  in
  let cold_seconds, latencies, cold_replies = drive server corpus in
  Serve.Server.stop server;
  (* ---- crash: tear the last record mid-append ---- *)
  tear_store store_path;
  (* ---- warm: recover + replay; in-memory tiers dropped too ---- *)
  Neurovec.Frontend.clear ();
  let server =
    Serve.Server.create ~options ~store_path ~max_queue:256 agent
  in
  let warm_seconds, _, warm_replies = drive server corpus in
  let store_entries =
    match server.Serve.Server.store with
    | Some s -> Serve.Store.length s
    | None -> 0
  in
  Serve.Server.stop server;
  (try Sys.remove store_path with Sys_error _ -> ());
  (try Sys.remove (store_path ^ ".quarantined") with Sys_error _ -> ());
  (try Sys.remove ckpt with Sys_error _ -> ());
  (* ---- the gate: warm-after-crash answers are the cold answers ---- *)
  let mismatches = ref 0 in
  Array.iteri
    (fun i c -> if c <> warm_replies.(i) then incr mismatches)
    cold_replies;
  if !mismatches > 0 then
    failwith
      (Printf.sprintf
         "%d of %d warm-restart replies diverged from the cold run"
         !mismatches n);
  let error_replies =
    Array.fold_left
      (fun acc (r : string) ->
        if String.length r > 0 && r.[0] = 'E' then acc + 1 else acc)
      0 cold_replies
  in
  let p50 = 1000.0 *. percentile latencies 0.50 in
  let p99 = 1000.0 *. percentile latencies 0.99 in
  let rps s = float_of_int n /. Float.max s 1e-9 in
  Printf.printf
    "  cold:  %7.3f s  (%6.1f req/s)   p50 %6.2f ms   p99 %6.2f ms\n"
    cold_seconds (rps cold_seconds) p50 p99;
  Printf.printf "  warm:  %7.3f s  (%6.1f req/s)   %d store entries, %d \
                 typed error replies\n%!"
    warm_seconds (rps warm_seconds) store_entries error_replies;
  Printf.printf "recovery: bit-identical after torn-tail crash (all %d \
                 replies)\n%!"
    n;
  let speedup = cold_seconds /. Float.max warm_seconds 1e-9 in
  Common.bar "warm vs cold" speedup;
  let path = "BENCH_serve.json" in
  let oc = open_out path in
  output_string oc
    (json_of ~programs:n ~requests:n ~jobs_pool:jobs ~cold_seconds
       ~warm_seconds ~p50_ms:p50 ~p99_ms:p99 ~store_entries ~error_replies);
  output_char oc '\n';
  close_out oc;
  validate path;
  Printf.printf "wrote %s\n" path;
  if speedup < 1.3 then
    failwith
      (Printf.sprintf
         "warm serving is only %.2fx the cold run (floor 1.3x): the store \
          tier regressed"
         speedup);
  Printf.printf "%!"
