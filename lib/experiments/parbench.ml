(** Parallel evaluation engine benchmark (and safety check): run the same
    whole-corpus brute-force sweep serially ([--jobs 1]) and on the pool
    ([--jobs N]), verify the results are bit-identical — best actions,
    reward bits, quarantine report — and report the wall-clock speedup.

    This is the acceptance check for the engine's determinism contract:
    the pool may only change {e where} an evaluation runs, never what it
    computes.  A mismatch raises, so the CI smoke job fails loudly. *)

let wall () = Unix.gettimeofday ()

(* a corpus with some fault-injected failures exercises the quarantine
   path too; keyed faults make the failures identical in both runs *)
let corpus_seed = 23

let sweep ~(jobs : int) (programs : Dataset.Program.t array) :
    (Rl.Spaces.action * float) option array * (string * string) list * float =
  (* fresh caches per run so the parallel run cannot coast on the serial
     run's memoized rewards (and vice versa) *)
  Neurovec.Frontend.clear ();
  let oracle =
    Neurovec.Reward.create
      ~options:
        { Neurovec.Pipeline.default_options with
          faults = Neurovec.Faults.of_env () }
      programs
  in
  let t0 = wall () in
  let results = Neurovec.Parpool.with_jobs jobs (fun () -> Neurovec.Reward.sweep_all oracle) in
  let dt = wall () -. t0 in
  (results, Neurovec.Reward.quarantine_report oracle, dt)

let mismatches (serial : (Rl.Spaces.action * float) option array)
    (parallel : (Rl.Spaces.action * float) option array) : string list =
  let bad = ref [] in
  Array.iteri
    (fun i s ->
      let p = parallel.(i) in
      match (s, p) with
      | None, None -> ()
      | Some (sa, sr), Some (pa, pr)
        when sa = pa && Int64.bits_of_float sr = Int64.bits_of_float pr ->
          ()
      | _ ->
          let show = function
            | None -> "quarantined"
            | Some (a, r) ->
                Printf.sprintf "(VF=%d,IF=%d) r=%h" (Rl.Spaces.vf_of a)
                  (Rl.Spaces.if_of a) r
          in
          bad :=
            Printf.sprintf "program %d: serial %s vs parallel %s" i (show s)
              (show p)
            :: !bad)
    serial;
  List.rev !bad

let print () =
  Common.header "Parallel evaluation engine: serial vs pool, same bits";
  let jobs = max 2 (Neurovec.Parpool.jobs ()) in
  let programs = Dataset.Loopgen.generate ~seed:corpus_seed (Common.scaled 24) in
  Printf.printf "corpus: %d programs x %d actions, pool size %d\n%!"
    (Array.length programs)
    (List.length Rl.Spaces.all_actions)
    jobs;
  let serial, s_quar, s_time = sweep ~jobs:1 programs in
  let parallel, p_quar, p_time = sweep ~jobs programs in
  Printf.printf "serial   (--jobs 1): %6.2f s wall\n" s_time;
  Printf.printf "parallel (--jobs %d): %6.2f s wall\n" jobs p_time;
  Printf.printf "speedup: %.2fx with %d domains (%d hardware threads)\n"
    (s_time /. p_time) jobs
    (Domain.recommended_domain_count ());
  let bad = mismatches serial parallel in
  if s_quar <> p_quar then
    failwith
      (Printf.sprintf
         "parallel sweep changed the quarantine report (%d vs %d entries)"
         (List.length s_quar) (List.length p_quar));
  (match bad with
  | [] ->
      Printf.printf
        "bit-identical: yes (best actions, reward bits, %d quarantined)\n"
        (List.length s_quar)
  | ms ->
      List.iter prerr_endline ms;
      failwith
        (Printf.sprintf "parallel sweep diverged on %d/%d programs"
           (List.length ms) (Array.length serial)));
  Printf.printf "%!"
