(** Figure 9: transfer learning to MiBench — deep RL vs Polly vs the
    baseline cost model on programs where loops are a minor fraction of
    the runtime.

    Paper facts to reproduce in shape: RL >= Polly and >= baseline on every
    benchmark, but the average gain is modest (~1.1x) because the measured
    time is dominated by non-loop (or non-vectorizable) code. *)

let methods = [ Trained.PollyM; Trained.RlM ]

let run () =
  let t = Trained.get () in
  let rows =
    Array.to_list Dataset.Mibench.programs
    |> List.filter_map (fun p ->
           Common.guard ~name:p.Dataset.Program.p_name (fun () ->
               let base = Trained.seconds t Trained.Baseline p in
               ( p.Dataset.Program.p_name,
                 List.map (fun m -> (m, base /. Trained.seconds t m p))
                   methods )))
  in
  let avg m =
    Common.geomean (List.map (fun (_, ss) -> List.assoc m ss) rows)
  in
  (rows, List.map (fun m -> (m, avg m)) methods)

let print () =
  Common.header
    "Figure 9: MiBench transfer — RL vs Polly vs baseline (normalized to baseline)";
  let rows, averages = run () in
  Common.table
    ~cols:(List.map Trained.method_name methods)
    ~rows:(List.map (fun (n, ss) -> (n, List.map snd ss)) rows);
  Printf.printf "\naverages (geomean):\n";
  List.iter
    (fun (m, s) -> Printf.printf "  %-10s %6.2fx\n" (Trained.method_name m) s)
    averages;
  Printf.printf "(paper: RL ~1.1x over baseline; loops are a minor fraction)\n"
