(** Shared utilities for the experiment harness: table printing, summary
    statistics, and the run-scale knob.

    Set [NEUROVEC_SCALE] to scale every training-step budget (e.g. 0.2 for
    a quick smoke run, 5.0 to approach paper-scale sample counts). *)

let scale : float =
  match Sys.getenv_opt "NEUROVEC_SCALE" with
  | Some s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None ->
          (* don't mask a typo as "scale 1.0" *)
          Printf.eprintf
            "neurovec: unparseable NEUROVEC_SCALE=%S, using 1.0\n%!" s;
          1.0)
  | None -> 1.0

let scaled (n : int) : int = max 1 (int_of_float (float_of_int n *. scale))

let mean (xs : float list) : float =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean (xs : float list) : float =
  match xs with
  | [] -> 1.0
  | _ ->
      exp (List.fold_left (fun a x -> a +. log (max x 1e-12)) 0.0 xs
           /. float_of_int (List.length xs))

let header (title : string) =
  Printf.printf "\n=== %s ===\n%!" title

(** Print a table: first column label, then one column per series. *)
let table ~(cols : string list) ~(rows : (string * float list) list) : unit =
  Printf.printf "%-22s" "";
  List.iter (fun c -> Printf.printf "%12s" c) cols;
  print_newline ();
  List.iter
    (fun (label, vals) ->
      Printf.printf "%-22s" label;
      List.iter (fun v -> Printf.printf "%12.3f" v) vals;
      print_newline ())
    rows;
  Printf.printf "%!"

let bar (label : string) (v : float) =
  let n = max 0 (min 60 (int_of_float (v *. 12.0))) in
  Printf.printf "%-22s %6.2fx %s\n" label v (String.make n '#')

(* ------------------------------------------------------------------ *)
(* Per-program fault tolerance                                          *)
(* ------------------------------------------------------------------ *)

(** Programs dropped by {!guard} in this process: (name, reason).
    Guarded by [skip_lock]: {!guarded_map} folds its skips serially in
    item order, but {!guard} itself may run inside a pool worker. *)
let skipped : (string * string) list ref = ref []

let skip_lock = Mutex.create ()

let note_skip (name : string) (reason : string) : unit =
  Mutex.protect skip_lock (fun () -> skipped := (name, reason) :: !skipped)

(** Run one program's worth of work, converting any evaluation failure
    (quarantined baseline, compile error, trap, fuel exhaustion) into a
    recorded skip instead of aborting the whole corpus sweep.  Drivers
    filter the [None]s out and call {!skipped_report} at the end, so a
    sweep over a faulty corpus always completes and reports what it
    dropped. *)
let guard ~(name : string) (f : unit -> 'a) : 'a option =
  try Some (f ()) with
  | Neurovec.Reward.Quarantined (n, why) ->
      note_skip n why;
      None
  | Neurovec.Pipeline.Compile_error msg ->
      note_skip name msg;
      None
  | Ir_interp.Trap msg ->
      note_skip name ("trap: " ^ msg);
      None
  | Neurovec.Faults.Fuel_exhausted msg ->
      note_skip name ("fuel exhausted: " ^ msg);
      None
  | Neurovec.Supervisor.Hung msg ->
      note_skip name ("hung: " ^ msg);
      None
  | Neurovec.Faults.Transient msg ->
      note_skip name ("transient: " ^ msg);
      None

(** {!guard} fanned across the {!Neurovec.Parpool} domains: evaluate [f]
    on every item, convert per-item evaluation failures to skips, and fold
    the survivors {e and} the skip records back in item order — so the
    results and {!skipped_report} are identical at any pool size. *)
let guarded_map ~(name : 'a -> string) (f : 'a -> 'b) (items : 'a array) :
    'b list =
  Neurovec.Parpool.map
    (fun x ->
      try Ok (f x) with
      | Neurovec.Reward.Quarantined (n, why) -> Error (n, why)
      | Neurovec.Pipeline.Compile_error msg -> Error (name x, msg)
      | Ir_interp.Trap msg -> Error (name x, "trap: " ^ msg)
      | Neurovec.Faults.Fuel_exhausted msg ->
          Error (name x, "fuel exhausted: " ^ msg)
      | Neurovec.Supervisor.Hung msg -> Error (name x, "hung: " ^ msg)
      | Neurovec.Faults.Transient msg ->
          Error (name x, "transient: " ^ msg))
    items
  |> Array.to_list
  |> List.filter_map (function
       | Ok y -> Some y
       | Error (n, why) ->
           note_skip n why;
           None)

(** One line per skipped program (nothing when no program was skipped). *)
let skipped_report () : unit =
  match List.rev (Mutex.protect skip_lock (fun () -> !skipped)) with
  | [] -> ()
  | dropped ->
      Printf.printf "\nskipped %d program(s):\n" (List.length dropped);
      List.iter
        (fun (name, why) -> Printf.printf "  %-22s %s\n" name why)
        dropped;
      Printf.printf "%!"

(** Print the pipeline instrumentation scoreboard (per-phase wall time,
    front-end / reward cache hit rates, evaluation counts, fault and
    quarantine counters).  Drivers and the bench harness call this after a
    run; pair with [Neurovec.Stats.reset] to scope the numbers to one
    experiment. *)
let pipeline_stats () =
  print_string (Neurovec.Stats.report ());
  skipped_report ()
