(** [neurovec soak] — the chaos harness for the self-healing training
    layer.

    The harness drives the {e real} binary ([Sys.executable_name]) through
    a bounded training workload under three kinds of chaos — SIGKILL /
    SIGTERM at seeded-random times, injected disk faults (ENOSPC, EIO,
    short writes) under every durable writer, and NaN-gradient poisoning
    of policy updates — and then {e proves} the recovery invariants the
    design promises, printing one ["INVARIANT <name>: OK|FAIL"] line per
    claim:

    - [rollback-exercised]: an uninterrupted reference run under
      [nan_grad] injection trips the sentinels and self-heals at least
      once, completing its full step budget.
    - [rollbacks-journaled]: every rollback of that run left an [R]
      record in the checkpoint's [.lineage] audit log.
    - [jobs-deterministic]: the same run at [--jobs 4] produces a final
      checkpoint byte-identical to [--jobs 1] — trips, rollback steps and
      the backoff schedule included.
    - [resume-bit-identical]: a run repeatedly killed (SIGKILL/SIGTERM)
      and resumed converges to the {e same final checkpoint bytes} as the
      uninterrupted reference.
    - [progress-monotonic]: the persisted step counter observed at each
      resume never regresses — rollbacks restore the newest known-good
      generation, they do not rewind the lineage head.
    - [chaos-disk-completes] / [no-torn-files]: with disk faults layered
      on top of the kills, the run still completes, and afterwards every
      surviving checkpoint generation loads whole, the reward journal
      contains only complete records, and no stale [.tmp] files survive.
    - [store-recovery]: the serve daemon's on-disk reply store, fed
      through the same injected fault layer and then torn mid-record,
      quarantines the damaged log, keeps every surviving record
      bit-exact, and compacts to a clean file.

    Kill times and signals come from a seeded {!Nn.Rng}, and every
    injected fault is a pure function of the fault-spec seed, so a
    failing soak reproduces from its [--seed] alone.  The whole run is
    bounded by [time_budget] (phases that cannot finish in budget fail
    their invariants rather than hang), sized for a CI gate. *)

type check = { c_name : string; c_ok : bool; c_note : string }

(* ---- workload shape: small enough that a full run takes seconds,
   large enough for several updates and checkpoint boundaries *)
let w_programs = 4

let w_steps = 300

let w_batch = 50

let w_every = 100

(* per-update NaN-poisoning probability for the injected runs: high
   enough that a ~6-update run almost surely trips at least once, low
   enough that recovery converges well inside the rollback budget *)
let w_nan_grad = 0.35

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* (steps, rollbacks) persisted in the checkpoint at [path], if it exists
   and carries training state *)
let ckpt_info (path : string) : (int * int) option =
  if not (Sys.file_exists path) then None
  else
    match Rl.Checkpoint.load_full path with
    | exception Rl.Checkpoint.Bad_checkpoint _ -> None
    | _, Some st ->
        Some (st.Rl.Train_state.ts_steps, st.Rl.Train_state.ts_rollbacks)
    | _, None -> None

let same_bytes a b =
  Sys.file_exists a && Sys.file_exists b && read_file a = read_file b

(* environment for a child run: the parent's, with NEUROVEC_FAULTS
   replaced by [faults] so each phase controls its own chaos *)
let env_with_faults (faults : string) : string array =
  let keep s =
    not (String.length s >= 16 && String.sub s 0 16 = "NEUROVEC_FAULTS=")
  in
  Array.of_list
    (("NEUROVEC_FAULTS=" ^ faults)
    :: List.filter keep (Array.to_list (Unix.environment ())))

let train_args ~(seed : int) ~(save : string) ~(resume : bool)
    ~(jobs : int) : string list =
  [ Sys.executable_name; "train";
    "--programs"; string_of_int w_programs;
    "--steps"; string_of_int w_steps;
    "--batch"; string_of_int w_batch;
    "--seed"; string_of_int seed;
    "--save"; save;
    "--checkpoint-every"; string_of_int w_every;
    "--keep-checkpoints"; "3";
    "--jobs"; string_of_int jobs ]
  @ (if resume then [ "--resume"; save ] else [])

(* spawn the binary with stdout+stderr appended to [log] *)
let spawn ~(env : string array) ~(args : string list) ~(log : string) : int =
  let fd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.create_process_env Sys.executable_name (Array.of_list args) env
        Unix.stdin fd fd)

(* wait for [pid]; if it is still alive after [delay] seconds, deliver
   [signal] and reap it *)
let wait_or_kill (pid : int) ~(delay : float) ~(signal : int) :
    Unix.process_status =
  let t0 = Unix.gettimeofday () in
  let rec poll () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () -. t0 >= delay then begin
          (try Unix.kill pid signal with Unix.Unix_error _ -> ());
          snd (Unix.waitpid [] pid)
        end
        else begin
          Unix.sleepf 0.01;
          poll ()
        end
    | _, st -> st
  in
  poll ()

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Phases                                                               *)
(* ------------------------------------------------------------------ *)

(* an uninterrupted run to completion; Some (steps, rollbacks) of the
   final checkpoint on exit 0, None otherwise *)
let straight_run ~seed ~faults ~dir ~jobs : (int * int) option =
  Neurovec.Supervisor.mkdir_p dir;
  let save = Filename.concat dir "agent.ckpt" in
  let pid =
    spawn ~env:(env_with_faults faults)
      ~args:(train_args ~seed ~save ~resume:false ~jobs)
      ~log:(Filename.concat dir "log")
  in
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED 0 -> ckpt_info save
  | _ -> None

(* kill-and-resume loop: spawn, kill after a seeded-random delay (or let
   it finish), resume, until the checkpoint reports the full step budget.
   Returns the resume-time step observations and the restart count. *)
let chaos_run ~seed ~faults ~dir ~jobs ~(rng : Nn.Rng.t)
    ~(deadline : float) :
    [ `Done of int list * int | `Died of int | `Gave_up ] =
  Neurovec.Supervisor.mkdir_p dir;
  let save = Filename.concat dir "agent.ckpt" in
  let log = Filename.concat dir "log" in
  let resumes = ref [] in
  let rec go i =
    if i >= 30 || Unix.gettimeofday () > deadline then `Gave_up
    else begin
      let resume = Sys.file_exists save in
      (if resume then
         match ckpt_info save with
         | Some (st, _) -> resumes := st :: !resumes
         | None -> ());
      let pid =
        spawn ~env:(env_with_faults faults)
          ~args:(train_args ~seed ~save ~resume ~jobs)
          ~log
      in
      let delay = 0.08 +. (0.9 *. Nn.Rng.float rng) in
      let signal =
        if Nn.Rng.float rng < 0.5 then Sys.sigkill else Sys.sigterm
      in
      match wait_or_kill pid ~delay ~signal with
      | Unix.WEXITED 0
        when (match ckpt_info save with
             | Some (st, _) -> st >= w_steps
             | None -> false) ->
          `Done (List.rev !resumes, i)
      | Unix.WEXITED 0 | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> go (i + 1)
      | Unix.WEXITED code -> `Died code
    end
  in
  go 0

(* after a disk-fault chaos run: prove nothing torn survived.  Every
   ring generation still present must load whole (quarantined [.bad]
   files are evidence, not damage), the reward journal must hold only
   complete "."-terminated records, and no stale [.tmp] may remain. *)
let torn_file_issues ~(dir : string) ~(save : string) : string list =
  let issues = ref [] in
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        issues := ("stale temp file " ^ f) :: !issues)
    (Sys.readdir dir);
  for i = 0 to 2 do
    let file = Rl.Checkpoint.Lineage.ring_path save i in
    if Sys.file_exists file then
      match Rl.Checkpoint.load_full file with
      | exception Rl.Checkpoint.Bad_checkpoint why ->
          issues :=
            Printf.sprintf "%s: %s" (Filename.basename file) why :: !issues
      | _ -> ()
  done;
  let journal = save ^ ".journal" in
  (if Sys.file_exists journal then
     let whole line =
       line = ""
       || (String.length line > 0 && line.[0] = '#')
       || (String.length line >= 2
          && String.sub line (String.length line - 2) 2 = "\t.")
     in
     List.iteri
       (fun i line ->
         if not (whole line) then
           issues := Printf.sprintf "journal line %d torn" (i + 1) :: !issues)
       (String.split_on_char '\n' (read_file journal)));
  List.rev !issues

(* the serve store under the same fault layer: fill it with faults
   active, tear the tail the way a SIGKILL mid-append would, and prove
   recovery quarantines + compacts without losing a surviving byte *)
let store_issues ~(workdir : string) ~(fault_seed : int) : string list =
  let issues = ref [] in
  let path = Filename.concat workdir "store.log" in
  let spec, _ =
    Neurovec.Faults.of_string
      (Printf.sprintf "seed=%d,disk_full=0.05,disk_err=0.04,short_write=0.08"
         fault_seed)
  in
  Neurovec.Faults.install_disk spec;
  Fun.protect
    ~finally:(fun () -> Neurovec.Faults.install_disk Neurovec.Faults.none)
    (fun () ->
      let value k = Printf.sprintf "reply-%d-%s" k (String.make (k mod 7) 'x') in
      let key k = Printf.sprintf "key-%d" k in
      let s = Serve.Store.open_store path in
      for k = 0 to 199 do
        Serve.Store.put s (key k) (value k)
      done;
      Serve.Store.close s;
      let len = (Unix.stat path).Unix.st_size in
      if len > 8 then ignore (Fsio.truncate_back path (len - 5));
      (* reopen under active faults: compaction may fail closed with the
         typed error; the next attempt must recover *)
      let rec reopen tries =
        if tries >= 10 then None
        else
          match Serve.Store.open_store path with
          | s -> Some s
          | exception Fsio.Disk_fault _ -> reopen (tries + 1)
      in
      (match reopen 0 with
      | None -> issues := "reopen kept failing under injected faults" :: !issues
      | Some s2 ->
          let _, _, torn = Serve.Store.recovery s2 in
          if not torn then issues := "torn tail not detected" :: !issues;
          if not (Sys.file_exists (path ^ ".quarantined")) then
            issues := "damaged log not quarantined" :: !issues;
          let survived = ref 0 and mismatched = ref 0 in
          for k = 0 to 199 do
            match Serve.Store.get s2 (key k) with
            | Some v ->
                incr survived;
                if v <> value k then incr mismatched
            | None -> ()
          done;
          if !survived = 0 then issues := "no records survived" :: !issues;
          if !mismatched > 0 then
            issues :=
              Printf.sprintf "%d surviving records corrupt" !mismatched
              :: !issues;
          Serve.Store.close s2;
          (* the compacted log must reopen with zero damage *)
          (match reopen 0 with
          | None -> issues := "post-compaction reopen failed" :: !issues
          | Some s3 ->
              let _, rejected, torn = Serve.Store.recovery s3 in
              if rejected > 0 || torn then
                issues := "compacted log still damaged" :: !issues;
              Serve.Store.close s3));
      List.rev !issues)

(* ------------------------------------------------------------------ *)
(* The harness                                                          *)
(* ------------------------------------------------------------------ *)

(** Run the full soak; prints one INVARIANT line per claim and a PASS /
    FAIL summary, and returns whether every invariant held.  [out] keeps
    the scratch directory for autopsy (default: a fresh directory under
    the system temp dir, removed on success). *)
let run ?(out : string option) ?(time_budget = 75.0) ~(seed : int) () :
    bool =
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. time_budget in
  let keep_workdir = out <> None in
  let workdir =
    match out with
    | Some d -> d
    | None ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "neurovec-soak-%d-%d" (Unix.getpid ()) seed)
  in
  Neurovec.Supervisor.mkdir_p workdir;
  Printf.printf "neurovec soak: seed=%d workdir=%s budget=%.0fs\n%!" seed
    workdir time_budget;
  let checks = ref [] in
  let check name ok note =
    checks := { c_name = name; c_ok = ok; c_note = note } :: !checks;
    Printf.printf "INVARIANT %-22s %s%s\n%!" name
      (if ok then "OK" else "FAIL")
      (if note = "" then "" else "  (" ^ note ^ ")")
  in
  let rng = Nn.Rng.create ((seed * 7919) + 17) in

  (* ---- phase 1: uninterrupted reference run that provably self-heals.
     Whether a given fault seed trips inside the step budget (and
     recovers inside the rollback budget) is a fixed property of that
     seed, so scan a few derived seeds for one that does: deterministic
     in [seed], and each candidate is one short run. *)
  let nan_faults fs = Printf.sprintf "seed=%d,nan_grad=%g" fs w_nan_grad in
  let rec find_reference k =
    if k >= 8 || Unix.gettimeofday () > deadline then None
    else
      let fs = (seed * 100) + k in
      let dir = Filename.concat workdir "ref" in
      rm_rf dir;
      match
        straight_run ~seed ~faults:(nan_faults fs) ~dir ~jobs:1
      with
      | Some (st, rb) when st >= w_steps && rb >= 1 -> Some (fs, dir, rb)
      | _ -> find_reference (k + 1)
  in
  (match find_reference 0 with
  | None ->
      check "rollback-exercised" false
        "no candidate fault seed produced a completed self-healed run"
  | Some (fault_seed, ref_dir, ref_rollbacks) ->
      let ref_ckpt = Filename.concat ref_dir "agent.ckpt" in
      check "rollback-exercised" true
        (Printf.sprintf "fault seed %d, %d rollback%s" fault_seed
           ref_rollbacks
           (if ref_rollbacks = 1 then "" else "s"));
      let logged = Rl.Checkpoint.Lineage.logged_rollbacks ref_ckpt in
      check "rollbacks-journaled"
        (logged >= ref_rollbacks)
        (Printf.sprintf "%d journaled / %d persisted" logged ref_rollbacks);

      (* ---- phase 2: the same run at --jobs 4 must produce the same
         final bytes — trips, rollbacks and backoff included *)
      let dir4 = Filename.concat workdir "ref-jobs4" in
      (match
         straight_run ~seed ~faults:(nan_faults fault_seed) ~dir:dir4 ~jobs:4
       with
      | Some _ ->
          check "jobs-deterministic"
            (same_bytes ref_ckpt (Filename.concat dir4 "agent.ckpt"))
            "final checkpoint, --jobs 1 vs --jobs 4"
      | None -> check "jobs-deterministic" false "--jobs 4 run failed");

      (* ---- phase 3: SIGKILL/SIGTERM chaos; the killed-and-resumed run
         must converge to the reference's exact final bytes *)
      let kill_dir = Filename.concat workdir "chaos-kill" in
      (match
         chaos_run ~seed ~faults:(nan_faults fault_seed) ~dir:kill_dir
           ~jobs:1 ~rng ~deadline
       with
      | `Done (resumes, restarts) ->
          check "resume-bit-identical"
            (same_bytes ref_ckpt (Filename.concat kill_dir "agent.ckpt"))
            (Printf.sprintf "%d restart%s" restarts
               (if restarts = 1 then "" else "s"));
          let rec monotonic = function
            | a :: (b :: _ as rest) -> a <= b && monotonic rest
            | _ -> true
          in
          check "progress-monotonic" (monotonic resumes)
            (Printf.sprintf "resume points: %s"
               (String.concat " " (List.map string_of_int resumes)))
      | `Died code ->
          check "resume-bit-identical" false
            (Printf.sprintf "run died with exit %d" code)
      | `Gave_up ->
          check "resume-bit-identical" false
            "did not complete within restart/time budget");

      (* ---- phase 4: disk faults on top of the kills.  Fault patterns
         depend on per-process attempt indices, so bit-identity with the
         reference is out of scope here; what must hold is that the run
         completes and leaves nothing torn. *)
      let disk_dir = Filename.concat workdir "chaos-disk" in
      let disk_faults =
        Printf.sprintf "%s,disk_full=0.04,disk_err=0.03,short_write=0.05"
          (nan_faults fault_seed)
      in
      (match
         chaos_run ~seed ~faults:disk_faults ~dir:disk_dir ~jobs:1 ~rng
           ~deadline
       with
      | `Done (_, restarts) ->
          check "chaos-disk-completes" true
            (Printf.sprintf "%d restart%s" restarts
               (if restarts = 1 then "" else "s"));
          let issues =
            torn_file_issues ~dir:disk_dir
              ~save:(Filename.concat disk_dir "agent.ckpt")
          in
          check "no-torn-files" (issues = []) (String.concat "; " issues)
      | `Died code ->
          check "chaos-disk-completes" false
            (Printf.sprintf "run died with exit %d" code)
      | `Gave_up ->
          check "chaos-disk-completes" false
            "did not complete within restart/time budget"));

  (* ---- phase 5: the serve store under the same chaos (in-process) *)
  let issues = store_issues ~workdir ~fault_seed:(seed + 1) in
  check "store-recovery" (issues = []) (String.concat "; " issues);

  let all = List.rev !checks in
  let ok = List.for_all (fun c -> c.c_ok) all in
  Printf.printf "soak: %s  (%d/%d invariants, %.1fs)\n%!"
    (if ok then "PASS" else "FAIL")
    (List.length (List.filter (fun c -> c.c_ok) all))
    (List.length all)
    (Unix.gettimeofday () -. t0);
  if ok && not keep_workdir then rm_rf workdir
  else Printf.printf "scratch kept at %s\n%!" workdir;
  ok
