(** Ablation benches for the design choices DESIGN.md calls out.

    - [context]: embedding input = outermost-loop body vs innermost-only
      for nested loops (paper Section 3.3 found outer better);
    - [timeout]: the -9 compile-timeout penalty vs no penalty (Section
      3.4 — without it the agent keeps paying for over-vectorization);
    - [attention]: code2vec soft attention vs mean pooling over path
      contexts. *)

let nested_corpus () =
  (* restrict to families that produce loop nests *)
  Dataset.Loopgen.generate ~seed:77 (Common.scaled 600)
  |> Array.to_list
  |> List.filter (fun p ->
         p.Dataset.Program.p_family = "gemm"
         || p.Dataset.Program.p_family = "nested_fill")
  |> Array.of_list

let train_with ~label ~(encode : Rl.Agent.t -> Dataset.Program.t -> Embedding.Code2vec.ids array)
    ?(use_attention = true) ?(penalty = -9.0)
    (programs : Dataset.Program.t array) : string * float =
  let rng = Nn.Rng.create 55 in
  let c2v_cfg = { Embedding.Code2vec.default_config with use_attention } in
  let agent = Rl.Agent.create ~c2v_cfg ~space:Rl.Spaces.Discrete rng in
  let oracle = Neurovec.Reward.create ~penalty programs in
  let samples, skipped =
    Neurovec.Framework.probe_samples ~encode agent oracle programs
  in
  List.iter (fun (n, why) -> Common.note_skip n why) skipped;
  ignore
    (Rl.Ppo.train
       ~hyper:{ Rl.Ppo.default_hyper with batch_size = 400 }
       agent ~samples
       ~reward:(fun i a -> Neurovec.Reward.reward oracle i a)
       ~total_steps:(Common.scaled 4000));
  (* final greedy reward, with the standard penalty oracle for fairness *)
  let eval_oracle = Neurovec.Reward.create programs in
  let g =
    Rl.Ppo.evaluate agent ~samples
      ~reward:(fun i a -> Neurovec.Reward.reward eval_oracle i a)
  in
  (label, g)

let encode_outer agent p = Neurovec.Framework.encode agent p

let encode_inner (agent : Rl.Agent.t) (p : Dataset.Program.t) :
    Embedding.Code2vec.ids array =
  (* innermost loop only, against the paper's recommendation *)
  let prog = (Neurovec.Frontend.checked p).Neurovec.Frontend.a_ast in
  let stmt =
    match Neurovec.Extractor.extract prog with
    | site :: _ -> Minic.Ast.For site.Neurovec.Extractor.innermost
    | [] -> Neurovec.Extractor.embedding_stmt prog
  in
  let cfg = agent.Rl.Agent.c2v.Embedding.Code2vec.cfg in
  Embedding.Code2vec.encode agent.Rl.Agent.c2v
    (Embedding.Ast_path.contexts_of_stmt
       ~max_contexts:cfg.Embedding.Code2vec.max_contexts stmt)

let ablate_context () =
  let corpus = nested_corpus () in
  [ train_with ~label:"outer-loop context (paper)" ~encode:encode_outer corpus;
    train_with ~label:"innermost-only context" ~encode:encode_inner corpus ]

(* Big-body loops: wide (VF, IF) plans on these blow the compile-time
   budget, so the -9 penalty actually fires (the paper hit this with whole
   benchmarks; our generated micro-loops are usually too small to). *)
let big_body_corpus n =
  let rng = Nn.Rng.create 78 in
  Array.init n (fun i ->
      let stmts = 16 + Nn.Rng.int rng 16 in
      let body =
        List.init stmts (fun k ->
            Printf.sprintf "    a[i] = a[i] + b[i] * %d; c[i] = a[i] ^ c[i];"
              (k + 1))
      in
      let bound = 128 + (64 * Nn.Rng.int rng 8) in
      Dataset.Program.make ~family:"big_body"
        (Printf.sprintf "big_%03d" i)
        (Printf.sprintf
           "int a[1024]; int b[1024]; int c[1024];\n\
            int kernel() {\n\
           \  int i;\n\
           \  for (i = 0; i < %d; i++) {\n%s\n  }\n\
           \  return a[0] + c[0];\n\
            }\n"
           bound
           (String.concat "\n" body)))

let ablate_timeout () =
  let corpus = big_body_corpus (Common.scaled 120) in
  [ train_with ~label:"timeout penalty -9 (paper)" ~encode:encode_outer corpus;
    train_with ~label:"no timeout penalty (0)" ~encode:encode_outer ~penalty:0.0
      corpus ]

let ablate_attention () =
  let corpus = Dataset.Loopgen.generate ~seed:79 (Common.scaled 300) in
  [ train_with ~label:"soft attention (paper)" ~encode:encode_outer corpus;
    train_with ~label:"mean pooling" ~encode:encode_outer ~use_attention:false
      corpus ]

(** Per-target optimum shift (paper Section 5: "for different target
    architectures it can be better to train separate models"): the best
    (VF, IF) on the dot kernel moves with the machine's vector width and
    register file. *)
let ablate_target () =
  List.map
    (fun tgt ->
      let options = { Neurovec.Pipeline.default_options with target = tgt } in
      let oracle = Neurovec.Reward.create ~options [| Fig1.dot_kernel |] in
      let act, r = Neurovec.Reward.brute_force oracle 0 in
      (tgt.Machine.Target.name, Rl.Spaces.vf_of act, Rl.Spaces.if_of act, r))
    [ Machine.Target.sse4; Machine.Target.skylake_avx2; Machine.Target.avx512 ]

let print () =
  Common.header "Ablation: embedding context for nested loops";
  List.iter (fun (l, g) -> Printf.printf "  %-28s greedy reward %+0.3f\n" l g)
    (ablate_context ());
  Common.header "Ablation: compile-timeout penalty";
  List.iter (fun (l, g) -> Printf.printf "  %-28s greedy reward %+0.3f\n" l g)
    (ablate_timeout ());
  Common.header "Ablation: attention vs mean pooling";
  List.iter (fun (l, g) -> Printf.printf "  %-28s greedy reward %+0.3f\n" l g)
    (ablate_attention ());
  Common.header "Ablation: best (VF, IF) per target architecture";
  List.iter
    (fun (name, vf, if_, r) ->
      Printf.printf "  %-14s best (VF=%2d, IF=%2d)  reward %+0.3f\n" name vf
        if_ r)
    (ablate_target ())
