(** Translation-validation benchmark (and equivalence gate): price the
    bytecode VM against the tree-walking interpreter on the workload
    [--verify] actually runs, and make the speedup unshippable unless the
    bits are unchanged.

    Three measurements land in [BENCH_verify.json]:

    - {b interpreter micro}: every module of the corpus (scalar reference
      and its vectorized transform), executed repeatedly by both engines
      over identical seeded memory images — steps/second tree vs VM, with
      a per-run bit-identity check (result, every memory cell, fuel).
      The ≥3x gate lives here: this is the cost {!Verify.Tv} pays per
      verdict miss.
    - {b verified sweeps}: the full reward-oracle sweep with [--verify]
      on, engine tree vs VM, serial and pooled — verified programs/sec
      and the end-to-end overhead of verification relative to a plain
      sweep, before (tree) and after (VM).
    - {b counterexample identity}: a sabotaged verdict rendered by both
      engines must produce byte-identical [Miscompiled] counterexample
      strings, so quarantine reports and V-records cannot drift with the
      engine. *)

let wall () = Unix.gettimeofday ()

let corpus_seed = 77

type run = {
  results : (Rl.Spaces.action * float) option array;
  quarantine : (string * string) list;
  seconds : float;
  stats : Neurovec.Stats.snapshot;
}

(* fresh caches and counters per run: Frontend.clear also empties the Tv
   scalar-run cache and the VM's compiled-code cache via on_clear hooks *)
let sweep ~(engine : Verify.Tv.engine) ~(verify : bool) ~(jobs : int)
    (programs : Dataset.Program.t array) : run =
  Neurovec.Frontend.clear ();
  Neurovec.Stats.reset ();
  Verify.Tv.set_engine engine;
  let oracle =
    Neurovec.Reward.create
      ~options:{ Neurovec.Pipeline.default_options with verify }
      programs
  in
  let t0 = wall () in
  let results =
    Neurovec.Parpool.with_jobs jobs (fun () ->
        Neurovec.Reward.sweep_all oracle)
  in
  let seconds = wall () -. t0 in
  { results; quarantine = Neurovec.Reward.quarantine_report oracle; seconds;
    stats = Neurovec.Stats.snapshot () }

let sweep_best_of ~(n : int) ~engine ~verify ~jobs programs : run =
  let rec go best k =
    if k = 0 then best
    else
      let r = sweep ~engine ~verify ~jobs programs in
      let best =
        if r.seconds < best.seconds then r
        else { r with seconds = best.seconds }
      in
      go best (k - 1)
  in
  go (sweep ~engine ~verify ~jobs programs) (n - 1)

let check_identical ~(what : string) (a : run) (b : run) : unit =
  if a.quarantine <> b.quarantine then
    failwith
      (Printf.sprintf "%s changed the quarantine report (%d vs %d entries)"
         what
         (List.length a.quarantine)
         (List.length b.quarantine));
  let bad = ref 0 in
  Array.iteri
    (fun i ra ->
      match (ra, b.results.(i)) with
      | None, None -> ()
      | Some (aa, ar), Some (ba, br)
        when aa = ba && Int64.bits_of_float ar = Int64.bits_of_float br ->
          ()
      | _ ->
          incr bad;
          Printf.eprintf "%s: program %d diverged\n" what i)
    a.results;
  if !bad > 0 then
    failwith
      (Printf.sprintf "%s diverged on %d/%d programs" what !bad
         (Array.length a.results))

(* ------------------------------------------------------------------ *)
(* Interpreter micro: steps/sec, tree vs VM                             *)
(* ------------------------------------------------------------------ *)

let find_fn (m : Ir.modul) (name : string) : Ir.func =
  match List.find_opt (fun f -> f.Ir.fn_name = name) m.Ir.m_funcs with
  | Some f -> f
  | None -> failwith ("verifybench: kernel " ^ name ^ " not found")

(* the two modules a --verify verdict interprets: the scalar reference
   and the legality-clamped vectorized transform *)
let modules_of (p : Dataset.Program.t) : (Ir.modul * string) list =
  let bindings = p.Dataset.Program.p_bindings in
  let lower () =
    Ir_lower.lower_program ~bindings
      (Minic.Parser.parse_string p.Dataset.Program.p_source)
  in
  let scalar = lower () in
  let m = lower () in
  ignore (Vectorizer.Licm.run_modul m);
  ignore (Vectorizer.Cse.run_modul m);
  ignore (Vectorizer.Licm.run_modul m);
  let preps = Vectorizer.Planner.prepare_modul m in
  ignore
    (Vectorizer.Planner.run_prepared
       ~plan:(Some { Vectorizer.Transform.vf = 4; if_ = 2 })
       m preps);
  ignore (Vectorizer.Licm.run_modul m);
  [ (scalar, p.Dataset.Program.p_kernel); (m, p.Dataset.Program.p_kernel) ]

let sorted_mem (st : Ir_interp.state) : (string * Ir_interp.mem) list =
  List.sort compare
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.Ir_interp.mem [])

let mem_bits_equal (a : Ir_interp.mem) (b : Ir_interp.mem) : bool =
  match (a, b) with
  | Ir_interp.MI x, Ir_interp.MI y -> x = y
  | Ir_interp.MF x, Ir_interp.MF y ->
      Array.length x = Array.length y
      && Array.for_all2
           (fun p q -> Int64.bits_of_float p = Int64.bits_of_float q)
           x y
  | _ -> false

let rv_bits_equal (a : Ir_interp.rvalue_v option)
    (b : Ir_interp.rvalue_v option) : bool =
  match (a, b) with
  | Some (Ir_interp.VF x), Some (Ir_interp.VF y) ->
      Int64.bits_of_float x = Int64.bits_of_float y
  | _ -> a = b

type micro = {
  mi_steps : int;  (** instructions executed across all runs *)
  mi_seconds : float;
  mi_compiled : int;  (** modules the bytecode compiler accepted *)
  mi_fallback : int;  (** modules it declined (tree-walked on both sides) *)
}

(** Run every module [reps] times per engine over identical seeded
    memory, asserting bit-identity run by run.  Returns (tree, vm). *)
let micro_measure ~(reps : int) (mods : (Ir.modul * string) list) :
    micro * micro =
  let compiled = ref 0 and fallback = ref 0 in
  let pairs =
    List.map
      (fun (m, kernel) ->
        let prog = Ir_vm.compile m ~kernel in
        (match prog with Some _ -> incr compiled | None -> incr fallback);
        (m, kernel, prog))
      mods
  in
  let tree_steps = ref 0 and tree_secs = ref 0.0 in
  let vm_steps = ref 0 and vm_secs = ref 0.0 in
  List.iter
    (fun (m, kernel, prog) ->
      let fn = find_fn m kernel in
      for rep = 1 to reps do
        let seed = rep land 7 in
        (* tree walker *)
        let st = Ir_interp.init_state ~seed m in
        let t0 = wall () in
        let r_tree = Ir_interp.run_func st fn () in
        tree_secs := !tree_secs +. (wall () -. t0);
        tree_steps := !tree_steps + st.Ir_interp.steps;
        (* VM over an identical image *)
        match prog with
        | None -> ()
        | Some prog ->
            let st2 = Ir_interp.init_state ~seed m in
            let mem = sorted_mem st2 in
            let t0 = wall () in
            let out = Ir_vm.run prog ~mem () in
            vm_secs := !vm_secs +. (wall () -. t0);
            vm_steps := !vm_steps + out.Ir_vm.o_steps;
            (* the gate rides along on every measured run *)
            if out.Ir_vm.o_steps <> st.Ir_interp.steps then
              failwith
                (Printf.sprintf "verifybench: fuel diverged on %s (%d vs %d)"
                   kernel out.Ir_vm.o_steps st.Ir_interp.steps);
            if not (rv_bits_equal out.Ir_vm.o_result r_tree) then
              failwith ("verifybench: result bits diverged on " ^ kernel);
            List.iter
              (fun (name, mv) ->
                if
                  not
                    (mem_bits_equal (Hashtbl.find st.Ir_interp.mem name) mv)
                then
                  failwith
                    (Printf.sprintf
                       "verifybench: memory %s diverged on %s" name kernel))
              mem
      done)
    pairs;
  ( { mi_steps = !tree_steps; mi_seconds = !tree_secs;
      mi_compiled = !compiled; mi_fallback = !fallback },
    { mi_steps = !vm_steps; mi_seconds = !vm_secs; mi_compiled = !compiled;
      mi_fallback = !fallback } )

(* ------------------------------------------------------------------ *)
(* BENCH_verify.json                                                    *)
(* ------------------------------------------------------------------ *)

let num (f : float) : string =
  if Float.is_finite f then Printf.sprintf "%.6f" f else "0.0"

let required_keys =
  [ "benchmark"; "corpus_programs"; "corpus_modules"; "jobs_pool";
    "tree_steps_per_sec"; "vm_steps_per_sec"; "interp_speedup";
    "modules_compiled"; "modules_fallback"; "sweep_plain_seconds";
    "sweep_tree_seconds"; "sweep_vm_seconds"; "sweep_vm_pool_seconds";
    "verified_programs_per_sec_tree"; "verified_programs_per_sec_vm";
    "verify_overhead_tree_pct"; "verify_overhead_vm_pct";
    "vm_cache_hit_rate"; "bit_identical"; "counterexamples_identical" ]

let json_of ~(programs : int) ~(modules : int) ~(jobs_pool : int)
    ~(tree : micro) ~(vm : micro) ~(plain : run) ~(tree_sweep : run)
    ~(vm_sweep : run) ~(vm_pool : run) : string =
  let rate (m : micro) =
    float_of_int m.mi_steps /. Float.max m.mi_seconds 1e-9
  in
  let per_sec n dt = float_of_int n /. Float.max dt 1e-9 in
  let overhead (v : run) =
    100.0 *. (v.seconds -. plain.seconds) /. Float.max plain.seconds 1e-9
  in
  let s = vm_sweep.stats in
  let cache_rate =
    Neurovec.Stats.hit_rate ~hits:s.Neurovec.Stats.vm_cache_hits
      ~misses:s.Neurovec.Stats.vm_cache_misses
  in
  String.concat "\n"
    [
      "{";
      "  \"benchmark\": \"verifybench\",";
      Printf.sprintf "  \"corpus_programs\": %d," programs;
      Printf.sprintf "  \"corpus_modules\": %d," modules;
      Printf.sprintf "  \"jobs_pool\": %d," jobs_pool;
      Printf.sprintf "  \"tree_steps_per_sec\": %s," (num (rate tree));
      Printf.sprintf "  \"vm_steps_per_sec\": %s," (num (rate vm));
      Printf.sprintf "  \"interp_speedup\": %s,"
        (num (rate vm /. Float.max (rate tree) 1e-9));
      Printf.sprintf "  \"modules_compiled\": %d," vm.mi_compiled;
      Printf.sprintf "  \"modules_fallback\": %d," vm.mi_fallback;
      Printf.sprintf "  \"sweep_plain_seconds\": %s," (num plain.seconds);
      Printf.sprintf "  \"sweep_tree_seconds\": %s," (num tree_sweep.seconds);
      Printf.sprintf "  \"sweep_vm_seconds\": %s," (num vm_sweep.seconds);
      Printf.sprintf "  \"sweep_vm_pool_seconds\": %s," (num vm_pool.seconds);
      Printf.sprintf "  \"verified_programs_per_sec_tree\": %s,"
        (num (per_sec programs tree_sweep.seconds));
      Printf.sprintf "  \"verified_programs_per_sec_vm\": %s,"
        (num (per_sec programs vm_sweep.seconds));
      Printf.sprintf "  \"verify_overhead_tree_pct\": %s,"
        (num (overhead tree_sweep));
      Printf.sprintf "  \"verify_overhead_vm_pct\": %s,"
        (num (overhead vm_sweep));
      Printf.sprintf "  \"vm_cache_hit_rate\": %s," (num cache_rate);
      "  \"bit_identical\": \"yes\",";
      "  \"counterexamples_identical\": \"yes\"";
      "}";
    ]

let contains (hay : string) (needle : string) : bool =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let validate (path : string) : unit =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let depth = ref 0 and min_depth = ref 0 in
  String.iter
    (fun c ->
      if c = '{' then incr depth
      else if c = '}' then begin
        decr depth;
        if !depth < !min_depth then min_depth := !depth
      end)
    text;
  if !depth <> 0 || !min_depth < 0 then
    failwith (path ^ ": malformed JSON (unbalanced braces)");
  if not (String.length text > 0 && text.[0] = '{') then
    failwith (path ^ ": malformed JSON (does not start with an object)");
  List.iter
    (fun k ->
      if not (contains text (Printf.sprintf "\"%s\":" k)) then
        failwith (Printf.sprintf "%s: missing key %S" path k))
    required_keys;
  List.iter
    (fun bad ->
      if contains text bad then
        failwith (Printf.sprintf "%s: non-finite number %S" path bad))
    [ "nan"; "inf" ]

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let print () =
  Common.header
    "Translation validation: tree walker vs bytecode VM, same bits, \
     measured speedup";
  (* at least 4 domains even on small machines: the pool run is a
     bit-identity gate, not a speedup claim, and oversubscription is the
     harsher schedule *)
  let jobs = max 4 (Neurovec.Parpool.jobs ()) in
  let programs = Dataset.Loopgen.generate ~seed:corpus_seed (Common.scaled 12) in
  let n = Array.length programs in
  let mods = List.concat_map modules_of (Array.to_list programs) in
  let n_mods = List.length mods in
  Printf.printf "corpus: %d programs -> %d modules, pool size %d\n%!" n
    n_mods jobs;

  (* interpreter micro: identical work, per-run bit-identity *)
  let reps = Common.scaled 40 in
  let tree, vm = micro_measure ~reps mods in
  let rate (m : micro) =
    float_of_int m.mi_steps /. Float.max m.mi_seconds 1e-9
  in
  Printf.printf "interpreter micro (%d reps/module, %d modules):\n" reps
    n_mods;
  Printf.printf "  tree walker: %10.0f steps/s (%d steps in %.3f s)\n"
    (rate tree) tree.mi_steps tree.mi_seconds;
  Printf.printf "  bytecode VM: %10.0f steps/s (%d steps in %.3f s)\n"
    (rate vm) vm.mi_steps vm.mi_seconds;
  Printf.printf "  compiled %d/%d modules (%d fallbacks)\n" vm.mi_compiled
    (vm.mi_compiled + vm.mi_fallback)
    vm.mi_fallback;
  let interp_speedup = rate vm /. Float.max (rate tree) 1e-9 in
  Common.bar "vm vs tree steps/s" interp_speedup;

  (* verified sweeps: plain, tree-verified, vm-verified, vm pooled *)
  let plain =
    sweep_best_of ~n:2 ~engine:Verify.Tv.Vm ~verify:false ~jobs:1 programs
  in
  let tree_sweep =
    sweep_best_of ~n:2 ~engine:Verify.Tv.Interp ~verify:true ~jobs:1 programs
  in
  let vm_sweep =
    sweep_best_of ~n:2 ~engine:Verify.Tv.Vm ~verify:true ~jobs:1 programs
  in
  let tree_pool =
    sweep ~engine:Verify.Tv.Interp ~verify:true ~jobs programs
  in
  let vm_pool = sweep ~engine:Verify.Tv.Vm ~verify:true ~jobs programs in
  Verify.Tv.set_engine (Verify.Tv.Vm);
  let overhead (v : run) =
    100.0 *. (v.seconds -. plain.seconds) /. Float.max plain.seconds 1e-9
  in
  Printf.printf "verified sweeps (%d programs x 35 actions):\n" n;
  Printf.printf "  plain sweep      (--jobs 1): %6.2f s\n" plain.seconds;
  Printf.printf
    "  --verify, tree   (--jobs 1): %6.2f s (%.1f%% overhead, %.1f \
     programs/s)\n"
    tree_sweep.seconds (overhead tree_sweep)
    (float_of_int n /. Float.max tree_sweep.seconds 1e-9);
  Printf.printf
    "  --verify, vm     (--jobs 1): %6.2f s (%.1f%% overhead, %.1f \
     programs/s)\n"
    vm_sweep.seconds (overhead vm_sweep)
    (float_of_int n /. Float.max vm_sweep.seconds 1e-9);
  Printf.printf "  --verify, vm     (--jobs %d): %6.2f s\n" jobs
    vm_pool.seconds;

  (* the gates: speedup is unshippable unless the bits are unchanged *)
  check_identical ~what:"verify on vs off (jobs 1)" plain vm_sweep;
  check_identical ~what:"vm vs tree engine (jobs 1)" tree_sweep vm_sweep;
  check_identical ~what:"vm vs tree engine (pool)" tree_pool vm_pool;
  check_identical ~what:"vm jobs 1 vs pool" vm_sweep vm_pool;

  (* counterexample identity: the sabotage knob through both engines *)
  let sab_src =
    "int a[64]; int b[64];\n\
     int kernel() { int i; for (i=0;i<64;i++) a[i] = b[i] + 1; return \
     a[7]; }"
  in
  let lower src = Ir_lower.lower_program (Minic.Parser.parse_string src) in
  let scalar = lower sab_src and vec = lower sab_src in
  let cx_of engine =
    Verify.Tv.set_engine engine;
    Neurovec.Frontend.clear ();
    match
      Verify.Tv.verify ~sabotage:true ~key:"verifybench-sab" ~scalar
        ~scalar_key:"verifybench-sab-s" ~kernel:"kernel" vec
    with
    | Verify.Tv.Refuted cx -> Verify.Tv.render cx
    | Verify.Tv.Equivalent -> failwith "verifybench: sabotage not refuted"
  in
  let cx_vm = cx_of Verify.Tv.Vm and cx_tree = cx_of Verify.Tv.Interp in
  Verify.Tv.set_engine Verify.Tv.Vm;
  if cx_vm <> cx_tree then
    failwith
      (Printf.sprintf
         "verifybench: counterexamples drifted between engines (%S vs %S)"
         cx_vm cx_tree);
  Printf.printf
    "bit-identical: yes (tree = vm at jobs 1 and jobs %d; counterexamples \
     byte-identical)\n"
    jobs;

  let path = "BENCH_verify.json" in
  let oc = open_out path in
  output_string oc
    (json_of ~programs:n ~modules:n_mods ~jobs_pool:jobs ~tree ~vm ~plain
       ~tree_sweep ~vm_sweep ~vm_pool);
  output_char oc '\n';
  close_out oc;
  validate path;
  Printf.printf "wrote %s\n" path;
  if vm.mi_fallback > 0 then
    failwith
      (Printf.sprintf
         "verifybench: %d/%d modules fell back to the tree walker — the \
          corpus is supposed to be fully compilable"
         vm.mi_fallback
         (vm.mi_compiled + vm.mi_fallback));
  (* the throughput gate needs a quiet machine; CI runners relax it with
     NEUROVEC_VERIFYBENCH_SPEEDUP_GATE=0 and gate on bit-identity only
     (every identity check above is an unconditional failwith) *)
  let gate =
    match Sys.getenv_opt "NEUROVEC_VERIFYBENCH_SPEEDUP_GATE" with
    | Some s -> ( match float_of_string_opt s with Some g -> g | None -> 3.0)
    | None -> 3.0
  in
  if interp_speedup < gate then
    failwith
      (Printf.sprintf
         "verifybench: interpreter speedup %.2fx is below the %.1fx gate"
         interp_speedup gate)
