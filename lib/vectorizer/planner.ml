(** The vectorization planner: runs over a module, decides each innermost
    loop's (VF, IF) — pragma first, baseline cost model otherwise — clamps
    the decision to what legality allows, and applies the transform.

    This is the "compiler" the rest of the framework drives: the RL agent
    injects pragmas into the source, lowering carries them onto loops, and
    this pass honours them the way Clang/LLVM honour
    [#pragma clang loop vectorize_width(..) interleave_count(..)]. *)

type decision = {
  d_loop_id : int;
  d_requested : Transform.plan option;  (** from pragma, if any *)
  d_applied : Transform.plan;
  d_legal : bool;
  d_reasons : string list;
}

type report = decision list

(** Decide and transform every innermost loop of a function. *)
let run_func ?(table = Costmodel.default_table) (fn : Ir.func) : report =
  let infos = Analysis.Loopinfo.innermost_infos fn in
  List.map
    (fun info ->
      let leg = Legality.of_info info in
      let l = info.Analysis.Loopinfo.li_loop in
      let requested =
        match l.Ir.l_pragma with
        | Some { Minic.Ast.vectorize_width = vw; interleave_count = ic;
                 vectorize_enable } -> (
            match vectorize_enable with
            | Some false -> Some Transform.no_vectorize
            | _ -> (
                match (vw, ic) with
                | None, None -> None
                | _ ->
                    Some
                      { Transform.vf = Option.value vw ~default:1;
                        if_ = Option.value ic ~default:1 }))
        | None -> None
      in
      let plan =
        match requested with
        | Some p ->
            let vf, if_ = Legality.clamp leg ~vf:p.Transform.vf ~if_:p.Transform.if_ in
            { Transform.vf; if_ }
        | None ->
            let p = Costmodel.choose ~table leg in
            let vf, if_ = Legality.clamp leg ~vf:p.Transform.vf ~if_:p.Transform.if_ in
            { Transform.vf; if_ }
      in
      ignore (Transform.vectorize_in_func fn info plan);
      {
        d_loop_id = l.Ir.l_id;
        d_requested = requested;
        d_applied = plan;
        d_legal = leg.Legality.can_vectorize;
        d_reasons = info.Analysis.Loopinfo.li_reasons;
      })
    infos

(** Run the planner over a whole module. *)
let run_modul ?table (m : Ir.modul) : report =
  List.concat_map (fun fn -> run_func ?table fn) m.Ir.m_funcs

(* ------------------------------------------------------------------ *)
(* Shared-artifact planning: analyze once, apply per action             *)
(* ------------------------------------------------------------------ *)

(** One innermost loop's worth of per-module analysis, reusable across
    every [Ir.copy_modul] copy of the module it was computed on: the loop
    info (accesses, reductions, dependences) and its legality verdict.
    [Transform.vectorize_in_func] locates the loop in the target copy by
    id and substitutes the copy's own node, so a [prep] computed on the
    pristine module drives the transform on any structurally-identical
    copy. *)
type prep = {
  pr_fn_name : string;
  pr_info : Analysis.Loopinfo.t;
  pr_leg : Legality.t;
}

(** Analyze every innermost loop of a module once, in [run_modul] order
    (function order, then loop order within the function). *)
let prepare_modul (m : Ir.modul) : prep list =
  List.concat_map
    (fun fn ->
      List.map
        (fun info ->
          { pr_fn_name = fn.Ir.fn_name; pr_info = info;
            pr_leg = Legality.of_info info })
        (Analysis.Loopinfo.innermost_infos fn))
    m.Ir.m_funcs

(** Decide and transform every innermost loop of [m] (a structural copy of
    the module [preps] was computed on) from an explicit plan instead of
    pragmas: [Some p] plays the role of a pragma requesting [p] on every
    loop (clamped by legality exactly as a pragma would be), [None] falls
    back to the baseline cost model's choice.  Produces the same report —
    and the same transformed module, register for register — as lowering a
    pragma-annotated AST and calling [run_modul] on it. *)
let run_prepared ?(table = Costmodel.default_table)
    ~(plan : Transform.plan option) (m : Ir.modul) (preps : prep list) :
    report =
  List.map
    (fun pr ->
      let fn =
        match
          List.find_opt (fun f -> f.Ir.fn_name = pr.pr_fn_name) m.Ir.m_funcs
        with
        | Some fn -> fn
        | None -> invalid_arg "run_prepared: module does not match preps"
      in
      let leg = pr.pr_leg in
      let l = pr.pr_info.Analysis.Loopinfo.li_loop in
      let applied =
        match plan with
        | Some p ->
            let vf, if_ =
              Legality.clamp leg ~vf:p.Transform.vf ~if_:p.Transform.if_
            in
            { Transform.vf; if_ }
        | None ->
            let p = Costmodel.choose ~table leg in
            let vf, if_ =
              Legality.clamp leg ~vf:p.Transform.vf ~if_:p.Transform.if_
            in
            { Transform.vf; if_ }
      in
      ignore (Transform.vectorize_in_func fn pr.pr_info applied);
      {
        d_loop_id = l.Ir.l_id;
        d_requested = plan;
        d_applied = applied;
        d_legal = leg.Legality.can_vectorize;
        d_reasons = pr.pr_info.Analysis.Loopinfo.li_reasons;
      })
    preps

(** Count of instructions in a module after planning — the compile-time
    model's input. *)
let modul_size (m : Ir.modul) : int =
  List.fold_left
    (fun acc fn -> acc + List.length (Ir.all_instrs fn.Ir.fn_body))
    0 m.Ir.m_funcs
