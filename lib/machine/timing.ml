(** Analytic execution-time model ("the hardware").

    For each loop, the per-iteration cost is the maximum of several bounds,
    llvm-mca style:

    - total uops / issue width,
    - per-port-class uops / port count (int ALU, FP, load, store),
    - bytes moved / memory-level bandwidth (level picked by the footprint
      of the arrays the loop touches),
    - the loop-carried dependence chain latency (reduction chains).

    plus loop overhead, register-spill traffic when the body needs more
    live vector registers than the target has, and branch-misprediction
    cost for data-dependent scalar branches. Nested loops contribute their
    full cost to the enclosing iteration. Trip counts come from static
    bounds when available (always, in the benchmark corpus).

    The model is *not* linear in VF and IF: latency hiding, port
    saturation, spills, gathers and cache levels interact — which is why a
    learned policy can beat the linear baseline cost model, reproducing the
    paper's central premise. *)

type resources = {
  mutable uops : float;
  mutable uops_int : float;
  mutable uops_fp : float;
  mutable uops_load : float;
  mutable uops_store : float;
  mutable bytes : float;
  mutable carried_lat : float;  (** loop-carried chain latency *)
  mutable vreg_slots : int;  (** physical vector registers needed *)
  mutable branch_cost : float;
  mutable inner_cycles : float;  (** total cycles of nested loops *)
}

let new_resources () =
  { uops = 0.0; uops_int = 0.0; uops_fp = 0.0; uops_load = 0.0;
    uops_store = 0.0; bytes = 0.0; carried_lat = 0.0; vreg_slots = 0;
    branch_cost = 0.0; inner_cycles = 0.0 }

(** Number of [vec_bits]-wide physical operations a value of type [ty]
    occupies. *)
let chunks (tgt : Target.t) (ty : Ir.ty) : int =
  match ty with
  | Ir.Scalar _ -> 1
  | Ir.Vec (n, s) ->
      max 1 ((n * Ir.scalar_size s * 8 + tgt.Target.vec_bits - 1) / tgt.Target.vec_bits)

(** Costing context: the target, the module, the enclosing function, and
    the per-module static tables the memoized path hoists once per
    [cycles] call instead of recomputing per loop.  [use_memo:false] is
    the legacy reference the sweep benchmark compares against: it
    reproduces the pre-memo model {e implementation} — linear
    [Ir.find_array] scans per footprint query, no hoisted tables, no key
    computation — so the benchmark's legacy column prices what every
    sweep cost before this optimization.  Both modes compute bit-identical
    cycle counts. *)
type ctx = {
  tgt : Target.t;
  m : Ir.modul;
  fn : Ir.func;
  arr_tbl : (string, int) Hashtbl.t option;
      (** array name -> total bytes, hoisted once per module;
          [None] in legacy mode *)
  key_prefix : string;
      (** target + array shapes, shared by every per-loop memo key of
          this module; empty in legacy mode *)
  use_memo : bool;
}

(** Total bytes of array [base], [default] when unknown: hoisted table in
    memo mode, the pre-memo linear scan otherwise. *)
let array_bytes (ctx : ctx) ~(default : int) (base : string) : int =
  match ctx.arr_tbl with
  | Some tbl -> Option.value ~default (Hashtbl.find_opt tbl base)
  | None -> (
      match Ir.find_array ctx.m base with
      | Some a -> Ir.array_elems a * Ir.scalar_size a.Ir.arr_elem
      | None -> default)

(** Memory footprint (bytes) of the arrays a set of instructions touch. *)
let footprint (ctx : ctx) (instrs : Ir.instr list) : int =
  let bases = Hashtbl.create 8 in
  List.iter
    (fun i ->
      match i with
      | Ir.Def (_, Ir.Load (_, mr)) | Ir.Store (_, mr, _) ->
          Hashtbl.replace bases mr.Ir.base ()
      | _ -> ())
    instrs;
  Hashtbl.fold
    (fun base () acc -> acc + array_bytes ctx ~default:0 base)
    bases 0

let bandwidth_for (tgt : Target.t) (fp : int) : float =
  if fp <= tgt.Target.l1_bytes then tgt.Target.bw_l1
  else if fp <= tgt.Target.l2_bytes then tgt.Target.bw_l2
  else tgt.Target.bw_mem

let load_latency_for (tgt : Target.t) (fp : int) : float =
  if fp <= tgt.Target.l1_bytes then tgt.Target.lat_load_l1
  else if fp <= tgt.Target.l2_bytes then tgt.Target.lat_load_l2
  else tgt.Target.lat_load_mem

(** Account one instruction into [res]. [fp] is the loop's footprint. *)
let account (tgt : Target.t) (res : resources) ~(fp : int) (i : Ir.instr) :
    unit =
  ignore fp;
  let add_uops ?(int_ = 0.0) ?(fpu = 0.0) ?(ld = 0.0) ?(st = 0.0) n =
    res.uops <- res.uops +. n;
    res.uops_int <- res.uops_int +. int_;
    res.uops_fp <- res.uops_fp +. fpu;
    res.uops_load <- res.uops_load +. ld;
    res.uops_store <- res.uops_store +. st
  in
  let mem_traffic (ty : Ir.ty) (mr : Ir.mem_ref) : float * float =
    (* (uops, bytes) for the access *)
    let lanes = Ir.width ty in
    let esz = Ir.scalar_size (Ir.elem_ty ty) in
    if lanes = 1 then (1.0, float_of_int esz)
    else if abs mr.Ir.stride = 1 then begin
      let c = float_of_int (chunks tgt ty) in
      let c = if mr.Ir.mask <> None then c +. 1.0 else c in
      (c, float_of_int (lanes * esz))
    end
    else
      (* gather/scatter: one access per lane; each lane may pull its own
         cache line *)
      ( float_of_int lanes,
        float_of_int (lanes * min (abs mr.Ir.stride * esz) 64) )
  in
  match i with
  | Ir.Def (_, rv) -> (
      match rv with
      | Ir.IBin (op, ty, _, _) ->
          let c = float_of_int (chunks tgt ty) in
          let extra =
            match op with Ir.SDiv | Ir.SRem -> c *. 6.0 | _ -> 0.0
          in
          add_uops ~int_:(c +. extra) (c +. extra)
      | Ir.FBin (op, ty, _, _) ->
          let c = float_of_int (chunks tgt ty) in
          let extra =
            match op with Ir.FDiv -> c *. 6.0 | _ -> 0.0
          in
          add_uops ~fpu:(c +. extra) (c +. extra)
      | Ir.ICmp (_, ty, _, _) | Ir.FCmp (_, ty, _, _) | Ir.Select (ty, _, _, _)
        ->
          let c = float_of_int (chunks tgt ty) in
          add_uops ~int_:c c
      | Ir.Cast (_, _, to_, _) ->
          let c = float_of_int (chunks tgt to_) in
          add_uops ~int_:c c
      | Ir.Load (ty, mr) ->
          let u, b = mem_traffic ty mr in
          add_uops ~ld:u u;
          res.bytes <- res.bytes +. b
      | Ir.Splat (Ir.Scalar _, _) | Ir.Stride (Ir.Scalar _, _, _) ->
          (* scalar splat/stride are no-ops *)
          ()
      | Ir.Splat (ty, _) | Ir.Stride (ty, _, _) ->
          let c = float_of_int (chunks tgt ty) in
          add_uops ~int_:c c
      | Ir.Extract _ -> add_uops ~int_:1.0 1.0
      | Ir.Reduce (_, _, _) ->
          (* log2(width) shuffles+ops; charge a small constant *)
          add_uops ~int_:3.0 3.0
      | Ir.Mov _ ->
          (* register moves are renamed away *)
          ())
  | Ir.Store (ty, mr, _) ->
      let u, b = mem_traffic ty mr in
      add_uops ~st:u u;
      res.bytes <- res.bytes +. b
  | Ir.CallI _ -> add_uops ~fpu:10.0 15.0

(** Vector register pressure of a block via linear-scan live ranges:
    the maximum, over program points, of the physical registers occupied by
    simultaneously-live vector values. Loop-carried vectors (accumulators)
    are live across the whole iteration. *)
let vector_pressure (tgt : Target.t) (fn : Ir.func) (instrs : Ir.instr list)
    ~(carried : Transform_probe.IntSet.t) : int =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  if n = 0 then 0
  else begin
    let first_def = Hashtbl.create 16 and last_use = Hashtbl.create 16 in
    Array.iteri
      (fun i instr ->
        List.iter
          (fun r -> Hashtbl.replace last_use r i)
          (Transform_probe.instr_regs instr);
        match instr with
        | Ir.Def (r, _) ->
            if not (Hashtbl.mem first_def r) then Hashtbl.replace first_def r i
        | _ -> ())
      arr;
    let deltas = Array.make (n + 1) 0 in
    Hashtbl.iter
      (fun r d ->
        match Ir.reg_ty fn r with
        | Ir.Vec _ as ty ->
            let c = chunks tgt ty in
            let lo, hi =
              if Transform_probe.IntSet.mem r carried then (0, n - 1)
              else (d, match Hashtbl.find_opt last_use r with
                       | Some u -> max u d
                       | None -> d)
            in
            deltas.(lo) <- deltas.(lo) + c;
            deltas.(hi + 1) <- deltas.(hi + 1) - c
        | Ir.Scalar _ -> ())
      first_def;
    let live = ref 0 and peak = ref 0 in
    Array.iter
      (fun d ->
        live := !live + d;
        if !live > !peak then peak := !live)
      deltas;
    !peak
  end

(** Latency of the slowest loop-carried dependence chain: for each carried
    register, the latency of the operation that produces its new value
    (looking through movs). Chains are independent of each other, so the
    bound is the max, not the sum — this is why interleaving hides latency. *)
let chain_bound (tgt : Target.t) ~(fp : int)
    ~(def_of : Ir.reg -> Ir.rvalue option) : Transform_probe.IntSet.t -> float
    = fun carried ->
  let rec lat_of depth (rv : Ir.rvalue) : float =
    let open Target in
    match rv with
    | Ir.IBin (Ir.Mul, _, _, _) -> tgt.lat_int_mul
    | Ir.IBin ((Ir.SDiv | Ir.SRem), _, _, _) | Ir.FBin (Ir.FDiv, _, _, _) ->
        tgt.lat_div
    | Ir.IBin _ | Ir.ICmp _ | Ir.FCmp _ | Ir.Select _ | Ir.Cast _
    | Ir.Splat _ | Ir.Extract _ | Ir.Stride _ ->
        tgt.lat_int_alu
    | Ir.FBin _ -> tgt.lat_fp
    | Ir.Load _ -> load_latency_for tgt fp
    | Ir.Reduce _ -> 3.0
    | Ir.Mov (_, Ir.Reg t) when depth < 4 -> (
        match def_of t with Some rv' -> lat_of (depth + 1) rv' | None -> 0.5)
    | Ir.Mov _ -> 0.5
  in
  Transform_probe.IntSet.fold
    (fun r acc ->
      match def_of r with Some rv -> max acc (lat_of 0 rv) | None -> acc)
    carried 0.0

(** Working-set footprint of one loop execution: for each access, the span
    of addresses it sweeps across the loop's [trip] iterations —
    [|stride per iteration| * trip * elem_size], capped by the array size;
    loop-invariant accesses touch one cache line. This is what makes loop
    tiling profitable: a tiled inner loop sweeps a tile-sized span that
    fits in L1 instead of a whole row/column. Non-affine accesses are
    charged the whole array. *)
let span_footprint (ctx : ctx) (l : Ir.loop) (trip : int)
    (instrs : Ir.instr list) : int * float =
  let tgt = ctx.tgt in
  let env =
    Analysis.Scev.make_env ~induction_vars:[ l.Ir.l_var ]
      [ Ir.Block instrs ]
  in
  let total = ref 0 in
  let lines_per_iter = ref 0.0 in
  let record (ty : Ir.ty) (mr : Ir.mem_ref) =
    let arr_bytes = array_bytes ctx ~default:64 mr.Ir.base in
    let esz = Ir.scalar_size (Ir.elem_ty ty) in
    let lanes = Ir.width ty in
    let sv = Analysis.Scev.eval_value env mr.Ir.index in
    let span, advance =
      match sv with
      | Analysis.Scev.Unknown -> (arr_bytes, 64)
      | Analysis.Scev.Affine _ ->
          let per_iter = Analysis.Scev.coeff_of l.Ir.l_var sv * l.Ir.l_step in
          if per_iter = 0 then (64, 0)
          else
            ( min arr_bytes
                ((abs per_iter * trip * esz)
                 + (lanes * abs mr.Ir.stride * esz)),
              abs per_iter * esz )
    in
    total := !total + span;
    (* cache lines newly touched per iteration, only when the access's span
       does not stay resident in L1 *)
    if span > tgt.Target.l1_bytes then begin
      let lines =
        if lanes = 1 then min 1.0 (float_of_int advance /. 64.0)
        else
          float_of_int lanes
          *. min 1.0 (float_of_int (abs mr.Ir.stride * esz) /. 64.0)
      in
      lines_per_iter := !lines_per_iter +. lines
    end
  in
  List.iter
    (fun i ->
      (match i with
      | Ir.Def (_, Ir.Load (ty, mr)) -> record ty mr
      | Ir.Store (ty, mr, _) -> record ty mr
      | _ -> ());
      Analysis.Scev.step env i)
    instrs;
  (!total, !lines_per_iter)

(* ------------------------------------------------------------------ *)
(* Per-loop memoization                                                 *)
(* ------------------------------------------------------------------ *)

(* A loop's cycle count is a pure function of the target, the loop subtree
   (including init/bound code, trip hints and static bounds), the types it
   computes with, and the shapes of the arrays it touches.  An action
   sweep evaluates the same program 35 times — legality clamping collapses
   some of those (vf, if) pairs onto identical transformed loops, and
   distinct actions share scalar epilogues and untouched sibling loops —
   so costing by content turns the repeats into table hits.

   The key is the loop's serialized content: [Marshal] emits exactly the
   fields costing reads — induction variable, init/bound code, compare,
   step, trip hint and body (with every instruction's types, operands,
   strides and masks) — prefixed by a digest of the target and the
   module's array shapes.  [l_id] and [l_pragma] are deliberately left
   out: costing never reads them, and keying on them would split entries
   that price identically.  Marshal runs at C speed (a fraction of the
   cost of actually costing the subtree), and the marshaled bytes are the
   table key directly — no second digest pass over them, and, unlike
   keying on the loop structure itself, the table retains flat strings the
   collector marks in O(1) rather than live IR trees it must trace, so a
   long sweep does not drag every transformed loop it ever costed into
   major-heap mark work.  The memo is process-global and sharded like the
   {!Frontend} caches; values are pure floats, so first-commit-wins
   racing is unobservable. *)

let memo_hits = Atomic.make 0
let memo_misses = Atomic.make 0

(** (hits, misses) of the per-loop cycle memo since the last
    {!memo_stats_reset}. *)
let memo_stats () = (Atomic.get memo_hits, Atomic.get memo_misses)

let memo_stats_reset () =
  Atomic.set memo_hits 0;
  Atomic.set memo_misses 0

let memo_n_shards = 16

type memo_shard = { ms_lock : Mutex.t; ms_tbl : (string, float) Hashtbl.t }

let memo_shards =
  Array.init memo_n_shards (fun _ ->
      { ms_lock = Mutex.create (); ms_tbl = Hashtbl.create 256 })

let memo_shard_of (h : int) : memo_shard = memo_shards.(h mod memo_n_shards)

(** Drop every memoized loop cost (called from [Frontend.clear]; counters
    are scoped separately via {!memo_stats_reset}, typically from
    [Stats.reset]). *)
let memo_clear () =
  Array.iter
    (fun s -> Mutex.protect s.ms_lock (fun () -> Hashtbl.reset s.ms_tbl))
    memo_shards

(** Digest of the target fields + array shapes, computed once per module:
    every cost-relevant input that is not in the loop serialization,
    folded to 16 bytes so per-loop keys pay for it once, not per byte. *)
let key_prefix (tgt : Target.t) (m : Ir.modul) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Marshal.to_string tgt []);
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%s[%s]@%d;" a.Ir.arr_name
           (Ir.scalar_ty_to_string a.Ir.arr_elem)
           (String.concat "," (List.map string_of_int a.Ir.arr_dims))
           a.Ir.arr_align))
    m.Ir.m_arrays;
  Digest.string (Buffer.contents buf)

(** Only loops this small are memoized.  The hits live in the small,
    structurally shared loops — scalar epilogues, untouched siblings,
    interleave-only bodies — because identical {e whole transformed
    modules} are already collapsed upstream by the pipeline's per-point
    memo before timing ever runs; a wide VF x IF body is unique to its
    point, so building its (body-sized) key could never pay for itself.
    Gating by size keeps the hits and drops that dead weight.  The gate
    only selects {e which} loops consult the table — costing itself is
    identical — so cycle counts are bit-equal at any threshold. *)
let memo_max_instrs = 64

(** Number of instructions in [nodes], counting stops past [limit]. *)
let rec instrs_until (limit : int) (acc : int) (nodes : Ir.node list) : int =
  match nodes with
  | [] -> acc
  | _ when acc > limit -> acc
  | n :: rest ->
      let acc =
        match n with
        | Ir.Block is -> acc + List.length is
        | Ir.If { cond = ci, _; then_; else_ } ->
            instrs_until limit
              (instrs_until limit (acc + List.length ci) then_)
              else_
        | Ir.Loop l ->
            instrs_until limit
              (acc + List.length (fst l.Ir.l_init)
              + List.length (fst l.Ir.l_bound))
              l.Ir.l_body
        | Ir.WhileLoop { w_cond = ci, _; w_body } ->
            instrs_until limit (acc + List.length ci) w_body
        | Ir.Return (Some (ci, _)) -> acc + List.length ci
        | Ir.Return None | Ir.BreakN | Ir.ContinueN -> acc
      in
      instrs_until limit acc rest

let memo_worthy (l : Ir.loop) : bool =
  instrs_until memo_max_instrs 0 l.Ir.l_body <= memo_max_instrs

let loop_key (ctx : ctx) (l : Ir.loop) : string =
  (* [No_sharing] is safe (the IR is a tree, no cycles) and skips the
     sharing table, which is most of Marshal's cost on small values *)
  ctx.key_prefix
  ^ Marshal.to_string
      ( l.Ir.l_var, l.Ir.l_init, l.Ir.l_bound, l.Ir.l_cmp, l.Ir.l_step,
        l.Ir.l_trip_hint, l.Ir.l_body )
      [ Marshal.No_sharing ]

(* ------------------------------------------------------------------ *)
(* Recursive cost of a node tree                                        *)
(* ------------------------------------------------------------------ *)

(** Straight-line cost (cycles) of an instruction list outside any loop:
    throughput-bound only. *)
let straightline_cost (ctx : ctx) (instrs : Ir.instr list) : float =
  let res = new_resources () in
  let fp = footprint ctx instrs in
  List.iter (account ctx.tgt res ~fp) instrs;
  let t = ctx.tgt in
  max (res.uops /. t.Target.issue_width)
    (max (res.uops_load /. t.Target.load_ports)
       (res.bytes /. bandwidth_for t fp))

(** Dynamic trip count fallback when bounds are not static. *)
let default_trip = 64

let rec cost_nodes (ctx : ctx) (nodes : Ir.node list) : float =
  List.fold_left (fun acc n -> acc +. cost_node ctx n) 0.0 nodes

and cost_node (ctx : ctx) (node : Ir.node) : float =
  match node with
  | Ir.Block is -> straightline_cost ctx is
  | Ir.If { cond = ci, _; then_; else_ } ->
      (* data-dependent scalar branch: average both sides + misprediction *)
      straightline_cost ctx ci
      +. (0.5 *. (cost_nodes ctx then_ +. cost_nodes ctx else_))
      +. (0.3 *. ctx.tgt.Target.branch_miss_penalty)
  | Ir.Loop l -> cost_loop ctx l
  | Ir.WhileLoop { w_cond = ci, _; w_body } ->
      (* unknown iteration count: use the default estimate *)
      float_of_int default_trip
      *. (straightline_cost ctx ci +. cost_nodes ctx w_body
          +. (ctx.tgt.Target.loop_overhead_uops /. ctx.tgt.Target.issue_width))
  | Ir.Return (Some (ci, _)) -> straightline_cost ctx ci
  | Ir.Return None | Ir.BreakN | Ir.ContinueN -> 0.0

and cost_loop (ctx : ctx) (l : Ir.loop) : float =
  if ctx.use_memo && memo_worthy l then cost_loop_memo ctx l
  else cost_loop_fresh ctx l

and cost_loop_memo (ctx : ctx) (l : Ir.loop) : float =
  let key = loop_key ctx l in
  (* the first byte is from the module's prefix digest — uniform across
     modules, so concurrent sweeps of different programs spread out *)
  let s = memo_shard_of (Char.code key.[0]) in
  match Mutex.protect s.ms_lock (fun () -> Hashtbl.find_opt s.ms_tbl key) with
  | Some cached ->
      Atomic.incr memo_hits;
      cached
  | None ->
      Atomic.incr memo_misses;
      (* cost outside the lock: slow, deterministic, idempotent *)
      let cost = cost_loop_fresh ctx l in
      Mutex.protect s.ms_lock (fun () ->
          if not (Hashtbl.mem s.ms_tbl key) then
            Hashtbl.replace s.ms_tbl key cost);
      cost

and cost_loop_fresh (ctx : ctx) (l : Ir.loop) : float =
  let t = ctx.tgt in
  let trip =
    match l.Ir.l_trip_hint with
    | Some n -> n
    | None -> (
        match Analysis.Loopinfo.static_trip_count l with
        | Some n -> n
        | None -> default_trip)
  in
  if trip = 0 then straightline_cost ctx (fst l.Ir.l_init @ fst l.Ir.l_bound)
  else begin
    let body_instrs = Ir.all_instrs l.Ir.l_body in
    let fp, miss_lines = span_footprint ctx l trip body_instrs in
    let carried = Transform_probe.carried_regs l.Ir.l_body in
    let res = new_resources () in
    (* first-def lookup for dependence chains: an indexed table in memo
       mode, the pre-memo linear scan in the legacy reference *)
    let def_of =
      if ctx.use_memo then begin
        let tbl = Hashtbl.create 32 in
        List.iter
          (function
            | Ir.Def (r, rv) ->
                if not (Hashtbl.mem tbl r) then Hashtbl.add tbl r rv
            | _ -> ())
          body_instrs;
        fun r -> Hashtbl.find_opt tbl r
      end
      else
        fun r ->
          List.find_map
            (function Ir.Def (r', rv) when r' = r -> Some rv | _ -> None)
            body_instrs
    in
    res.carried_lat <- chain_bound t ~fp ~def_of carried;
    (* account the body, recursing into control flow *)
    let walk (n : Ir.node) =
      match n with
      | Ir.Block is -> List.iter (account t res ~fp) is
      | Ir.If { cond = ci, _; then_; else_ } ->
          List.iter (account t res ~fp) ci;
          (* halve the branch bodies: taken about half the time *)
          let r2 = new_resources () in
          List.iter
            (fun node ->
              match node with
              | Ir.Block is -> List.iter (account t r2 ~fp) is
              | _ -> res.inner_cycles <- res.inner_cycles +. cost_node ctx node)
            (then_ @ else_);
          res.uops <- res.uops +. (0.5 *. r2.uops) +. 1.0;
          res.uops_int <- res.uops_int +. (0.5 *. r2.uops_int);
          res.uops_fp <- res.uops_fp +. (0.5 *. r2.uops_fp);
          res.uops_load <- res.uops_load +. (0.5 *. r2.uops_load);
          res.uops_store <- res.uops_store +. (0.5 *. r2.uops_store);
          res.bytes <- res.bytes +. (0.5 *. r2.bytes);
          res.branch_cost <-
            res.branch_cost +. (0.3 *. t.Target.branch_miss_penalty)
      | Ir.Loop inner -> res.inner_cycles <- res.inner_cycles +. cost_loop ctx inner
      | Ir.WhileLoop _ | Ir.Return _ | Ir.BreakN | Ir.ContinueN ->
          res.inner_cycles <- res.inner_cycles +. cost_node ctx n
    in
    List.iter walk l.Ir.l_body;
    (* register pressure: spill traffic once the body's live vectors exceed
       the register file *)
    let pressure = vector_pressure t ctx.fn body_instrs ~carried in
    let spill = max 0 (pressure - t.Target.phys_vregs) in
    let spill_uops = float_of_int spill *. t.Target.spill_uops in
    res.uops <- res.uops +. spill_uops;
    res.uops_load <- res.uops_load +. (spill_uops /. 2.0);
    res.uops_store <- res.uops_store +. (spill_uops /. 2.0);
    res.bytes <- res.bytes +. (float_of_int spill *. float_of_int (t.Target.vec_bits / 8));
    let per_iter =
      max
        ((res.uops +. t.Target.loop_overhead_uops) /. t.Target.issue_width)
        (max (res.uops_int /. t.Target.int_ports)
           (max (res.uops_fp /. t.Target.fp_ports)
              (max (res.uops_load /. t.Target.load_ports)
                 (max (res.uops_store /. t.Target.store_ports)
                    (max (res.bytes /. bandwidth_for t fp)
                    (max res.carried_lat
                       (miss_lines *. load_latency_for t fp /. 10.0)))))))
      +. res.branch_cost +. res.inner_cycles
    in
    (* loop setup: init + bound evaluation *)
    let setup = straightline_cost ctx (fst l.Ir.l_init @ fst l.Ir.l_bound) in
    setup +. (float_of_int trip *. per_iter) +. t.Target.branch_miss_penalty
  end

let make_ctx ~(memo : bool) (tgt : Target.t) (m : Ir.modul) (fn : Ir.func) :
    ctx =
  if not memo then { tgt; m; fn; arr_tbl = None; key_prefix = ""; use_memo = false }
  else begin
    let arr_bytes = Hashtbl.create 16 in
    List.iter
      (fun a ->
        Hashtbl.replace arr_bytes a.Ir.arr_name
          (Ir.array_elems a * Ir.scalar_size a.Ir.arr_elem))
      m.Ir.m_arrays;
    { tgt; m; fn; arr_tbl = Some arr_bytes; key_prefix = key_prefix tgt m;
      use_memo = true }
  end

(** Simulated execution time of a function, in cycles.  [memo:false]
    bypasses the per-loop memo (and its key computation) entirely,
    reproducing the pre-memo cost of the model; the returned floats are
    bit-identical either way because loop costing is deterministic. *)
let cycles ?(memo = true) (tgt : Target.t) (m : Ir.modul) (fn : Ir.func) :
    float =
  cost_nodes (make_ctx ~memo tgt m fn) fn.Ir.fn_body

(** Simulated wall-clock seconds. *)
let seconds ?memo (tgt : Target.t) (m : Ir.modul) (fn : Ir.func) : float =
  cycles ?memo tgt m fn /. (tgt.Target.ghz *. 1e9)
