(** Compile-time model.

    The paper (Section 3.4) observed that over-eager vectorization pragmas
    blow up compile time — wide VF x IF plans multiply the loop body during
    widening and legalization — and handled it with a timeout of 10x the
    baseline compile time and a penalty reward of -9.

    Here compile time is a simple affine function of the number of IR
    instructions the planner produced (our transform really does emit
    IF copies x legalization-split instructions, so the blow-up is
    measured, not assumed). *)

type t = {
  base_seconds : float;  (** front-end + codegen fixed cost *)
  per_instr_seconds : float;
}

let default = { base_seconds = 0.08; per_instr_seconds = 0.0008 }

(** Weighted instruction count: a vector operation wider than the target's
    native registers legalizes into multiple machine instructions, so it is
    charged its split factor. This is what makes extreme (VF x IF) plans
    blow past the compile-time budget, as the paper observed. *)
let instr_weight (i : Ir.instr) : int =
  let chunks ty =
    match ty with
    | Ir.Scalar _ -> 1
    | Ir.Vec (n, s) -> max 1 (n * Ir.scalar_size s * 8 / 256)
  in
  match i with
  | Ir.Def (_, rv) -> (
      match rv with
      | Ir.IBin (_, ty, _, _) | Ir.FBin (_, ty, _, _) | Ir.ICmp (_, ty, _, _)
      | Ir.FCmp (_, ty, _, _) | Ir.Select (ty, _, _, _) | Ir.Load (ty, _)
      | Ir.Cast (_, _, ty, _) | Ir.Mov (ty, _) | Ir.Splat (ty, _)
      | Ir.Stride (ty, _, _) ->
          chunks ty
      | Ir.Extract _ | Ir.Reduce _ -> 2)
  | Ir.Store (ty, _, _) -> chunks ty
  | Ir.CallI _ -> 4

let instr_count (m : Ir.modul) : int =
  List.fold_left
    (fun acc fn ->
      Ir.fold_instrs (fun a i -> a + instr_weight i) acc fn.Ir.fn_body)
    0 m.Ir.m_funcs

(** Simulated compile time (seconds) for a module after planning. *)
let seconds ?(model = default) (m : Ir.modul) : float =
  model.base_seconds +. (model.per_instr_seconds *. float_of_int (instr_count m))
