(** The [neurovec serve] daemon: a long-lived vectorization service.

    One process loads a trained checkpoint once and answers "vectorize
    this program" requests for as long as it lives.  The architecture is
    a single {e batcher} thread behind a bounded queue:

    {v
    clients --> submit --> [bounded queue] --> batcher
                                                 |  A. store probe + front end
                                                 |  B. one predict_batch over
                                                 |     every site of the batch
                                                 |  C. compile/measure fan-out
                                                 |     across Parpool, each
                                                 |     request supervised
                                                 '- D. replies + store puts,
                                                       in queue order
    v}

    Concurrent requests that arrive within one batch window share a
    single {!Rl.Agent.predict_batch} forward pass (phase B) and fan their
    compile-and-measure work across the {!Neurovec.Parpool} domains
    (phase C) — the daemon's throughput scales with [--jobs] while every
    answer stays bit-identical to the serial [neurovec predict] CLI.

    {b Robustness layers}, outermost first:

    - {e Load shedding.}  The queue is bounded; a full queue answers
      [`Overloaded] immediately — an explicit, structured reply, never a
      silent drop ({!Neurovec.Stats.record_serve_shed} counts them).
    - {e Circuit breaker}, per client: after [breaker_threshold]
      consecutive failures the client's breaker opens and its next
      [breaker_cooldown] requests are shed with [`Breaker_open]; the
      request after that is a half-open probe — success closes the
      breaker, failure re-opens it.  One pathological client cannot keep
      the pool busy failing.  Counts, not clocks, so the behaviour is
      deterministic under test.
    - {e Supervision}, per request: phase C runs under
      {!Neurovec.Supervisor.supervised} (deadline watchdog; a stalled
      evaluation dies as [`Hung]) and {!Neurovec.Supervisor.with_retries}
      (deterministic retry of transient faults, [`Transient] once the
      budget is exhausted).
    - {e Typed failure replies.}  Malformed frames, oversized programs,
      front-end rejections and injected faults all map to
      {!Protocol.Error} replies; no input can kill the daemon or the
      connection.
    - {e Graceful drain.}  {!stop} (the CLI wires it to SIGINT/SIGTERM
      via {!Neurovec.Supervisor.install_signal_handlers}) refuses new
      requests with [`Shutting_down], lets the batcher finish everything
      already queued, flushes the store, and returns — every accepted
      request gets its reply.

    {b Two-tier cache.}  With a [store_path], replies are recorded in the
    on-disk {!Store} keyed by (program content, pipeline options, kernel,
    model fingerprint).  A restarted daemon answers warm: a store hit
    skips the forward pass and the compile entirely and returns the
    recorded bytes verbatim — which is why warm answers are bit-identical
    to cold ones by construction.  Replies carry no cache-origin markers. *)

type mailbox = {
  mb_lock : Mutex.t;
  mb_cv : Condition.t;
  mutable mb_reply : Protocol.reply option;
}

type pending = {
  p_client : string;
  p_program : Dataset.Program.t;
  p_key : string;  (** content-addressed store key *)
  p_mb : mailbox;
}

(* Breaker per client.  [Open_ n]: shed the next [n] requests, then let
   one probe through ([Half_open]). *)
type breaker_state = Closed | Open_ of int | Half_open

type breaker = { mutable b_fails : int; mutable b_state : breaker_state }

type t = {
  agent : Rl.Agent.t;
  model_id : string;  (** fingerprint of the loaded weights, in store keys *)
  options : Neurovec.Pipeline.options;
  store : Store.t option;
  max_queue : int;
  max_batch : int;
  batch_window : float;
  breaker_threshold : int;  (** consecutive failures to trip; 0 disables *)
  breaker_cooldown : int;  (** requests shed while open before the probe *)
  report_every : float;  (** seconds between self-reports; 0 disables *)
  lock : Mutex.t;
  cv : Condition.t;
  queue : pending Queue.t;
  breakers : (string, breaker) Hashtbl.t;
  mutable stopping : bool;
  mutable batcher : Thread.t option;
  mutable last_report : float;
}

let model_fingerprint (agent : Rl.Agent.t) : string =
  Digest.to_hex (Digest.string (Marshal.to_string agent []))

let store_key_of ~(model_id : string)
    ~(options : Neurovec.Pipeline.options) (p : Dataset.Program.t) : string =
  Printf.sprintf "%s|%s|%s|model=%s"
    (Neurovec.Frontend.hash_program p)
    (Neurovec.Pipeline.options_key options)
    p.Dataset.Program.p_kernel model_id

(* ------------------------------------------------------------------ *)
(* The answer text                                                      *)
(* ------------------------------------------------------------------ *)

(* Byte-for-byte the output of the [neurovec predict] CLI for the same
   (program, checkpoint): per-loop decisions, the baseline/RL timing
   line, then the rewritten source.  The CI gate diffs the two, so any
   format change here must change the CLI too. *)
let answer_text ~(p : Dataset.Program.t)
    ~(decisions : (int * Minic.Ast.loop_pragma) list)
    ~(base : Neurovec.Pipeline.result) ~(rl : Neurovec.Pipeline.result) :
    string =
  let b = Buffer.create 1024 in
  List.iter
    (fun (ord, pr) ->
      Buffer.add_string b
        (Printf.sprintf "loop %d: VF=%d IF=%d\n" ord
           (Option.value pr.Minic.Ast.vectorize_width ~default:1)
           (Option.value pr.Minic.Ast.interleave_count ~default:1)))
    decisions;
  Buffer.add_string b
    (Printf.sprintf "baseline: %.3e s   RL: %.3e s   speedup %.2fx\n"
       base.Neurovec.Pipeline.exec_seconds rl.Neurovec.Pipeline.exec_seconds
       (base.Neurovec.Pipeline.exec_seconds
       /. rl.Neurovec.Pipeline.exec_seconds));
  Buffer.add_string b "rewritten source:\n";
  Buffer.add_string b
    (Neurovec.Injector.inject_source ~clear_others:true
       p.Dataset.Program.p_source ~decisions);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Mailboxes and breakers                                               *)
(* ------------------------------------------------------------------ *)

let deliver (mb : mailbox) (reply : Protocol.reply) : unit =
  Mutex.protect mb.mb_lock (fun () ->
      mb.mb_reply <- Some reply;
      Condition.broadcast mb.mb_cv)

let await (mb : mailbox) : Protocol.reply =
  Mutex.protect mb.mb_lock (fun () ->
      while mb.mb_reply = None do
        Condition.wait mb.mb_cv mb.mb_lock
      done;
      Option.get mb.mb_reply)

let breaker_of (t : t) (client : string) : breaker =
  match Hashtbl.find_opt t.breakers client with
  | Some b -> b
  | None ->
      let b = { b_fails = 0; b_state = Closed } in
      Hashtbl.replace t.breakers client b;
      b

(* called with t.lock held, before admission; [true] = shed this request *)
let breaker_sheds (t : t) (client : string) : bool =
  if t.breaker_threshold = 0 then false
  else
    let b = breaker_of t client in
    match b.b_state with
    | Closed -> false
    | Half_open -> true  (* a probe is already in flight *)
    | Open_ n when n > 0 ->
        b.b_state <- Open_ (n - 1);
        true
    | Open_ _ ->
        (* cooldown spent: this request is the half-open probe *)
        b.b_state <- Half_open;
        false

(* phase D, serial in the batcher: fold one outcome into the breaker *)
let breaker_outcome (t : t) (client : string) ~(ok : bool) : unit =
  if t.breaker_threshold > 0 then
    Mutex.protect t.lock (fun () ->
        let b = breaker_of t client in
        if ok then begin
          b.b_fails <- 0;
          b.b_state <- Closed
        end
        else begin
          b.b_fails <- b.b_fails + 1;
          match b.b_state with
          | Half_open ->
              (* the probe failed: straight back to open *)
              b.b_state <- Open_ t.breaker_cooldown
          | Closed when b.b_fails >= t.breaker_threshold ->
              b.b_state <- Open_ t.breaker_cooldown
          | Closed | Open_ _ -> ()
        end)

(* ------------------------------------------------------------------ *)
(* The batcher                                                          *)
(* ------------------------------------------------------------------ *)

let take_batch (t : t) : pending list option =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.cv t.lock
  done;
  if Queue.is_empty t.queue then begin
    Mutex.unlock t.lock;
    None  (* stopping, and fully drained *)
  end
  else begin
    Mutex.unlock t.lock;
    (* let concurrent submitters land in the same forward pass *)
    if t.batch_window > 0.0 then Thread.delay t.batch_window;
    Mutex.lock t.lock;
    let out = ref [] and n = ref 0 in
    while (not (Queue.is_empty t.queue)) && !n < t.max_batch do
      out := Queue.pop t.queue :: !out;
      incr n
    done;
    Mutex.unlock t.lock;
    Some (List.rev !out)
  end

(* one request's phase-A result *)
type staged =
  | Hit of Protocol.reply
      (** decoded from stored bytes; answers and typed errors alike are
          deterministic in the key, so both tiers cache both *)
  | Miss of
      Neurovec.Extractor.loop_site list * Embedding.Code2vec.ids array array
      (** loop sites and their encoded contexts, one row per site *)
  | Front_error of Protocol.error_kind * string

(* compile-and-measure one request under full supervision; pure except for
   Stats, so it can run on any pool domain *)
let measure_one (t : t) (p : pending)
    (decisions : (int * Minic.Ast.loop_pragma) list) :
    (string, Protocol.error_kind * string) result =
  let name = p.p_program.Dataset.Program.p_name in
  match
    Neurovec.Supervisor.supervised ~name (fun () ->
        Neurovec.Supervisor.with_retries (fun ~attempt ->
            let base =
              Neurovec.Pipeline.run_baseline ~options:t.options ~attempt
                p.p_program
            in
            let rl =
              Neurovec.Pipeline.run_with_decisions ~options:t.options
                ~attempt p.p_program ~decisions
            in
            answer_text ~p:p.p_program ~decisions ~base ~rl))
  with
  | text -> Ok text
  | exception Neurovec.Pipeline.Compile_error msg ->
      Error (`Compile_error, msg)
  | exception Neurovec.Supervisor.Hung msg -> Error (`Hung, msg)
  | exception Neurovec.Faults.Transient msg -> Error (`Transient, msg)
  | exception Verify.Tv.Miscompile msg -> Error (`Miscompiled, msg)
  | exception Neurovec.Faults.Fuel_exhausted msg -> Error (`Internal, msg)
  | exception Ir_interp.Trap msg -> Error (`Internal, msg)

let process_batch (t : t) (batch : pending list) : unit =
  (* ---- A: store probe + front end, serial (fast, cache-bound) ---- *)
  let staged =
    List.map
      (fun p ->
        let stored =
          match Option.map (fun s -> Store.get s p.p_key) t.store with
          | Some (Some bytes) -> (
              (* CRC guarded the bytes; decode failure would mean a format
                 skew across versions — recompute rather than trust *)
              match Protocol.decode_reply bytes with
              | reply -> Some reply
              | exception Protocol.Malformed _ -> None)
          | Some None | None -> None
        in
        match stored with
        | Some reply -> (p, Hit reply)
        | None -> (
            match Neurovec.Frontend.checked p.p_program with
            | a ->
                let sites =
                  Neurovec.Extractor.extract a.Neurovec.Frontend.a_ast
                in
                let ids =
                  Array.of_list
                    (List.map
                       (Neurovec.Framework.encode_site t.agent)
                       sites)
                in
                (p, Miss (sites, ids))
            | exception Neurovec.Pipeline.Compile_error msg ->
                (p, Front_error (`Compile_error, msg))))
      batch
  in
  (* ---- B: one forward pass over every site of every miss ---- *)
  let misses =
    List.filter_map
      (function p, Miss (sites, ids) -> Some (p, sites, ids) | _ -> None)
      staged
  in
  let decisions_of =
    if misses = [] then fun _ -> []
    else begin
      Neurovec.Stats.record_serve_batch (List.length misses);
      let all_ids =
        Array.concat (List.map (fun (_, _, ids) -> ids) misses)
      in
      let jobs = Neurovec.Parpool.jobs () in
      let acts =
        if jobs > 1 then
          Rl.Agent.predict_batch ~jobs
            ~map:(fun f xs -> Neurovec.Parpool.map f xs)
            t.agent all_ids
        else Rl.Agent.predict_batch t.agent all_ids
      in
      (* slice the flat action array back per request *)
      let offsets = Hashtbl.create 16 in
      let off = ref 0 in
      List.iter
        (fun (p, _, ids) ->
          Hashtbl.replace offsets p.p_key !off;
          off := !off + Array.length ids)
        misses;
      fun (p, sites, _) ->
        let base = Hashtbl.find offsets p.p_key in
        List.mapi
          (fun i (site : Neurovec.Extractor.loop_site) ->
            let act = acts.(base + i) in
            ( site.Neurovec.Extractor.ordinal,
              Neurovec.Injector.pragma_of
                ~vf:(Rl.Spaces.vf_of act)
                ~if_:(Rl.Spaces.if_of act) ))
          sites
    end
  in
  (* ---- C: compile/measure fan-out across the pool ---- *)
  let measured =
    Neurovec.Parpool.map
      (fun (p, sites, ids) -> measure_one t p (decisions_of (p, sites, ids)))
      (Array.of_list misses)
  in
  let results = Hashtbl.create 16 in
  List.iteri
    (fun i (p, _, _) -> Hashtbl.replace results p.p_key measured.(i))
    misses;
  (* ---- D: replies, store puts and breaker updates, in queue order ---- *)
  let finish (p : pending) ~(fresh : bool) (reply : Protocol.reply) : unit =
    let ok = match reply with Protocol.Answer _ -> true | _ -> false in
    if not ok then Neurovec.Stats.record_serve_failed ();
    (* both outcomes are pure functions of the key, so both persist: a
       restarted daemon answers known-bad programs warm too, without
       paying the stall deadline or the retry budget again *)
    if fresh then
      Option.iter
        (fun s -> Store.put s p.p_key (Protocol.encode_reply reply))
        t.store;
    breaker_outcome t p.p_client ~ok;
    deliver p.p_mb reply
  in
  List.iter
    (fun (p, st) ->
      match st with
      | Hit reply -> finish p ~fresh:false reply
      | Front_error (kind, msg) ->
          finish p ~fresh:true (Protocol.Error (kind, msg))
      | Miss _ -> (
          match Hashtbl.find results p.p_key with
          | Ok text -> finish p ~fresh:true (Protocol.Answer text)
          | Error (kind, msg) ->
              finish p ~fresh:true (Protocol.Error (kind, msg))))
    staged

let maybe_report (t : t) : unit =
  if t.report_every > 0.0 then begin
    let now = Unix.gettimeofday () in
    if now -. t.last_report >= t.report_every then begin
      t.last_report <- now;
      let s = Neurovec.Stats.snapshot () in
      Printf.eprintf
        "neurovec serve: %d accepted / %d shed / %d failed / %d retried; %d \
         batches (max %d); store %d hits / %d misses / %d CRC rejects\n%!"
        s.Neurovec.Stats.serve_accepted s.Neurovec.Stats.serve_shed
        s.Neurovec.Stats.serve_failed s.Neurovec.Stats.transient_retries
        s.Neurovec.Stats.serve_batches s.Neurovec.Stats.serve_batch_max
        s.Neurovec.Stats.store_hits s.Neurovec.Stats.store_misses
        s.Neurovec.Stats.store_crc_rejects
    end
  end

let batcher_loop (t : t) : unit =
  let rec loop () =
    match take_batch t with
    | None -> ()
    | Some batch ->
        process_batch t batch;
        maybe_report t;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)
(* ------------------------------------------------------------------ *)

(** Create a daemon around a loaded agent.  [store_path] enables the
    on-disk tier (recovering whatever a previous process left);
    [autostart:false] leaves the batcher unstarted so tests can fill the
    queue first ({!start} launches it). *)
let create ?(options = Neurovec.Pipeline.default_options) ?store_path
    ?(max_queue = 128) ?(max_batch = 32) ?(batch_window = 0.002)
    ?(breaker_threshold = 5) ?(breaker_cooldown = 8) ?(report_every = 0.0)
    ?(autostart = true) (agent : Rl.Agent.t) : t =
  let t =
    {
      agent;
      model_id = model_fingerprint agent;
      options;
      store = Option.map Store.open_store store_path;
      max_queue = max 1 max_queue;
      max_batch = max 1 max_batch;
      batch_window = max 0.0 batch_window;
      breaker_threshold = max 0 breaker_threshold;
      breaker_cooldown = max 1 breaker_cooldown;
      report_every = max 0.0 report_every;
      lock = Mutex.create ();
      cv = Condition.create ();
      queue = Queue.create ();
      breakers = Hashtbl.create 16;
      stopping = false;
      batcher = None;
      last_report = Unix.gettimeofday ();
    }
  in
  (match t.store with
  | Some s ->
      let ok, rejected, torn = Store.recovery s in
      if rejected > 0 || torn then
        Printf.eprintf
          "neurovec serve: store recovery: %d entries intact, %d \
           CRC-rejected%s (damaged log quarantined)\n%!"
          ok rejected
          (if torn then ", torn tail dropped" else "")
  | None -> ());
  if autostart then t.batcher <- Some (Thread.create batcher_loop t);
  t

(** Launch the batcher if it is not running (no-op otherwise). *)
let start (t : t) : unit =
  Mutex.protect t.lock (fun () ->
      if t.batcher = None && not t.stopping then
        t.batcher <- Some (Thread.create batcher_loop t))

(** Graceful drain: refuse new requests, finish everything queued, flush
    and close the store.  Every accepted request receives its reply
    before [stop] returns.  Idempotent. *)
let stop (t : t) : unit =
  let th =
    Mutex.protect t.lock (fun () ->
        t.stopping <- true;
        Condition.broadcast t.cv;
        let th = t.batcher in
        t.batcher <- None;
        th)
  in
  (match th with
  | Some th -> Thread.join th
  | None ->
      (* never started ([autostart:false]): drain whatever is queued
         inline — accepted requests get real replies even here *)
      batcher_loop t);
  Option.iter
    (fun s ->
      Store.flush s;
      Store.close s)
    t.store

(* ------------------------------------------------------------------ *)
(* Submission                                                           *)
(* ------------------------------------------------------------------ *)

(** Enqueue one vectorize request without waiting; the reply lands in the
    returned mailbox.  Shedding paths (drain, open breaker, full queue)
    resolve the mailbox immediately. *)
let submit (t : t) ~(client : string) ~(name : string) ~(kernel : string)
    ~(source : string) : mailbox =
  let mb =
    { mb_lock = Mutex.create (); mb_cv = Condition.create ();
      mb_reply = None }
  in
  let program = Dataset.Program.make ~kernel ~family:"serve" name source in
  let p =
    { p_client = client; p_program = program;
      p_key = store_key_of ~model_id:t.model_id ~options:t.options program;
      p_mb = mb }
  in
  let verdict =
    Mutex.protect t.lock (fun () ->
        if t.stopping then `Shed (`Shutting_down, "daemon is draining")
        else if breaker_sheds t client then
          `Shed
            ( `Breaker_open,
              Printf.sprintf
                "circuit breaker open for client %s (consecutive failures)"
                client )
        else if Queue.length t.queue >= t.max_queue then
          `Shed
            ( `Overloaded,
              Printf.sprintf "queue full (%d requests)" t.max_queue )
        else begin
          Queue.push p t.queue;
          Condition.signal t.cv;
          `Accepted
        end)
  in
  (match verdict with
  | `Accepted -> Neurovec.Stats.record_serve_accepted ()
  | `Shed (kind, msg) ->
      Neurovec.Stats.record_serve_shed ();
      deliver mb (Protocol.Error (kind, msg)));
  mb

(** Submit and wait: the in-process client the connection handlers, the
    tests and the bench all share. *)
let call (t : t) ~(client : string) ~(name : string) ~(kernel : string)
    ~(source : string) : Protocol.reply =
  await (submit t ~client ~name ~kernel ~source)

(** Answer one decoded request (the transport-independent dispatcher). *)
let answer (t : t) (req : Protocol.request) : Protocol.reply =
  match req with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Stats_req -> Protocol.Stats_reply (Neurovec.Stats.report ())
  | Protocol.Vectorize { v_client; v_name; v_kernel; v_source } ->
      call t ~client:v_client ~name:v_name ~kernel:v_kernel ~source:v_source

(* ------------------------------------------------------------------ *)
(* Transports                                                           *)
(* ------------------------------------------------------------------ *)

(* one channel-pair session: read frames, answer, until EOF or drain.
   Never raises on peer input. *)
let session (t : t) (ic : in_channel) (oc : out_channel) : unit =
  let write reply =
    try Protocol.write_frame oc (Protocol.encode_reply reply)
    with Sys_error _ -> ()  (* peer went away; nothing to tell it *)
  in
  let rec loop () =
    if Neurovec.Supervisor.shutdown_requested () then ()
    else
      match Protocol.read_frame ic with
      | Protocol.Eof -> ()
      | Protocol.Too_big n ->
          Neurovec.Stats.record_serve_shed ();
          write
            (Protocol.Error
               ( `Too_big,
                 Printf.sprintf "frame of %d bytes exceeds the %d limit" n
                   Protocol.max_frame ));
          loop ()
      | Protocol.Frame payload ->
          (match Protocol.decode_request payload with
          | req -> write (answer t req)
          | exception Protocol.Malformed msg ->
              Neurovec.Stats.record_serve_failed ();
              write (Protocol.Error (`Malformed, msg)));
          loop ()
  in
  loop ()

(** Serve a single client over stdin/stdout (the [--stdio] transport):
    frames in, frames out, until EOF or a shutdown signal; then drain. *)
let run_stdio (t : t) : unit =
  session t stdin stdout;
  stop t

(** Serve over a Unix-domain socket at [path] until a shutdown signal:
    each accepted connection gets a handler thread; on shutdown the
    listener closes, blocked reads are unblocked, in-flight requests
    finish, and the queue drains before returning. *)
let run_socket (t : t) ~(path : string) : unit =
  (try Sys.remove path with Sys_error _ -> ());
  Neurovec.Supervisor.mkdir_p (Filename.dirname path);
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  let conns_lock = Mutex.create () in
  let conns : (int, Unix.file_descr * Thread.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let next_conn = ref 0 in
  let handler id fd () =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (try session t ic oc with _ -> ());
    (try flush oc with Sys_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Mutex.protect conns_lock (fun () -> Hashtbl.remove conns id)
  in
  let rec accept_loop () =
    if Neurovec.Supervisor.shutdown_requested () then ()
    else begin
      (* the shutdown signal lands mid-select as EINTR: loop around and
         let the flag decide *)
      (match Unix.select [ sock ] [] [] 0.1 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [ _ ], _, _ -> (
          match Unix.accept sock with
          | fd, _ ->
              let id = !next_conn in
              incr next_conn;
              let th = Thread.create (handler id fd) () in
              Mutex.protect conns_lock (fun () ->
                  Hashtbl.replace conns id (fd, th))
          | exception Unix.Unix_error _ -> ())
      | _ -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Sys.remove path with Sys_error _ -> ());
  (* unblock handlers parked in read_frame; they finish their in-flight
     request (the write side stays open) and exit *)
  let live =
    Mutex.protect conns_lock (fun () ->
        Hashtbl.fold (fun _ c acc -> c :: acc) conns [])
  in
  List.iter
    (fun (fd, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    live;
  List.iter (fun (_, th) -> Thread.join th) live;
  stop t
