(** Crash-safe on-disk tier of the serve daemon's two-tier cache.

    The store is a content-addressed append-only log mapping request keys
    (program content hash + pipeline options + kernel + model fingerprint)
    to the exact reply bytes the daemon computed — so a restarted daemon
    answers warm requests {e bit-identically} to the cold run that
    populated it, without a forward pass or a compile.

    {b Layout.}  A text header line identifies the format, then records:

    {v
    "# neurovec-store 1\n"
    'R' u32 klen  u32 vlen  key-bytes  value-bytes  u32 crc32(key ^ value)
    v}

    (all integers big-endian; CRC32 is the checkpoint-v2 polynomial,
    {!Rl.Checkpoint.crc32}).

    {b Corruption contract.}  Loading never trusts a record it cannot
    prove whole:

    - A record whose CRC does not match is {e skipped} — the length
      fields still frame it, so later records survive a flipped byte.
      Each reject is counted ({!Stats.record_store_crc_reject}).
    - A torn tail — short read, unknown tag, or a length field that
      cannot be a record — ends the load: everything before it is kept,
      the tail is dropped.  This is the reward-journal torn-line rule
      applied to binary framing: a crash mid-append loses at most the
      record being appended.
    - If anything was rejected or torn, the damaged file is {e
      quarantined} (renamed to [<path>.quarantined], replacing any
      previous quarantine) and the surviving entries are rewritten
      through the checkpoint-v2 atomic temp+rename path, so the next
      load sees a clean log and the evidence is preserved for autopsy.

    Appends are first-wins (matching the in-memory caches: a key is
    computed once, re-puts are ignored) and flushed eagerly, so a SIGKILL
    loses at most the in-flight record.  All operations are mutex-guarded;
    the daemon's batcher and flush paths may touch the store from
    different threads. *)

let header = "# neurovec-store 1\n"

type t = {
  s_path : string;
  s_lock : Mutex.t;
  s_tbl : (string, string) Hashtbl.t;
  mutable s_oc : out_channel option;  (** append channel, open lazily *)
  mutable s_loaded : int;  (** intact records recovered at open *)
  mutable s_rejected : int;  (** CRC rejects at open *)
  mutable s_torn : bool;  (** load ended at a torn tail *)
}

let u32_bytes (n : int) : string =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.to_string b

let crc_bytes (key : string) (value : string) : string =
  let c = Rl.Checkpoint.crc32 (key ^ value) in
  let b = Bytes.create 4 in
  let u = Int32.to_int (Int32.shift_right_logical c 24) land 0xff in
  Bytes.set b 0 (Char.chr u);
  Bytes.set b 1
    (Char.chr (Int32.to_int (Int32.shift_right_logical c 16) land 0xff));
  Bytes.set b 2
    (Char.chr (Int32.to_int (Int32.shift_right_logical c 8) land 0xff));
  Bytes.set b 3 (Char.chr (Int32.to_int c land 0xff));
  Bytes.to_string b

let record_bytes (key : string) (value : string) : string =
  String.concat ""
    [ "R"; u32_bytes (String.length key); u32_bytes (String.length value);
      key; value; crc_bytes key value ]

(* bounds on a single field, to reject lengths that cannot be real
   records (a torn length field reads as garbage) *)
let max_field = Protocol.max_frame

(* ------------------------------------------------------------------ *)
(* Load + recovery                                                      *)
(* ------------------------------------------------------------------ *)

(* read the log at [path] into [tbl]; returns (records, crc_rejects,
   torn).  Never raises on file content — every malformation maps to a
   skip or a stop. *)
let load_into (tbl : (string, string) Hashtbl.t) (path : string) :
    int * int * bool =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let ok = ref 0 and rejected = ref 0 and torn = ref false in
  (match really_input_string ic (String.length header) with
  | h when h = header ->
      let read_u32 () =
        let b0 = input_char ic in
        let b1 = input_char ic in
        let b2 = input_char ic in
        let b3 = input_char ic in
        (Char.code b0 lsl 24) lor (Char.code b1 lsl 16)
        lor (Char.code b2 lsl 8) lor Char.code b3
      in
      let rec records () =
        match input_char ic with
        | exception End_of_file -> ()  (* clean end of log *)
        | 'R' -> (
            match
              let klen = read_u32 () in
              let vlen = read_u32 () in
              if klen < 0 || klen > max_field || vlen < 0 || vlen > max_field
              then raise End_of_file;  (* not a length: torn tail *)
              let key = really_input_string ic klen in
              let value = really_input_string ic vlen in
              let crc = really_input_string ic 4 in
              (key, value, crc)
            with
            | exception End_of_file -> torn := true
            | key, value, crc ->
                if crc = crc_bytes key value then begin
                  (* first-wins, matching the append-side contract *)
                  if not (Hashtbl.mem tbl key) then
                    Hashtbl.replace tbl key value;
                  incr ok
                end
                else begin
                  incr rejected;
                  Neurovec.Stats.record_store_crc_reject ()
                end;
                records ())
        | _ -> torn := true  (* unknown tag: framing lost, stop *)
      in
      records ()
  | _ -> torn := true  (* wrong or damaged header: keep nothing *)
  | exception End_of_file -> torn := true);
  (!ok, !rejected, !torn)

(* quarantine the damaged log and atomically rewrite the survivors, so
   the next open is clean and the evidence is preserved.  The rewrite is
   staged to a temp file (through the disk-fault layer) {e before} the
   damaged log is moved aside: an injected fault fails closed with the
   typed [Fsio.Disk_fault], the damaged-but-loadable log still in place
   for the retry. *)
let compact (t : t) : unit =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Hashtbl.iter (fun k v -> Buffer.add_string buf (record_bytes k v)) t.s_tbl;
  let tmp = t.s_path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try Fsio.output ~op:"store" ~path:t.s_path oc (Buffer.contents buf)
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  let quarantine = t.s_path ^ ".quarantined" in
  (try Sys.remove quarantine with Sys_error _ -> ());
  (try Sys.rename t.s_path quarantine
   with Sys_error _ -> () (* nothing to preserve *));
  Sys.rename tmp t.s_path

(** Open (creating if missing) the store at [path], recovering whatever
    the last process left: intact records load, corrupt ones are counted
    and dropped, and a damaged log is quarantined + compacted before the
    store accepts traffic. *)
let open_store (path : string) : t =
  Neurovec.Supervisor.mkdir_p (Filename.dirname path);
  (* a stale .tmp is a compaction interrupted by a kill: dead bytes,
     swept before anything reads — never replayed *)
  ignore (Fsio.sweep_tmp path);
  let t =
    { s_path = path; s_lock = Mutex.create (); s_tbl = Hashtbl.create 256;
      s_oc = None; s_loaded = 0; s_rejected = 0; s_torn = false }
  in
  if Sys.file_exists path then begin
    let ok, rejected, torn = load_into t.s_tbl path in
    t.s_loaded <- ok;
    t.s_rejected <- rejected;
    t.s_torn <- torn;
    if rejected > 0 || torn then compact t
  end
  else begin
    (* write the header through the atomic path so a half-created store
       never exists *)
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc header;
    close_out oc;
    Sys.rename tmp path
  end;
  t

let append_channel (t : t) : out_channel =
  match t.s_oc with
  | Some oc -> oc
  | None ->
      let oc =
        open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 t.s_path
      in
      t.s_oc <- Some oc;
      oc

(* ------------------------------------------------------------------ *)
(* Traffic                                                              *)
(* ------------------------------------------------------------------ *)

(** Cached reply bytes for [key], counting the hit or miss in {!Stats}. *)
let get (t : t) (key : string) : string option =
  let r = Mutex.protect t.s_lock (fun () -> Hashtbl.find_opt t.s_tbl key) in
  (match r with
  | Some _ -> Neurovec.Stats.record_store_hit ()
  | None -> Neurovec.Stats.record_store_miss ());
  r

(** Record [key -> value], appending and flushing one log record.
    First-wins: a key already present is left untouched (replies are pure
    functions of the key, so a re-put can only be the same bytes).

    The append goes through the disk-fault layer and fails closed: on an
    injected (or real) fault the log is truncated back to its pre-append
    length — a short write must not leave a torn record framing later
    appends out of reach — and the channel is dropped so the next put
    reopens and retries.  The in-memory tier still serves the value; only
    its durability is lost. *)
let put (t : t) (key : string) (value : string) : unit =
  Mutex.protect t.s_lock (fun () ->
      if not (Hashtbl.mem t.s_tbl key) then begin
        Hashtbl.replace t.s_tbl key value;
        let oc = append_channel t in
        (* every append is flushed, so file length = true append offset *)
        let before =
          try Some (Unix.stat t.s_path).Unix.st_size
          with Unix.Unix_error _ -> None
        in
        match Fsio.output ~op:"store" ~path:t.s_path oc (record_bytes key value) with
        | () -> ()
        | exception Fsio.Disk_fault _ ->
            Fsio.record_write_error ();
            close_out_noerr oc;
            t.s_oc <- None;
            (match before with
            | Some len -> ignore (Fsio.truncate_back t.s_path len)
            | None -> ())
      end)

let length (t : t) : int =
  Mutex.protect t.s_lock (fun () -> Hashtbl.length t.s_tbl)

(** Records recovered intact / CRC-rejected / torn-tail flag from the
    open-time load (for the daemon's startup banner and the tests). *)
let recovery (t : t) : int * int * bool =
  (t.s_loaded, t.s_rejected, t.s_torn)

let flush (t : t) : unit =
  Mutex.protect t.s_lock (fun () ->
      match t.s_oc with Some oc -> flush oc | None -> ())

let close (t : t) : unit =
  Mutex.protect t.s_lock (fun () ->
      (match t.s_oc with Some oc -> close_out_noerr oc | None -> ());
      t.s_oc <- None)
