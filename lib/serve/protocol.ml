(** Wire protocol for the [neurovec serve] daemon.

    Every message travels as one {e frame}: a 4-byte big-endian payload
    length followed by the payload.  Inside a frame, messages are a tag
    byte plus length-prefixed fields, so the codec needs no quoting and a
    reply can carry arbitrary program text verbatim.

    Robustness is part of the contract, not an afterthought:

    - {!read_frame} never raises on bad input from the peer.  A clean EOF
      at a frame boundary is [Eof]; an oversized length is [Too_big] — the
      payload is {e drained}, not trusted, so the stream stays framed and
      the daemon can answer with a typed error instead of dropping the
      connection; a length field that cannot describe a frame at all
      (negative when read signed) is treated as a torn stream and mapped
      to [Eof].
    - {!decode_request} / {!decode_reply} raise {!Malformed} — with a
      reason — on truncation, trailing garbage, unknown tags or absurd
      field lengths.  The server maps {!Malformed} to an [`Malformed]
      error reply; it never kills the connection.
    - Encoding then decoding any message is the identity (there is a
      qcheck property for this, including hostile inputs).

    The answer payload of a successful [Vectorize] request is byte-for-byte
    the text the [neurovec predict] CLI prints for the same program and
    checkpoint — that equality is what the CI warm-restart gate checks. *)

exception Malformed of string

(** Frames larger than this are refused with a typed [`Too_big] error
    (and drained, to keep the stream framed).  Generous for programs,
    small enough that a hostile length cannot balloon memory. *)
let max_frame = 4 * 1024 * 1024

type request =
  | Vectorize of {
      v_client : string;  (** stable client identity, for the breaker *)
      v_name : string;  (** program name (diagnostics only) *)
      v_kernel : string;  (** function to time *)
      v_source : string;  (** mini-C program text *)
    }
  | Ping
  | Stats_req  (** ask the daemon for its live counters report *)

(** Why a request failed; each constructor is a stable wire tag so clients
    can react (retry later on [`Overloaded], fix the program on
    [`Compile_error], back off on [`Breaker_open]). *)
type error_kind =
  [ `Malformed  (** the frame decoded to garbage *)
  | `Too_big  (** the frame exceeded {!max_frame} *)
  | `Compile_error  (** front end or pipeline rejected the program *)
  | `Overloaded  (** bounded queue full: explicit load shedding *)
  | `Breaker_open  (** this client's circuit breaker is open *)
  | `Hung  (** evaluation cancelled by the watchdog *)
  | `Transient  (** transient faults persisted past the retry budget *)
  | `Miscompiled
    (** the translation validator refuted the plan; message carries the
        minimized counterexample — never retried, the program is wrong
        under this transform no matter how often it is re-run *)
  | `Shutting_down  (** daemon is draining; request not accepted *)
  | `Internal  (** anything else; the daemon survived it *)
  ]

type reply =
  | Answer of string  (** exactly the [neurovec predict] output text *)
  | Error of error_kind * string
  | Pong
  | Stats_reply of string

(* ------------------------------------------------------------------ *)
(* Payload primitives                                                   *)
(* ------------------------------------------------------------------ *)

let put_u32 (b : Buffer.t) (n : int) : unit =
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff))

let put_str (b : Buffer.t) (s : string) : unit =
  put_u32 b (String.length s);
  Buffer.add_string b s

(* decode cursor over an immutable payload *)
type cursor = { c_buf : string; mutable c_pos : int }

let need (c : cursor) (n : int) (what : string) : unit =
  if n < 0 || c.c_pos + n > String.length c.c_buf then
    raise
      (Malformed
         (Printf.sprintf "truncated %s at offset %d (need %d of %d bytes)"
            what c.c_pos n
            (String.length c.c_buf - c.c_pos)))

let get_u32 (c : cursor) (what : string) : int =
  need c 4 what;
  let b i = Char.code c.c_buf.[c.c_pos + i] in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  c.c_pos <- c.c_pos + 4;
  n

let get_str (c : cursor) (what : string) : string =
  let n = get_u32 c (what ^ " length") in
  if n > max_frame then
    raise
      (Malformed (Printf.sprintf "absurd %s length %d" what n));
  need c n what;
  let s = String.sub c.c_buf c.c_pos n in
  c.c_pos <- c.c_pos + n;
  s

let get_tag (c : cursor) : char =
  need c 1 "tag";
  let t = c.c_buf.[c.c_pos] in
  c.c_pos <- c.c_pos + 1;
  t

let finish (c : cursor) (what : string) : unit =
  if c.c_pos <> String.length c.c_buf then
    raise
      (Malformed
         (Printf.sprintf "%d trailing bytes after %s"
            (String.length c.c_buf - c.c_pos)
            what))

(* ------------------------------------------------------------------ *)
(* Requests                                                             *)
(* ------------------------------------------------------------------ *)

let encode_request (r : request) : string =
  let b = Buffer.create 256 in
  (match r with
  | Vectorize { v_client; v_name; v_kernel; v_source } ->
      Buffer.add_char b 'V';
      put_str b v_client;
      put_str b v_name;
      put_str b v_kernel;
      put_str b v_source
  | Ping -> Buffer.add_char b 'P'
  | Stats_req -> Buffer.add_char b 'S');
  Buffer.contents b

let decode_request (payload : string) : request =
  let c = { c_buf = payload; c_pos = 0 } in
  let r =
    match get_tag c with
    | 'V' ->
        let v_client = get_str c "client" in
        let v_name = get_str c "name" in
        let v_kernel = get_str c "kernel" in
        let v_source = get_str c "source" in
        Vectorize { v_client; v_name; v_kernel; v_source }
    | 'P' -> Ping
    | 'S' -> Stats_req
    | t -> raise (Malformed (Printf.sprintf "unknown request tag %C" t))
  in
  finish c "request";
  r

(* ------------------------------------------------------------------ *)
(* Replies                                                              *)
(* ------------------------------------------------------------------ *)

let error_tag : error_kind -> char = function
  | `Malformed -> 'm'
  | `Too_big -> 'b'
  | `Compile_error -> 'c'
  | `Overloaded -> 'o'
  | `Breaker_open -> 'k'
  | `Hung -> 'h'
  | `Transient -> 't'
  | `Miscompiled -> 'v'
  | `Shutting_down -> 'd'
  | `Internal -> 'i'

let error_of_tag : char -> error_kind = function
  | 'm' -> `Malformed
  | 'b' -> `Too_big
  | 'c' -> `Compile_error
  | 'o' -> `Overloaded
  | 'k' -> `Breaker_open
  | 'h' -> `Hung
  | 't' -> `Transient
  | 'v' -> `Miscompiled
  | 'd' -> `Shutting_down
  | 'i' -> `Internal
  | t -> raise (Malformed (Printf.sprintf "unknown error kind %C" t))

(** Stable human-readable name, used in client-side diagnostics and the
    daemon log. *)
let error_name : error_kind -> string = function
  | `Malformed -> "malformed"
  | `Too_big -> "too-big"
  | `Compile_error -> "compile-error"
  | `Overloaded -> "overloaded"
  | `Breaker_open -> "breaker-open"
  | `Hung -> "hung"
  | `Transient -> "transient"
  | `Miscompiled -> "miscompiled"
  | `Shutting_down -> "shutting-down"
  | `Internal -> "internal"

let encode_reply (r : reply) : string =
  let b = Buffer.create 256 in
  (match r with
  | Answer text ->
      Buffer.add_char b 'A';
      put_str b text
  | Error (kind, msg) ->
      Buffer.add_char b 'E';
      Buffer.add_char b (error_tag kind);
      put_str b msg
  | Pong -> Buffer.add_char b 'P'
  | Stats_reply text ->
      Buffer.add_char b 'S';
      put_str b text);
  Buffer.contents b

let decode_reply (payload : string) : reply =
  let c = { c_buf = payload; c_pos = 0 } in
  let r =
    match get_tag c with
    | 'A' -> Answer (get_str c "answer")
    | 'E' ->
        let kind = error_of_tag (get_tag c) in
        Error (kind, get_str c "error message")
    | 'P' -> Pong
    | 'S' -> Stats_reply (get_str c "stats")
    | t -> raise (Malformed (Printf.sprintf "unknown reply tag %C" t))
  in
  finish c "reply";
  r

(* ------------------------------------------------------------------ *)
(* Frames                                                               *)
(* ------------------------------------------------------------------ *)

type frame_result =
  | Frame of string
  | Eof  (** peer closed (or the stream tore mid-frame) *)
  | Too_big of int  (** declared length; the payload has been drained *)

let write_frame (oc : out_channel) (payload : string) : unit =
  let n = String.length payload in
  output_char oc (Char.chr ((n lsr 24) land 0xff));
  output_char oc (Char.chr ((n lsr 16) land 0xff));
  output_char oc (Char.chr ((n lsr 8) land 0xff));
  output_char oc (Char.chr (n land 0xff));
  output_string oc payload;
  flush oc

(** Read one frame.  Never raises on peer input: clean EOF and mid-frame
    truncation both yield [Eof] (there is nothing left to answer to); a
    frame longer than {!max_frame} is drained in chunks and reported as
    [Too_big] so the caller can send a typed refusal and keep going. *)
let read_frame (ic : in_channel) : frame_result =
  match
    let b0 = input_char ic in
    let b1 = input_char ic in
    let b2 = input_char ic in
    let b3 = input_char ic in
    (Char.code b0 lsl 24) lor (Char.code b1 lsl 16) lor (Char.code b2 lsl 8)
    lor Char.code b3
  with
  | exception End_of_file -> Eof
  | n when n > max_frame ->
      (* drain without trusting the length to fit in memory at once *)
      let chunk = Bytes.create 65536 in
      let rec drain remaining =
        if remaining > 0 then begin
          let k = min remaining (Bytes.length chunk) in
          match really_input ic chunk 0 k with
          | () -> drain (remaining - k)
          | exception End_of_file -> ()
        end
      in
      drain n;
      Too_big n
  | n -> (
      match really_input_string ic n with
      | payload -> Frame payload
      | exception End_of_file -> Eof)
