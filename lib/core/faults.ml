(** Deterministic, seeded fault injection for the measurement pipeline.

    The paper's reward is a *measured* execution time on real hardware:
    compiles occasionally fail or blow the time budget, runs trap or hit
    resource limits, and every timing sample carries multiplicative noise
    with the occasional heavy-tailed spike (a context switch, a frequency
    transition).  This module reproduces those conditions on demand so the
    training loop, the reward oracle and the experiment drivers can be
    hardened against them — and *tested* against them, because every fault
    is a deterministic function of the spec seed.

    Two kinds of randomness, deliberately different:

    - {b Discrete faults} (compile failure, runtime trap, fuel exhaustion,
      compile-time spike) are keyed by [hash(seed, key, kind)], where [key]
      identifies the (program, decision) being evaluated.  The same seed
      and key always give the same outcome, independent of evaluation
      order, so a fault is a persistent property of a measurement point —
      exactly like a program that deterministically fails to compile under
      a specific pragma — and cached rewards never disagree with a re-run.
    - {b Timing noise} is keyed by [hash(seed, key, sample)], where
      [sample] numbers the median-of-k resamples of one measurement point:
      repeated measurements of the same point differ (that is the point:
      the oracle must median them away) while each individual sample is a
      pure function of the spec — so a run at a fixed seed is reproducible
      end to end {e independent of evaluation order}, which is what lets
      {!Parpool} fan measurements across domains without changing a single
      cached reward bit.
    - {b Transient faults} are keyed by [hash(seed, key, attempt)]: the
      same measurement point can fail on its first attempt and succeed on
      a retry (a flaky testbed node, an NFS hiccup), and whether it does
      is a pure function of the spec — so the supervisor's
      retry-with-backoff loop converges to the same outcome at any pool
      size.  Contrast with the discrete faults above, which are persistent
      properties of the point: retrying them is pointless and the
      supervisor sends them straight to the penalty path.
    - {b Stalls} ([hash(seed, key, "stall")]) mark evaluations that would
      hang past any deadline (a wedged testbed); {!Pipeline} turns them
      into a cooperative wait at [Supervisor.stall_point] that only the
      watchdog can end, surfacing the [Hung] reward failure.

    Off by default ([none]); enable via [Pipeline.options] or the
    [NEUROVEC_FAULTS] environment variable, e.g.
    [NEUROVEC_FAULTS="seed=7,compile=0.05,trap=0.03,fuel=0.02,timeout=0.02,stall=0.02,transient=0.1,noise=0.1,tail=0.02"]. *)

type fault = Compile_fault | Trap_fault | Fuel_fault

type spec = {
  f_seed : int;
  p_compile : float;  (** probability an evaluation fails to compile *)
  p_trap : float;  (** probability the measured run traps *)
  p_fuel : float;  (** probability the run exhausts its interpreter fuel *)
  p_timeout : float;
      (** probability compile time spikes far past the 10x budget *)
  noise : float;  (** sigma of multiplicative lognormal timing noise *)
  p_tail : float;  (** per-sample probability of a heavy-tailed spike *)
  p_stall : float;
      (** probability an evaluation hangs until the watchdog cancels it *)
  p_transient : float;
      (** per-attempt probability of a retryable transient failure *)
  p_miscompile : float;
      (** probability the transform silently miscompiles a point — only
          observable when translation validation ([--verify]) runs, which
          then refutes the point with a counterexample *)
  p_disk_full : float;
      (** per-attempt probability a durable write fails with ENOSPC
          before any byte lands (see {!Fsio}) *)
  p_disk_err : float;  (** per-attempt probability of an EIO-style failure *)
  p_short_write : float;
      (** per-attempt probability a durable write tears: a prefix lands
          on disk, then the error surfaces *)
  p_nan_grad : float;
      (** per-update probability a gradient is poisoned to NaN right
          before the optimizer step — the numeric-health sentinels in
          {!Rl.Ppo.train} must catch it and roll back *)
}

(** Stands in for an interpreter/testbed resource limit; converted to the
    [Fuel_exhausted] reward failure by {!Reward}. *)
exception Fuel_exhausted of string

(** A retryable testbed failure: re-running the same evaluation may
    succeed ({!transient_hit} is keyed by the attempt index).  Raised by
    {!Pipeline} before any work happens; caught by the supervisor's retry
    loop, and converted to the [Transient] reward failure once the retry
    budget is exhausted. *)
exception Transient of string

let create ?(seed = 0) ?(compile = 0.0) ?(trap = 0.0) ?(fuel = 0.0)
    ?(timeout = 0.0) ?(noise = 0.0) ?(tail = 0.0) ?(stall = 0.0)
    ?(transient = 0.0) ?(miscompile = 0.0) ?(disk_full = 0.0)
    ?(disk_err = 0.0) ?(short_write = 0.0) ?(nan_grad = 0.0) () : spec =
  { f_seed = seed; p_compile = compile; p_trap = trap; p_fuel = fuel;
    p_timeout = timeout; noise; p_tail = tail; p_stall = stall;
    p_transient = transient; p_miscompile = miscompile;
    p_disk_full = disk_full; p_disk_err = disk_err;
    p_short_write = short_write; p_nan_grad = nan_grad }

let none = create ()

let noisy (s : spec) : bool = s.noise > 0.0 || s.p_tail > 0.0

let discrete (s : spec) : bool =
  s.p_compile > 0.0 || s.p_trap > 0.0 || s.p_fuel > 0.0 || s.p_timeout > 0.0
  || s.p_stall > 0.0 || s.p_transient > 0.0 || s.p_miscompile > 0.0

let active (s : spec) : bool = discrete s || noisy s

(* the disk and nan_grad knobs are deliberately excluded from [discrete],
   [active] and [descriptor]: they perturb the *durability and training*
   layers, never a measured reward, so reward-cache keys (and the golden
   files keyed by them) must not change when they are turned on *)
let disk_active (s : spec) : bool =
  s.p_disk_full > 0.0 || s.p_disk_err > 0.0 || s.p_short_write > 0.0

(** Cache-key fragment; empty for an inactive spec so fault-free runs keep
    their original reward-cache keys.  The stall/transient rates only
    appear when nonzero, so specs that predate them keep their keys. *)
let descriptor (s : spec) : string =
  if not (active s) then ""
  else
    Printf.sprintf "|faults=%d:%g,%g,%g,%g,%g,%g%s%s" s.f_seed s.p_compile
      s.p_trap s.p_fuel s.p_timeout s.noise s.p_tail
      (if s.p_stall > 0.0 || s.p_transient > 0.0 then
         Printf.sprintf ",st=%g,tr=%g" s.p_stall s.p_transient
       else "")
      (if s.p_miscompile > 0.0 then Printf.sprintf ",mc=%g" s.p_miscompile
       else "")

(** Uniform in [0, 1) as a pure function of (seed, key, salt). *)
let hash01 (s : spec) ~(key : string) ~(salt : string) : float =
  let d =
    Digest.string (Printf.sprintf "%d\x00%s\x00%s" s.f_seed key salt)
  in
  let acc = ref 0.0 in
  for i = 0 to 6 do
    acc := (!acc *. 256.0) +. float_of_int (Char.code d.[i])
  done;
  !acc /. (256.0 ** 7.0)

(** The discrete fault (if any) injected into the evaluation identified by
    [key]; deterministic per (seed, key). *)
let pick (s : spec) ~(key : string) : fault option =
  if s.p_compile > 0.0 && hash01 s ~key ~salt:"compile" < s.p_compile then
    Some Compile_fault
  else if s.p_trap > 0.0 && hash01 s ~key ~salt:"trap" < s.p_trap then
    Some Trap_fault
  else if s.p_fuel > 0.0 && hash01 s ~key ~salt:"fuel" < s.p_fuel then
    Some Fuel_fault
  else None

(** Whether the evaluation identified by [key] suffers a transient fault
    on its [attempt]-th try (0-based).  Pure in (seed, key, attempt):
    unlike {!pick}'s persistent faults, the same point can fail at
    attempt 0 and succeed at attempt 1, so a deterministic retry loop can
    recover — and recovers identically at any pool size. *)
let transient_hit (s : spec) ~(key : string) ~(attempt : int) : bool =
  s.p_transient > 0.0
  && hash01 s ~key ~salt:(Printf.sprintf "transient\x00%d" attempt)
     < s.p_transient

(** Whether the transform of the point identified by [key] is sabotaged —
    the translation validator deterministically corrupts one memory cell of
    the transformed run before comparing, standing in for a real compiler
    bug.  Keyed by the (program, applied plan) content key rather than the
    per-action fault key, so every action that clamps to the same applied
    plan shares one verdict, exactly like an honest miscompile would. *)
let miscompile_hit (s : spec) ~(key : string) : bool =
  s.p_miscompile > 0.0 && hash01 s ~key ~salt:"miscompile" < s.p_miscompile

(** Whether the evaluation identified by [key] stalls (would hang past any
    deadline); deterministic per (seed, key), like {!pick}'s faults. *)
let stall_hit (s : spec) ~(key : string) : bool =
  s.p_stall > 0.0 && hash01 s ~key ~salt:"stall" < s.p_stall

(** Whether the gradient of policy update [update] is poisoned to NaN.
    Pure in (seed, update, rollbacks): update indices are
    schedule-independent, so the sentinel trips at the identical update at
    any pool size — and keying by the rollback count means the {e replay}
    of a poisoned update after the automatic rollback is clean, so
    recovery converges instead of re-tripping forever. *)
let nan_grad_hit (s : spec) ~(update : int) ~(rollbacks : int) : bool =
  s.p_nan_grad > 0.0
  && hash01 s
       ~key:(Printf.sprintf "update=%d" update)
       ~salt:(Printf.sprintf "nan_grad\x00%d" rollbacks)
     < s.p_nan_grad

(** Install the spec's disk-fault layer into {!Fsio}, so every durable
    writer (checkpoint, reward journal, serve store) sees its per-attempt
    ENOSPC/EIO/short-write failures.  Each decision is pure in
    (seed, operation, file basename, attempt index): deterministic at any
    pool size, and transient — the same logical write can fail now and
    succeed on retry.  A spec with no disk knobs uninstalls the layer. *)
let install_disk (s : spec) : unit =
  if not (disk_active s) then Fsio.set_injector None
  else
    Fsio.set_injector
      (Some
         (fun ~op ~path ~index ->
           let key =
             Printf.sprintf "%s\x00%s\x00%d" op (Filename.basename path)
               index
           in
           if s.p_disk_full > 0.0 && hash01 s ~key ~salt:"disk_full" < s.p_disk_full
           then Some Fsio.Disk_full
           else if
             s.p_disk_err > 0.0 && hash01 s ~key ~salt:"disk_err" < s.p_disk_err
           then Some Fsio.Disk_err
           else if
             s.p_short_write > 0.0
             && hash01 s ~key ~salt:"short_write" < s.p_short_write
           then Some Fsio.Short_write
           else None))

(** Multiplier on simulated compile time; 25x (deterministically per key)
    with probability [p_timeout], which sails past the oracle's 10x budget
    and triggers the paper's -9 penalty path. *)
let timeout_multiplier (s : spec) ~(key : string) : float =
  if s.p_timeout > 0.0 && hash01 s ~key ~salt:"timeout" < s.p_timeout then
    25.0
  else 1.0

(** Multiplier on one timing sample: lognormal noise, plus a Pareto-ish
    spike (up to ~80x) with probability [p_tail].  Pure in
    (seed, key, sample): the [sample] index distinguishes the median-of-k
    resamples of one measurement point, so samples differ from each other
    but never depend on what other domains measured in between. *)
let noise_factor (s : spec) ~(key : string) ~(sample : int) : float =
  if not (noisy s) then 1.0
  else begin
    let d =
      Digest.string
        (Printf.sprintf "%d\x00%s\x00noise\x00%d" s.f_seed key sample)
    in
    let seed = ref 0 in
    for i = 0 to 6 do
      seed := (!seed lsl 8) lor Char.code d.[i]
    done;
    let rng = Nn.Rng.create !seed in
    let f =
      if s.noise > 0.0 then exp (s.noise *. Nn.Rng.normal rng) else 1.0
    in
    if s.p_tail > 0.0 && Nn.Rng.float rng < s.p_tail then
      f *. (1.0 +. (4.0 /. max 0.05 (Nn.Rng.float rng)))
    else f
  end

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

(** Parse a ["k=v,k=v"] spec string (keys: seed, compile, trap, fuel,
    timeout, noise, tail, stall, transient, miscompile, disk_full,
    disk_err, short_write, nan_grad).  Unknown keys and unparseable
    values are reported in the warnings list and otherwise ignored. *)
let of_string (text : string) : spec * string list =
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
  let spec =
    List.fold_left
      (fun s field ->
        let field = String.trim field in
        if field = "" then s
        else
          match String.index_opt field '=' with
          | None ->
              warn "ignoring field %S (expected key=value)" field;
              s
          | Some i -> (
              let k = String.sub field 0 i in
              let v =
                String.sub field (i + 1) (String.length field - i - 1)
              in
              let fl () =
                match float_of_string_opt v with
                | Some f when f >= 0.0 -> Some f
                | _ ->
                    warn "ignoring %s=%S (expected a non-negative number)" k v;
                    None
              in
              match k with
              | "seed" -> (
                  match int_of_string_opt v with
                  | Some n -> { s with f_seed = n }
                  | None ->
                      warn "ignoring seed=%S (expected an integer)" v;
                      s)
              | "compile" -> (
                  match fl () with
                  | Some f -> { s with p_compile = f }
                  | None -> s)
              | "trap" -> (
                  match fl () with Some f -> { s with p_trap = f } | None -> s)
              | "fuel" -> (
                  match fl () with Some f -> { s with p_fuel = f } | None -> s)
              | "timeout" -> (
                  match fl () with
                  | Some f -> { s with p_timeout = f }
                  | None -> s)
              | "noise" -> (
                  match fl () with Some f -> { s with noise = f } | None -> s)
              | "tail" -> (
                  match fl () with Some f -> { s with p_tail = f } | None -> s)
              | "stall" -> (
                  match fl () with
                  | Some f -> { s with p_stall = f }
                  | None -> s)
              | "transient" -> (
                  match fl () with
                  | Some f -> { s with p_transient = f }
                  | None -> s)
              | "miscompile" -> (
                  match fl () with
                  | Some f -> { s with p_miscompile = f }
                  | None -> s)
              | "disk_full" -> (
                  match fl () with
                  | Some f -> { s with p_disk_full = f }
                  | None -> s)
              | "disk_err" -> (
                  match fl () with
                  | Some f -> { s with p_disk_err = f }
                  | None -> s)
              | "short_write" -> (
                  match fl () with
                  | Some f -> { s with p_short_write = f }
                  | None -> s)
              | "nan_grad" -> (
                  match fl () with
                  | Some f -> { s with p_nan_grad = f }
                  | None -> s)
              | _ ->
                  warn "ignoring unknown key %S" k;
                  s))
      none
      (String.split_on_char ',' text)
  in
  (spec, List.rev !warnings)

(** The spec selected by [NEUROVEC_FAULTS] ({!none} when unset); parse
    warnings — unknown keys, unparseable values — go to stderr rather than
    being silently swallowed, and are printed once per process (matching
    the [NEUROVEC_SCALE] behaviour) even when every sweep re-reads the
    spec.  The environment is read on first use and memoized. *)
let env_spec : spec Lazy.t =
  lazy
    (match Sys.getenv_opt "NEUROVEC_FAULTS" with
    | None | Some "" -> none
    | Some text ->
        let spec, warnings = of_string text in
        List.iter
          (fun w -> Printf.eprintf "neurovec: NEUROVEC_FAULTS: %s\n%!" w)
          warnings;
        spec)

let of_env () : spec = Lazy.force env_spec
