(** Supervision for the evaluation/training stack: watchdogs, deterministic
    retries, circuit-breaker configuration and graceful shutdown.

    The reward oracle turns thousands of compile-and-measure episodes into
    training signal; on a real testbed some of those episodes hang, some
    fail transiently, and long unattended runs get SIGTERMed.  This module
    is the layer that keeps one bad episode from taking the run down:

    - {b Watchdog.}  {!supervised} registers an evaluation with a monitor
      thread that flags any task still running past the {!deadline}.  The
      flag is {e cooperative}: it is only observed at {!stall_point}, the
      wait that {!Pipeline} enters when the fault spec injects a stall —
      so a slow-but-honest evaluation is never killed mid-measurement
      (which would make results depend on machine load), while a stalled
      one always dies with {!Hung} after roughly one deadline.  Outcomes
      are therefore a pure function of the fault spec: stalled points hang
      and get cancelled, everything else completes normally, at any pool
      size.

    - {b Retries.}  {!with_retries} re-runs an evaluation whose attempt
      raised {!Faults.Transient}, up to {!max_retries} times with a short
      exponential backoff.  Transient faults are keyed by
      [hash(seed, key, attempt)] (see {!Faults.transient_hit}), so whether
      attempt [k] fails is deterministic and the final outcome — success
      on some attempt, or exhaustion — is bit-identical between [--jobs 1]
      and [--jobs N].  Persistent faults are not retried: they re-raise
      immediately and trip straight to the penalty path.

    - {b Circuit breaker.}  {!breaker_window} configures how many actions
      {!Reward.brute_force} probes before writing off a program whose
      every probe failed (quarantine with a structured report) instead of
      re-evaluating a poisoned program 35 times per sweep.  The window is
      a fixed prefix in fixed action order, so trips are deterministic
      across schedules.

    - {b Graceful shutdown.}  {!install_signal_handlers} converts the
      first SIGINT/SIGTERM into a {!shutdown_requested} flag that
      [Ppo.train]'s [?stop] hook polls at update boundaries: in-flight
      work finishes, an atomic checkpoint and the write-ahead reward
      journal are flushed, and the run resumes bit-exactly via
      [--resume].  A second SIGINT exits immediately.

    Configuration: [--deadline] / [NEUROVEC_DEADLINE] (seconds),
    [--max-retries] / [NEUROVEC_MAX_RETRIES], [NEUROVEC_BREAKER]
    (actions; 0 disables the breaker). *)

exception Hung of string

(* ------------------------------------------------------------------ *)
(* Configuration                                                        *)
(* ------------------------------------------------------------------ *)

let env_float (name : string) : float option =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0.0 -> Some f
      | _ ->
          Printf.eprintf
            "neurovec: unparseable %s=%S, using the default\n%!" name s;
          None)

let env_int (name : string) : int option =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> Some n
      | _ ->
          Printf.eprintf
            "neurovec: unparseable %s=%S, using the default\n%!" name s;
          None)

let deadline_ref : float option ref = ref None
let env_deadline = lazy (env_float "NEUROVEC_DEADLINE")

(** Per-task wall-clock budget in seconds before the watchdog cancels a
    stalled evaluation.  Always finite, so a run under stall faults is
    always bounded. *)
let deadline () : float =
  match !deadline_ref with
  | Some d -> d
  | None -> Option.value (Lazy.force env_deadline) ~default:2.0

let set_deadline (d : float) : unit = deadline_ref := Some (max 1e-3 d)

let retries_ref : int option ref = ref None
let env_retries = lazy (env_int "NEUROVEC_MAX_RETRIES")

(** Retries granted to an evaluation whose attempt failed transiently
    (so a point is tried at most [1 + max_retries ()] times). *)
let max_retries () : int =
  match !retries_ref with
  | Some n -> n
  | None -> Option.value (Lazy.force env_retries) ~default:3

let set_max_retries (n : int) : unit = retries_ref := Some (max 0 n)

let breaker_ref : int option ref = ref None
let env_breaker = lazy (env_int "NEUROVEC_BREAKER")

(** Actions {!Reward.brute_force} probes before tripping the per-program
    circuit breaker when all of them failed; 0 disables the breaker. *)
let breaker_window () : int =
  match !breaker_ref with
  | Some n -> n
  | None -> Option.value (Lazy.force env_breaker) ~default:5

let set_breaker_window (n : int) : unit = breaker_ref := Some (max 0 n)

(* base of the exponential retry backoff; kept tiny (the faults are
   simulated) and overridable so tests can zero it *)
let backoff_ref : float ref = ref 0.002

let set_retry_backoff (s : float) : unit = backoff_ref := max 0.0 s

(* ------------------------------------------------------------------ *)
(* Watchdog                                                             *)
(* ------------------------------------------------------------------ *)

type task = {
  t_name : string;
  t_start : float;
  t_cancel : bool Atomic.t;
}

let registry_lock = Mutex.create ()
let registry : (int, task) Hashtbl.t = Hashtbl.create 32
let next_id = Atomic.make 0

(* The monitor runs as a thread of the main domain: systhreads preempt
   within a domain (so it ticks even while a jobs=1 sweep computes) and
   run concurrently with Parpool's worker domains.  It only ever reads
   the registry and flips cancel flags — all counters are recorded by the
   cancelled task itself, in its own domain, so Stats stay race-free. *)
let monitor_started = ref false

let scan () =
  let now = Unix.gettimeofday () in
  let d = deadline () in
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter
        (fun _ t ->
          if now -. t.t_start > d then Atomic.set t.t_cancel true)
        registry)

let ensure_monitor () =
  (* never create the thread inside a pool worker: the monitor loops for
     the life of the process, and a worker domain cannot join while one
     of its threads is still running.  Workers fall back on the
     self-observed deadline in [stall_point]; the thread gets created by
     the next main-domain evaluation. *)
  if not (Parpool.in_pool_worker ()) then
    Mutex.protect registry_lock (fun () ->
        if not !monitor_started then begin
          monitor_started := true;
          ignore
            (Thread.create
               (fun () ->
                 while true do
                   Thread.delay (max 0.002 (deadline () /. 4.0));
                   scan ()
                 done)
               ())
        end)

let register (name : string) : int * task =
  let t =
    { t_name = name; t_start = Unix.gettimeofday ();
      t_cancel = Atomic.make false }
  in
  let id = Atomic.fetch_and_add next_id 1 in
  Mutex.protect registry_lock (fun () -> Hashtbl.replace registry id t);
  (id, t)

let unregister (id : int) : unit =
  Mutex.protect registry_lock (fun () -> Hashtbl.remove registry id)

(* the evaluation this domain is currently running under [supervised] *)
let current_task : task option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(** Run one evaluation under the watchdog: while [f] runs, the monitor
    thread will flag the task if it outlives the {!deadline}.  The flag
    only takes effect at {!stall_point} — supervision never preempts
    honest work, so results stay schedule-independent. *)
let supervised ~(name : string) (f : unit -> 'a) : 'a =
  ensure_monitor ();
  let id, t = register name in
  let saved = Domain.DLS.get current_task in
  Domain.DLS.set current_task (Some t);
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set current_task saved;
      unregister id)
    f

(** The cooperative cancellation point entered when the fault spec stalls
    an evaluation ({!Faults.stall_hit}): wait until the watchdog cancels
    the enclosing task (registering a fresh one when called outside
    {!supervised}), then raise {!Hung}.  The wait also self-observes the
    deadline against the task's own start time, so a stall inside a pool
    worker — where the monitor thread cannot live — resolves after the
    same deadline; the outcome, {!Hung}, is identical either way. *)
let stall_point ~(name : string) : 'a =
  ensure_monitor ();
  let id, t =
    match Domain.DLS.get current_task with
    | Some t -> (-1, t)
    | None -> register name
  in
  let rec wait () =
    if Atomic.get t.t_cancel then ()
    else if Unix.gettimeofday () -. t.t_start > deadline () then ()
    else begin
      Thread.delay 0.001;
      wait ()
    end
  in
  wait ();
  if id >= 0 then unregister id;
  Stats.record_watchdog_cancel ();
  raise
    (Hung
       (Printf.sprintf
          "%s: injected fault: stalled evaluation cancelled by the \
           watchdog after the %.3gs deadline"
          name (deadline ())))

(* ------------------------------------------------------------------ *)
(* Deterministic retries                                                *)
(* ------------------------------------------------------------------ *)

(** Run [f ~attempt:0]; while it raises {!Faults.Transient} and the retry
    budget allows, back off briefly and re-run with the next attempt
    index.  Because transient faults are pure in (seed, key, attempt),
    the attempt at which a point succeeds — or the decision to give up —
    is deterministic; the backoff only spends wall time, never changes
    results.  Once the budget is exhausted the last {!Faults.Transient}
    is re-raised for the caller to classify as a persistent failure. *)
let with_retries (f : attempt:int -> 'a) : 'a =
  let budget = max_retries () in
  let rec go attempt =
    try f ~attempt
    with Faults.Transient msg ->
      if attempt >= budget then
        raise
          (Faults.Transient
             (Printf.sprintf "%s (%d attempt%s exhausted)" msg (attempt + 1)
                (if attempt = 0 then "" else "s")))
      else begin
        Stats.record_transient_retry ();
        let pause = !backoff_ref *. (2.0 ** float_of_int attempt) in
        if pause > 0.0 then Thread.delay (min pause 0.05);
        go (attempt + 1)
      end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Graceful shutdown                                                    *)
(* ------------------------------------------------------------------ *)

let shutdown : bool Atomic.t = Atomic.make false

let request_shutdown () : unit = Atomic.set shutdown true

(** Polled by [Ppo.train]'s [?stop] hook at update boundaries. *)
let shutdown_requested () : bool = Atomic.get shutdown

(** For tests: forget a previous shutdown request. *)
let reset_shutdown () : unit = Atomic.set shutdown false

(* Installing handlers must compose: a serve daemon installs them for its
   drain, a train run launched under it installs them again, and repeated
   serve sessions in one process (the tests) install and tear down
   several times.  A naive [Sys.set_signal] clobbers whatever handler the
   host had and can never give it back, so installation is refcounted —
   the first install displaces the previous behaviours and remembers
   them, later installs only deepen the count — and the graceful handler
   {e chains} to the displaced handler, so supervision adds shutdown
   semantics on top of the host's instead of replacing them. *)

let install_lock = Mutex.create ()
let install_depth = ref 0

(* behaviours displaced by the first install, restored by the last
   uninstall; (sigint, sigterm) *)
let displaced : (Sys.signal_behavior * Sys.signal_behavior) option ref =
  ref None

let chain (signal : int) : unit =
  match !displaced with
  | None -> ()
  | Some (for_int, for_term) -> (
      match if signal = Sys.sigint then for_int else for_term with
      | Sys.Signal_handle f -> ( try f signal with _ -> ())
      | Sys.Signal_default | Sys.Signal_ignore -> ())

let graceful (signal : int) : unit =
  if Atomic.get shutdown then exit 130
  else begin
    Atomic.set shutdown true;
    prerr_endline
      "neurovec: shutdown requested; finishing the in-flight work \
       (interrupt again to exit now)";
    chain signal
  end

(** Install SIGINT/SIGTERM handlers for a long-running session (training,
    serving): the first signal requests a graceful shutdown — finish the
    in-flight work, flush checkpoints/journals/stores, exit cleanly — and
    a second signal exits immediately with the conventional 130.
    Installation is refcounted and composes: a second install (a train
    run under a serve daemon, repeated serve sessions) deepens the count
    instead of clobbering, the handler chains to whatever handler it
    displaced, and {!uninstall_signal_handlers} restores the displaced
    behaviour once the count drains to zero. *)
let install_signal_handlers () : unit =
  Mutex.protect install_lock (fun () ->
      incr install_depth;
      if !install_depth = 1 then
        try
          let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle graceful) in
          let prev_term =
            Sys.signal Sys.sigterm (Sys.Signal_handle graceful)
          in
          displaced := Some (prev_int, prev_term)
        with Invalid_argument _ | Sys_error _ -> displaced := None)

(** Undo one {!install_signal_handlers}; the displaced SIGINT/SIGTERM
    behaviours are restored when the last install is undone.  Extra calls
    are ignored. *)
let uninstall_signal_handlers () : unit =
  Mutex.protect install_lock (fun () ->
      if !install_depth > 0 then begin
        decr install_depth;
        if !install_depth = 0 then begin
          (match !displaced with
          | None -> ()
          | Some (for_int, for_term) -> (
              try
                Sys.set_signal Sys.sigint for_int;
                Sys.set_signal Sys.sigterm for_term
              with Invalid_argument _ | Sys_error _ -> ()));
          displaced := None
        end
      end)

(* ------------------------------------------------------------------ *)
(* Filesystem helpers                                                   *)
(* ------------------------------------------------------------------ *)

(** [mkdir_p path]: create [path] and any missing parents (like
    [mkdir -p]).  Raises [Sys_error] with a clear message when a path
    component already exists but is not a directory. *)
let rec mkdir_p (path : string) : unit =
  if path = "" || path = "." || path = "/" || Filename.basename path = path
     && Filename.dirname path = path
  then ()
  else if Sys.file_exists path then begin
    if not (Sys.is_directory path) then
      raise
        (Sys_error
           (Printf.sprintf "%s exists but is not a directory" path))
  end
  else begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.file_exists path && Sys.is_directory path ->
      (* a concurrent creator won the race; that's fine *)
      ()
  end
