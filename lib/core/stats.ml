(** Pipeline instrumentation: per-phase wall time, cache hit/miss counters
    and evaluation counts for the compile-and-measure oracle.

    The reward oracle dominates training cost (every PPO step, brute-force
    sweep, NNS probe and decision-tree label goes through the pipeline), so
    speedups there must be observable, not asserted.  This module is the
    single global scoreboard: {!Frontend} and {!Pipeline} record phase
    timings, {!Frontend} and {!Reward} record cache traffic, and
    [bench/main.ml], the experiment drivers and the CLI render {!report}.

    {b Domain safety.}  Evaluations fan out across domains ({!Parpool}),
    so a single set of global counters would be racy (lost increments) and
    schedule-dependent.  Instead every domain accumulates into its own
    private record (domain-local storage — increments are plain stores, no
    locks on the hot path), and {!snapshot} merges the records under a
    registry lock with a deterministic reduce: integer counters and the
    failure taxonomy sum exactly (addition is commutative), so counts are
    schedule-independent; only wall-time sums depend on the merge order in
    their last ulp, which is inherent to measuring time.  A worker domain
    folds its record into a retirement accumulator when it exits, so
    nothing is lost when {!Parpool} tears a pool down and the registry
    does not grow with the number of pool launches.

    Counters are process-global; call {!reset} to scope a measurement
    (only between parallel regions — a reset races with live workers). *)

type phase =
  | Parse
  | Sema
  | Lower
  | Polly
  | Scalar_opt  (** LICM + CSE cleanup passes *)
  | Vectorize  (** the loop-vectorization planner *)
  | Timing  (** the target-machine cycle model *)

let all_phases = [ Parse; Sema; Lower; Polly; Scalar_opt; Vectorize; Timing ]

let phase_name = function
  | Parse -> "parse"
  | Sema -> "sema"
  | Lower -> "lower"
  | Polly -> "polly"
  | Scalar_opt -> "licm+cse"
  | Vectorize -> "vectorize"
  | Timing -> "timing"

let n_phases = 7

let phase_index = function
  | Parse -> 0
  | Sema -> 1
  | Lower -> 2
  | Polly -> 3
  | Scalar_opt -> 4
  | Vectorize -> 5
  | Timing -> 6

(* ------------------------------------------------------------------ *)
(* Per-domain records                                                   *)
(* ------------------------------------------------------------------ *)

type record = {
  phase_secs : float array;  (** indexed by [phase_index] *)
  phase_cnts : int array;
  mutable r_frontend_hits : int;
  mutable r_frontend_misses : int;
  mutable r_prevec_hits : int;
  mutable r_prevec_misses : int;
  mutable r_point_hits : int;
  mutable r_point_misses : int;
  mutable r_reward_hits : int;
  mutable r_reward_misses : int;
  mutable r_pipeline_runs : int;
  r_failures : (string, int) Hashtbl.t;
      (** taxonomy kind -> failed evaluations *)
  mutable r_quarantines : int;
  mutable r_timing_retries : int;
  mutable r_transient_retries : int;
      (** evaluation attempts re-run after a transient fault *)
  mutable r_watchdog_cancels : int;
      (** stalled evaluations cancelled by the supervisor's watchdog *)
  mutable r_breaker_trips : int;
      (** programs quarantined by the per-program circuit breaker *)
  mutable r_journal_appends : int;
      (** records flushed to the write-ahead reward journal *)
  mutable r_journal_replayed : int;
      (** records restored from a reward journal on resume *)
  mutable r_frontend_evictions : int;
      (** entries evicted from the bounded front-end shard tables *)
  mutable r_serve_accepted : int;
      (** serve requests admitted to the daemon's queue *)
  mutable r_serve_shed : int;
      (** serve requests rejected with a structured reply (overload,
          open breaker, drain) instead of being processed *)
  mutable r_serve_failed : int;
      (** serve requests answered with a typed failure reply *)
  mutable r_serve_batches : int;
      (** batched forward passes taken by the serve batcher *)
  mutable r_serve_batched : int;
      (** requests covered by those batches (sum of batch sizes) *)
  mutable r_serve_batch_max : int;  (** largest batch seen (merge: max) *)
  mutable r_store_hits : int;  (** on-disk store lookups served *)
  mutable r_store_misses : int;
  mutable r_store_crc_rejects : int;
      (** store entries dropped for failing their CRC / framing checks *)
  mutable r_verify_hits : int;
      (** translation-validation verdicts served from the verdict cache *)
  mutable r_verify_misses : int;
      (** verdicts computed by interpreting scalar vs. transformed *)
  mutable r_verify_refutes : int;
      (** evaluations rejected because their plan's verdict is a
          refutation (cached or fresh) *)
  mutable r_verify_cx : int;
      (** fresh counterexamples minted by the validator *)
}

let fresh_record () : record =
  { phase_secs = Array.make n_phases 0.0; phase_cnts = Array.make n_phases 0;
    r_frontend_hits = 0; r_frontend_misses = 0; r_prevec_hits = 0;
    r_prevec_misses = 0; r_point_hits = 0; r_point_misses = 0;
    r_reward_hits = 0;
    r_reward_misses = 0; r_pipeline_runs = 0; r_failures = Hashtbl.create 8;
    r_quarantines = 0; r_timing_retries = 0; r_transient_retries = 0;
    r_watchdog_cancels = 0; r_breaker_trips = 0; r_journal_appends = 0;
    r_journal_replayed = 0; r_frontend_evictions = 0; r_serve_accepted = 0;
    r_serve_shed = 0; r_serve_failed = 0; r_serve_batches = 0;
    r_serve_batched = 0; r_serve_batch_max = 0; r_store_hits = 0;
    r_store_misses = 0; r_store_crc_rejects = 0; r_verify_hits = 0;
    r_verify_misses = 0; r_verify_refutes = 0; r_verify_cx = 0 }

let zero_record (r : record) : unit =
  Array.fill r.phase_secs 0 n_phases 0.0;
  Array.fill r.phase_cnts 0 n_phases 0;
  r.r_frontend_hits <- 0;
  r.r_frontend_misses <- 0;
  r.r_prevec_hits <- 0;
  r.r_prevec_misses <- 0;
  r.r_point_hits <- 0;
  r.r_point_misses <- 0;
  r.r_reward_hits <- 0;
  r.r_reward_misses <- 0;
  r.r_pipeline_runs <- 0;
  Hashtbl.reset r.r_failures;
  r.r_quarantines <- 0;
  r.r_timing_retries <- 0;
  r.r_transient_retries <- 0;
  r.r_watchdog_cancels <- 0;
  r.r_breaker_trips <- 0;
  r.r_journal_appends <- 0;
  r.r_journal_replayed <- 0;
  r.r_frontend_evictions <- 0;
  r.r_serve_accepted <- 0;
  r.r_serve_shed <- 0;
  r.r_serve_failed <- 0;
  r.r_serve_batches <- 0;
  r.r_serve_batched <- 0;
  r.r_serve_batch_max <- 0;
  r.r_store_hits <- 0;
  r.r_store_misses <- 0;
  r.r_store_crc_rejects <- 0;
  r.r_verify_hits <- 0;
  r.r_verify_misses <- 0;
  r.r_verify_refutes <- 0;
  r.r_verify_cx <- 0

(* merge [src] into [dst] (registry lock held) *)
let merge_into (dst : record) (src : record) : unit =
  for i = 0 to n_phases - 1 do
    dst.phase_secs.(i) <- dst.phase_secs.(i) +. src.phase_secs.(i);
    dst.phase_cnts.(i) <- dst.phase_cnts.(i) + src.phase_cnts.(i)
  done;
  dst.r_frontend_hits <- dst.r_frontend_hits + src.r_frontend_hits;
  dst.r_frontend_misses <- dst.r_frontend_misses + src.r_frontend_misses;
  dst.r_prevec_hits <- dst.r_prevec_hits + src.r_prevec_hits;
  dst.r_prevec_misses <- dst.r_prevec_misses + src.r_prevec_misses;
  dst.r_point_hits <- dst.r_point_hits + src.r_point_hits;
  dst.r_point_misses <- dst.r_point_misses + src.r_point_misses;
  dst.r_reward_hits <- dst.r_reward_hits + src.r_reward_hits;
  dst.r_reward_misses <- dst.r_reward_misses + src.r_reward_misses;
  dst.r_pipeline_runs <- dst.r_pipeline_runs + src.r_pipeline_runs;
  Hashtbl.iter
    (fun k n ->
      Hashtbl.replace dst.r_failures k
        (n + Option.value ~default:0 (Hashtbl.find_opt dst.r_failures k)))
    src.r_failures;
  dst.r_quarantines <- dst.r_quarantines + src.r_quarantines;
  dst.r_timing_retries <- dst.r_timing_retries + src.r_timing_retries;
  dst.r_transient_retries <- dst.r_transient_retries + src.r_transient_retries;
  dst.r_watchdog_cancels <- dst.r_watchdog_cancels + src.r_watchdog_cancels;
  dst.r_breaker_trips <- dst.r_breaker_trips + src.r_breaker_trips;
  dst.r_journal_appends <- dst.r_journal_appends + src.r_journal_appends;
  dst.r_journal_replayed <- dst.r_journal_replayed + src.r_journal_replayed;
  dst.r_frontend_evictions <-
    dst.r_frontend_evictions + src.r_frontend_evictions;
  dst.r_serve_accepted <- dst.r_serve_accepted + src.r_serve_accepted;
  dst.r_serve_shed <- dst.r_serve_shed + src.r_serve_shed;
  dst.r_serve_failed <- dst.r_serve_failed + src.r_serve_failed;
  dst.r_serve_batches <- dst.r_serve_batches + src.r_serve_batches;
  dst.r_serve_batched <- dst.r_serve_batched + src.r_serve_batched;
  (* a maximum, not a sum: "largest batch seen" is commutative under max,
     so the merged view stays schedule-independent *)
  dst.r_serve_batch_max <- max dst.r_serve_batch_max src.r_serve_batch_max;
  dst.r_store_hits <- dst.r_store_hits + src.r_store_hits;
  dst.r_store_misses <- dst.r_store_misses + src.r_store_misses;
  dst.r_store_crc_rejects <- dst.r_store_crc_rejects + src.r_store_crc_rejects;
  dst.r_verify_hits <- dst.r_verify_hits + src.r_verify_hits;
  dst.r_verify_misses <- dst.r_verify_misses + src.r_verify_misses;
  dst.r_verify_refutes <- dst.r_verify_refutes + src.r_verify_refutes;
  dst.r_verify_cx <- dst.r_verify_cx + src.r_verify_cx

(* registry of live per-domain records + the fold of exited domains *)
let registry_lock = Mutex.create ()
let live : record list ref = ref []
let retired : record = fresh_record ()

let local : record Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let r = fresh_record () in
      Mutex.protect registry_lock (fun () -> live := r :: !live);
      (* when this domain dies, keep its numbers and drop it from the
         registry so pool teardown loses nothing and leaks nothing *)
      Domain.at_exit (fun () ->
          Mutex.protect registry_lock (fun () ->
              merge_into retired r;
              live := List.filter (fun r' -> r' != r) !live));
      r)

let current () : record = Domain.DLS.get local

(* fold retirement + live records into a fresh merged view *)
let merged () : record =
  Mutex.protect registry_lock (fun () ->
      let m = fresh_record () in
      merge_into m retired;
      List.iter (merge_into m) (List.rev !live);
      m)

(* ------------------------------------------------------------------ *)
(* Recording (hot path: domain-local, no locks)                         *)
(* ------------------------------------------------------------------ *)

(** Run [f], charging its wall time to [phase] (accumulated even when [f]
    raises, so failed compiles still show up in the profile). *)
let time (phase : phase) (f : unit -> 'a) : 'a =
  let r = current () in
  let i = phase_index phase in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      r.phase_secs.(i) <- r.phase_secs.(i) +. (Unix.gettimeofday () -. t0);
      r.phase_cnts.(i) <- r.phase_cnts.(i) + 1)
    f

let frontend_hit () =
  let r = current () in
  r.r_frontend_hits <- r.r_frontend_hits + 1

let frontend_miss () =
  let r = current () in
  r.r_frontend_misses <- r.r_frontend_misses + 1

let prevec_hit () =
  let r = current () in
  r.r_prevec_hits <- r.r_prevec_hits + 1

let prevec_miss () =
  let r = current () in
  r.r_prevec_misses <- r.r_prevec_misses + 1

let point_hit () =
  let r = current () in
  r.r_point_hits <- r.r_point_hits + 1

let point_miss () =
  let r = current () in
  r.r_point_misses <- r.r_point_misses + 1

let reward_hit () =
  let r = current () in
  r.r_reward_hits <- r.r_reward_hits + 1

let reward_miss () =
  let r = current () in
  r.r_reward_misses <- r.r_reward_misses + 1

let pipeline_run () =
  let r = current () in
  r.r_pipeline_runs <- r.r_pipeline_runs + 1

(** Failed evaluations by taxonomy kind ("compile", "trap", "fuel",
    "timeout", ...), recorded by {!Reward} when an action evaluation is
    converted to the penalty reward or a baseline is quarantined. *)
let record_failure (kind : string) : unit =
  let r = current () in
  Hashtbl.replace r.r_failures kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt r.r_failures kind))

(** A program whose baseline measurement failed was dropped from further
    evaluation. *)
let record_quarantine () =
  let r = current () in
  r.r_quarantines <- r.r_quarantines + 1

(** One extra timing sample taken for the median-of-k noise defence. *)
let record_timing_retry () =
  let r = current () in
  r.r_timing_retries <- r.r_timing_retries + 1

(** One evaluation attempt re-run by the supervisor after a transient
    fault. *)
let record_transient_retry () =
  let r = current () in
  r.r_transient_retries <- r.r_transient_retries + 1

(** One stalled evaluation cancelled by the watchdog (recorded by the
    cancelled task in its own domain, so the count is race-free). *)
let record_watchdog_cancel () =
  let r = current () in
  r.r_watchdog_cancels <- r.r_watchdog_cancels + 1

(** One program written off by the per-program circuit breaker. *)
let record_breaker_trip () =
  let r = current () in
  r.r_breaker_trips <- r.r_breaker_trips + 1

(** One record flushed to the write-ahead reward journal. *)
let record_journal_append () =
  let r = current () in
  r.r_journal_appends <- r.r_journal_appends + 1

(** [n] records restored from a reward journal on resume. *)
let record_journal_replayed (n : int) =
  let r = current () in
  r.r_journal_replayed <- r.r_journal_replayed + n

(** One entry evicted from a bounded front-end shard table. *)
let record_frontend_eviction () =
  let r = current () in
  r.r_frontend_evictions <- r.r_frontend_evictions + 1

(** One serve request admitted to the daemon's queue. *)
let record_serve_accepted () =
  let r = current () in
  r.r_serve_accepted <- r.r_serve_accepted + 1

(** One serve request shed with a structured reply (queue full, open
    breaker, or drain) instead of being processed. *)
let record_serve_shed () =
  let r = current () in
  r.r_serve_shed <- r.r_serve_shed + 1

(** One serve request answered with a typed failure reply. *)
let record_serve_failed () =
  let r = current () in
  r.r_serve_failed <- r.r_serve_failed + 1

(** One batch of [n] requests taken by the serve batcher. *)
let record_serve_batch (n : int) =
  let r = current () in
  r.r_serve_batches <- r.r_serve_batches + 1;
  r.r_serve_batched <- r.r_serve_batched + n;
  if n > r.r_serve_batch_max then r.r_serve_batch_max <- n

(** One on-disk store lookup served from the store. *)
let record_store_hit () =
  let r = current () in
  r.r_store_hits <- r.r_store_hits + 1

let record_store_miss () =
  let r = current () in
  r.r_store_misses <- r.r_store_misses + 1

(** One store entry dropped for failing its CRC or framing check. *)
let record_store_crc_reject () =
  let r = current () in
  r.r_store_crc_rejects <- r.r_store_crc_rejects + 1

(** One translation-validation verdict served from the verdict cache. *)
let verify_hit () =
  let r = current () in
  r.r_verify_hits <- r.r_verify_hits + 1

(** One verdict computed by interpreting the scalar reference against the
    transformed module over the content-derived input set. *)
let verify_miss () =
  let r = current () in
  r.r_verify_misses <- r.r_verify_misses + 1

(** One evaluation rejected because its plan's verdict is a refutation. *)
let record_verify_refute () =
  let r = current () in
  r.r_verify_refutes <- r.r_verify_refutes + 1

(** One fresh counterexample minted by the validator. *)
let record_verify_cx () =
  let r = current () in
  r.r_verify_cx <- r.r_verify_cx + 1

(* ------------------------------------------------------------------ *)
(* Merged reads                                                         *)
(* ------------------------------------------------------------------ *)

let phase_seconds (p : phase) : float =
  (merged ()).phase_secs.(phase_index p)

let phase_calls (p : phase) : int = (merged ()).phase_cnts.(phase_index p)

let failure_count (kind : string) : int =
  Option.value ~default:0 (Hashtbl.find_opt (merged ()).r_failures kind)

let hit_rate ~(hits : int) ~(misses : int) : float =
  let total = hits + misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

(* ------------------------------------------------------------------ *)
(* Snapshots and reporting                                              *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  phases : (string * float * int) list;  (** name, total seconds, calls *)
  frontend_hits : int;
  frontend_misses : int;
  prevec_hits : int;
      (** shared pre-vectorization artifact cache ({!Frontend.prevec}) *)
  prevec_misses : int;
  point_hits : int;
      (** evaluation-point memo ({!Pipeline.eval_planned}): actions that
          clamp to an already-measured applied plan *)
  point_misses : int;
  timing_memo_hits : int;  (** per-loop cycle memo ({!Machine.Timing}) *)
  timing_memo_misses : int;
  reward_hits : int;
  reward_misses : int;
  pipeline_runs : int;
  failures : (string * int) list;  (** taxonomy kind -> failed evaluations *)
  quarantines : int;
  timing_retries : int;
  transient_retries : int;
      (** attempts re-run by the supervisor after transient faults *)
  watchdog_cancels : int;  (** stalled evaluations cancelled as [Hung] *)
  breaker_trips : int;  (** programs quarantined by the circuit breaker *)
  journal_appends : int;  (** write-ahead journal records flushed *)
  journal_replayed : int;  (** journal records restored on resume *)
  frontend_evictions : int;  (** entries evicted from bounded shards *)
  serve_accepted : int;  (** daemon requests admitted to the queue *)
  serve_shed : int;  (** daemon requests shed with a structured reply *)
  serve_failed : int;  (** daemon requests answered with a typed failure *)
  serve_batches : int;  (** batched forward passes in the daemon *)
  serve_batched : int;  (** requests covered by those batches *)
  serve_batch_max : int;  (** largest batch seen *)
  store_hits : int;  (** on-disk store lookups served *)
  store_misses : int;
  store_crc_rejects : int;  (** store entries dropped by CRC / framing *)
  verify_hits : int;  (** verdict-cache hits ({!Pipeline} [--verify]) *)
  verify_misses : int;  (** verdicts computed by interpretation *)
  verify_refutes : int;  (** evaluations rejected as [Miscompiled] *)
  verify_cx : int;  (** fresh counterexamples minted *)
  vm_compiles : int;  (** modules compiled to {!Ir_vm} bytecode *)
  vm_fallbacks : int;  (** modules the bytecode compiler declined *)
  vm_cache_hits : int;  (** compiled-code cache hits *)
  vm_cache_misses : int;
  vm_evictions : int;  (** compiled-code cache FIFO evictions *)
  vm_steps : int;  (** IR instructions executed by the bytecode VM *)
  vm_deopts : int;  (** VM runs abandoned to the tree walker mid-flight *)
  tree_steps : int;  (** IR instructions tree-walked for verification *)
  tv_evictions : int;  (** scalar-run cache FIFO evictions ({!Verify.Tv}) *)
  sentinel_trips : int;  (** numeric-health sentinel trips ({!Rl.Sentinel}) *)
  sentinel_rollbacks : int;  (** automatic checkpoint rollbacks performed *)
  disk_faults_injected : int;  (** disk faults injected by {!Fsio} *)
  disk_write_errors : int;
      (** durable writes that failed closed and degraded or retried *)
  tmp_swept : int;  (** stale [.tmp] files swept at startup, never replayed *)
}

let snapshot () : snapshot =
  let m = merged () in
  let tm_hits, tm_misses = Machine.Timing.memo_stats () in
  let vm = Ir_vm.stats () in
  {
    phases =
      List.map
        (fun p ->
          (phase_name p, m.phase_secs.(phase_index p),
           m.phase_cnts.(phase_index p)))
        all_phases;
    frontend_hits = m.r_frontend_hits;
    frontend_misses = m.r_frontend_misses;
    prevec_hits = m.r_prevec_hits;
    prevec_misses = m.r_prevec_misses;
    point_hits = m.r_point_hits;
    point_misses = m.r_point_misses;
    timing_memo_hits = tm_hits;
    timing_memo_misses = tm_misses;
    reward_hits = m.r_reward_hits;
    reward_misses = m.r_reward_misses;
    pipeline_runs = m.r_pipeline_runs;
    failures =
      List.sort compare
        (Hashtbl.fold (fun k n acc -> (k, n) :: acc) m.r_failures []);
    quarantines = m.r_quarantines;
    timing_retries = m.r_timing_retries;
    transient_retries = m.r_transient_retries;
    watchdog_cancels = m.r_watchdog_cancels;
    breaker_trips = m.r_breaker_trips;
    journal_appends = m.r_journal_appends;
    journal_replayed = m.r_journal_replayed;
    frontend_evictions = m.r_frontend_evictions;
    serve_accepted = m.r_serve_accepted;
    serve_shed = m.r_serve_shed;
    serve_failed = m.r_serve_failed;
    serve_batches = m.r_serve_batches;
    serve_batched = m.r_serve_batched;
    serve_batch_max = m.r_serve_batch_max;
    store_hits = m.r_store_hits;
    store_misses = m.r_store_misses;
    store_crc_rejects = m.r_store_crc_rejects;
    verify_hits = m.r_verify_hits;
    verify_misses = m.r_verify_misses;
    verify_refutes = m.r_verify_refutes;
    verify_cx = m.r_verify_cx;
    vm_compiles = vm.Ir_vm.vs_compiles;
    vm_fallbacks = vm.Ir_vm.vs_fallbacks;
    vm_cache_hits = vm.Ir_vm.vs_cache_hits;
    vm_cache_misses = vm.Ir_vm.vs_cache_misses;
    vm_evictions = vm.Ir_vm.vs_evictions;
    vm_steps = vm.Ir_vm.vs_steps;
    vm_deopts = vm.Ir_vm.vs_deopts;
    tree_steps = Verify.Tv.tree_steps ();
    tv_evictions = Verify.Tv.sc_evictions ();
    (* the rl library sits below this one, so its sentinel counters are
       pulled here rather than recorded, like the VM/TV counters above *)
    sentinel_trips = Rl.Sentinel.trip_count ();
    sentinel_rollbacks = Rl.Sentinel.rollback_count ();
    disk_faults_injected = Fsio.faults_injected ();
    disk_write_errors = Fsio.write_errors ();
    tmp_swept = Fsio.tmp_swept ();
  }

let reset () =
  Machine.Timing.memo_stats_reset ();
  Ir_vm.reset_stats ();
  Verify.Tv.reset_counters ();
  Rl.Sentinel.reset_counters ();
  Fsio.reset_counters ();
  Mutex.protect registry_lock (fun () ->
      zero_record retired;
      List.iter zero_record !live)

(** Human-readable scoreboard: per-phase wall time and cache hit rates. *)
let report () : string =
  let b = Buffer.create 512 in
  let s = snapshot () in
  Buffer.add_string b "--- pipeline stats ---\n";
  Buffer.add_string b
    (Printf.sprintf "%-12s %10s %12s %12s\n" "phase" "calls" "total ms"
       "mean us");
  List.iter
    (fun (name, seconds, calls) ->
      if calls > 0 then
        Buffer.add_string b
          (Printf.sprintf "%-12s %10d %12.2f %12.2f\n" name calls
             (seconds *. 1e3)
             (seconds *. 1e6 /. float_of_int calls)))
    s.phases;
  Buffer.add_string b
    (Printf.sprintf "front-end cache: %d hits / %d misses (%.1f%% hit rate)\n"
       s.frontend_hits s.frontend_misses
       (100.0 *. hit_rate ~hits:s.frontend_hits ~misses:s.frontend_misses));
  Buffer.add_string b
    (Printf.sprintf "prevec cache:    %d hits / %d misses (%.1f%% hit rate)\n"
       s.prevec_hits s.prevec_misses
       (100.0 *. hit_rate ~hits:s.prevec_hits ~misses:s.prevec_misses));
  Buffer.add_string b
    (Printf.sprintf "point memo:      %d hits / %d misses (%.1f%% hit rate)\n"
       s.point_hits s.point_misses
       (100.0 *. hit_rate ~hits:s.point_hits ~misses:s.point_misses));
  Buffer.add_string b
    (Printf.sprintf "timing memo:     %d hits / %d misses (%.1f%% hit rate)\n"
       s.timing_memo_hits s.timing_memo_misses
       (100.0
       *. hit_rate ~hits:s.timing_memo_hits ~misses:s.timing_memo_misses));
  Buffer.add_string b
    (Printf.sprintf "reward cache:    %d hits / %d misses (%.1f%% hit rate)\n"
       s.reward_hits s.reward_misses
       (100.0 *. hit_rate ~hits:s.reward_hits ~misses:s.reward_misses));
  Buffer.add_string b
    (Printf.sprintf "pipeline evaluations: %d\n" s.pipeline_runs);
  if s.failures <> [] then
    Buffer.add_string b
      (Printf.sprintf "reward failures: %s\n"
         (String.concat " "
            (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) s.failures)));
  if s.quarantines > 0 then
    Buffer.add_string b
      (Printf.sprintf "quarantined programs: %d\n" s.quarantines);
  if s.timing_retries > 0 then
    Buffer.add_string b
      (Printf.sprintf "timing resamples (median-of-k): %d\n" s.timing_retries);
  if s.transient_retries > 0 then
    Buffer.add_string b
      (Printf.sprintf "transient retries: %d\n" s.transient_retries);
  if s.watchdog_cancels > 0 then
    Buffer.add_string b
      (Printf.sprintf "watchdog cancellations: %d\n" s.watchdog_cancels);
  if s.breaker_trips > 0 then
    Buffer.add_string b
      (Printf.sprintf "circuit-breaker trips: %d\n" s.breaker_trips);
  if s.journal_appends > 0 || s.journal_replayed > 0 then
    Buffer.add_string b
      (Printf.sprintf "reward journal: %d appended / %d replayed\n"
         s.journal_appends s.journal_replayed);
  if s.frontend_evictions > 0 then
    Buffer.add_string b
      (Printf.sprintf "front-end evictions: %d\n" s.frontend_evictions);
  if s.serve_accepted > 0 || s.serve_shed > 0 || s.serve_failed > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "serve requests: %d accepted / %d shed / %d failed / %d retried\n"
         s.serve_accepted s.serve_shed s.serve_failed s.transient_retries);
  if s.serve_batches > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "serve batches: %d (mean size %.1f, max %d)\n" s.serve_batches
         (float_of_int s.serve_batched /. float_of_int s.serve_batches)
         s.serve_batch_max);
  if s.store_hits > 0 || s.store_misses > 0 || s.store_crc_rejects > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "on-disk store:   %d hits / %d misses (%.1f%% hit rate), %d CRC \
          rejects\n"
         s.store_hits s.store_misses
         (100.0 *. hit_rate ~hits:s.store_hits ~misses:s.store_misses)
         s.store_crc_rejects);
  if s.verify_hits > 0 || s.verify_misses > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "verify cache:    %d hits / %d misses (%.1f%% hit rate), %d \
          refutations (%d counterexamples)\n"
         s.verify_hits s.verify_misses
         (100.0 *. hit_rate ~hits:s.verify_hits ~misses:s.verify_misses)
         s.verify_refutes s.verify_cx);
  if s.vm_cache_hits > 0 || s.vm_cache_misses > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "vm code cache:   %d hits / %d misses (%.1f%% hit rate), %d \
          compiled / %d fallbacks, %d evictions\n"
         s.vm_cache_hits s.vm_cache_misses
         (100.0 *. hit_rate ~hits:s.vm_cache_hits ~misses:s.vm_cache_misses)
         s.vm_compiles s.vm_fallbacks s.vm_evictions);
  if s.vm_steps > 0 || s.tree_steps > 0 then
    Buffer.add_string b
      (Printf.sprintf "interpreted steps: %d vm / %d tree-walked%s\n" s.vm_steps
         s.tree_steps
         (if s.vm_deopts > 0 then Printf.sprintf ", %d deopts" s.vm_deopts
          else ""));
  if s.tv_evictions > 0 then
    Buffer.add_string b
      (Printf.sprintf "tv scalar-cache evictions: %d\n" s.tv_evictions);
  if s.sentinel_trips > 0 || s.sentinel_rollbacks > 0 then
    Buffer.add_string b
      (Printf.sprintf "sentinels: %d trips / %d rollbacks\n" s.sentinel_trips
         s.sentinel_rollbacks);
  if s.disk_faults_injected > 0 || s.disk_write_errors > 0 then
    Buffer.add_string b
      (Printf.sprintf "disk faults: %d injected / %d write errors absorbed\n"
         s.disk_faults_injected s.disk_write_errors);
  if s.tmp_swept > 0 then
    Buffer.add_string b
      (Printf.sprintf "stale temp files swept: %d\n" s.tmp_swept);
  Buffer.contents b
