(** Pipeline instrumentation: per-phase wall time, cache hit/miss counters
    and evaluation counts for the compile-and-measure oracle.

    The reward oracle dominates training cost (every PPO step, brute-force
    sweep, NNS probe and decision-tree label goes through the pipeline), so
    speedups there must be observable, not asserted.  This module is the
    single global scoreboard: {!Frontend} and {!Pipeline} record phase
    timings, {!Frontend} and {!Reward} record cache traffic, and
    [bench/main.ml], the experiment drivers and the CLI render {!report}.

    Counters are process-global; call {!reset} to scope a measurement. *)

type phase =
  | Parse
  | Sema
  | Lower
  | Polly
  | Scalar_opt  (** LICM + CSE cleanup passes *)
  | Vectorize  (** the loop-vectorization planner *)
  | Timing  (** the target-machine cycle model *)

let all_phases = [ Parse; Sema; Lower; Polly; Scalar_opt; Vectorize; Timing ]

let phase_name = function
  | Parse -> "parse"
  | Sema -> "sema"
  | Lower -> "lower"
  | Polly -> "polly"
  | Scalar_opt -> "licm+cse"
  | Vectorize -> "vectorize"
  | Timing -> "timing"

type acc = { mutable seconds : float; mutable calls : int }

let phase_index = function
  | Parse -> 0
  | Sema -> 1
  | Lower -> 2
  | Polly -> 3
  | Scalar_opt -> 4
  | Vectorize -> 5
  | Timing -> 6

let accs = Array.init 7 (fun _ -> { seconds = 0.0; calls = 0 })

(** Run [f], charging its wall time to [phase] (accumulated even when [f]
    raises, so failed compiles still show up in the profile). *)
let time (phase : phase) (f : unit -> 'a) : 'a =
  let a = accs.(phase_index phase) in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      a.seconds <- a.seconds +. (Unix.gettimeofday () -. t0);
      a.calls <- a.calls + 1)
    f

let phase_seconds (p : phase) : float = accs.(phase_index p).seconds
let phase_calls (p : phase) : int = accs.(phase_index p).calls

(* ------------------------------------------------------------------ *)
(* Cache and evaluation counters                                        *)
(* ------------------------------------------------------------------ *)

let frontend_hits = ref 0
let frontend_misses = ref 0
let reward_hits = ref 0
let reward_misses = ref 0
let pipeline_runs = ref 0

let frontend_hit () = incr frontend_hits
let frontend_miss () = incr frontend_misses
let reward_hit () = incr reward_hits
let reward_miss () = incr reward_misses
let pipeline_run () = incr pipeline_runs

(* ------------------------------------------------------------------ *)
(* Robustness counters                                                  *)
(* ------------------------------------------------------------------ *)

(** Failed evaluations by taxonomy kind ("compile", "trap", "fuel",
    "timeout", ...), recorded by {!Reward} when an action evaluation is
    converted to the penalty reward or a baseline is quarantined. *)
let failures : (string, int) Hashtbl.t = Hashtbl.create 8

let record_failure (kind : string) : unit =
  Hashtbl.replace failures kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt failures kind))

let failure_count (kind : string) : int =
  Option.value ~default:0 (Hashtbl.find_opt failures kind)

let quarantines = ref 0

(** A program whose baseline measurement failed was dropped from further
    evaluation. *)
let record_quarantine () = incr quarantines

let timing_retries = ref 0

(** One extra timing sample taken for the median-of-k noise defence. *)
let record_timing_retry () = incr timing_retries

let hit_rate ~(hits : int) ~(misses : int) : float =
  let total = hits + misses in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

(* ------------------------------------------------------------------ *)
(* Snapshots and reporting                                              *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  phases : (string * float * int) list;  (** name, total seconds, calls *)
  frontend_hits : int;
  frontend_misses : int;
  reward_hits : int;
  reward_misses : int;
  pipeline_runs : int;
  failures : (string * int) list;  (** taxonomy kind -> failed evaluations *)
  quarantines : int;
  timing_retries : int;
}

let snapshot () : snapshot =
  {
    phases =
      List.map
        (fun p -> (phase_name p, phase_seconds p, phase_calls p))
        all_phases;
    frontend_hits = !frontend_hits;
    frontend_misses = !frontend_misses;
    reward_hits = !reward_hits;
    reward_misses = !reward_misses;
    pipeline_runs = !pipeline_runs;
    failures =
      List.sort compare
        (Hashtbl.fold (fun k n acc -> (k, n) :: acc) failures []);
    quarantines = !quarantines;
    timing_retries = !timing_retries;
  }

let reset () =
  Array.iter
    (fun a ->
      a.seconds <- 0.0;
      a.calls <- 0)
    accs;
  frontend_hits := 0;
  frontend_misses := 0;
  reward_hits := 0;
  reward_misses := 0;
  pipeline_runs := 0;
  Hashtbl.reset failures;
  quarantines := 0;
  timing_retries := 0

(** Human-readable scoreboard: per-phase wall time and cache hit rates. *)
let report () : string =
  let b = Buffer.create 512 in
  let s = snapshot () in
  Buffer.add_string b "--- pipeline stats ---\n";
  Buffer.add_string b
    (Printf.sprintf "%-12s %10s %12s %12s\n" "phase" "calls" "total ms"
       "mean us");
  List.iter
    (fun (name, seconds, calls) ->
      if calls > 0 then
        Buffer.add_string b
          (Printf.sprintf "%-12s %10d %12.2f %12.2f\n" name calls
             (seconds *. 1e3)
             (seconds *. 1e6 /. float_of_int calls)))
    s.phases;
  Buffer.add_string b
    (Printf.sprintf "front-end cache: %d hits / %d misses (%.1f%% hit rate)\n"
       s.frontend_hits s.frontend_misses
       (100.0 *. hit_rate ~hits:s.frontend_hits ~misses:s.frontend_misses));
  Buffer.add_string b
    (Printf.sprintf "reward cache:    %d hits / %d misses (%.1f%% hit rate)\n"
       s.reward_hits s.reward_misses
       (100.0 *. hit_rate ~hits:s.reward_hits ~misses:s.reward_misses));
  Buffer.add_string b
    (Printf.sprintf "pipeline evaluations: %d\n" s.pipeline_runs);
  if s.failures <> [] then
    Buffer.add_string b
      (Printf.sprintf "reward failures: %s\n"
         (String.concat " "
            (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) s.failures)));
  if s.quarantines > 0 then
    Buffer.add_string b
      (Printf.sprintf "quarantined programs: %d\n" s.quarantines);
  if s.timing_retries > 0 then
    Buffer.add_string b
      (Printf.sprintf "timing resamples (median-of-k): %d\n" s.timing_retries);
  Buffer.contents b
