(** The end-to-end framework of Figure 3: programs -> loop extractor ->
    code embedding -> learning agent -> pragma injection -> compile &
    measure -> reward.

    [train] runs the PPO loop against the memoized reward oracle;
    [predict_decisions] runs the trained policy at inference (one forward
    pass per loop, like the deployed baseline cost model); [speedup_*]
    helpers express results the way the paper's figures do — execution
    time normalized to the baseline cost model. *)

type t = {
  agent : Rl.Agent.t;
  oracle : Reward.t;
  train_programs : Dataset.Program.t array;
  samples : Rl.Ppo.sample array;  (** quarantined programs excluded *)
  skipped : (string * string) list;
      (** programs quarantined at corpus intake: (name, reason) *)
}

(** Encode a program for the agent: AST path contexts of the first loop
    nest's outermost statement, mapped to vocabulary ids. *)
let encode (agent : Rl.Agent.t) (p : Dataset.Program.t) :
    Embedding.Code2vec.ids array =
  let prog = (Frontend.checked p).Frontend.a_ast in
  let stmt = Extractor.embedding_stmt prog in
  let cfg = agent.Rl.Agent.c2v.Embedding.Code2vec.cfg in
  let ctxs =
    Embedding.Ast_path.contexts_of_stmt
      ~max_contexts:cfg.Embedding.Code2vec.max_contexts stmt
  in
  Embedding.Code2vec.encode agent.Rl.Agent.c2v ctxs

(** Encode one loop site (for multi-loop programs at inference). *)
let encode_site (agent : Rl.Agent.t) (site : Extractor.loop_site) :
    Embedding.Code2vec.ids array =
  let cfg = agent.Rl.Agent.c2v.Embedding.Code2vec.cfg in
  let ctxs =
    Embedding.Ast_path.contexts_of_stmt
      ~max_contexts:cfg.Embedding.Code2vec.max_contexts site.Extractor.context
  in
  Embedding.Code2vec.encode agent.Rl.Agent.c2v ctxs

(** Build PPO samples for [programs], probing each program's baseline
    first: a program whose baseline cannot be measured (front-end failure,
    trap, fuel exhaustion, zero-cost loop) is quarantined by the oracle
    and dropped here instead of crashing the training loop hundreds of
    steps later.  Probes fan across the {!Parpool} domains (the baseline
    measurement and the embedding are both pure functions of the program);
    the fold back into samples/skipped runs in program order, so the
    result is identical at any pool size.  Returns the surviving samples
    (with [s_id] indexing into [programs]) and the dropped (name, reason)
    pairs. *)
let probe_samples ?(encode = encode) (agent : Rl.Agent.t) (oracle : Reward.t)
    (programs : Dataset.Program.t array) :
    Rl.Ppo.sample array * (string * string) list =
  let probed =
    Parpool.map
      (fun i ->
        try
          ignore (Reward.baseline oracle i);
          Ok { Rl.Ppo.s_id = i; s_ids = encode agent programs.(i) }
        with Reward.Quarantined (name, why) -> Error (name, why))
      (Array.init (Array.length programs) Fun.id)
  in
  let samples = ref [] and skipped = ref [] in
  Array.iter
    (function
      | Ok s -> samples := s :: !samples
      | Error nw -> skipped := nw :: !skipped)
    probed;
  (Array.of_list (List.rev !samples), List.rev !skipped)

(** [journal] attaches a write-ahead reward journal at that path {e before}
    the baseline probes run: an existing journal (e.g. from a killed run)
    is replayed first, so already-measured episodes are served from the
    restored tables, and every new commit is appended for the next
    resume.  The replayed-record count surfaces in {!Stats.report}. *)
let create ?agent ?(space = Rl.Spaces.Discrete) ?(hidden = [ 64; 64 ])
    ?(c2v_cfg = Embedding.Code2vec.default_config)
    ?(options = Pipeline.default_options) ?(legacy_pipeline = false)
    ?journal ~(seed : int) (train_programs : Dataset.Program.t array) : t =
  let agent =
    match agent with
    | Some a -> a  (* e.g. restored from a checkpoint for resumed training *)
    | None -> Rl.Agent.create ~hidden ~c2v_cfg ~space (Nn.Rng.create seed)
  in
  let oracle = Reward.create ~options ~legacy_pipeline train_programs in
  Option.iter
    (fun path ->
      ignore (Reward.replay_journal oracle path);
      Reward.set_journal oracle path)
    journal;
  let samples, skipped = probe_samples agent oracle train_programs in
  { agent; oracle; train_programs; samples; skipped }

(** The sentinel configuration implied by a fault spec: the backoff
    schedule is seeded by the spec seed, and the [nan_grad] knob becomes
    the gradient-poisoning hook ({!Faults.nan_grad_hit} — pure in
    (seed, update, rollbacks), so the injected trip and its recovery are
    identical at any pool size). *)
let sentinel_of_faults (spec : Faults.spec) : Rl.Sentinel.config =
  { Rl.Sentinel.default with
    Rl.Sentinel.backoff_seed = spec.Faults.f_seed;
    inject_nan =
      (fun ~update ~rollbacks -> Faults.nan_grad_hit spec ~update ~rollbacks);
  }

(** Train the agent; returns per-update statistics.  [checkpoint_path],
    [checkpoint_every], [keep_checkpoints], [sentinel], [resume] and
    [stop] behave as in {!Rl.Ppo.train} ([stop] is the graceful-shutdown
    hook — pass [Supervisor.shutdown_requested] to finish the in-flight
    update and flush the checkpoint + journal on SIGINT/SIGTERM). *)
let train ?(hyper = Rl.Ppo.default_hyper) ?progress ?checkpoint_path
    ?(checkpoint_every = 0) ?keep_checkpoints ?sentinel ?stop ?batched
    ?resume (t : t) ~(total_steps : int) : Rl.Ppo.stats list =
  Rl.Ppo.train ~hyper ?progress ?checkpoint_path ~checkpoint_every
    ?keep_checkpoints ?sentinel ?stop ?batched
    ~rollout_jobs:(Parpool.jobs ())
    ~rollout_map:(fun f xs -> Parpool.map f xs)
    ?resume t.agent ~samples:t.samples
    ~reward:(fun idx act -> Reward.reward t.oracle idx act)
    ~total_steps

(** Per-loop pragma decisions for a program under the trained policy:
    one batched forward over every loop site (actions identical to
    per-site {!Rl.Agent.predict}). *)
let predict_decisions (agent : Rl.Agent.t) (p : Dataset.Program.t) :
    (int * Minic.Ast.loop_pragma) list =
  let prog = (Frontend.checked p).Frontend.a_ast in
  let sites = Extractor.extract prog in
  let acts =
    Rl.Agent.predict_batch agent
      (Array.of_list (List.map (encode_site agent) sites))
  in
  List.mapi
    (fun i site ->
      let act = acts.(i) in
      ( site.Extractor.ordinal,
        Injector.pragma_of ~vf:(Rl.Spaces.vf_of act) ~if_:(Rl.Spaces.if_of act)
      ))
    sites

(** Execution time (seconds) of [p] when the trained agent injects pragmas
    into every loop; [polly] also runs the polyhedral pipeline first. *)
let rl_seconds ?(options = Pipeline.default_options) (agent : Rl.Agent.t)
    (p : Dataset.Program.t) : float =
  let decisions = predict_decisions agent p in
  (Pipeline.run_with_decisions ~options p ~decisions).Pipeline.exec_seconds

(** Baseline-normalized speedups for one evaluation program under several
    methods; the unit of Figures 7, 8 and 9. *)
type comparison = {
  c_name : string;
  c_baseline : float;  (** seconds, baseline cost model *)
  c_methods : (string * float) list;  (** method -> seconds *)
}

let speedups (c : comparison) : (string * float) list =
  List.map (fun (m, s) -> (m, c.c_baseline /. s)) c.c_methods
