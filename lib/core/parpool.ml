(** Multicore parallel evaluation pool.

    Every oracle client — PPO rollouts, brute force, NNS and decision-tree
    labelling, the experiment drivers — fans one program (or one corpus)
    out into dozens of independent compile-and-measure evaluations.  After
    the front-end cache (PR 1) those evaluations dominate wall time and
    share no data except the content-addressed caches, so they parallelize
    across OCaml 5 domains with no algorithmic change.  NeuroVectorizer
    itself leans on Ray/RLlib for exactly this measurement fan-out; this
    module is the native equivalent.

    {b Scheduling.}  [map] self-schedules: worker domains (plus the
    calling domain) repeatedly claim the next unclaimed index from a
    shared atomic counter — work stealing from a single shared queue — so
    an item that takes 10x longer than its siblings never idles the other
    domains.  Results land in a per-index slot, so output order is always
    input order regardless of completion order.

    {b Determinism contract.}  The pool never changes what is computed,
    only where: callers must ensure each item is a pure function of its
    input (the rest of [lib/core] guarantees this — content-addressed
    caches are mutex-sharded, fault injection and timing noise are keyed
    by (seed, measurement point, sample index), and {!Stats} merges
    per-domain counters).  Under that contract a run at [--jobs N] is
    bit-identical to [--jobs 1], just faster.

    {b Nesting.}  A [map] issued from inside a pool worker runs serially
    in that worker: the corpus-level fan-out already owns the domains, and
    nested spawning would oversubscribe the machine.

    {b Exceptions and cancellation.}  If an item raises, a cooperative
    cancel flag stops the pool from {e claiming} further items: queued
    work that would only be executed-then-discarded is skipped (the
    supervision layer retries {e inside} an item, so an exception that
    reaches the pool is final).  Items already in flight on other workers
    run to completion — cancellation never preempts work mid-measurement.
    After all workers drain, the lowest-indexed exception that was
    actually raised is re-raised (with its backtrace): items are claimed
    in index order, so every skipped item has a higher index than some
    failing item, and the re-raised exception is the same one a serial
    left-to-right run would have surfaced first.

    Pool size: [set_jobs]/[with_jobs] (the CLI's [--jobs]) wins, then the
    [NEUROVEC_JOBS] environment variable, then
    [Domain.recommended_domain_count () - 1] (the caller participates, so
    one is implicit); always at least 1.  [jobs () = 1] is the exact
    serial path: no domain is spawned and no atomic is touched. *)

let override : int option ref = ref None

(** Force the pool size (1 = serial); overrides [NEUROVEC_JOBS]. *)
let set_jobs (n : int) : unit = override := Some (max 1 n)

let env_jobs : int option Lazy.t =
  lazy
    (match Sys.getenv_opt "NEUROVEC_JOBS" with
    | None | Some "" -> None
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n >= 1 -> Some n
        | _ ->
            (* don't mask a typo as "serial" *)
            Printf.eprintf
              "neurovec: unparseable NEUROVEC_JOBS=%S, using the default\n%!" s;
            None))

let default_jobs : int Lazy.t =
  lazy (max 1 (Domain.recommended_domain_count () - 1))

(** The resolved pool size for the next [map]. *)
let jobs () : int =
  match !override with
  | Some n -> n
  | None -> (
      match Lazy.force env_jobs with
      | Some n -> n
      | None -> Lazy.force default_jobs)

(** Run [f] with the pool size forced to [n], restoring the previous
    setting after (main domain only; used by benches to compare a serial
    and a parallel run of the same sweep). *)
let with_jobs (n : int) (f : unit -> 'a) : 'a =
  let saved = !override in
  set_jobs n;
  Fun.protect ~finally:(fun () -> override := saved) f

(* true while executing inside a pool worker: nested maps degrade to the
   serial path instead of spawning domains the corpus-level fan-out
   already owns *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(** True while the calling domain is executing pool work.  The supervisor
    checks this before spawning its monitor thread: a thread created
    inside a worker domain would keep that domain from ever joining. *)
let in_pool_worker () : bool = Domain.DLS.get in_worker

(** [map f xs]: apply [f] to every element, fanning across the pool;
    results are in input order.  Serial (and allocation-free beyond
    [Array.map]) when the pool size is 1, the input has fewer than two
    elements, or the caller is itself a pool worker. *)
let map ?jobs:j (f : 'a -> 'b) (xs : 'a array) : 'b array =
  let n = Array.length xs in
  let j = match j with Some j -> max 1 j | None -> jobs () in
  if j <= 1 || n <= 1 || Domain.DLS.get in_worker then Array.map f xs
  else begin
    let results : ('b, exn * Printexc.raw_backtrace) result option array =
      Array.make n None
    in
    let next = Atomic.make 0 in
    (* set on the first failure: workers stop claiming new items, so
       queued work behind a fatal error is skipped instead of executed
       and then discarded *)
    let cancelled = Atomic.make false in
    let run () =
      let rec loop () =
        if not (Atomic.get cancelled) then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <-
              Some
                (match f xs.(i) with
                | y -> Ok y
                | exception e ->
                    Atomic.set cancelled true;
                    Error (e, Printexc.get_raw_backtrace ()));
            loop ()
          end
        end
      in
      loop ()
    in
    let worker () =
      Domain.DLS.set in_worker true;
      run ()
    in
    let spawned =
      Array.init (min (j - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    (* the calling domain participates; it keeps its own DLS state but
       flags itself as a worker so f's nested maps stay serial *)
    Domain.DLS.set in_worker true;
    Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker false) run;
    Array.iter Domain.join spawned;
    (* re-raise the lowest-indexed exception that actually ran — claims
       happen in index order, so any skipped (None) slot sits behind a
       failure and serial execution would never have reached it *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    Array.map
      (function
        | Some (Ok y) -> y
        | None -> assert false (* no failure, so every index was claimed *)
        | Some (Error _) -> assert false (* re-raised above *))
      results
  end

(** [map] over a list (result order = input order). *)
let map_list ?jobs (f : 'a -> 'b) (xs : 'a list) : 'b list =
  Array.to_list (map ?jobs f (Array.of_list xs))
