(** The reward oracle (paper Section 3.3-3.4).

    reward = (t_baseline - t_action) / t_baseline, so positive means
    "faster than the LLVM baseline cost model's choice"; an action whose
    compile time exceeds 10x the baseline compile time short-circuits to
    the penalty reward -9 (equivalent to 10x the baseline execution time),
    teaching the agent not to over-vectorize.

    All (program, action) evaluations are memoized, and the memo table is
    content-addressed: the key is (source hash, pipeline options, pragma
    decision), so duplicate programs in a dataset share entries regardless
    of their names — mirroring how the paper reuses its brute-force
    measurements as supervised labels.  Each entry records whether the
    compile-time penalty fired, so penalized actions are reported exactly
    (not inferred by comparing the reward against the penalty sentinel,
    which misclassified genuine >10x slowdowns as timeouts). *)

type entry = {
  e_reward : float;
  e_penalized : bool;  (** the compile-time budget fired for this action *)
}

type t = {
  programs : Dataset.Program.t array;
  options : Pipeline.options;
  timeout_factor : float;
  penalty : float;
  keys : string array;
      (** per-program content key: source hash + options, precomputed *)
  baselines : (string, float * float) Hashtbl.t;
      (** content key -> (exec seconds, compile seconds) *)
  cache : (string, entry) Hashtbl.t;
      (** content key + decision -> reward entry *)
  mutable evaluations : int;  (** non-memoized compile+run count *)
  mutable hits : int;  (** memoized reward lookups served from cache *)
}

let create ?(options = Pipeline.default_options) ?(timeout_factor = 10.0)
    ?(penalty = -9.0) (programs : Dataset.Program.t array) : t =
  let opt_key = Pipeline.options_key options in
  { programs; options; timeout_factor; penalty;
    keys =
      Array.map
        (fun p -> Frontend.hash_program p ^ "|" ^ opt_key)
        programs;
    baselines = Hashtbl.create (Array.length programs);
    cache = Hashtbl.create (4 * Array.length programs);
    evaluations = 0; hits = 0 }

let baseline (t : t) (idx : int) : float * float =
  match Hashtbl.find_opt t.baselines t.keys.(idx) with
  | Some b -> b
  | None ->
      let r = Pipeline.run_baseline ~options:t.options t.programs.(idx) in
      t.evaluations <- t.evaluations + 1;
      let b = (r.Pipeline.exec_seconds, r.Pipeline.compile_seconds) in
      Hashtbl.replace t.baselines t.keys.(idx) b;
      b

(** Memoized reward entry of applying [action] to every innermost loop of
    program [idx]. *)
let entry (t : t) (idx : int) (action : Rl.Spaces.action) : entry =
  let key =
    Printf.sprintf "%s|vf=%d,if=%d" t.keys.(idx)
      (Rl.Spaces.vf_of action) (Rl.Spaces.if_of action)
  in
  match Hashtbl.find_opt t.cache key with
  | Some e ->
      t.hits <- t.hits + 1;
      Stats.reward_hit ();
      e
  | None ->
      Stats.reward_miss ();
      let t_base, c_base = baseline t idx in
      let res =
        Pipeline.run_with_pragma ~options:t.options t.programs.(idx)
          ~vf:(Rl.Spaces.vf_of action) ~if_:(Rl.Spaces.if_of action)
      in
      t.evaluations <- t.evaluations + 1;
      let penalized =
        res.Pipeline.compile_seconds > t.timeout_factor *. c_base
      in
      let e =
        { e_penalized = penalized;
          e_reward =
            (if penalized then t.penalty
             else (t_base -. res.Pipeline.exec_seconds) /. t_base) }
      in
      Hashtbl.replace t.cache key e;
      e

(** Reward of applying [action] to every innermost loop of program [idx]. *)
let reward (t : t) (idx : int) (action : Rl.Spaces.action) : float =
  (entry t idx action).e_reward

(** Execution time under [action] (seconds); penalized actions return the
    baseline time scaled by the timeout factor. *)
let exec_seconds (t : t) (idx : int) (action : Rl.Spaces.action) : float =
  let t_base, _ = baseline t idx in
  let e = entry t idx action in
  if e.e_penalized then t.timeout_factor *. t_base
  else t_base *. (1.0 -. e.e_reward)

(** Best action and reward by exhaustive search (35 compilations, memoized). *)
let brute_force (t : t) (idx : int) : Rl.Spaces.action * float =
  List.fold_left
    (fun (best_a, best_r) a ->
      let r = reward t idx a in
      if r > best_r then (a, r) else (best_a, best_r))
    ({ Rl.Spaces.vf_idx = 0; if_idx = 0 },
     reward t idx { Rl.Spaces.vf_idx = 0; if_idx = 0 })
    Rl.Spaces.all_actions
