(** The reward oracle (paper Section 3.3-3.4).

    reward = (t_baseline - t_action) / t_baseline, so positive means
    "faster than the LLVM baseline cost model's choice"; an action whose
    compile time exceeds 10x the baseline compile time short-circuits to
    the penalty reward -9 (equivalent to 10x the baseline execution time),
    teaching the agent not to over-vectorize.

    All (program, action) evaluations are memoized, and the memo table is
    content-addressed: the key is (source hash, pipeline options, pragma
    decision), so duplicate programs in a dataset share entries regardless
    of their names — mirroring how the paper reuses its brute-force
    measurements as supervised labels.  Each entry records whether the
    compile-time penalty fired, so penalized actions are reported exactly
    (not inferred by comparing the reward against the penalty sentinel,
    which misclassified genuine >10x slowdowns as timeouts).

    {b Failure handling.}  The paper's reward is a measurement on real
    hardware, where individual evaluations fail; the oracle therefore
    never lets an evaluation failure escape as a raw exception:

    - An {e action} evaluation that fails (compile error, runtime trap,
      fuel exhaustion) converts to the penalty reward with the failure
      recorded in the entry and in {!Stats} — the policy update proceeds.
    - A {e baseline} failure means the program cannot be normalized at
      all: the program is quarantined ({!Quarantined} is raised and the
      program is remembered, so drivers can skip it and report it).  A
      baseline measuring zero (e.g. a trip-0 loop) is quarantined too —
      dividing by it would send NaN rewards into the PPO advantages.
    - Under nonzero timing noise ({!Faults.noisy}), every measurement is
      the median of [noise_samples] runs with MAD outlier rejection, so
      one heavy-tailed spike cannot poison a cached reward. *)

(** Why an evaluation failed. *)
type failure = Compile_failed | Trap | Fuel_exhausted | Timed_out

let failure_name = function
  | Compile_failed -> "compile"
  | Trap -> "trap"
  | Fuel_exhausted -> "fuel"
  | Timed_out -> "timeout"

(** Raised when a program's baseline cannot be measured; carries the
    program name and a human-readable reason.  Once raised for a program,
    every later evaluation of it re-raises without re-measuring. *)
exception Quarantined of string * string

type entry = {
  e_reward : float;
  e_penalized : bool;  (** the action was penalized (budget or failure) *)
  e_failure : failure option;  (** why, when [e_penalized] *)
}

type t = {
  programs : Dataset.Program.t array;
  options : Pipeline.options;
  timeout_factor : float;
  penalty : float;
  noise_samples : int;
      (** timing samples per measurement when the fault spec is noisy *)
  keys : string array;
      (** per-program content key: source hash + options, precomputed *)
  baselines : (string, float * float) Hashtbl.t;
      (** content key -> (exec seconds, compile seconds) *)
  cache : (string, entry) Hashtbl.t;
      (** content key + decision -> reward entry *)
  quarantined : (string, string) Hashtbl.t;  (** content key -> reason *)
  mutable quarantine_log : (string * string) list;
      (** (program name, reason), newest first *)
  mutable evaluations : int;  (** non-memoized compile+run count *)
  mutable hits : int;  (** memoized reward lookups served from cache *)
}

let create ?(options = Pipeline.default_options) ?(timeout_factor = 10.0)
    ?(penalty = -9.0) ?(noise_samples = 5) (programs : Dataset.Program.t array)
    : t =
  let opt_key = Pipeline.options_key options in
  { programs; options; timeout_factor; penalty; noise_samples;
    keys =
      Array.map
        (fun p -> Frontend.hash_program p ^ "|" ^ opt_key)
        programs;
    baselines = Hashtbl.create (Array.length programs);
    cache = Hashtbl.create (4 * Array.length programs);
    quarantined = Hashtbl.create 8; quarantine_log = [];
    evaluations = 0; hits = 0 }

(** Programs dropped so far, oldest first. *)
let quarantine_report (t : t) : (string * string) list =
  List.rev t.quarantine_log

(* ------------------------------------------------------------------ *)
(* Robust measurement                                                   *)
(* ------------------------------------------------------------------ *)

let classify_exn : exn -> (failure * string) option = function
  | Pipeline.Compile_error msg -> Some (Compile_failed, msg)
  | Ir_interp.Trap msg -> Some (Trap, msg)
  | Faults.Fuel_exhausted msg -> Some (Fuel_exhausted, msg)
  | _ -> None

let median (xs : float list) : float =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      let nth i = List.nth sorted i in
      if n mod 2 = 1 then nth (n / 2)
      else 0.5 *. (nth ((n / 2) - 1) +. nth (n / 2))

(** Median after rejecting samples more than 3 MADs from the median — the
    standard robust defence against heavy-tailed timing spikes. *)
let robust_estimate (xs : float list) : float =
  let m = median xs in
  let mad = median (List.map (fun x -> abs_float (x -. m)) xs) in
  if mad <= 0.0 then m
  else
    match List.filter (fun x -> abs_float (x -. m) <= 3.0 *. mad) xs with
    | [] -> m
    | kept -> median kept

(** (exec, compile) seconds of one measurement point: a single run when
    timing is deterministic, median-of-k with MAD rejection when the fault
    spec injects noise.  Re-raises whatever [f] raises. *)
let measure (t : t) (f : unit -> Pipeline.result) : float * float =
  let r0 = f () in
  if (not (Faults.noisy t.options.Pipeline.faults)) || t.noise_samples <= 1
  then (r0.Pipeline.exec_seconds, r0.Pipeline.compile_seconds)
  else begin
    let rest =
      List.init (t.noise_samples - 1) (fun _ ->
          Stats.record_timing_retry ();
          f ())
    in
    let all = r0 :: rest in
    ( robust_estimate (List.map (fun r -> r.Pipeline.exec_seconds) all),
      robust_estimate (List.map (fun r -> r.Pipeline.compile_seconds) all) )
  end

(* ------------------------------------------------------------------ *)
(* Baseline                                                             *)
(* ------------------------------------------------------------------ *)

let quarantine (t : t) (idx : int) (why : string) : 'a =
  let name = t.programs.(idx).Dataset.Program.p_name in
  if not (Hashtbl.mem t.quarantined t.keys.(idx)) then begin
    Hashtbl.replace t.quarantined t.keys.(idx) why;
    t.quarantine_log <- (name, why) :: t.quarantine_log;
    Stats.record_quarantine ()
  end;
  raise (Quarantined (name, why))

let baseline (t : t) (idx : int) : float * float =
  let key = t.keys.(idx) in
  match Hashtbl.find_opt t.quarantined key with
  | Some why ->
      raise (Quarantined (t.programs.(idx).Dataset.Program.p_name, why))
  | None -> (
      match Hashtbl.find_opt t.baselines key with
      | Some b -> b
      | None -> (
          match
            measure t (fun () ->
                Pipeline.run_baseline ~options:t.options t.programs.(idx))
          with
          | exception e -> (
              match classify_exn e with
              | Some (kind, msg) ->
                  Stats.record_failure (failure_name kind);
                  quarantine t idx
                    (Printf.sprintf "baseline %s: %s" (failure_name kind) msg)
              | None -> raise e)
          | t_exec, t_compile ->
              t.evaluations <- t.evaluations + 1;
              if (not (Float.is_finite t_exec)) || t_exec <= 0.0 then
                quarantine t idx
                  (Printf.sprintf
                     "baseline execution time %g cannot normalize rewards"
                     t_exec)
              else begin
                let b = (t_exec, t_compile) in
                Hashtbl.replace t.baselines key b;
                b
              end))

(* ------------------------------------------------------------------ *)
(* Action evaluation                                                    *)
(* ------------------------------------------------------------------ *)

(** Memoized reward entry of applying [action] to every innermost loop of
    program [idx].  Raises {!Quarantined} if the program's baseline is
    unusable; any failure of the action itself converts to the penalty. *)
let entry (t : t) (idx : int) (action : Rl.Spaces.action) : entry =
  let key =
    Printf.sprintf "%s|vf=%d,if=%d" t.keys.(idx)
      (Rl.Spaces.vf_of action) (Rl.Spaces.if_of action)
  in
  match Hashtbl.find_opt t.cache key with
  | Some e ->
      t.hits <- t.hits + 1;
      Stats.reward_hit ();
      e
  | None -> (
      Stats.reward_miss ();
      let t_base, c_base = baseline t idx in
      let finish e =
        Hashtbl.replace t.cache key e;
        e
      in
      let penalize kind =
        Stats.record_failure (failure_name kind);
        finish
          { e_reward = t.penalty; e_penalized = true; e_failure = Some kind }
      in
      match
        measure t (fun () ->
            Pipeline.run_with_pragma ~options:t.options t.programs.(idx)
              ~vf:(Rl.Spaces.vf_of action) ~if_:(Rl.Spaces.if_of action))
      with
      | exception e -> (
          match classify_exn e with
          | Some (kind, _msg) ->
              t.evaluations <- t.evaluations + 1;
              penalize kind
          | None -> raise e)
      | t_exec, c_act ->
          t.evaluations <- t.evaluations + 1;
          if c_act > t.timeout_factor *. c_base then penalize Timed_out
          else if (not (Float.is_finite t_exec)) || t_exec < 0.0 then
            (* defensive: a non-finite sample must never reach the PPO
               advantages *)
            penalize Trap
          else
            finish
              { e_reward = (t_base -. t_exec) /. t_base; e_penalized = false;
                e_failure = None })

(** Reward of applying [action] to every innermost loop of program [idx]. *)
let reward (t : t) (idx : int) (action : Rl.Spaces.action) : float =
  (entry t idx action).e_reward

(** Execution time under [action] (seconds); penalized actions return the
    baseline time scaled by the timeout factor. *)
let exec_seconds (t : t) (idx : int) (action : Rl.Spaces.action) : float =
  let t_base, _ = baseline t idx in
  let e = entry t idx action in
  if e.e_penalized then t.timeout_factor *. t_base
  else t_base *. (1.0 -. e.e_reward)

(** Best action and reward by exhaustive search (35 compilations, memoized). *)
let brute_force (t : t) (idx : int) : Rl.Spaces.action * float =
  List.fold_left
    (fun (best_a, best_r) a ->
      let r = reward t idx a in
      if r > best_r then (a, r) else (best_a, best_r))
    ({ Rl.Spaces.vf_idx = 0; if_idx = 0 },
     reward t idx { Rl.Spaces.vf_idx = 0; if_idx = 0 })
    Rl.Spaces.all_actions
