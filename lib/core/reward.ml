(** The reward oracle (paper Section 3.3-3.4).

    reward = (t_baseline - t_action) / t_baseline, so positive means
    "faster than the LLVM baseline cost model's choice"; an action whose
    compile time exceeds 10x the baseline compile time short-circuits to
    the penalty reward -9 (equivalent to 10x the baseline execution time),
    teaching the agent not to over-vectorize.

    All (program, action) evaluations are memoized, and the memo table is
    content-addressed: the key is (source hash, pipeline options, pragma
    decision), so duplicate programs in a dataset share entries regardless
    of their names — mirroring how the paper reuses its brute-force
    measurements as supervised labels.  Each entry records whether the
    compile-time penalty fired, so penalized actions are reported exactly
    (not inferred by comparing the reward against the penalty sentinel,
    which misclassified genuine >10x slowdowns as timeouts).

    {b Failure handling.}  The paper's reward is a measurement on real
    hardware, where individual evaluations fail; the oracle therefore
    never lets an evaluation failure escape as a raw exception:

    - An {e action} evaluation that fails (compile error, runtime trap,
      fuel exhaustion) converts to the penalty reward with the failure
      recorded in the entry and in {!Stats} — the policy update proceeds.
    - A {e baseline} failure means the program cannot be normalized at
      all: the program is quarantined ({!Quarantined} is raised and the
      program is remembered, so drivers can skip it and report it).  A
      baseline measuring zero (e.g. a trip-0 loop) is quarantined too —
      dividing by it would send NaN rewards into the PPO advantages.
    - Under nonzero timing noise ({!Faults.noisy}), every measurement is
      the median of [noise_samples] runs with MAD outlier rejection, so
      one heavy-tailed spike cannot poison a cached reward.

    {b Domain safety and determinism.}  The oracle is shared across the
    {!Parpool} domains, so its tables live behind a per-oracle mutex; the
    expensive compile-and-measure work always runs {e outside} the lock.
    Every measurement point is a pure function of its content key — faults
    and timing noise are keyed by (seed, key, sample index), never by a
    shared RNG — so two domains racing on a cold key compute bit-identical
    entries and a [--jobs N] sweep caches exactly the bits a [--jobs 1]
    sweep caches.  Only the [evaluations]/[hits] convenience counters can
    drift under parallelism (a racing duplicate evaluation counts as a
    miss where a serial run would have hit); rewards, penalty flags,
    failure kinds, quarantine sets and {!quarantine_report} order are
    schedule-independent.  {!brute_force} fans its 35 actions across the
    pool when called from the main domain, and stays serial when the
    corpus-level fan-out already owns the domains. *)

(** Why an evaluation failed.  [Hung] is a stalled evaluation cancelled by
    the supervisor's watchdog; [Transient] is a retryable fault that kept
    failing past the retry budget; [Miscompiled] is a plan the translation
    validator refuted — deterministic wrong code, never retried, and the
    only kind that quarantines the whole program from {!brute_force}
    (a transform that miscompiles one plan cannot be trusted on the
    others). *)
type failure =
  | Compile_failed
  | Trap
  | Fuel_exhausted
  | Timed_out
  | Hung
  | Transient
  | Miscompiled

let failure_name = function
  | Compile_failed -> "compile"
  | Trap -> "trap"
  | Fuel_exhausted -> "fuel"
  | Timed_out -> "timeout"
  | Hung -> "hung"
  | Transient -> "transient"
  | Miscompiled -> "miscompile"

let failure_of_name = function
  | "compile" -> Some Compile_failed
  | "trap" -> Some Trap
  | "fuel" -> Some Fuel_exhausted
  | "timeout" -> Some Timed_out
  | "hung" -> Some Hung
  | "transient" -> Some Transient
  | "miscompile" -> Some Miscompiled
  | _ -> None

(** Raised when a program's baseline cannot be measured; carries the
    program name and a human-readable reason.  Once raised for a program,
    every later evaluation of it re-raises without re-measuring. *)
exception Quarantined of string * string

type entry = {
  e_reward : float;
  e_penalized : bool;  (** the action was penalized (budget or failure) *)
  e_failure : failure option;  (** why, when [e_penalized] *)
}

type t = {
  programs : Dataset.Program.t array;
  options : Pipeline.options;
  legacy_pipeline : bool;
      (** evaluate through the legacy per-action pipeline (re-lower +
          re-optimize per action) instead of the shared-artifact fast path;
          both compute bit-identical entries — the flag exists so the
          equivalence gate and benches can run the two engines side by
          side *)
  timeout_factor : float;
  penalty : float;
  noise_samples : int;
      (** timing samples per measurement when the fault spec is noisy *)
  keys : string array;
      (** per-program content key: source hash + options, precomputed *)
  lock : Mutex.t;  (** guards every mutable field below *)
  baselines : (string, float * float) Hashtbl.t;
      (** content key -> (exec seconds, compile seconds) *)
  cache : (string, entry) Hashtbl.t;
      (** content key + decision -> reward entry *)
  quarantined : (string, string) Hashtbl.t;  (** content key -> reason *)
  quarantine_idx : (int, unit) Hashtbl.t;
      (** program indices that hit quarantine, for ordered reporting *)
  refutations : (string, string) Hashtbl.t;
      (** content key + decision -> rendered counterexample, for entries
          whose failure kind is [Miscompiled] *)
  mutable evaluations : int;  (** non-memoized compile+run count *)
  mutable hits : int;  (** memoized reward lookups served from cache *)
  mutable journal : journal option;
      (** write-ahead journal; committed entries are appended under the
          oracle lock, so the file never claims a result the tables don't
          hold *)
}

(** The write-ahead reward journal: one flushed line per committed
    baseline, reward entry and quarantine.  On resume, {!replay_journal}
    pre-populates the oracle's tables so completed episodes are never
    re-measured; because every measurement is deterministic, records lost
    to a torn final line are simply re-measured identically. *)
and journal = { j_path : string; j_oc : out_channel }

let create ?(options = Pipeline.default_options) ?(legacy_pipeline = false)
    ?(timeout_factor = 10.0)
    ?(penalty = -9.0) ?(noise_samples = 5) (programs : Dataset.Program.t array)
    : t =
  let opt_key = Pipeline.options_key options in
  { programs; options; legacy_pipeline; timeout_factor; penalty;
    noise_samples;
    keys =
      Array.map
        (fun p -> Frontend.hash_program p ^ "|" ^ opt_key)
        programs;
    lock = Mutex.create ();
    baselines = Hashtbl.create (Array.length programs);
    cache = Hashtbl.create (4 * Array.length programs);
    quarantined = Hashtbl.create 8; quarantine_idx = Hashtbl.create 8;
    refutations = Hashtbl.create 8;
    evaluations = 0; hits = 0; journal = None }

let locked (t : t) (f : unit -> 'a) : 'a = Mutex.protect t.lock f

(* ------------------------------------------------------------------ *)
(* Write-ahead journal                                                  *)
(* ------------------------------------------------------------------ *)

(* Format: a header line, then one tab-separated record per committed
   result.  Floats are serialized as the hex of their IEEE bits, so replay
   is bit-exact.  Every record ends with a "." terminator field: a line
   torn by a crash mid-write loses it and is skipped by replay.

     # neurovec-journal 1
     B <key> <exec bits> <compile bits> .
     E <key> <reward bits> <penalized 0|1> <failure name | -> .
     Q <key> <escaped reason> .
     V <key> <escaped counterexample> .
*)

let journal_header = "# neurovec-journal 1"

let bits (f : float) : string = Printf.sprintf "%Lx" (Int64.bits_of_float f)

let float_of_bits_opt (s : string) : float option =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some b -> Some (Int64.float_of_bits b)
  | None -> None

(* called with the oracle lock held, immediately after a fresh commit.
   The append is guarded by the disk-fault layer ({!Fsio}) and fails
   closed: on a fault the file is truncated back to its pre-append
   length — a short write must not leave a torn record for replay to
   trip over — earlier records stay untouched, and the channel is
   reopened so the next commit retries with a fresh attempt index.  The
   in-memory tables already hold the result, so a lost line degrades
   resume coverage, never correctness. *)
let journal_line (t : t) (fields : string list) : unit =
  match t.journal with
  | None -> ()
  | Some j -> (
      let line = String.concat "\t" (fields @ [ "." ]) ^ "\n" in
      (* the channel is flushed after every line, so the file length is
         the true append offset (pos_out is unreliable on append-mode
         channels before their first write) *)
      let before =
        try Some (Unix.stat j.j_path).Unix.st_size with Unix.Unix_error _ -> None
      in
      match Fsio.output ~op:"journal" ~path:j.j_path j.j_oc line with
      | () -> Stats.record_journal_append ()
      | exception Fsio.Disk_fault _ ->
          Fsio.record_write_error ();
          close_out_noerr j.j_oc;
          (match before with
          | Some len -> ignore (Fsio.truncate_back j.j_path len)
          | None -> ());
          (match
             open_out_gen
               [ Open_append; Open_creat; Open_binary ]
               0o644 j.j_path
           with
          | oc -> t.journal <- Some { j with j_oc = oc }
          | exception Sys_error _ ->
              (* the disk is gone for good: degrade to in-memory only *)
              t.journal <- None))

let journal_baseline t key (e, c) =
  journal_line t [ "B"; key; bits e; bits c ]

let journal_entry t key (e : entry) =
  journal_line t
    [ "E"; key; bits e.e_reward;
      (if e.e_penalized then "1" else "0");
      (match e.e_failure with Some k -> failure_name k | None -> "-") ]

let journal_quarantine t key why =
  journal_line t [ "Q"; key; String.escaped why ]

let journal_refutation t key cx =
  journal_line t [ "V"; key; String.escaped cx ]

(** Attach a write-ahead journal at [path] (append mode; the header is
    written when the file is new or empty).  Every subsequently committed
    baseline, reward entry and quarantine is flushed there, so a killed
    run can {!replay_journal} the completed episodes instead of
    re-measuring them. *)
let set_journal (t : t) (path : string) : unit =
  locked t (fun () ->
      (match t.journal with Some j -> close_out_noerr j.j_oc | None -> ());
      (* a stale .tmp next to the journal is an interrupted atomic write
         by some sibling artifact: dead bytes, swept, never replayed *)
      ignore (Fsio.sweep_tmp path);
      (* a SIGKILL mid-append leaves a torn final line (no trailing
         newline).  Trim it back to the last complete line before opening
         for append, so new records never glue onto torn bytes: the torn
         tail is dropped, every earlier line replays intact. *)
      (if Sys.file_exists path then
         try
           let ic = open_in_bin path in
           let n = in_channel_length ic in
           let keep =
             if n = 0 then 0
             else begin
               seek_in ic (n - 1);
               if input_char ic = '\n' then n
               else begin
                 (* scan back for the last newline *)
                 let rec back i =
                   if i < 0 then 0
                   else begin
                     seek_in ic i;
                     if input_char ic = '\n' then i + 1 else back (i - 1)
                   end
                 in
                 back (n - 2)
               end
             end
           in
           close_in_noerr ic;
           if keep < n then ignore (Fsio.truncate_back path keep)
         with Sys_error _ -> ());
      let fresh =
        (not (Sys.file_exists path))
        || (let ic = open_in_bin path in
            let n = in_channel_length ic in
            close_in ic;
            n = 0)
      in
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
      in
      if fresh then begin
        output_string oc (journal_header ^ "\n");
        flush oc
      end;
      t.journal <- Some { j_path = path; j_oc = oc })

let journal_path (t : t) : string option =
  locked t (fun () -> Option.map (fun j -> j.j_path) t.journal)

let close_journal (t : t) : unit =
  locked t (fun () ->
      match t.journal with
      | None -> ()
      | Some j ->
          close_out_noerr j.j_oc;
          t.journal <- None)

let unescape (s : string) : string =
  try Scanf.sscanf ("\"" ^ s ^ "\"") "%S%!" Fun.id with _ -> s

(** Replay a journal written by a previous (possibly killed) run into the
    oracle's tables, first record wins; returns how many records loaded.
    Malformed or torn lines — and records whose parse fails — are skipped:
    the measurements they described are deterministic, so the resumed run
    re-derives them bit-identically.  Call before evaluating (typically
    right before {!set_journal} on the same path). *)
let replay_journal (t : t) (path : string) : int =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in_bin path in
    let loaded = ref 0 in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            match String.split_on_char '\t' line with
            | [ "B"; key; e; c; "." ] -> (
                match (float_of_bits_opt e, float_of_bits_opt c) with
                | Some e, Some c ->
                    locked t (fun () ->
                        if not (Hashtbl.mem t.baselines key) then begin
                          Hashtbl.replace t.baselines key (e, c);
                          incr loaded
                        end)
                | _ -> ())
            | [ "E"; key; r; p; f; "." ] -> (
                match (float_of_bits_opt r, p, f) with
                | Some r, ("0" | "1"), f
                  when f = "-" || failure_of_name f <> None ->
                    let e =
                      { e_reward = r; e_penalized = (p = "1");
                        e_failure =
                          (if f = "-" then None else failure_of_name f) }
                    in
                    locked t (fun () ->
                        if not (Hashtbl.mem t.cache key) then begin
                          Hashtbl.replace t.cache key e;
                          incr loaded
                        end)
                | _ -> ())
            | [ "Q"; key; why; "." ] ->
                locked t (fun () ->
                    if not (Hashtbl.mem t.quarantined key) then begin
                      Hashtbl.replace t.quarantined key (unescape why);
                      incr loaded
                    end)
            | [ "V"; key; cx; "." ] ->
                locked t (fun () ->
                    if not (Hashtbl.mem t.refutations key) then begin
                      Hashtbl.replace t.refutations key (unescape cx);
                      incr loaded
                    end)
            | _ -> ()  (* header, torn line, or unknown record kind *)
          done
        with End_of_file -> ());
    Stats.record_journal_replayed !loaded;
    !loaded
  end

(** Programs dropped so far, as (name, reason): program order, one entry
    per distinct content key (the lowest index that hit it reports) — an
    order that depends only on which programs were evaluated, never on
    the schedule that evaluated them. *)
let quarantine_report (t : t) : (string * string) list =
  locked t (fun () ->
      let idxs =
        List.sort compare
          (Hashtbl.fold (fun i () acc -> i :: acc) t.quarantine_idx [])
      in
      let seen = Hashtbl.create 8 in
      List.filter_map
        (fun i ->
          let key = t.keys.(i) in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.replace seen key ();
            Option.map
              (fun why -> (t.programs.(i).Dataset.Program.p_name, why))
              (Hashtbl.find_opt t.quarantined key)
          end)
        idxs)

(* ------------------------------------------------------------------ *)
(* Robust measurement                                                   *)
(* ------------------------------------------------------------------ *)

(* [Verify.Tv.Miscompile] deliberately maps to its own kind and NOT to
   [Transient]: a refutation is a pure function of (program, plan), so
   the supervisor's retry loop must never burn its budget re-validating
   one — {!Supervisor.with_retries} only catches [Faults.Transient], and
   this mapping keeps the taxonomy honest once the exception escapes. *)
let classify_exn : exn -> (failure * string) option = function
  | Pipeline.Compile_error msg -> Some (Compile_failed, msg)
  | Ir_interp.Trap msg -> Some (Trap, msg)
  | Faults.Fuel_exhausted msg -> Some (Fuel_exhausted, msg)
  | Supervisor.Hung msg -> Some (Hung, msg)
  | Faults.Transient msg -> Some (Transient, msg)
  | Verify.Tv.Miscompile msg -> Some (Miscompiled, msg)
  | _ -> None

let median (xs : float list) : float =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      let nth i = List.nth sorted i in
      if n mod 2 = 1 then nth (n / 2)
      else 0.5 *. (nth ((n / 2) - 1) +. nth (n / 2))

(** Median after rejecting samples more than 3 MADs from the median — the
    standard robust defence against heavy-tailed timing spikes. *)
let robust_estimate (xs : float list) : float =
  let m = median xs in
  let mad = median (List.map (fun x -> abs_float (x -. m)) xs) in
  if mad <= 0.0 then m
  else
    match List.filter (fun x -> abs_float (x -. m) <= 3.0 *. mad) xs with
    | [] -> m
    | kept -> median kept

(** (exec, compile) seconds of one measurement point: a single run when
    timing is deterministic, median-of-k with MAD rejection when the fault
    spec injects noise.  [f] receives the resample index, which keys the
    injected noise, so the estimate is the same whatever else ran in
    between.  Re-raises whatever [f] raises. *)
let measure (t : t) (f : sample:int -> float * float) : float * float =
  let e0, c0 = f ~sample:0 in
  if (not (Faults.noisy t.options.Pipeline.faults)) || t.noise_samples <= 1
  then (e0, c0)
  else begin
    let rest =
      List.init (t.noise_samples - 1) (fun k ->
          Stats.record_timing_retry ();
          f ~sample:(k + 1))
    in
    let all = (e0, c0) :: rest in
    ( robust_estimate (List.map fst all),
      robust_estimate (List.map snd all) )
  end

(* ------------------------------------------------------------------ *)
(* Baseline                                                             *)
(* ------------------------------------------------------------------ *)

(* record idx's quarantine (idempotent per key) and raise; lock NOT held.
   [breaker] marks a circuit-breaker trip (counted separately in Stats) *)
let quarantine ?(breaker = false) (t : t) (idx : int) (why : string) : 'a =
  let name = t.programs.(idx).Dataset.Program.p_name in
  let fresh =
    locked t (fun () ->
        Hashtbl.replace t.quarantine_idx idx ();
        if Hashtbl.mem t.quarantined t.keys.(idx) then false
        else begin
          Hashtbl.replace t.quarantined t.keys.(idx) why;
          journal_quarantine t t.keys.(idx) why;
          true
        end)
  in
  if fresh then begin
    Stats.record_quarantine ();
    if breaker then Stats.record_breaker_trip ()
  end;
  raise (Quarantined (name, why))

let baseline (t : t) (idx : int) : float * float =
  let key = t.keys.(idx) in
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.quarantined key with
        | Some why -> Some (Error why)
        | None -> Option.map Result.ok (Hashtbl.find_opt t.baselines key))
  in
  match cached with
  | Some (Error why) ->
      locked t (fun () -> Hashtbl.replace t.quarantine_idx idx ());
      raise (Quarantined (t.programs.(idx).Dataset.Program.p_name, why))
  | Some (Ok b) -> b
  | None -> (
      match
        (* supervised: the watchdog can cancel a stalled attempt; the
           retry loop re-runs attempts that failed transiently, with the
           attempt index keying the injected transient faults so the
           outcome is deterministic at any pool size *)
        Supervisor.supervised ~name:t.programs.(idx).Dataset.Program.p_name
          (fun () ->
            Supervisor.with_retries (fun ~attempt ->
                measure t (fun ~sample ->
                    if t.legacy_pipeline then
                      let r =
                        Pipeline.run_baseline ~options:t.options ~sample
                          ~attempt ~timing_memo:false t.programs.(idx)
                      in
                      (r.Pipeline.exec_seconds, r.Pipeline.compile_seconds)
                    else
                      Pipeline.eval_planned ~options:t.options ~sample
                        ~attempt t.programs.(idx) ~plan:None)))
      with
      | exception e -> (
          match classify_exn e with
          | Some (kind, msg) ->
              Stats.record_failure (failure_name kind);
              quarantine t idx
                (Printf.sprintf "baseline %s: %s" (failure_name kind) msg)
          | None -> raise e)
      | t_exec, t_compile ->
          locked t (fun () -> t.evaluations <- t.evaluations + 1);
          if (not (Float.is_finite t_exec)) || t_exec <= 0.0 then
            quarantine t idx
              (Printf.sprintf
                 "baseline execution time %g cannot normalize rewards"
                 t_exec)
          else begin
            let b = (t_exec, t_compile) in
            locked t (fun () ->
                (* keep the first commit: both racers measured the same
                   deterministic point, so either value is the same *)
                match Hashtbl.find_opt t.baselines key with
                | Some winner -> winner
                | None ->
                    Hashtbl.replace t.baselines key b;
                    journal_baseline t key b;
                    b)
          end)

(* ------------------------------------------------------------------ *)
(* Action evaluation                                                    *)
(* ------------------------------------------------------------------ *)

(** Memoized reward entry of applying [action] to every innermost loop of
    program [idx].  Raises {!Quarantined} if the program's baseline is
    unusable; any failure of the action itself converts to the penalty. *)
let entry (t : t) (idx : int) (action : Rl.Spaces.action) : entry =
  let key =
    Printf.sprintf "%s|vf=%d,if=%d" t.keys.(idx)
      (Rl.Spaces.vf_of action) (Rl.Spaces.if_of action)
  in
  match
    locked t (fun () ->
        match Hashtbl.find_opt t.cache key with
        | Some e ->
            t.hits <- t.hits + 1;
            Some e
        | None -> None)
  with
  | Some e ->
      Stats.reward_hit ();
      e
  | None -> (
      Stats.reward_miss ();
      let t_base, c_base = baseline t idx in
      let finish e =
        locked t (fun () ->
            match Hashtbl.find_opt t.cache key with
            | Some winner -> winner  (* racing duplicate: identical bits *)
            | None ->
                Hashtbl.replace t.cache key e;
                journal_entry t key e;
                e)
      in
      let penalize kind msg =
        Stats.record_failure (failure_name kind);
        (* a refutation is the evidence behind a [Miscompiled] entry; keep
           the rendered counterexample (first commit wins) so quarantine
           reports and the journal carry it *)
        if kind = Miscompiled then
          locked t (fun () ->
              if not (Hashtbl.mem t.refutations key) then begin
                Hashtbl.replace t.refutations key msg;
                journal_refutation t key msg
              end);
        finish
          { e_reward = t.penalty; e_penalized = true; e_failure = Some kind }
      in
      match
        Supervisor.supervised ~name:t.programs.(idx).Dataset.Program.p_name
          (fun () ->
            Supervisor.with_retries (fun ~attempt ->
                measure t (fun ~sample ->
                    if t.legacy_pipeline then
                      let r =
                        Pipeline.run_with_pragma ~options:t.options ~sample
                          ~attempt ~timing_memo:false t.programs.(idx)
                          ~vf:(Rl.Spaces.vf_of action)
                          ~if_:(Rl.Spaces.if_of action)
                      in
                      (r.Pipeline.exec_seconds, r.Pipeline.compile_seconds)
                    else
                      Pipeline.eval_planned ~options:t.options ~sample
                        ~attempt t.programs.(idx)
                        ~plan:
                          (Some
                             (Rl.Spaces.vf_of action, Rl.Spaces.if_of action)))))
      with
      | exception e -> (
          match classify_exn e with
          | Some (kind, msg) ->
              locked t (fun () -> t.evaluations <- t.evaluations + 1);
              penalize kind msg
          | None -> raise e)
      | t_exec, c_act ->
          locked t (fun () -> t.evaluations <- t.evaluations + 1);
          if c_act > t.timeout_factor *. c_base then penalize Timed_out ""
          else if (not (Float.is_finite t_exec)) || t_exec < 0.0 then
            (* defensive: a non-finite sample must never reach the PPO
               advantages *)
            penalize Trap ""
          else
            finish
              { e_reward = (t_base -. t_exec) /. t_base; e_penalized = false;
                e_failure = None })

(** Reward of applying [action] to every innermost loop of program [idx]. *)
let reward (t : t) (idx : int) (action : Rl.Spaces.action) : float =
  (entry t idx action).e_reward

(** The rendered counterexample behind a [Miscompiled] entry for
    (program, action), when one was recorded. *)
let refutation (t : t) (idx : int) (action : Rl.Spaces.action) :
    string option =
  let key =
    Printf.sprintf "%s|vf=%d,if=%d" t.keys.(idx) (Rl.Spaces.vf_of action)
      (Rl.Spaces.if_of action)
  in
  locked t (fun () -> Hashtbl.find_opt t.refutations key)

(** Execution time under [action] (seconds); penalized actions return the
    baseline time scaled by the timeout factor. *)
let exec_seconds (t : t) (idx : int) (action : Rl.Spaces.action) : float =
  let t_base, _ = baseline t idx in
  let e = entry t idx action in
  if e.e_penalized then t.timeout_factor *. t_base
  else t_base *. (1.0 -. e.e_reward)

(** Best action and reward by exhaustive search (35 compilations, memoized;
    actions fan across the {!Parpool} domains).  The argmax reduce runs in
    fixed action order, so ties break identically at any pool size.

    {b Circuit breaker.}  When the fault spec is active, a fixed prefix of
    [Supervisor.breaker_window] actions is probed first (in fixed action
    order); if {e every} probe fails, the program is written off —
    quarantined with a structured per-kind failure summary and counted as
    a breaker trip — instead of burning the remaining evaluations on a
    poisoned program.  Failures are pure functions of (seed, key), and the
    probed prefix is the same at any pool size, so trip decisions are
    deterministic across schedules and identical between [--jobs 1] and
    [--jobs N].  Raises {!Quarantined} on a trip. *)
let brute_force (t : t) (idx : int) : Rl.Spaces.action * float =
  (* measure (or re-raise) the baseline once before fanning out *)
  ignore (baseline t idx);
  let actions = Array.of_list Rl.Spaces.all_actions in
  let w =
    if Faults.active t.options.Pipeline.faults then
      min (Supervisor.breaker_window ()) (Array.length actions)
    else 0
  in
  (* a refuted plan poisons the whole program: a transform that produces
     wrong code for one action cannot be trusted on the others.  Scan
     entries in the fixed action order and quarantine on the lowest-indexed
     [Miscompiled] one, carrying its counterexample — lowest index first so
     the quarantine text is schedule-independent at any [--jobs]. *)
  let miscompile_quarantine (entries : entry array) (off : int) =
    Array.iteri
      (fun i e ->
        if e.e_failure = Some Miscompiled then begin
          let a = actions.(off + i) in
          let cx =
            Option.value ~default:"counterexample unavailable"
              (refutation t idx a)
          in
          quarantine t idx
            (Printf.sprintf "miscompiled (VF=%d, IF=%d): %s"
               (Rl.Spaces.vf_of a) (Rl.Spaces.if_of a) cx)
        end)
      entries
  in
  let prefix = Parpool.map (fun a -> entry t idx a) (Array.sub actions 0 w) in
  miscompile_quarantine prefix 0;
  if w > 0 && Array.for_all (fun e -> e.e_failure <> None) prefix then begin
    let counts = Hashtbl.create 4 in
    Array.iter
      (fun e ->
        match e.e_failure with
        | Some k ->
            let n = failure_name k in
            Hashtbl.replace counts n
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts n))
        | None -> ())
      prefix;
    let summary =
      String.concat ", "
        (List.map
           (fun (k, n) -> Printf.sprintf "%s=%d" k n)
           (List.sort compare
              (Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts [])))
    in
    quarantine ~breaker:true t idx
      (Printf.sprintf "circuit breaker: first %d actions all failed (%s)" w
         summary)
  end;
  let rest =
    Parpool.map
      (fun a -> entry t idx a)
      (Array.sub actions w (Array.length actions - w))
  in
  miscompile_quarantine rest w;
  let rewards =
    Array.map (fun e -> e.e_reward) (Array.append prefix rest)
  in
  let best = ref 0 in
  Array.iteri (fun i r -> if r > rewards.(!best) then best := i) rewards;
  (actions.(!best), rewards.(!best))

(** Evaluate every (program, action) point of the corpus, fanning programs
    across the {!Parpool} domains (each worker sweeps its program's 35
    actions serially).  Quarantined programs yield [None].  Returns each
    program's (best action, best reward) in program order — the whole-corpus
    brute-force sweep of Figure 2, parallelized. *)
let sweep_all (t : t) : (Rl.Spaces.action * float) option array =
  Parpool.map
    (fun idx ->
      match brute_force t idx with
      | best -> Some best
      | exception Quarantined _ -> None)
    (Array.init (Array.length t.programs) Fun.id)
