(** The pragma injector (Figure 4): rewrites program text with
    [#pragma clang loop vectorize_width(VF) interleave_count(IF)] lines in
    front of chosen innermost loops.

    Injection is AST-based (parse, attach, pretty-print), which guarantees
    the pragma lands on the innermost loop of a nest exactly as Section 3
    describes, and cannot corrupt the program text. *)

(** Attach [pragma] to the [ordinal]-th innermost for-loop (source order).
    Other loops keep their existing pragmas unless [clear_others]. *)
let inject_ast ?(clear_others = false) (prog : Minic.Ast.program)
    ~(decisions : (int * Minic.Ast.loop_pragma) list) : Minic.Ast.program =
  let counter = ref (-1) in
  let rec stmt (s : Minic.Ast.stmt) : Minic.Ast.stmt =
    match s with
    | Minic.Ast.For f ->
        let body = stmt f.Minic.Ast.body in
        if Extractor.has_inner_for f.Minic.Ast.body then
          Minic.Ast.For { f with Minic.Ast.body }
        else begin
          incr counter;
          match List.assoc_opt !counter decisions with
          | Some p -> Minic.Ast.For { f with Minic.Ast.body; pragma = Some p }
          | None ->
              let pragma =
                if clear_others then None else f.Minic.Ast.pragma
              in
              Minic.Ast.For { f with Minic.Ast.body; pragma }
        end
    | Minic.Ast.Block ss -> Minic.Ast.Block (List.map stmt ss)
    | Minic.Ast.If (c, t, f) -> Minic.Ast.If (c, stmt t, Option.map stmt f)
    | Minic.Ast.While w ->
        Minic.Ast.While { w with Minic.Ast.w_body = stmt w.Minic.Ast.w_body }
    | other -> other
  in
  List.map
    (function
      | Minic.Ast.Func f ->
          Minic.Ast.Func { f with Minic.Ast.f_body = List.map stmt f.Minic.Ast.f_body }
      | g -> g)
    prog

let pragma_of ~vf ~if_ : Minic.Ast.loop_pragma =
  { Minic.Ast.vectorize_width = Some vf; interleave_count = Some if_;
    vectorize_enable = None }

(** Source-to-source injection: returns the rewritten program text. *)
let inject_source ?(clear_others = false) (source : string)
    ~(decisions : (int * Minic.Ast.loop_pragma) list) : string =
  let prog = Minic.Parser.parse_string source in
  Minic.Pretty.program_to_string (inject_ast ~clear_others prog ~decisions)

(** AST-level convenience: same (vf, if) pragma on every innermost loop. *)
let inject_all_ast (prog : Minic.Ast.program) ~vf ~if_ : Minic.Ast.program =
  let n = List.length (Extractor.extract prog) in
  let decisions = List.init n (fun i -> (i, pragma_of ~vf ~if_)) in
  inject_ast ~clear_others:true prog ~decisions

(** Convenience: same (vf, if) pragma on every innermost loop. *)
let inject_all (source : string) ~vf ~if_ : string =
  let prog = Minic.Parser.parse_string source in
  Minic.Pretty.program_to_string (inject_all_ast prog ~vf ~if_)
