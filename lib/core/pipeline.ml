(** The compile-and-measure pipeline ("clang/LLVM + the testbed" of
    Figure 3): parse, check, lower, optionally run Polly, run the loop
    vectorizer (pragmas first, baseline cost model otherwise), clean up
    with LICM, then price compile time and simulate execution time on the
    target machine.

    The front end (parse + sema) runs at most once per distinct program:
    all entry points pull the checked AST from {!Frontend} and apply
    pragma decisions with [Injector.inject_ast] directly on that AST, so a
    35-action reward sweep pays for parsing exactly once instead of
    round-tripping pretty-printed text per action.  Back-end phases are
    timed under {!Stats}. *)

type options = {
  target : Machine.Target.t;
  polly : bool;
  compile_model : Machine.Compile.t;
  faults : Faults.spec;
      (** fault injection and timing noise; [Faults.none] = off *)
}

let default_options =
  { target = Machine.Target.skylake_avx2; polly = false;
    compile_model = Machine.Compile.default; faults = Faults.none }

(** Stable cache key for an options value (used by the reward cache).
    The fault descriptor is empty when injection is off, so fault-free
    runs keep their original keys. *)
let options_key (o : options) : string =
  Printf.sprintf "%s|polly=%b|cm=%g+%g%s" o.target.Machine.Target.name o.polly
    o.compile_model.Machine.Compile.base_seconds
    o.compile_model.Machine.Compile.per_instr_seconds
    (Faults.descriptor o.faults)

type result = {
  modul : Ir.modul;
  decisions : Vectorizer.Planner.report;
  compile_seconds : float;
  exec_seconds : float;
  exec_cycles : float;
}

exception Compile_error = Frontend.Compile_error

let find_kernel (m : Ir.modul) (name : string) : Ir.func =
  match List.find_opt (fun f -> f.Ir.fn_name = name) m.Ir.m_funcs with
  | Some f -> f
  | None -> raise (Compile_error (Printf.sprintf "kernel %s not found" name))

(** Back end: lower a checked AST and simulate it.  [name], [kernel] and
    [bindings] come from the program the AST was derived from.

    [fault_key] identifies the (program, decision) point for deterministic
    fault injection; entry points derive it from the content hash and the
    pragma decision so the same measurement point always faults the same
    way (defaults to [name] for direct callers).  [sample] numbers the
    median-of-k timing resamples of one point: noise is a pure function of
    (fault seed, fault_key, sample), so results never depend on what other
    evaluations — or other domains — measured in between. *)
let run_ast ?(options = default_options) ?fault_key ?(sample = 0)
    ~(name : string)
    ~(kernel : string) ~(bindings : (string * int) list)
    (prog : Minic.Ast.program) : result =
  let fkey = Option.value fault_key ~default:name in
  (match Faults.pick options.faults ~key:fkey with
  | Some Faults.Compile_fault ->
      raise (Compile_error (name ^ ": injected fault: compile failure"))
  | Some Faults.Trap_fault ->
      raise (Ir_interp.Trap (name ^ ": injected fault: runtime trap"))
  | Some Faults.Fuel_fault ->
      raise
        (Faults.Fuel_exhausted
           (name ^ ": injected fault: interpreter fuel exhausted"))
  | None -> ());
  let m =
    Stats.time Stats.Lower (fun () ->
        try Ir_lower.lower_program ~bindings prog
        with Ir_lower.Error msg ->
          raise (Compile_error (Printf.sprintf "%s: %s" name msg)))
  in
  if options.polly then
    Stats.time Stats.Polly (fun () -> ignore (Polly.Driver.optimize m));
  (* LICM + scalar promotion first (as -licm before the vectorizer in
     LLVM): promotes memory reductions to register reductions the
     vectorizer can widen, and exposes invariant address arithmetic *)
  Stats.time Stats.Scalar_opt (fun () ->
      ignore (Vectorizer.Licm.run_modul m);
      ignore (Vectorizer.Cse.run_modul m);
      ignore (Vectorizer.Licm.run_modul m));
  let decisions =
    Stats.time Stats.Vectorize (fun () -> Vectorizer.Planner.run_modul m)
  in
  Stats.time Stats.Scalar_opt (fun () -> ignore (Vectorizer.Licm.run_modul m));
  let compile_seconds =
    Machine.Compile.seconds ~model:options.compile_model m
    *. Faults.timeout_multiplier options.faults ~key:fkey
  in
  let kernel_fn = find_kernel m kernel in
  let exec_cycles =
    Stats.time Stats.Timing (fun () ->
        Machine.Timing.cycles options.target m kernel_fn)
    *. Faults.noise_factor options.faults ~key:fkey ~sample
  in
  let exec_seconds =
    exec_cycles /. (options.target.Machine.Target.ghz *. 1e9)
  in
  Stats.pipeline_run ();
  { modul = m; decisions; compile_seconds; exec_seconds; exec_cycles }

let run_artifact ?(options = default_options) ?fault_key ?sample
    (p : Dataset.Program.t) (prog : Minic.Ast.program) : result =
  run_ast ~options ?fault_key ?sample ~name:p.Dataset.Program.p_name
    ~kernel:p.Dataset.Program.p_kernel ~bindings:p.Dataset.Program.p_bindings
    prog

(** Compile and simulate one program, honouring pragmas in its source. *)
let run ?(options = default_options) ?sample (p : Dataset.Program.t) : result =
  let a = Frontend.checked p in
  run_artifact ~options ?sample ~fault_key:(a.Frontend.a_hash ^ "|asis") p
    a.Frontend.a_ast

(** Compile with a specific (vf, if) pragma on every innermost loop. *)
let run_with_pragma ?(options = default_options) ?sample
    (p : Dataset.Program.t) ~vf ~if_ : result =
  let a = Frontend.checked p in
  let decisions =
    List.init a.Frontend.a_loops (fun i -> (i, Injector.pragma_of ~vf ~if_))
  in
  run_artifact ~options ?sample
    ~fault_key:(Printf.sprintf "%s|vf=%d,if=%d" a.Frontend.a_hash vf if_)
    p
    (Injector.inject_ast ~clear_others:true a.Frontend.a_ast ~decisions)

(** Compile with the baseline cost model only (existing pragmas removed). *)
let run_baseline ?(options = default_options) ?sample (p : Dataset.Program.t)
    : result =
  let a = Frontend.checked p in
  run_artifact ~options ?sample ~fault_key:(a.Frontend.a_hash ^ "|baseline") p
    (Injector.inject_ast ~clear_others:true a.Frontend.a_ast ~decisions:[])

(** Compile with per-loop pragma decisions. *)
let run_with_decisions ?(options = default_options) ?sample
    (p : Dataset.Program.t)
    ~(decisions : (int * Minic.Ast.loop_pragma) list) : result =
  let a = Frontend.checked p in
  let fault_key =
    a.Frontend.a_hash ^ "|d:"
    ^ String.concat ";"
        (List.map
           (fun (ord, pr) ->
             Printf.sprintf "%d=%d,%d" ord
               (Option.value pr.Minic.Ast.vectorize_width ~default:0)
               (Option.value pr.Minic.Ast.interleave_count ~default:0))
           decisions)
  in
  run_artifact ~options ?sample ~fault_key p
    (Injector.inject_ast ~clear_others:true a.Frontend.a_ast ~decisions)
