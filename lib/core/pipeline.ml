(** The compile-and-measure pipeline ("clang/LLVM + the testbed" of
    Figure 3): parse, check, lower, optionally run Polly, run the loop
    vectorizer (pragmas first, baseline cost model otherwise), clean up
    with LICM, then price compile time and simulate execution time on the
    target machine.

    The front end (parse + sema) runs at most once per distinct program:
    all entry points pull the checked AST from {!Frontend} and apply
    pragma decisions with [Injector.inject_ast] directly on that AST, so a
    35-action reward sweep pays for parsing exactly once instead of
    round-tripping pretty-printed text per action.  Back-end phases are
    timed under {!Stats}. *)

type options = {
  target : Machine.Target.t;
  polly : bool;
  compile_model : Machine.Compile.t;
  faults : Faults.spec;
      (** fault injection and timing noise; [Faults.none] = off *)
  verify : bool;
      (** translation validation: after measuring a point, interpret the
          transformed module against the scalar reference over a
          content-derived input set ({!Verify.Tv}); a refutation raises
          {!Verify.Tv.Miscompile}, which the reward oracle converts to the
          [Miscompiled] quarantine kind *)
}

let default_options =
  { target = Machine.Target.skylake_avx2; polly = false;
    compile_model = Machine.Compile.default; faults = Faults.none;
    verify = false }

(** [true] when [NEUROVEC_VERIFY] asks for translation validation. *)
let verify_of_env () : bool =
  match Sys.getenv_opt "NEUROVEC_VERIFY" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | _ -> false

(** Stable cache key for an options value (used by the reward cache).
    The fault descriptor is empty when injection is off and the verify
    suffix only appears when validation is on, so existing runs keep
    their original keys. *)
let options_key (o : options) : string =
  Printf.sprintf "%s|polly=%b|cm=%g+%g%s%s" o.target.Machine.Target.name
    o.polly o.compile_model.Machine.Compile.base_seconds
    o.compile_model.Machine.Compile.per_instr_seconds
    (Faults.descriptor o.faults)
    (if o.verify then "|verify" else "")

type result = {
  modul : Ir.modul;
  decisions : Vectorizer.Planner.report;
  compile_seconds : float;
  exec_seconds : float;
  exec_cycles : float;
}

exception Compile_error = Frontend.Compile_error

let find_kernel (m : Ir.modul) (name : string) : Ir.func =
  match List.find_opt (fun f -> f.Ir.fn_name = name) m.Ir.m_funcs with
  | Some f -> f
  | None -> raise (Compile_error (Printf.sprintf "kernel %s not found" name))

(* The seeded fault preamble shared by every evaluation entry point, run
   before any real work.  Order matters and is part of the determinism
   contract: persistent discrete faults first (a point that cannot compile
   can never be rescued by retrying), then the transient class (keyed by
   the attempt index, so the supervisor's retry loop can converge), then
   stalls (the cooperative wait only the watchdog ends — checked last so a
   point that deterministically fails does so promptly instead of hanging
   first). *)
let inject_faults ~(faults : Faults.spec) ~(name : string) ~(fkey : string)
    ~(attempt : int) : unit =
  (match Faults.pick faults ~key:fkey with
  | Some Faults.Compile_fault ->
      raise (Compile_error (name ^ ": injected fault: compile failure"))
  | Some Faults.Trap_fault ->
      raise (Ir_interp.Trap (name ^ ": injected fault: runtime trap"))
  | Some Faults.Fuel_fault ->
      raise
        (Faults.Fuel_exhausted
           (name ^ ": injected fault: interpreter fuel exhausted"))
  | None -> ());
  if Faults.transient_hit faults ~key:fkey ~attempt then
    raise
      (Faults.Transient
         (Printf.sprintf "%s: injected fault: transient testbed failure \
                          (attempt %d)" name attempt));
  if Faults.stall_hit faults ~key:fkey then Supervisor.stall_point ~name

(* ------------------------------------------------------------------ *)
(* Translation validation                                               *)
(* ------------------------------------------------------------------ *)

(* Verdicts are cached content-addressed next to the reward cache: the key
   is (content hash, polly, kernel, applied plans, options), so the many
   requested actions that clamp to one applied plan share one verdict, and
   a warm sweep pays nothing for [--verify].  Cached values are the
   rendered counterexample ([None] = equivalent); verdicts are pure
   functions of the key (the input set derives from it — no wall clock,
   no shared RNG), so first-commit-wins races are invisible and a
   [--jobs N] sweep caches exactly the bits a [--jobs 1] sweep caches. *)

let vd_n_shards = 16

type vd_shard = {
  vd_lock : Mutex.t;
  vd_tbl : (string, string option) Hashtbl.t;
      (** verdict key -> [None] (equivalent) or rendered counterexample *)
}

let vd_shards =
  Array.init vd_n_shards (fun _ ->
      { vd_lock = Mutex.create (); vd_tbl = Hashtbl.create 64 })

let vd_shard_of (key : string) : vd_shard =
  vd_shards.(Char.code key.[0] mod vd_n_shards)

let () =
  Frontend.on_clear (fun () ->
      Array.iter
        (fun s -> Mutex.protect s.vd_lock (fun () -> Hashtbl.reset s.vd_tbl))
        vd_shards;
      Verify.Tv.clear_cache ())

(** The per-loop applied plans of a planner report, as the stable
    signature string shared by the verdict cache and the point memo. *)
let decisions_sig (report : Vectorizer.Planner.report) : string =
  String.concat ";"
    (List.map
       (fun d ->
         Printf.sprintf "%d,%d"
           d.Vectorizer.Planner.d_applied.Vectorizer.Transform.vf
           d.Vectorizer.Planner.d_applied.Vectorizer.Transform.if_)
       report)

let applied_sig (plans : Vectorizer.Transform.plan list) : string =
  String.concat ";"
    (List.map
       (fun pl ->
         Printf.sprintf "%d,%d" pl.Vectorizer.Transform.vf
           pl.Vectorizer.Transform.if_)
       plans)

(* Validate one measured point when [options.verify] is on: raise
   {!Verify.Tv.Miscompile} iff the plan's verdict is a refutation.  Runs
   after measurement, so timings and memos are untouched whether or not
   validation passes.  [modul] is lazy so a verdict-cache hit never
   materializes the transformed module (the memoized eval path skips
   copy + transform entirely on warm points).  The [miscompile] fault
   knob keys its sabotage by the same content key, so a broken-transform
   drill produces the same refutation for every action that clamps to
   the sabotaged plan, at any [--jobs]. *)
let verify_point ~(options : options) (p : Dataset.Program.t)
    (a : Frontend.artifact) ~(psig : string) ~(modul : Ir.modul Lazy.t) :
    unit =
  if options.verify then begin
    let kernel = p.Dataset.Program.p_kernel in
    let ppkey =
      Printf.sprintf "%s|polly=%b|%s|%s" a.Frontend.a_hash options.polly
        kernel psig
    in
    let vkey = ppkey ^ "|" ^ options_key options in
    let s = vd_shard_of vkey in
    let outcome =
      match
        Mutex.protect s.vd_lock (fun () -> Hashtbl.find_opt s.vd_tbl vkey)
      with
      | Some o ->
          Stats.verify_hit ();
          o
      | None ->
          Stats.verify_miss ();
          (* interpret outside the lock: slow, deterministic, idempotent *)
          let scalar = Frontend.scalar_ref_of p a in
          let verdict =
            Verify.Tv.verify
              ~sabotage:(Faults.miscompile_hit options.faults ~key:ppkey)
              ~key:ppkey ~scalar
              ~scalar_key:(a.Frontend.a_hash ^ "|" ^ kernel)
              ~kernel (Lazy.force modul)
          in
          let o =
            match verdict with
            | Verify.Tv.Equivalent -> None
            | Verify.Tv.Refuted cx ->
                Stats.record_verify_cx ();
                Some (Verify.Tv.render cx)
          in
          Mutex.protect s.vd_lock (fun () ->
              match Hashtbl.find_opt s.vd_tbl vkey with
              | Some winner -> winner
              | None ->
                  Hashtbl.replace s.vd_tbl vkey o;
                  o)
    in
    match outcome with
    | None -> ()
    | Some cx ->
        Stats.record_verify_refute ();
        raise (Verify.Tv.Miscompile cx)
  end

(** Back end: lower a checked AST and simulate it.  [name], [kernel] and
    [bindings] come from the program the AST was derived from.

    [fault_key] identifies the (program, decision) point for deterministic
    fault injection; entry points derive it from the content hash and the
    pragma decision so the same measurement point always faults the same
    way (defaults to [name] for direct callers).  [sample] numbers the
    median-of-k timing resamples of one point: noise is a pure function of
    (fault seed, fault_key, sample), so results never depend on what other
    evaluations — or other domains — measured in between.  [attempt]
    numbers the supervisor's retries of the whole point: transient faults
    are a pure function of (fault seed, fault_key, attempt), so a retry
    can succeed deterministically. *)
let run_ast ?(options = default_options) ?fault_key ?(sample = 0)
    ?(attempt = 0) ?(timing_memo = true)
    ~(name : string)
    ~(kernel : string) ~(bindings : (string * int) list)
    (prog : Minic.Ast.program) : result =
  let fkey = Option.value fault_key ~default:name in
  inject_faults ~faults:options.faults ~name ~fkey ~attempt;
  let m =
    Stats.time Stats.Lower (fun () ->
        try Ir_lower.lower_program ~bindings prog
        with Ir_lower.Error msg ->
          raise (Compile_error (Printf.sprintf "%s: %s" name msg)))
  in
  if options.polly then
    Stats.time Stats.Polly (fun () -> ignore (Polly.Driver.optimize m));
  (* LICM + scalar promotion first (as -licm before the vectorizer in
     LLVM): promotes memory reductions to register reductions the
     vectorizer can widen, and exposes invariant address arithmetic *)
  Stats.time Stats.Scalar_opt (fun () ->
      ignore (Vectorizer.Licm.run_modul m);
      ignore (Vectorizer.Cse.run_modul m);
      ignore (Vectorizer.Licm.run_modul m));
  let decisions =
    Stats.time Stats.Vectorize (fun () -> Vectorizer.Planner.run_modul m)
  in
  Stats.time Stats.Scalar_opt (fun () -> ignore (Vectorizer.Licm.run_modul m));
  let compile_seconds =
    Machine.Compile.seconds ~model:options.compile_model m
    *. Faults.timeout_multiplier options.faults ~key:fkey
  in
  let kernel_fn = find_kernel m kernel in
  let exec_cycles =
    Stats.time Stats.Timing (fun () ->
        Machine.Timing.cycles ~memo:timing_memo options.target m kernel_fn)
    *. Faults.noise_factor options.faults ~key:fkey ~sample
  in
  let exec_seconds =
    exec_cycles /. (options.target.Machine.Target.ghz *. 1e9)
  in
  Stats.pipeline_run ();
  { modul = m; decisions; compile_seconds; exec_seconds; exec_cycles }

let run_artifact ?(options = default_options) ?fault_key ?sample ?attempt
    ?timing_memo (p : Dataset.Program.t) (prog : Minic.Ast.program) : result =
  let r =
    run_ast ~options ?fault_key ?sample ?attempt ?timing_memo
      ~name:p.Dataset.Program.p_name
      ~kernel:p.Dataset.Program.p_kernel
      ~bindings:p.Dataset.Program.p_bindings prog
  in
  verify_point ~options p (Frontend.checked p)
    ~psig:(decisions_sig r.decisions) ~modul:(lazy r.modul);
  r

(** Compile and simulate one program, honouring pragmas in its source. *)
let run ?(options = default_options) ?sample (p : Dataset.Program.t) : result =
  let a = Frontend.checked p in
  run_artifact ~options ?sample ~fault_key:(a.Frontend.a_hash ^ "|asis") p
    a.Frontend.a_ast

(** Compile with a specific (vf, if) pragma on every innermost loop.
    [timing_memo:false] makes the run reproduce the pre-memo timing-model
    cost (same bits, more work) — the legacy reference for the sweep
    benchmark. *)
let run_with_pragma ?(options = default_options) ?sample ?attempt ?timing_memo
    (p : Dataset.Program.t) ~vf ~if_ : result =
  let a = Frontend.checked p in
  let decisions =
    List.init a.Frontend.a_loops (fun i -> (i, Injector.pragma_of ~vf ~if_))
  in
  run_artifact ~options ?sample ?attempt ?timing_memo
    ~fault_key:(Printf.sprintf "%s|vf=%d,if=%d" a.Frontend.a_hash vf if_)
    p
    (Injector.inject_ast ~clear_others:true a.Frontend.a_ast ~decisions)

(** Compile with the baseline cost model only (existing pragmas removed). *)
let run_baseline ?(options = default_options) ?sample ?attempt ?timing_memo
    (p : Dataset.Program.t)
    : result =
  let a = Frontend.checked p in
  run_artifact ~options ?sample ?attempt ?timing_memo
    ~fault_key:(a.Frontend.a_hash ^ "|baseline") p
    (Injector.inject_ast ~clear_others:true a.Frontend.a_ast ~decisions:[])

(* ------------------------------------------------------------------ *)
(* Shared-artifact fast path                                            *)
(* ------------------------------------------------------------------ *)

(** Compile and simulate one (program, action) point on the shared
    pre-vectorization artifact: the program is lowered and LICM/CSE'd at
    most once per content ({!Frontend.prevec}); each call takes an
    {!Ir.copy_modul} of that pristine module and drives the planner with an
    explicit plan — [Some (vf, if_)] applies the pair to every innermost
    loop exactly as {!run_with_pragma} does through pragmas, [None] is the
    baseline cost model's own choice exactly as {!run_baseline}.

    Bit-identical to the legacy per-action pipeline by construction: the
    mid-end passes are pragma-oblivious and deterministic, the copy
    preserves register numbering, and fault keys keep their existing
    [hash|vf=..,if=..] / [hash|baseline] form, so seeded fault schedules
    and timing noise are unchanged.  What changes is only the work: 35
    actions cost one front-to-mid-end instead of 35. *)
let run_planned ?(options = default_options) ?fault_key ?(sample = 0)
    ?(attempt = 0) (p : Dataset.Program.t) ~(plan : (int * int) option) :
    result =
  let a = Frontend.checked p in
  let fkey =
    match fault_key with
    | Some k -> k
    | None -> (
        match plan with
        | Some (vf, if_) ->
            Printf.sprintf "%s|vf=%d,if=%d" a.Frontend.a_hash vf if_
        | None -> a.Frontend.a_hash ^ "|baseline")
  in
  let name = p.Dataset.Program.p_name in
  inject_faults ~faults:options.faults ~name ~fkey ~attempt;
  let pv = Frontend.prevec_of ~polly:options.polly p a in
  let m = Ir.copy_modul pv.Frontend.pv_modul in
  let plan_t =
    Option.map
      (fun (vf, if_) -> { Vectorizer.Transform.vf; if_ })
      plan
  in
  let decisions =
    Stats.time Stats.Vectorize (fun () ->
        Vectorizer.Planner.run_prepared ~plan:plan_t m pv.Frontend.pv_preps)
  in
  Stats.time Stats.Scalar_opt (fun () ->
      ignore (Vectorizer.Licm.run_modul m));
  let compile_seconds =
    Machine.Compile.seconds ~model:options.compile_model m
    *. Faults.timeout_multiplier options.faults ~key:fkey
  in
  let kernel_fn = find_kernel m p.Dataset.Program.p_kernel in
  let exec_cycles =
    Stats.time Stats.Timing (fun () ->
        Machine.Timing.cycles options.target m kernel_fn)
    *. Faults.noise_factor options.faults ~key:fkey ~sample
  in
  let exec_seconds =
    exec_cycles /. (options.target.Machine.Target.ghz *. 1e9)
  in
  Stats.pipeline_run ();
  verify_point ~options p a ~psig:(decisions_sig decisions)
    ~modul:(lazy m);
  { modul = m; decisions; compile_seconds; exec_seconds; exec_cycles }

(* ------------------------------------------------------------------ *)
(* Memoized point evaluation                                            *)
(* ------------------------------------------------------------------ *)

(* Evaluation points collapse: legality clamps each requested (vf, if) to
   what the loop admits, so many of the 35 actions in a sweep share one
   applied plan per loop — and therefore one transformed module, one
   compile-time estimate, one cycle count.  The memo keys a point by
   (prevec content, options, kernel, applied plan per loop): computing the
   key costs one clamp per loop, and a hit skips copy + transform + LICM +
   compile modelling + timing entirely.  Cached values are raw
   pre-fault-multiplier floats; noise and timeout factors are pure
   functions of (fault key, sample) applied outside the memo, so cached
   points are bit-identical to freshly measured ones at every sample. *)

let pt_n_shards = 16

type pt_shard = {
  pt_lock : Mutex.t;
  pt_tbl : (string, float * float) Hashtbl.t;
      (** point key -> (raw compile seconds, raw exec cycles) *)
}

let pt_shards =
  Array.init pt_n_shards (fun _ ->
      { pt_lock = Mutex.create (); pt_tbl = Hashtbl.create 64 })

let pt_shard_of (key : string) : pt_shard =
  (* point keys start with the content hash hex digest *)
  pt_shards.(Char.code key.[0] mod pt_n_shards)

let () =
  Frontend.on_clear (fun () ->
      Array.iter
        (fun s -> Mutex.protect s.pt_lock (fun () -> Hashtbl.reset s.pt_tbl))
        pt_shards)

(* the plan each loop will actually receive — exactly the clamp
   [Vectorizer.Planner.run_prepared] performs before transforming *)
let applied_plans ~(plan : (int * int) option)
    (preps : Vectorizer.Planner.prep list) : Vectorizer.Transform.plan list =
  List.map
    (fun pr ->
      let leg = pr.Vectorizer.Planner.pr_leg in
      let requested =
        match plan with
        | Some (vf, if_) -> { Vectorizer.Transform.vf; if_ }
        | None ->
            Vectorizer.Costmodel.choose
              ~table:Vectorizer.Costmodel.default_table leg
      in
      let vf, if_ =
        Vectorizer.Legality.clamp leg ~vf:requested.Vectorizer.Transform.vf
          ~if_:requested.Vectorizer.Transform.if_
      in
      { Vectorizer.Transform.vf; if_ })
    preps

(** (exec_seconds, compile_seconds) of one planned point — the oracle's
    hot path.  Same semantics as {!run_planned} (including fault keys and
    injected failures) without materializing the transformed module, so
    the point memo can serve repeats of an applied plan from the table. *)
let eval_planned ?(options = default_options) ?fault_key ?(sample = 0)
    ?(attempt = 0) (p : Dataset.Program.t) ~(plan : (int * int) option) :
    float * float =
  let a = Frontend.checked p in
  let fkey =
    match fault_key with
    | Some k -> k
    | None -> (
        match plan with
        | Some (vf, if_) ->
            Printf.sprintf "%s|vf=%d,if=%d" a.Frontend.a_hash vf if_
        | None -> a.Frontend.a_hash ^ "|baseline")
  in
  let name = p.Dataset.Program.p_name in
  inject_faults ~faults:options.faults ~name ~fkey ~attempt;
  let pv = Frontend.prevec_of ~polly:options.polly p a in
  let plans = applied_plans ~plan pv.Frontend.pv_preps in
  let psig = applied_sig plans in
  let key =
    Printf.sprintf "%s|%s|%s|%s" pv.Frontend.pv_hash (options_key options)
      p.Dataset.Program.p_kernel psig
  in
  let s = pt_shard_of key in
  let compile_raw, cycles_raw =
    match
      Mutex.protect s.pt_lock (fun () -> Hashtbl.find_opt s.pt_tbl key)
    with
    | Some v ->
        Stats.point_hit ();
        v
    | None ->
        Stats.point_miss ();
        (* measure outside the lock: slow, deterministic, idempotent *)
        let m = Ir.copy_modul pv.Frontend.pv_modul in
        let plan_t =
          Option.map (fun (vf, if_) -> { Vectorizer.Transform.vf; if_ }) plan
        in
        ignore
          (Stats.time Stats.Vectorize (fun () ->
               Vectorizer.Planner.run_prepared ~plan:plan_t m
                 pv.Frontend.pv_preps));
        Stats.time Stats.Scalar_opt (fun () ->
            ignore (Vectorizer.Licm.run_modul m));
        let compile_raw =
          Machine.Compile.seconds ~model:options.compile_model m
        in
        let kernel_fn = find_kernel m p.Dataset.Program.p_kernel in
        let cycles_raw =
          Stats.time Stats.Timing (fun () ->
              Machine.Timing.cycles options.target m kernel_fn)
        in
        let v = (compile_raw, cycles_raw) in
        Mutex.protect s.pt_lock (fun () ->
            match Hashtbl.find_opt s.pt_tbl key with
            | Some winner -> winner  (* a racing domain measured it first *)
            | None ->
                Hashtbl.replace s.pt_tbl key v;
                v)
  in
  let compile_seconds =
    compile_raw *. Faults.timeout_multiplier options.faults ~key:fkey
  in
  let exec_cycles =
    cycles_raw *. Faults.noise_factor options.faults ~key:fkey ~sample
  in
  Stats.pipeline_run ();
  (* validate after measuring; a verdict-cache hit never re-materializes
     the transformed module, so warm verified sweeps stay memo-fast *)
  verify_point ~options p a ~psig
    ~modul:
      (lazy
        (let m = Ir.copy_modul pv.Frontend.pv_modul in
         let plan_t =
           Option.map
             (fun (vf, if_) -> { Vectorizer.Transform.vf; if_ })
             plan
         in
         ignore
           (Vectorizer.Planner.run_prepared ~plan:plan_t m
              pv.Frontend.pv_preps);
         ignore (Vectorizer.Licm.run_modul m);
         m));
  (exec_cycles /. (options.target.Machine.Target.ghz *. 1e9), compile_seconds)

(** Compile with per-loop pragma decisions.  [attempt] numbers the
    supervisor's retries of the whole point, as in {!run_with_pragma} —
    the serve daemon threads it so transient faults on the decision path
    can recover deterministically. *)
let run_with_decisions ?(options = default_options) ?sample ?attempt
    (p : Dataset.Program.t)
    ~(decisions : (int * Minic.Ast.loop_pragma) list) : result =
  let a = Frontend.checked p in
  let fault_key =
    a.Frontend.a_hash ^ "|d:"
    ^ String.concat ";"
        (List.map
           (fun (ord, pr) ->
             Printf.sprintf "%d=%d,%d" ord
               (Option.value pr.Minic.Ast.vectorize_width ~default:0)
               (Option.value pr.Minic.Ast.interleave_count ~default:0))
           decisions)
  in
  run_artifact ~options ?sample ?attempt ~fault_key p
    (Injector.inject_ast ~clear_others:true a.Frontend.a_ast ~decisions)
