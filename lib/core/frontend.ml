(** Compiled front-end artifacts.

    Every oracle client (PPO training, brute force, NNS, the decision tree)
    evaluates ~35 actions per program, and each evaluation used to re-run
    the whole front end on freshly pretty-printed text.  Parsing and
    semantic analysis depend only on the program source and its symbolic
    bindings — not on the pragma decision under evaluation — so we do them
    once, cache the checked AST keyed by a content hash, and let
    {!Pipeline} apply pragma decisions directly on the cached AST.

    The cache is process-global and content-addressed: two [Program.t]
    values with identical source and bindings (regardless of name, kernel
    or family) share one artifact.  Traffic is recorded in {!Stats}.

    {b Domain safety.}  Evaluations fan across domains ({!Parpool}), so
    the table is sharded by content hash with one mutex per shard: lookups
    on different programs never contend, and a miss parses {e outside} the
    lock — two domains racing on the same cold program may both parse it,
    but parsing is deterministic, so whichever artifact lands last is
    bit-identical to the other and results cannot depend on the race. *)

(** Raised for any malformed program: parse errors, semantic errors, and
    (via {!Pipeline}) lowering failures.  [Pipeline.Compile_error] is a
    re-export of this exception, so existing handlers keep working. *)
exception Compile_error of string

type artifact = {
  a_hash : string;  (** content hash of (source, bindings) *)
  a_ast : Minic.Ast.program;  (** parsed and sema-checked, pragmas intact *)
  a_loops : int;  (** innermost for-loop count, in extractor order *)
}

(** Content hash of a program's source and bindings (name/kernel/family are
    metadata the front end never sees). *)
let hash_program (p : Dataset.Program.t) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "\x01"
          (p.Dataset.Program.p_source
          :: List.concat_map
               (fun (k, v) -> [ k; string_of_int v ])
               p.Dataset.Program.p_bindings)))

let n_shards = 16

type shard = { lock : Mutex.t; tbl : (string, artifact) Hashtbl.t }

let shards =
  Array.init n_shards (fun _ ->
      { lock = Mutex.create (); tbl = Hashtbl.create 32 })

let shard_of (h : string) : shard =
  (* the content hash is a hex digest: its first byte is already uniform *)
  shards.(Char.code h.[0] mod n_shards)

let clear () =
  Array.iter
    (fun s -> Mutex.protect s.lock (fun () -> Hashtbl.reset s.tbl))
    shards

let size () =
  Array.fold_left
    (fun acc s -> acc + Mutex.protect s.lock (fun () -> Hashtbl.length s.tbl))
    0 shards

(** Parse and sema-check [p], wrapping front-end failures in
    {!Compile_error} (timed under [Stats.Parse] / [Stats.Sema]). *)
let parse_checked (p : Dataset.Program.t) : Minic.Ast.program =
  let prog =
    Stats.time Stats.Parse (fun () ->
        try Minic.Parser.parse_string p.Dataset.Program.p_source
        with Minic.Parser.Error (msg, pos) ->
          raise
            (Compile_error
               (Printf.sprintf "%s: parse error at %d:%d: %s"
                  p.Dataset.Program.p_name pos.Minic.Token.line
                  pos.Minic.Token.col msg)))
  in
  Stats.time Stats.Sema (fun () ->
      try
        ignore (Minic.Sema.analyze ~bindings:p.Dataset.Program.p_bindings prog)
      with Minic.Sema.Error msg ->
        raise
          (Compile_error
             (Printf.sprintf "%s: %s" p.Dataset.Program.p_name msg)));
  prog

(** The checked AST for [p], parsed and analyzed at most once per distinct
    (source, bindings) content.  Malformed programs are not cached; every
    attempt re-raises {!Compile_error}. *)
let checked (p : Dataset.Program.t) : artifact =
  let h = hash_program p in
  let s = shard_of h in
  match Mutex.protect s.lock (fun () -> Hashtbl.find_opt s.tbl h) with
  | Some a ->
      Stats.frontend_hit ();
      a
  | None ->
      Stats.frontend_miss ();
      (* parse outside the lock: slow, deterministic, idempotent *)
      let ast = parse_checked p in
      let a =
        { a_hash = h; a_ast = ast;
          a_loops = List.length (Extractor.extract ast) }
      in
      Mutex.protect s.lock (fun () ->
          match Hashtbl.find_opt s.tbl h with
          | Some winner -> winner  (* a racing domain parsed it first *)
          | None ->
              Hashtbl.replace s.tbl h a;
              a)
