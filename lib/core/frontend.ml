(** Compiled front-end artifacts.

    Every oracle client (PPO training, brute force, NNS, the decision tree)
    evaluates ~35 actions per program, and each evaluation used to re-run
    the whole front end on freshly pretty-printed text.  Parsing and
    semantic analysis depend only on the program source and its symbolic
    bindings — not on the pragma decision under evaluation — so we do them
    once, cache the checked AST keyed by a content hash, and let
    {!Pipeline} apply pragma decisions directly on the cached AST.

    The cache is process-global and content-addressed: two [Program.t]
    values with identical source and bindings (regardless of name, kernel
    or family) share one artifact.  Traffic is recorded in {!Stats}. *)

(** Raised for any malformed program: parse errors, semantic errors, and
    (via {!Pipeline}) lowering failures.  [Pipeline.Compile_error] is a
    re-export of this exception, so existing handlers keep working. *)
exception Compile_error of string

type artifact = {
  a_hash : string;  (** content hash of (source, bindings) *)
  a_ast : Minic.Ast.program;  (** parsed and sema-checked, pragmas intact *)
  a_loops : int;  (** innermost for-loop count, in extractor order *)
}

(** Content hash of a program's source and bindings (name/kernel/family are
    metadata the front end never sees). *)
let hash_program (p : Dataset.Program.t) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "\x01"
          (p.Dataset.Program.p_source
          :: List.concat_map
               (fun (k, v) -> [ k; string_of_int v ])
               p.Dataset.Program.p_bindings)))

let cache : (string, artifact) Hashtbl.t = Hashtbl.create 256

let clear () = Hashtbl.reset cache
let size () = Hashtbl.length cache

(** Parse and sema-check [p], wrapping front-end failures in
    {!Compile_error} (timed under [Stats.Parse] / [Stats.Sema]). *)
let parse_checked (p : Dataset.Program.t) : Minic.Ast.program =
  let prog =
    Stats.time Stats.Parse (fun () ->
        try Minic.Parser.parse_string p.Dataset.Program.p_source
        with Minic.Parser.Error (msg, pos) ->
          raise
            (Compile_error
               (Printf.sprintf "%s: parse error at %d:%d: %s"
                  p.Dataset.Program.p_name pos.Minic.Token.line
                  pos.Minic.Token.col msg)))
  in
  Stats.time Stats.Sema (fun () ->
      try
        ignore (Minic.Sema.analyze ~bindings:p.Dataset.Program.p_bindings prog)
      with Minic.Sema.Error msg ->
        raise
          (Compile_error
             (Printf.sprintf "%s: %s" p.Dataset.Program.p_name msg)));
  prog

(** The checked AST for [p], parsed and analyzed at most once per distinct
    (source, bindings) content.  Malformed programs are not cached; every
    attempt re-raises {!Compile_error}. *)
let checked (p : Dataset.Program.t) : artifact =
  let h = hash_program p in
  match Hashtbl.find_opt cache h with
  | Some a ->
      Stats.frontend_hit ();
      a
  | None ->
      Stats.frontend_miss ();
      let ast = parse_checked p in
      let a =
        { a_hash = h; a_ast = ast;
          a_loops = List.length (Extractor.extract ast) }
      in
      Hashtbl.replace cache h a;
      a
