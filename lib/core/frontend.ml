(** Compiled front-end artifacts.

    Every oracle client (PPO training, brute force, NNS, the decision tree)
    evaluates ~35 actions per program, and each evaluation used to re-run
    the whole front end on freshly pretty-printed text.  Parsing and
    semantic analysis depend only on the program source and its symbolic
    bindings — not on the pragma decision under evaluation — so we do them
    once, cache the checked AST keyed by a content hash, and let
    {!Pipeline} apply pragma decisions directly on the cached AST.

    The cache is process-global and content-addressed: two [Program.t]
    values with identical source and bindings (regardless of name, kernel
    or family) share one artifact.  Traffic is recorded in {!Stats}.

    {b Domain safety.}  Evaluations fan across domains ({!Parpool}), so
    the table is sharded by content hash with one mutex per shard: lookups
    on different programs never contend, and a miss parses {e outside} the
    lock — two domains racing on the same cold program may both parse it,
    but parsing is deterministic, so whichever artifact lands last is
    bit-identical to the other and results cannot depend on the race.

    {b Bounded.}  Each shard caps its entry count ({!shard_capacity},
    [NEUROVEC_FRONTEND_CAP]) and evicts oldest-first past the cap, so a
    long-lived daemon serving an unbounded stream of distinct programs
    cannot grow the tables without limit.  Eviction is invisible except in
    cost: artifacts are pure functions of content, so an evicted entry is
    recomputed bit-identically on its next lookup.  Evictions are counted
    in {!Stats}. *)

(** Raised for any malformed program: parse errors, semantic errors, and
    (via {!Pipeline}) lowering failures.  [Pipeline.Compile_error] is a
    re-export of this exception, so existing handlers keep working. *)
exception Compile_error of string

type artifact = {
  a_hash : string;  (** content hash of (source, bindings) *)
  a_ast : Minic.Ast.program;  (** parsed and sema-checked, pragmas intact *)
  a_loops : int;  (** innermost for-loop count, in extractor order *)
}

(** Content hash of a program's source and bindings (name/kernel/family are
    metadata the front end never sees). *)
let hash_program (p : Dataset.Program.t) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "\x01"
          (p.Dataset.Program.p_source
          :: List.concat_map
               (fun (k, v) -> [ k; string_of_int v ])
               p.Dataset.Program.p_bindings)))

(** A program's shared pre-vectorization artifact: the pragma-free module
    after lower + LICM/CSE/LICM (everything an action sweep does before the
    planner), plus the per-loop analyses the planner needs.  [pv_modul] and
    [pv_preps] are {e never mutated}: every consumer takes an
    [Ir.copy_modul] and transforms the copy, so one artifact serves all 35
    actions of a sweep — and all sweeps that ever see the same content. *)
type prevec = {
  pv_hash : string;  (** content hash + polly flag *)
  pv_modul : Ir.modul;  (** pristine; consumers must copy before mutating *)
  pv_preps : Vectorizer.Planner.prep list;
}

let n_shards = 16

(* ------------------------------------------------------------------ *)
(* Capacity                                                             *)
(* ------------------------------------------------------------------ *)

(* A long-lived daemon sees an unbounded stream of distinct programs, so
   the shard tables must not grow without limit.  Each shard keeps its
   keys in insertion order and evicts the oldest entries past the cap;
   eviction only costs a recompute on the next lookup (artifacts are pure
   functions of content), so bit-identity is unaffected. *)

let default_shard_capacity = 1024

let capacity_ref : int option ref = ref None

let env_capacity =
  lazy
    (match Sys.getenv_opt "NEUROVEC_FRONTEND_CAP" with
    | None | Some "" -> None
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n >= 1 -> Some n
        | _ ->
            Printf.eprintf
              "neurovec: unparseable NEUROVEC_FRONTEND_CAP=%S, using the \
               default\n%!"
              s;
            None))

(** Per-shard entry cap for the artifact and prevec tables (total capacity
    is [16 * shard_capacity ()]); [NEUROVEC_FRONTEND_CAP] or
    {!set_shard_capacity} override the default of 1024. *)
let shard_capacity () : int =
  match !capacity_ref with
  | Some n -> n
  | None ->
      Option.value (Lazy.force env_capacity) ~default:default_shard_capacity

let set_shard_capacity (n : int) : unit = capacity_ref := Some (max 1 n)

type shard = {
  lock : Mutex.t;
  tbl : (string, artifact) Hashtbl.t;
  order : string Queue.t;  (** insertion order, for bounded eviction *)
}

let shards =
  Array.init n_shards (fun _ ->
      { lock = Mutex.create (); tbl = Hashtbl.create 32;
        order = Queue.create () })

type pv_shard = {
  pv_lock : Mutex.t;
  pv_tbl : (string, prevec) Hashtbl.t;
  pv_order : string Queue.t;
}

let pv_shards =
  Array.init n_shards (fun _ ->
      { pv_lock = Mutex.create (); pv_tbl = Hashtbl.create 32;
        pv_order = Queue.create () })

(* scalar reference modules for the translation validator: the plain,
   unoptimized lowering of the checked AST, keyed by content hash *)
type sr_shard = {
  sr_lock : Mutex.t;
  sr_tbl : (string, Ir.modul) Hashtbl.t;
  sr_order : string Queue.t;
}

let sr_shards =
  Array.init n_shards (fun _ ->
      { sr_lock = Mutex.create (); sr_tbl = Hashtbl.create 32;
        sr_order = Queue.create () })

(* shard lock held; keys are unique in [order] because only first-commit
   inserts push them *)
let evict_over_cap (tbl : (string, 'a) Hashtbl.t) (order : string Queue.t) :
    unit =
  let cap = shard_capacity () in
  while Hashtbl.length tbl > cap && not (Queue.is_empty order) do
    let oldest = Queue.pop order in
    if Hashtbl.mem tbl oldest then begin
      Hashtbl.remove tbl oldest;
      Stats.record_frontend_eviction ()
    end
  done

let shard_of (h : string) : shard =
  (* the content hash is a hex digest: its first byte is already uniform *)
  shards.(Char.code h.[0] mod n_shards)

let pv_shard_of (h : string) : pv_shard =
  pv_shards.(Char.code h.[0] mod n_shards)

(* caches downstream of the front end (e.g. the pipeline's evaluation-point
   memo) register here so [clear] empties every content-addressed table in
   the process; registration happens at module initialization, so hooks
   exist before any cache can be populated *)
let clear_hooks : (unit -> unit) list ref = ref []

let on_clear (f : unit -> unit) : unit = clear_hooks := f :: !clear_hooks

let clear () =
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          Hashtbl.reset s.tbl;
          Queue.clear s.order))
    shards;
  Array.iter
    (fun s ->
      Mutex.protect s.pv_lock (fun () ->
          Hashtbl.reset s.pv_tbl;
          Queue.clear s.pv_order))
    pv_shards;
  Array.iter
    (fun s ->
      Mutex.protect s.sr_lock (fun () ->
          Hashtbl.reset s.sr_tbl;
          Queue.clear s.sr_order))
    sr_shards;
  Machine.Timing.memo_clear ();
  List.iter (fun f -> f ()) !clear_hooks

let size () =
  Array.fold_left
    (fun acc s -> acc + Mutex.protect s.lock (fun () -> Hashtbl.length s.tbl))
    0 shards

(** Parse and sema-check [p], wrapping front-end failures in
    {!Compile_error} (timed under [Stats.Parse] / [Stats.Sema]). *)
let parse_checked (p : Dataset.Program.t) : Minic.Ast.program =
  let prog =
    Stats.time Stats.Parse (fun () ->
        try Minic.Parser.parse_string p.Dataset.Program.p_source
        with Minic.Parser.Error (msg, pos) ->
          raise
            (Compile_error
               (Printf.sprintf "%s: parse error at %d:%d: %s"
                  p.Dataset.Program.p_name pos.Minic.Token.line
                  pos.Minic.Token.col msg)))
  in
  Stats.time Stats.Sema (fun () ->
      try
        ignore (Minic.Sema.analyze ~bindings:p.Dataset.Program.p_bindings prog)
      with Minic.Sema.Error msg ->
        raise
          (Compile_error
             (Printf.sprintf "%s: %s" p.Dataset.Program.p_name msg)));
  prog

(** The checked AST for [p], parsed and analyzed at most once per distinct
    (source, bindings) content.  Malformed programs are not cached; every
    attempt re-raises {!Compile_error}. *)
let checked (p : Dataset.Program.t) : artifact =
  let h = hash_program p in
  let s = shard_of h in
  match Mutex.protect s.lock (fun () -> Hashtbl.find_opt s.tbl h) with
  | Some a ->
      Stats.frontend_hit ();
      a
  | None ->
      Stats.frontend_miss ();
      (* parse outside the lock: slow, deterministic, idempotent *)
      let ast = parse_checked p in
      let a =
        { a_hash = h; a_ast = ast;
          a_loops = List.length (Extractor.extract ast) }
      in
      Mutex.protect s.lock (fun () ->
          match Hashtbl.find_opt s.tbl h with
          | Some winner -> winner  (* a racing domain parsed it first *)
          | None ->
              Hashtbl.replace s.tbl h a;
              Queue.push h s.order;
              evict_over_cap s.tbl s.order;
              a)

(** The shared pre-vectorization artifact for [p]: pragma-free lowering +
    Polly (when [polly]) + LICM/CSE/LICM + per-loop planner analyses,
    computed at most once per distinct (source, bindings, polly) content.
    Lowering failures are not cached (each attempt re-raises
    {!Compile_error} with the asking program's name, matching the
    per-action pipeline's error text).

    Domain safety mirrors {!checked}: the mid-end runs {e outside} the
    shard lock — it is deterministic, so racing domains build bit-identical
    artifacts and first-commit-wins cannot be observed. *)
let prevec_of ?(polly = false) (p : Dataset.Program.t) (a : artifact) :
    prevec =
  let h = Printf.sprintf "%s|polly=%b" a.a_hash polly in
  let s = pv_shard_of h in
  match Mutex.protect s.pv_lock (fun () -> Hashtbl.find_opt s.pv_tbl h) with
  | Some pv ->
      Stats.prevec_hit ();
      pv
  | None ->
      Stats.prevec_miss ();
      (* strip source pragmas: the sweep supplies its plan explicitly, and
         the baseline is defined as "existing pragmas removed" *)
      let ast =
        Injector.inject_ast ~clear_others:true a.a_ast ~decisions:[]
      in
      let m =
        Stats.time Stats.Lower (fun () ->
            try
              Ir_lower.lower_program ~bindings:p.Dataset.Program.p_bindings
                ast
            with Ir_lower.Error msg ->
              raise
                (Compile_error
                   (Printf.sprintf "%s: %s" p.Dataset.Program.p_name msg)))
      in
      if polly then
        Stats.time Stats.Polly (fun () -> ignore (Polly.Driver.optimize m));
      Stats.time Stats.Scalar_opt (fun () ->
          ignore (Vectorizer.Licm.run_modul m);
          ignore (Vectorizer.Cse.run_modul m);
          ignore (Vectorizer.Licm.run_modul m));
      let preps =
        Stats.time Stats.Vectorize (fun () ->
            Vectorizer.Planner.prepare_modul m)
      in
      let pv = { pv_hash = h; pv_modul = m; pv_preps = preps } in
      Mutex.protect s.pv_lock (fun () ->
          match Hashtbl.find_opt s.pv_tbl h with
          | Some winner -> winner  (* a racing domain lowered it first *)
          | None ->
              Hashtbl.replace s.pv_tbl h pv;
              Queue.push h s.pv_order;
              evict_over_cap s.pv_tbl s.pv_order;
              pv)

(** As {!prevec_of}, checking the front end first (exactly one front-end
    lookup, like the per-action entry points). *)
let prevec ?polly (p : Dataset.Program.t) : prevec =
  prevec_of ?polly p (checked p)

(** The scalar reference module for [p]: the checked AST lowered as-is —
    pragmas intact, no Polly, no mid-end passes, no vectorizer — the
    ground truth the translation validator ({!Verify.Tv}) interprets
    against every transformed module of the program.  Never mutated:
    consumers only interpret it (the interpreter allocates its own
    memory), so one module serves every plan of every sweep.  Bounded and
    cleared like the other shards. *)
let scalar_ref_of (p : Dataset.Program.t) (a : artifact) : Ir.modul =
  let h = a.a_hash in
  let s = sr_shards.(Char.code h.[0] mod n_shards) in
  match Mutex.protect s.sr_lock (fun () -> Hashtbl.find_opt s.sr_tbl h) with
  | Some m -> m
  | None -> (
      (* lower outside the lock: deterministic, idempotent *)
      let m =
        Stats.time Stats.Lower (fun () ->
            try
              Ir_lower.lower_program ~bindings:p.Dataset.Program.p_bindings
                a.a_ast
            with Ir_lower.Error msg ->
              raise
                (Compile_error
                   (Printf.sprintf "%s: %s" p.Dataset.Program.p_name msg)))
      in
      Mutex.protect s.sr_lock (fun () ->
          match Hashtbl.find_opt s.sr_tbl h with
          | Some winner -> winner
          | None ->
              Hashtbl.replace s.sr_tbl h m;
              Queue.push h s.sr_order;
              evict_over_cap s.sr_tbl s.sr_order;
              m))
